/**
 * @file
 * Fig. 14: utilization balance across the GPUs of multi-GPU jobs —
 * bimodal with all GPUs counted (the idle-GPU pathology), uniform
 * once idle GPUs are removed.
 */

#include "bench_common.hh"

#include "aiwc/core/multi_gpu_analyzer.hh"
#include "aiwc/core/report_writer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report = core::MultiGpuAnalyzer().analyze(bench::dataset());

    bench::Comparison a("Fig. 14a: SM CoV across all GPUs (%)");
    a.rowText("~50% of jobs near zero", "<10 at p50",
              formatNumber(report.sm_cov_all_pct.quantile(0.5), 1));
    a.rowText("~40% of jobs very high", ">=100 at p75",
              formatNumber(report.sm_cov_all_pct.quantile(0.75), 1));
    a.row("jobs with half+ GPUs idle (%)",
          100.0 * paper::multi_gpu_idle_frac,
          100.0 * report.idle_gpu_job_fraction);
    a.print(os);

    bench::Comparison b("Fig. 14b: SM CoV across active GPUs (%)");
    b.rowText("p75 (paper: low)", "low",
              formatNumber(report.sm_cov_active_pct.quantile(0.75), 1));
    b.rowText("p90 (paper: low)", "low",
              formatNumber(report.sm_cov_active_pct.quantile(0.90), 1));
    b.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_AcrossGpuCov(benchmark::State &state)
{
    const core::MultiGpuAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report.sm_cov_all_pct);
    }
}
BENCHMARK(BM_AcrossGpuCov)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 14 (per-GPU balance)", printFigure)
