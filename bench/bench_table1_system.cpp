/**
 * @file
 * Table I: the Supercloud system specification, reproduced from the
 * cluster factory, plus construction/allocation micro-benchmarks of
 * the resource model.
 */

#include "bench_common.hh"

#include "aiwc/sched/placement.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace
{

using namespace aiwc;

void
printTable(std::ostream &os)
{
    const sim::ClusterSpec spec = sim::supercloudSpec();
    sim::printSpec(spec, os);

    bench::Comparison cmp("Table I cross-check");
    cmp.row("nodes", 224, spec.nodes, 0);
    cmp.row("GPUs", 448, spec.totalGpus(), 0);
    cmp.row("CPU cores", 8960, spec.totalCpuCores(), 0);
    cmp.row("node RAM (GB)", 384, spec.node.ram_gb, 0);
    cmp.row("GPU RAM (GB)", 32, spec.node.gpu.memory_gb, 0);
    cmp.row("GPU TDP (W)", 300, spec.node.gpu.tdp_watts, 0);
    os << '\n';
    cmp.print(os);
}

void
BM_ClusterConstruction(benchmark::State &state)
{
    const auto spec = sim::supercloudSpec();
    for (auto _ : state) {
        sim::Cluster cluster(spec);
        benchmark::DoNotOptimize(cluster.freeGpus());
    }
}
BENCHMARK(BM_ClusterConstruction);

void
BM_PlacementSearch(benchmark::State &state)
{
    sim::Cluster cluster(sim::supercloudSpec());
    sched::DensePlacement placement;
    sched::JobRequest req;
    req.id = 1;
    req.gpus = static_cast<int>(state.range(0));
    req.cpu_slots = 4 * req.gpus;
    req.ram_gb = 16.0 * req.gpus;
    for (auto _ : state) {
        auto plan = placement.place(cluster, req);
        benchmark::DoNotOptimize(plan);
    }
}
BENCHMARK(BM_PlacementSearch)->Arg(1)->Arg(2)->Arg(8)->Arg(32);

void
BM_AllocateReleaseCycle(benchmark::State &state)
{
    sim::Cluster cluster(sim::supercloudSpec());
    sched::DensePlacement placement;
    sched::JobRequest req;
    req.id = 1;
    req.gpus = 2;
    req.cpu_slots = 8;
    req.ram_gb = 32.0;
    for (auto _ : state) {
        auto plan = placement.place(cluster, req);
        placement.commit(cluster, 1, *plan);
        placement.release(cluster, *plan);
    }
}
BENCHMARK(BM_AllocateReleaseCycle);

} // namespace

AIWC_BENCH_MAIN("Table I (system specification)", printTable)
