/**
 * @file
 * Fig. 11: within-user variability — the CoV of run times and
 * utilization across each user's jobs ("jobs from the same user are
 * not a monolith").
 */

#include "bench_common.hh"

#include "aiwc/core/report_writer.hh"
#include "aiwc/core/user_behavior_analyzer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report =
        core::UserBehaviorAnalyzer().analyze(bench::dataset());

    bench::Comparison a("Fig. 11: within-user CoV (%)");
    a.row("runtime p25", paper::user_runtime_cov_p25_pct,
          report.runtime_cov_pct.quantile(0.25), 0);
    a.row("runtime p50", paper::user_runtime_cov_p50_pct,
          report.runtime_cov_pct.quantile(0.50), 0);
    a.row("runtime p75", paper::user_runtime_cov_p75_pct,
          report.runtime_cov_pct.quantile(0.75), 0);
    a.row("SM util median", paper::user_sm_cov_median_pct,
          report.sm_cov_pct.quantile(0.5), 0);
    a.row("memBW util median", paper::user_membw_cov_median_pct,
          report.membw_cov_pct.quantile(0.5), 0);
    a.row("memsize util median", paper::user_memsize_cov_median_pct,
          report.memsize_cov_pct.quantile(0.5), 0);
    a.print(os);

    bench::Comparison c("Sec. IV: activity concentration");
    c.row("top 5% users' job share (%)",
          100.0 * paper::top5pct_user_job_share,
          100.0 * report.top5_job_share);
    c.row("top 20% users' job share (%)",
          100.0 * paper::top20pct_user_job_share,
          100.0 * report.top20_job_share);
    c.row("median jobs per user", paper::median_jobs_per_user,
          report.median_jobs_per_user, 0);
    c.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_UserCovAnalysis(benchmark::State &state)
{
    const core::UserBehaviorAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_UserCovAnalysis)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 11 (within-user variability)", printFigure)
