/**
 * @file
 * Fig. 12: Spearman correlation of user activity (#jobs, GPU-hours)
 * against per-user behaviour features. The paper's finding: expert
 * users utilize better (high positive rho against average SM/memBW),
 * but are not more predictable (low rho against the CoVs).
 */

#include "bench_common.hh"

#include "aiwc/core/correlation_analyzer.hh"
#include "aiwc/core/report_writer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report =
        core::CorrelationAnalyzer().analyze(bench::dataset());

    const auto rho = [&](core::UserFeature f) {
        return report.by_jobs.features[static_cast<std::size_t>(f)]
            .coefficient;
    };
    bench::Comparison a("Fig. 12: Spearman rho vs #jobs");
    a.rowText("avg SM util",
              "high (+" + formatNumber(paper::activity_vs_avg_util_rho_min,
                                       1) + " or more)",
              formatNumber(rho(core::UserFeature::AvgSm), 2));
    a.rowText("avg mem util", "high positive",
              formatNumber(rho(core::UserFeature::AvgMembw), 2));
    a.rowText("CoV SM util",
              "low (< " + formatNumber(paper::activity_vs_cov_rho_max, 1) +
                  ")",
              formatNumber(rho(core::UserFeature::CovSm), 2));
    a.rowText("CoV mem util", "low",
              formatNumber(rho(core::UserFeature::CovMembw), 2));
    a.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_SpearmanTable(benchmark::State &state)
{
    const core::CorrelationAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_SpearmanTable)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(200);

} // namespace

AIWC_BENCH_MAIN("Fig. 12 (activity/behaviour correlation)", printFigure)
