/**
 * @file
 * Fig. 4: mean GPU resource utilization CDFs (SM, memory bandwidth,
 * memory size) and PCIe Tx/Rx bandwidth CDFs.
 */

#include "bench_common.hh"

#include "aiwc/core/report_writer.hh"
#include "aiwc/core/utilization_analyzer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report =
        core::UtilizationAnalyzer().analyze(bench::dataset());

    bench::Comparison a("Fig. 4a: mean utilization (%)");
    a.row("SM median", paper::sm_util_median_pct,
          report.sm_pct.quantile(0.5));
    a.row("memory BW median", paper::membw_util_median_pct,
          report.membw_pct.quantile(0.5));
    a.row("memory size median", paper::memsize_util_median_pct,
          report.memsize_pct.quantile(0.5));
    a.row("jobs > 50% SM (%)", 100.0 * paper::sm_over_50_frac,
          100.0 * report.fractionAbove(Resource::Sm, 50.0));
    a.row("jobs > 50% memBW (%)", 100.0 * paper::membw_over_50_frac,
          100.0 * report.fractionAbove(Resource::MemoryBw, 50.0));
    a.row("jobs > 50% memsize (%)", 100.0 * paper::memsize_over_50_frac,
          100.0 * report.fractionAbove(Resource::MemorySize, 50.0));
    a.print(os);

    // Fig. 4b's claim is a *shape*: an approximately uniform (linear)
    // CDF of PCIe bandwidths. Print decile spacings: a uniform CDF
    // has equal spacing.
    bench::Comparison b("Fig. 4b: PCIe bandwidth CDF (deciles, %)");
    for (int d = 1; d <= 9; d += 2) {
        const double q = d / 10.0;
        b.rowText("Tx p" + formatNumber(d * 10, 0), "linear",
                  formatNumber(report.pcie_tx_pct.quantile(q), 1));
    }
    b.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_UtilizationAnalysis(benchmark::State &state)
{
    const core::UtilizationAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_UtilizationAnalysis)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(200);

} // namespace

AIWC_BENCH_MAIN("Fig. 4 (resource utilization)", printFigure)
