/**
 * @file
 * Sec. II dataset-scale cross-check: job counts, user counts, filter
 * effect, and the monitoring data-path accounting — plus end-to-end
 * synthesis throughput benchmarks.
 */

#include "bench_common.hh"

#include <sstream>

#include "aiwc/core/csv_loader.hh"
#include "aiwc/core/timeline_analyzer.hh"
#include "aiwc/fmt/trace.hh"
#include "aiwc/telemetry/monitoring_load.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto &result = bench::trace();
    const double scale = bench::benchScale();

    bench::Comparison a("Sec. II: dataset scale (scaled targets)");
    a.row("total jobs", paper::total_jobs * scale,
          static_cast<double>(result.dataset.size()), 0);
    a.row("GPU jobs after 30 s filter",
          paper::gpu_jobs_after_filter * scale,
          static_cast<double>(result.dataset.gpuJobs().size()), 0);
    a.row("users", std::max(10.0, paper::users * scale),
          static_cast<double>(result.num_users), 0);
    a.row("time-series subset",
          std::max(50.0, paper::timeseries_jobs * scale),
          static_cast<double>([&] {
              std::size_t n = 0;
              for (const auto &r : result.dataset.records())
                  if (r.has_timeseries)
                      ++n;
              return n;
          }()),
          0);
    a.print(os);

    os << "== Sec. II: monitoring data path ==\n"
       << "central store: "
       << result.central_store_bytes / (1024 * 1024)
       << " MiB collected via epilog copy\n"
       << "peak node-local spool: "
       << result.peak_spool_bytes / (1024 * 1024) << " MiB\n\n";

    // The operational lesson, quantified: direct shared-FS writes vs.
    // node-local spooling with epilog copies.
    const auto cmp =
        telemetry::MonitoringLoadModel().analyze(result.dataset);
    os << "== Sec. II lesson: shared-FS monitoring load ==\n";
    TextTable t({"design", "peak write streams", "peak rows/s",
                 "largest burst (MiB)"});
    t.addRow({"direct to shared FS",
              formatNumber(cmp.direct.peak_streams, 0),
              formatNumber(cmp.direct.peak_rows_per_second, 0),
              formatNumber(cmp.direct.largest_burst_bytes / 1048576.0,
                           1)});
    t.addRow({"node-local spool + epilog",
              formatNumber(cmp.spooled.peak_streams, 0),
              formatNumber(cmp.spooled.peak_rows_per_second, 0),
              formatNumber(cmp.spooled.largest_burst_bytes / 1048576.0,
                           1)});
    t.print(os);
    os << "metadata-server relief: "
       << formatNumber(cmp.metadata_relief_factor, 0) << "x fewer "
       << "concurrent streams\n\n";

    // Sec. II: "usage of the system often increases closer to the
    // deadlines of popular deep learning conferences".
    const auto timeline =
        core::TimelineAnalyzer().analyze(result.dataset);
    std::vector<double> deadlines;
    for (const auto &d :
         workload::CalibrationProfile::supercloud().arrivals.deadlines)
        deadlines.push_back(d.day);
    os << "== Sec. II: conference-deadline load ==\n"
       << "submission peak-to-mean across days: "
       << formatNumber(timeline.submission_peak_to_mean, 2) << "x\n"
       << "deadline-window surge vs quiet-day median: "
       << formatNumber(timeline.deadlineSurge(deadlines), 2) << "x\n"
       << "peak GPUs busy: "
       << formatNumber(timeline.peak_gpus_busy, 0) << " of "
       << result.cluster_nodes * 2 << "\n\n";

    // On-disk footprint of the two interchange formats for this study.
    const auto trace_bytes = fmt::encodeTrace(result.dataset);
    std::stringstream csv;
    result.dataset.writeCsv(csv);
    const std::size_t csv_bytes = csv.str().size();
    os << "== binary trace vs CSV ==\n"
       << "binary trace: " << trace_bytes.size() / 1024 << " KiB, CSV: "
       << csv_bytes / 1024 << " KiB ("
       << formatNumber(static_cast<double>(csv_bytes) /
                           static_cast<double>(trace_bytes.size()),
                       2)
       << "x)\n\n";
}

void
BM_FullSynthesis(benchmark::State &state)
{
    workload::SynthesisOptions options;
    options.scale = 0.01;
    options.seed = 9;
    const auto profile = workload::CalibrationProfile::supercloud();
    for (auto _ : state) {
        const workload::TraceSynthesizer synthesizer(profile, options);
        auto result = synthesizer.run();
        benchmark::DoNotOptimize(result.dataset.size());
        options.seed += 1;
    }
}
BENCHMARK(BM_FullSynthesis)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void
BM_SynthesisNoTelemetry(benchmark::State &state)
{
    workload::SynthesisOptions options;
    options.scale = 0.01;
    options.seed = 9;
    options.telemetry = false;
    const auto profile = workload::CalibrationProfile::supercloud();
    for (auto _ : state) {
        const workload::TraceSynthesizer synthesizer(profile, options);
        auto result = synthesizer.run();
        benchmark::DoNotOptimize(result.dataset.size());
        options.seed += 1;
    }
}
BENCHMARK(BM_SynthesisNoTelemetry)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(10);

void
BM_SynthesisNoScheduler(benchmark::State &state)
{
    workload::SynthesisOptions options;
    options.scale = 0.01;
    options.seed = 9;
    options.through_scheduler = false;
    const auto profile = workload::CalibrationProfile::supercloud();
    for (auto _ : state) {
        const workload::TraceSynthesizer synthesizer(profile, options);
        auto result = synthesizer.run();
        benchmark::DoNotOptimize(result.dataset.size());
        options.seed += 1;
    }
}
BENCHMARK(BM_SynthesisNoScheduler)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Import-path comparison: the binary trace format against the CSV
// parser it replaces as the hot load path.

void
BM_TraceEncode(benchmark::State &state)
{
    const auto &ds = bench::dataset();
    for (auto _ : state) {
        const auto bytes = fmt::encodeTrace(ds);
        benchmark::DoNotOptimize(bytes.data());
    }
}
BENCHMARK(BM_TraceEncode)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(40);

void
BM_TraceDecode(benchmark::State &state)
{
    const auto bytes = fmt::encodeTrace(bench::dataset());
    for (auto _ : state) {
        auto loaded = fmt::decodeTrace(bytes);
        benchmark::DoNotOptimize(loaded.dataset.size());
    }
}
BENCHMARK(BM_TraceDecode)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(40);

void
BM_CsvParse(benchmark::State &state)
{
    std::stringstream csv;
    bench::dataset().writeCsv(csv);
    const std::string text = csv.str();
    for (auto _ : state) {
        std::istringstream is(text);
        auto ds = core::loadDatasetCsv(is);
        benchmark::DoNotOptimize(ds.size());
    }
}
BENCHMARK(BM_CsvParse)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(40);

} // namespace

AIWC_BENCH_MAIN("Sec. II (dataset scale & monitoring)", printFigure)
