/**
 * @file
 * Fig. 17: per-user lifecycle shares of jobs (a) and GPU-hours (b) —
 * the paradigm shift: most users spend most of their footprint on
 * non-mature work.
 */

#include "bench_common.hh"

#include <algorithm>

#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/report_writer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report = core::LifecycleAnalyzer().analyze(bench::dataset());

    bench::Comparison a("Fig. 17 headline statistics (%)");
    a.row("users with mature job share < 40 (paper: >50)",
          100.0 * paper::users_mature_share_below_40,
          100.0 * report.usersWithMatureJobShareBelow(0.40));
    a.row("users with mature GPU-hour share < 20 (paper: >50)",
          100.0 * paper::users_mature_hours_below_20,
          100.0 * report.usersWithMatureHourShareBelow(0.20));
    a.row("users with non-mature hours > 60 (paper: >25)",
          100.0 * paper::users_nonmature_hours_over_60,
          100.0 * report.usersWithNonMatureHoursAbove(0.60));
    a.print(os);

    // The stacked-area series itself: users sorted by mature share,
    // deciles of the sorted curve.
    auto users = report.users;
    std::sort(users.begin(), users.end(),
              [](const core::UserClassShares &x,
                 const core::UserClassShares &y) {
                  return x.job_share[0] < y.job_share[0];
              });
    os << "== Fig. 17a series: mature job share across sorted users ==\n";
    TextTable t({"user percentile", "mature", "exploratory",
                 "development", "IDE"});
    for (int d = 0; d <= 10; ++d) {
        const auto idx = std::min(
            users.size() - 1, users.size() * static_cast<std::size_t>(d) /
                                  10);
        const auto &u = users[idx];
        t.addRow({formatNumber(d * 10, 0) + "%",
                  formatPercent(u.job_share[0]),
                  formatPercent(u.job_share[1]),
                  formatPercent(u.job_share[2]),
                  formatPercent(u.job_share[3])});
    }
    t.print(os);
    os << '\n';

    core::ReportWriter(os).print(report);
}

void
BM_UserShareScan(benchmark::State &state)
{
    const core::LifecycleAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report.users);
    }
}
BENCHMARK(BM_UserShareScan)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 17 (per-user lifecycle shares)", printFigure)
