/**
 * @file
 * Streaming-pipeline ingest bench: rows/second through aiwc::stream
 * (serial and shard-parallel) and the memory story the tentpole
 * promises — sketch footprint vs the materialized Dataset the batch
 * path needs for the same figures.
 *
 * Timed kernels run a fixed iteration count so the aiwc.stream.*
 * counters in the report's metrics snapshot stay a pure function of
 * (scale, seed) and bench_compare.py can exact-match them.
 */

#include "bench_common.hh"

#include "aiwc/stream/pipeline.hh"

namespace
{

using namespace aiwc;

/** Materialized footprint of the batch path's Dataset, bytes. */
std::size_t
datasetBytes(const core::Dataset &ds)
{
    std::size_t bytes = sizeof(ds) +
                        ds.records().capacity() * sizeof(core::JobRecord);
    for (const auto &r : ds.records())
        bytes += r.per_gpu.capacity() * sizeof(core::GpuUsageSummary);
    return bytes;
}

stream::StreamPipeline
ingestAll()
{
    stream::StreamPipeline p;
    for (const auto &r : bench::dataset().records())
        p.ingest(r);
    return p;
}

void
printFigure(std::ostream &os)
{
    const auto &ds = bench::dataset();
    const auto pipeline = ingestAll();
    const auto snap = pipeline.snapshot();

    const std::size_t batch_bytes = datasetBytes(ds);
    os << "== streaming ingest: memory bound ==\n";
    TextTable table({"quantity", "value"});
    table.addRow({"rows ingested", std::to_string(snap.rows)});
    table.addRow({"GPU jobs (>= 30 s)", std::to_string(snap.gpu_jobs)});
    table.addRow({"sketch footprint (B)",
                  std::to_string(snap.sketch_bytes)});
    table.addRow({"materialized Dataset (B)",
                  std::to_string(batch_bytes)});
    table.addRow({"compression ratio",
                  formatNumber(static_cast<double>(batch_bytes) /
                                   static_cast<double>(snap.sketch_bytes),
                               1)});
    table.addRow({"rank error bound",
                  formatPercent(snap.epsilon)});
    table.print(os);
    os << '\n';
    snap.print(os);
    os << '\n';

    bench::reportExtras()["stream_rows"] = std::to_string(snap.rows);
    bench::reportExtras()["stream_sketch_bytes"] =
        std::to_string(snap.sketch_bytes);
    bench::reportExtras()["dataset_bytes"] =
        std::to_string(batch_bytes);
}

void
BM_StreamIngestSerial(benchmark::State &state)
{
    const auto &records = bench::dataset().records();
    for (auto _ : state) {
        stream::StreamPipeline p;
        for (const auto &r : records)
            p.ingest(r);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_StreamIngestSerial)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(20);

void
BM_StreamIngestParallel(benchmark::State &state)
{
    const auto &records = bench::dataset().records();
    for (auto _ : state) {
        auto p = stream::ingestParallel(records);
        benchmark::DoNotOptimize(p);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_StreamIngestParallel)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(20);

void
BM_StreamSnapshot(benchmark::State &state)
{
    static const stream::StreamPipeline pipeline = ingestAll();
    for (auto _ : state) {
        auto snap = pipeline.snapshot();
        benchmark::DoNotOptimize(snap);
    }
}
BENCHMARK(BM_StreamSnapshot)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(50);

} // namespace

AIWC_BENCH_MAIN("streaming ingest", printFigure)
