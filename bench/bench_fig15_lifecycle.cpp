/**
 * @file
 * Fig. 15: the algorithm-development life-cycle — job mix (a) and
 * GPU-hour mix (b). The paper's headline: ~60% of jobs are mature but
 * only ~39% of GPU-hours; exploratory/development/IDE burn the rest.
 */

#include "bench_common.hh"

#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/report_writer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report = core::LifecycleAnalyzer().analyze(bench::dataset());

    const auto m = [&](Lifecycle c) {
        return 100.0 * report.job_mix[static_cast<int>(c)];
    };
    const auto h = [&](Lifecycle c) {
        return 100.0 * report.hour_mix[static_cast<int>(c)];
    };

    bench::Comparison a("Fig. 15a: job mix (%)");
    a.row("mature", 100.0 * paper::mature_job_frac,
          m(Lifecycle::Mature));
    a.row("exploratory", 100.0 * paper::exploratory_job_frac,
          m(Lifecycle::Exploratory));
    a.row("development", 100.0 * paper::development_job_frac,
          m(Lifecycle::Development));
    a.row("IDE", 100.0 * paper::ide_job_frac, m(Lifecycle::Ide));
    a.print(os);

    bench::Comparison b("Fig. 15b: GPU-hour mix (%)");
    b.row("mature", 100.0 * paper::mature_hour_frac,
          h(Lifecycle::Mature));
    b.row("exploratory", 100.0 * paper::exploratory_hour_frac,
          h(Lifecycle::Exploratory));
    b.row("IDE", 100.0 * paper::ide_hour_frac, h(Lifecycle::Ide));
    b.print(os);

    bench::Comparison r("Sec. VI: median runtimes (min)");
    r.row("mature", paper::mature_runtime_median_min,
          report.median_runtime_min[static_cast<int>(Lifecycle::Mature)],
          0);
    r.row("exploratory", paper::exploratory_runtime_median_min,
          report.median_runtime_min[static_cast<int>(
              Lifecycle::Exploratory)],
          0);
    r.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_LifecycleAnalysis(benchmark::State &state)
{
    const core::LifecycleAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_LifecycleAnalysis)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 15 (development life-cycle)", printFigure)
