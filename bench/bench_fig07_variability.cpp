/**
 * @file
 * Fig. 7: within-active-phase utilization CoVs (a) and the radar of
 * single-resource bottleneck fractions (b).
 */

#include "bench_common.hh"

#include "aiwc/core/bottleneck_analyzer.hh"
#include "aiwc/core/phase_analyzer.hh"
#include "aiwc/core/report_writer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto phases = core::PhaseAnalyzer().analyze(bench::dataset());
    bench::Comparison a("Fig. 7a: active-phase utilization CoV (%)");
    a.row("SM median", paper::active_sm_cov_median_pct,
          phases.active_sm_cov_pct.quantile(0.5));
    a.row("memBW median", paper::active_membw_cov_median_pct,
          phases.active_membw_cov_pct.quantile(0.5));
    a.row("memsize median", paper::active_memsize_cov_median_pct,
          phases.active_memsize_cov_pct.quantile(0.5));
    a.row("SM p75 (paper: >=23)", paper::sm_cov_p75_pct,
          phases.active_sm_cov_pct.quantile(0.75));
    a.print(os);

    const auto bn = core::BottleneckAnalyzer().analyze(bench::dataset());
    bench::Comparison b("Fig. 7b: bottlenecked jobs (%)");
    b.row("SM", 100.0 * paper::sm_bottleneck_frac,
          100.0 * bn.single_of(Resource::Sm));
    b.row("memory BW (~0)", 100.0 * paper::membw_bottleneck_frac,
          100.0 * bn.single_of(Resource::MemoryBw));
    b.print(os);

    core::ReportWriter writer(os);
    writer.print(phases);
    writer.print(bn);
}

void
BM_BottleneckAnalysis(benchmark::State &state)
{
    const core::BottleneckAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_BottleneckAnalysis)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 7 (variability & bottleneck radar)", printFigure)
