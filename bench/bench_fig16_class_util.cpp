/**
 * @file
 * Fig. 16: utilization box plots per lifecycle class — development and
 * IDE jobs reserve GPUs they barely touch (median SM 0%).
 */

#include "bench_common.hh"

#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/report_writer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report = core::LifecycleAnalyzer().analyze(bench::dataset());

    const auto median = [&](Lifecycle c) {
        return report.sm_pct[static_cast<int>(c)].median;
    };
    bench::Comparison a("Fig. 16: median SM utilization (%)");
    a.row("mature", paper::mature_sm_median_pct,
          median(Lifecycle::Mature));
    a.row("exploratory", paper::exploratory_sm_median_pct,
          median(Lifecycle::Exploratory));
    a.row("development", paper::development_sm_median_pct,
          median(Lifecycle::Development));
    a.row("IDE", paper::ide_sm_median_pct, median(Lifecycle::Ide));
    a.rowText("IDE q3 (paper: 0%)", "0",
              formatNumber(
                  report.sm_pct[static_cast<int>(Lifecycle::Ide)].q3,
                  1));
    a.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_ClassBoxStats(benchmark::State &state)
{
    const core::LifecycleAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report.sm_pct);
    }
}
BENCHMARK(BM_ClassBoxStats)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 16 (utilization by class)", printFigure)
