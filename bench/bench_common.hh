/**
 * @file
 * Shared harness for the figure-reproduction benches.
 *
 * Every bench binary does two things:
 *  1. prints the series its paper figure plots, with a `paper` column
 *     beside the `measured` column (shape match, not absolute match);
 *  2. registers google-benchmark timers for the analyzer kernels that
 *     produce those series.
 *
 * The synthetic study is built once per binary. Scale and seed come
 * from AIWC_BENCH_SCALE / AIWC_BENCH_SEED (defaults 0.15 / 2022 — a
 * ~19-day slice of the 125-day study, enough for stable medians).
 */

#ifndef AIWC_BENCH_BENCH_COMMON_HH
#define AIWC_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "aiwc/common/parallel.hh"
#include "aiwc/common/table.hh"
#include "aiwc/core/paper_targets.hh"
#include "aiwc/obs/metrics.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc::bench
{

/**
 * Consume a `--threads N` / `--threads=N` flag (if present) and size
 * the global pool accordingly before any analyzer runs. Called by
 * AIWC_BENCH_MAIN ahead of benchmark::Initialize so the flag never
 * reaches google-benchmark's own parser.
 */
inline void
applyThreadFlag(int *argc, char **argv)
{
    int threads = 0;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < *argc) {
            threads = std::atoi(argv[++i]);
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = std::atoi(arg.c_str() + 10);
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
    if (threads > 0)
        setGlobalThreadCount(threads);
}

inline double
benchScale()
{
    if (const char *env = std::getenv("AIWC_BENCH_SCALE"))
        return std::atof(env);
    return 0.15;
}

inline std::uint64_t
benchSeed()
{
    if (const char *env = std::getenv("AIWC_BENCH_SEED"))
        return std::strtoull(env, nullptr, 10);
    return 2022;
}

/** The shared synthetic study (built on first use). */
inline const workload::SynthesisResult &
trace()
{
    static const workload::SynthesisResult result = [] {
        workload::SynthesisOptions options;
        options.scale = benchScale();
        options.seed = benchSeed();
        const auto profile = workload::CalibrationProfile::supercloud();
        return workload::TraceSynthesizer(profile, options).run();
    }();
    return result;
}

inline const core::Dataset &
dataset()
{
    return trace().dataset;
}

/** Paper-vs-measured comparison table. */
class Comparison
{
  public:
    explicit Comparison(std::string title)
        : title_(std::move(title)),
          table_({"quantity", "paper", "measured"})
    {
    }

    void
    row(const std::string &quantity, double paper_value,
        double measured, int precision = 1)
    {
        table_.addRow({quantity, formatNumber(paper_value, precision),
                       formatNumber(measured, precision)});
    }

    void
    rowText(const std::string &quantity, const std::string &paper_value,
            const std::string &measured)
    {
        table_.addRow({quantity, paper_value, measured});
    }

    void
    print(std::ostream &os) const
    {
        os << "== " << title_ << " ==\n";
        table_.print(os);
        os << '\n';
    }

  private:
    std::string title_;
    TextTable table_;
};

/** Banner with the synthesis configuration. */
inline void
printBanner(std::ostream &os, const char *figure)
{
    const auto &result = trace();
    os << "aiwc reproduction bench: " << figure << "\n"
       << "synthetic study: scale " << benchScale() << ", seed "
       << benchSeed() << ", " << result.dataset.size() << " jobs ("
       << result.dataset.gpuJobs().size() << " GPU jobs >= 30 s), "
       << result.num_users << " users, " << result.cluster_nodes
       << " nodes\n"
       << "analysis threads: " << globalThreadCount() << "\n\n";
}

// ---------------------------------------------------------------------
// BENCH_report.json: the machine-readable perf trajectory.
//
// Passing `--json[=path]` to any bench binary writes a report with the
// per-bench wall times, the synthesis configuration, the git SHA, the
// thread count, and a full metrics-registry snapshot. scripts/
// bench_compare.py diffs two reports and flags regressions; CI's
// perf-smoke job runs it against bench/baseline.json.
// ---------------------------------------------------------------------

/** One timed entry of the report. */
struct ReportEntry
{
    std::string name;
    double wall_ms = 0.0;
    /** Timed-kernel executions per second (1000 / wall_ms). */
    double throughput = 0.0;
};

/** Report output path; empty when --json was not given. */
inline std::string &
reportPath()
{
    static std::string path;
    return path;
}

inline std::vector<ReportEntry> &
reportEntries()
{
    static std::vector<ReportEntry> entries;
    return entries;
}

/** Extra top-level report fields (value is raw JSON). */
inline std::map<std::string, std::string> &
reportExtras()
{
    static std::map<std::string, std::string> extras;
    return extras;
}

/**
 * Consume a `--json` / `--json=path` flag. Bare `--json` writes to
 * AIWC_BENCH_REPORT (else ./BENCH_report.json). Called by
 * AIWC_BENCH_MAIN ahead of benchmark::Initialize, like --threads.
 */
inline void
applyReportFlag(int *argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            const char *env = std::getenv("AIWC_BENCH_REPORT");
            reportPath() = (env != nullptr && *env != '\0')
                               ? env
                               : "BENCH_report.json";
        } else if (arg.rfind("--json=", 0) == 0) {
            reportPath() = arg.substr(7);
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
}

inline void
addReportEntry(std::string name, double wall_ms)
{
    ReportEntry entry;
    entry.name = std::move(name);
    entry.wall_ms = wall_ms;
    entry.throughput = wall_ms > 0.0 ? 1000.0 / wall_ms : 0.0;
    reportEntries().push_back(std::move(entry));
}

/** Git SHA: AIWC_GIT_SHA env, else the configure-time compile define. */
inline std::string
gitSha()
{
    if (const char *env = std::getenv("AIWC_GIT_SHA"))
        return env;
#ifdef AIWC_GIT_SHA
    return AIWC_GIT_SHA;
#else
    return "unknown";
#endif
}

/** Shortest round-trippable formatting for report numbers. */
inline std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim to the shortest representation that still parses back.
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
        if (std::atof(shorter) == v)
            return shorter;
    }
    return buf;
}

/**
 * Write BENCH_report.json if --json was given. @return false on I/O
 * failure (also prints a diagnostic).
 */
inline bool
writeBenchReport(const char *bench_name)
{
    if (reportPath().empty())
        return true;
    std::ofstream os(reportPath());
    if (!os) {
        std::cerr << "cannot open bench report '" << reportPath()
                  << "'\n";
        return false;
    }
    os << "{\"schema\":\"aiwc-bench-report-v1\""
       << ",\"bench\":\"" << bench_name << '"'
       << ",\"git_sha\":\"" << gitSha() << '"'
       << ",\"threads\":" << globalThreadCount()
       << ",\"scale\":" << jsonNumber(benchScale())
       << ",\"seed\":" << benchSeed();
    for (const auto &[key, raw] : reportExtras())
        os << ",\"" << key << "\":" << raw;
    os << ",\"entries\":[";
    bool first = true;
    for (const ReportEntry &e : reportEntries()) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << e.name << "\",\"wall_ms\":"
           << jsonNumber(e.wall_ms) << ",\"throughput\":"
           << jsonNumber(e.throughput) << '}';
    }
    os << "],\"metrics\":";
    obs::MetricsRegistry::global().writeJson(os);
    os << "}\n";
    os.flush();
    if (!os) {
        std::cerr << "failed writing bench report '" << reportPath()
                  << "'\n";
        return false;
    }
    std::cout << "wrote bench report to " << reportPath() << "\n";
    return true;
}

/**
 * Console reporter that also captures every iteration run into the
 * JSON report (name, per-iteration wall ms).
 */
class CapturingReporter : public ::benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred || run.iterations <= 0) {
                continue;
            }
            // real_accumulated_time is seconds over all iterations.
            const double ms = run.real_accumulated_time /
                              static_cast<double>(run.iterations) * 1e3;
            addReportEntry(run.benchmark_name(), ms);
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

} // namespace aiwc::bench

/**
 * Bench main: print the figure comparison, then run the registered
 * google-benchmark timers (suppressible with AIWC_BENCH_SKIP_TIMING).
 * With `--json[=path]`, also write the BENCH_report.json described
 * above.
 */
#define AIWC_BENCH_MAIN(figure_name, print_fn)                            \
    int main(int argc, char **argv)                                      \
    {                                                                     \
        ::aiwc::bench::applyThreadFlag(&argc, argv);                      \
        ::aiwc::bench::applyReportFlag(&argc, argv);                      \
        ::benchmark::Initialize(&argc, argv);                             \
        ::aiwc::bench::printBanner(std::cout, figure_name);               \
        print_fn(std::cout);                                              \
        if (!std::getenv("AIWC_BENCH_SKIP_TIMING")) {                     \
            if (::aiwc::bench::reportPath().empty()) {                    \
                ::benchmark::RunSpecifiedBenchmarks();                    \
            } else {                                                      \
                ::aiwc::bench::CapturingReporter reporter;                \
                ::benchmark::RunSpecifiedBenchmarks(&reporter);           \
            }                                                             \
        }                                                                 \
        const bool report_ok =                                            \
            ::aiwc::bench::writeBenchReport(figure_name);                 \
        ::benchmark::Shutdown();                                          \
        return report_ok ? 0 : 1;                                         \
    }

#endif // AIWC_BENCH_BENCH_COMMON_HH
