/**
 * @file
 * Shared harness for the figure-reproduction benches.
 *
 * Every bench binary does two things:
 *  1. prints the series its paper figure plots, with a `paper` column
 *     beside the `measured` column (shape match, not absolute match);
 *  2. registers google-benchmark timers for the analyzer kernels that
 *     produce those series.
 *
 * The synthetic study is built once per binary. Scale and seed come
 * from AIWC_BENCH_SCALE / AIWC_BENCH_SEED (defaults 0.15 / 2022 — a
 * ~19-day slice of the 125-day study, enough for stable medians).
 */

#ifndef AIWC_BENCH_BENCH_COMMON_HH
#define AIWC_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

#include "aiwc/common/parallel.hh"
#include "aiwc/common/table.hh"
#include "aiwc/core/paper_targets.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc::bench
{

/**
 * Consume a `--threads N` / `--threads=N` flag (if present) and size
 * the global pool accordingly before any analyzer runs. Called by
 * AIWC_BENCH_MAIN ahead of benchmark::Initialize so the flag never
 * reaches google-benchmark's own parser.
 */
inline void
applyThreadFlag(int *argc, char **argv)
{
    int threads = 0;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < *argc) {
            threads = std::atoi(argv[++i]);
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = std::atoi(arg.c_str() + 10);
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
    if (threads > 0)
        setGlobalThreadCount(threads);
}

inline double
benchScale()
{
    if (const char *env = std::getenv("AIWC_BENCH_SCALE"))
        return std::atof(env);
    return 0.15;
}

inline std::uint64_t
benchSeed()
{
    if (const char *env = std::getenv("AIWC_BENCH_SEED"))
        return std::strtoull(env, nullptr, 10);
    return 2022;
}

/** The shared synthetic study (built on first use). */
inline const workload::SynthesisResult &
trace()
{
    static const workload::SynthesisResult result = [] {
        workload::SynthesisOptions options;
        options.scale = benchScale();
        options.seed = benchSeed();
        const auto profile = workload::CalibrationProfile::supercloud();
        return workload::TraceSynthesizer(profile, options).run();
    }();
    return result;
}

inline const core::Dataset &
dataset()
{
    return trace().dataset;
}

/** Paper-vs-measured comparison table. */
class Comparison
{
  public:
    explicit Comparison(std::string title)
        : title_(std::move(title)),
          table_({"quantity", "paper", "measured"})
    {
    }

    void
    row(const std::string &quantity, double paper_value,
        double measured, int precision = 1)
    {
        table_.addRow({quantity, formatNumber(paper_value, precision),
                       formatNumber(measured, precision)});
    }

    void
    rowText(const std::string &quantity, const std::string &paper_value,
            const std::string &measured)
    {
        table_.addRow({quantity, paper_value, measured});
    }

    void
    print(std::ostream &os) const
    {
        os << "== " << title_ << " ==\n";
        table_.print(os);
        os << '\n';
    }

  private:
    std::string title_;
    TextTable table_;
};

/** Banner with the synthesis configuration. */
inline void
printBanner(std::ostream &os, const char *figure)
{
    const auto &result = trace();
    os << "aiwc reproduction bench: " << figure << "\n"
       << "synthetic study: scale " << benchScale() << ", seed "
       << benchSeed() << ", " << result.dataset.size() << " jobs ("
       << result.dataset.gpuJobs().size() << " GPU jobs >= 30 s), "
       << result.num_users << " users, " << result.cluster_nodes
       << " nodes\n"
       << "analysis threads: " << globalThreadCount() << "\n\n";
}

} // namespace aiwc::bench

/**
 * Bench main: print the figure comparison, then run the registered
 * google-benchmark timers (suppressible with AIWC_BENCH_SKIP_TIMING).
 */
#define AIWC_BENCH_MAIN(figure_name, print_fn)                            \
    int main(int argc, char **argv)                                      \
    {                                                                     \
        ::aiwc::bench::applyThreadFlag(&argc, argv);                      \
        ::benchmark::Initialize(&argc, argv);                             \
        ::aiwc::bench::printBanner(std::cout, figure_name);               \
        print_fn(std::cout);                                              \
        if (!std::getenv("AIWC_BENCH_SKIP_TIMING"))                       \
            ::benchmark::RunSpecifiedBenchmarks();                        \
        ::benchmark::Shutdown();                                          \
        return 0;                                                         \
    }

#endif // AIWC_BENCH_BENCH_COMMON_HH
