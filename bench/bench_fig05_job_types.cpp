/**
 * @file
 * Fig. 5: SM and memory utilization by submission interface
 * (map-reduce, batch, interactive, other).
 */

#include "bench_common.hh"

#include "aiwc/core/report_writer.hh"
#include "aiwc/core/utilization_analyzer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report =
        core::UtilizationAnalyzer().analyzeByInterface(bench::dataset());

    bench::Comparison mix("Fig. 5: interface population");
    mix.row("map-reduce (%)", 100.0 * paper::mapreduce_job_frac,
            100.0 * report.job_fraction[0]);
    mix.row("batch (%)", 100.0 * paper::batch_job_frac,
            100.0 * report.job_fraction[1]);
    mix.row("interactive (%)", 100.0 * paper::interactive_job_frac,
            100.0 * report.job_fraction[2]);
    mix.row("other (%)", 100.0 * paper::other_job_frac,
            100.0 * report.job_fraction[3]);
    mix.print(os);

    // The figure's claim is an ordering: other > batch >>
    // interactive ~ map-reduce for both SM and memBW.
    bench::Comparison order("Fig. 5: median SM by interface (%)");
    order.rowText("other (highest)", "highest",
                  formatNumber(report.sm[3].median, 1));
    order.rowText("batch", "second",
                  formatNumber(report.sm[1].median, 1));
    order.rowText("map-reduce (low)", "low",
                  formatNumber(report.sm[0].median, 1));
    order.rowText("interactive (low)", "low",
                  formatNumber(report.sm[2].median, 1));
    order.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_InterfaceBreakdown(benchmark::State &state)
{
    const core::UtilizationAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyzeByInterface(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_InterfaceBreakdown)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 5 (utilization by job type)", printFigure)
