/**
 * @file
 * Parallel-scaling bench for the deterministic thread-pool helpers.
 *
 * Runs the heavier analysis kernels — the Fig. 12 correlation pass,
 * utilization, lifecycle, and the dataset filter itself — at 1/2/4/8
 * threads and reports wall-clock speedup relative to the single-thread
 * run. Every run also folds its report into an FNV-1a digest; the
 * digests must be identical across thread counts (the determinism
 * contract of parallelReduce), and the bench prints PASS/FAIL for it.
 *
 * Timing uses best-of-R std::chrono wall clock rather than
 * google-benchmark so the thread count can change between runs.
 */

#include "bench_common.hh"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "aiwc/core/correlation_analyzer.hh"
#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/utilization_analyzer.hh"

namespace
{

using namespace aiwc;

constexpr std::uint64_t fnv_offset = 1469598103934665603ull;
constexpr std::uint64_t fnv_prime = 1099511628211ull;

void
fold(std::uint64_t &h, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a", v);
    for (const char *p = buf; *p; ++p)
        h = (h ^ static_cast<unsigned char>(*p)) * fnv_prime;
}

std::uint64_t
digestCorrelation(const core::Dataset &data)
{
    const auto report = core::CorrelationAnalyzer().analyze(data);
    std::uint64_t h = fnv_offset;
    for (const auto &f : report.by_jobs.features)
        fold(h, f.coefficient);
    for (const auto &f : report.by_gpu_hours.features)
        fold(h, f.coefficient);
    return h;
}

std::uint64_t
digestUtilization(const core::Dataset &data)
{
    const auto report = core::UtilizationAnalyzer().analyze(data);
    std::uint64_t h = fnv_offset;
    for (double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
        fold(h, report.sm_pct.quantile(q));
        fold(h, report.membw_pct.quantile(q));
        fold(h, report.memsize_pct.quantile(q));
    }
    return h;
}

std::uint64_t
digestLifecycle(const core::Dataset &data)
{
    const auto report = core::LifecycleAnalyzer().analyze(data);
    std::uint64_t h = fnv_offset;
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto i = static_cast<std::size_t>(c);
        fold(h, report.job_mix[i]);
        fold(h, report.hour_mix[i]);
        fold(h, report.median_runtime_min[i]);
    }
    return h;
}

std::uint64_t
digestFilter(const core::Dataset &data)
{
    std::uint64_t h = fnv_offset;
    fold(h, static_cast<double>(data.gpuJobs().size()));
    fold(h, static_cast<double>(data.uniqueUsers()));
    fold(h, data.totalGpuHours());
    return h;
}

struct Kernel
{
    const char *name;
    std::function<std::uint64_t(const core::Dataset &)> run;
};

/** Best-of-R wall-clock milliseconds; folds digests into `digest`. */
double
timeKernel(const Kernel &kernel, const core::Dataset &data, int reps,
           std::uint64_t &digest)
{
    double best_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        digest = kernel.run(data);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < best_ms)
            best_ms = ms;
    }
    return best_ms;
}

int
benchReps()
{
    if (const char *env = std::getenv("AIWC_BENCH_REPS"))
        return std::max(1, std::atoi(env));
    return 3;
}

} // namespace

using namespace aiwc;

int
main(int argc, char **argv)
{
    aiwc::bench::applyThreadFlag(&argc, argv);
    aiwc::bench::applyReportFlag(&argc, argv);
    aiwc::bench::printBanner(std::cout, "parallel scaling");

    const core::Dataset &data = aiwc::bench::dataset();
    const std::vector<Kernel> kernels = {
        {"fig12 correlation", digestCorrelation},
        {"fig04 utilization", digestUtilization},
        {"fig15 lifecycle", digestLifecycle},
        {"dataset filter", digestFilter},
    };
    const std::vector<int> thread_counts = {1, 2, 4, 8};
    const int reps = benchReps();

    bool deterministic = true;
    TextTable table({"kernel", "1T ms", "2T ms", "4T ms", "8T ms",
                     "speedup@4T", "speedup@8T"});
    for (const Kernel &kernel : kernels) {
        std::vector<double> ms;
        std::uint64_t base_digest = 0;
        for (std::size_t t = 0; t < thread_counts.size(); ++t) {
            setGlobalThreadCount(thread_counts[t]);
            std::uint64_t digest = 0;
            ms.push_back(timeKernel(kernel, data, reps, digest));
            aiwc::bench::addReportEntry(
                std::string(kernel.name) + "/" +
                    std::to_string(thread_counts[t]) + "T",
                ms.back());
            if (t == 0)
                base_digest = digest;
            else if (digest != base_digest)
                deterministic = false;
        }
        table.addRow({kernel.name, formatNumber(ms[0], 2),
                      formatNumber(ms[1], 2), formatNumber(ms[2], 2),
                      formatNumber(ms[3], 2),
                      formatNumber(ms[0] / ms[2], 2),
                      formatNumber(ms[0] / ms[3], 2)});
    }
    setGlobalThreadCount(1);

    std::cout << "== Parallel scaling (best of " << reps << ") ==\n";
    table.print(std::cout);
    std::cout << "\nhardware threads: " << aiwc::defaultThreadCount()
              << "\nthread-count invariance: "
              << (deterministic ? "PASS" : "FAIL")
              << " (FNV-1a digests identical across 1/2/4/8 threads)\n";

    aiwc::bench::reportExtras()["thread_invariance"] =
        deterministic ? "true" : "false";
    const bool report_ok =
        aiwc::bench::writeBenchReport("bench_parallel_scaling");
    return deterministic && report_ok ? 0 : 1;
}
