/**
 * @file
 * Fig. 6: active-time fraction CDF (a) and CoV of idle/active interval
 * lengths (b), over the detailed 100 ms time-series subset.
 */

#include "bench_common.hh"

#include "aiwc/core/phase_analyzer.hh"
#include "aiwc/core/report_writer.hh"
#include "aiwc/telemetry/phase_model.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report = core::PhaseAnalyzer().analyze(bench::dataset());
    os << "time-series subset size: " << report.jobs << " jobs\n\n";

    bench::Comparison a("Fig. 6a: active time (% of run)");
    a.row("p25", paper::active_frac_p25_pct,
          report.active_fraction_pct.quantile(0.25));
    a.row("p50", paper::active_frac_p50_pct,
          report.active_fraction_pct.quantile(0.50));
    a.row("p75", paper::active_frac_p75_pct,
          report.active_fraction_pct.quantile(0.75));
    a.print(os);

    bench::Comparison b("Fig. 6b: interval-length CoV (%)");
    b.row("idle median", paper::idle_interval_cov_median_pct,
          report.idle_interval_cov_pct.quantile(0.5), 0);
    b.row("active median", paper::active_interval_cov_median_pct,
          report.active_interval_cov_pct.quantile(0.5), 0);
    b.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_PhaseAnalysis(benchmark::State &state)
{
    const core::PhaseAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_PhaseAnalysis)->Unit(benchmark::kMillisecond);

void
BM_PhaseGeneration(benchmark::State &state)
{
    telemetry::JobProfile profile;
    profile.active_fraction = 0.84;
    profile.active_len_median_s = 50.0;
    Rng rng(1);
    const telemetry::PhaseModel model(profile);
    for (auto _ : state) {
        auto phases =
            model.generate(static_cast<double>(state.range(0)), rng);
        benchmark::DoNotOptimize(phases);
    }
}
BENCHMARK(BM_PhaseGeneration)->Arg(1800)->Arg(36000)->Arg(345600);

} // namespace

AIWC_BENCH_MAIN("Fig. 6 (active/idle phases)", printFigure)
