/**
 * @file
 * Fig. 10: per-user average runtime and utilization CDFs.
 */

#include "bench_common.hh"

#include "aiwc/core/report_writer.hh"
#include "aiwc/core/user_behavior_analyzer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report =
        core::UserBehaviorAnalyzer().analyze(bench::dataset());

    bench::Comparison a("Fig. 10: per-user averages");
    a.row("avg runtime p25 (min)", paper::user_avg_runtime_p25_min,
          report.avg_runtime_min.quantile(0.25), 0);
    a.row("avg runtime p50 (min)", paper::user_avg_runtime_p50_min,
          report.avg_runtime_min.quantile(0.50), 0);
    a.row("avg runtime p75 (min)", paper::user_avg_runtime_p75_min,
          report.avg_runtime_min.quantile(0.75), 0);
    a.row("avg SM median (%)", paper::user_avg_sm_median_pct,
          report.avg_sm_pct.quantile(0.5));
    a.row("avg memBW median (%)", paper::user_avg_membw_median_pct,
          report.avg_membw_pct.quantile(0.5));
    a.row("avg memsize median (%)", paper::user_avg_memsize_median_pct,
          report.avg_memsize_pct.quantile(0.5));
    a.row("users > 20% avg SM (%)", 100.0 * paper::user_sm_over20_frac,
          100.0 * report.avg_sm_pct.tail(20.0));
    a.row("users > 20% avg memBW (%)",
          100.0 * paper::user_membw_over20_frac,
          100.0 * report.avg_membw_pct.tail(20.0));
    a.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_UserSummaries(benchmark::State &state)
{
    const core::UserBehaviorAnalyzer analyzer;
    for (auto _ : state) {
        auto summaries = analyzer.summarize(bench::dataset());
        benchmark::DoNotOptimize(summaries);
    }
}
BENCHMARK(BM_UserSummaries)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 10 (per-user averages)", printFigure)
