/**
 * @file
 * Fig. 8: single-resource bottleneck fractions (a) and two-resource
 * co-bottlenecks (b) — the Rx&SM overlap of data staging coinciding
 * with compute bursts.
 */

#include "bench_common.hh"

#include "aiwc/core/bottleneck_analyzer.hh"
#include "aiwc/core/report_writer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report =
        core::BottleneckAnalyzer().analyze(bench::dataset());

    bench::Comparison a("Fig. 8a: single-resource bottlenecks (%)");
    a.row("SM", 100.0 * paper::sm_bottleneck_frac,
          100.0 * report.single_of(Resource::Sm));
    a.row("memory BW (~0)", 100.0 * paper::membw_bottleneck_frac,
          100.0 * report.single_of(Resource::MemoryBw));
    a.print(os);

    bench::Comparison b("Fig. 8b: two-resource bottlenecks (%)");
    b.row("PCIe Rx & SM", 100.0 * paper::rx_and_sm_bottleneck_frac,
          100.0 * report.pair_of(Resource::PcieRx, Resource::Sm));
    double worst_pair = 0.0;
    for (double p : report.pairs)
        worst_pair = std::max(worst_pair, p);
    b.row("max pair (paper: <10%)",
          100.0 * paper::any_pair_bottleneck_max_frac,
          100.0 * worst_pair);
    b.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_PairScan(benchmark::State &state)
{
    const core::BottleneckAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report.pairs);
    }
}
BENCHMARK(BM_PairScan)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 8 (resource bottlenecks)", printFigure)
