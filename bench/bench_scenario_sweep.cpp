/**
 * @file
 * Scenario-sweep bench: wall time of the {machine class x task mix x
 * policy} frontier sweep, a single-cell engine run, and the `.scn`
 * parser — the perf trajectory of the aiwc::scenario layer.
 *
 * Timed kernels run fixed iteration counts so the aiwc.scenario.*
 * counters in the report's metrics snapshot stay a pure function of
 * (scale, seed) and bench_compare.py can exact-match them.
 */

#include "bench_common.hh"

#include "aiwc/scenario/runner.hh"
#include "aiwc/scenario/scn_parser.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace
{

using namespace aiwc;

/** Every catalog row as a scenario class — machine classes are data. */
scenario::ScenarioSpec
catalogSpec()
{
    scenario::ScenarioSpec spec;
    spec.name = "bench-catalog";
    for (std::size_t i = 0; i < sim::machineSpecCount(); ++i)
        spec.machines.push_back(
            scenario::fromMachineSpec(sim::machineSpecTable()[i]));
    return spec;
}

/** A small `.scn` document for the parser kernel (no file I/O). */
const char *const scn_doc = R"(# bench catalog
machine class:
{
    Name: bench-node
    Number of machines: 8
    CPU type: X86
    Number of cores: 64
    Memory: 262144
    S-States: [120, 90, 30, 6, 0]
    S-State latencies: [0, 400, 1500, 6000, 20000]
    P-States: [8, 6, 4, 3]
    C-States: [2.5, 1, 0.3, 0]
    MIPS: [1100, 900, 700, 500]
    GPUs: yes
    Number of GPUs: 2
    GPU TDP: 250
}
task class:
{
    Name: bench-task
    Start time: 0
    End time: 600000
    Inter arrival: 4000
    Expected runtime: 120000
    Memory: 2048
    Number of cores: 2
    Task type: AI
    Seed: 11
}
)";

scenario::FrontierReport
runSweep(int machines_per_cell)
{
    scenario::SweepOptions options;
    options.seed = bench::benchSeed();
    options.machines_per_cell = machines_per_cell;
    const scenario::ScenarioRunner runner(catalogSpec(), options);
    static const scenario::GreedyPackPolicy greedy;
    static const scenario::LoadBalancePolicy balance;
    static const scenario::EnergyFirstPolicy energy;
    const std::vector<const scenario::SchedulingPolicy *> policies{
        &greedy, &balance, &energy};
    return runner.sweep(bench::dataset(), scenario::defaultTaskMixes(),
                        policies);
}

void
printFigure(std::ostream &os)
{
    const scenario::FrontierReport report = runSweep(4);
    report.printTable(os);
    os << '\n';

    bench::reportExtras()["sweep_cells"] =
        std::to_string(report.cells.size());
    bench::reportExtras()["frontier_cells"] =
        std::to_string(report.frontier.size());
}

void
BM_ScenarioSweep(benchmark::State &state)
{
    std::size_t cells = 0;
    for (auto _ : state) {
        auto report = runSweep(4);
        cells = report.cells.size();
        benchmark::DoNotOptimize(cells);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(cells));
}
BENCHMARK(BM_ScenarioSweep)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void
BM_CellSimulate(benchmark::State &state)
{
    const scenario::ScenarioSpec spec = catalogSpec();
    const scenario::EnergyFirstPolicy policy;
    const std::vector<scenario::Task> tasks = scenario::tasksFromDataset(
        bench::dataset(), scenario::defaultTaskMixes()[0],
        bench::benchSeed());
    for (auto _ : state) {
        auto stats =
            scenario::simulateCell(spec.machines[0], 4, tasks, policy);
        benchmark::DoNotOptimize(stats.joules);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(tasks.size()));
}
BENCHMARK(BM_CellSimulate)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(10);

void
BM_ScnParse(benchmark::State &state)
{
    for (auto _ : state) {
        auto parsed = scenario::parseScn(scn_doc);
        benchmark::DoNotOptimize(parsed.spec.machines.size());
    }
}
BENCHMARK(BM_ScnParse)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(200);

} // namespace

AIWC_BENCH_MAIN("scenario sweep", printFigure)
