/**
 * @file
 * Fig. 13 / Sec. V: job-size distribution, GPU-hour shares by size,
 * user multi-GPU reach, and per-size queue waits.
 */

#include "bench_common.hh"

#include "aiwc/core/multi_gpu_analyzer.hh"
#include "aiwc/core/report_writer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report = core::MultiGpuAnalyzer().analyze(bench::dataset());

    bench::Comparison a("Fig. 13a: job-count shares (%)");
    a.row("1 GPU", 100.0 * paper::single_gpu_job_frac,
          100.0 * report.job_fraction[0]);
    a.row("> 2 GPUs", 100.0 * paper::over2_gpu_job_frac,
          100.0 * (report.job_fraction[2] + report.job_fraction[3]));
    a.row(">= 9 GPUs (paper: <1)", 100.0 * paper::over8_gpu_job_frac,
          100.0 * report.job_fraction[3]);
    a.print(os);

    bench::Comparison b("Fig. 13b: GPU-hour shares (%)");
    b.row("multi-GPU jobs", 100.0 * paper::multi_gpu_hour_share,
          100.0 * (1.0 - report.hour_fraction[0]));
    b.print(os);

    bench::Comparison u("Sec. V: user multi-GPU reach (%)");
    u.row(">= 1 multi-GPU job", 100.0 * paper::users_with_multi_gpu,
          100.0 * report.users_multi);
    u.row(">= 3 GPUs", 100.0 * paper::users_with_3plus_gpu,
          100.0 * report.users_3plus);
    u.row(">= 9 GPUs", 100.0 * paper::users_with_9plus_gpu,
          100.0 * report.users_9plus);
    u.print(os);

    bench::Comparison w("Sec. V: median wait by size (s)");
    w.row("1 GPU", paper::wait_median_1gpu_s, report.median_wait_s[0]);
    w.row("2 GPUs", paper::wait_median_multi_s, report.median_wait_s[1]);
    w.row("3-8 GPUs", paper::wait_median_multi_s,
          report.median_wait_s[2]);
    w.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_MultiGpuAnalysis(benchmark::State &state)
{
    const core::MultiGpuAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_MultiGpuAnalysis)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 13 (multi-GPU jobs)", printFigure)
