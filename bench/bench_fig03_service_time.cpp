/**
 * @file
 * Fig. 3: run-time CDFs of GPU vs. CPU jobs (a) and queue waits as a
 * percentage of service time (b). Queue waits are *emergent* from the
 * Slurm-like scheduler replay — no generator parameter sets them.
 */

#include "bench_common.hh"

#include "aiwc/core/report_writer.hh"
#include "aiwc/core/service_time_analyzer.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report =
        core::ServiceTimeAnalyzer().analyze(bench::dataset());

    bench::Comparison a("Fig. 3a: run times (minutes)");
    a.row("GPU p25", paper::gpu_runtime_p25_min,
          report.gpu_runtime_min.quantile(0.25));
    a.row("GPU p50", paper::gpu_runtime_p50_min,
          report.gpu_runtime_min.quantile(0.50));
    a.row("GPU p75", paper::gpu_runtime_p75_min,
          report.gpu_runtime_min.quantile(0.75));
    a.row("CPU p50", paper::cpu_runtime_p50_min,
          report.cpu_runtime_min.quantile(0.50));
    a.print(os);

    bench::Comparison b("Fig. 3b: queue waits");
    b.row("GPU jobs waiting < 1 min (%)",
          100.0 * paper::gpu_wait_under_1min_frac,
          100.0 * report.gpuWaitUnder(60.0));
    b.row("CPU jobs waiting > 1 min (%)",
          100.0 * paper::cpu_wait_over_1min_frac,
          100.0 * report.cpuWaitOver(60.0));
    b.row("GPU median wait (% of service, paper <2)",
          paper::gpu_wait_service_pct_median_max,
          report.gpu_wait_pct.quantile(0.5), 2);
    b.print(os);

    core::ReportWriter(os).print(report);
}

void
BM_ServiceTimeAnalysis(benchmark::State &state)
{
    const core::ServiceTimeAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_ServiceTimeAnalysis)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 3 (service times)", printFigure)
