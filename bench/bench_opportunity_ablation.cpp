/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out, plus
 * quantification of the Sec. VIII opportunities:
 *
 *  1. phase-model irregularity (log-normal vs. near-deterministic
 *     intervals) -> Fig. 6b interval CoVs collapse;
 *  2. idle-GPU injection off -> Fig. 14a bimodality disappears;
 *  3. whole-node CPU requests off (CPU jobs request half nodes) ->
 *     the Fig. 3b GPU/CPU wait gap shrinks;
 *  4. power-cap sweep 100-300 W -> Fig. 9b impact curves;
 *  5. co-location interference-threshold sweep -> advisor admission
 *     vs. predicted slowdown;
 *  6. the multi-tier fleet plan (Sec. VIII recommendation).
 */

#include "bench_common.hh"

#include <map>

#include "aiwc/sim/cluster_factory.hh"

#include "aiwc/core/multi_gpu_analyzer.hh"
#include "aiwc/stats/descriptive.hh"
#include "aiwc/core/phase_analyzer.hh"
#include "aiwc/core/service_time_analyzer.hh"
#include "aiwc/opportunity/checkpoint_planner.hh"
#include "aiwc/opportunity/colocation_advisor.hh"
#include "aiwc/opportunity/mig_planner.hh"
#include "aiwc/opportunity/multi_tier_planner.hh"
#include "aiwc/opportunity/power_cap_planner.hh"

namespace
{

using namespace aiwc;

workload::SynthesisResult
synthesize(const workload::CalibrationProfile &profile)
{
    workload::SynthesisOptions options;
    options.scale = std::min(bench::benchScale(), 0.08);
    options.seed = bench::benchSeed();
    return workload::TraceSynthesizer(profile, options).run();
}

void
ablatePhaseIrregularity(std::ostream &os)
{
    auto regular = workload::CalibrationProfile::supercloud();
    for (auto &c : regular.classes) {
        c.phase.active_len_sigma = 0.05;  // near-deterministic periods
        c.phase.idle_len_sigma = 0.05;
    }
    const auto base = synthesize(
        workload::CalibrationProfile::supercloud());
    const auto ablated = synthesize(regular);
    const auto base_phases = core::PhaseAnalyzer().analyze(base.dataset);
    const auto abl_phases =
        core::PhaseAnalyzer().analyze(ablated.dataset);

    os << "== ablation 1: phase irregularity ==\n";
    TextTable t({"variant", "idle CoV p50 (%)", "active CoV p50 (%)"});
    t.addRow({"log-normal (paper-like)",
              formatNumber(
                  base_phases.idle_interval_cov_pct.quantile(0.5), 0),
              formatNumber(
                  base_phases.active_interval_cov_pct.quantile(0.5), 0)});
    t.addRow({"near-deterministic",
              formatNumber(
                  abl_phases.idle_interval_cov_pct.quantile(0.5), 0),
              formatNumber(
                  abl_phases.active_interval_cov_pct.quantile(0.5), 0)});
    t.print(os);
    os << "-> without heavy-tailed intervals the Fig. 6b CoVs collapse\n\n";
}

void
ablateIdleGpus(std::ostream &os)
{
    auto no_idle = workload::CalibrationProfile::supercloud();
    for (auto &c : no_idle.classes)
        c.idle_gpu_prob = 0.0;
    const auto base = synthesize(
        workload::CalibrationProfile::supercloud());
    const auto ablated = synthesize(no_idle);
    const auto base_mg = core::MultiGpuAnalyzer().analyze(base.dataset);
    const auto abl_mg =
        core::MultiGpuAnalyzer().analyze(ablated.dataset);

    os << "== ablation 2: idle-GPU pathology ==\n";
    TextTable t({"variant", "SM CoV across GPUs p75 (%)",
                 "half+ GPUs idle (%)"});
    t.addRow({"with idle GPUs (paper-like)",
              formatNumber(base_mg.sm_cov_all_pct.quantile(0.75), 0),
              formatPercent(base_mg.idle_gpu_job_fraction)});
    t.addRow({"idle GPUs off",
              formatNumber(abl_mg.sm_cov_all_pct.quantile(0.75), 0),
              formatPercent(abl_mg.idle_gpu_job_fraction)});
    t.print(os);
    os << "-> Fig. 14a's bimodality comes from the idle-GPU jobs\n\n";
}

void
ablateWholeNodeCpu(std::ostream &os)
{
    // CPU jobs requesting only part of a node co-locate like GPU jobs
    // and stop queueing.
    auto half_nodes = workload::CalibrationProfile::supercloud();
    half_nodes.cpu_jobs.node_count_weights = {1.0, 0, 0, 0, 0, 0};
    half_nodes.cpu_jobs.array_prob = 0.0;
    const auto base = synthesize(
        workload::CalibrationProfile::supercloud());
    const auto ablated = synthesize(half_nodes);
    const auto base_st =
        core::ServiceTimeAnalyzer().analyze(base.dataset);
    const auto abl_st =
        core::ServiceTimeAnalyzer().analyze(ablated.dataset);

    os << "== ablation 3: whole-node CPU demand ==\n";
    TextTable t({"variant", "CPU jobs waiting > 1 min (%)",
                 "GPU jobs waiting < 1 min (%)"});
    t.addRow({"arrays + multi-node (paper-like)",
              formatPercent(base_st.cpuWaitOver(60.0)),
              formatPercent(base_st.gpuWaitUnder(60.0))});
    t.addRow({"single nodes, no arrays",
              formatPercent(abl_st.cpuWaitOver(60.0)),
              formatPercent(abl_st.gpuWaitUnder(60.0))});
    t.print(os);
    os << "-> the Fig. 3b wait gap needs bursty whole-node demand\n\n";
}

void
sweepPowerCaps(std::ostream &os)
{
    const auto plans = opportunity::PowerCapPlanner().plan(
        bench::dataset(), {100.0, 150.0, 200.0, 250.0, 300.0});
    os << "== ablation 4: power-cap sweep ==\n";
    TextTable t({"cap (W)", "unimpacted", "impacted by avg",
                 "net throughput gain"});
    for (const auto &p : plans) {
        t.addRow({formatNumber(p.cap_watts, 0),
                  formatPercent(p.unimpacted),
                  formatPercent(p.impacted_by_avg),
                  formatPercent(p.throughput_gain)});
    }
    t.print(os);
    os << '\n';
}

void
sweepColocationThreshold(std::ostream &os)
{
    os << "== ablation 5: co-location threshold sweep ==\n";
    TextTable t({"max slowdown", "paired jobs", "GPU-hours saved",
                 "mean pair slowdown"});
    for (double threshold : {1.02, 1.05, 1.10, 1.25, 1.50}) {
        const opportunity::ColocationAdvisor advisor({}, threshold);
        const auto report = advisor.analyze(bench::dataset());
        t.addRow({formatNumber(threshold, 2) + "x",
                  formatPercent(report.paired_job_fraction),
                  formatPercent(report.gpu_hours_saved_fraction),
                  formatNumber(report.mean_pair_slowdown, 3) + "x"});
    }
    t.print(os);
    os << '\n';
}

void
multiTierPlan(std::ostream &os)
{
    os << "== Sec. VIII: two-tier fleet plan ==\n";
    TextTable t({"economy tier", "hours shifted", "shifted slowdown",
                 "fleet cost saving"});
    for (double speed : {0.35, 0.5, 0.7}) {
        const opportunity::MultiTierPlanner planner(speed, 0.7 * speed);
        const auto plan = planner.plan(bench::dataset());
        t.addRow({formatNumber(speed, 2) + "x speed",
                  formatPercent(plan.shifted_hour_fraction),
                  formatNumber(plan.mean_shifted_slowdown, 2) + "x",
                  formatPercent(plan.cost_saving_fraction)});
    }
    t.print(os);
    os << '\n';
}

void
migPlan(std::ostream &os)
{
    os << "== Sec. VIII: MIG slicing what-if ==\n";
    TextTable t({"slices/GPU", "mean slices/job", "full-GPU jobs",
                 "peak GPUs (excl -> MIG)", "demand reduction",
                 "repartitions"});
    for (int slices : {4, 7}) {
        const opportunity::MigPlanner planner(slices);
        const auto plan = planner.plan(bench::dataset());
        t.addRow({formatNumber(slices, 0),
                  formatNumber(plan.mean_slices, 2),
                  formatPercent(plan.full_gpu_jobs),
                  formatNumber(plan.peak_gpus_exclusive, 0) + " -> " +
                      formatNumber(plan.peak_gpus_mig, 0),
                  formatPercent(plan.gpu_demand_reduction),
                  formatNumber(
                      static_cast<double>(plan.repartition_events), 0)});
    }
    t.print(os);
    os << "-> repartition churn is why the paper asks for automatic\n"
          "   re-partitioning without job interruption\n\n";
}

void
checkpointPlan(std::ostream &os)
{
    os << "== Sec. VI: checkpoint/restart what-if ==\n";
    TextTable t({"interval", "lost hours (none -> ckpt)",
                 "write overhead (h)", "net fleet saving"});
    for (const auto &plan : opportunity::CheckpointPlanner().sweep(
             bench::dataset(), {600.0, 1800.0, 3600.0, 7200.0}, 20.0)) {
        t.addRow({formatDuration(plan.interval_s),
                  formatNumber(plan.lost_hours_baseline, 0) + " -> " +
                      formatNumber(plan.lost_hours_with_ckpt, 0),
                  formatNumber(plan.overhead_hours, 1),
                  formatPercent(plan.net_saving_fraction)});
    }
    t.print(os);
    os << "-> crashes and IDE timeouts currently forfeit their whole "
          "footprint\n\n";
}

void
ablateFairshare(std::ostream &os)
{
    // Replay the same request stream under plain FCFS+backfill vs.
    // fair-share priority and compare heavy/light users' median waits.
    const auto base = synthesize(
        workload::CalibrationProfile::supercloud());

    auto replay = [&](bool fairshare) {
        sim::Cluster cluster(
            sim::miniSupercloudSpec(base.cluster_nodes));
        sim::Simulation sim;
        sched::SchedulerOptions options;
        options.fairshare = fairshare;
        sched::SlurmScheduler scheduler(sim, cluster, options);
        for (const auto &r : base.dataset.records()) {
            sched::JobRequest req;
            req.id = r.id;
            req.user = r.user;
            req.submit_time = r.submit_time;
            req.duration = r.runTime();
            req.walltime_limit = r.walltime_limit;
            req.gpus = r.gpus;
            req.cpu_slots = r.cpu_slots;
            req.ram_gb = r.ram_gb;
            scheduler.submit(req);
        }
        sim.run();
        // Median wait of the busiest user vs. everyone else.
        std::map<UserId, std::size_t> counts;
        for (const auto &job : scheduler.jobs())
            ++counts[job.request.user];
        UserId top = 0;
        std::size_t best = 0;
        for (const auto &[user, n] : counts) {
            if (n > best) {
                best = n;
                top = user;
            }
        }
        std::vector<double> heavy, light;
        for (const auto &job : scheduler.jobs()) {
            (job.request.user == top ? heavy : light)
                .push_back(job.waitTime());
        }
        return std::pair{stats::percentile(std::move(heavy), 0.5),
                         stats::percentile(std::move(light), 0.5)};
    };

    const auto [h0, l0] = replay(false);
    const auto [h1, l1] = replay(true);
    os << "== ablation 6: fair-share priority ==\n";
    TextTable t({"policy", "top user's median wait (s)",
                 "other users' median wait (s)"});
    t.addRow({"plain queue (paper-like)", formatNumber(h0, 1),
              formatNumber(l0, 1)});
    t.addRow({"fair-share", formatNumber(h1, 1), formatNumber(l1, 1)});
    t.print(os);
    os << "-> fair-share shifts waiting onto the heaviest consumer\n\n";
}

void
printFigure(std::ostream &os)
{
    ablatePhaseIrregularity(os);
    ablateIdleGpus(os);
    ablateWholeNodeCpu(os);
    sweepPowerCaps(os);
    sweepColocationThreshold(os);
    ablateFairshare(os);
    multiTierPlan(os);
    migPlan(os);
    checkpointPlan(os);
}

void
BM_ColocationAdvisor(benchmark::State &state)
{
    const opportunity::ColocationAdvisor advisor;
    for (auto _ : state) {
        auto report = advisor.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_ColocationAdvisor)->Unit(benchmark::kMillisecond);

void
BM_MultiTierPlan(benchmark::State &state)
{
    const opportunity::MultiTierPlanner planner;
    for (auto _ : state) {
        auto plan = planner.plan(bench::dataset());
        benchmark::DoNotOptimize(plan);
    }
}
BENCHMARK(BM_MultiTierPlan)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("opportunity & ablation studies", printFigure)
