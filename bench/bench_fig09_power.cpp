/**
 * @file
 * Fig. 9: GPU power draw CDFs (a) and the power-cap what-if (b),
 * extended with the PowerCapPlanner's over-provisioning throughput
 * analysis (Sec. III takeaway).
 */

#include "bench_common.hh"

#include "aiwc/core/power_analyzer.hh"
#include "aiwc/core/report_writer.hh"
#include "aiwc/opportunity/power_cap_planner.hh"

namespace
{

using namespace aiwc;
namespace paper = core::paper;

void
printFigure(std::ostream &os)
{
    const auto report = core::PowerAnalyzer().analyze(bench::dataset());

    bench::Comparison a("Fig. 9a: power draw (W)");
    a.row("median average", paper::power_avg_median_w,
          report.avg_watts.quantile(0.5), 0);
    a.row("median maximum", paper::power_max_median_w,
          report.max_watts.quantile(0.5), 0);
    a.print(os);

    bench::Comparison b("Fig. 9b: 150 W cap impact");
    b.row("unimpacted (%) (paper: >60)",
          100.0 * paper::cap150_unimpacted_min_frac,
          100.0 * report.caps[0].unimpacted);
    b.row("impacted by avg (%) (paper: <10)",
          100.0 * paper::cap150_avg_impacted_max_frac,
          100.0 * report.caps[0].impacted_by_avg);
    b.print(os);

    core::ReportWriter(os).print(report);

    // Over-provisioning what-if (our quantification of the takeaway).
    const auto plans =
        opportunity::PowerCapPlanner().plan(bench::dataset());
    os << "== over-provisioning what-if ==\n";
    TextTable t({"cap", "GPUs per budget", "weighted slowdown",
                 "net throughput gain"});
    for (const auto &p : plans) {
        t.addRow({formatNumber(p.cap_watts, 0) + " W",
                  formatNumber(p.gpu_multiplier, 2) + "x",
                  formatNumber(p.weighted_slowdown, 3) + "x",
                  formatPercent(p.throughput_gain)});
    }
    t.print(os);
    os << '\n';
}

void
BM_PowerAnalysis(benchmark::State &state)
{
    const core::PowerAnalyzer analyzer;
    for (auto _ : state) {
        auto report = analyzer.analyze(bench::dataset());
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_PowerAnalysis)->Unit(benchmark::kMillisecond);

void
BM_CapPlanning(benchmark::State &state)
{
    const opportunity::PowerCapPlanner planner;
    for (auto _ : state) {
        auto plans = planner.plan(bench::dataset());
        benchmark::DoNotOptimize(plans);
    }
}
BENCHMARK(BM_CapPlanning)->Unit(benchmark::kMillisecond);

} // namespace

AIWC_BENCH_MAIN("Fig. 9 (power & power capping)", printFigure)
