/**
 * @file
 * Include/dependency graph and the module-layering spec.
 *
 * aiwc-lint v2's cross-TU view: every file's `#include` directives are
 * extracted and resolved against the repository tree, giving a file
 * dependency graph. A checked-in spec (tools/aiwc-lint/layers.txt)
 * maps directories to named modules and declares the *complete* set of
 * modules each module may depend on — the allowed DAG. Two rules read
 * the graph:
 *
 *  - include-cycle    any cycle among project headers/sources
 *  - layer-violation  a direct include crossing module boundaries that
 *                     the spec does not allow
 *
 * The spec is the source of truth for the architecture diagram in
 * DESIGN.md; this header is deliberately ignorant of the aiwc library
 * so the linter keeps building when the tree it judges does not.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace aiwc::lint
{

struct Finding;

/** One `#include` directive, resolved when it names a project file. */
struct IncludeEdge {
    std::string spelled;   //!< path as written between the delimiters
    std::string resolved;  //!< repo-relative target, "" if external
    int line = 0;          //!< physical line of the directive
    bool angled = false;   //!< <...> (true) vs "..." (false)
};

struct Token;

/**
 * Extract include directives (spelled form only; `resolved` left
 * empty) from one file's lexed token stream. Cheap enough to run per
 * analysis; resolution happens separately because it depends on which
 * other files exist *now*, which the incremental cache must not bake
 * in.
 */
std::vector<IncludeEdge> extractIncludes(const std::vector<Token> &tokens);

/**
 * Fill in `resolved` for every edge naming a project file. Resolution
 * mirrors the build: `aiwc/...` maps to src/include/aiwc/..., quoted
 * paths resolve relative to the including file's directory, then a
 * repo-root-relative lookup. `known_files` holds the repo-relative
 * paths of the lintable tree.
 */
void resolveIncludes(const std::string &path,
                     std::vector<IncludeEdge> &edges,
                     const std::set<std::string> &known_files);

/**
 * The module layering spec parsed from layers.txt:
 *
 *     # comment
 *     module <name> <dir-prefix> [<dir-prefix>...]
 *     allow <name> [<dep>...]     # complete direct-dependency set
 *     allow <name> *              # unconstrained (tests, bench)
 *
 * Every module must have exactly one `allow` line; directory prefixes
 * must be distinct. Longest-prefix match maps files to modules.
 */
struct LayerSpec {
    /** module -> allowed direct dependencies (absent value: any). */
    std::map<std::string, std::set<std::string>> allowed;
    std::set<std::string> unconstrained;  //!< modules with `allow X *`
    /** directory prefix (no trailing '/') -> module name. */
    std::vector<std::pair<std::string, std::string>> prefixes;

    /** Module owning `path`, or "" when no prefix matches. */
    std::string moduleOf(const std::string &path) const;

    /** Parse the spec text; returns false and sets `error` on failure. */
    static bool parse(const std::string &text, LayerSpec &out,
                      std::string &error);
};

/** Per-file resolved include lists, keyed by repo-relative path. */
using IncludeGraph = std::map<std::string, std::vector<IncludeEdge>>;

/**
 * layer-violation: direct includes whose target module is neither the
 * including file's module nor in its allowed set.
 */
void checkLayering(const IncludeGraph &graph, const LayerSpec &spec,
                   std::vector<Finding> &out);

/**
 * include-cycle: strongly-connected components of the resolved include
 * graph. One finding per cycle, anchored at the lexicographically
 * smallest member's closing edge, listing the full cycle path.
 */
void checkCycles(const IncludeGraph &graph, std::vector<Finding> &out);

/**
 * Files that (transitively) include any file in `changed`, plus the
 * changed files themselves — the set a content change invalidates.
 */
std::set<std::string>
reverseClosure(const IncludeGraph &graph,
               const std::set<std::string> &changed);

} // namespace aiwc::lint
