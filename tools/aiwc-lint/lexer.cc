#include "lexer.hh"

#include <cctype>

namespace aiwc::lint
{

namespace
{

/**
 * Cursor over spliced source text. Backslash-newline is removed during
 * the splice pass; `lineAt` maps every spliced character back to its
 * original 1-based line so tokens report real positions.
 */
struct Cursor {
    std::string text;
    std::vector<int> line_of;
    std::size_t pos = 0;

    bool done() const { return pos >= text.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos + ahead < text.size() ? text[pos + ahead] : '\0';
    }
    int line() const
    {
        if (line_of.empty())
            return 1;
        return line_of[pos < line_of.size() ? pos : line_of.size() - 1];
    }
    /** Physical line of the most recently consumed character. */
    int lastLine() const
    {
        if (line_of.empty() || pos == 0)
            return 1;
        const std::size_t i = pos - 1;
        return line_of[i < line_of.size() ? i : line_of.size() - 1];
    }
};

/** Remove backslash-newline splices, keeping the per-character line map. */
Cursor
splice(const std::string &source)
{
    Cursor c;
    c.text.reserve(source.size());
    c.line_of.reserve(source.size());
    int line = 1;
    for (std::size_t i = 0; i < source.size(); ++i) {
        if (source[i] == '\\' &&
            (i + 1 < source.size() && source[i + 1] == '\n')) {
            ++line;
            ++i;  // drop both characters; the logical line continues
            continue;
        }
        if (source[i] == '\\' && i + 2 < source.size() &&
            source[i + 1] == '\r' && source[i + 2] == '\n') {
            ++line;
            i += 2;
            continue;
        }
        c.text.push_back(source[i]);
        c.line_of.push_back(line);
        if (source[i] == '\n')
            ++line;
    }
    return c;
}

bool
isIdentStart(char ch)
{
    return std::isalpha(static_cast<unsigned char>(ch)) || ch == '_';
}

bool
isIdentChar(char ch)
{
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
}

/** Encoding prefix (u8, u, U, L) ending at `pos` and starting a literal? */
bool
isEncodingPrefix(const std::string &ident)
{
    return ident == "u8" || ident == "u" || ident == "U" || ident == "L" ||
           ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
           ident == "LR";
}

/** Consume a "..." or '...' literal body (opening quote at c.pos). */
void
consumeQuoted(Cursor &c, std::string &out)
{
    const char quote = c.peek();
    out.push_back(quote);
    ++c.pos;
    while (!c.done()) {
        const char ch = c.peek();
        if (ch == '\\' && c.pos + 1 < c.text.size()) {
            out.push_back(ch);
            out.push_back(c.peek(1));
            c.pos += 2;
            continue;
        }
        out.push_back(ch);
        ++c.pos;
        if (ch == quote || ch == '\n')  // unterminated: stop at line end
            return;
    }
}

/** Consume R"delim( ... )delim" with the opening R" already in `out`. */
void
consumeRawString(Cursor &c, std::string &out)
{
    std::string delim;
    while (!c.done() && c.peek() != '(' && c.peek() != '\n' &&
           delim.size() < 16) {
        delim.push_back(c.peek());
        out.push_back(c.peek());
        ++c.pos;
    }
    if (c.done() || c.peek() != '(')  // malformed; give up on this literal
        return;
    out.push_back('(');
    ++c.pos;
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = c.text.find(closer, c.pos);
    if (end == std::string::npos) {  // unterminated: swallow to EOF
        out.append(c.text, c.pos, std::string::npos);
        c.pos = c.text.size();
        return;
    }
    out.append(c.text, c.pos, end - c.pos + closer.size());
    c.pos = end + closer.size();
}

/** Multi-character punctuators the rules care about ("::" only). */
bool
startsScopeResolution(const Cursor &c)
{
    return c.peek() == ':' && c.peek(1) == ':';
}

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    Cursor c = splice(source);
    std::vector<Token> tokens;
    bool at_line_start = true;  // only whitespace seen since last newline

    while (!c.done()) {
        const char ch = c.peek();
        const int line = c.line();

        if (ch == '\n') {
            at_line_start = true;
            ++c.pos;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(ch))) {
            ++c.pos;
            continue;
        }

        // Line comment.
        if (ch == '/' && c.peek(1) == '/') {
            std::string text;
            while (!c.done() && c.peek() != '\n') {
                text.push_back(c.peek());
                ++c.pos;
            }
            tokens.push_back(
                {TokenKind::Comment, std::move(text), line, c.lastLine()});
            continue;
        }

        // Block comment, possibly spanning lines.
        if (ch == '/' && c.peek(1) == '*') {
            std::string text = "/*";
            c.pos += 2;
            while (!c.done()) {
                if (c.peek() == '*' && c.peek(1) == '/') {
                    text += "*/";
                    c.pos += 2;
                    break;
                }
                text.push_back(c.peek());
                ++c.pos;
            }
            tokens.push_back(
                {TokenKind::Comment, std::move(text), line, c.lastLine()});
            // A block comment does not end the "start of line" state for
            // preprocessor detection: `  /* x */ #include` is a directive.
            continue;
        }

        // Preprocessor logical line (continuations already spliced).
        if (ch == '#' && at_line_start) {
            std::string text;
            while (!c.done() && c.peek() != '\n') {
                // Comments inside directives end or interrupt them.
                if (c.peek() == '/' && c.peek(1) == '/')
                    break;
                if (c.peek() == '/' && c.peek(1) == '*') {
                    text.push_back(' ');
                    c.pos += 2;
                    while (!c.done() &&
                           !(c.peek() == '*' && c.peek(1) == '/'))
                        ++c.pos;
                    if (!c.done())
                        c.pos += 2;
                    continue;
                }
                text.push_back(c.peek());
                ++c.pos;
            }
            tokens.push_back({TokenKind::PpDirective, std::move(text), line,
                              c.lastLine()});
            continue;
        }
        at_line_start = false;

        // Identifier, or an encoding prefix fused to a string literal.
        if (isIdentStart(ch)) {
            std::string text;
            while (!c.done() && isIdentChar(c.peek())) {
                text.push_back(c.peek());
                ++c.pos;
            }
            if (!c.done() && (c.peek() == '"' || c.peek() == '\'') &&
                isEncodingPrefix(text)) {
                const bool raw = text.back() == 'R';
                if (c.peek() == '"' && raw) {
                    text.push_back('"');
                    ++c.pos;
                    consumeRawString(c, text);
                    tokens.push_back({TokenKind::String, std::move(text),
                                      line, c.lastLine()});
                } else {
                    std::string body;
                    consumeQuoted(c, body);
                    const TokenKind kind = body[0] == '"'
                                               ? TokenKind::String
                                               : TokenKind::CharLiteral;
                    tokens.push_back({kind, text + body, line,
                                      c.lastLine()});
                }
                continue;
            }
            tokens.push_back(
                {TokenKind::Identifier, std::move(text), line, c.lastLine()});
            continue;
        }

        // Number (pp-number: also eats suffixes and separators).
        if (std::isdigit(static_cast<unsigned char>(ch)) ||
            (ch == '.' && std::isdigit(static_cast<unsigned char>(
                              c.peek(1))))) {
            std::string text;
            while (!c.done() &&
                   (isIdentChar(c.peek()) || c.peek() == '.' ||
                    c.peek() == '\'' ||
                    ((c.peek() == '+' || c.peek() == '-') && !text.empty() &&
                     (text.back() == 'e' || text.back() == 'E' ||
                      text.back() == 'p' || text.back() == 'P')))) {
                text.push_back(c.peek());
                ++c.pos;
            }
            tokens.push_back(
                {TokenKind::Number, std::move(text), line, c.lastLine()});
            continue;
        }

        // Plain string / char literal.
        if (ch == '"' || ch == '\'') {
            std::string text;
            consumeQuoted(c, text);
            const TokenKind kind =
                ch == '"' ? TokenKind::String : TokenKind::CharLiteral;
            tokens.push_back({kind, std::move(text), line, c.lastLine()});
            continue;
        }

        // Punctuator; keep "::" fused so scope lookups are one token.
        if (startsScopeResolution(c)) {
            c.pos += 2;
            tokens.push_back({TokenKind::Punct, "::", line, c.lastLine()});
            continue;
        }
        ++c.pos;
        tokens.push_back(
            {TokenKind::Punct, std::string(1, ch), line, c.lastLine()});
    }
    return tokens;
}

} // namespace aiwc::lint
