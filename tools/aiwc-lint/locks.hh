/**
 * @file
 * aiwc-lint v3: the static concurrency model.
 *
 * Three layers, all driven by the annotation vocabulary of
 * aiwc/base/thread_annotations.hh as captured by the outline parser:
 *
 *  1. A per-function *lock-set analysis* (analyzeLocks). Walking each
 *     function body's token range, it tracks RAII guard scopes
 *     (std::lock_guard / std::scoped_lock / std::unique_lock and the
 *     project's aiwc::MutexLock / MutexLock2), including
 *     std::defer_lock / std::adopt_lock tags and explicit
 *     .lock()/.unlock() calls *on the guard object*. The lock-set at
 *     each point powers three per-file rules:
 *       - lock-discipline   manual mutex calls, deferred guards never
 *                           locked, double-locked / not-held guards
 *       - guarded-field     AIWC_GUARDED_BY member accessed without
 *                           its mutex held
 *       - requires-lock     AIWC_REQUIRES callee without the lock,
 *                           AIWC_EXCLUDES callee with it
 *     Annotations on out-of-line definitions resolve through the
 *     companion-header outline, so .cc files see their class's model.
 *
 *  2. A per-file *lock-order contribution*: every acquisition made
 *     while another resolved lock is held emits an observed LockEdge;
 *     AIWC_ACQUIRED_BEFORE annotations emit declared ones.
 *
 *  3. A whole-program *lock-order graph* (checkLockOrder): the union
 *     of all files' edges and the checked-in tools/aiwc-lint/locks.txt
 *     spec. Any cycle — including an observed acquisition that runs
 *     against the declared order — is a lock-order-cycle finding with
 *     the full witness path, each hop labeled with its provenance.
 *
 * Like every aiwc-lint rule this is a heuristic over tokens, not a
 * points-to analysis: lock identity inside a function is the final
 * identifier of the lock expression (`other.mutex_` and `mutex_` are
 * the same *order-graph node* but distinct dynamic locks — which is
 * exactly the granularity a static order check wants), and graph nodes
 * are "Class::field" names resolved against the known mutex-typed
 * fields. What cannot be resolved is skipped, never guessed.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "outline.hh"
#include "rules.hh"

namespace aiwc::lint
{

/**
 * The lock-order spec parsed from tools/aiwc-lint/locks.txt:
 *
 *     # comment
 *     lock <alias> <Class::field>
 *     order <alias-held-first> <alias-acquired-second>
 *
 * Aliases are file-local names for graph nodes; `order` edges join the
 * observed edges in one graph, so an acquisition that contradicts the
 * declared order closes a cycle and is reported as one.
 */
struct LockSpec {
    struct Order {
        std::string from;  //!< node name (resolved from alias)
        std::string to;
        int line = 0;      //!< locks.txt line of the order directive
    };

    std::map<std::string, std::string> locks;  //!< alias -> Class::field
    std::vector<Order> orders;

    /** Parse the spec text; returns false and sets `error` on failure. */
    static bool parse(const std::string &text, LockSpec &out,
                      std::string &error);
};

/**
 * Run the lock-set pass over one file. `tokens` is the *raw* lexer
 * output (function body ranges recorded by the outline index into it);
 * `outline` is this file's outline and `companion` the module header's
 * (nullptr when there is none). `discipline` gates the lock-discipline
 * findings (project law applies to src/ only); guarded-field,
 * requires-lock, and lock-order edges are always produced.
 */
void analyzeLocks(const std::string &path, const std::vector<Token> &tokens,
                  const Outline &outline, const Outline *companion,
                  bool discipline, std::vector<Finding> &findings,
                  std::vector<LockEdge> &edges);

/**
 * Whole-program lock-order check: merge every record's lock edges with
 * the spec (`spec` may be nullptr when no locks.txt exists) and report
 * each cycle once as a lock-order-cycle finding. Findings anchor at
 * the first observed edge's file:line when the cycle contains one, and
 * at `spec_path` otherwise.
 */
void checkLockOrder(const std::vector<const FileAnalysis *> &records,
                    const LockSpec *spec, const std::string &spec_path,
                    std::vector<Finding> &out);

} // namespace aiwc::lint
