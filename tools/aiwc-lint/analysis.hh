/**
 * @file
 * Whole-program analysis driver: incremental cache, cross-file rules,
 * and report rendering beyond the per-file engine in rules.hh.
 *
 * The pipeline is deliberately two-phase:
 *
 *   1. Per-file: analyzeSource() produces a FileAnalysis — findings,
 *      suppressions, includes, declared/used name indexes — from the
 *      file's bytes alone. That makes the record cacheable under a
 *      content hash (mixed with the companion header's hash, the only
 *      other input).
 *   2. Cross-file: includes are resolved against the *current* tree,
 *      the graph rules run (layer-violation, include-cycle,
 *      unused-include), and every file's suppression table filters the
 *      union. Cross-file work is cheap (no lexing), so it reruns every
 *      invocation; only phase 1 is cached.
 *
 * The cache is a plain text file (tab-separated, versioned header) so
 * `git diff`-style inspection works when it misbehaves; a version or
 * parse mismatch silently discards it — the cache is an optimization,
 * never a correctness input.
 */

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rules.hh"

namespace aiwc::lint
{

/** One lintable file, read by the driver, repo-relative path. */
struct SourceFile {
    std::string path;
    std::string content;
    std::string companion;      //!< module public header content
    bool has_companion = false;
};

/**
 * Per-file records keyed by path, reused when the combined content
 * hash matches. Serialization round-trips through a versioned text
 * format; load() returns false (and leaves the cache empty) on any
 * mismatch.
 */
class AnalysisCache
{
  public:
    bool load(const std::string &text);
    std::string serialize() const;

    /** Record for `path` if its stored hash equals `hash`. */
    const FileAnalysis *lookup(const std::string &path,
                               std::uint64_t hash) const;
    void store(FileAnalysis record);

    std::size_t size() const { return entries_.size(); }

  private:
    std::map<std::string, FileAnalysis> entries_;
};

struct ProjectOptions {
    /** layers.txt text; empty skips layering (not an error). */
    std::string layers_text;
    /**
     * locks.txt text; empty runs the lock-order check over observed
     * edges only (a spec adds the declared edges to the graph).
     */
    std::string locks_text;
    /** Display path for spec-anchored lock-order findings. */
    std::string locks_path = "tools/aiwc-lint/locks.txt";
    /**
     * Repo-relative changed files. When non-empty, reporting is
     * restricted to their reverse include-closure — analysis still
     * covers the whole tree so graph rules stay sound.
     */
    std::set<std::string> changed;
};

struct ProjectResult {
    std::vector<Finding> findings;  //!< post-suppression, sorted
    std::size_t fresh = 0;          //!< files analyzed this run
    std::size_t cached = 0;         //!< files served from the cache
    std::size_t reported_files = 0; //!< files in the reporting scope
    std::string error;              //!< non-empty: internal error (exit 2)
};

/**
 * Run the full pipeline over `files`. `cache` may be null (cold run,
 * nothing persisted); when given it is consulted and updated in place.
 */
ProjectResult analyzeProject(const std::vector<SourceFile> &files,
                             const ProjectOptions &options,
                             AnalysisCache *cache);

/**
 * SARIF 2.1.0 log with one run, every known rule in the driver's rule
 * metadata, and one result per finding (level: error, repo-relative
 * artifact URIs) — the shape GitHub code scanning ingests.
 */
std::string renderSarif(const std::vector<Finding> &findings);

} // namespace aiwc::lint
