#include "rules.hh"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <utility>

#include "lexer.hh"

namespace aiwc::lint
{

namespace
{

// ---------------------------------------------------------------------------
// Path classification. Paths are repo-relative with '/' separators; the
// driver normalizes before calling lintSource.

bool
hasSegment(const std::string &path, const std::string &seg)
{
    const std::string needle = seg + "/";
    if (path.rfind(needle, 0) == 0)
        return true;
    return path.find("/" + needle) != std::string::npos;
}

bool
underSrc(const std::string &path)
{
    return hasSegment(path, "src");
}

bool
isHeader(const std::string &path)
{
    return path.size() > 3 && path.compare(path.size() - 3, 3, ".hh") == 0;
}

bool
isPublicHeader(const std::string &path)
{
    return isHeader(path) && path.find("src/include/") != std::string::npos;
}

/** Files allowed to read wall clocks / entropy: observability and bench. */
bool
determinismAllowlisted(const std::string &path)
{
    return hasSegment(path, "obs") || hasSegment(path, "bench");
}

/** The one module allowed to touch raw threads. */
bool
isParallelModule(const std::string &path)
{
    return path.find("common/parallel.") != std::string::npos;
}

/** The one file allowed to terminate the process. */
bool
isCheckImpl(const std::string &path)
{
    return path == "check.cc" ||
           (path.size() > 9 &&
            path.compare(path.size() - 9, 9, "/check.cc") == 0);
}

// ---------------------------------------------------------------------------
// Token-stream helpers. Rules operate on the "code view": comments and
// preprocessor lines stripped, so banned names in comments, strings
// (their own token kind), or #include paths never fire.

std::vector<Token>
codeView(const std::vector<Token> &tokens)
{
    std::vector<Token> out;
    out.reserve(tokens.size());
    for (const Token &t : tokens)
        if (t.kind != TokenKind::Comment && t.kind != TokenKind::PpDirective)
            out.push_back(t);
    return out;
}

bool
isIdent(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Identifier &&
           ts[i].text == text;
}

bool
isPunct(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Punct &&
           ts[i].text == text;
}

/**
 * Heuristic: is ts[i] (an identifier) used as a free-function call?
 * Declarations (`LogNormal abort(...)`, `int rand(int)`) have a type
 * name directly before; member calls (`x.exit(...)`) have '.' or '->';
 * a "::"-qualified call only counts when the qualifier is `std`.
 */
bool
isFreeCall(const std::vector<Token> &ts, std::size_t i)
{
    if (!isPunct(ts, i + 1, "("))
        return false;
    if (i == 0)
        return true;
    const Token &prev = ts[i - 1];
    if (prev.kind == TokenKind::Identifier) {
        // `return abort();`, `else abort();` are calls, not declarations.
        static const std::set<std::string> call_context = {
            "return", "else", "do", "co_return"};
        return call_context.count(prev.text) > 0;
    }
    if (prev.kind == TokenKind::Punct) {
        if (prev.text == "::")
            return i >= 2 && isIdent(ts, i - 2, "std");
        if (prev.text == "." || prev.text == ">")  // member / -> call
            return false;
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// R1a · det-random

void
ruleDetRandom(const std::string &path, const std::vector<Token> &ts,
              std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != TokenKind::Identifier)
            continue;
        if (ts[i].text == "random_device") {
            out.push_back({path, ts[i].line, "det-random",
                           "std::random_device is hardware entropy; seed "
                           "from the run's configured seed instead"});
        } else if ((ts[i].text == "rand" || ts[i].text == "srand") &&
                   isFreeCall(ts, i)) {
            out.push_back({path, ts[i].line, "det-random",
                           ts[i].text + "() uses hidden global state; use "
                                        "aiwc::common::Rng"});
        } else if (ts[i].text == "time" && isFreeCall(ts, i) &&
                   (isIdent(ts, i + 2, "nullptr") ||
                    isIdent(ts, i + 2, "NULL") ||
                    (i + 2 < ts.size() &&
                     ts[i + 2].kind == TokenKind::Number &&
                     ts[i + 2].text == "0")) &&
                   isPunct(ts, i + 3, ")")) {
            out.push_back({path, ts[i].line, "det-random",
                           "time(nullptr) reads the wall clock; results "
                           "must be a pure function of (input, seed)"});
        } else if (ts[i].text == "system_clock" && isPunct(ts, i + 1, "::") &&
                   isIdent(ts, i + 2, "now")) {
            out.push_back({path, ts[i].line, "det-random",
                           "system_clock::now() reads the wall clock; only "
                           "obs/ and bench/ may observe real time"});
        }
    }
}

// ---------------------------------------------------------------------------
// R1b · det-unordered-iter
//
// Collect names declared with an unordered container type (directly,
// or through a `using X = std::unordered_map<...>` alias), then flag
// range-for loops whose range resolves to such a name and classic for
// loops that call .begin()/.cbegin() on one. Heuristic by design: it
// tracks names, not types, which is exactly enough for this codebase's
// idiom and errs toward firing (a false positive is a one-line
// suppression with a reason).

bool
isUnorderedName(const Token &t)
{
    return t.kind == TokenKind::Identifier &&
           (t.text == "unordered_map" || t.text == "unordered_set" ||
            t.text == "unordered_multimap" || t.text == "unordered_multiset");
}

/** Skip a balanced <...> starting at ts[i] == "<"; returns index past ">". */
std::size_t
skipAngles(const std::vector<Token> &ts, std::size_t i)
{
    int depth = 0;
    while (i < ts.size()) {
        if (isPunct(ts, i, "<"))
            ++depth;
        else if (isPunct(ts, i, ">") && --depth == 0)
            return i + 1;
        else if (isPunct(ts, i, ";"))  // runaway (operator<, etc.)
            return i;
        ++i;
    }
    return i;
}

void
collectUnorderedDecls(const std::vector<Token> &ts,
                      std::set<std::string> &names,
                      std::set<std::string> &aliases)
{
    // Aliases: using X = ... unordered_map< ... > ... ;
    for (std::size_t i = 0; i + 3 < ts.size(); ++i) {
        if (!isIdent(ts, i, "using") ||
            ts[i + 1].kind != TokenKind::Identifier ||
            !isPunct(ts, i + 2, "="))
            continue;
        for (std::size_t j = i + 3;
             j < ts.size() && !isPunct(ts, j, ";"); ++j) {
            if (isUnorderedName(ts[j])) {
                aliases.insert(ts[i + 1].text);
                break;
            }
        }
    }

    // Direct declarations: [std::]unordered_map<...> [&*const] name term
    for (std::size_t i = 0; i < ts.size(); ++i) {
        std::size_t j;
        if (isUnorderedName(ts[i]) && isPunct(ts, i + 1, "<")) {
            j = skipAngles(ts, i + 1);
        } else if (ts[i].kind == TokenKind::Identifier &&
                   aliases.count(ts[i].text) > 0 &&
                   !(i > 0 && (isPunct(ts, i - 1, ".") ||
                               isPunct(ts, i - 1, "::")))) {
            j = i + 1;
        } else {
            continue;
        }
        while (j < ts.size() &&
               (isPunct(ts, j, "&") || isPunct(ts, j, "*") ||
                isIdent(ts, j, "const") || isIdent(ts, j, "mutable")))
            ++j;
        if (j < ts.size() && ts[j].kind == TokenKind::Identifier &&
            j + 1 < ts.size() && ts[j + 1].kind == TokenKind::Punct) {
            const std::string &after = ts[j + 1].text;
            if (after == ";" || after == "=" || after == "{" ||
                after == "," || after == ")")
                names.insert(ts[j].text);
        }
    }
}

/** Index just past the ')' matching ts[open] == "(". */
std::size_t
matchParen(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "("))
            ++depth;
        else if (isPunct(ts, i, ")") && --depth == 0)
            return i + 1;
    }
    return ts.size();
}

void
ruleUnorderedIter(const std::string &path, const std::vector<Token> &ts,
                  const std::set<std::string> &names,
                  std::vector<Finding> &out)
{
    if (names.empty())
        return;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (!isIdent(ts, i, "for") || !isPunct(ts, i + 1, "("))
            continue;
        const std::size_t open = i + 1;
        const std::size_t end = matchParen(ts, open);

        // Find a range-for ':' at paren depth 1 ("::" is one token, so a
        // bare ':' here is unambiguous).
        std::size_t colon = 0;
        bool classic = false;
        int depth = 0;
        for (std::size_t j = open; j < end; ++j) {
            if (isPunct(ts, j, "("))
                ++depth;
            else if (isPunct(ts, j, ")"))
                --depth;
            else if (depth == 1 && isPunct(ts, j, ";"))
                classic = true;
            else if (depth == 1 && isPunct(ts, j, ":") && colon == 0)
                colon = j;
        }

        if (colon != 0 && !classic) {
            // Range expression: last identifier not used as a call.
            std::string target;
            for (std::size_t j = colon + 1; j + 1 < end; ++j)
                if (ts[j].kind == TokenKind::Identifier &&
                    !isPunct(ts, j + 1, "("))
                    target = ts[j].text;
            if (!target.empty() && names.count(target) > 0)
                out.push_back(
                    {path, ts[i].line, "det-unordered-iter",
                     "range-for over unordered container '" + target +
                         "' iterates in hash order; use std::map or "
                         "extract-and-sort before anything ordered "
                         "depends on it"});
        } else if (classic) {
            for (std::size_t j = open; j + 3 < end; ++j)
                if (ts[j].kind == TokenKind::Identifier &&
                    names.count(ts[j].text) > 0 &&
                    isPunct(ts, j + 1, ".") &&
                    (isIdent(ts, j + 2, "begin") ||
                     isIdent(ts, j + 2, "cbegin")) &&
                    isPunct(ts, j + 3, "(")) {
                    out.push_back(
                        {path, ts[i].line, "det-unordered-iter",
                         "iterator loop over unordered container '" +
                             ts[j].text + "' iterates in hash order; use "
                                          "std::map or extract-and-sort"});
                    break;
                }
        }
    }
}

// ---------------------------------------------------------------------------
// R2 · contract-assert / contract-abort

void
ruleContractAssert(const std::string &path, const std::vector<Token> &ts,
                   std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < ts.size(); ++i)
        if (isIdent(ts, i, "assert") && isFreeCall(ts, i))
            out.push_back({path, ts[i].line, "contract-assert",
                           "bare assert() vanishes in release builds; use "
                           "AIWC_CHECK (always on) or AIWC_DCHECK "
                           "(debug-only) from aiwc/common/check.hh"});
}

void
ruleContractAbort(const std::string &path, const std::vector<Token> &ts,
                  std::vector<Finding> &out)
{
    static const std::set<std::string> terminators = {"abort", "exit",
                                                      "_Exit", "quick_exit"};
    for (std::size_t i = 0; i < ts.size(); ++i)
        if (ts[i].kind == TokenKind::Identifier &&
            terminators.count(ts[i].text) > 0 && isFreeCall(ts, i))
            out.push_back({path, ts[i].line, "contract-abort",
                           ts[i].text + "() bypasses the contract-failure "
                                        "handler; raise AIWC_CHECK instead "
                                        "(termination lives in check.cc)"});
}

// ---------------------------------------------------------------------------
// R3 · thread-raw

void
ruleThreadRaw(const std::string &path, const std::vector<Token> &ts,
              std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (isIdent(ts, i, "std") && isPunct(ts, i + 1, "::") &&
            (isIdent(ts, i + 2, "thread") || isIdent(ts, i + 2, "jthread") ||
             isIdent(ts, i + 2, "async"))) {
            out.push_back(
                {path, ts[i].line, "thread-raw",
                 "raw std::" + ts[i + 2].text +
                     " breaks the deterministic shard geometry; use "
                     "parallelFor/parallelReduce from "
                     "aiwc/common/parallel.hh"});
        } else if (isIdent(ts, i, "detach") && isPunct(ts, i + 1, "(") &&
                   i > 0 &&
                   (isPunct(ts, i - 1, ".") || isPunct(ts, i - 1, ">"))) {
            out.push_back({path, ts[i].line, "thread-raw",
                           "detach() orphans work past the pool's barrier; "
                           "joined pool workers are the only concurrency "
                           "primitive"});
        }
    }
}

// ---------------------------------------------------------------------------
// R4 · metric-name

bool
isLowerSnake(const std::string &s)
{
    if (s.empty())
        return false;
    for (const char ch : s)
        if (!((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
              ch == '_'))
            return false;
    return true;
}

/** aiwc\.[a-z0-9_]+(\.[a-z0-9_]+)+ — "aiwc." plus >= 2 snake segments. */
bool
isValidMetricName(const std::string &name)
{
    std::vector<std::string> segs;
    std::string cur;
    for (const char ch : name) {
        if (ch == '.') {
            segs.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    segs.push_back(cur);
    if (segs.size() < 3 || segs[0] != "aiwc")
        return false;
    return std::all_of(segs.begin() + 1, segs.end(), isLowerSnake);
}

std::string
literalValue(const std::string &text)
{
    const std::size_t first = text.find('"');
    const std::size_t last = text.rfind('"');
    if (first == std::string::npos || last <= first)
        return "";
    return text.substr(first + 1, last - first - 1);
}

void
ruleMetricName(const std::string &path, const std::vector<Token> &ts,
               std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        if (!(isIdent(ts, i, "counter") || isIdent(ts, i, "gauge") ||
              isIdent(ts, i, "histogram")))
            continue;
        if (!isPunct(ts, i + 1, "(") ||
            ts[i + 2].kind != TokenKind::String)
            continue;
        const std::string name = literalValue(ts[i + 2].text);
        if (isPunct(ts, i + 3, ")")) {
            if (!isValidMetricName(name))
                out.push_back(
                    {path, ts[i + 2].line, "metric-name",
                     "metric name \"" + name +
                         "\" must match aiwc.<layer>.<thing> "
                         "(aiwc\\.[a-z0-9_]+(\\.[a-z0-9_]+)+, see "
                         "CONTRIBUTING.md)"});
        } else if (isPunct(ts, i + 3, "+")) {
            // Concatenated name: statically check the literal prefix.
            const bool prefix_ok =
                name.rfind("aiwc.", 0) == 0 &&
                std::all_of(name.begin(), name.end(), [](char ch) {
                    return (ch >= 'a' && ch <= 'z') ||
                           (ch >= '0' && ch <= '9') || ch == '_' ||
                           ch == '.';
                });
            if (!prefix_ok)
                out.push_back(
                    {path, ts[i + 2].line, "metric-name",
                     "concatenated metric name must start with a literal "
                     "\"aiwc.<layer>.\" prefix, got \"" + name + "\""});
        }
    }
}

// ---------------------------------------------------------------------------
// R5a · header-pragma-once

std::string
collapse(const std::string &s)
{
    std::string out;
    for (const char ch : s)
        if (ch != ' ' && ch != '\t' && ch != '\r')
            out.push_back(ch);
    return out;
}

void
rulePragmaOnce(const std::string &path, const std::vector<Token> &tokens,
               std::vector<Finding> &out)
{
    for (const Token &t : tokens) {
        if (t.kind == TokenKind::Comment)
            continue;
        if (t.kind == TokenKind::PpDirective &&
            collapse(t.text) == "#pragmaonce")
            return;
        out.push_back({path, t.line, "header-pragma-once",
                       "public headers must open with #pragma once (before "
                       "any other directive or declaration)"});
        return;
    }
    out.push_back({path, 1, "header-pragma-once",
                   "empty header is missing #pragma once"});
}

// ---------------------------------------------------------------------------
// R5b · header-using-ns

void
ruleUsingNamespace(const std::string &path, const std::vector<Token> &ts,
                   std::vector<Finding> &out)
{
    std::vector<bool> ns_scope;  // brace stack: true = namespace/extern
    bool pending_ns = false;     // `namespace ...` seen, '{' not yet
    bool pending_extern = false; // `extern "..."` seen, '{' not yet

    for (std::size_t i = 0; i < ts.size(); ++i) {
        const Token &t = ts[i];
        if (t.kind == TokenKind::Identifier) {
            if (t.text == "using" && isIdent(ts, i + 1, "namespace")) {
                const bool at_ns_scope =
                    std::all_of(ns_scope.begin(), ns_scope.end(),
                                [](bool ns) { return ns; });
                if (at_ns_scope)
                    out.push_back(
                        {path, t.line, "header-using-ns",
                         "`using namespace` at namespace scope in a header "
                         "leaks into every includer; qualify names or move "
                         "it inside a function"});
                ++i;  // don't re-read `namespace` as a scope opener
            } else if (t.text == "namespace") {
                pending_ns = true;
            } else if (t.text == "extern" &&
                       i + 1 < ts.size() &&
                       ts[i + 1].kind == TokenKind::String) {
                pending_extern = true;
            }
            continue;
        }
        if (t.kind != TokenKind::Punct)
            continue;
        if (t.text == "{") {
            ns_scope.push_back(pending_ns || pending_extern);
            pending_ns = pending_extern = false;
        } else if (t.text == "}") {
            if (!ns_scope.empty())
                ns_scope.pop_back();
        } else if (t.text == ";" || t.text == "=") {
            pending_ns = pending_extern = false;  // alias / declaration
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions: // aiwc-lint: allow(rule[, rule...]) -- reason

struct SuppressionTable {
    // (line, rule) pairs a valid suppression covers.
    std::set<std::pair<int, std::string>> allowed;
};

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    std::size_t e = s.find_last_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

void
parseSuppressions(const std::string &path, const std::vector<Token> &tokens,
                  SuppressionTable &table, std::vector<Finding> &out)
{
    static const std::string marker = "aiwc-lint:";
    for (const Token &t : tokens) {
        if (t.kind != TokenKind::Comment)
            continue;
        const std::size_t at = t.text.find(marker);
        if (at == std::string::npos)
            continue;
        std::string rest = trim(t.text.substr(at + marker.size()));
        // Block comments may close on the same line; drop the marker.
        const std::size_t close_comment = rest.find("*/");
        if (close_comment != std::string::npos)
            rest = trim(rest.substr(0, close_comment));

        if (rest.rfind("allow(", 0) != 0) {
            out.push_back({path, t.line, "bad-suppression",
                           "suppression must be `aiwc-lint: allow(<rule>) "
                           "-- <reason>`"});
            continue;
        }
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
            out.push_back({path, t.line, "bad-suppression",
                           "unclosed allow(...) in suppression"});
            continue;
        }

        std::vector<std::string> rules;
        std::stringstream list(rest.substr(6, close - 6));
        std::string item;
        bool rules_ok = true;
        while (std::getline(list, item, ',')) {
            item = trim(item);
            const auto &known = knownRules();
            if (std::find(known.begin(), known.end(), item) == known.end()) {
                out.push_back({path, t.line, "bad-suppression",
                               "unknown rule '" + item +
                                   "' in suppression (see --list-rules)"});
                rules_ok = false;
                break;
            }
            rules.push_back(item);
        }
        if (!rules_ok)
            continue;
        if (rules.empty()) {
            out.push_back({path, t.line, "bad-suppression",
                           "allow() names no rule"});
            continue;
        }

        const std::string after = trim(rest.substr(close + 1));
        if (after.rfind("--", 0) != 0 || trim(after.substr(2)).empty()) {
            out.push_back({path, t.line, "bad-suppression",
                           "suppression requires a written reason: "
                           "`-- <why this is safe>`"});
            continue;
        }

        // Cover every line the comment spans plus the next line, so both
        // end-of-line and line-above placement work.
        const int span = static_cast<int>(
            std::count(t.text.begin(), t.text.end(), '\n'));
        for (int line = t.line; line <= t.line + span + 1; ++line)
            for (const std::string &rule : rules)
                table.allowed.insert({line, rule});
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char ch : s) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
    return out;
}

} // namespace

const std::vector<std::string> &
knownRules()
{
    static const std::vector<std::string> rules = {
        "bad-suppression",    "contract-abort",  "contract-assert",
        "det-random",         "det-unordered-iter", "header-pragma-once",
        "header-using-ns",    "metric-name",     "thread-raw",
    };
    return rules;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content,
           const std::string *companion_header)
{
    const std::vector<Token> tokens = lex(content);
    const std::vector<Token> code = codeView(tokens);

    std::vector<Finding> raw;
    SuppressionTable table;
    parseSuppressions(path, tokens, table, raw);

    if (!determinismAllowlisted(path))
        ruleDetRandom(path, code, raw);

    if (underSrc(path)) {
        std::set<std::string> names;
        std::set<std::string> aliases;
        collectUnorderedDecls(code, names, aliases);
        if (companion_header != nullptr)
            collectUnorderedDecls(codeView(lex(*companion_header)), names,
                                  aliases);
        ruleUnorderedIter(path, code, names, raw);

        ruleContractAssert(path, code, raw);
        if (!isCheckImpl(path))
            ruleContractAbort(path, code, raw);
        ruleMetricName(path, code, raw);
    }

    if (!isParallelModule(path))
        ruleThreadRaw(path, code, raw);

    if (isPublicHeader(path))
        rulePragmaOnce(path, tokens, raw);
    if (isHeader(path))
        ruleUsingNamespace(path, code, raw);

    std::vector<Finding> findings;
    for (Finding &f : raw)
        if (table.allowed.count({f.line, f.rule}) == 0)
            findings.push_back(std::move(f));
    std::sort(findings.begin(), findings.end());
    return findings;
}

std::string
renderHuman(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    for (const Finding &f : findings)
        os << f.file << ":" << f.line << ": " << f.rule << ": " << f.message
           << "\n";
    return os.str();
}

std::string
renderJson(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "{\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i == 0 ? "" : ",") << "\n    {\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << jsonEscape(f.rule)
           << "\", \"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    if (!findings.empty())
        os << "\n  ";
    os << "],\n  \"count\": " << findings.size() << "\n}\n";
    return os.str();
}

} // namespace aiwc::lint
