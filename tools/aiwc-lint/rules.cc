#include "rules.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "lexer.hh"
#include "locks.hh"
#include "outline.hh"

namespace aiwc::lint
{

namespace
{

// ---------------------------------------------------------------------------
// Path classification. Paths are repo-relative with '/' separators; the
// driver normalizes before calling lintSource.

bool
hasSegment(const std::string &path, const std::string &seg)
{
    const std::string needle = seg + "/";
    if (path.rfind(needle, 0) == 0)
        return true;
    return path.find("/" + needle) != std::string::npos;
}

bool
underSrc(const std::string &path)
{
    return hasSegment(path, "src");
}

bool
isHeader(const std::string &path)
{
    return path.size() > 3 && path.compare(path.size() - 3, 3, ".hh") == 0;
}

bool
isPublicHeader(const std::string &path)
{
    return isHeader(path) && path.find("src/include/") != std::string::npos;
}

/** Files allowed to read wall clocks / entropy: observability and bench. */
bool
determinismAllowlisted(const std::string &path)
{
    return hasSegment(path, "obs") || hasSegment(path, "bench");
}

/** The one module allowed to touch raw threads. */
bool
isParallelModule(const std::string &path)
{
    return path.find("common/parallel.") != std::string::npos;
}

/** The one file allowed to terminate the process. */
bool
isCheckImpl(const std::string &path)
{
    return path == "check.cc" ||
           (path.size() > 9 &&
            path.compare(path.size() - 9, 9, "/check.cc") == 0);
}

// ---------------------------------------------------------------------------
// Token-stream helpers. Rules operate on the "code view": comments and
// preprocessor lines stripped, so banned names in comments, strings
// (their own token kind), or #include paths never fire.

std::vector<Token>
codeView(const std::vector<Token> &tokens)
{
    std::vector<Token> out;
    out.reserve(tokens.size());
    for (const Token &t : tokens)
        if (t.kind != TokenKind::Comment && t.kind != TokenKind::PpDirective)
            out.push_back(t);
    return out;
}

bool
isIdent(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Identifier &&
           ts[i].text == text;
}

bool
isPunct(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Punct &&
           ts[i].text == text;
}

/**
 * Heuristic: is ts[i] (an identifier) used as a free-function call?
 * Declarations (`LogNormal abort(...)`, `int rand(int)`) have a type
 * name directly before; member calls (`x.exit(...)`) have '.' or '->';
 * a "::"-qualified call only counts when the qualifier is `std`.
 */
bool
isFreeCall(const std::vector<Token> &ts, std::size_t i)
{
    if (!isPunct(ts, i + 1, "("))
        return false;
    if (i == 0)
        return true;
    const Token &prev = ts[i - 1];
    if (prev.kind == TokenKind::Identifier) {
        // `return abort();`, `else abort();` are calls, not declarations.
        static const std::set<std::string> call_context = {
            "return", "else", "do", "co_return"};
        return call_context.count(prev.text) > 0;
    }
    if (prev.kind == TokenKind::Punct) {
        if (prev.text == "::")
            return i >= 2 && isIdent(ts, i - 2, "std");
        if (prev.text == "." || prev.text == ">")  // member / -> call
            return false;
        return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// R1a · det-random

void
ruleDetRandom(const std::string &path, const std::vector<Token> &ts,
              std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != TokenKind::Identifier)
            continue;
        if (ts[i].text == "random_device") {
            out.push_back({path, ts[i].line, "det-random",
                           "std::random_device is hardware entropy; seed "
                           "from the run's configured seed instead"});
        } else if ((ts[i].text == "rand" || ts[i].text == "srand") &&
                   isFreeCall(ts, i)) {
            out.push_back({path, ts[i].line, "det-random",
                           ts[i].text + "() uses hidden global state; use "
                                        "aiwc::common::Rng"});
        } else if (ts[i].text == "time" && isFreeCall(ts, i) &&
                   (isIdent(ts, i + 2, "nullptr") ||
                    isIdent(ts, i + 2, "NULL") ||
                    (i + 2 < ts.size() &&
                     ts[i + 2].kind == TokenKind::Number &&
                     ts[i + 2].text == "0")) &&
                   isPunct(ts, i + 3, ")")) {
            out.push_back({path, ts[i].line, "det-random",
                           "time(nullptr) reads the wall clock; results "
                           "must be a pure function of (input, seed)"});
        } else if (ts[i].text == "system_clock" && isPunct(ts, i + 1, "::") &&
                   isIdent(ts, i + 2, "now")) {
            out.push_back({path, ts[i].line, "det-random",
                           "system_clock::now() reads the wall clock; only "
                           "obs/ and bench/ may observe real time"});
        }
    }
}

// ---------------------------------------------------------------------------
// R1b · det-unordered-iter
//
// Collect names declared with an unordered container type (directly,
// or through a `using X = std::unordered_map<...>` alias), then flag
// range-for loops whose range resolves to such a name and classic for
// loops that call .begin()/.cbegin() on one. Heuristic by design: it
// tracks names, not types, which is exactly enough for this codebase's
// idiom and errs toward firing (a false positive is a one-line
// suppression with a reason).

bool
isUnorderedName(const Token &t)
{
    return t.kind == TokenKind::Identifier &&
           (t.text == "unordered_map" || t.text == "unordered_set" ||
            t.text == "unordered_multimap" || t.text == "unordered_multiset");
}

/** Skip a balanced <...> starting at ts[i] == "<"; returns index past ">". */
std::size_t
skipAngles(const std::vector<Token> &ts, std::size_t i)
{
    int depth = 0;
    while (i < ts.size()) {
        if (isPunct(ts, i, "<"))
            ++depth;
        else if (isPunct(ts, i, ">") && --depth == 0)
            return i + 1;
        else if (isPunct(ts, i, ";"))  // runaway (operator<, etc.)
            return i;
        ++i;
    }
    return i;
}

void
collectUnorderedDecls(const std::vector<Token> &ts,
                      std::set<std::string> &names,
                      std::set<std::string> &aliases)
{
    // Aliases: using X = ... unordered_map< ... > ... ;
    for (std::size_t i = 0; i + 3 < ts.size(); ++i) {
        if (!isIdent(ts, i, "using") ||
            ts[i + 1].kind != TokenKind::Identifier ||
            !isPunct(ts, i + 2, "="))
            continue;
        for (std::size_t j = i + 3;
             j < ts.size() && !isPunct(ts, j, ";"); ++j) {
            if (isUnorderedName(ts[j])) {
                aliases.insert(ts[i + 1].text);
                break;
            }
        }
    }

    // Direct declarations: [std::]unordered_map<...> [&*const] name term
    for (std::size_t i = 0; i < ts.size(); ++i) {
        std::size_t j;
        if (isUnorderedName(ts[i]) && isPunct(ts, i + 1, "<")) {
            j = skipAngles(ts, i + 1);
        } else if (ts[i].kind == TokenKind::Identifier &&
                   aliases.count(ts[i].text) > 0 &&
                   !(i > 0 && (isPunct(ts, i - 1, ".") ||
                               isPunct(ts, i - 1, "::")))) {
            j = i + 1;
        } else {
            continue;
        }
        while (j < ts.size() &&
               (isPunct(ts, j, "&") || isPunct(ts, j, "*") ||
                isIdent(ts, j, "const") || isIdent(ts, j, "mutable")))
            ++j;
        if (j < ts.size() && ts[j].kind == TokenKind::Identifier &&
            j + 1 < ts.size() && ts[j + 1].kind == TokenKind::Punct) {
            const std::string &after = ts[j + 1].text;
            if (after == ";" || after == "=" || after == "{" ||
                after == "," || after == ")")
                names.insert(ts[j].text);
        }
    }
}

/** Index just past the ')' matching ts[open] == "(". */
std::size_t
matchParen(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "("))
            ++depth;
        else if (isPunct(ts, i, ")") && --depth == 0)
            return i + 1;
    }
    return ts.size();
}

void
ruleUnorderedIter(const std::string &path, const std::vector<Token> &ts,
                  const std::set<std::string> &names,
                  std::vector<Finding> &out)
{
    if (names.empty())
        return;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (!isIdent(ts, i, "for") || !isPunct(ts, i + 1, "("))
            continue;
        const std::size_t open = i + 1;
        const std::size_t end = matchParen(ts, open);

        // Find a range-for ':' at paren depth 1 ("::" is one token, so a
        // bare ':' here is unambiguous).
        std::size_t colon = 0;
        bool classic = false;
        int depth = 0;
        for (std::size_t j = open; j < end; ++j) {
            if (isPunct(ts, j, "("))
                ++depth;
            else if (isPunct(ts, j, ")"))
                --depth;
            else if (depth == 1 && isPunct(ts, j, ";"))
                classic = true;
            else if (depth == 1 && isPunct(ts, j, ":") && colon == 0)
                colon = j;
        }

        if (colon != 0 && !classic) {
            // Range expression: last identifier not used as a call.
            std::string target;
            for (std::size_t j = colon + 1; j + 1 < end; ++j)
                if (ts[j].kind == TokenKind::Identifier &&
                    !isPunct(ts, j + 1, "("))
                    target = ts[j].text;
            if (!target.empty() && names.count(target) > 0)
                out.push_back(
                    {path, ts[i].line, "det-unordered-iter",
                     "range-for over unordered container '" + target +
                         "' iterates in hash order; use std::map or "
                         "extract-and-sort before anything ordered "
                         "depends on it"});
        } else if (classic) {
            for (std::size_t j = open; j + 3 < end; ++j)
                if (ts[j].kind == TokenKind::Identifier &&
                    names.count(ts[j].text) > 0 &&
                    isPunct(ts, j + 1, ".") &&
                    (isIdent(ts, j + 2, "begin") ||
                     isIdent(ts, j + 2, "cbegin")) &&
                    isPunct(ts, j + 3, "(")) {
                    out.push_back(
                        {path, ts[i].line, "det-unordered-iter",
                         "iterator loop over unordered container '" +
                             ts[j].text + "' iterates in hash order; use "
                                          "std::map or extract-and-sort"});
                    break;
                }
        }
    }
}

// ---------------------------------------------------------------------------
// R2 · contract-assert / contract-abort

void
ruleContractAssert(const std::string &path, const std::vector<Token> &ts,
                   std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < ts.size(); ++i)
        if (isIdent(ts, i, "assert") && isFreeCall(ts, i))
            out.push_back({path, ts[i].line, "contract-assert",
                           "bare assert() vanishes in release builds; use "
                           "AIWC_CHECK (always on) or AIWC_DCHECK "
                           "(debug-only) from aiwc/base/check.hh"});
}

void
ruleContractAbort(const std::string &path, const std::vector<Token> &ts,
                  std::vector<Finding> &out)
{
    static const std::set<std::string> terminators = {"abort", "exit",
                                                      "_Exit", "quick_exit"};
    for (std::size_t i = 0; i < ts.size(); ++i)
        if (ts[i].kind == TokenKind::Identifier &&
            terminators.count(ts[i].text) > 0 && isFreeCall(ts, i))
            out.push_back({path, ts[i].line, "contract-abort",
                           ts[i].text + "() bypasses the contract-failure "
                                        "handler; raise AIWC_CHECK instead "
                                        "(termination lives in check.cc)"});
}

// ---------------------------------------------------------------------------
// R3 · thread-raw

void
ruleThreadRaw(const std::string &path, const std::vector<Token> &ts,
              std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (isIdent(ts, i, "std") && isPunct(ts, i + 1, "::") &&
            (isIdent(ts, i + 2, "thread") || isIdent(ts, i + 2, "jthread") ||
             isIdent(ts, i + 2, "async"))) {
            // Anchor at the banned name itself (ts[i + 2]): when the
            // qualifier and the name sit on different physical lines
            // (line continuation or wrapped code), the finding must point
            // at the token that triggered it.
            out.push_back(
                {path, ts[i + 2].line, "thread-raw",
                 "raw std::" + ts[i + 2].text +
                     " breaks the deterministic shard geometry; use "
                     "parallelFor/parallelReduce from "
                     "aiwc/common/parallel.hh"});
        } else if (isIdent(ts, i, "detach") && isPunct(ts, i + 1, "(") &&
                   i > 0 &&
                   (isPunct(ts, i - 1, ".") || isPunct(ts, i - 1, ">"))) {
            out.push_back({path, ts[i].line, "thread-raw",
                           "detach() orphans work past the pool's barrier; "
                           "joined pool workers are the only concurrency "
                           "primitive"});
        }
    }
}

// ---------------------------------------------------------------------------
// R4 · metric-name

bool
isLowerSnake(const std::string &s)
{
    if (s.empty())
        return false;
    for (const char ch : s)
        if (!((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
              ch == '_'))
            return false;
    return true;
}

/** aiwc\.[a-z0-9_]+(\.[a-z0-9_]+)+ — "aiwc." plus >= 2 snake segments. */
bool
isValidMetricName(const std::string &name)
{
    std::vector<std::string> segs;
    std::string cur;
    for (const char ch : name) {
        if (ch == '.') {
            segs.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    segs.push_back(cur);
    if (segs.size() < 3 || segs[0] != "aiwc")
        return false;
    return std::all_of(segs.begin() + 1, segs.end(), isLowerSnake);
}

std::string
literalValue(const std::string &text)
{
    const std::size_t first = text.find('"');
    const std::size_t last = text.rfind('"');
    if (first == std::string::npos || last <= first)
        return "";
    return text.substr(first + 1, last - first - 1);
}

void
ruleMetricName(const std::string &path, const std::vector<Token> &ts,
               std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        if (!(isIdent(ts, i, "counter") || isIdent(ts, i, "gauge") ||
              isIdent(ts, i, "histogram")))
            continue;
        if (!isPunct(ts, i + 1, "(") ||
            ts[i + 2].kind != TokenKind::String)
            continue;
        const std::string name = literalValue(ts[i + 2].text);
        if (isPunct(ts, i + 3, ")")) {
            if (!isValidMetricName(name))
                out.push_back(
                    {path, ts[i + 2].line, "metric-name",
                     "metric name \"" + name +
                         "\" must match aiwc.<layer>.<thing> "
                         "(aiwc\\.[a-z0-9_]+(\\.[a-z0-9_]+)+, see "
                         "CONTRIBUTING.md)"});
        } else if (isPunct(ts, i + 3, "+")) {
            // Concatenated name: statically check the literal prefix.
            const bool prefix_ok =
                name.rfind("aiwc.", 0) == 0 &&
                std::all_of(name.begin(), name.end(), [](char ch) {
                    return (ch >= 'a' && ch <= 'z') ||
                           (ch >= '0' && ch <= '9') || ch == '_' ||
                           ch == '.';
                });
            if (!prefix_ok)
                out.push_back(
                    {path, ts[i + 2].line, "metric-name",
                     "concatenated metric name must start with a literal "
                     "\"aiwc.<layer>.\" prefix, got \"" + name + "\""});
        }
    }
}

// ---------------------------------------------------------------------------
// R5a · header-pragma-once

std::string
collapse(const std::string &s)
{
    std::string out;
    for (const char ch : s)
        if (ch != ' ' && ch != '\t' && ch != '\r')
            out.push_back(ch);
    return out;
}

void
rulePragmaOnce(const std::string &path, const std::vector<Token> &tokens,
               std::vector<Finding> &out)
{
    for (const Token &t : tokens) {
        if (t.kind == TokenKind::Comment)
            continue;
        if (t.kind == TokenKind::PpDirective &&
            collapse(t.text) == "#pragmaonce")
            return;
        out.push_back({path, t.line, "header-pragma-once",
                       "public headers must open with #pragma once (before "
                       "any other directive or declaration)"});
        return;
    }
    out.push_back({path, 1, "header-pragma-once",
                   "empty header is missing #pragma once"});
}

// ---------------------------------------------------------------------------
// R5b · header-using-ns

void
ruleUsingNamespace(const std::string &path, const std::vector<Token> &ts,
                   std::vector<Finding> &out)
{
    std::vector<bool> ns_scope;  // brace stack: true = namespace/extern
    bool pending_ns = false;     // `namespace ...` seen, '{' not yet
    bool pending_extern = false; // `extern "..."` seen, '{' not yet

    for (std::size_t i = 0; i < ts.size(); ++i) {
        const Token &t = ts[i];
        if (t.kind == TokenKind::Identifier) {
            if (t.text == "using" && isIdent(ts, i + 1, "namespace")) {
                const bool at_ns_scope =
                    std::all_of(ns_scope.begin(), ns_scope.end(),
                                [](bool ns) { return ns; });
                if (at_ns_scope)
                    out.push_back(
                        {path, t.line, "header-using-ns",
                         "`using namespace` at namespace scope in a header "
                         "leaks into every includer; qualify names or move "
                         "it inside a function"});
                ++i;  // don't re-read `namespace` as a scope opener
            } else if (t.text == "namespace") {
                pending_ns = true;
            } else if (t.text == "extern" &&
                       i + 1 < ts.size() &&
                       ts[i + 1].kind == TokenKind::String) {
                pending_extern = true;
            }
            continue;
        }
        if (t.kind != TokenKind::Punct)
            continue;
        if (t.text == "{") {
            ns_scope.push_back(pending_ns || pending_extern);
            pending_ns = pending_extern = false;
        } else if (t.text == "}") {
            if (!ns_scope.empty())
                ns_scope.pop_back();
        } else if (t.text == ";" || t.text == "=") {
            pending_ns = pending_extern = false;  // alias / declaration
        }
    }
}

// ---------------------------------------------------------------------------
// R6 · mutable-global (outline-driven)
//
// Namespace-scope state that is neither const, constexpr, nor an extern
// re-declaration is the canonical determinism hazard: it survives across
// calls, is shared across threads, and makes results depend on call
// order. thread_local still counts — per-thread state makes results
// depend on the shard geometry, which the repo's determinism contract
// explicitly forbids.

void
ruleMutableGlobal(const std::string &path, const Outline &outline,
                  std::vector<Finding> &out)
{
    for (const Decl &d : outline.decls) {
        if (d.kind != DeclKind::Variable)
            continue;
        if (d.is_const || d.is_constexpr || d.is_extern)
            continue;
        out.push_back(
            {path, d.line, "mutable-global",
             "mutable namespace-scope state '" + d.name +
                 "' makes results order- and thread-dependent; make it "
                 "const/constexpr, or gate access through a function-local "
                 "static and suppress with a written reason"});
    }
}

// ---------------------------------------------------------------------------
// R7 · lock-discipline / guarded-field / requires-lock
//
// The v3 lock-set pass in locks.cc owns all three: it tracks RAII
// guard scopes (including std::defer_lock / adopt_lock and explicit
// .lock()/.unlock() on guard objects), flags manual mutex calls, and
// checks the AIWC_GUARDED_BY / AIWC_REQUIRES / AIWC_EXCLUDES model
// captured by the outline parser. See locks.hh.

// ---------------------------------------------------------------------------
// R8 · float-reduce-order
//
// Floating-point addition is not associative: std::reduce's unspecified
// operand grouping, and std::accumulate over floats combined in a
// caller-chosen order, both let summation order leak into digests. The
// deterministic merge lives in common/parallel.* (shard-index-order
// reduce) and sketch/ (pinned merge order), so those trees are exempt.

bool
floatReduceExempt(const std::string &path)
{
    return isParallelModule(path) || hasSegment(path, "sketch");
}

/** Does any token in [begin, end) look floating-point? */
bool
anyFloatish(const std::vector<Token> &ts, std::size_t begin, std::size_t end)
{
    for (std::size_t i = begin; i < end && i < ts.size(); ++i) {
        const Token &t = ts[i];
        if (t.kind == TokenKind::Identifier &&
            (t.text == "float" || t.text == "double"))
            return true;
        if (t.kind == TokenKind::Number && t.text.rfind("0x", 0) != 0 &&
            t.text.rfind("0X", 0) != 0) {
            if (t.text.find('.') != std::string::npos)
                return true;
            const char last = t.text.back();
            if (last == 'f' || last == 'F')
                return true;
            if (t.text.find('e') != std::string::npos ||
                t.text.find('E') != std::string::npos)
                return true;
        }
    }
    return false;
}

void
ruleFloatReduceOrder(const std::string &path, const std::vector<Token> &ts,
                     std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 3 < ts.size(); ++i) {
        if (!isIdent(ts, i, "std") || !isPunct(ts, i + 1, "::"))
            continue;
        const bool is_reduce = isIdent(ts, i + 2, "reduce");
        const bool is_accumulate = isIdent(ts, i + 2, "accumulate");
        if ((!is_reduce && !is_accumulate) || !isPunct(ts, i + 3, "("))
            continue;
        if (is_reduce) {
            out.push_back(
                {path, ts[i + 2].line, "float-reduce-order",
                 "std::reduce combines operands in unspecified order; for "
                 "floating-point data use parallelReduce (shard-index-order "
                 "merge) or a sequential std::accumulate over integers"});
        } else if (anyFloatish(ts, i + 4, matchParen(ts, i + 3))) {
            out.push_back(
                {path, ts[i + 2].line, "float-reduce-order",
                 "std::accumulate over floating-point data bakes the "
                 "traversal order into the sum; use parallelReduce or an "
                 "explicitly ordered Kahan/pairwise summation"});
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions: // aiwc-lint: allow(rule[, rule...]) -- reason

struct SuppressionTable {
    // (line, rule) pairs a valid suppression covers.
    std::set<std::pair<int, std::string>> allowed;
};

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    std::size_t e = s.find_last_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

void
parseSuppressions(const std::string &path, const std::vector<Token> &tokens,
                  SuppressionTable &table, std::vector<Finding> &out)
{
    static const std::string marker = "aiwc-lint:";
    for (const Token &t : tokens) {
        if (t.kind != TokenKind::Comment)
            continue;
        const std::size_t at = t.text.find(marker);
        if (at == std::string::npos)
            continue;
        // A suppression is a comment that *begins* with the marker
        // (after the comment opener). A marker mid-text is prose
        // describing the grammar — documentation, not a directive.
        const bool at_start = std::all_of(
            t.text.begin(), t.text.begin() + static_cast<long>(at),
            [](char ch) {
                return ch == '/' || ch == '*' || ch == '!' || ch == ' ' ||
                       ch == '\t' || ch == '\n' || ch == '\r';
            });
        if (!at_start)
            continue;
        std::string rest = trim(t.text.substr(at + marker.size()));
        // Block comments may close on the same line; drop the marker.
        const std::size_t close_comment = rest.find("*/");
        if (close_comment != std::string::npos)
            rest = trim(rest.substr(0, close_comment));

        if (rest.rfind("allow(", 0) != 0) {
            out.push_back({path, t.line, "bad-suppression",
                           "suppression must be `aiwc-lint: allow(<rule>) "
                           "-- <reason>`"});
            continue;
        }
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
            out.push_back({path, t.line, "bad-suppression",
                           "unclosed allow(...) in suppression"});
            continue;
        }

        std::vector<std::string> rules;
        std::stringstream list(rest.substr(6, close - 6));
        std::string item;
        bool rules_ok = true;
        while (std::getline(list, item, ',')) {
            item = trim(item);
            const auto &known = knownRules();
            if (std::find(known.begin(), known.end(), item) == known.end()) {
                out.push_back({path, t.line, "bad-suppression",
                               "unknown rule '" + item +
                                   "' in suppression (see --list-rules)"});
                rules_ok = false;
                break;
            }
            rules.push_back(item);
        }
        if (!rules_ok)
            continue;
        if (rules.empty()) {
            out.push_back({path, t.line, "bad-suppression",
                           "allow() names no rule"});
            continue;
        }

        const std::string after = trim(rest.substr(close + 1));
        if (after.rfind("--", 0) != 0 || trim(after.substr(2)).empty()) {
            out.push_back({path, t.line, "bad-suppression",
                           "suppression requires a written reason: "
                           "`-- <why this is safe>`"});
            continue;
        }

        // Cover every physical line the comment spans plus the next line,
        // so both end-of-line and line-above placement work. end_line (not
        // a count of '\n' in the text) is what makes this robust: a line
        // comment extended by a backslash continuation spans physical
        // lines whose newlines were spliced out of the token text.
        for (int line = t.line; line <= t.end_line + 1; ++line)
            for (const std::string &rule : rules)
                table.allowed.insert({line, rule});
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char ch : s) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
    return out;
}

} // namespace

const std::vector<std::string> &
knownRules()
{
    static const std::vector<std::string> rules = {
        "bad-suppression",    "contract-abort",  "contract-assert",
        "det-random",         "det-unordered-iter", "float-reduce-order",
        "guarded-field",      "header-pragma-once", "header-using-ns",
        "include-cycle",      "layer-violation", "lock-discipline",
        "lock-order-cycle",   "metric-name",     "mutable-global",
        "requires-lock",      "thread-raw",      "unused-include",
    };
    return rules;
}

const std::string &
ruleDescription(const std::string &rule)
{
    static const std::map<std::string, std::string> descriptions = {
        {"bad-suppression",
         "Suppression comments must name a known rule and carry a reason."},
        {"contract-abort",
         "Process termination is check.cc's job; raise AIWC_CHECK instead."},
        {"contract-assert",
         "Use AIWC_CHECK/AIWC_DCHECK, not assert(), in src/."},
        {"det-random",
         "No wall-clock or hardware randomness in result-producing code."},
        {"det-unordered-iter",
         "Never iterate unordered containers where order can reach output."},
        {"float-reduce-order",
         "Floating-point reductions must have a pinned combination order."},
        {"guarded-field",
         "AIWC_GUARDED_BY members are only touched with their mutex held."},
        {"header-pragma-once",
         "Public headers open with #pragma once."},
        {"header-using-ns",
         "No `using namespace` at namespace scope in headers."},
        {"include-cycle",
         "The project include graph must stay acyclic."},
        {"layer-violation",
         "Includes must respect the module DAG in tools/aiwc-lint/layers.txt."},
        {"lock-discipline",
         "Mutexes are held via RAII guards, never manual lock()/unlock()."},
        {"lock-order-cycle",
         "The whole-program lock-acquisition graph must stay acyclic "
         "(tools/aiwc-lint/locks.txt)."},
        {"metric-name",
         "Metric names match aiwc.<layer>.<thing> (lower_snake segments)."},
        {"mutable-global",
         "No mutable namespace-scope state in src/."},
        {"requires-lock",
         "AIWC_REQUIRES callees need the lock held; AIWC_EXCLUDES callees "
         "need it free."},
        {"thread-raw",
         "All concurrency goes through the deterministic pool."},
        {"unused-include",
         "Every project #include must supply a name the file uses."},
    };
    static const std::string unknown = "Unknown rule.";
    const auto it = descriptions.find(rule);
    return it == descriptions.end() ? unknown : it->second;
}

std::uint64_t
contentHash(const std::string &content)
{
    // FNV-1a 64: deterministic, dependency-free, fast enough that the
    // hash never shows up in the cold-run profile.
    std::uint64_t h = 1469598103934665603ULL;
    for (const char ch : content) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ULL;
    }
    return h;
}

FileAnalysis
analyzeSource(const std::string &path, const std::string &content,
              const std::string *companion_header)
{
    FileAnalysis fa;
    fa.path = path;
    fa.hash = contentHash(content);

    const std::vector<Token> tokens = lex(content);
    const std::vector<Token> code = codeView(tokens);

    SuppressionTable table;
    parseSuppressions(path, tokens, table, fa.findings);

    if (!determinismAllowlisted(path))
        ruleDetRandom(path, code, fa.findings);

    const Outline outline = parseOutline(tokens);

    if (underSrc(path)) {
        std::set<std::string> names;
        std::set<std::string> aliases;
        collectUnorderedDecls(code, names, aliases);
        if (companion_header != nullptr)
            collectUnorderedDecls(codeView(lex(*companion_header)), names,
                                  aliases);
        ruleUnorderedIter(path, code, names, fa.findings);

        ruleContractAssert(path, code, fa.findings);
        if (!isCheckImpl(path))
            ruleContractAbort(path, code, fa.findings);
        ruleMetricName(path, code, fa.findings);

        ruleMutableGlobal(path, outline, fa.findings);
        if (!floatReduceExempt(path))
            ruleFloatReduceOrder(path, code, fa.findings);
    }

    // The lock-set pass runs everywhere (the annotation model is only
    // visible where the macros are used, so it is silent elsewhere);
    // the manual-call discipline is project law for src/ only.
    {
        Outline companion_outline;
        if (companion_header != nullptr)
            companion_outline = parseOutline(lex(*companion_header));
        analyzeLocks(path, tokens, outline,
                     companion_header != nullptr ? &companion_outline
                                                 : nullptr,
                     underSrc(path), fa.findings, fa.lock_edges);
    }

    if (!isParallelModule(path))
        ruleThreadRaw(path, code, fa.findings);

    if (isPublicHeader(path))
        rulePragmaOnce(path, tokens, fa.findings);
    if (isHeader(path))
        ruleUsingNamespace(path, code, fa.findings);

    std::sort(fa.findings.begin(), fa.findings.end());

    fa.suppressions.assign(table.allowed.begin(), table.allowed.end());
    fa.includes = extractIncludes(tokens);

    fa.declared = declaredNames(outline);
    for (const Decl &d : outline.decls)
        if (d.kind == DeclKind::Function &&
            d.name.rfind("operator", 0) == 0)
            fa.declares_operator = true;

    // The used-name index: every identifier in the code view, plus
    // identifier-shaped words inside preprocessor directives so macro
    // uses in #if/#ifdef and nested #defines still count.
    std::set<std::string> used;
    for (const Token &t : tokens) {
        if (t.kind == TokenKind::Identifier) {
            used.insert(t.text);
        } else if (t.kind == TokenKind::PpDirective) {
            // #include paths would make every include self-justifying;
            // only non-include directives contribute used names.
            const std::size_t d = t.text.find_first_not_of(" \t", 1);
            if (d != std::string::npos &&
                t.text.compare(d, 7, "include") == 0)
                continue;
            std::string word;
            for (std::size_t i = 0; i <= t.text.size(); ++i) {
                const char ch = i < t.text.size() ? t.text[i] : ' ';
                if (std::isalnum(static_cast<unsigned char>(ch)) ||
                    ch == '_') {
                    word.push_back(ch);
                } else {
                    if (!word.empty() &&
                        !std::isdigit(
                            static_cast<unsigned char>(word[0])))
                        used.insert(word);
                    word.clear();
                }
            }
        }
    }
    fa.used.assign(used.begin(), used.end());
    return fa;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content,
           const std::string *companion_header)
{
    FileAnalysis fa = analyzeSource(path, content, companion_header);
    const std::set<std::pair<int, std::string>> allowed(
        fa.suppressions.begin(), fa.suppressions.end());

    std::vector<Finding> findings;
    for (Finding &f : fa.findings)
        if (allowed.count({f.line, f.rule}) == 0)
            findings.push_back(std::move(f));
    std::sort(findings.begin(), findings.end());
    return findings;
}

std::string
renderHuman(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    for (const Finding &f : findings)
        os << f.file << ":" << f.line << ": " << f.rule << ": " << f.message
           << "\n";
    return os.str();
}

std::string
renderJson(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    os << "{\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i == 0 ? "" : ",") << "\n    {\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << jsonEscape(f.rule)
           << "\", \"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    if (!findings.empty())
        os << "\n  ";
    os << "],\n  \"count\": " << findings.size() << "\n}\n";
    return os.str();
}

} // namespace aiwc::lint
