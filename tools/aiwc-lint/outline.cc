#include "outline.hh"

#include <algorithm>
#include <set>

namespace aiwc::lint
{

namespace
{

bool
isPunct(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Punct &&
           ts[i].text == text;
}

bool
isIdent(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Identifier &&
           ts[i].text == text;
}

/** Index just past the '}' matching ts[open] == "{". */
std::size_t
skipBraces(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "{"))
            ++depth;
        else if (isPunct(ts, i, "}") && --depth == 0)
            return i + 1;
    }
    return ts.size();
}

/** Index just past the '>' matching ts[open] == "<". */
std::size_t
skipAngles(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "<"))
            ++depth;
        else if (isPunct(ts, i, ">") && --depth == 0)
            return i + 1;
        else if (isPunct(ts, i, ";"))  // runaway: not a template list
            return open + 1;
    }
    return ts.size();
}

/** Index just past the ']]' matching ts[open] == "[" "[" (attribute). */
std::size_t
skipAttribute(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "["))
            ++depth;
        else if (isPunct(ts, i, "]") && --depth == 0)
            return i + 1;
    }
    return ts.size();
}

/** Index just past the ')' matching ts[open] == "(". */
std::size_t
skipParens(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "("))
            ++depth;
        else if (isPunct(ts, i, ")") && --depth == 0)
            return i + 1;
    }
    return ts.size();
}

/** Advance past the next ';' at brace depth 0 (or a top-level '{...}'). */
std::size_t
skipStatement(const std::vector<Token> &ts, std::size_t i)
{
    while (i < ts.size()) {
        if (isPunct(ts, i, ";"))
            return i + 1;
        if (isPunct(ts, i, "{"))
            return skipBraces(ts, i);
        ++i;
    }
    return i;
}

struct Parser {
    const std::vector<Token> &ts;
    Outline &out;
    std::vector<std::string> ns;  //!< enclosing namespace names

    std::string
    qualify(const std::string &name) const
    {
        std::string q;
        for (const std::string &part : ns) {
            q += part.empty() ? "(anonymous)" : part;
            q += "::";
        }
        return q + name;
    }

    void
    record(DeclKind kind, const std::string &name, int line,
           const Decl *flags = nullptr)
    {
        Decl d = flags ? *flags : Decl{};
        d.kind = kind;
        d.name = name;
        d.qualified = qualify(name);
        d.line = line;
        out.decls.push_back(std::move(d));
    }

    /** Parse declarations until '}' or end of stream; returns index past. */
    std::size_t
    parseScope(std::size_t i)
    {
        while (i < ts.size()) {
            const Token &t = ts[i];
            if (t.kind == TokenKind::Comment ||
                t.kind == TokenKind::PpDirective) {
                ++i;
                continue;
            }
            if (isPunct(ts, i, "}"))
                return i + 1;
            if (isPunct(ts, i, ";")) {
                ++i;
                continue;
            }
            if (isPunct(ts, i, "[") && isPunct(ts, i + 1, "[")) {
                i = skipAttribute(ts, i);
                continue;
            }
            if (t.kind != TokenKind::Identifier) {
                ++i;  // stray punctuation; resynchronize
                continue;
            }

            if (t.text == "namespace") {
                i = parseNamespace(i);
                continue;
            }
            if (t.text == "using" || t.text == "typedef") {
                i = parseAlias(i);
                continue;
            }
            if (t.text == "template") {
                ++i;
                if (isPunct(ts, i, "<"))
                    i = skipAngles(ts, i);
                continue;  // the templated declaration parses normally
            }
            if (t.text == "extern" && i + 1 < ts.size() &&
                ts[i + 1].kind == TokenKind::String) {
                // extern "C" { ... } is transparent; extern "C" decl is
                // handled by the generic declaration path below.
                if (isPunct(ts, i + 2, "{")) {
                    i = parseScope(i + 3);
                    continue;
                }
            }
            if (t.text == "class" || t.text == "struct" ||
                t.text == "union" || t.text == "enum") {
                i = parseType(i);
                continue;
            }
            if (t.text == "static_assert" || t.text == "friend") {
                i = skipStatement(ts, i);
                continue;
            }
            i = parseDeclaration(i);
        }
        return i;
    }

    /** ts[i] == "namespace". */
    std::size_t
    parseNamespace(std::size_t i)
    {
        ++i;
        std::vector<std::string> opened;
        std::string last_name;
        while (i < ts.size()) {
            if (ts[i].kind == TokenKind::Identifier &&
                !isIdent(ts, i, "inline")) {
                last_name = ts[i].text;
                ++i;
                if (isPunct(ts, i, "::")) {  // nested: namespace a::b {
                    opened.push_back(last_name);
                    ++i;
                    continue;
                }
                continue;
            }
            if (isPunct(ts, i, "=")) {  // namespace alias
                record(DeclKind::Alias, last_name, ts[i].line);
                return skipStatement(ts, i);
            }
            if (isPunct(ts, i, "{"))
                break;
            if (isPunct(ts, i, ";"))
                return i + 1;
            ++i;
        }
        if (i >= ts.size())
            return i;
        opened.push_back(last_name);  // "" for anonymous namespaces
        const int line = ts[i].line;
        if (!last_name.empty())
            record(DeclKind::Namespace, last_name, line);
        for (const std::string &part : opened)
            ns.push_back(part);
        i = parseScope(i + 1);
        ns.resize(ns.size() - opened.size());
        return i;
    }

    /** ts[i] == "using" or "typedef". */
    std::size_t
    parseAlias(std::size_t i)
    {
        const bool is_typedef = ts[i].text == "typedef";
        if (!is_typedef && isIdent(ts, i + 1, "namespace"))
            return skipStatement(ts, i);  // using-directive, not a decl
        if (!is_typedef && i + 2 < ts.size() &&
            ts[i + 1].kind == TokenKind::Identifier &&
            isPunct(ts, i + 2, "=")) {
            record(DeclKind::Alias, ts[i + 1].text, ts[i + 1].line);
            return skipStatement(ts, i + 2);
        }
        // typedef ... X;  or  using a::b; — the declared name is the last
        // identifier before the terminating ';'.
        std::string name;
        int line = ts[i].line;
        std::size_t j = i + 1;
        while (j < ts.size() && !isPunct(ts, j, ";")) {
            if (isPunct(ts, j, "<")) {
                j = skipAngles(ts, j);
                continue;
            }
            if (ts[j].kind == TokenKind::Identifier) {
                name = ts[j].text;
                line = ts[j].line;
            }
            ++j;
        }
        if (!name.empty())
            record(DeclKind::Alias, name, line);
        return j < ts.size() ? j + 1 : j;
    }

    /** ts[i] == class/struct/union/enum. */
    std::size_t
    parseType(std::size_t i)
    {
        const bool is_enum = ts[i].text == "enum";
        bool scoped_enum = false;
        ++i;
        if (is_enum &&
            (isIdent(ts, i, "class") || isIdent(ts, i, "struct"))) {
            scoped_enum = true;
            ++i;
        }
        while (isPunct(ts, i, "[") && isPunct(ts, i + 1, "["))
            i = skipAttribute(ts, i);

        std::string name;
        int line = i < ts.size() ? ts[i].line : 0;
        if (i < ts.size() && ts[i].kind == TokenKind::Identifier) {
            name = ts[i].text;
            line = ts[i].line;
            ++i;
        }
        // Scan to the body, a terminating ';' (forward declaration or a
        // member type used as a return type — resynchronize either way).
        while (i < ts.size() && !isPunct(ts, i, "{") &&
               !isPunct(ts, i, ";")) {
            if (isPunct(ts, i, "<")) {
                i = skipAngles(ts, i);
                continue;
            }
            ++i;
        }
        if (i >= ts.size())
            return i;
        if (isPunct(ts, i, ";")) {
            if (!name.empty())
                record(DeclKind::Type, name, line);
            return i + 1;
        }
        if (!name.empty())
            record(DeclKind::Type, name, line);
        if (is_enum && !scoped_enum)
            parseEnumerators(i);
        i = skipBraces(ts, i);
        // `struct X { ... } instance;` — the trailing declarator is a
        // namespace-scope variable.
        while (i < ts.size() && !isPunct(ts, i, ";")) {
            if (ts[i].kind == TokenKind::Identifier &&
                !isIdent(ts, i, "const")) {
                Decl flags;
                flags.has_initializer = true;
                record(DeclKind::Variable, ts[i].text, ts[i].line, &flags);
                return skipStatement(ts, i);
            }
            ++i;
        }
        return i < ts.size() ? i + 1 : i;
    }

    /** ts[open] == "{" of an unscoped enum body: record enumerators. */
    void
    parseEnumerators(std::size_t open)
    {
        std::size_t i = open + 1;
        bool expect_name = true;
        int depth = 1;
        while (i < ts.size() && depth > 0) {
            if (isPunct(ts, i, "{") || isPunct(ts, i, "(")) {
                ++depth;
            } else if (isPunct(ts, i, "}") || isPunct(ts, i, ")")) {
                --depth;
            } else if (depth == 1 && expect_name &&
                       ts[i].kind == TokenKind::Identifier) {
                record(DeclKind::Enumerator, ts[i].text, ts[i].line);
                expect_name = false;
            } else if (depth == 1 && isPunct(ts, i, ",")) {
                expect_name = true;
            }
            ++i;
        }
    }

    /**
     * Generic declaration: qualifiers, a type, a declarator. Stops at
     * the first of '(' (function or parenthesized declarator), '=' /
     * '{' / '[' / ';' (variable). Good enough for namespace scope; not
     * a grammar.
     */
    std::size_t
    parseDeclaration(std::size_t i)
    {
        Decl flags;
        std::string name;
        int line = ts[i].line;
        bool saw_ident = false;
        bool paren_declarator = false;  // name came from `( * name )`

        while (i < ts.size()) {
            const Token &t = ts[i];
            if (t.kind == TokenKind::Comment ||
                t.kind == TokenKind::PpDirective) {
                ++i;
                continue;
            }
            if (t.kind == TokenKind::Identifier) {
                if (t.text == "const") {
                    flags.is_const = true;
                } else if (t.text == "constexpr" || t.text == "constinit" ||
                           t.text == "consteval") {
                    flags.is_constexpr = true;
                } else if (t.text == "static") {
                    flags.is_static = true;
                } else if (t.text == "thread_local") {
                    flags.is_thread_local = true;
                } else if (t.text == "extern") {
                    flags.is_extern = true;
                } else if (t.text == "inline") {
                    flags.is_inline = true;
                } else if (t.text == "operator") {
                    name = "operator";
                    line = t.line;
                    saw_ident = true;
                    // Skip the operator symbol up to its '(' parameter
                    // list so `operator<` does not open an angle scan.
                    while (i + 1 < ts.size() && !isPunct(ts, i + 1, "("))
                        ++i;
                } else {
                    name = t.text;
                    line = t.line;
                    saw_ident = true;
                }
                ++i;
                continue;
            }
            if (isPunct(ts, i, "::")) {
                // Qualified declarator (out-of-line member): keep the
                // chain, the final identifier is the declared name.
                ++i;
                continue;
            }
            if (isPunct(ts, i, "<")) {
                i = skipAngles(ts, i);
                continue;
            }
            if (isPunct(ts, i, "[") && isPunct(ts, i + 1, "[")) {
                i = skipAttribute(ts, i);
                continue;
            }
            if (isPunct(ts, i, "*") || isPunct(ts, i, "&") ||
                isPunct(ts, i, "&&")) {
                ++i;
                continue;
            }
            if (isPunct(ts, i, "(")) {
                // `void (*fp)(int)` — the declarator hides inside the
                // parens; otherwise this is a function's parameter list.
                std::size_t j = i + 1;
                while (isPunct(ts, j, "*") || isPunct(ts, j, "&"))
                    ++j;
                if (j > i + 1 && j < ts.size() &&
                    ts[j].kind == TokenKind::Identifier &&
                    isPunct(ts, j + 1, ")")) {
                    name = ts[j].text;
                    line = ts[j].line;
                    saw_ident = true;
                    paren_declarator = true;
                    i = skipParens(ts, i);
                    continue;
                }
                if (paren_declarator) {
                    // `void (*fp)(int)` — this '(' is the pointee's
                    // parameter list, not a function being declared;
                    // the variable records at the '='/';' below.
                    i = skipParens(ts, i);
                    continue;
                }
                if (!saw_ident)
                    return skipStatement(ts, i);  // unparsable; resync
                record(DeclKind::Function, name, line, &flags);
                i = skipParens(ts, i);
                // Trailing specifiers, then either a body or ';'.
                while (i < ts.size() && !isPunct(ts, i, "{") &&
                       !isPunct(ts, i, ";") && !isPunct(ts, i, "="))
                    ++i;
                if (isPunct(ts, i, "{"))
                    return skipBraces(ts, i);
                return skipStatement(ts, i);
            }
            if (isPunct(ts, i, "=") || isPunct(ts, i, "{") ||
                isPunct(ts, i, "[") || isPunct(ts, i, ";")) {
                if (!saw_ident)
                    return skipStatement(ts, i);
                flags.has_initializer =
                    isPunct(ts, i, "=") || isPunct(ts, i, "{");
                record(DeclKind::Variable, name, line, &flags);
                return skipStatement(ts, i);
            }
            ++i;  // punctuation we do not model (",", "...", etc.)
        }
        return i;
    }
};

} // namespace

Outline
parseOutline(const std::vector<Token> &tokens)
{
    Outline out;

    // Macro names from #define directives.
    for (const Token &t : tokens) {
        if (t.kind != TokenKind::PpDirective)
            continue;
        std::size_t p = t.text.find_first_not_of(" \t", 1);  // skip '#'
        if (p == std::string::npos ||
            t.text.compare(p, 6, "define") != 0)
            continue;
        p = t.text.find_first_not_of(" \t", p + 6);
        if (p == std::string::npos)
            continue;
        std::size_t e = p;
        while (e < t.text.size() &&
               (std::isalnum(static_cast<unsigned char>(t.text[e])) ||
                t.text[e] == '_'))
            ++e;
        if (e > p) {
            Decl d;
            d.kind = DeclKind::Macro;
            d.name = t.text.substr(p, e - p);
            d.qualified = d.name;
            d.line = t.line;
            out.decls.push_back(std::move(d));
        }
    }

    Parser parser{tokens, out, {}};
    parser.parseScope(0);
    return out;
}

std::vector<std::string>
declaredNames(const Outline &o)
{
    std::set<std::string> names;
    for (const Decl &d : o.decls) {
        if (d.kind == DeclKind::Namespace)
            continue;  // sharing a namespace is not using the header
        if (!d.name.empty())
            names.insert(d.name);
    }
    return {names.begin(), names.end()};
}

} // namespace aiwc::lint
