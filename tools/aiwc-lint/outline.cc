#include "outline.hh"

#include <algorithm>
#include <set>

namespace aiwc::lint
{

namespace
{

bool
isPunct(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Punct &&
           ts[i].text == text;
}

bool
isIdent(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Identifier &&
           ts[i].text == text;
}

/** Index just past the '}' matching ts[open] == "{". */
std::size_t
skipBraces(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "{"))
            ++depth;
        else if (isPunct(ts, i, "}") && --depth == 0)
            return i + 1;
    }
    return ts.size();
}

/** Index just past the '>' matching ts[open] == "<". */
std::size_t
skipAngles(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "<"))
            ++depth;
        else if (isPunct(ts, i, ">") && --depth == 0)
            return i + 1;
        else if (isPunct(ts, i, ";"))  // runaway: not a template list
            return open + 1;
    }
    return ts.size();
}

/** Index just past the ']]' matching ts[open] == "[" "[" (attribute). */
std::size_t
skipAttribute(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "["))
            ++depth;
        else if (isPunct(ts, i, "]") && --depth == 0)
            return i + 1;
    }
    return ts.size();
}

/** Index just past the ')' matching ts[open] == "(". */
std::size_t
skipParens(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "("))
            ++depth;
        else if (isPunct(ts, i, ")") && --depth == 0)
            return i + 1;
    }
    return ts.size();
}

/** Advance past the next ';' at brace depth 0 (or a top-level '{...}'). */
std::size_t
skipStatement(const std::vector<Token> &ts, std::size_t i)
{
    while (i < ts.size()) {
        if (isPunct(ts, i, ";"))
            return i + 1;
        if (isPunct(ts, i, "{"))
            return skipBraces(ts, i);
        ++i;
    }
    return i;
}

/**
 * ts[i] == ":" after a constructor's parameter list: skip the member
 * initializer list (each item is a possibly qualified name followed by
 * a parenthesized or braced initializer) and return the index of the
 * body '{' — or wherever scanning stopped on unexpected input.
 */
std::size_t
skipCtorInit(const std::vector<Token> &ts, std::size_t i)
{
    ++i;  // ':'
    while (i < ts.size()) {
        while (i < ts.size() &&
               (ts[i].kind == TokenKind::Identifier || isPunct(ts, i, "::")))
            ++i;
        if (isPunct(ts, i, "<")) {
            i = skipAngles(ts, i);
            continue;  // templated base class name
        }
        if (isPunct(ts, i, "("))
            i = skipParens(ts, i);
        else if (isPunct(ts, i, "{"))
            i = skipBraces(ts, i);
        else
            return i;
        if (isPunct(ts, i, ",")) {
            ++i;
            continue;
        }
        return i;  // the body '{' (or ';' on malformed input)
    }
    return i;
}

// ---------------------------------------------------------------------------
// v3: capability annotation capture. The lock-set pass reads the macro
// vocabulary of aiwc/base/thread_annotations.hh straight from the token
// stream, so annotated code needs no compiler involvement to be checked.

struct AnnotationCapture {
    std::string guarded_by;
    std::vector<std::string> acquired_before;
    std::vector<std::string> requires_locks;
    std::vector<std::string> excludes_locks;
};

bool
isAnnotationMacro(const std::string &s)
{
    return s == "AIWC_GUARDED_BY" || s == "AIWC_PT_GUARDED_BY" ||
           s == "AIWC_ACQUIRED_BEFORE" || s == "AIWC_REQUIRES" ||
           s == "AIWC_EXCLUDES";
}

/**
 * ts[i] is an annotation macro name with ts[i + 1] == "(": record its
 * comma-separated arguments (each joined to one string, e.g.
 * "other.mutex_") into `cap` and return the index past the ')'.
 */
std::size_t
parseAnnotation(const std::vector<Token> &ts, std::size_t i,
                AnnotationCapture &cap)
{
    const std::string macro = ts[i].text;
    const std::size_t end = skipParens(ts, i + 1);
    std::vector<std::string> args;
    std::string cur;
    int depth = 0;
    for (std::size_t k = i + 2; k + 1 < end; ++k) {
        const Token &t = ts[k];
        if (t.kind == TokenKind::Comment || t.kind == TokenKind::PpDirective)
            continue;
        if (t.kind == TokenKind::Punct) {
            if (t.text == "(" || t.text == "[" || t.text == "<") {
                ++depth;
            } else if (t.text == ")" || t.text == "]" || t.text == ">") {
                --depth;
            } else if (t.text == "," && depth == 0) {
                if (!cur.empty())
                    args.push_back(cur);
                cur.clear();
                continue;
            }
        }
        cur += t.text;
    }
    if (!cur.empty())
        args.push_back(cur);

    if (macro == "AIWC_GUARDED_BY" || macro == "AIWC_PT_GUARDED_BY") {
        if (!args.empty())
            cap.guarded_by = args[0];
    } else if (macro == "AIWC_ACQUIRED_BEFORE") {
        cap.acquired_before.insert(cap.acquired_before.end(), args.begin(),
                                   args.end());
    } else if (macro == "AIWC_REQUIRES") {
        cap.requires_locks.insert(cap.requires_locks.end(), args.begin(),
                                  args.end());
    } else {
        cap.excludes_locks.insert(cap.excludes_locks.end(), args.begin(),
                                  args.end());
    }
    return end;
}

struct Parser {
    const std::vector<Token> &ts;
    Outline &out;
    std::vector<std::string> ns;      //!< enclosing namespace + class names
    std::vector<std::string> owners;  //!< enclosing class names only

    std::string
    qualify(const std::string &name) const
    {
        std::string q;
        for (const std::string &part : ns) {
            q += part.empty() ? "(anonymous)" : part;
            q += "::";
        }
        return q + name;
    }

    void
    recordDecl(DeclKind kind, const std::string &name, int line, Decl d)
    {
        d.kind = kind;
        d.name = name;
        d.qualified = qualify(name);
        d.line = line;
        if (d.owner.empty() && !owners.empty())
            d.owner = owners.back();
        out.decls.push_back(std::move(d));
    }

    void
    record(DeclKind kind, const std::string &name, int line,
           const Decl *flags = nullptr)
    {
        recordDecl(kind, name, line, flags ? *flags : Decl{});
    }

    /**
     * Out-of-line member declarators: when the declared name at
     * ts[name_idx] is written `Type::name` (or `Type::~name`), the
     * qualifier is the owning class.
     */
    void
    ownerFromDeclarator(Decl &d, std::size_t name_idx) const
    {
        std::size_t k = name_idx;
        if (k >= 1 && isPunct(ts, k - 1, "~"))
            --k;
        if (k >= 2 && isPunct(ts, k - 1, "::") &&
            ts[k - 2].kind == TokenKind::Identifier)
            d.owner = ts[k - 2].text;
    }

    /** Parse declarations until '}' or end of stream; returns index past. */
    std::size_t
    parseScope(std::size_t i)
    {
        while (i < ts.size()) {
            const Token &t = ts[i];
            if (t.kind == TokenKind::Comment ||
                t.kind == TokenKind::PpDirective) {
                ++i;
                continue;
            }
            if (isPunct(ts, i, "}"))
                return i + 1;
            if (isPunct(ts, i, ";")) {
                ++i;
                continue;
            }
            if (isPunct(ts, i, "[") && isPunct(ts, i + 1, "[")) {
                i = skipAttribute(ts, i);
                continue;
            }
            if (t.kind != TokenKind::Identifier) {
                ++i;  // stray punctuation; resynchronize
                continue;
            }

            if (t.text == "namespace") {
                i = parseNamespace(i);
                continue;
            }
            if (t.text == "using" || t.text == "typedef") {
                i = parseAlias(i);
                continue;
            }
            if (t.text == "template") {
                ++i;
                if (isPunct(ts, i, "<"))
                    i = skipAngles(ts, i);
                continue;  // the templated declaration parses normally
            }
            if (t.text == "extern" && i + 1 < ts.size() &&
                ts[i + 1].kind == TokenKind::String) {
                // extern "C" { ... } is transparent; extern "C" decl is
                // handled by the generic declaration path below.
                if (isPunct(ts, i + 2, "{")) {
                    i = parseScope(i + 3);
                    continue;
                }
            }
            if (t.text == "class" || t.text == "struct" ||
                t.text == "union" || t.text == "enum") {
                i = parseType(i);
                continue;
            }
            if (t.text == "static_assert" || t.text == "friend") {
                i = skipStatement(ts, i);
                continue;
            }
            i = parseDeclaration(i);
        }
        return i;
    }

    /** ts[i] == "namespace". */
    std::size_t
    parseNamespace(std::size_t i)
    {
        ++i;
        std::vector<std::string> opened;
        std::string last_name;
        while (i < ts.size()) {
            if (ts[i].kind == TokenKind::Identifier &&
                !isIdent(ts, i, "inline")) {
                last_name = ts[i].text;
                ++i;
                if (isPunct(ts, i, "::")) {  // nested: namespace a::b {
                    opened.push_back(last_name);
                    ++i;
                    continue;
                }
                continue;
            }
            if (isPunct(ts, i, "=")) {  // namespace alias
                record(DeclKind::Alias, last_name, ts[i].line);
                return skipStatement(ts, i);
            }
            if (isPunct(ts, i, "{"))
                break;
            if (isPunct(ts, i, ";"))
                return i + 1;
            ++i;
        }
        if (i >= ts.size())
            return i;
        opened.push_back(last_name);  // "" for anonymous namespaces
        const int line = ts[i].line;
        if (!last_name.empty())
            record(DeclKind::Namespace, last_name, line);
        for (const std::string &part : opened)
            ns.push_back(part);
        i = parseScope(i + 1);
        ns.resize(ns.size() - opened.size());
        return i;
    }

    /** ts[i] == "using" or "typedef". */
    std::size_t
    parseAlias(std::size_t i)
    {
        const bool is_typedef = ts[i].text == "typedef";
        if (!is_typedef && isIdent(ts, i + 1, "namespace"))
            return skipStatement(ts, i);  // using-directive, not a decl
        if (!is_typedef && i + 2 < ts.size() &&
            ts[i + 1].kind == TokenKind::Identifier &&
            isPunct(ts, i + 2, "=")) {
            record(DeclKind::Alias, ts[i + 1].text, ts[i + 1].line);
            return skipStatement(ts, i + 2);
        }
        // typedef ... X;  or  using a::b; — the declared name is the last
        // identifier before the terminating ';'.
        std::string name;
        int line = ts[i].line;
        std::size_t j = i + 1;
        while (j < ts.size() && !isPunct(ts, j, ";")) {
            if (isPunct(ts, j, "<")) {
                j = skipAngles(ts, j);
                continue;
            }
            if (ts[j].kind == TokenKind::Identifier) {
                name = ts[j].text;
                line = ts[j].line;
            }
            ++j;
        }
        if (!name.empty())
            record(DeclKind::Alias, name, line);
        return j < ts.size() ? j + 1 : j;
    }

    /** ts[i] == class/struct/union/enum. */
    std::size_t
    parseType(std::size_t i)
    {
        const bool is_enum = ts[i].text == "enum";
        bool scoped_enum = false;
        ++i;
        if (is_enum &&
            (isIdent(ts, i, "class") || isIdent(ts, i, "struct"))) {
            scoped_enum = true;
            ++i;
        }
        while (isPunct(ts, i, "[") && isPunct(ts, i + 1, "["))
            i = skipAttribute(ts, i);
        // Capability annotations sit between the class-key and the name:
        // `class AIWC_CAPABILITY("mutex") Mutex { ... }`.
        while (i < ts.size() && ts[i].kind == TokenKind::Identifier &&
               (ts[i].text == "AIWC_CAPABILITY" ||
                ts[i].text == "AIWC_SCOPED_CAPABILITY")) {
            ++i;
            if (isPunct(ts, i, "("))
                i = skipParens(ts, i);
        }

        std::string name;
        int line = i < ts.size() ? ts[i].line : 0;
        if (i < ts.size() && ts[i].kind == TokenKind::Identifier) {
            name = ts[i].text;
            line = ts[i].line;
            ++i;
        }
        // Scan to the body, a terminating ';' (forward declaration or a
        // member type used as a return type — resynchronize either way).
        while (i < ts.size() && !isPunct(ts, i, "{") &&
               !isPunct(ts, i, ";")) {
            if (isPunct(ts, i, "<")) {
                i = skipAngles(ts, i);
                continue;
            }
            ++i;
        }
        if (i >= ts.size())
            return i;
        if (isPunct(ts, i, ";")) {
            if (!name.empty())
                record(DeclKind::Type, name, line);
            return i + 1;
        }
        if (!name.empty())
            record(DeclKind::Type, name, line);
        if (is_enum && !scoped_enum)
            parseEnumerators(i);
        if (!is_enum && !name.empty()) {
            // Descend into the class body: member fields, their
            // annotations, and inline method bodies feed the lock-set
            // pass. skipBraces below stays the authoritative advance,
            // so a confused member scan cannot derail the outer walk.
            owners.push_back(name);
            ns.push_back(name);
            parseMembers(i + 1);
            ns.pop_back();
            owners.pop_back();
        }
        i = skipBraces(ts, i);
        // `struct X { ... } instance;` — the trailing declarator is a
        // namespace-scope variable (a member field inside a class).
        while (i < ts.size() && !isPunct(ts, i, ";")) {
            if (ts[i].kind == TokenKind::Identifier &&
                !isIdent(ts, i, "const")) {
                Decl flags;
                flags.has_initializer = true;
                flags.type_name = name;
                record(owners.empty() ? DeclKind::Variable : DeclKind::Field,
                       ts[i].text, ts[i].line, &flags);
                return skipStatement(ts, i);
            }
            ++i;
        }
        return i < ts.size() ? i + 1 : i;
    }

    /**
     * Class body: declarations until the matching '}' (which the
     * caller skips). Mirrors parseScope with member-only syntax added:
     * access specifiers, constructors/destructors, bit-fields, and
     * trailing capability annotations.
     */
    void
    parseMembers(std::size_t i)
    {
        while (i < ts.size()) {
            const Token &t = ts[i];
            if (t.kind == TokenKind::Comment ||
                t.kind == TokenKind::PpDirective) {
                ++i;
                continue;
            }
            if (isPunct(ts, i, "}"))
                return;
            if (isPunct(ts, i, ";")) {
                ++i;
                continue;
            }
            if (isPunct(ts, i, "[") && isPunct(ts, i + 1, "[")) {
                i = skipAttribute(ts, i);
                continue;
            }
            if (isPunct(ts, i, "~")) {  // destructor
                i = parseDeclaration(i, /*member=*/true);
                continue;
            }
            if (t.kind != TokenKind::Identifier) {
                ++i;  // stray punctuation; resynchronize
                continue;
            }
            if ((t.text == "public" || t.text == "private" ||
                 t.text == "protected") &&
                isPunct(ts, i + 1, ":")) {
                i += 2;
                continue;
            }
            if (t.text == "using" || t.text == "typedef") {
                i = parseAlias(i);
                continue;
            }
            if (t.text == "template") {
                ++i;
                if (isPunct(ts, i, "<"))
                    i = skipAngles(ts, i);
                continue;  // the templated member parses normally
            }
            if (t.text == "class" || t.text == "struct" ||
                t.text == "union" || t.text == "enum") {
                i = parseType(i);
                continue;
            }
            if (t.text == "static_assert" || t.text == "friend") {
                i = skipStatement(ts, i);
                continue;
            }
            i = parseDeclaration(i, /*member=*/true);
        }
    }

    /** ts[open] == "{" of an unscoped enum body: record enumerators. */
    void
    parseEnumerators(std::size_t open)
    {
        std::size_t i = open + 1;
        bool expect_name = true;
        int depth = 1;
        while (i < ts.size() && depth > 0) {
            if (isPunct(ts, i, "{") || isPunct(ts, i, "(")) {
                ++depth;
            } else if (isPunct(ts, i, "}") || isPunct(ts, i, ")")) {
                --depth;
            } else if (depth == 1 && expect_name &&
                       ts[i].kind == TokenKind::Identifier) {
                record(DeclKind::Enumerator, ts[i].text, ts[i].line);
                expect_name = false;
            } else if (depth == 1 && isPunct(ts, i, ",")) {
                expect_name = true;
            }
            ++i;
        }
    }

    /**
     * Generic declaration: qualifiers, a type, a declarator. Stops at
     * the first of '(' (function or parenthesized declarator), '=' /
     * '{' / '[' / ';' (variable / field). `member` switches the
     * variable kind to Field and enables destructor ('~') and
     * bit-field (':') declarators. Capability annotation macros are
     * captured wherever they appear and never become the declared
     * name. Good enough for scope outlines; not a grammar.
     */
    std::size_t
    parseDeclaration(std::size_t i, bool member = false)
    {
        Decl flags;
        AnnotationCapture cap;
        std::string name;
        std::string prev_ident;  // the type identifier before the name
        int line = ts[i].line;
        std::size_t name_idx = 0;
        bool saw_ident = false;
        bool paren_declarator = false;  // name came from `( * name )`
        bool dtor = false;

        if (member && isPunct(ts, i, "~")) {
            dtor = true;
            ++i;
        }

        while (i < ts.size()) {
            const Token &t = ts[i];
            if (t.kind == TokenKind::Comment ||
                t.kind == TokenKind::PpDirective) {
                ++i;
                continue;
            }
            if (t.kind == TokenKind::Identifier) {
                if (isAnnotationMacro(t.text) && isPunct(ts, i + 1, "(")) {
                    i = parseAnnotation(ts, i, cap);
                    continue;
                }
                if (t.text == "const") {
                    flags.is_const = true;
                } else if (t.text == "constexpr" || t.text == "constinit" ||
                           t.text == "consteval") {
                    flags.is_constexpr = true;
                } else if (t.text == "static") {
                    flags.is_static = true;
                } else if (t.text == "thread_local") {
                    flags.is_thread_local = true;
                } else if (t.text == "extern") {
                    flags.is_extern = true;
                } else if (t.text == "inline") {
                    flags.is_inline = true;
                } else if (t.text == "operator") {
                    prev_ident = name;
                    name = "operator";
                    line = t.line;
                    name_idx = i;
                    saw_ident = true;
                    // Skip the operator symbol up to its '(' parameter
                    // list so `operator<` does not open an angle scan.
                    while (i + 1 < ts.size() && !isPunct(ts, i + 1, "("))
                        ++i;
                } else {
                    prev_ident = name;
                    name = t.text;
                    line = t.line;
                    name_idx = i;
                    saw_ident = true;
                }
                ++i;
                continue;
            }
            if (isPunct(ts, i, "::")) {
                // Qualified declarator (out-of-line member): keep the
                // chain, the final identifier is the declared name.
                ++i;
                continue;
            }
            if (member && isPunct(ts, i, "~")) {
                dtor = true;  // `inline ~X()` — destructor after qualifiers
                ++i;
                continue;
            }
            if (isPunct(ts, i, "<")) {
                i = skipAngles(ts, i);
                continue;
            }
            if (isPunct(ts, i, "[") && isPunct(ts, i + 1, "[")) {
                i = skipAttribute(ts, i);
                continue;
            }
            if (isPunct(ts, i, "*") || isPunct(ts, i, "&") ||
                isPunct(ts, i, "&&")) {
                ++i;
                continue;
            }
            if (isPunct(ts, i, "(")) {
                // `void (*fp)(int)` — the declarator hides inside the
                // parens; otherwise this is a function's parameter list.
                std::size_t j = i + 1;
                while (isPunct(ts, j, "*") || isPunct(ts, j, "&"))
                    ++j;
                if (j > i + 1 && j < ts.size() &&
                    ts[j].kind == TokenKind::Identifier &&
                    isPunct(ts, j + 1, ")")) {
                    prev_ident = name;
                    name = ts[j].text;
                    line = ts[j].line;
                    name_idx = j;
                    saw_ident = true;
                    paren_declarator = true;
                    i = skipParens(ts, i);
                    continue;
                }
                if (paren_declarator) {
                    // `void (*fp)(int)` — this '(' is the pointee's
                    // parameter list, not a function being declared;
                    // the variable records at the '='/';' below.
                    i = skipParens(ts, i);
                    continue;
                }
                if (!saw_ident)
                    return skipStatement(ts, i);  // unparsable; resync
                i = skipParens(ts, i);
                // Trailing specifiers and annotations, an optional
                // constructor initializer list, then a body or ';'.
                while (i < ts.size()) {
                    const Token &tt = ts[i];
                    if (tt.kind == TokenKind::Comment ||
                        tt.kind == TokenKind::PpDirective) {
                        ++i;
                        continue;
                    }
                    if (tt.kind == TokenKind::Identifier &&
                        isAnnotationMacro(tt.text) &&
                        isPunct(ts, i + 1, "(")) {
                        i = parseAnnotation(ts, i, cap);
                        continue;
                    }
                    if (isPunct(ts, i, "(")) {  // noexcept(...) etc.
                        i = skipParens(ts, i);
                        continue;
                    }
                    if (isPunct(ts, i, "<")) {
                        i = skipAngles(ts, i);
                        continue;
                    }
                    if (isPunct(ts, i, ":")) {
                        i = skipCtorInit(ts, i);
                        continue;
                    }
                    if (isPunct(ts, i, "{") || isPunct(ts, i, ";") ||
                        isPunct(ts, i, "="))
                        break;
                    ++i;
                }
                Decl d = flags;
                d.type_name = prev_ident;
                d.requires_locks = cap.requires_locks;
                d.excludes_locks = cap.excludes_locks;
                if (!member)
                    ownerFromDeclarator(d, name_idx);
                if (dtor)
                    name = "~" + name;
                if (isPunct(ts, i, "{")) {
                    d.body_begin = static_cast<int>(i);
                    const std::size_t past = skipBraces(ts, i);
                    d.body_end = static_cast<int>(past) - 1;
                    recordDecl(DeclKind::Function, name, line, std::move(d));
                    return past;
                }
                recordDecl(DeclKind::Function, name, line, std::move(d));
                return skipStatement(ts, i);
            }
            if (isPunct(ts, i, "=") || isPunct(ts, i, "{") ||
                isPunct(ts, i, "[") || isPunct(ts, i, ";") ||
                (member && isPunct(ts, i, ":"))) {
                if (!saw_ident)
                    return skipStatement(ts, i);
                Decl d = flags;
                d.has_initializer =
                    isPunct(ts, i, "=") || isPunct(ts, i, "{");
                d.type_name = prev_ident;
                d.guarded_by = cap.guarded_by;
                d.acquired_before = cap.acquired_before;
                if (!member)
                    ownerFromDeclarator(d, name_idx);
                recordDecl(member ? DeclKind::Field : DeclKind::Variable,
                           name, line, std::move(d));
                return skipStatement(ts, i);
            }
            ++i;  // punctuation we do not model (",", "...", etc.)
        }
        return i;
    }
};

} // namespace

Outline
parseOutline(const std::vector<Token> &tokens)
{
    Outline out;

    // Macro names from #define directives.
    for (const Token &t : tokens) {
        if (t.kind != TokenKind::PpDirective)
            continue;
        std::size_t p = t.text.find_first_not_of(" \t", 1);  // skip '#'
        if (p == std::string::npos ||
            t.text.compare(p, 6, "define") != 0)
            continue;
        p = t.text.find_first_not_of(" \t", p + 6);
        if (p == std::string::npos)
            continue;
        std::size_t e = p;
        while (e < t.text.size() &&
               (std::isalnum(static_cast<unsigned char>(t.text[e])) ||
                t.text[e] == '_'))
            ++e;
        if (e > p) {
            Decl d;
            d.kind = DeclKind::Macro;
            d.name = t.text.substr(p, e - p);
            d.qualified = d.name;
            d.line = t.line;
            out.decls.push_back(std::move(d));
        }
    }

    Parser parser{tokens, out, {}};
    parser.parseScope(0);
    return out;
}

std::vector<std::string>
declaredNames(const Outline &o)
{
    std::set<std::string> names;
    for (const Decl &d : o.decls) {
        if (d.kind == DeclKind::Namespace)
            continue;  // sharing a namespace is not using the header
        if (!d.owner.empty())
            continue;  // members are reachable only through their class
        if (!d.name.empty())
            names.insert(d.name);
    }
    return {names.begin(), names.end()};
}

} // namespace aiwc::lint
