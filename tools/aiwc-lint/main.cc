/**
 * @file
 * aiwc-lint command line driver.
 *
 *   aiwc-lint [--json] [--sarif FILE] [--cache FILE] [--changed PATH]...
 *             [--layers FILE] [--locks FILE] [--root DIR] [--list-rules]
 *             [paths...]
 *
 * With no paths, lints src/, tests/, bench/, and tools/ under the root
 * (default: the current directory). The whole tree is always analyzed
 * — cross-file rules need the full include graph — but `--changed`
 * restricts *reporting* to the changed files' reverse include-closure,
 * and `--cache` makes re-analysis of unchanged files a hash lookup.
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error — so CI and
 * scripts/lint.sh can tell "violations" apart from "could not run".
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis.hh"
#include "rules.hh"

namespace fs = std::filesystem;

namespace
{

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

void
usage(std::ostream &os)
{
    os << "usage: aiwc-lint [--json] [--sarif FILE] [--cache FILE]\n"
          "                 [--changed PATH]... [--layers FILE]\n"
          "                 [--locks FILE] [--root DIR] [--list-rules]\n"
          "                 [paths...]\n"
          "Self-hosted static analysis for the aiwc tree: enforces the\n"
          "determinism, contract, threading, locking, metric-naming,\n"
          "header, and module-layering invariants documented in\n"
          "CONTRIBUTING.md.\n"
          "Default paths: src tests bench tools (relative to --root).\n"
          "  --sarif FILE    also write a SARIF 2.1.0 report to FILE\n"
          "  --cache FILE    reuse/update the incremental analysis cache\n"
          "  --changed PATH  report only PATH's reverse include-closure\n"
          "                  (repeatable; analysis still covers the tree)\n"
          "  --layers FILE   module DAG spec (default:\n"
          "                  <root>/tools/aiwc-lint/layers.txt)\n"
          "  --locks FILE    lock-order spec (default:\n"
          "                  <root>/tools/aiwc-lint/locks.txt)\n"
          "Exit codes: 0 clean, 1 findings, 2 usage/IO error.\n";
}

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" || ext == ".h";
}

/** Repo-relative, '/'-separated form the rule scopes match against. */
std::string
normalize(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty() || *rel.begin() == "..")
        rel = p;
    return rel.generic_string();
}

/**
 * The module's public header, for cross-file declaration context:
 * src/<mod>/<stem>.cc -> src/include/aiwc/<mod>/<stem>.hh.
 */
fs::path
companionHeader(const fs::path &source, const fs::path &root)
{
    const std::string norm = normalize(source, root);
    if (norm.rfind("src/", 0) != 0 || norm.find("src/include/") == 0)
        return {};
    const fs::path rel(norm.substr(4));  // "<mod>/<stem>.cc"
    fs::path header = root / "src" / "include" / "aiwc" / rel;
    header.replace_extension(".hh");
    return fs::exists(header) ? header : fs::path{};
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

bool
writeFile(const fs::path &p, const std::string &content)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << content;
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    fs::path root = ".";
    fs::path sarif_path;
    fs::path cache_path;
    fs::path layers_path;
    bool layers_explicit = false;
    fs::path locks_path;
    bool locks_explicit = false;
    std::vector<std::string> changed;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *what) -> const char * {
            if (++i >= argc) {
                std::cerr << "aiwc-lint: " << arg << " needs " << what
                          << "\n";
                return nullptr;
            }
            return argv[i];
        };
        if (arg == "--json") {
            json = true;
        } else if (arg == "--root") {
            const char *v = value("a directory");
            if (v == nullptr)
                return kExitUsage;
            root = v;
        } else if (arg == "--sarif") {
            const char *v = value("an output file");
            if (v == nullptr)
                return kExitUsage;
            sarif_path = v;
        } else if (arg == "--cache") {
            const char *v = value("a cache file");
            if (v == nullptr)
                return kExitUsage;
            cache_path = v;
        } else if (arg == "--layers") {
            const char *v = value("a spec file");
            if (v == nullptr)
                return kExitUsage;
            layers_path = v;
            layers_explicit = true;
        } else if (arg == "--locks") {
            const char *v = value("a spec file");
            if (v == nullptr)
                return kExitUsage;
            locks_path = v;
            locks_explicit = true;
        } else if (arg == "--changed") {
            const char *v = value("a path");
            if (v == nullptr)
                return kExitUsage;
            changed.emplace_back(v);
        } else if (arg == "--list-rules") {
            for (const std::string &rule : aiwc::lint::knownRules())
                std::cout << rule << "\n";
            return kExitClean;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return kExitClean;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "aiwc-lint: unknown option " << arg << "\n";
            usage(std::cerr);
            return kExitUsage;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "tests", "bench", "tools"};
    if (layers_path.empty())
        layers_path = root / "tools" / "aiwc-lint" / "layers.txt";
    if (locks_path.empty())
        locks_path = root / "tools" / "aiwc-lint" / "locks.txt";

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        const fs::path full = fs::path(p).is_absolute() ? fs::path(p)
                                                        : root / p;
        std::error_code ec;
        if (fs::is_directory(full, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(full, ec))
                if (entry.is_regular_file() &&
                    lintableExtension(entry.path()))
                    files.push_back(entry.path());
            if (ec) {
                std::cerr << "aiwc-lint: cannot walk " << full << ": "
                          << ec.message() << "\n";
                return kExitUsage;
            }
        } else if (fs::is_regular_file(full, ec)) {
            files.push_back(full);
        } else {
            std::cerr << "aiwc-lint: no such file or directory: " << full
                      << "\n";
            return kExitUsage;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<aiwc::lint::SourceFile> sources;
    sources.reserve(files.size());
    for (const fs::path &file : files) {
        aiwc::lint::SourceFile sf;
        sf.path = normalize(file, root);
        if (!readFile(file, sf.content)) {
            std::cerr << "aiwc-lint: cannot read " << file << "\n";
            return kExitUsage;
        }
        const fs::path header = companionHeader(file, root);
        if (!header.empty() && readFile(header, sf.companion))
            sf.has_companion = true;
        sources.push_back(std::move(sf));
    }

    aiwc::lint::ProjectOptions options;
    {
        std::string layers_text;
        if (readFile(layers_path, layers_text)) {
            options.layers_text = std::move(layers_text);
        } else if (layers_explicit) {
            std::cerr << "aiwc-lint: cannot read layers spec "
                      << layers_path << "\n";
            return kExitUsage;
        }
        // Default spec missing: layering simply does not apply (the
        // linter stays usable on trees that have not adopted it).
    }
    {
        std::string locks_text;
        if (readFile(locks_path, locks_text)) {
            options.locks_text = std::move(locks_text);
            options.locks_path = normalize(locks_path, root);
        } else if (locks_explicit) {
            std::cerr << "aiwc-lint: cannot read locks spec " << locks_path
                      << "\n";
            return kExitUsage;
        }
        // Missing default locks.txt: the lock-order check still runs
        // over observed acquisition edges alone.
    }
    for (const std::string &c : changed)
        options.changed.insert(normalize(fs::path(c), root));

    aiwc::lint::AnalysisCache cache;
    const bool use_cache = !cache_path.empty();
    if (use_cache) {
        std::string text;
        if (readFile(cache_path, text))
            cache.load(text);  // version/parse mismatch: start cold
    }

    const aiwc::lint::ProjectResult result = aiwc::lint::analyzeProject(
        sources, options, use_cache ? &cache : nullptr);
    if (!result.error.empty()) {
        std::cerr << "aiwc-lint: internal error: " << result.error << "\n";
        return kExitUsage;
    }

    if (use_cache && !writeFile(cache_path, cache.serialize())) {
        std::cerr << "aiwc-lint: cannot write cache " << cache_path
                  << "\n";
        return kExitUsage;
    }
    if (!sarif_path.empty() &&
        !writeFile(sarif_path, aiwc::lint::renderSarif(result.findings))) {
        std::cerr << "aiwc-lint: cannot write SARIF " << sarif_path
                  << "\n";
        return kExitUsage;
    }

    if (json)
        std::cout << aiwc::lint::renderJson(result.findings);
    else if (!result.findings.empty())
        std::cout << aiwc::lint::renderHuman(result.findings);

    if (result.findings.empty()) {
        if (!json)
            std::cout << "aiwc-lint: OK (" << result.reported_files
                      << " of " << sources.size() << " files reported, "
                      << result.cached << " cached)\n";
        return kExitClean;
    }
    if (!json)
        std::cerr << "aiwc-lint: " << result.findings.size()
                  << " finding(s) in " << result.reported_files << " of "
                  << sources.size() << " files (" << result.cached
                  << " cached)\n";
    return kExitFindings;
}
