/**
 * @file
 * aiwc-lint command line driver.
 *
 *   aiwc-lint [--json] [--root DIR] [--list-rules] [paths...]
 *
 * With no paths, lints src/, tests/, and bench/ under the root (default:
 * the current directory). Exit codes: 0 clean, 1 findings, 2 usage or
 * I/O error — so CI and scripts/lint.sh can tell "violations" apart
 * from "could not run".
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hh"

namespace fs = std::filesystem;

namespace
{

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

void
usage(std::ostream &os)
{
    os << "usage: aiwc-lint [--json] [--root DIR] [--list-rules] "
          "[paths...]\n"
          "Self-hosted static analysis for the aiwc tree: enforces the\n"
          "determinism, contract, threading, metric-naming, and header\n"
          "invariants documented in CONTRIBUTING.md.\n"
          "Default paths: src tests bench (relative to --root).\n"
          "Exit codes: 0 clean, 1 findings, 2 usage/IO error.\n";
}

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" || ext == ".h";
}

/** Repo-relative, '/'-separated form the rule scopes match against. */
std::string
normalize(const fs::path &p, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    if (ec || rel.empty() || *rel.begin() == "..")
        rel = p;
    return rel.generic_string();
}

/**
 * The module's public header, for cross-file declaration context:
 * src/<mod>/<stem>.cc -> src/include/aiwc/<mod>/<stem>.hh.
 */
fs::path
companionHeader(const fs::path &source, const fs::path &root)
{
    const std::string norm = normalize(source, root);
    if (norm.rfind("src/", 0) != 0 || norm.find("src/include/") == 0)
        return {};
    const fs::path rel(norm.substr(4));  // "<mod>/<stem>.cc"
    fs::path header = root / "src" / "include" / "aiwc" / rel;
    header.replace_extension(".hh");
    return fs::exists(header) ? header : fs::path{};
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    fs::path root = ".";
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--root") {
            if (++i >= argc) {
                std::cerr << "aiwc-lint: --root needs a directory\n";
                return kExitUsage;
            }
            root = argv[i];
        } else if (arg == "--list-rules") {
            for (const std::string &rule : aiwc::lint::knownRules())
                std::cout << rule << "\n";
            return kExitClean;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return kExitClean;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "aiwc-lint: unknown option " << arg << "\n";
            usage(std::cerr);
            return kExitUsage;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "tests", "bench"};

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        const fs::path full = fs::path(p).is_absolute() ? fs::path(p)
                                                        : root / p;
        std::error_code ec;
        if (fs::is_directory(full, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(full, ec))
                if (entry.is_regular_file() &&
                    lintableExtension(entry.path()))
                    files.push_back(entry.path());
            if (ec) {
                std::cerr << "aiwc-lint: cannot walk " << full << ": "
                          << ec.message() << "\n";
                return kExitUsage;
            }
        } else if (fs::is_regular_file(full, ec)) {
            files.push_back(full);
        } else {
            std::cerr << "aiwc-lint: no such file or directory: " << full
                      << "\n";
            return kExitUsage;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::vector<aiwc::lint::Finding> findings;
    for (const fs::path &file : files) {
        std::string content;
        if (!readFile(file, content)) {
            std::cerr << "aiwc-lint: cannot read " << file << "\n";
            return kExitUsage;
        }
        std::string header_content;
        const std::string *companion = nullptr;
        const fs::path header = companionHeader(file, root);
        if (!header.empty() && readFile(header, header_content))
            companion = &header_content;
        std::vector<aiwc::lint::Finding> got = aiwc::lint::lintSource(
            normalize(file, root), content, companion);
        findings.insert(findings.end(),
                        std::make_move_iterator(got.begin()),
                        std::make_move_iterator(got.end()));
    }
    std::sort(findings.begin(), findings.end());

    if (json)
        std::cout << aiwc::lint::renderJson(findings);
    else if (!findings.empty())
        std::cout << aiwc::lint::renderHuman(findings);

    if (findings.empty()) {
        if (!json)
            std::cout << "aiwc-lint: OK (" << files.size() << " files)\n";
        return kExitClean;
    }
    if (!json)
        std::cerr << "aiwc-lint: " << findings.size() << " finding(s) in "
                  << files.size() << " files\n";
    return kExitFindings;
}
