#include "locks.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "lexer.hh"

namespace aiwc::lint
{

namespace
{

bool
isPunct(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Punct &&
           ts[i].text == text;
}

bool
isIdent(const std::vector<Token> &ts, std::size_t i, const char *text)
{
    return i < ts.size() && ts[i].kind == TokenKind::Identifier &&
           ts[i].text == text;
}

/** Index just past the '>' matching ts[open] == "<". */
std::size_t
skipAngles(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "<"))
            ++depth;
        else if (isPunct(ts, i, ">") && --depth == 0)
            return i + 1;
        else if (isPunct(ts, i, ";"))  // runaway: not a template list
            return open + 1;
    }
    return ts.size();
}

/** Index just past the ')' matching ts[open] == "(". */
std::size_t
matchParen(const std::vector<Token> &ts, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        if (isPunct(ts, i, "("))
            ++depth;
        else if (isPunct(ts, i, ")") && --depth == 0)
            return i + 1;
    }
    return ts.size();
}

/** Final identifier of a lock expression: "other.mutex_" -> "mutex_". */
std::string
finalIdent(const std::string &expr)
{
    std::size_t e = expr.size();
    auto word = [](char ch) {
        return (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
               (ch >= '0' && ch <= '9') || ch == '_';
    };
    while (e > 0 && !word(expr[e - 1]))
        --e;
    std::size_t b = e;
    while (b > 0 && word(expr[b - 1]))
        --b;
    const std::string id = expr.substr(b, e - b);
    return (id.empty() || (id[0] >= '0' && id[0] <= '9')) ? "" : id;
}

// ---------------------------------------------------------------------------
// The concurrency model: annotated fields and methods, merged from the
// file's outline and its companion header's so .cc bodies see the
// class model declared in the module's public header.

bool
isMutexKind(const std::string &type_name)
{
    return type_name == "Mutex" || type_name == "mutex" ||
           type_name == "timed_mutex" || type_name == "recursive_mutex" ||
           type_name == "shared_mutex" || type_name == "shared_timed_mutex" ||
           type_name == "recursive_timed_mutex";
}

struct FieldInfo {
    std::string guarded_by;
    std::string type_name;
};

struct MethodInfo {
    std::vector<std::string> requires_locks;
    std::vector<std::string> excludes_locks;
};

struct ClassInfo {
    std::map<std::string, FieldInfo> fields;
    std::map<std::string, MethodInfo> methods;
};

struct Model {
    std::map<std::string, ClassInfo> classes;
    std::map<std::string, MethodInfo> free_fns;
};

void
mergeList(std::vector<std::string> &into, const std::vector<std::string> &from)
{
    for (const std::string &s : from)
        if (std::find(into.begin(), into.end(), s) == into.end())
            into.push_back(s);
}

void
addOutline(const Outline &o, Model &m)
{
    for (const Decl &d : o.decls) {
        if (d.kind == DeclKind::Field && !d.owner.empty()) {
            FieldInfo &f = m.classes[d.owner].fields[d.name];
            if (f.guarded_by.empty())
                f.guarded_by = d.guarded_by;
            if (f.type_name.empty())
                f.type_name = d.type_name;
        } else if (d.kind == DeclKind::Function) {
            MethodInfo &mi = d.owner.empty()
                                 ? m.free_fns[d.name]
                                 : m.classes[d.owner].methods[d.name];
            mergeList(mi.requires_locks, d.requires_locks);
            mergeList(mi.excludes_locks, d.excludes_locks);
        }
    }
}

/**
 * Order-graph node for the lock named `key` acquired inside a method
 * of `owner`: the enclosing class's field of that name when it is
 * mutex-typed, else the unique mutex-typed field of that name across
 * every known class. Ambiguous or unknown names resolve to "" and
 * contribute no edge — the graph only asserts what it can name.
 */
std::string
resolveNode(const std::string &key, const std::string &owner, const Model &m)
{
    if (key.empty())
        return "";
    if (!owner.empty()) {
        const auto cls = m.classes.find(owner);
        if (cls != m.classes.end()) {
            const auto f = cls->second.fields.find(key);
            if (f != cls->second.fields.end() &&
                isMutexKind(f->second.type_name))
                return owner + "::" + key;
        }
    }
    std::string match;
    int count = 0;
    for (const auto &[cls_name, info] : m.classes) {
        const auto f = info.fields.find(key);
        if (f != info.fields.end() && isMutexKind(f->second.type_name)) {
            ++count;
            match = cls_name + "::" + key;
        }
    }
    return count == 1 ? match : "";
}

// ---------------------------------------------------------------------------
// Per-function lock-set walk.

bool
isGuardType(const std::string &s)
{
    return s == "lock_guard" || s == "scoped_lock" || s == "unique_lock" ||
           s == "MutexLock" || s == "MutexLock2";
}

/** One live RAII guard (or a REQUIRES seed, at depth 0). */
struct GuardScope {
    std::string var;                 //!< "" for REQUIRES seeds
    std::vector<std::string> keys;   //!< lock keys this guard holds
    std::vector<std::string> nodes;  //!< resolved nodes ("" = unknown)
    bool active = false;
    bool deferred = false;           //!< constructed with std::defer_lock
    bool ever_locked = false;
    int depth = 0;                   //!< brace depth at declaration
    int line = 0;
};

const std::string kManualMsgTail =
    "() risks leaking the mutex on every early return and "
    "exception path; hold locks via std::lock_guard / "
    "std::scoped_lock / std::unique_lock construction";

struct BodyWalker {
    const std::string &path;
    const std::vector<Token> &ts;
    const Model &model;
    const bool discipline;
    std::vector<Finding> &findings;
    std::vector<LockEdge> &edges;

    std::vector<GuardScope> guards;
    std::string owner;  //!< enclosing class of the current function

    bool
    holds(const std::string &key) const
    {
        for (const GuardScope &g : guards)
            if (g.active && std::find(g.keys.begin(), g.keys.end(), key) !=
                                g.keys.end())
                return true;
        return false;
    }

    void
    emitEdges(const std::vector<std::string> &new_nodes, int line)
    {
        std::set<std::string> held;
        for (const GuardScope &g : guards)
            if (g.active)
                for (const std::string &n : g.nodes)
                    if (!n.empty())
                        held.insert(n);
        for (const std::string &from : held)
            for (const std::string &to : new_nodes)
                if (!to.empty() && to != from)
                    edges.push_back({from, to, line, false});
    }

    /** Guard going out of scope: the defer_lock-and-forgot check. */
    void
    release(const GuardScope &g)
    {
        if (discipline && g.deferred && !g.ever_locked)
            findings.push_back(
                {path, g.line, "lock-discipline",
                 "deferred guard '" + g.var +
                     "' (std::defer_lock) is never .lock()-ed; it "
                     "protects nothing — lock it or drop defer_lock"});
    }

    /**
     * Try to parse a guard declaration starting at identifier ts[k]
     * (`[std::|aiwc::]guard_type[<...>] [var] ( args )`). Returns the
     * index of the closing ')' when one was consumed, else k.
     */
    std::size_t
    tryGuardDecl(std::size_t k, int depth)
    {
        std::size_t g;
        if ((ts[k].text == "std" || ts[k].text == "aiwc") &&
            isPunct(ts, k + 1, "::") && k + 2 < ts.size() &&
            ts[k + 2].kind == TokenKind::Identifier &&
            isGuardType(ts[k + 2].text))
            g = k + 2;
        else if (isGuardType(ts[k].text) && !isPunct(ts, k - 1, "::") &&
                 k + 1 < ts.size())
            g = k;
        else
            return k;

        std::size_t j = g + 1;
        if (isPunct(ts, j, "<"))
            j = skipAngles(ts, j);
        std::string var;
        if (j < ts.size() && ts[j].kind == TokenKind::Identifier &&
            isPunct(ts, j + 1, "(")) {
            var = ts[j].text;
            ++j;
        }
        if (!isPunct(ts, j, "("))
            return k;  // member access or declaration without args
        const std::size_t close = matchParen(ts, j) - 1;

        // Split the constructor arguments at top-level commas; each
        // argument contributes its final identifier — a lock key, or a
        // std::defer_lock / adopt_lock / try_to_lock tag.
        GuardScope gs;
        gs.var = var;
        gs.depth = depth;
        gs.line = ts[g].line;
        bool defer = false;
        bool adopt = false;
        std::string fin;
        int nest = 0;
        auto finish = [&]() {
            if (fin.empty())
                return;
            if (fin == "defer_lock") {
                defer = true;
            } else if (fin == "adopt_lock") {
                adopt = true;
            } else if (fin != "try_to_lock") {
                gs.keys.push_back(fin);
                gs.nodes.push_back(resolveNode(fin, owner, model));
            }
            fin.clear();
        };
        for (std::size_t m = j + 1; m < close; ++m) {
            const Token &t = ts[m];
            if (t.kind == TokenKind::Comment ||
                t.kind == TokenKind::PpDirective)
                continue;
            if (t.kind == TokenKind::Punct) {
                if (t.text == "(" || t.text == "[" || t.text == "<")
                    ++nest;
                else if (t.text == ")" || t.text == "]" || t.text == ">")
                    --nest;
                else if (t.text == "," && nest == 0)
                    finish();
                continue;
            }
            if (t.kind == TokenKind::Identifier)
                fin = t.text;
        }
        finish();

        if (defer) {
            gs.deferred = true;
        } else {
            gs.active = true;
            gs.ever_locked = true;
            if (!adopt)
                emitEdges(gs.nodes, gs.line);
        }
        // An anonymous temporary (`std::lock_guard<std::mutex>(m_);`)
        // dies at the semicolon — its edges count, its scope does not.
        if (!var.empty())
            guards.push_back(std::move(gs));
        return close;
    }

    /** `.lock()` / `.unlock()` / `.try_lock()` with a member receiver. */
    void
    onMutexMemberCall(std::size_t k)
    {
        std::size_t recv = ts.size();
        if (k >= 2 && isPunct(ts, k - 1, ".") &&
            ts[k - 2].kind == TokenKind::Identifier)
            recv = k - 2;
        else if (k >= 3 && isPunct(ts, k - 1, ">") &&
                 isPunct(ts, k - 2, "-") &&
                 ts[k - 3].kind == TokenKind::Identifier)
            recv = k - 3;

        GuardScope *g = nullptr;
        if (recv != ts.size())
            for (auto it = guards.rbegin(); it != guards.rend(); ++it)
                if (it->var == ts[recv].text) {
                    g = &*it;
                    break;
                }

        if (g == nullptr) {
            if (discipline)
                findings.push_back({path, ts[k].line, "lock-discipline",
                                    "manual ." + ts[k].text + kManualMsgTail});
            return;
        }
        if (ts[k].text == "unlock") {
            if (!g->active && discipline)
                findings.push_back(
                    {path, ts[k].line, "lock-discipline",
                     "guard '" + g->var +
                         "' unlocked here but does not hold its mutex"});
            g->active = false;
            return;
        }
        // lock() / try_lock() on the guard object.
        if (g->active) {
            if (discipline)
                findings.push_back(
                    {path, ts[k].line, "lock-discipline",
                     "guard '" + g->var +
                         "' locked here while already holding its mutex "
                         "(double lock is undefined behavior)"});
            return;
        }
        emitEdges(g->nodes, ts[k].line);
        g->active = true;
        g->ever_locked = true;
    }

    /** Walk one function body; [begin, end] are its '{' and '}'. */
    void
    walk(const Decl &fn, std::size_t begin, std::size_t end)
    {
        guards.clear();
        owner = fn.owner;

        // The function's lock contract seeds the entry lock-set: its
        // own AIWC_REQUIRES plus the companion-declared ones.
        std::vector<std::string> requires_locks = fn.requires_locks;
        if (!owner.empty()) {
            const auto cls = model.classes.find(owner);
            if (cls != model.classes.end()) {
                const auto mi = cls->second.methods.find(fn.name);
                if (mi != cls->second.methods.end())
                    mergeList(requires_locks, mi->second.requires_locks);
            }
        }
        for (const std::string &req : requires_locks) {
            GuardScope seed;
            seed.keys.push_back(finalIdent(req));
            seed.nodes.push_back(resolveNode(finalIdent(req), owner, model));
            seed.active = true;
            seed.ever_locked = true;
            seed.depth = 0;  // never released inside the body
            seed.line = fn.line;
            guards.push_back(std::move(seed));
        }

        const ClassInfo *cls = nullptr;
        if (!owner.empty()) {
            const auto it = model.classes.find(owner);
            if (it != model.classes.end())
                cls = &it->second;
        }
        // Constructors and destructors run before/after any sharing is
        // possible; guarded-field does not apply inside them.
        const bool ctor_dtor =
            !owner.empty() && (fn.name == owner || fn.name == "~" + owner);

        int depth = 0;
        for (std::size_t k = begin; k <= end && k < ts.size(); ++k) {
            const Token &t = ts[k];
            if (t.kind == TokenKind::Comment ||
                t.kind == TokenKind::PpDirective)
                continue;
            if (isPunct(ts, k, "{")) {
                ++depth;
                continue;
            }
            if (isPunct(ts, k, "}")) {
                --depth;
                while (!guards.empty() && guards.back().depth > depth) {
                    release(guards.back());
                    guards.pop_back();
                }
                continue;
            }
            if (t.kind != TokenKind::Identifier)
                continue;

            const std::size_t past = tryGuardDecl(k, depth);
            if (past != k) {
                k = past;
                continue;
            }

            const bool memberish =
                (k >= 1 && isPunct(ts, k - 1, ".")) ||
                (k >= 2 && isPunct(ts, k - 1, ">") && isPunct(ts, k - 2, "-"));
            if ((t.text == "lock" || t.text == "unlock" ||
                 t.text == "try_lock") &&
                memberish && isPunct(ts, k + 1, "(")) {
                onMutexMemberCall(k);
                continue;
            }

            // Receiver shape for the annotation rules: a bare name or
            // an explicit this-> access. Accesses through any other
            // object are skipped — field identity would be a guess.
            const bool this_recv =
                k >= 3 && isPunct(ts, k - 1, ">") && isPunct(ts, k - 2, "-") &&
                isIdent(ts, k - 3, "this");
            const bool bare =
                !memberish && !(k >= 1 && isPunct(ts, k - 1, "::"));
            if (!bare && !this_recv)
                continue;

            if (isPunct(ts, k + 1, "(")) {
                // requires-lock: calls into the annotated model.
                const MethodInfo *mi = nullptr;
                if (cls != nullptr) {
                    const auto it = cls->methods.find(t.text);
                    if (it != cls->methods.end())
                        mi = &it->second;
                }
                if (mi == nullptr) {
                    const auto it = model.free_fns.find(t.text);
                    if (it != model.free_fns.end())
                        mi = &it->second;
                }
                if (mi != nullptr) {
                    for (const std::string &req : mi->requires_locks)
                        if (!holds(finalIdent(req)))
                            findings.push_back(
                                {path, t.line, "requires-lock",
                                 "call to '" + t.text + "' requires '" + req +
                                     "' (AIWC_REQUIRES) but it is not held "
                                     "on this path"});
                    for (const std::string &exc : mi->excludes_locks)
                        if (holds(finalIdent(exc)))
                            findings.push_back(
                                {path, t.line, "requires-lock",
                                 "call to '" + t.text + "' excludes '" + exc +
                                     "' (AIWC_EXCLUDES) but it is held here "
                                     "— self-deadlock"});
                }
                continue;
            }

            // guarded-field: annotated members of the enclosing class.
            if (cls == nullptr || ctor_dtor)
                continue;
            const auto f = cls->fields.find(t.text);
            if (f == cls->fields.end() || f->second.guarded_by.empty())
                continue;
            if (!holds(finalIdent(f->second.guarded_by)))
                findings.push_back(
                    {path, t.line, "guarded-field",
                     "field '" + t.text + "' is guarded by '" +
                         f->second.guarded_by +
                         "' (AIWC_GUARDED_BY) but accessed without it "
                         "held; acquire the mutex or document the "
                         "invariant and suppress"});
        }
        for (const GuardScope &g : guards)
            if (g.depth > 0)
                release(g);
    }
};

} // namespace

void
analyzeLocks(const std::string &path, const std::vector<Token> &tokens,
             const Outline &outline, const Outline *companion,
             bool discipline, std::vector<Finding> &findings,
             std::vector<LockEdge> &edges)
{
    Model model;
    addOutline(outline, model);
    if (companion != nullptr)
        addOutline(*companion, model);

    // Function bodies, in token order; everything outside them gets
    // the plain manual-call scan below (macro bodies, initializers,
    // code the outline failed to index — degrade, don't miss).
    std::vector<const Decl *> fns;
    for (const Decl &d : outline.decls)
        if (d.kind == DeclKind::Function && d.body_begin >= 0 &&
            d.body_end > d.body_begin &&
            static_cast<std::size_t>(d.body_end) < tokens.size())
            fns.push_back(&d);
    std::sort(fns.begin(), fns.end(),
              [](const Decl *a, const Decl *b) {
                  return a->body_begin < b->body_begin;
              });

    std::vector<char> covered(tokens.size(), 0);
    BodyWalker walker{path, tokens, model, discipline, findings, edges,
                      {},   {}};
    for (const Decl *fn : fns) {
        const auto b = static_cast<std::size_t>(fn->body_begin);
        const auto e = static_cast<std::size_t>(fn->body_end);
        if (covered[b])
            continue;  // overlapping ranges: parser confusion, walk once
        for (std::size_t k = b; k <= e; ++k)
            covered[k] = 1;
        walker.walk(*fn, b, e);
    }

    if (discipline) {
        for (std::size_t k = 0; k < tokens.size(); ++k) {
            if (covered[k] || tokens[k].kind != TokenKind::Identifier)
                continue;
            const std::string &s = tokens[k].text;
            if (s != "lock" && s != "unlock" && s != "try_lock")
                continue;
            const bool memberish =
                (k >= 1 && isPunct(tokens, k - 1, ".")) ||
                (k >= 2 && isPunct(tokens, k - 1, ">") &&
                 isPunct(tokens, k - 2, "-"));
            if (memberish && isPunct(tokens, k + 1, "("))
                findings.push_back({path, tokens[k].line, "lock-discipline",
                                    "manual ." + s + kManualMsgTail});
        }
    }

    // Declared order: AIWC_ACQUIRED_BEFORE on this file's own mutex
    // fields (the companion emits its own edges when it is analyzed).
    for (const Decl &d : outline.decls) {
        if (d.kind != DeclKind::Field || d.owner.empty() ||
            d.acquired_before.empty() || !isMutexKind(d.type_name))
            continue;
        const std::string from = d.owner + "::" + d.name;
        for (const std::string &after : d.acquired_before) {
            const std::string to =
                resolveNode(finalIdent(after), d.owner, model);
            if (!to.empty() && to != from)
                edges.push_back({from, to, d.line, true});
        }
    }

    std::sort(edges.begin(), edges.end(),
              [](const LockEdge &a, const LockEdge &b) {
                  if (a.from != b.from)
                      return a.from < b.from;
                  if (a.to != b.to)
                      return a.to < b.to;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.declared < b.declared;
              });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const LockEdge &a, const LockEdge &b) {
                                return a.from == b.from && a.to == b.to &&
                                       a.line == b.line &&
                                       a.declared == b.declared;
                            }),
                edges.end());
}

// ---------------------------------------------------------------------------
// locks.txt

bool
LockSpec::parse(const std::string &text, LockSpec &out, std::string &error)
{
    out = LockSpec{};
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string keyword;
        if (!(fields >> keyword))
            continue;

        if (keyword == "lock") {
            std::string alias;
            std::string node;
            if (!(fields >> alias >> node)) {
                error = "locks.txt:" + std::to_string(lineno) +
                        ": lock needs `lock <alias> <Class::field>`";
                return false;
            }
            std::string extra;
            if (fields >> extra) {
                error = "locks.txt:" + std::to_string(lineno) +
                        ": unexpected trailing field '" + extra + "'";
                return false;
            }
            if (node.find("::") == std::string::npos) {
                error = "locks.txt:" + std::to_string(lineno) + ": node '" +
                        node + "' must be a Class::field name";
                return false;
            }
            if (!out.locks.emplace(alias, node).second) {
                error = "locks.txt:" + std::to_string(lineno) +
                        ": duplicate lock alias '" + alias + "'";
                return false;
            }
        } else if (keyword == "order") {
            std::string a;
            std::string b;
            if (!(fields >> a >> b)) {
                error = "locks.txt:" + std::to_string(lineno) +
                        ": order needs `order <held-first> <then>`";
                return false;
            }
            for (const std::string &alias : {a, b}) {
                if (out.locks.count(alias) == 0) {
                    error = "locks.txt:" + std::to_string(lineno) +
                            ": unknown lock alias '" + alias +
                            "' (declare it with a `lock` line first)";
                    return false;
                }
            }
            if (a == b) {
                error = "locks.txt:" + std::to_string(lineno) +
                        ": an order edge cannot be a self-loop";
                return false;
            }
            out.orders.push_back({out.locks[a], out.locks[b], lineno});
        } else {
            error = "locks.txt:" + std::to_string(lineno) +
                    ": unknown keyword '" + keyword + "'";
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------------
// Whole-program order graph.

namespace
{

struct EdgeInfo {
    std::string file;  //!< source file, or the spec path
    int line = 0;
    bool observed = false;
};

std::string
provenance(const EdgeInfo &e)
{
    return (e.observed ? "observed " : "declared ") + e.file + ":" +
           std::to_string(e.line);
}

} // namespace

void
checkLockOrder(const std::vector<const FileAnalysis *> &records,
               const LockSpec *spec, const std::string &spec_path,
               std::vector<Finding> &out)
{
    // One edge per (from, to); an observed acquisition is the better
    // witness, so it wins over a declared duplicate.
    std::map<std::string, std::map<std::string, EdgeInfo>> adj;
    auto add = [&adj](const std::string &from, const std::string &to,
                      EdgeInfo info) {
        if (from == to)
            return;
        auto [it, inserted] = adj[from].emplace(to, info);
        if (!inserted && info.observed && !it->second.observed)
            it->second = info;
        adj.emplace(to, std::map<std::string, EdgeInfo>{});
    };

    if (spec != nullptr)
        for (const LockSpec::Order &o : spec->orders)
            add(o.from, o.to, {spec_path, o.line, false});
    for (const FileAnalysis *fa : records)
        for (const LockEdge &e : fa->lock_edges)
            add(e.from, e.to, {fa->path, e.line, !e.declared});

    // Iterative DFS, mirroring graph.cc's include-cycle walk: the
    // sorted maps make traversal — and therefore witness paths —
    // deterministic.
    enum class State { White, Grey, Black };
    std::map<std::string, State> state;
    for (const auto &[node, _] : adj)
        state[node] = State::White;

    struct Frame {
        std::string node;
        std::map<std::string, EdgeInfo>::const_iterator next;
    };
    std::vector<std::string> chain;

    for (const auto &[root, _] : adj) {
        if (state[root] != State::White)
            continue;
        std::vector<Frame> stack;
        stack.push_back({root, adj[root].begin()});
        state[root] = State::Grey;
        chain.push_back(root);
        while (!stack.empty()) {
            Frame &f = stack.back();
            const auto &edges_of = adj[f.node];
            bool descended = false;
            while (f.next != edges_of.end()) {
                const std::string &target = f.next->first;
                const EdgeInfo &info = f.next->second;
                ++f.next;
                const State s = state[target];
                if (s == State::Black)
                    continue;
                if (s == State::Grey) {
                    // Witness: the chain from `target` around to
                    // f.node, closed by this edge; label every hop.
                    std::vector<std::string> cycle;
                    bool in_cycle = false;
                    for (const std::string &n : chain) {
                        if (n == target)
                            in_cycle = true;
                        if (in_cycle)
                            cycle.push_back(n);
                    }
                    cycle.push_back(target);
                    std::ostringstream msg;
                    msg << "lock acquisition order cycle: ";
                    const EdgeInfo *anchor = nullptr;
                    for (std::size_t i = 0; i + 1 < cycle.size(); ++i) {
                        const EdgeInfo &hop =
                            i + 2 == cycle.size()
                                ? info
                                : adj[cycle[i]].at(cycle[i + 1]);
                        if (hop.observed &&
                            (anchor == nullptr || !anchor->observed))
                            anchor = &hop;
                        if (anchor == nullptr && i == 0)
                            anchor = &hop;
                        msg << cycle[i] << " -> " << cycle[i + 1] << " ("
                            << provenance(hop) << ")";
                        if (i + 2 < cycle.size())
                            msg << ", ";
                    }
                    msg << "; every thread must acquire these mutexes in "
                           "one global order — the law is "
                        << spec_path;
                    out.push_back({anchor->file, anchor->line,
                                   "lock-order-cycle", msg.str()});
                    continue;
                }
                state[target] = State::Grey;
                chain.push_back(target);
                stack.push_back({target, adj[target].begin()});
                descended = true;
                break;
            }
            if (!descended) {
                state[f.node] = State::Black;
                chain.pop_back();
                stack.pop_back();
            }
        }
    }
}

} // namespace aiwc::lint
