/**
 * @file
 * A small C++ lexer for aiwc-lint.
 *
 * The linter's rules pattern-match token streams, never raw text, so a
 * banned identifier inside a string literal, a comment, or a raw string
 * never fires a finding. The lexer therefore has to get exactly four
 * things right: comments (line and block, spanning lines), string/char
 * literals (escapes, encoding prefixes, raw strings with arbitrary
 * delimiters), preprocessor logical lines (backslash-newline
 * continuations spliced), and line numbers that survive all of the
 * above so findings point at the original source line.
 *
 * It is deliberately NOT a parser: rules that need structure (template
 * argument lists, namespace scope) reconstruct just enough of it from
 * the token stream and are documented as heuristics.
 */

#pragma once

#include <string>
#include <vector>

namespace aiwc::lint
{

enum class TokenKind {
    Identifier,   //!< identifiers and keywords (the lexer does not split them)
    Number,       //!< pp-number: integers, floats, hex, digit separators
    String,       //!< string literal, prefix and quotes included in text
    CharLiteral,  //!< character literal, quotes included in text
    Punct,        //!< one punctuator; "::" is kept as a single token
    PpDirective,  //!< one logical preprocessor line, continuations spliced
    Comment,      //!< line or block comment, markers included in text
};

struct Token {
    TokenKind kind;
    std::string text;
    int line = 0;      //!< 1-based physical line of the first character
    int end_line = 0;  //!< physical line of the last character (>= line)
};

/**
 * Tokenize a C++ source file. Never throws on malformed input: an
 * unterminated string/comment/raw string is closed at end of file and
 * lexing continues, because a linter must degrade gracefully on code
 * the compiler would reject anyway.
 */
std::vector<Token> lex(const std::string &source);

} // namespace aiwc::lint
