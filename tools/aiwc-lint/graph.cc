#include "graph.hh"

#include <algorithm>
#include <sstream>

#include "lexer.hh"
#include "rules.hh"

namespace aiwc::lint
{

namespace
{

/** Lexically normalize "a/b/../c" and "a/./b" without touching disk. */
std::string
normalizePath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (cur == "..") {
                if (!parts.empty() && parts.back() != "..")
                    parts.pop_back();
                else
                    parts.push_back(cur);
            } else if (!cur.empty() && cur != ".") {
                parts.push_back(cur);
            }
            cur.clear();
        } else {
            cur.push_back(path[i]);
        }
    }
    std::string out;
    for (const std::string &p : parts) {
        if (!out.empty())
            out += "/";
        out += p;
    }
    return out;
}

std::string
dirname(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? "" : path.substr(0, slash);
}

} // namespace

std::vector<IncludeEdge>
extractIncludes(const std::vector<Token> &tokens)
{
    std::vector<IncludeEdge> edges;
    for (const Token &t : tokens) {
        if (t.kind != TokenKind::PpDirective)
            continue;
        const std::string &text = t.text;
        std::size_t p = text.find_first_not_of(" \t", 1);  // skip '#'
        if (p == std::string::npos || text.compare(p, 7, "include") != 0)
            continue;
        p = text.find_first_not_of(" \t", p + 7);
        if (p == std::string::npos)
            continue;
        const char open = text[p];
        const char close = open == '<' ? '>' : '"';
        if (open != '<' && open != '"')
            continue;  // computed include (macro); out of scope
        const std::size_t end = text.find(close, p + 1);
        if (end == std::string::npos)
            continue;

        IncludeEdge e;
        e.spelled = text.substr(p + 1, end - p - 1);
        e.line = t.line;
        e.angled = open == '<';
        edges.push_back(std::move(e));
    }
    return edges;
}

void
resolveIncludes(const std::string &path, std::vector<IncludeEdge> &edges,
                const std::set<std::string> &known_files)
{
    for (IncludeEdge &e : edges) {
        // Resolution order mirrors the build: the aiwc include root,
        // the including file's directory, then the repo root (tools/
        // headers include each other by bare name).
        const std::string as_public =
            normalizePath("src/include/" + e.spelled);
        const std::string as_sibling =
            normalizePath(dirname(path) + "/" + e.spelled);
        const std::string as_root = normalizePath(e.spelled);
        if (known_files.count(as_public) > 0)
            e.resolved = as_public;
        else if (known_files.count(as_sibling) > 0)
            e.resolved = as_sibling;
        else if (known_files.count(as_root) > 0)
            e.resolved = as_root;
        else
            e.resolved.clear();
    }
}

std::string
LayerSpec::moduleOf(const std::string &path) const
{
    std::string best_module;
    std::size_t best_len = 0;
    for (const auto &[prefix, module] : prefixes) {
        if (path.size() > prefix.size() &&
            path.compare(0, prefix.size(), prefix) == 0 &&
            path[prefix.size()] == '/' && prefix.size() >= best_len) {
            best_len = prefix.size();
            best_module = module;
        }
    }
    return best_module;
}

bool
LayerSpec::parse(const std::string &text, LayerSpec &out,
                 std::string &error)
{
    out = LayerSpec{};
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string keyword;
        if (!(fields >> keyword))
            continue;

        if (keyword == "module") {
            std::string name;
            if (!(fields >> name)) {
                error = "layers.txt:" + std::to_string(lineno) +
                        ": module needs a name";
                return false;
            }
            std::string prefix;
            bool any = false;
            while (fields >> prefix) {
                any = true;
                while (!prefix.empty() && prefix.back() == '/')
                    prefix.pop_back();
                for (const auto &[existing, mod] : out.prefixes) {
                    if (existing == prefix) {
                        error = "layers.txt:" + std::to_string(lineno) +
                                ": prefix '" + prefix +
                                "' already mapped to module '" + mod + "'";
                        return false;
                    }
                }
                out.prefixes.emplace_back(prefix, name);
            }
            if (!any) {
                error = "layers.txt:" + std::to_string(lineno) +
                        ": module '" + name + "' maps no directories";
                return false;
            }
        } else if (keyword == "allow") {
            std::string name;
            if (!(fields >> name)) {
                error = "layers.txt:" + std::to_string(lineno) +
                        ": allow needs a module name";
                return false;
            }
            if (out.allowed.count(name) > 0 ||
                out.unconstrained.count(name) > 0) {
                error = "layers.txt:" + std::to_string(lineno) +
                        ": duplicate allow for module '" + name + "'";
                return false;
            }
            std::set<std::string> deps;
            std::string dep;
            bool star = false;
            while (fields >> dep) {
                if (dep == "*")
                    star = true;
                else
                    deps.insert(dep);
            }
            if (star && !deps.empty()) {
                error = "layers.txt:" + std::to_string(lineno) +
                        ": '*' cannot be combined with named deps";
                return false;
            }
            if (star)
                out.unconstrained.insert(name);
            else
                out.allowed[name] = std::move(deps);
        } else {
            error = "layers.txt:" + std::to_string(lineno) +
                    ": unknown keyword '" + keyword + "'";
            return false;
        }
    }

    // Every mapped module needs its dependency contract, and every
    // declared dependency must itself be a known module.
    std::set<std::string> modules;
    for (const auto &[prefix, module] : out.prefixes)
        modules.insert(module);
    for (const std::string &m : modules) {
        if (out.allowed.count(m) == 0 && out.unconstrained.count(m) == 0) {
            error = "layers.txt: module '" + m + "' has no allow line";
            return false;
        }
    }
    for (const auto &[m, deps] : out.allowed) {
        if (modules.count(m) == 0) {
            error = "layers.txt: allow names unmapped module '" + m + "'";
            return false;
        }
        for (const std::string &d : deps) {
            if (modules.count(d) == 0) {
                error = "layers.txt: module '" + m +
                        "' allows unknown module '" + d + "'";
                return false;
            }
        }
    }
    return true;
}

void
checkLayering(const IncludeGraph &graph, const LayerSpec &spec,
              std::vector<Finding> &out)
{
    for (const auto &[path, edges] : graph) {
        const std::string from = spec.moduleOf(path);
        if (from.empty() || spec.unconstrained.count(from) > 0)
            continue;
        const auto allowed = spec.allowed.find(from);
        for (const IncludeEdge &e : edges) {
            if (e.resolved.empty())
                continue;  // system / external header
            const std::string to = spec.moduleOf(e.resolved);
            if (to.empty() || to == from)
                continue;
            if (allowed != spec.allowed.end() &&
                allowed->second.count(to) > 0)
                continue;
            out.push_back(
                {path, e.line, "layer-violation",
                 "module '" + from + "' must not depend on '" + to +
                     "' (" + e.spelled +
                     "); the allowed DAG is tools/aiwc-lint/layers.txt "
                     "— extend it deliberately or invert the dependency"});
        }
    }
}

void
checkCycles(const IncludeGraph &graph, std::vector<Finding> &out)
{
    // Iterative DFS with an explicit stack; the first back edge found
    // from the lexicographically smallest entry point reports each
    // cycle exactly once, deterministically (the graph is a sorted map
    // and edge order is the directive order in the file).
    enum class State { White, Grey, Black };
    std::map<std::string, State> state;
    for (const auto &[path, _] : graph)
        state[path] = State::White;

    std::vector<std::string> chain;

    // Recursive lambda via explicit stack of (node, next-edge-index).
    struct Frame {
        std::string node;
        std::size_t edge = 0;
    };

    for (const auto &[root, _] : graph) {
        if (state[root] != State::White)
            continue;
        std::vector<Frame> stack;
        stack.push_back({root, 0});
        state[root] = State::Grey;
        chain.push_back(root);
        while (!stack.empty()) {
            Frame &f = stack.back();
            const auto it = graph.find(f.node);
            const auto &edges = it->second;
            bool descended = false;
            while (f.edge < edges.size()) {
                const IncludeEdge &e = edges[f.edge];
                ++f.edge;
                if (e.resolved.empty() || graph.count(e.resolved) == 0)
                    continue;
                const State s = state[e.resolved];
                if (s == State::Black)
                    continue;
                if (s == State::Grey) {
                    // Found a cycle: chain from e.resolved to f.node.
                    std::ostringstream cycle;
                    bool in_cycle = false;
                    for (const std::string &n : chain) {
                        if (n == e.resolved)
                            in_cycle = true;
                        if (in_cycle)
                            cycle << n << " -> ";
                    }
                    cycle << e.resolved;
                    out.push_back(
                        {f.node, e.line, "include-cycle",
                         "#include cycle: " + cycle.str() +
                             "; break it with a forward declaration or "
                             "by splitting the header"});
                    continue;
                }
                state[e.resolved] = State::Grey;
                chain.push_back(e.resolved);
                stack.push_back({e.resolved, 0});
                descended = true;
                break;
            }
            if (!descended) {
                state[f.node] = State::Black;
                chain.pop_back();
                stack.pop_back();
            }
        }
    }
}

std::set<std::string>
reverseClosure(const IncludeGraph &graph,
               const std::set<std::string> &changed)
{
    // Invert the resolved edges once, then BFS from the changed set.
    std::map<std::string, std::vector<std::string>> includers;
    for (const auto &[path, edges] : graph)
        for (const IncludeEdge &e : edges)
            if (!e.resolved.empty())
                includers[e.resolved].push_back(path);

    std::set<std::string> closure;
    std::vector<std::string> frontier;
    for (const std::string &c : changed)
        if (closure.insert(c).second)
            frontier.push_back(c);
    while (!frontier.empty()) {
        const std::string node = std::move(frontier.back());
        frontier.pop_back();
        const auto it = includers.find(node);
        if (it == includers.end())
            continue;
        for (const std::string &up : it->second)
            if (closure.insert(up).second)
                frontier.push_back(up);
    }
    return closure;
}

} // namespace aiwc::lint
