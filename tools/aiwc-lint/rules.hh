/**
 * @file
 * aiwc-lint rule engine: the repo's project law, executable.
 *
 * Each rule encodes an invariant the test suite can only check
 * dynamically (and therefore only for the inputs it happens to run):
 *
 *  - det-random          no wall-clock / libc / hardware randomness in
 *                        result-producing code (allowlist: obs/, bench/)
 *  - det-unordered-iter  no range-for or iterator loop over
 *                        std::unordered_map/std::unordered_set in src/ —
 *                        hash order must never reach reports or digests
 *  - contract-assert     src/ uses AIWC_CHECK/AIWC_DCHECK, not assert()
 *  - contract-abort      no abort()/exit() outside base/check.cc
 *  - thread-raw          no std::thread/std::jthread/std::async/.detach()
 *                        outside common/parallel.* — all concurrency goes
 *                        through the deterministic pool
 *  - metric-name         metric names registered in src/ match
 *                        aiwc.<layer>.<thing> (see CONTRIBUTING.md)
 *  - header-pragma-once  every src/include header opens with #pragma once
 *  - header-using-ns     no `using namespace` at namespace scope in headers
 *  - bad-suppression     malformed / reason-less suppression comments
 *
 * v2 adds whole-program rules on top of the outline parser and the
 * include graph (see outline.hh, graph.hh):
 *
 *  - mutable-global      non-const, non-constexpr namespace-scope state
 *                        in src/ — the canonical determinism hazard;
 *                        sanctioned singletons carry suppressions
 *  - lock-discipline     manual .lock()/.unlock() calls; mutexes are
 *                        held via lock_guard/scoped_lock/unique_lock
 *                        construction only
 *  - float-reduce-order  std::accumulate over floating-point data and
 *                        std::reduce outside common/parallel.* and
 *                        sketch/, where merge order is contractually
 *                        pinned
 *  - layer-violation     a direct #include crossing module boundaries
 *                        the layers.txt DAG does not allow
 *  - include-cycle       any #include cycle among project files
 *  - unused-include      a project header none of whose declared names
 *                        appear in the including file (IWYU-lite)
 *
 * v3 adds the static concurrency model (see locks.hh and
 * aiwc/base/thread_annotations.hh):
 *
 *  - guarded-field       an AIWC_GUARDED_BY member read/written without
 *                        its mutex in the function's lock-set
 *  - requires-lock       a call to an AIWC_REQUIRES function without
 *                        the lock held (or an AIWC_EXCLUDES function
 *                        with it held — self-deadlock)
 *  - lock-order-cycle    a cycle in the whole-program lock-acquisition
 *                        graph (observed nestings + ACQUIRED_BEFORE +
 *                        the tools/aiwc-lint/locks.txt spec)
 *
 * Suppression syntax, checked by the engine itself:
 *
 *     // aiwc-lint: allow(<rule>[, <rule>...]) -- <reason>
 *
 * on the offending line or the line directly above it. The reason is
 * mandatory; a suppression without one is itself a finding.
 *
 * Rules are lexer-based heuristics, not semantic analysis: they see
 * tokens, one file at a time (plus the module's public header for
 * declaration context). The bias is deliberate — false positives are
 * cheap to suppress with a written reason; false negatives silently
 * rot the paper's reproducibility story.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph.hh"

namespace aiwc::lint
{

struct Finding {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    bool operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        return message < o.message;
    }
    bool operator==(const Finding &o) const
    {
        return file == o.file && line == o.line && rule == o.rule &&
               message == o.message;
    }
};

/**
 * One observed or declared lock-acquisition ordering: while `from` was
 * held, `to` was acquired (observed in a function body), or the code
 * declared `from` before `to` via AIWC_ACQUIRED_BEFORE. Nodes are
 * "Class::field" names resolved against the file + companion outlines;
 * acquisitions whose mutex cannot be resolved to a unique field emit
 * no edge (the analysis only asserts what it can name). The
 * whole-program lock-order graph (locks.cc) merges these with the
 * locks.txt spec and reports cycles.
 */
struct LockEdge {
    std::string from;
    std::string to;
    int line = 0;          //!< acquisition site (or annotation line)
    bool declared = false; //!< AIWC_ACQUIRED_BEFORE, not an observation
};

/** Names of all rules, sorted — the vocabulary `allow(...)` accepts. */
const std::vector<std::string> &knownRules();

/** One-line description of a rule (SARIF rule metadata). */
const std::string &ruleDescription(const std::string &rule);

/**
 * Everything whole-program analysis needs to know about one file,
 * derivable from its content alone — which is what makes the record
 * cacheable under a content hash. Cross-file rules (layer-violation,
 * include-cycle, unused-include) run over these records each run;
 * only record *construction* is cached.
 */
struct FileAnalysis {
    std::string path;
    std::uint64_t hash = 0;          //!< FNV-1a 64 of the file content
    std::vector<Finding> findings;   //!< per-file rules, pre-suppression
    /** (physical line, rule) pairs valid suppressions cover. */
    std::vector<std::pair<int, std::string>> suppressions;
    std::vector<IncludeEdge> includes;  //!< resolved = "" until resolve
    std::vector<std::string> declared;  //!< top-level names, sorted unique
    std::vector<std::string> used;      //!< identifiers seen, sorted unique
    std::vector<LockEdge> lock_edges;   //!< lock-order graph contribution
    bool declares_operator = false;  //!< header defines operators (IWYU-exempt)
};

/** FNV-1a 64-bit content hash (the incremental cache key). */
std::uint64_t contentHash(const std::string &content);

/**
 * Run the lexer, the outline parser, and every per-file rule over one
 * in-memory source file. The returned record's findings still include
 * suppressed ones — the driver filters after cross-file rules attach
 * their findings, so one suppression table covers both.
 */
FileAnalysis analyzeSource(const std::string &path,
                           const std::string &content,
                           const std::string *companion_header = nullptr);

/**
 * Lint one in-memory source file. `path` (repo-relative, '/'-separated)
 * selects which rules apply; `companion_header`, when given, is lexed
 * for unordered-container member declarations so loops in a .cc over
 * members declared in its module header are still caught. Suppressions
 * are already applied; what returns is reportable.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content,
                                const std::string *companion_header = nullptr);

/** `file:line: rule: message` lines, sorted, one per finding. */
std::string renderHuman(const std::vector<Finding> &findings);

/** Machine-readable report: {"findings":[...],"count":N}. */
std::string renderJson(const std::vector<Finding> &findings);

} // namespace aiwc::lint
