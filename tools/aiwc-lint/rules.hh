/**
 * @file
 * aiwc-lint rule engine: the repo's project law, executable.
 *
 * Each rule encodes an invariant the test suite can only check
 * dynamically (and therefore only for the inputs it happens to run):
 *
 *  - det-random          no wall-clock / libc / hardware randomness in
 *                        result-producing code (allowlist: obs/, bench/)
 *  - det-unordered-iter  no range-for or iterator loop over
 *                        std::unordered_map/std::unordered_set in src/ —
 *                        hash order must never reach reports or digests
 *  - contract-assert     src/ uses AIWC_CHECK/AIWC_DCHECK, not assert()
 *  - contract-abort      no abort()/exit() outside common/check.cc
 *  - thread-raw          no std::thread/std::jthread/std::async/.detach()
 *                        outside common/parallel.* — all concurrency goes
 *                        through the deterministic pool
 *  - metric-name         metric names registered in src/ match
 *                        aiwc.<layer>.<thing> (see CONTRIBUTING.md)
 *  - header-pragma-once  every src/include header opens with #pragma once
 *  - header-using-ns     no `using namespace` at namespace scope in headers
 *  - bad-suppression     malformed / reason-less suppression comments
 *
 * Suppression syntax, checked by the engine itself:
 *
 *     // aiwc-lint: allow(<rule>[, <rule>...]) -- <reason>
 *
 * on the offending line or the line directly above it. The reason is
 * mandatory; a suppression without one is itself a finding.
 *
 * Rules are lexer-based heuristics, not semantic analysis: they see
 * tokens, one file at a time (plus the module's public header for
 * declaration context). The bias is deliberate — false positives are
 * cheap to suppress with a written reason; false negatives silently
 * rot the paper's reproducibility story.
 */

#pragma once

#include <string>
#include <vector>

namespace aiwc::lint
{

struct Finding {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    bool operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        return message < o.message;
    }
    bool operator==(const Finding &o) const
    {
        return file == o.file && line == o.line && rule == o.rule &&
               message == o.message;
    }
};

/** Names of all rules, sorted — the vocabulary `allow(...)` accepts. */
const std::vector<std::string> &knownRules();

/**
 * Lint one in-memory source file. `path` (repo-relative, '/'-separated)
 * selects which rules apply; `companion_header`, when given, is lexed
 * for unordered-container member declarations so loops in a .cc over
 * members declared in its module header are still caught. Suppressions
 * are already applied; what returns is reportable.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content,
                                const std::string *companion_header = nullptr);

/** `file:line: rule: message` lines, sorted, one per finding. */
std::string renderHuman(const std::vector<Finding> &findings);

/** Machine-readable report: {"findings":[...],"count":N}. */
std::string renderJson(const std::vector<Finding> &findings);

} // namespace aiwc::lint
