/**
 * @file
 * Outline parser: just enough C++ structure for whole-program rules.
 *
 * A recursive descent over the lexer's token stream that recovers the
 * *shape* of a translation unit — namespace nesting, class/struct/enum
 * scopes, function signatures, namespace-scope variable declarations,
 * and (v3) class member fields with their concurrency annotations and
 * function body token ranges — without attempting expressions,
 * overload resolution, or templates beyond skipping their parameter
 * lists. The rules built on it (mutable-global, unused-include's
 * symbol index, the lock-set pass) only need names, scopes,
 * annotations, and a handful of declaration qualifiers.
 *
 * Like the rule engine it is a deliberate heuristic: on input it does
 * not understand it skips forward to the next ';' or balanced '}' and
 * keeps going, because a linter must degrade gracefully rather than
 * reject code the compiler accepts.
 */

#pragma once

#include <string>
#include <vector>

#include "lexer.hh"

namespace aiwc::lint
{

enum class DeclKind {
    Namespace,  //!< namespace scope (anonymous: empty name)
    Type,       //!< class / struct / union / enum definition
    Enumerator, //!< one enumerator of an unscoped enum
    Function,   //!< function or out-of-line member definition/declaration
    Variable,   //!< namespace-scope variable definition or declaration
    Field,      //!< class member variable (v3: lock-set analysis input)
    Alias,      //!< `using X = ...` or `typedef ... X` at namespace scope
    Macro,      //!< object- or function-like #define
};

struct Decl {
    DeclKind kind = DeclKind::Variable;
    std::string name;       //!< unqualified name ("" for anon namespaces)
    std::string qualified;  //!< "::"-joined namespace path + name
    int line = 0;           //!< physical line of the declared name

    // Qualifiers seen in the declaration head (Variable/Function only).
    bool is_const = false;
    bool is_constexpr = false;  //!< also constinit and consteval
    bool is_static = false;
    bool is_thread_local = false;
    bool is_extern = false;     //!< extern without an initializer
    bool is_inline = false;
    bool has_initializer = false;

    // v3 concurrency-model capture (Field / Function only).
    /** Unqualified enclosing class name: set for members declared in a
     *  class body and for out-of-line `Type::member` definitions. */
    std::string owner;
    /** Last type identifier before the declarator (e.g. "Mutex" for
     *  `mutable aiwc::Mutex mu_;`) — how the lock pass spots mutexes. */
    std::string type_name;
    std::string guarded_by;  //!< AIWC_GUARDED_BY / AIWC_PT_GUARDED_BY arg
    std::vector<std::string> acquired_before;  //!< AIWC_ACQUIRED_BEFORE args
    std::vector<std::string> requires_locks;   //!< AIWC_REQUIRES args
    std::vector<std::string> excludes_locks;   //!< AIWC_EXCLUDES args
    /** Token indices of a function definition's '{' and its matching
     *  '}' in the stream given to parseOutline; -1 when bodyless. */
    int body_begin = -1;
    int body_end = -1;
};

struct Outline {
    std::vector<Decl> decls;
};

/**
 * Parse the outline of one file. `tokens` is the raw lexer output
 * (the parser reads PpDirective tokens for #define names and skips
 * comments itself).
 */
Outline parseOutline(const std::vector<Token> &tokens);

/**
 * Names an includer could plausibly reference: every top-level type,
 * function, alias, enumerator, macro, and variable name declared in
 * `o`, deduplicated and sorted. The unused-include symbol index.
 * Class members (owner != "") are excluded — they are only reachable
 * through their class's name, which is already indexed.
 */
std::vector<std::string> declaredNames(const Outline &o);

} // namespace aiwc::lint
