#include "analysis.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "locks.hh"

namespace aiwc::lint
{

namespace
{

/**
 * Cache format version. Bump on ANY change to rule behaviour, the
 * lexer, the outline parser, or the record layout — a stale hit must
 * be impossible by construction. (CI additionally keys its cache
 * restore on the tool binary's hash, which subsumes this, but local
 * runs only have this line.)
 */
const char kCacheHeader[] = "aiwc-lint-cache 3";

/** FNV-1a continuation: mix `more` into an existing hash. */
std::uint64_t
mixHash(std::uint64_t h, const std::string &more)
{
    for (const char ch : more) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * The cache key: file content plus (when present) the companion
 * header's content, because collectUnorderedDecls reads the companion
 * — a record must go stale when either input changes.
 */
std::uint64_t
combinedHash(const SourceFile &f)
{
    std::uint64_t h = contentHash(f.content);
    if (f.has_companion) {
        h = mixHash(h, "\x1f");
        h = mixHash(h, f.companion);
    }
    return h;
}

std::vector<std::string>
splitWords(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream in(s);
    std::string w;
    while (in >> w)
        out.push_back(std::move(w));
    return out;
}

std::string
joinWords(const std::vector<std::string> &words)
{
    std::string out;
    for (const std::string &w : words) {
        if (!out.empty())
            out += " ";
        out += w;
    }
    return out;
}

/** Split `line` on tabs into at most `max_fields` fields (last keeps tabs). */
std::vector<std::string>
splitTabs(const std::string &line, std::size_t max_fields)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (fields.size() + 1 < max_fields) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos)
            break;
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
    fields.push_back(line.substr(start));
    return fields;
}

bool
parseInt(const std::string &s, int &out)
{
    if (s.empty())
        return false;
    int v = 0;
    for (const char ch : s) {
        if (ch < '0' || ch > '9')
            return false;
        v = v * 10 + (ch - '0');
    }
    out = v;
    return true;
}

bool
parseHash(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (const char ch : s) {
        int digit;
        if (ch >= '0' && ch <= '9')
            digit = ch - '0';
        else if (ch >= 'a' && ch <= 'f')
            digit = ch - 'a' + 10;
        else
            return false;
        v = v * 16 + static_cast<std::uint64_t>(digit);
    }
    out = v;
    return true;
}

std::string
hashHex(std::uint64_t h)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

// ---------------------------------------------------------------------------
// unused-include

bool
underSrcTree(const std::string &path)
{
    return path.rfind("src/", 0) == 0;
}

bool
headerPath(const std::string &path)
{
    return (path.size() > 3 &&
            path.compare(path.size() - 3, 3, ".hh") == 0) ||
           (path.size() > 2 &&
            path.compare(path.size() - 2, 2, ".h") == 0);
}

/** src/<mod>/<stem>.cc -> src/include/aiwc/<mod>/<stem>.hh, else "". */
std::string
companionOf(const std::string &path)
{
    if (path.rfind("src/", 0) != 0 ||
        path.rfind("src/include/", 0) == 0)
        return "";
    if (path.size() < 4 || path.compare(path.size() - 3, 3, ".cc") != 0)
        return "";
    return "src/include/aiwc/" +
           path.substr(4, path.size() - 4 - 3) + ".hh";
}

/**
 * Names an includer can legitimately get from `path`: the header's own
 * top-level declarations plus, transitively, those of the project
 * headers it re-includes — so umbrella headers count as supplying what
 * they forward. Memoized; cycles (already reported by include-cycle)
 * contribute what was collected before closing the loop.
 */
const std::set<std::string> &
exportedNames(const std::string &path,
              const std::map<std::string, FileAnalysis> &records,
              std::map<std::string, std::set<std::string>> &memo,
              std::set<std::string> &visiting)
{
    const auto hit = memo.find(path);
    if (hit != memo.end())
        return hit->second;

    static const std::set<std::string> empty;
    const auto rec = records.find(path);
    if (rec == records.end())
        return empty;

    if (visiting.count(path) > 0)
        return empty;
    visiting.insert(path);

    std::set<std::string> names(rec->second.declared.begin(),
                                rec->second.declared.end());
    for (const IncludeEdge &e : rec->second.includes)
        if (!e.resolved.empty()) {
            const std::set<std::string> &sub =
                exportedNames(e.resolved, records, memo, visiting);
            names.insert(sub.begin(), sub.end());
        }

    visiting.erase(path);
    return memo[path] = std::move(names);
}

void
checkUnusedIncludes(const std::map<std::string, FileAnalysis> &records,
                    std::vector<Finding> &out)
{
    std::map<std::string, std::set<std::string>> memo;
    std::set<std::string> visiting;

    for (const auto &[path, rec] : records) {
        if (!underSrcTree(path))
            continue;
        // A header declaring nothing of its own is a forwarding
        // (umbrella) header: re-exporting without using is its job.
        if (headerPath(path) && rec.declared.empty())
            continue;
        const std::string companion = companionOf(path);
        const std::set<std::string> used(rec.used.begin(), rec.used.end());

        for (const IncludeEdge &e : rec.includes) {
            if (e.resolved.empty() || !headerPath(e.resolved))
                continue;
            // A .cc always keeps its module header: the include *is*
            // the declaration/definition consistency check.
            if (e.resolved == companion)
                continue;
            const auto target = records.find(e.resolved);
            if (target == records.end())
                continue;
            // Operator overloads are found by ADL without the name
            // ever appearing; a header declaring them is always "used".
            if (target->second.declares_operator)
                continue;
            const std::set<std::string> &supplied =
                exportedNames(e.resolved, records, memo, visiting);
            // A header exporting nothing we can index (macros handled
            // above — #defines are declared names) is out of scope.
            if (supplied.empty())
                continue;
            const bool any_used = std::any_of(
                supplied.begin(), supplied.end(),
                [&used](const std::string &n) {
                    return used.count(n) > 0;
                });
            if (!any_used)
                out.push_back(
                    {path, e.line, "unused-include",
                     "include of '" + e.spelled +
                         "' supplies no name this file uses; drop it "
                         "(or include what you use directly)"});
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// AnalysisCache

bool
AnalysisCache::load(const std::string &text)
{
    entries_.clear();
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kCacheHeader)
        return false;

    FileAnalysis cur;
    bool open = false;
    const auto commit = [this, &cur, &open]() {
        if (open)
            entries_[cur.path] = std::move(cur);
        cur = FileAnalysis{};
        open = false;
    };

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const std::vector<std::string> head = splitTabs(line, 2);
        const std::string &tag = head[0];
        if (tag == "file") {
            commit();
            const std::vector<std::string> f = splitTabs(line, 4);
            int op = 0;
            if (f.size() != 4 || !parseHash(f[2], cur.hash) ||
                !parseInt(f[3], op)) {
                entries_.clear();
                return false;
            }
            cur.path = f[1];
            cur.declares_operator = op != 0;
            open = true;
            continue;
        }
        if (!open) {
            entries_.clear();
            return false;
        }
        bool ok = true;
        int n = 0;
        if (tag == "f") {
            const std::vector<std::string> f = splitTabs(line, 4);
            ok = f.size() == 4 && parseInt(f[1], n);
            if (ok)
                cur.findings.push_back({cur.path, n, f[2], f[3]});
        } else if (tag == "s") {
            const std::vector<std::string> f = splitTabs(line, 3);
            ok = f.size() == 3 && parseInt(f[1], n);
            if (ok)
                cur.suppressions.emplace_back(n, f[2]);
        } else if (tag == "i") {
            const std::vector<std::string> f = splitTabs(line, 4);
            int angled = 0;
            ok = f.size() == 4 && parseInt(f[1], n) &&
                 parseInt(f[2], angled);
            if (ok) {
                IncludeEdge e;
                e.spelled = f[3];
                e.line = n;
                e.angled = angled != 0;
                cur.includes.push_back(std::move(e));
            }
        } else if (tag == "le") {
            const std::vector<std::string> f = splitTabs(line, 5);
            int declared = 0;
            ok = f.size() == 5 && parseInt(f[1], declared) &&
                 parseInt(f[2], n);
            if (ok)
                cur.lock_edges.push_back({f[3], f[4], n, declared != 0});
        } else if (tag == "d") {
            cur.declared = splitWords(splitTabs(line, 2)[1]);
        } else if (tag == "u") {
            cur.used = splitWords(splitTabs(line, 2)[1]);
        } else {
            ok = false;
        }
        if (!ok) {
            entries_.clear();
            return false;
        }
    }
    commit();
    return true;
}

std::string
AnalysisCache::serialize() const
{
    std::ostringstream os;
    os << kCacheHeader << "\n";
    for (const auto &[path, rec] : entries_) {
        os << "file\t" << path << "\t" << hashHex(rec.hash) << "\t"
           << (rec.declares_operator ? 1 : 0) << "\n";
        for (const Finding &f : rec.findings)
            os << "f\t" << f.line << "\t" << f.rule << "\t" << f.message
               << "\n";
        for (const auto &[line, rule] : rec.suppressions)
            os << "s\t" << line << "\t" << rule << "\n";
        for (const IncludeEdge &e : rec.includes)
            os << "i\t" << e.line << "\t" << (e.angled ? 1 : 0) << "\t"
               << e.spelled << "\n";
        for (const LockEdge &e : rec.lock_edges)
            os << "le\t" << (e.declared ? 1 : 0) << "\t" << e.line << "\t"
               << e.from << "\t" << e.to << "\n";
        if (!rec.declared.empty())
            os << "d\t" << joinWords(rec.declared) << "\n";
        if (!rec.used.empty())
            os << "u\t" << joinWords(rec.used) << "\n";
    }
    return os.str();
}

const FileAnalysis *
AnalysisCache::lookup(const std::string &path, std::uint64_t hash) const
{
    const auto it = entries_.find(path);
    if (it == entries_.end() || it->second.hash != hash)
        return nullptr;
    return &it->second;
}

void
AnalysisCache::store(FileAnalysis record)
{
    entries_[record.path] = std::move(record);
}

// ---------------------------------------------------------------------------
// analyzeProject

ProjectResult
analyzeProject(const std::vector<SourceFile> &files,
               const ProjectOptions &options, AnalysisCache *cache)
{
    ProjectResult res;

    // Phase 1: per-file records, from the cache when the inputs match.
    std::map<std::string, FileAnalysis> records;
    for (const SourceFile &f : files) {
        const std::uint64_t key = combinedHash(f);
        if (cache != nullptr) {
            const FileAnalysis *hit = cache->lookup(f.path, key);
            if (hit != nullptr) {
                records[f.path] = *hit;
                ++res.cached;
                continue;
            }
        }
        FileAnalysis fa = analyzeSource(
            f.path, f.content, f.has_companion ? &f.companion : nullptr);
        fa.hash = key;
        if (cache != nullptr)
            cache->store(fa);
        records[f.path] = std::move(fa);
        ++res.fresh;
    }

    // Phase 2: resolve includes against the tree as it is *now* and
    // run the graph rules. Resolution is never cached — which files
    // exist is an input the content hash cannot see.
    std::set<std::string> known;
    for (const auto &[path, rec] : records)
        known.insert(path);

    IncludeGraph graph;
    for (auto &[path, rec] : records) {
        resolveIncludes(path, rec.includes, known);
        graph[path] = rec.includes;
    }

    std::vector<Finding> cross;
    if (!options.layers_text.empty()) {
        LayerSpec spec;
        std::string err;
        if (!LayerSpec::parse(options.layers_text, spec, err)) {
            res.error = err;
            return res;
        }
        checkLayering(graph, spec, cross);
    }
    checkCycles(graph, cross);
    checkUnusedIncludes(records, cross);

    // The whole-program lock-order graph: every record's edges plus
    // the locks.txt spec when one is configured.
    {
        LockSpec lock_spec;
        const LockSpec *spec = nullptr;
        if (!options.locks_text.empty()) {
            std::string err;
            if (!LockSpec::parse(options.locks_text, lock_spec, err)) {
                res.error = err;
                return res;
            }
            spec = &lock_spec;
        }
        std::vector<const FileAnalysis *> recs;
        recs.reserve(records.size());
        for (const auto &[path, rec] : records)
            recs.push_back(&rec);
        checkLockOrder(recs, spec, options.locks_path, cross);
    }

    // Findings anchored at the spec file (a cycle made of declared
    // edges only) have no record to scope or suppress through; they
    // are reported unconditionally below.
    std::map<std::string, std::vector<Finding>> cross_by_file;
    std::vector<Finding> spec_anchored;
    for (Finding &f : cross) {
        if (records.count(f.file) > 0)
            cross_by_file[f.file].push_back(std::move(f));
        else
            spec_anchored.push_back(std::move(f));
    }

    // Reporting scope: everything, or the changed set's reverse
    // include-closure when one was given.
    std::set<std::string> scope;
    const bool scoped = !options.changed.empty();
    if (scoped)
        scope = reverseClosure(graph, options.changed);

    // One suppression table per file filters per-file and cross-file
    // findings alike — an allow() next to an #include silences
    // layer-violation or unused-include the same way it does det-random.
    for (const auto &[path, rec] : records) {
        if (scoped && scope.count(path) == 0)
            continue;
        ++res.reported_files;
        const std::set<std::pair<int, std::string>> allowed(
            rec.suppressions.begin(), rec.suppressions.end());
        const auto keep = [&](const Finding &f) {
            if (allowed.count({f.line, f.rule}) == 0)
                res.findings.push_back(f);
        };
        for (const Finding &f : rec.findings)
            keep(f);
        const auto extra = cross_by_file.find(path);
        if (extra != cross_by_file.end())
            for (const Finding &f : extra->second)
                keep(f);
    }
    for (Finding &f : spec_anchored)
        res.findings.push_back(std::move(f));
    std::sort(res.findings.begin(), res.findings.end());
    return res;
}

// ---------------------------------------------------------------------------
// SARIF

namespace
{

std::string
sarifEscape(const std::string &s)
{
    std::string out;
    for (const char ch : s) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
    return out;
}

} // namespace

std::string
renderSarif(const std::vector<Finding> &findings)
{
    const std::vector<std::string> &rules = knownRules();
    std::map<std::string, std::size_t> rule_index;
    for (std::size_t i = 0; i < rules.size(); ++i)
        rule_index[rules[i]] = i;

    std::ostringstream os;
    os << "{\n"
          "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
          "  \"version\": \"2.1.0\",\n"
          "  \"runs\": [\n"
          "    {\n"
          "      \"tool\": {\n"
          "        \"driver\": {\n"
          "          \"name\": \"aiwc-lint\",\n"
          "          \"version\": \"3.0.0\",\n"
          "          \"informationUri\": "
          "\"https://example.invalid/aiwc/CONTRIBUTING.md\",\n"
          "          \"rules\": [";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        os << (i == 0 ? "" : ",") << "\n            {\"id\": \""
           << sarifEscape(rules[i])
           << "\", \"shortDescription\": {\"text\": \""
           << sarifEscape(ruleDescription(rules[i])) << "\"}}";
    }
    os << "\n          ]\n"
          "        }\n"
          "      },\n"
          "      \"results\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i == 0 ? "" : ",") << "\n        {\"ruleId\": \""
           << sarifEscape(f.rule)
           << "\", \"ruleIndex\": " << rule_index[f.rule]
           << ", \"level\": \"error\", \"message\": {\"text\": \""
           << sarifEscape(f.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << sarifEscape(f.file)
           << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]}";
    }
    if (!findings.empty())
        os << "\n      ";
    os << "]\n"
          "    }\n"
          "  ]\n"
          "}\n";
    return os.str();
}

} // namespace aiwc::lint
