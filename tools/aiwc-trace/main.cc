/**
 * @file
 * aiwc-trace — convert, inspect, and fingerprint binary trace files.
 *
 * CSV is the interchange format a production Slurm + nvidia-smi
 * pipeline exports; the binary trace (aiwc/fmt/trace.hh) is the
 * working format the analyzers load. This tool is the bridge:
 *
 *   aiwc-trace import <in.csv> <out.aiwt>    CSV -> binary trace
 *   aiwc-trace export <in.aiwt> <out.csv>    binary trace -> CSV
 *   aiwc-trace info <in.aiwt>                header + table summary
 *   aiwc-trace digest <in.aiwt|in.csv>       content digest (hex)
 *   aiwc-trace synth <scale> <seed> <out.aiwt>  synthesized study
 *
 * digest prints the canonical content digest of the dataset however
 * it was stored, so `digest a.csv` == `digest a.aiwt` proves a
 * conversion was lossless — the CI round-trip gate scripts exactly
 * that comparison. Exit codes: 0 success, 1 usage, 2 bad input.
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "aiwc/core/csv_loader.hh"
#include "aiwc/fmt/trace.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace
{

using namespace aiwc;

int
usage()
{
    std::cerr
        << "usage: aiwc-trace import <in.csv> <out.aiwt>\n"
        << "       aiwc-trace export <in.aiwt> <out.csv>\n"
        << "       aiwc-trace info <in.aiwt>\n"
        << "       aiwc-trace digest <in.aiwt|in.csv>\n"
        << "       aiwc-trace synth <scale> <seed> <out.aiwt>\n";
    return 1;
}

std::string
hexDigest(std::uint64_t digest)
{
    std::ostringstream os;
    os << std::hex << std::setfill('0') << std::setw(16) << digest;
    return os.str();
}

/** Load a dataset from CSV; exits 2 on unreadable input. */
bool
loadCsv(const std::string &path, core::Dataset &out)
{
    std::ifstream file(path);
    if (!file) {
        std::cerr << "aiwc-trace: cannot read " << path << "\n";
        return false;
    }
    out = core::loadDatasetCsv(file);
    return true;
}

/** Load a dataset from a binary trace; exits 2 on any reject. */
bool
loadTrace(const std::string &path, core::Dataset &out)
{
    fmt::TraceLoadResult result = fmt::loadTraceFile(path);
    if (!result.ok()) {
        std::cerr << "aiwc-trace: " << path << ": "
                  << toString(result.status)
                  << (result.error.empty() ? "" : ": " + result.error)
                  << "\n";
        return false;
    }
    out = std::move(result.dataset);
    return true;
}

/** True when the file leads with the trace magic (else treat as CSV). */
bool
looksLikeTrace(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    char lead[4] = {};
    file.read(lead, sizeof lead);
    if (file.gcount() != sizeof lead)
        return false;
    const auto b = [&](int i) {
        return static_cast<std::uint32_t>(
            static_cast<std::uint8_t>(lead[i]));
    };
    const std::uint32_t magic =
        b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
    return magic == fmt::trace_magic;
}

int
cmdImport(const std::string &csv_path, const std::string &trace_path)
{
    core::Dataset dataset;
    if (!loadCsv(csv_path, dataset))
        return 2;
    std::string error;
    if (!fmt::writeTraceFile(trace_path, dataset, &error)) {
        std::cerr << "aiwc-trace: " << error << "\n";
        return 2;
    }
    std::cout << "imported " << dataset.size() << " rows, "
              << dataset.uniqueUsers() << " users -> " << trace_path
              << "\ndigest " << hexDigest(fmt::contentDigest(dataset))
              << "\n";
    return 0;
}

int
cmdExport(const std::string &trace_path, const std::string &csv_path)
{
    core::Dataset dataset;
    if (!loadTrace(trace_path, dataset))
        return 2;
    std::ofstream file(csv_path);
    if (!file) {
        std::cerr << "aiwc-trace: cannot write " << csv_path << "\n";
        return 2;
    }
    dataset.writeCsv(file);
    std::cout << "exported " << dataset.size() << " rows -> "
              << csv_path << "\n";
    return 0;
}

int
cmdInfo(const std::string &trace_path)
{
    core::Dataset dataset;
    if (!loadTrace(trace_path, dataset))
        return 2;
    const core::ColumnTable &cols = dataset.columns();
    std::size_t gpu_summaries = 0;
    std::size_t ts_rows = 0;
    for (const core::JobRecord &r : dataset.records()) {
        gpu_summaries += r.per_gpu.size();
        ts_rows += r.has_timeseries ? 1 : 0;
    }
    std::cout << trace_path << ": trace v" << fmt::trace_version << "\n"
              << "  rows           " << dataset.size() << "\n"
              << "  users          " << cols.users().size() << "\n"
              << "  job types      " << cols.jobTypes().size() << "\n"
              << "  gpu summaries  " << gpu_summaries << "\n"
              << "  timeseries     " << ts_rows << "\n"
              << "  digest         "
              << hexDigest(fmt::contentDigest(dataset)) << "\n";
    return 0;
}

int
cmdDigest(const std::string &path)
{
    core::Dataset dataset;
    const bool ok = looksLikeTrace(path) ? loadTrace(path, dataset)
                                         : loadCsv(path, dataset);
    if (!ok)
        return 2;
    std::cout << hexDigest(fmt::contentDigest(dataset)) << "\n";
    return 0;
}

int
cmdSynth(const std::string &scale, const std::string &seed,
         const std::string &trace_path)
{
    workload::SynthesisOptions options;
    options.scale = std::stod(scale);
    options.seed = std::stoull(seed);
    const auto profile = workload::CalibrationProfile::supercloud();
    auto result = workload::TraceSynthesizer(profile, options).run();
    std::string error;
    if (!fmt::writeTraceFile(trace_path, result.dataset, &error)) {
        std::cerr << "aiwc-trace: " << error << "\n";
        return 2;
    }
    std::cout << "synthesized " << result.dataset.size() << " rows -> "
              << trace_path << "\ndigest "
              << hexDigest(fmt::contentDigest(result.dataset)) << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "import" && argc == 4)
        return cmdImport(argv[2], argv[3]);
    if (cmd == "export" && argc == 4)
        return cmdExport(argv[2], argv[3]);
    if (cmd == "info" && argc == 3)
        return cmdInfo(argv[2]);
    if (cmd == "digest" && argc == 3)
        return cmdDigest(argv[2]);
    if (cmd == "synth" && argc == 5)
        return cmdSynth(argv[2], argv[3], argv[4]);
    return usage();
}
