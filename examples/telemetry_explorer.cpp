/**
 * @file
 * Telemetry explorer: generates one job's full 100 ms nvidia-smi-style
 * time series, prints an ASCII strip chart of its active/idle phases,
 * and optionally dumps the series as CSV — the microscope view behind
 * Figs. 6-8.
 *
 * Usage: telemetry_explorer [duration_s] [seed] [--csv]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "aiwc/common/table.hh"
#include "aiwc/telemetry/sampler.hh"

int
main(int argc, char **argv)
{
    using namespace aiwc;

    const double duration = argc > 1 ? std::atof(argv[1]) : 1800.0;
    const std::uint64_t seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;
    const bool csv =
        argc > 3 && std::strcmp(argv[3], "--csv") == 0;

    telemetry::JobProfile profile;
    profile.num_gpus = 1;
    profile.active_fraction = 0.84;
    profile.active_len_median_s = 50.0;
    profile.sm_mean = 0.35;
    profile.membw_mean = 0.06;
    profile.memsize_mean = 0.25;
    profile.pcie_tx_mean = 0.3;
    profile.pcie_rx_mean = 0.35;
    profile.sat_sm = true;  // one burst to 100% (Fig. 7b behaviour)
    profile.telemetry_seed = seed;

    const telemetry::PowerModel power;
    telemetry::MonitoringParams monitoring;
    const telemetry::GpuSampler sampler(power, monitoring);
    telemetry::TimeSeries series(monitoring.gpu_interval);
    const auto tele =
        sampler.sampleJob(profile, duration, /*detailed=*/true, &series);

    if (csv) {
        series.writeCsv(std::cout);
        return 0;
    }

    std::cout << "one synthetic job, " << formatDuration(duration)
              << ", " << series.size() << " samples at "
              << monitoring.gpu_interval << " s\n\n";

    // ASCII strip chart: 100 buckets of mean SM utilization.
    constexpr int buckets = 100;
    std::cout << "SM utilization strip (each char ~ "
              << formatDuration(duration / buckets) << "):\n";
    const char *shades = " .:-=+*#%@";
    std::string strip;
    const std::size_t per_bucket =
        std::max<std::size_t>(series.size() / buckets, 1);
    for (int b = 0; b < buckets; ++b) {
        double acc = 0.0;
        std::size_t n = 0;
        for (std::size_t i = b * per_bucket;
             i < (b + 1) * per_bucket && i < series.size(); ++i) {
            acc += series.at(i).sm;
            ++n;
        }
        const double level = n ? acc / n : 0.0;
        strip += shades[std::min(9, static_cast<int>(level * 10))];
    }
    std::cout << "[" << strip << "]\n\n";

    const auto &s = tele.per_gpu[0];
    TextTable t({"metric", "min", "mean", "max"});
    t.addRow({"SM", formatPercent(s.sm.min()), formatPercent(s.sm.mean()),
              formatPercent(s.sm.max())});
    t.addRow({"memory BW", formatPercent(s.membw.min()),
              formatPercent(s.membw.mean()),
              formatPercent(s.membw.max())});
    t.addRow({"memory size", formatPercent(s.memsize.min()),
              formatPercent(s.memsize.mean()),
              formatPercent(s.memsize.max())});
    t.addRow({"power (W)", formatNumber(s.power_watts.min(), 0),
              formatNumber(s.power_watts.mean(), 0),
              formatNumber(s.power_watts.max(), 0)});
    t.print(std::cout);

    std::cout << "\nphases: active fraction "
              << formatPercent(tele.phases.active_fraction) << ", "
              << tele.phases.active_intervals.size()
              << " active intervals, "
              << tele.phases.idle_intervals.size()
              << " idle intervals\n"
              << "active-phase SM CoV "
              << formatNumber(tele.phases.active_sm_cov, 1)
              << "% (Fig. 7a territory)\n"
              << "spool volume at 100 ms cadence: "
              << tele.spoolBytes() / 1024 << " KiB\n"
              << "(run with --csv to dump the raw series)\n";
    return 0;
}
