/**
 * @file
 * Capacity planning: an operator's what-if session. Synthesizes a
 * study slice, then answers two Sec. VIII questions:
 *
 *   1. power capping — how many more GPUs the same power budget
 *      supports per cap level, and at what slowdown;
 *   2. a two-tier fleet — how much cheaper the fleet gets when
 *      exploratory/development/IDE work moves to economy GPUs.
 *
 * Usage: capacity_planning [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "aiwc/common/table.hh"
#include "aiwc/opportunity/multi_tier_planner.hh"
#include "aiwc/opportunity/power_cap_planner.hh"
#include "aiwc/workload/trace_synthesizer.hh"

int
main(int argc, char **argv)
{
    using namespace aiwc;

    workload::SynthesisOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.08;
    options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

    const auto profile = workload::CalibrationProfile::supercloud();
    std::cout << "synthesizing a " << options.scale
              << "x Supercloud study...\n";
    const auto result =
        workload::TraceSynthesizer(profile, options).run();
    const auto &dataset = result.dataset;
    std::cout << dataset.gpuJobs().size() << " GPU jobs, "
              << static_cast<long>(dataset.totalGpuHours())
              << " GPU-hours\n\n";

    // --- 1. Power capping ---
    std::cout << "-- power capping (Fig. 9b extended) --\n";
    const opportunity::PowerCapPlanner power_planner;
    TextTable caps({"cap", "GPUs per budget", "unimpacted jobs",
                    "weighted slowdown", "net throughput gain"});
    for (const auto &plan : power_planner.plan(
             dataset, {120.0, 150.0, 180.0, 210.0, 250.0})) {
        caps.addRow({formatNumber(plan.cap_watts, 0) + " W",
                     formatNumber(plan.gpu_multiplier, 2) + "x",
                     formatPercent(plan.unimpacted),
                     formatNumber(plan.weighted_slowdown, 3) + "x",
                     formatPercent(plan.throughput_gain)});
    }
    caps.print(std::cout);

    // --- 2. Two-tier fleet ---
    std::cout << "\n-- two-tier fleet (Sec. VIII) --\n";
    TextTable tiers({"economy speed", "economy cost", "hours shifted",
                     "shifted slowdown", "fleet cost saving"});
    for (double speed : {0.4, 0.5, 0.6}) {
        for (double cost : {0.3, 0.4}) {
            const opportunity::MultiTierPlanner planner(speed, cost);
            const auto plan = planner.plan(dataset);
            tiers.addRow({formatNumber(speed, 1) + "x",
                          formatNumber(cost, 1) + "x",
                          formatPercent(plan.shifted_hour_fraction),
                          formatNumber(plan.mean_shifted_slowdown, 2) +
                              "x",
                          formatPercent(plan.cost_saving_fraction)});
        }
    }
    tiers.print(std::cout);

    std::cout << "\nReading: even a 150 W cap leaves most jobs "
                 "untouched (their average draw is far below it), and "
                 "shifting non-mature work to slower GPUs costs little "
                 "runtime because those jobs barely use the GPU.\n";
    return 0;
}
