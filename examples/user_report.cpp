/**
 * @file
 * Per-user operator report: the Sec. IV/VI analyses for individual
 * users — activity concentration, expert-user detection (Fig. 12),
 * and each top user's lifecycle footprint (Fig. 17).
 *
 * Usage: user_report [scale] [seed] [top_n]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "aiwc/common/table.hh"
#include "aiwc/core/correlation_analyzer.hh"
#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/user_behavior_analyzer.hh"
#include "aiwc/workload/trace_synthesizer.hh"

int
main(int argc, char **argv)
{
    using namespace aiwc;

    workload::SynthesisOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.1;
    options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
    const int top_n = argc > 3 ? std::atoi(argv[3]) : 8;

    const auto profile = workload::CalibrationProfile::supercloud();
    const auto result =
        workload::TraceSynthesizer(profile, options).run();
    const auto &dataset = result.dataset;

    const core::UserBehaviorAnalyzer behaviour;
    auto summaries = behaviour.summarize(dataset);
    std::sort(summaries.begin(), summaries.end(),
              [](const core::UserSummary &a, const core::UserSummary &b) {
                  return a.jobs > b.jobs;
              });

    const auto report = behaviour.analyze(dataset);
    std::cout << summaries.size() << " active users; top 5% submit "
              << formatPercent(report.top5_job_share)
              << " of jobs, top 20% submit "
              << formatPercent(report.top20_job_share)
              << "; median user submits "
              << formatNumber(report.median_jobs_per_user, 0)
              << " jobs\n\n";

    const auto lifecycle = core::LifecycleAnalyzer().analyze(dataset);
    std::cout << "-- top " << top_n << " users --\n";
    TextTable t({"user", "jobs", "GPU-hours", "avg SM", "SM CoV",
                 "mature", "exploratory", "dev", "IDE"});
    for (int i = 0; i < top_n &&
                    i < static_cast<int>(summaries.size());
         ++i) {
        const auto &u = summaries[static_cast<std::size_t>(i)];
        const auto shares = std::find_if(
            lifecycle.users.begin(), lifecycle.users.end(),
            [&](const core::UserClassShares &s) {
                return s.user == u.user;
            });
        t.addRow({
            "u" + formatNumber(u.user, 0),
            formatNumber(static_cast<double>(u.jobs), 0),
            formatNumber(u.gpu_hours, 0),
            formatNumber(u.avg_sm_pct, 1) + "%",
            formatNumber(u.sm_cov_pct, 0) + "%",
            shares != lifecycle.users.end()
                ? formatPercent(shares->job_share[0])
                : "-",
            shares != lifecycle.users.end()
                ? formatPercent(shares->job_share[1])
                : "-",
            shares != lifecycle.users.end()
                ? formatPercent(shares->job_share[2])
                : "-",
            shares != lifecycle.users.end()
                ? formatPercent(shares->job_share[3])
                : "-",
        });
    }
    t.print(std::cout);

    std::cout << "\n-- expert-user hypothesis (Fig. 12) --\n";
    const auto corr = core::CorrelationAnalyzer().analyze(dataset);
    std::cout << "Spearman rho(#jobs, avg SM util) = "
              << formatNumber(
                     corr.by_jobs
                         .features[static_cast<std::size_t>(
                             core::UserFeature::AvgSm)]
                         .coefficient,
                     2)
              << " (paper: strongly positive)\n"
              << "Spearman rho(#jobs, CoV SM util) = "
              << formatNumber(
                     corr.by_jobs
                         .features[static_cast<std::size_t>(
                             core::UserFeature::CovSm)]
                         .coefficient,
                     2)
              << " (paper: weak -> experts are no more predictable)\n";
    return 0;
}
