/**
 * @file
 * One user's project diary: walks the Fig. 2 development workflow as a
 * Markov chain, gives every job a class-appropriate shape, samples its
 * GPU and host telemetry, and prints the resulting timeline — the
 * micro view behind the fleet-level Figs. 15-17.
 *
 * Usage: workflow_trace [jobs] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "aiwc/common/table.hh"
#include "aiwc/telemetry/cpu_sampler.hh"
#include "aiwc/telemetry/sampler.hh"
#include "aiwc/workload/job_generator.hh"
#include "aiwc/workload/workflow_model.hh"

int
main(int argc, char **argv)
{
    using namespace aiwc;

    const auto jobs = static_cast<std::size_t>(
        argc > 1 ? std::atoi(argv[1]) : 14);
    Rng rng(argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4);

    const auto profile = workload::CalibrationProfile::supercloud();
    const workload::JobGenerator generator(profile);
    const workload::WorkflowModel workflow;

    workload::UserProfile user;
    user.id = 0;
    user.util_scale = 1.0;
    user.runtime_scale = 1.0;
    user.tier = workload::GpuTier::TwoGpu;
    user.multi_gpu_prob = 0.2;

    const telemetry::PowerModel power;
    const telemetry::GpuSampler gpu_sampler(power,
                                            profile.monitoring);
    const telemetry::CpuSampler cpu_sampler;

    std::cout << "a " << jobs
              << "-job project walk through the Fig. 2 workflow\n\n";
    TextTable t({"#", "stage", "gpus", "runtime", "end", "SM mean",
                 "host CPU", "power mean"});

    Seconds clock = 0.0;
    const auto stages = workflow.session(jobs, rng);
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const auto job = generator.gpuJob(user, clock,
                                          static_cast<JobId>(i), rng,
                                          stages[i]);
        const double runtime = job.request.observedDuration();
        const auto tele =
            gpu_sampler.sampleJob(job.profile, runtime, false);

        telemetry::HostProfile host;
        host.cpu_slots = job.request.cpu_slots;
        host.busy_slots_mean = 0.4 * job.request.cpu_slots;
        host.idle_busy_slots_mean = 0.05 * job.request.cpu_slots;
        host.seed = 100 + i;
        const auto host_tele =
            cpu_sampler.sampleJob(host, &job.profile, runtime);

        t.addRow({formatNumber(static_cast<double>(i), 0),
                  toString(stages[i]),
                  formatNumber(job.request.gpus, 0),
                  formatDuration(runtime),
                  toString(job.request.observedEnd()),
                  formatPercent(tele.per_gpu[0].sm.mean()),
                  formatPercent(host_tele.cpu_util.mean()),
                  formatNumber(tele.per_gpu[0].power_watts.mean(), 0) +
                      " W"});
        // The next job starts after this one plus some think time.
        clock += runtime + rng.uniform(300.0, 7200.0);
    }
    t.print(std::cout);

    const auto pi = workflow.stationary();
    std::cout << "\nlong-run stage mix of this workflow: mature "
              << formatPercent(pi[0]) << ", exploratory "
              << formatPercent(pi[1]) << ", development "
              << formatPercent(pi[2]) << ", IDE " << formatPercent(pi[3])
              << " (Fig. 15a: 59.5% / 18% / 19% / 3.5%)\n";
    return 0;
}
