/**
 * @file
 * Streaming ingest demo: replay a synthesized trace straight into the
 * bounded-memory sketch pipeline — no Dataset is ever materialized —
 * and publish a SnapshotReport mid-stream and again at the end. This
 * is the serving pattern the tentpole enables: live results while
 * ingestion continues, with memory set by the sketch geometry instead
 * of the trace length.
 *
 * Usage: stream_ingest [scale] [seed] [snapshot_every]
 *   scale           fraction of the 125-day study (default 0.05)
 *   seed            RNG seed (default 42)
 *   snapshot_every  rows between mid-stream snapshots (default 2000)
 */

#include <cstdlib>
#include <iostream>

#include "aiwc/stream/pipeline.hh"
#include "aiwc/workload/trace_synthesizer.hh"

int
main(int argc, char **argv)
{
    using namespace aiwc;

    workload::SynthesisOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
    options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
    const std::uint64_t snapshot_every =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;

    const auto profile = workload::CalibrationProfile::supercloud();
    const workload::TraceSynthesizer synthesizer(profile, options);
    std::cout << "streaming a " << options.scale << "x study ("
              << synthesizer.scaledUsers() << " users, "
              << synthesizer.scaledNodes()
              << " nodes) through aiwc::stream...\n\n";

    stream::StreamPipeline pipeline;
    const auto replay = synthesizer.runStreaming(
        [&](core::JobRecord &&rec) {
            pipeline.ingest(rec);
            // The snapshot is a plain value rendered from the sketch
            // state: taking one mid-stream never perturbs ingestion.
            if (snapshot_every > 0 &&
                pipeline.rows() % snapshot_every == 0) {
                std::cout << "---- mid-stream, after "
                          << pipeline.rows() << " rows ----\n";
                pipeline.snapshot().print(std::cout);
                std::cout << '\n';
            }
        });

    std::cout << "---- final, after " << replay.records
              << " rows ----\n";
    pipeline.snapshot().print(std::cout);
    std::cout << "\nreplay aggregates: " << replay.num_users
              << " users, " << replay.cluster_nodes << " nodes, "
              << replay.scheduler_stats.backfilled
              << " backfilled starts, central store "
              << replay.central_store_bytes / (1024 * 1024)
              << " MiB\n";
    return 0;
}
