/**
 * @file
 * Multi-tenant service demo and determinism self-check: amplify a
 * synthesized trace to millions of records spread over a large tenant
 * and user population, stream it through aiwc::svc twice — once with a
 * 1-thread drain, once with 8 — and verify that every mid-stream
 * snapshot digest is byte-identical while RSS stays on a plateau.
 * The first batch each tenant sends travels through the real wire
 * format (encodeJobBatch -> offerFrame), so the codec sits on the hot
 * path too, not just in unit tests.
 *
 * Usage: svc_demo [records] [tenants] [users] [batch] [--json=path]
 *   records  total JobRecords to ingest per run   (default 10000000)
 *   tenants  tenant population                    (default 128)
 *   users    distinct simulated users             (default 2000000)
 *   batch    records per enqueued batch           (default 512)
 *   --json   write a machine-readable report (CI artifact)
 *
 * Exit status: 0 when all milestone digests match across thread
 * counts, 1 otherwise.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "aiwc/common/parallel.hh"
#include "aiwc/svc/service.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace
{

/** SplitMix64: deterministic user assignment, no RNG state to carry. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Current VmRSS in KiB (0 where /proc is unavailable). */
std::size_t
rssKiB()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmRSS:", 0) == 0)
            return static_cast<std::size_t>(
                std::strtoull(line.c_str() + 6, nullptr, 10));
    }
    return 0;
}

/** FNV-1a fold helpers for the snapshot digest. */
struct Digest
{
    std::uint64_t h = 0xcbf29ce484222325ull;

    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ull;
        }
    }

    void
    u64(std::uint64_t v)
    {
        bytes(&v, sizeof v);
    }

    void
    f64(double v)
    {
        bytes(&v, sizeof v);
    }
};

void
foldSnapshot(Digest &d, const aiwc::stream::SnapshotReport &snap)
{
    d.u64(snap.rows);
    d.u64(snap.gpu_jobs);
    d.u64(snap.cpu_jobs);
    d.u64(snap.users);
    d.f64(snap.top5_job_share);
    d.f64(snap.top20_job_share);
    d.f64(snap.median_jobs_per_user);
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        d.f64(snap.gpu_runtime_min.quantile(q));
        d.f64(snap.cpu_runtime_min.quantile(q));
        d.f64(snap.gpu_wait_s.quantile(q));
        d.f64(snap.sm_pct.quantile(q));
        d.f64(snap.membw_pct.quantile(q));
        d.f64(snap.avg_watts.quantile(q));
        d.f64(snap.max_watts.quantile(q));
    }
    for (const auto &hit : snap.top_users_by_gpu_hours) {
        d.u64(hit.key);
        d.f64(hit.count);
        d.f64(hit.error);
    }
}

struct Milestone
{
    std::uint64_t rows = 0;
    std::uint64_t digest = 0;
    std::size_t rss_kib = 0;
    std::size_t sketch_bytes = 0;
};

struct RunResult
{
    std::vector<Milestone> milestones;
    double wall_s = 0.0;
};

/** One full ingest run at the given drain-thread count. */
RunResult
runOnce(const std::vector<aiwc::core::JobRecord> &base,
        std::uint64_t records, std::uint64_t tenants,
        std::uint64_t users, std::size_t batch_size, int threads)
{
    using namespace aiwc;
    setGlobalThreadCount(threads);

    svc::ServiceOptions opts;
    opts.shards_per_tenant = 2;
    svc::Service service(opts);

    std::vector<std::vector<core::JobRecord>> pending(tenants);
    const std::uint64_t milestone_every =
        std::max<std::uint64_t>(records / 10, 1);
    // Drain often enough that queued batches never pile up into an
    // unbounded backlog: bounded memory is the whole point.
    const std::uint64_t drain_every =
        std::max<std::uint64_t>(batch_size * tenants, 4096);

    std::uint64_t wire_batches = 0;
    const auto flush = [&](std::uint64_t tenant) {
        auto &queue = pending[tenant];
        if (queue.empty())
            return;
        // The first batch per tenant exercises the wire codec end to
        // end; later ones take the in-process fast path.
        if (wire_batches < tenants) {
            ++wire_batches;
            const auto frame = svc::encodeJobBatch(tenant, queue);
            auto result = service.offerFrame(frame);
            while (!result.accepted()) {
                service.drain();
                result = service.offerFrame(frame);
            }
        } else {
            while (service.enqueueBatch(tenant, std::move(queue)) !=
                   svc::Admission::Accepted)
                service.drain();
        }
        queue.clear();
    };

    RunResult result;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < records; ++i) {
        core::JobRecord rec = base[i % base.size()];
        rec.id = static_cast<JobId>(i);
        rec.user = static_cast<UserId>(splitmix64(i) % users);
        const std::uint64_t tenant = rec.user % tenants;
        pending[tenant].push_back(std::move(rec));
        if (pending[tenant].size() >= batch_size)
            flush(tenant);
        if ((i + 1) % drain_every == 0)
            service.drain();
        if ((i + 1) % milestone_every == 0 || i + 1 == records) {
            // Quiesce, then digest every tenant in ascending order.
            for (std::uint64_t t = 0; t < tenants; ++t)
                flush(t);
            service.drain();
            Digest digest;
            std::size_t sketch_bytes = 0;
            for (std::uint64_t t = 0; t < tenants; ++t) {
                if (!service.hasTenant(t))
                    continue;
                const auto snap = service.snapshot(t);
                foldSnapshot(digest, snap);
                sketch_bytes += snap.sketch_bytes;
            }
            result.milestones.push_back(
                {i + 1, digest.h, rssKiB(), sketch_bytes});
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.wall_s =
        std::chrono::duration<double>(t1 - t0).count();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace aiwc;

    std::uint64_t records = 10'000'000;
    std::uint64_t tenants = 128;
    std::uint64_t users = 2'000'000;
    std::size_t batch_size = 512;
    std::string json_path;
    int positional = 0;
    for (int a = 1; a < argc; ++a) {
        if (std::strncmp(argv[a], "--json=", 7) == 0) {
            json_path = argv[a] + 7;
            continue;
        }
        const std::uint64_t v =
            std::strtoull(argv[a], nullptr, 10);
        switch (positional++) {
          case 0: records = v; break;
          case 1: tenants = v; break;
          case 2: users = v; break;
          case 3: batch_size = static_cast<std::size_t>(v); break;
          default: break;
        }
    }
    if (records == 0 || tenants == 0 || users == 0 ||
        batch_size == 0) {
        std::cerr << "svc_demo: all sizes must be positive\n";
        return 1;
    }

    // A small synthesized trace supplies realistic record shapes; the
    // amplification loop remaps ids/users to reach service scale.
    workload::SynthesisOptions synth;
    synth.scale = 0.02;
    synth.seed = 7;
    const auto profile = workload::CalibrationProfile::supercloud();
    const workload::TraceSynthesizer synthesizer(profile, synth);
    std::vector<core::JobRecord> base;
    synthesizer.runStreaming([&](core::JobRecord &&rec) {
        base.push_back(std::move(rec));
    });
    std::cout << "svc_demo: " << records << " records, " << tenants
              << " tenants, " << users << " users, batch "
              << batch_size << " (base trace: " << base.size()
              << " synthesized records)\n\n";

    const auto serial =
        runOnce(base, records, tenants, users, batch_size, 1);
    const auto parallel =
        runOnce(base, records, tenants, users, batch_size, 8);

    bool match = serial.milestones.size() == parallel.milestones.size();
    std::cout << std::left << std::setw(12) << "rows"
              << std::setw(20) << "digest" << std::setw(12)
              << "rss-1t MiB" << std::setw(12) << "rss-8t MiB"
              << std::setw(12) << "sketch MiB" << "match\n";
    for (std::size_t m = 0;
         m < serial.milestones.size() && match; ++m) {
        const auto &s = serial.milestones[m];
        const auto &p = parallel.milestones[m];
        const bool ok = s.rows == p.rows && s.digest == p.digest;
        match = match && ok;
        std::cout << std::left << std::setw(12) << s.rows << std::hex
                  << std::setw(20) << s.digest << std::dec
                  << std::setw(12) << s.rss_kib / 1024
                  << std::setw(12) << p.rss_kib / 1024
                  << std::setw(12)
                  << s.sketch_bytes / (1024.0 * 1024.0)
                  << (ok ? "yes" : "NO") << '\n';
    }
    std::cout << "\nwall: " << std::fixed << std::setprecision(2)
              << serial.wall_s << " s at 1 thread, "
              << parallel.wall_s << " s at 8 threads\n"
              << (match
                      ? "determinism check PASSED: snapshots are "
                        "byte-identical across drain thread counts\n"
                      : "determinism check FAILED\n");

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << "{\n  \"schema\": \"aiwc-svc-demo-report-v1\",\n"
            << "  \"records\": " << records << ",\n"
            << "  \"tenants\": " << tenants << ",\n"
            << "  \"users\": " << users << ",\n"
            << "  \"digests_match\": " << (match ? "true" : "false")
            << ",\n  \"wall_s_1t\": " << serial.wall_s
            << ",\n  \"wall_s_8t\": " << parallel.wall_s
            << ",\n  \"milestones\": [";
        for (std::size_t m = 0; m < serial.milestones.size(); ++m) {
            const auto &s = serial.milestones[m];
            out << (m ? "," : "") << "\n    {\"rows\": " << s.rows
                << ", \"digest\": \"" << std::hex << s.digest
                << std::dec << "\", \"rss_kib\": " << s.rss_kib
                << ", \"sketch_bytes\": " << s.sketch_bytes << "}";
        }
        out << "\n  ]\n}\n";
        std::cout << "report written to " << json_path << '\n';
    }
    return match ? 0 : 1;
}
