/**
 * @file
 * Quickstart: synthesize a scaled-down Supercloud study, replay it
 * through the scheduler, and print the full characterization report —
 * every figure of the paper as a text table.
 *
 * Usage: quickstart [--stream] [scale] [seed]
 *   --stream  single-pass bounded-memory mode: replay the trace
 *             through aiwc::stream sketches instead of materializing
 *             a Dataset, and print the streaming snapshot
 *   scale     fraction of the 125-day study to synthesize (default 0.05)
 *   seed      RNG seed (default 42)
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "aiwc/core/report_writer.hh"
#include "aiwc/sim/cluster_factory.hh"
#include "aiwc/stream/pipeline.hh"
#include "aiwc/workload/trace_synthesizer.hh"

int
main(int argc, char **argv)
{
    using namespace aiwc;

    bool stream_mode = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stream") == 0)
            stream_mode = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    workload::SynthesisOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
    options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

    std::cout << "== Table I: system under study ==\n";
    sim::printSpec(sim::supercloudSpec(), std::cout);

    const auto profile = workload::CalibrationProfile::supercloud();
    const workload::TraceSynthesizer synthesizer(profile, options);
    std::cout << "\nSynthesizing a " << options.scale
              << "x study: " << synthesizer.scaledUsers() << " users, "
              << synthesizer.scaledNodes() << " nodes...\n";

    if (stream_mode) {
        // Bounded-memory path: no Dataset, every record folds into
        // the sketch pipeline the moment the replay finishes it.
        stream::StreamPipeline pipeline;
        const auto replay = synthesizer.runStreaming(
            [&](core::JobRecord &&rec) { pipeline.ingest(rec); });
        std::cout << "replayed " << replay.records
                  << " jobs without materializing a dataset; sketch "
                     "footprint "
                  << pipeline.sketchBytes() << " B\n\n";
        pipeline.snapshot().print(std::cout);
        return 0;
    }

    const auto result = synthesizer.run();
    std::cout << "jobs: " << result.dataset.size()
              << " (GPU jobs >=30s: " << result.dataset.gpuJobs().size()
              << "), GPU-hours: "
              << static_cast<long>(result.dataset.totalGpuHours())
              << ", backfilled starts: "
              << result.scheduler_stats.backfilled << "\n"
              << "monitoring central store: "
              << result.central_store_bytes / (1024 * 1024)
              << " MiB, peak node spool: "
              << result.peak_spool_bytes / (1024 * 1024) << " MiB\n\n";

    const core::ReportWriter writer(std::cout);
    writer.printFullStudy(result.dataset);
    return 0;
}
