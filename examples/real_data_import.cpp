/**
 * @file
 * The bring-your-own-data path: export a study as the per-job summary
 * CSV (the shape a production Slurm + nvidia-smi pipeline produces),
 * read it back with the CSV loader, and run the characterization on
 * the loaded dataset — proving a real export can drive every
 * fleet-level analysis without the synthesizer.
 *
 * Usage: real_data_import [scale] [seed] [csv_path]
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "aiwc/common/table.hh"
#include "aiwc/core/csv_loader.hh"
#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/power_analyzer.hh"
#include "aiwc/core/service_time_analyzer.hh"
#include "aiwc/workload/trace_synthesizer.hh"

int
main(int argc, char **argv)
{
    using namespace aiwc;

    workload::SynthesisOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.03;
    options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 21;
    const char *path = argc > 3 ? argv[3] : nullptr;

    // Stand-in for "your cluster's export": a synthesized study.
    const auto profile = workload::CalibrationProfile::supercloud();
    const auto result =
        workload::TraceSynthesizer(profile, options).run();

    std::stringstream buffer;
    result.dataset.writeCsv(buffer);
    if (path) {
        std::ofstream file(path);
        file << buffer.str();
        std::cout << "wrote " << result.dataset.size() << " rows to "
                  << path << "\n";
    }
    std::cout << "export: " << result.dataset.size() << " rows, "
              << buffer.str().size() / 1024 << " KiB of CSV\n";

    // The import side: no synthesizer, no profiles — just the CSV.
    const core::Dataset loaded = core::loadDatasetCsv(buffer);
    std::cout << "import: " << loaded.size() << " records, "
              << loaded.uniqueUsers() << " users, "
              << static_cast<long>(loaded.totalGpuHours())
              << " GPU-hours\n\n";

    const auto service = core::ServiceTimeAnalyzer().analyze(loaded);
    const auto lifecycle = core::LifecycleAnalyzer().analyze(loaded);
    const auto power = core::PowerAnalyzer().analyze(loaded);

    TextTable t({"analysis (on imported CSV)", "value"});
    t.addRow({"GPU runtime median",
              formatDuration(service.gpu_runtime_min.quantile(0.5) *
                             60.0)});
    t.addRow({"GPU jobs waiting < 1 min",
              formatPercent(service.gpuWaitUnder(60.0))});
    t.addRow({"mature job share",
              formatPercent(
                  lifecycle.job_mix[static_cast<int>(
                      Lifecycle::Mature)])});
    t.addRow({"IDE GPU-hour share",
              formatPercent(lifecycle.hour_mix[static_cast<int>(
                  Lifecycle::Ide)])});
    t.addRow({"median avg power",
              formatNumber(power.avg_watts.quantile(0.5), 0) + " W"});
    t.addRow({"unimpacted at 150 W cap",
              formatPercent(power.caps[0].unimpacted)});
    t.print(std::cout);

    std::cout << "\nWhat a summary CSV cannot carry: per-GPU balance "
                 "(Fig. 14) and 100 ms phase statistics (Figs. 6-7a) "
                 "need the detailed telemetry path.\n";
    return 0;
}
