/**
 * @file
 * Heterogeneous scenario sweep demo and determinism self-check.
 *
 * Loads a machine-class catalog from a `.scn` file, synthesizes a
 * characterized trace, and sweeps every {machine class x task mix x
 * policy} cell into an energy-vs-SLA frontier report. The report is
 * produced three times — 1-thread sweep over the CSV-parsed dataset,
 * 8-thread sweep over the same dataset, and 8-thread sweep over the
 * binary-trace (.aiwt) round trip of that dataset — and all three must
 * be byte-identical.
 *
 * Usage: scenario_sweep [scale] [scn_path] [machines_per_cell] [--json=path]
 *   scale              synthesis scale             (default 0.02)
 *   scn_path           machine/task class catalog  (default scenarios/fleet.scn)
 *   machines_per_cell  fleet size per sweep cell   (default 6)
 *   --json             write the frontier JSON (CI artifact)
 *
 * Exit status: 0 when all three reports match byte-for-byte, 1 on any
 * mismatch or an unusable scenario file.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "aiwc/common/parallel.hh"
#include "aiwc/core/csv_loader.hh"
#include "aiwc/fmt/trace.hh"
#include "aiwc/scenario/runner.hh"
#include "aiwc/scenario/scn_parser.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace
{

/** FNV-1a 64-bit over the report bytes (printable digest). */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace aiwc;

    double scale = 0.02;
    std::string scn_path = "scenarios/fleet.scn";
    int machines_per_cell = 6;
    std::string json_path;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
            continue;
        }
        if (positional == 0)
            scale = std::atof(arg.c_str());
        else if (positional == 1)
            scn_path = arg;
        else if (positional == 2)
            machines_per_cell = std::atoi(arg.c_str());
        ++positional;
    }

    scenario::ScnParseResult parsed = scenario::parseScnFile(scn_path);
    for (const scenario::ScnDiagnostic &d : parsed.diagnostics)
        std::cerr << scn_path << ':' << d.line << ": " << d.message << '\n';
    if (parsed.spec.machines.empty()) {
        std::cerr << "no machine classes in '" << scn_path << "'\n";
        return 1;
    }
    std::cout << "scenario '" << parsed.spec.name << "': "
              << parsed.spec.machines.size() << " machine classes, "
              << parsed.spec.tasks.size() << " task classes\n";

    // One synthesized study, then the two trust-boundary round trips
    // the sweep must agree across: CSV text and binary .aiwt bytes.
    workload::SynthesisOptions synth_options;
    synth_options.seed = 2022;
    synth_options.scale = scale;
    workload::TraceSynthesizer synth(
        workload::CalibrationProfile::supercloud(), synth_options);
    core::Dataset dataset = synth.run().dataset;

    std::stringstream csv;
    dataset.writeCsv(csv);
    core::Dataset from_csv = core::loadDatasetCsv(csv);
    const std::vector<std::uint8_t> bytes = fmt::encodeTrace(from_csv);
    fmt::TraceLoadResult decoded = fmt::decodeTrace(bytes);
    if (!decoded.ok()) {
        std::cerr << "trace round trip failed: " << decoded.error << '\n';
        return 1;
    }
    std::cout << "dataset: " << from_csv.records().size() << " jobs ("
              << bytes.size() << " trace bytes)\n";

    scenario::SweepOptions sweep_options;
    sweep_options.seed = 2022;
    sweep_options.machines_per_cell = machines_per_cell;
    const scenario::ScenarioRunner runner(parsed.spec, sweep_options);
    const scenario::GreedyPackPolicy greedy;
    const scenario::LoadBalancePolicy balance;
    const scenario::EnergyFirstPolicy energy;
    const std::vector<const scenario::SchedulingPolicy *> policies{
        &greedy, &balance, &energy};
    const std::vector<scenario::TaskMix> mixes =
        scenario::defaultTaskMixes();

    setGlobalThreadCount(1);
    const scenario::FrontierReport report_1t =
        runner.sweep(from_csv, mixes, policies);
    const std::string json_1t = report_1t.toJson();

    setGlobalThreadCount(8);
    const std::string json_8t =
        runner.sweep(from_csv, mixes, policies).toJson();
    const std::string json_bin =
        runner.sweep(decoded.dataset, mixes, policies).toJson();

    report_1t.printTable(std::cout);
    std::cout << "cells: " << report_1t.cells.size() << " ("
              << parsed.spec.machines.size() << " classes x " << mixes.size()
              << " mixes x " << policies.size() << " policies), frontier: "
              << report_1t.frontier.size() << " cells\n";
    std::cout << std::hex;
    std::cout << "digest 1-thread/csv:  " << fnv1a(json_1t) << '\n'
              << "digest 8-thread/csv:  " << fnv1a(json_8t) << '\n'
              << "digest 8-thread/aiwt: " << fnv1a(json_bin) << '\n';
    std::cout << std::dec;

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot open '" << json_path << "'\n";
            return 1;
        }
        os << json_1t << '\n';
        std::cout << "frontier report written to " << json_path << '\n';
    }

    const bool threads_ok = json_1t == json_8t;
    const bool format_ok = json_1t == json_bin;
    std::cout << (threads_ok ? "PASS" : "FAIL")
              << ": report identical at 1 vs 8 threads\n"
              << (format_ok ? "PASS" : "FAIL")
              << ": report identical across CSV vs binary trace\n";
    return threads_ok && format_ok ? 0 : 1;
}
