/**
 * @file
 * Co-location advisor: replays a synthesized trace through the greedy
 * space-sharing matcher (Secs. III & VIII) and reports how many
 * GPU-hours non-contending sharing would reclaim, across interference
 * thresholds.
 *
 * Usage: colocation_advisor_demo [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "aiwc/common/table.hh"
#include "aiwc/opportunity/colocation_advisor.hh"
#include "aiwc/workload/trace_synthesizer.hh"

int
main(int argc, char **argv)
{
    using namespace aiwc;

    workload::SynthesisOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.08;
    options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

    const auto profile = workload::CalibrationProfile::supercloud();
    const auto result =
        workload::TraceSynthesizer(profile, options).run();
    const auto &dataset = result.dataset;
    std::cout << "trace: " << dataset.gpuJobs().size()
              << " GPU jobs >= 30 s, "
              << static_cast<long>(dataset.totalGpuHours())
              << " GPU-hours\n\n";

    std::cout << "-- interference model spot checks --\n";
    const opportunity::InterferenceModel model;
    const auto jobs = dataset.gpuJobsWhere(
        [](const core::JobRecord &j) { return j.gpus == 1; });
    if (jobs.size() >= 2) {
        const auto &a = *jobs[0];
        const auto &b = *jobs[1];
        std::cout << "job " << a.id << " (SM "
                  << formatPercent(a.meanUtilization(Resource::Sm))
                  << ") + job " << b.id << " (SM "
                  << formatPercent(b.meanUtilization(Resource::Sm))
                  << "): fits=" << (model.fits(a, b) ? "yes" : "no")
                  << ", predicted slowdown "
                  << formatNumber(model.pairSlowdown(a, b), 3)
                  << "x\n\n";
    }

    std::cout << "-- greedy co-location replay --\n";
    TextTable t({"max slowdown", "paired jobs", "GPU-hours saved",
                 "mean pair slowdown", "p95 pair slowdown"});
    for (double threshold : {1.02, 1.05, 1.10, 1.20, 1.50}) {
        const opportunity::ColocationAdvisor advisor({}, threshold);
        const auto report = advisor.analyze(dataset);
        t.addRow({formatNumber(threshold, 2) + "x",
                  formatPercent(report.paired_job_fraction),
                  formatPercent(report.gpu_hours_saved_fraction),
                  formatNumber(report.mean_pair_slowdown, 3) + "x",
                  formatNumber(report.pair_slowdown.quantile(0.95), 3) +
                      "x"});
    }
    t.print(std::cout);

    std::cout << "\nReading: because most jobs leave most of the GPU "
                 "idle (Fig. 4), even a strict 5% interference budget "
                 "pairs a large share of single-GPU jobs and reclaims "
                 "a double-digit percentage of GPU-hours.\n";
    return 0;
}
