#include <gtest/gtest.h>

#include "../core/record_builder.hh"

#include "aiwc/opportunity/colocation_advisor.hh"

namespace aiwc::opportunity
{
namespace
{

core::JobRecord
utilRecord(JobId id, double sm, double membw, double memsize,
           double start, double runtime)
{
    core::JobRecord r = core::testing::gpuRecord(id, 0, runtime, 1, sm,
                                                 sm + 0.1);
    r.per_gpu[0] = core::testing::summaryWith(sm, sm + 0.1, membw,
                                              memsize);
    r.start_time = start;
    r.end_time = start + runtime;
    r.submit_time = start;
    return r;
}

TEST(InterferenceModel, ComplementaryPairIsNearlyFree)
{
    const InterferenceModel model;
    const auto compute = utilRecord(1, 0.6, 0.02, 0.3, 0.0, 100.0);
    const auto memory = utilRecord(2, 0.05, 0.4, 0.3, 0.0, 100.0);
    EXPECT_TRUE(model.fits(compute, memory));
    EXPECT_LT(model.pairSlowdown(compute, memory), 1.05);
}

TEST(InterferenceModel, ContendingPairIsPenalized)
{
    const InterferenceModel model;
    const auto a = utilRecord(1, 0.8, 0.1, 0.3, 0.0, 100.0);
    const auto b = utilRecord(2, 0.7, 0.1, 0.3, 0.0, 100.0);
    // Combined SM = 1.5: slowdown 1 + 2*(0.5) = ~2.
    EXPECT_GT(model.pairSlowdown(a, b), 1.8);
}

TEST(InterferenceModel, MemoryCapacityIsAHardConstraint)
{
    const InterferenceModel model;
    const auto a = utilRecord(1, 0.1, 0.02, 0.6, 0.0, 100.0);
    const auto b = utilRecord(2, 0.1, 0.02, 0.5, 0.0, 100.0);
    EXPECT_FALSE(model.fits(a, b));  // 1.1 > 0.95
}

TEST(ColocationAdvisor, PairsOverlappingCompatibleJobs)
{
    core::Dataset ds;
    ds.add(utilRecord(1, 0.2, 0.02, 0.2, 0.0, 3600.0));
    ds.add(utilRecord(2, 0.2, 0.02, 0.2, 600.0, 3600.0));
    const auto report = ColocationAdvisor().analyze(ds);
    EXPECT_EQ(report.gpu_jobs, 2u);
    EXPECT_NEAR(report.paired_job_fraction, 1.0, 1e-12);
    EXPECT_GT(report.gpu_hours_saved_fraction, 0.3);
    EXPECT_GE(report.mean_pair_slowdown, 1.0);
}

TEST(ColocationAdvisor, NonOverlappingJobsCannotPair)
{
    core::Dataset ds;
    ds.add(utilRecord(1, 0.2, 0.02, 0.2, 0.0, 100.0));
    ds.add(utilRecord(2, 0.2, 0.02, 0.2, 5000.0, 100.0));
    const auto report = ColocationAdvisor().analyze(ds);
    EXPECT_DOUBLE_EQ(report.paired_job_fraction, 0.0);
    EXPECT_DOUBLE_EQ(report.gpu_hours_saved_fraction, 0.0);
}

TEST(ColocationAdvisor, HotJobsRejectedByThreshold)
{
    core::Dataset ds;
    ds.add(utilRecord(1, 0.9, 0.1, 0.2, 0.0, 3600.0));
    ds.add(utilRecord(2, 0.9, 0.1, 0.2, 60.0, 3600.0));
    const ColocationAdvisor advisor({}, /*max_slowdown=*/1.10);
    const auto report = advisor.analyze(ds);
    EXPECT_DOUBLE_EQ(report.paired_job_fraction, 0.0);
}

TEST(ColocationAdvisor, MultiGpuJobsExcluded)
{
    core::Dataset ds;
    ds.add(core::testing::gpuRecord(1, 0, 3600.0, 2));
    const auto report = ColocationAdvisor().analyze(ds);
    EXPECT_EQ(report.gpu_jobs, 0u);
}

TEST(ColocationAdvisor, SlowdownsStayUnderThreshold)
{
    core::Dataset ds;
    for (int i = 0; i < 40; ++i) {
        ds.add(utilRecord(static_cast<JobId>(i), 0.05 + 0.01 * (i % 5),
                          0.02, 0.1, 100.0 * i, 5000.0));
    }
    const double threshold = 1.10;
    const ColocationAdvisor advisor({}, threshold);
    const auto report = advisor.analyze(ds);
    EXPECT_GT(report.paired_job_fraction, 0.3);
    EXPECT_LE(report.pair_slowdown.quantile(1.0), threshold + 1e-9);
}

} // namespace
} // namespace aiwc::opportunity
