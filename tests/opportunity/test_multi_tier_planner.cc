#include <gtest/gtest.h>

#include "../core/record_builder.hh"

#include "aiwc/opportunity/multi_tier_planner.hh"

namespace aiwc::opportunity
{
namespace
{

using core::testing::gpuRecord;

core::Dataset
tierDataset()
{
    core::Dataset ds;
    // 4 mature GPU-hours at decent utilization.
    for (int i = 0; i < 4; ++i)
        ds.add(gpuRecord(static_cast<JobId>(i), 0, 3600.0, 1, 0.4, 0.7,
                         TerminalState::Completed));
    // 2 exploratory hours, 2 IDE hours at ~zero utilization.
    ds.add(gpuRecord(10, 1, 2 * 3600.0, 1, 0.15, 0.4,
                     TerminalState::Cancelled));
    ds.add(gpuRecord(11, 2, 2 * 3600.0, 1, 0.0, 0.01,
                     TerminalState::TimedOut));
    return ds;
}

TEST(MultiTierPlanner, ShiftsOnlyNonMatureClasses)
{
    const MultiTierPlanner planner;
    const auto ds = tierDataset();
    for (const auto *job : ds.gpuJobs()) {
        const bool shifted = planner.shouldShift(*job);
        if (job->terminal == TerminalState::Completed)
            EXPECT_FALSE(shifted);
        else
            EXPECT_TRUE(shifted);
    }
}

TEST(MultiTierPlanner, SlowdownFollowsAmdahl)
{
    const MultiTierPlanner planner(/*speed=*/0.5);
    // A job at 0% SM does not slow down at all on a slower GPU.
    const auto idle = gpuRecord(1, 0, 3600.0, 1, 0.0, 0.01);
    EXPECT_NEAR(planner.jobSlowdown(idle), 1.0, 1e-9);
    // A fully GPU-bound job doubles.
    const auto hot = gpuRecord(2, 0, 3600.0, 1, 1.0, 1.0);
    EXPECT_NEAR(planner.jobSlowdown(hot), 2.0, 1e-9);
}

TEST(MultiTierPlanner, PlanQuantifiesTheTrade)
{
    const MultiTierPlanner planner(0.5, 0.35);
    const auto plan = planner.plan(tierDataset());
    EXPECT_NEAR(plan.shifted_hour_fraction, 0.5, 1e-9);  // 4 of 8 hours
    EXPECT_GT(plan.mean_shifted_slowdown, 1.0);
    EXPECT_LT(plan.mean_shifted_slowdown, 1.3);  // low-util jobs
    EXPECT_GT(plan.cost_saving_fraction, 0.2);
    EXPECT_LT(plan.cost_saving_fraction, 0.5);
}

TEST(MultiTierPlanner, NoSavingWhenEconomyCostEqualsPremium)
{
    const MultiTierPlanner planner(1.0, 1.0);
    const auto plan = planner.plan(tierDataset());
    EXPECT_NEAR(plan.cost_saving_fraction, 0.0, 1e-9);
}

TEST(MultiTierPlanner, ShiftedJobsCountedPerClass)
{
    const auto plan = MultiTierPlanner().plan(tierDataset());
    EXPECT_DOUBLE_EQ(
        plan.shifted_jobs[static_cast<int>(Lifecycle::Exploratory)],
        1.0);
    EXPECT_DOUBLE_EQ(plan.shifted_jobs[static_cast<int>(Lifecycle::Ide)],
                     1.0);
    EXPECT_DOUBLE_EQ(
        plan.shifted_jobs[static_cast<int>(Lifecycle::Mature)], 0.0);
}

TEST(MultiTierPlanner, EmptyDataset)
{
    const auto plan = MultiTierPlanner().plan(core::Dataset{});
    EXPECT_DOUBLE_EQ(plan.shifted_hour_fraction, 0.0);
    EXPECT_DOUBLE_EQ(plan.cost_saving_fraction, 0.0);
}

} // namespace
} // namespace aiwc::opportunity
