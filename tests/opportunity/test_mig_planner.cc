#include <gtest/gtest.h>

#include "../core/record_builder.hh"

#include "aiwc/opportunity/mig_planner.hh"

namespace aiwc::opportunity
{
namespace
{

core::JobRecord
utilJob(JobId id, double sm_mean, double sm_max, double start,
        double runtime)
{
    core::JobRecord r =
        core::testing::gpuRecord(id, 0, runtime, 1, sm_mean, sm_max);
    // Keep the memory footprint negligible so the slice count is
    // driven purely by the SM demand under test.
    r.per_gpu[0] = core::testing::summaryWith(sm_mean, sm_max, 0.02,
                                              0.03);
    r.start_time = start;
    r.end_time = start + runtime;
    r.submit_time = start;
    return r;
}

TEST(MigPlanner, SlicesScaleWithDemand)
{
    const MigPlanner planner(7, 1.5);
    EXPECT_EQ(planner.slicesFor(utilJob(1, 0.05, 0.1, 0, 100)), 1);
    EXPECT_EQ(planner.slicesFor(utilJob(2, 0.3, 0.5, 0, 100)), 4);
    EXPECT_EQ(planner.slicesFor(utilJob(3, 0.9, 0.95, 0, 100)), 7);
}

TEST(MigPlanner, SaturatorsGetTheWholeGpu)
{
    const MigPlanner planner;
    auto job = utilJob(1, 0.1, 0.2, 0, 100);
    job.per_gpu[0].sm.add(1.0);  // saturation burst
    EXPECT_EQ(planner.slicesFor(job), 7);
}

TEST(MigPlanner, ConcurrentLightJobsShareOneGpu)
{
    core::Dataset ds;
    // Four concurrent jobs, each needing 1 slice: exclusive baseline
    // needs 4 GPUs, MIG needs 1.
    for (int i = 0; i < 4; ++i)
        ds.add(utilJob(static_cast<JobId>(i), 0.05, 0.1, 0.0, 1000.0));
    const auto plan = MigPlanner().plan(ds);
    EXPECT_EQ(plan.peak_gpus_exclusive, 4);
    EXPECT_EQ(plan.peak_gpus_mig, 1);
    EXPECT_NEAR(plan.gpu_demand_reduction, 0.75, 1e-12);
    EXPECT_EQ(plan.jobs, 4u);
}

TEST(MigPlanner, HeavyJobsGainNothing)
{
    core::Dataset ds;
    for (int i = 0; i < 3; ++i)
        ds.add(utilJob(static_cast<JobId>(i), 0.9, 0.95, 0.0, 1000.0));
    const auto plan = MigPlanner().plan(ds);
    EXPECT_EQ(plan.peak_gpus_mig, plan.peak_gpus_exclusive);
    EXPECT_NEAR(plan.gpu_demand_reduction, 0.0, 1e-12);
}

TEST(MigPlanner, SequentialJobsNeverOverlap)
{
    core::Dataset ds;
    ds.add(utilJob(1, 0.05, 0.1, 0.0, 100.0));
    ds.add(utilJob(2, 0.05, 0.1, 200.0, 100.0));
    const auto plan = MigPlanner().plan(ds);
    EXPECT_EQ(plan.peak_gpus_exclusive, 1);
    EXPECT_EQ(plan.peak_gpus_mig, 1);
}

TEST(MigPlanner, RepartitionEventsCounted)
{
    core::Dataset ds;
    // Second job lands on the first job's GPU -> one repartition.
    ds.add(utilJob(1, 0.05, 0.1, 0.0, 1000.0));
    ds.add(utilJob(2, 0.05, 0.1, 100.0, 1000.0));
    const auto plan = MigPlanner().plan(ds);
    EXPECT_EQ(plan.repartition_events, 1u);
    EXPECT_GT(plan.reconfig_overhead_hours, 0.0);
}

TEST(MigPlanner, MultiGpuJobsExcluded)
{
    core::Dataset ds;
    ds.add(core::testing::gpuRecord(1, 0, 1000.0, 2));
    const auto plan = MigPlanner().plan(ds);
    EXPECT_EQ(plan.jobs, 0u);
}

TEST(MigPlanner, EmptyDataset)
{
    const auto plan = MigPlanner().plan(core::Dataset{});
    EXPECT_EQ(plan.jobs, 0u);
    EXPECT_DOUBLE_EQ(plan.gpu_demand_reduction, 0.0);
}

// Property sweep: slice counts are monotone in mean SM utilization.
class MigMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(MigMonotone, SlicesMonotoneInDemand)
{
    const MigPlanner planner;
    const double sm = GetParam();
    const int s1 = planner.slicesFor(utilJob(1, sm, sm + 0.02, 0, 100));
    const int s2 =
        planner.slicesFor(utilJob(2, sm + 0.2, sm + 0.22, 0, 100));
    EXPECT_LE(s1, s2);
}

INSTANTIATE_TEST_SUITE_P(Demands, MigMonotone,
                         ::testing::Values(0.05, 0.2, 0.4, 0.6));

} // namespace
} // namespace aiwc::opportunity
