#include <gtest/gtest.h>

#include "../core/record_builder.hh"

#include "aiwc/opportunity/power_cap_planner.hh"

namespace aiwc::opportunity
{
namespace
{

core::JobRecord
powerRecord(JobId id, double avg_w, double max_w, double hours = 1.0)
{
    core::JobRecord r = core::testing::gpuRecord(id, 0, hours * 3600.0);
    r.per_gpu[0] = core::testing::summaryWith(0.2, 0.5, 0.02, 0.1,
                                              avg_w, max_w);
    return r;
}

TEST(PowerCapPlanner, UnimpactedJobHasUnitSlowdown)
{
    const PowerCapPlanner planner;
    EXPECT_DOUBLE_EQ(planner.jobSlowdown(powerRecord(1, 40.0, 100.0),
                                         150.0),
                     1.0);
}

TEST(PowerCapPlanner, PersistentThrottlingScalesWithAvg)
{
    const PowerCapPlanner planner;
    EXPECT_NEAR(planner.jobSlowdown(powerRecord(1, 300.0, 300.0),
                                    150.0),
                2.0, 1e-9);
}

TEST(PowerCapPlanner, BurstThrottlingIsMild)
{
    const PowerCapPlanner planner(300.0, 0.15);
    const double s =
        planner.jobSlowdown(powerRecord(1, 100.0, 225.0), 150.0);
    EXPECT_GT(s, 1.0);
    EXPECT_LE(s, 1.15);
}

TEST(PowerCapPlanner, PlanAggregatesImpactFractions)
{
    core::Dataset ds;
    ds.add(powerRecord(1, 40.0, 100.0));
    ds.add(powerRecord(2, 60.0, 180.0));
    ds.add(powerRecord(3, 170.0, 280.0));
    ds.add(powerRecord(4, 30.0, 80.0));
    const auto plans = PowerCapPlanner().plan(ds, {150.0});
    ASSERT_EQ(plans.size(), 1u);
    const auto &p = plans[0];
    EXPECT_NEAR(p.unimpacted, 0.5, 1e-12);
    EXPECT_NEAR(p.impacted_by_avg, 0.25, 1e-12);
    EXPECT_NEAR(p.gpu_multiplier, 2.0, 1e-12);
    EXPECT_GE(p.mean_slowdown, 1.0);
}

TEST(PowerCapPlanner, ThroughputGainPositiveForLowPowerFleet)
{
    // The paper's finding: most jobs draw so little that capping at
    // 150 W and doubling the GPUs is a clear throughput win.
    core::Dataset ds;
    for (int i = 0; i < 30; ++i)
        ds.add(powerRecord(static_cast<JobId>(i), 45.0, 87.0));
    const auto plans = PowerCapPlanner().plan(ds, {150.0});
    EXPECT_NEAR(plans[0].throughput_gain, 1.0, 0.05);  // ~2x GPUs, ~no slowdown
}

TEST(PowerCapPlanner, GainShrinksAtTighterCaps)
{
    core::Dataset ds;
    for (int i = 0; i < 30; ++i)
        ds.add(powerRecord(static_cast<JobId>(i), 140.0, 250.0));
    const auto plans = PowerCapPlanner().plan(ds, {100.0, 200.0});
    // At 100 W every job is persistently throttled 1.4x while GPUs
    // triple: gain exists but per-job slowdown is real.
    EXPECT_GT(plans[0].mean_slowdown, plans[1].mean_slowdown);
}

TEST(PowerCapPlanner, WeightedSlowdownUsesGpuHours)
{
    core::Dataset ds;
    ds.add(powerRecord(1, 300.0, 300.0, /*hours=*/10.0));  // heavy, slow
    ds.add(powerRecord(2, 40.0, 60.0, /*hours=*/0.1));     // light, fine
    const auto plans = PowerCapPlanner().plan(ds, {150.0});
    EXPECT_GT(plans[0].weighted_slowdown, plans[0].mean_slowdown);
}

} // namespace
} // namespace aiwc::opportunity
