#include <gtest/gtest.h>

#include "../core/record_builder.hh"

#include "aiwc/opportunity/checkpoint_planner.hh"

namespace aiwc::opportunity
{
namespace
{

using core::testing::gpuRecord;

TEST(CheckpointPlanner, StateLossClassification)
{
    EXPECT_TRUE(CheckpointPlanner::losesState(gpuRecord(
        1, 0, 100.0, 1, 0.2, 0.5, TerminalState::Failed)));
    EXPECT_TRUE(CheckpointPlanner::losesState(gpuRecord(
        2, 0, 100.0, 1, 0.2, 0.5, TerminalState::TimedOut)));
    EXPECT_TRUE(CheckpointPlanner::losesState(gpuRecord(
        3, 0, 100.0, 1, 0.2, 0.5, TerminalState::NodeFailure)));
    EXPECT_FALSE(CheckpointPlanner::losesState(gpuRecord(
        4, 0, 100.0, 1, 0.2, 0.5, TerminalState::Completed)));
    EXPECT_FALSE(CheckpointPlanner::losesState(gpuRecord(
        5, 0, 100.0, 1, 0.2, 0.5, TerminalState::Cancelled)));
}

TEST(CheckpointPlanner, BaselineLossEqualsStateLosingHours)
{
    core::Dataset ds;
    ds.add(gpuRecord(1, 0, 3600.0, 1, 0.2, 0.5,
                     TerminalState::Failed));  // 1 GPU-hour lost
    ds.add(gpuRecord(2, 0, 3600.0, 1, 0.2, 0.5,
                     TerminalState::Completed));
    const auto plan =
        CheckpointPlanner().evaluate(ds, 1800.0, 0.0);
    EXPECT_NEAR(plan.lost_hours_baseline, 1.0, 1e-9);
    // With 30-min checkpoints, only ~15 min is lost.
    EXPECT_NEAR(plan.lost_hours_with_ckpt, 0.25, 1e-9);
    EXPECT_DOUBLE_EQ(plan.overhead_hours, 0.0);
    EXPECT_NEAR(plan.net_saving_fraction, 0.75 / 2.0, 1e-9);
}

TEST(CheckpointPlanner, OverheadChargedToEveryJob)
{
    core::Dataset ds;
    ds.add(gpuRecord(1, 0, 3600.0, 2, 0.2, 0.5,
                     TerminalState::Completed));
    // 2 GPUs x 1 checkpoint x 36 s = 72 GPU-seconds = 0.02 h.
    const auto plan =
        CheckpointPlanner().evaluate(ds, 1800.0, 36.0);
    EXPECT_NEAR(plan.overhead_hours, 0.02, 1e-9);
    EXPECT_LT(plan.net_saving_fraction, 0.0);  // nothing to recover
}

TEST(CheckpointPlanner, ShortJobLossCappedByRuntime)
{
    core::Dataset ds;
    ds.add(gpuRecord(1, 0, 120.0, 1, 0.2, 0.5,
                     TerminalState::Failed));  // 2-min crash
    const auto plan =
        CheckpointPlanner().evaluate(ds, 3600.0, 0.0);
    // interval/2 (30 min) exceeds the runtime: everything is lost,
    // and checkpointing cannot help this job.
    EXPECT_NEAR(plan.lost_hours_with_ckpt, plan.lost_hours_baseline,
                1e-9);
}

TEST(CheckpointPlanner, SweepTradesResidualAgainstOverhead)
{
    core::Dataset ds;
    for (int i = 0; i < 10; ++i) {
        ds.add(gpuRecord(static_cast<JobId>(i), 0, 6.0 * 3600.0, 1,
                         0.2, 0.5,
                         i < 4 ? TerminalState::TimedOut
                               : TerminalState::Completed));
    }
    const auto plans = CheckpointPlanner().sweep(
        ds, {600.0, 3600.0, 14400.0}, 20.0);
    ASSERT_EQ(plans.size(), 3u);
    // Shorter intervals lose less residual work but write more.
    EXPECT_LT(plans[0].lost_hours_with_ckpt,
              plans[2].lost_hours_with_ckpt);
    EXPECT_GT(plans[0].overhead_hours, plans[2].overhead_hours);
    // With 40% of hours in timeouts, some policy is clearly positive.
    bool any_positive = false;
    for (const auto &p : plans)
        any_positive = any_positive || p.net_saving_fraction > 0.05;
    EXPECT_TRUE(any_positive);
}

TEST(CheckpointPlanner, EmptyDataset)
{
    const auto plan =
        CheckpointPlanner().evaluate(core::Dataset{}, 1800.0, 20.0);
    EXPECT_DOUBLE_EQ(plan.lost_hours_baseline, 0.0);
    EXPECT_DOUBLE_EQ(plan.net_saving_fraction, 0.0);
}

} // namespace
} // namespace aiwc::opportunity
