#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "aiwc/base/check.hh"
#include "aiwc/sim/simulation.hh"

namespace aiwc::sim
{
namespace
{

TEST(Simulation, ClockStartsAtZero)
{
    Simulation sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulation, ClockAdvancesBeforeCallbackRuns)
{
    // Regression test: callbacks must observe their own fire time as
    // now(), not the previous event's time. (This bug once produced
    // negative queue waits in the scheduler.)
    Simulation sim;
    std::vector<Seconds> observed;
    sim.at(5.0, [&] { observed.push_back(sim.now()); });
    sim.at(10.0, [&] { observed.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(observed, (std::vector<Seconds>{5.0, 10.0}));
}

TEST(Simulation, AfterSchedulesRelativeToNow)
{
    Simulation sim;
    Seconds fired_at = -1.0;
    sim.at(3.0, [&] {
        sim.after(2.0, [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, RunReturnsEventCount)
{
    Simulation sim;
    sim.at(1.0, [] {});
    sim.at(2.0, [] {});
    EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulation, RunUntilStopsAtHorizon)
{
    Simulation sim;
    int fired = 0;
    sim.at(1.0, [&] { ++fired; });
    sim.at(2.0, [&] { ++fired; });
    sim.at(10.0, [&] { ++fired; });
    const std::size_t n = sim.runUntil(5.0);
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilOnEmptyAdvancesClock)
{
    Simulation sim;
    sim.runUntil(42.0);
    EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulation, CancelScheduledEvent)
{
    Simulation sim;
    bool fired = false;
    const EventId id = sim.at(1.0, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulation, RunUntilHorizonExactlyAtNextEventFiresIt)
{
    // Boundary contract: an event AT the horizon belongs to the run.
    Simulation sim;
    int fired = 0;
    sim.at(5.0, [&] { ++fired; });
    sim.at(5.0, [&] { ++fired; });
    sim.at(5.0 + 1e-9, [&] { ++fired; });
    EXPECT_EQ(sim.runUntil(5.0), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(SimulationContract, SchedulingIntoThePastFails)
{
    ScopedCheckFailHandler guard;
    Simulation sim;
    sim.at(10.0, [] {});
    sim.run();
    ASSERT_DOUBLE_EQ(sim.now(), 10.0);
    EXPECT_THROW(sim.at(9.999, [] {}), ContractViolation);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(SimulationContract, NegativeDelayFails)
{
    ScopedCheckFailHandler guard;
    Simulation sim;
    EXPECT_THROW(sim.after(-0.5, [] {}), ContractViolation);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(SimulationContract, NonFiniteTimesFail)
{
    ScopedCheckFailHandler guard;
    Simulation sim;
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(sim.at(nan, [] {}), ContractViolation);
    EXPECT_THROW(sim.after(nan, [] {}), ContractViolation);
    EXPECT_THROW(sim.at(inf, [] {}), ContractViolation);
    EXPECT_THROW(sim.after(inf, [] {}), ContractViolation);
    EXPECT_THROW(sim.runUntil(nan), ContractViolation);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulation, ChainedSelfScheduling)
{
    // A classic periodic tick that reschedules itself five times.
    Simulation sim;
    int ticks = 0;
    std::function<void()> tick = [&] {
        ++ticks;
        if (ticks < 5)
            sim.after(10.0, tick);
    };
    sim.after(10.0, tick);
    sim.run();
    EXPECT_EQ(ticks, 5);
    EXPECT_DOUBLE_EQ(sim.now(), 50.0);
}

} // namespace
} // namespace aiwc::sim
