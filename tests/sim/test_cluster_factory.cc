#include <gtest/gtest.h>

#include <sstream>

#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::sim
{
namespace
{

TEST(ClusterFactory, MiniKeepsNodeShape)
{
    const ClusterSpec mini = miniSupercloudSpec(10);
    const ClusterSpec full = supercloudSpec();
    EXPECT_EQ(mini.nodes, 10);
    EXPECT_EQ(mini.node.cpuSlots(), full.node.cpuSlots());
    EXPECT_EQ(mini.node.gpus, full.node.gpus);
    EXPECT_DOUBLE_EQ(mini.node.ram_gb, full.node.ram_gb);
}

TEST(ClusterFactory, EconomyTierIsSlowerAndCheaper)
{
    const GpuSpec economy = economyGpuSpec(0.5);
    const GpuSpec premium = supercloudSpec().node.gpu;
    EXPECT_LT(economy.relative_speed, premium.relative_speed);
    EXPECT_LT(economy.tdp_watts, premium.tdp_watts);
    EXPECT_LT(economy.memory_gb, premium.memory_gb);
}

TEST(ClusterFactory, PrintSpecContainsTableOneRows)
{
    std::ostringstream os;
    printSpec(supercloudSpec(), os);
    const std::string out = os.str();
    EXPECT_NE(out.find("224"), std::string::npos);   // nodes
    EXPECT_NE(out.find("448"), std::string::npos);   // GPUs
    EXPECT_NE(out.find("8960"), std::string::npos);  // cores
    EXPECT_NE(out.find("V100"), std::string::npos);
    EXPECT_NE(out.find("Omnipath"), std::string::npos);
    EXPECT_NE(out.find("873"), std::string::npos);   // shared storage
}

} // namespace
} // namespace aiwc::sim
