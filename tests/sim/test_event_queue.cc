#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aiwc/base/check.hh"
#include "aiwc/sim/event_queue.hh"

namespace aiwc::sim
{
namespace
{

TEST(EventQueue, EmptyByDefault)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifoByScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReturnsFireTime)
{
    EventQueue q;
    q.schedule(4.5, [] {});
    EXPECT_DOUBLE_EQ(q.nextTime(), 4.5);
    EXPECT_DOUBLE_EQ(q.popAndRun(), 4.5);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelFiredIdIsNoop)
{
    EventQueue q;
    const EventId id = q.schedule(1.0, [] {});
    q.popAndRun();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(1); });
    const EventId mid = q.schedule(2.0, [&] { order.push_back(2); });
    q.schedule(3.0, [&] { order.push_back(3); });
    q.cancel(mid);
    EXPECT_EQ(q.size(), 2u);
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, EventsScheduledFromCallbacksRun)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] {
        order.push_back(1);
        q.schedule(2.0, [&] { order.push_back(2); });
    });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    const EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.popAndRun();
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelFiredThenUnknownThenDoubleCancel)
{
    EventQueue q;
    const EventId a = q.schedule(1.0, [] {});
    const EventId b = q.schedule(2.0, [] {});
    q.popAndRun();
    EXPECT_FALSE(q.cancel(a));       // already fired
    EXPECT_TRUE(q.cancel(b));        // live
    EXPECT_FALSE(q.cancel(b));       // double cancel
    EXPECT_FALSE(q.cancel(999999));  // never existed
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesStayFifoAcrossInterleavedCancellation)
{
    // Cancellation must not disturb insertion order among equal
    // timestamps — the property the 125-day replay's determinism
    // rests on.
    EventQueue q;
    std::vector<int> order;
    std::vector<EventId> ids;
    ids.reserve(6);
    for (int i = 0; i < 6; ++i)
        ids.push_back(q.schedule(7.0, [&order, i] { order.push_back(i); }));
    q.cancel(ids[1]);
    q.cancel(ids[4]);
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5}));
}

TEST(EventQueue, TieBetweenOldAndNewEventsIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5.0, [&] { order.push_back(0); });
    q.schedule(1.0, [&] {
        order.push_back(-1);
        // Scheduled later, same timestamp as an existing event: the
        // existing one keeps its earlier sequence number.
        q.schedule(5.0, [&] { order.push_back(1); });
    });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{-1, 0, 1}));
}

TEST(EventQueueContract, RejectsNonFiniteTimes)
{
    ScopedCheckFailHandler guard;
    EventQueue q;
    EXPECT_THROW(q.schedule(std::nan(""), [] {}), ContractViolation);
    EXPECT_THROW(q.schedule(INFINITY, [] {}), ContractViolation);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueContract, RejectsNullCallback)
{
    ScopedCheckFailHandler guard;
    EventQueue q;
    EXPECT_THROW(q.schedule(1.0, nullptr), ContractViolation);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueContract, PopOnEmptyQueueFails)
{
    ScopedCheckFailHandler guard;
    EventQueue q;
    EXPECT_THROW(q.popAndRun(), ContractViolation);
    EXPECT_THROW(q.nextTime(), ContractViolation);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    std::vector<double> times;
    for (int i = 0; i < 2000; ++i) {
        const double t = static_cast<double>((i * 7919) % 1000);
        q.schedule(t, [&times, t] { times.push_back(t); });
    }
    while (!q.empty())
        q.popAndRun();
    ASSERT_EQ(times.size(), 2000u);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_LE(times[i - 1], times[i]);
}

} // namespace
} // namespace aiwc::sim
