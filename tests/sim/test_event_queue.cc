#include <gtest/gtest.h>

#include <vector>

#include "aiwc/sim/event_queue.hh"

namespace aiwc::sim
{
namespace
{

TEST(EventQueue, EmptyByDefault)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifoByScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopReturnsFireTime)
{
    EventQueue q;
    q.schedule(4.5, [] {});
    EXPECT_DOUBLE_EQ(q.nextTime(), 4.5);
    EXPECT_DOUBLE_EQ(q.popAndRun(), 4.5);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelFiredIdIsNoop)
{
    EventQueue q;
    const EventId id = q.schedule(1.0, [] {});
    q.popAndRun();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(1); });
    const EventId mid = q.schedule(2.0, [&] { order.push_back(2); });
    q.schedule(3.0, [&] { order.push_back(3); });
    q.cancel(mid);
    EXPECT_EQ(q.size(), 2u);
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, EventsScheduledFromCallbacksRun)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] {
        order.push_back(1);
        q.schedule(2.0, [&] { order.push_back(2); });
    });
    while (!q.empty())
        q.popAndRun();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue q;
    const EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.popAndRun();
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    std::vector<double> times;
    for (int i = 0; i < 2000; ++i) {
        const double t = static_cast<double>((i * 7919) % 1000);
        q.schedule(t, [&times, t] { times.push_back(t); });
    }
    while (!q.empty())
        q.popAndRun();
    ASSERT_EQ(times.size(), 2000u);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_LE(times[i - 1], times[i]);
}

} // namespace
} // namespace aiwc::sim
