#include <gtest/gtest.h>

#include "aiwc/sim/cluster_factory.hh"
#include "aiwc/sim/resources.hh"

namespace aiwc::sim
{
namespace
{

ClusterSpec
tinySpec(int nodes = 2)
{
    return miniSupercloudSpec(nodes);
}

TEST(NodeSpec, CpuSlotsCountHyperthreads)
{
    const NodeSpec spec = supercloudSpec().node;
    EXPECT_EQ(spec.cpuSlots(), 80);  // 2 x 20 x 2
}

TEST(Gpu, AssignReleaseCycle)
{
    const GpuSpec spec;
    Gpu gpu(7, 3, spec);
    EXPECT_FALSE(gpu.busy());
    gpu.assign(42);
    EXPECT_TRUE(gpu.busy());
    EXPECT_EQ(gpu.job(), 42u);
    gpu.release();
    EXPECT_FALSE(gpu.busy());
}

TEST(Node, StartsFullyFree)
{
    Cluster cluster(tinySpec());
    const Node &node = cluster.node(0);
    EXPECT_EQ(node.freeCpuSlots(), 80);
    EXPECT_DOUBLE_EQ(node.freeRamGb(), 384.0);
    EXPECT_EQ(node.freeGpus(), 2);
    EXPECT_EQ(node.residentJobs(), 0);
}

TEST(Node, CpuAllocationAccounting)
{
    Cluster cluster(tinySpec());
    Node &node = cluster.node(0);
    EXPECT_TRUE(node.fitsCpu(40, 100.0));
    node.allocateCpu(40, 100.0);
    EXPECT_EQ(node.freeCpuSlots(), 40);
    EXPECT_DOUBLE_EQ(node.freeRamGb(), 284.0);
    EXPECT_EQ(node.residentJobs(), 1);
    EXPECT_FALSE(node.fitsCpu(41, 1.0));
    EXPECT_FALSE(node.fitsCpu(1, 300.0));
    node.releaseCpu(40, 100.0);
    EXPECT_EQ(node.freeCpuSlots(), 80);
    EXPECT_EQ(node.residentJobs(), 0);
}

TEST(Node, GpuAllocationReturnsGlobalIds)
{
    Cluster cluster(tinySpec());
    Node &node1 = cluster.node(1);
    const auto gpus = node1.allocateGpus(9, 2);
    ASSERT_EQ(gpus.size(), 2u);
    // Node 1 owns global GPUs 2 and 3.
    EXPECT_EQ(gpus[0], 2u);
    EXPECT_EQ(gpus[1], 3u);
    EXPECT_EQ(node1.freeGpus(), 0);
    node1.releaseGpu(gpus[0]);
    EXPECT_EQ(node1.freeGpus(), 1);
    node1.releaseGpu(gpus[1]);
    EXPECT_EQ(node1.freeGpus(), 2);
}

TEST(Cluster, AggregateCapacities)
{
    Cluster cluster(tinySpec(3));
    EXPECT_EQ(cluster.numNodes(), 3u);
    EXPECT_EQ(cluster.freeGpus(), 6);
    EXPECT_EQ(cluster.freeCpuSlots(), 240);
}

TEST(Cluster, NodeOfGpuMapsCorrectly)
{
    Cluster cluster(tinySpec(4));
    EXPECT_EQ(cluster.nodeOfGpu(0), 0u);
    EXPECT_EQ(cluster.nodeOfGpu(1), 0u);
    EXPECT_EQ(cluster.nodeOfGpu(2), 1u);
    EXPECT_EQ(cluster.nodeOfGpu(7), 3u);
}

TEST(ClusterSpec, SupercloudTotalsMatchTableOne)
{
    const ClusterSpec spec = supercloudSpec();
    EXPECT_EQ(spec.nodes, 224);
    EXPECT_EQ(spec.totalGpus(), 448);
    EXPECT_EQ(spec.totalCpuCores(), 8960);
    EXPECT_DOUBLE_EQ(spec.node.ram_gb, 384.0);
    EXPECT_DOUBLE_EQ(spec.node.gpu.memory_gb, 32.0);
    EXPECT_DOUBLE_EQ(spec.node.gpu.tdp_watts, 300.0);
}

} // namespace
} // namespace aiwc::sim
