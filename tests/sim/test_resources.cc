#include <gtest/gtest.h>

#include "aiwc/base/check.hh"
#include "aiwc/sim/cluster_factory.hh"
#include "aiwc/sim/resources.hh"

namespace aiwc::sim
{
namespace
{

ClusterSpec
tinySpec(int nodes = 2)
{
    return miniSupercloudSpec(nodes);
}

TEST(NodeSpec, CpuSlotsCountHyperthreads)
{
    const NodeSpec spec = supercloudSpec().node;
    EXPECT_EQ(spec.cpuSlots(), 80);  // 2 x 20 x 2
}

TEST(Gpu, AssignReleaseCycle)
{
    const GpuSpec spec;
    Gpu gpu(7, 3, spec);
    EXPECT_FALSE(gpu.busy());
    gpu.assign(42);
    EXPECT_TRUE(gpu.busy());
    EXPECT_EQ(gpu.job(), 42u);
    gpu.release();
    EXPECT_FALSE(gpu.busy());
}

TEST(Node, StartsFullyFree)
{
    Cluster cluster(tinySpec());
    const Node &node = cluster.node(0);
    EXPECT_EQ(node.freeCpuSlots(), 80);
    EXPECT_DOUBLE_EQ(node.freeRamGb(), 384.0);
    EXPECT_EQ(node.freeGpus(), 2);
    EXPECT_EQ(node.residentJobs(), 0);
}

TEST(Node, CpuAllocationAccounting)
{
    Cluster cluster(tinySpec());
    Node &node = cluster.node(0);
    EXPECT_TRUE(node.fitsCpu(40, 100.0));
    node.allocateCpu(40, 100.0);
    EXPECT_EQ(node.freeCpuSlots(), 40);
    EXPECT_DOUBLE_EQ(node.freeRamGb(), 284.0);
    EXPECT_EQ(node.residentJobs(), 1);
    EXPECT_FALSE(node.fitsCpu(41, 1.0));
    EXPECT_FALSE(node.fitsCpu(1, 300.0));
    node.releaseCpu(40, 100.0);
    EXPECT_EQ(node.freeCpuSlots(), 80);
    EXPECT_EQ(node.residentJobs(), 0);
}

TEST(Node, GpuAllocationReturnsGlobalIds)
{
    Cluster cluster(tinySpec());
    Node &node1 = cluster.node(1);
    const auto gpus = node1.allocateGpus(9, 2);
    ASSERT_EQ(gpus.size(), 2u);
    // Node 1 owns global GPUs 2 and 3.
    EXPECT_EQ(gpus[0], 2u);
    EXPECT_EQ(gpus[1], 3u);
    EXPECT_EQ(node1.freeGpus(), 0);
    node1.releaseGpu(gpus[0]);
    EXPECT_EQ(node1.freeGpus(), 1);
    node1.releaseGpu(gpus[1]);
    EXPECT_EQ(node1.freeGpus(), 2);
}

TEST(Cluster, AggregateCapacities)
{
    Cluster cluster(tinySpec(3));
    EXPECT_EQ(cluster.numNodes(), 3u);
    EXPECT_EQ(cluster.freeGpus(), 6);
    EXPECT_EQ(cluster.freeCpuSlots(), 240);
}

TEST(Cluster, NodeOfGpuMapsCorrectly)
{
    Cluster cluster(tinySpec(4));
    EXPECT_EQ(cluster.nodeOfGpu(0), 0u);
    EXPECT_EQ(cluster.nodeOfGpu(1), 0u);
    EXPECT_EQ(cluster.nodeOfGpu(2), 1u);
    EXPECT_EQ(cluster.nodeOfGpu(7), 3u);
}

// ---------------------------------------------------------------------
// Contract-violation regression tests: every resource-accounting misuse
// path must fail loudly through the overridable AIWC_CHECK handler and
// leave the pre-misuse state intact (check-before-mutate).
// ---------------------------------------------------------------------

TEST(GpuContract, DoubleAssignFails)
{
    ScopedCheckFailHandler guard;
    const GpuSpec spec;
    Gpu gpu(0, 0, spec);
    gpu.assign(11);
    EXPECT_THROW(gpu.assign(12), ContractViolation);
    // The original owner survives the rejected double-assign.
    EXPECT_EQ(gpu.job(), 11u);
}

TEST(GpuContract, AssignInvalidJobIdFails)
{
    ScopedCheckFailHandler guard;
    const GpuSpec spec;
    Gpu gpu(0, 0, spec);
    EXPECT_THROW(gpu.assign(invalid_id), ContractViolation);
    EXPECT_FALSE(gpu.busy());
}

TEST(GpuContract, ReleaseIdleGpuFails)
{
    ScopedCheckFailHandler guard;
    const GpuSpec spec;
    Gpu gpu(0, 0, spec);
    EXPECT_THROW(gpu.release(), ContractViolation);
    gpu.assign(5);
    gpu.release();
    // Second release of the same GPU: the classic double-release.
    EXPECT_THROW(gpu.release(), ContractViolation);
}

TEST(NodeContract, CpuSlotOverReleaseFails)
{
    ScopedCheckFailHandler guard;
    Cluster cluster(tinySpec());
    Node &node = cluster.node(0);
    node.allocateCpu(10, 16.0);
    // Returning more slots than were ever taken must not leak capacity.
    EXPECT_THROW(node.releaseCpu(80, 16.0), ContractViolation);
    EXPECT_EQ(node.freeCpuSlots(), 70);
    EXPECT_EQ(node.residentJobs(), 1);
    node.releaseCpu(10, 16.0);
    EXPECT_EQ(node.freeCpuSlots(), 80);
}

TEST(NodeContract, RamOverReleaseFails)
{
    ScopedCheckFailHandler guard;
    Cluster cluster(tinySpec());
    Node &node = cluster.node(0);
    node.allocateCpu(10, 16.0);
    EXPECT_THROW(node.releaseCpu(10, 384.0), ContractViolation);
    EXPECT_DOUBLE_EQ(node.freeRamGb(), 368.0);
    node.releaseCpu(10, 16.0);
}

TEST(NodeContract, ReleaseWithNoResidentJobsFails)
{
    ScopedCheckFailHandler guard;
    Cluster cluster(tinySpec());
    Node &node = cluster.node(0);
    EXPECT_THROW(node.releaseCpu(1, 1.0), ContractViolation);
    EXPECT_EQ(node.residentJobs(), 0);
    EXPECT_EQ(node.freeCpuSlots(), 80);
}

TEST(NodeContract, NegativeAllocationAndReleaseFail)
{
    ScopedCheckFailHandler guard;
    Cluster cluster(tinySpec());
    Node &node = cluster.node(0);
    EXPECT_THROW(node.allocateCpu(-1, 1.0), ContractViolation);
    EXPECT_THROW(node.allocateCpu(1, -1.0), ContractViolation);
    node.allocateCpu(4, 8.0);
    EXPECT_THROW(node.releaseCpu(-1, 0.0), ContractViolation);
    EXPECT_THROW(node.releaseCpu(0, -1.0), ContractViolation);
    node.releaseCpu(4, 8.0);
}

TEST(NodeContract, CpuOverAllocationFails)
{
    ScopedCheckFailHandler guard;
    Cluster cluster(tinySpec());
    Node &node = cluster.node(0);
    node.allocateCpu(80, 100.0);
    EXPECT_THROW(node.allocateCpu(1, 1.0), ContractViolation);
    EXPECT_EQ(node.freeCpuSlots(), 0);
    EXPECT_EQ(node.residentJobs(), 1);
}

TEST(NodeContract, ReleaseUnknownGpuIdFails)
{
    ScopedCheckFailHandler guard;
    Cluster cluster(tinySpec());
    Node &node0 = cluster.node(0);
    // Global GPU 2 lives on node 1, not node 0.
    EXPECT_THROW(node0.releaseGpu(2), ContractViolation);
    EXPECT_THROW(node0.releaseGpu(999), ContractViolation);
    EXPECT_EQ(node0.freeGpus(), 2);
}

TEST(NodeContract, GpuOverAllocationFails)
{
    ScopedCheckFailHandler guard;
    Cluster cluster(tinySpec());
    Node &node = cluster.node(0);
    EXPECT_THROW(node.allocateGpus(3, 3), ContractViolation);
    EXPECT_THROW(node.allocateGpus(3, -1), ContractViolation);
    EXPECT_EQ(node.freeGpus(), 2);
}

TEST(ClusterContract, NodeIdOutOfRangeFails)
{
    ScopedCheckFailHandler guard;
    Cluster cluster(tinySpec());
    EXPECT_THROW(cluster.node(2), ContractViolation);
    EXPECT_THROW(cluster.nodeOfGpu(99), ContractViolation);
}

TEST(ClusterAudit, FreshClusterPassesAudit)
{
    Cluster cluster(tinySpec(4));
    cluster.auditInvariants();
    SUCCEED();
}

TEST(ClusterAudit, BusyClusterPassesAudit)
{
    Cluster cluster(tinySpec(4));
    cluster.node(0).allocateCpu(8, 16.0);
    cluster.node(0).allocateGpus(1, 2);
    cluster.node(2).allocateCpu(80, 384.0);
    cluster.auditInvariants();
    cluster.node(0).releaseGpu(0);
    cluster.node(0).releaseGpu(1);
    cluster.node(0).releaseCpu(8, 16.0);
    cluster.node(2).releaseCpu(80, 384.0);
    cluster.auditInvariants();
    EXPECT_EQ(cluster.freeGpus(), 8);
}

TEST(ClusterAudit, DetectsBusyGpuOnEmptyNode)
{
    ScopedCheckFailHandler guard;
    Cluster cluster(tinySpec());
    // A GPU held with no CPU-side resident job violates the commit
    // protocol (GPU jobs always claim CPU slots too).
    cluster.node(0).gpus()[0].assign(42);
    EXPECT_THROW(cluster.auditInvariants(), ContractViolation);
}

TEST(ClusterAudit, GpuLookupReturnsMappedGpu)
{
    Cluster cluster(tinySpec(3));
    EXPECT_EQ(cluster.gpu(4).id(), 4u);
    EXPECT_EQ(cluster.gpu(4).node(), 2u);
    ScopedCheckFailHandler guard;
    EXPECT_THROW(cluster.gpu(6), ContractViolation);
}

TEST(ClusterSpec, SupercloudTotalsMatchTableOne)
{
    const ClusterSpec spec = supercloudSpec();
    EXPECT_EQ(spec.nodes, 224);
    EXPECT_EQ(spec.totalGpus(), 448);
    EXPECT_EQ(spec.totalCpuCores(), 8960);
    EXPECT_DOUBLE_EQ(spec.node.ram_gb, 384.0);
    EXPECT_DOUBLE_EQ(spec.node.gpu.memory_gb, 32.0);
    EXPECT_DOUBLE_EQ(spec.node.gpu.tdp_watts, 300.0);
}

} // namespace
} // namespace aiwc::sim
