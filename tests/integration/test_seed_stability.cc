/**
 * @file
 * Seed-stability guards: the variance-control machinery (activity-
 * coupled mix concentration, damped heavy-user traits, scale
 * normalization) exists so that fleet-level statistics do not swing
 * wildly between seeds. These tests lock that property in: across
 * several seeds at a modest scale, the headline mixes must stay
 * inside generous bands.
 */

#include <gtest/gtest.h>

#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/multi_gpu_analyzer.hh"
#include "aiwc/core/utilization_analyzer.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc
{
namespace
{

core::Dataset
traceFor(std::uint64_t seed)
{
    workload::SynthesisOptions options;
    options.scale = 0.06;
    options.seed = seed;
    const auto profile = workload::CalibrationProfile::supercloud();
    return workload::TraceSynthesizer(profile, options).run().dataset;
}

class SeedStability : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedStability, LifecycleMixStaysInBand)
{
    const auto report =
        core::LifecycleAnalyzer().analyze(traceFor(GetParam()));
    EXPECT_NEAR(report.job_mix[static_cast<int>(Lifecycle::Mature)],
                0.595, 0.12);
    EXPECT_NEAR(
        report.job_mix[static_cast<int>(Lifecycle::Exploratory)], 0.18,
        0.10);
    EXPECT_NEAR(
        report.job_mix[static_cast<int>(Lifecycle::Development)], 0.19,
        0.10);
    EXPECT_NEAR(report.job_mix[static_cast<int>(Lifecycle::Ide)], 0.035,
                0.05);
}

TEST_P(SeedStability, SingleGpuShareStaysInBand)
{
    const auto report =
        core::MultiGpuAnalyzer().analyze(traceFor(GetParam()));
    EXPECT_NEAR(report.job_fraction[0], 0.84, 0.12);
}

TEST_P(SeedStability, SmMedianStaysInBand)
{
    const auto report =
        core::UtilizationAnalyzer().analyze(traceFor(GetParam()));
    EXPECT_NEAR(report.sm_pct.quantile(0.5), 14.0, 9.0);
    EXPECT_NEAR(report.fractionAbove(Resource::Sm, 50.0), 0.20, 0.10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStability,
                         ::testing::Values(101u, 202u, 303u));

} // namespace
} // namespace aiwc
