/**
 * @file
 * Calibration fidelity: the whole pipeline (generator -> scheduler ->
 * telemetry -> analyzers) must land near the paper's published numbers
 * at a reduced scale. Tolerances are generous — this is a shape guard,
 * not an exact-match test; EXPERIMENTS.md records the full-scale runs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/multi_gpu_analyzer.hh"
#include "aiwc/core/paper_targets.hh"
#include "aiwc/core/power_analyzer.hh"
#include "aiwc/core/service_time_analyzer.hh"
#include "aiwc/core/user_behavior_analyzer.hh"
#include "aiwc/core/utilization_analyzer.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc
{
namespace
{

const core::Dataset &
dataset()
{
    static const workload::SynthesisResult result = [] {
        workload::SynthesisOptions options;
        options.scale = 0.12;
        options.seed = 1337;
        const auto profile = workload::CalibrationProfile::supercloud();
        return workload::TraceSynthesizer(profile, options).run();
    }();
    return result.dataset;
}

namespace paper = core::paper;

TEST(CalibrationFidelity, RuntimeQuantilesNearFig3a)
{
    const auto report = core::ServiceTimeAnalyzer().analyze(dataset());
    // Log-scale tolerance: within ~2x on a four-decade axis.
    EXPECT_NEAR(std::log(report.gpu_runtime_min.quantile(0.5)),
                std::log(paper::gpu_runtime_p50_min), std::log(1.8));
    EXPECT_NEAR(std::log(report.gpu_runtime_min.quantile(0.25)),
                std::log(paper::gpu_runtime_p25_min), std::log(2.2));
    EXPECT_NEAR(std::log(report.gpu_runtime_min.quantile(0.75)),
                std::log(paper::gpu_runtime_p75_min), std::log(2.2));
    EXPECT_NEAR(std::log(report.cpu_runtime_min.quantile(0.5)),
                std::log(paper::cpu_runtime_p50_min), std::log(1.8));
    // CPU jobs run shorter than GPU jobs (the Fig. 3a headline).
    EXPECT_LT(report.cpu_runtime_min.quantile(0.5),
              report.gpu_runtime_min.quantile(0.5));
}

TEST(CalibrationFidelity, QueueWaitShapeNearFig3b)
{
    const auto report = core::ServiceTimeAnalyzer().analyze(dataset());
    // Most GPU jobs wait under a minute; CPU jobs wait far more.
    EXPECT_GT(report.gpuWaitUnder(60.0), paper::gpu_wait_under_1min_frac);
    EXPECT_GT(report.cpuWaitOver(60.0), 0.35);
    EXPECT_GT(report.cpuWaitOver(60.0),
              1.0 - report.gpuWaitUnder(60.0));
    // >50% of GPU jobs spend <2% of service time queued.
    EXPECT_LT(report.gpu_wait_pct.quantile(0.5),
              paper::gpu_wait_service_pct_median_max);
}

TEST(CalibrationFidelity, UtilizationMediansNearFig4a)
{
    const auto report = core::UtilizationAnalyzer().analyze(dataset());
    EXPECT_NEAR(report.sm_pct.quantile(0.5), paper::sm_util_median_pct,
                7.0);
    EXPECT_NEAR(report.membw_pct.quantile(0.5),
                paper::membw_util_median_pct, 2.5);
    EXPECT_NEAR(report.memsize_pct.quantile(0.5),
                paper::memsize_util_median_pct, 6.5);
    EXPECT_NEAR(report.fractionAbove(Resource::Sm, 50.0),
                paper::sm_over_50_frac, 0.08);
    EXPECT_NEAR(report.fractionAbove(Resource::MemorySize, 50.0),
                paper::memsize_over_50_frac, 0.10);
    EXPECT_LT(report.fractionAbove(Resource::MemoryBw, 50.0), 0.10);
}

TEST(CalibrationFidelity, InterfaceOrderingMatchesFig5)
{
    const auto report =
        core::UtilizationAnalyzer().analyzeByInterface(dataset());
    const auto sm = [&](Interface i) {
        return report.sm[static_cast<std::size_t>(i)].median;
    };
    // "Other" (deep learning) jobs lead; interactive and map-reduce
    // barely touch the GPU.
    EXPECT_GT(sm(Interface::Other), sm(Interface::Interactive));
    EXPECT_GT(sm(Interface::Batch), sm(Interface::Interactive));
    EXPECT_LT(sm(Interface::MapReduce), sm(Interface::Batch));
    // Population fractions.
    EXPECT_NEAR(report.job_fraction[static_cast<std::size_t>(
                    Interface::Batch)],
                paper::batch_job_frac, 0.06);
    EXPECT_NEAR(report.job_fraction[static_cast<std::size_t>(
                    Interface::Interactive)],
                paper::interactive_job_frac, 0.03);
}

TEST(CalibrationFidelity, LifecycleMixNearFig15)
{
    const auto report = core::LifecycleAnalyzer().analyze(dataset());
    EXPECT_NEAR(report.job_mix[static_cast<int>(Lifecycle::Mature)],
                paper::mature_job_frac, 0.08);
    EXPECT_NEAR(
        report.job_mix[static_cast<int>(Lifecycle::Exploratory)],
        paper::exploratory_job_frac, 0.07);
    EXPECT_NEAR(
        report.job_mix[static_cast<int>(Lifecycle::Development)],
        paper::development_job_frac, 0.07);
    EXPECT_NEAR(report.job_mix[static_cast<int>(Lifecycle::Ide)],
                paper::ide_job_frac, 0.03);
    // GPU-hour inversion: mature jobs are 60% of jobs but well under
    // half... of the hours; non-mature classes dominate hours.
    EXPECT_LT(report.hour_mix[static_cast<int>(Lifecycle::Mature)],
              0.60);
    EXPECT_GT(report.hour_mix[static_cast<int>(Lifecycle::Ide)], 0.06);
}

TEST(CalibrationFidelity, ClassUtilizationOrderingMatchesFig16)
{
    const auto report = core::LifecycleAnalyzer().analyze(dataset());
    const auto median = [&](Lifecycle c) {
        return report.sm_pct[static_cast<int>(c)].median;
    };
    EXPECT_GT(median(Lifecycle::Mature), median(Lifecycle::Development));
    EXPECT_GT(median(Lifecycle::Exploratory), median(Lifecycle::Ide));
    EXPECT_LT(median(Lifecycle::Development), 3.0);  // ~0%
    EXPECT_LT(median(Lifecycle::Ide), 3.0);          // ~0%
    EXPECT_NEAR(median(Lifecycle::Mature), paper::mature_sm_median_pct,
                9.0);
}

TEST(CalibrationFidelity, MultiGpuSharesNearFig13)
{
    const auto report = core::MultiGpuAnalyzer().analyze(dataset());
    EXPECT_NEAR(report.job_fraction[0], paper::single_gpu_job_frac,
                0.07);
    const double over2 =
        report.job_fraction[2] + report.job_fraction[3];
    EXPECT_LT(over2, 0.08);
    const double multi_hours = 1.0 - report.hour_fraction[0];
    EXPECT_NEAR(multi_hours, paper::multi_gpu_hour_share, 0.20);
}

TEST(CalibrationFidelity, PowerNearFig9)
{
    const auto report = core::PowerAnalyzer().analyze(dataset());
    EXPECT_NEAR(report.avg_watts.quantile(0.5),
                paper::power_avg_median_w, 15.0);
    EXPECT_NEAR(report.max_watts.quantile(0.5),
                paper::power_max_median_w, 30.0);
    ASSERT_FALSE(report.caps.empty());
    EXPECT_GT(report.caps[0].unimpacted,
              paper::cap150_unimpacted_min_frac);
    EXPECT_LT(report.caps[0].impacted_by_avg,
              paper::cap150_avg_impacted_max_frac);
}

TEST(CalibrationFidelity, UserConcentrationNearSec4)
{
    const auto report = core::UserBehaviorAnalyzer().analyze(dataset());
    EXPECT_NEAR(report.top20_job_share, paper::top20pct_user_job_share,
                0.10);
    EXPECT_GT(report.top5_job_share, 0.25);
    EXPECT_LT(report.top5_job_share, 0.70);
}

} // namespace
} // namespace aiwc
