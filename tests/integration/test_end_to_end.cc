#include <gtest/gtest.h>

#include "aiwc/core/lifecycle_classifier.hh"
#include "aiwc/core/report_writer.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc
{
namespace
{

const workload::SynthesisResult &
sharedTrace()
{
    static const workload::SynthesisResult result = [] {
        workload::SynthesisOptions options;
        options.scale = 0.04;
        options.seed = 20260706;
        const auto profile = workload::CalibrationProfile::supercloud();
        return workload::TraceSynthesizer(profile, options).run();
    }();
    return result;
}

TEST(EndToEnd, EveryJobHasConsistentTimes)
{
    for (const auto &r : sharedTrace().dataset.records()) {
        EXPECT_GE(r.waitTime(), 0.0) << "job " << r.id;
        EXPECT_GT(r.runTime(), 0.0) << "job " << r.id;
        EXPECT_LE(r.runTime(), r.walltime_limit + 1e-6) << "job " << r.id;
    }
}

TEST(EndToEnd, SchedulerConservation)
{
    const auto &result = sharedTrace();
    EXPECT_EQ(result.scheduler_stats.submitted,
              result.scheduler_stats.finished);
    EXPECT_EQ(result.scheduler_stats.submitted, result.dataset.size());
}

TEST(EndToEnd, ClassifierInvertsGeneratorGroundTruth)
{
    // The classifier reads only observed terminal behaviour; apart
    // from rare hardware failures (folded into development) it must
    // reconstruct the generator's hidden labels.
    const core::LifecycleClassifier clf;
    const double accuracy =
        clf.accuracyAgainstTruth(sharedTrace().dataset);
    EXPECT_GT(accuracy, 0.99);
}

TEST(EndToEnd, UtilizationSummariesWithinPhysicalBounds)
{
    for (const auto &r : sharedTrace().dataset.records()) {
        for (const auto &gpu : r.per_gpu) {
            EXPECT_GE(gpu.sm.min(), 0.0);
            EXPECT_LE(gpu.sm.max(), 1.0);
            EXPECT_LE(gpu.membw.max(), 1.0);
            EXPECT_LE(gpu.memsize.max(), 1.0);
            EXPECT_LE(gpu.power_watts.max(), 300.0);
            EXPECT_GE(gpu.power_watts.min(), 0.0);
            EXPECT_LE(gpu.sm.mean(), gpu.sm.max());
            EXPECT_GE(gpu.sm.mean(), gpu.sm.min());
        }
    }
}

TEST(EndToEnd, TimedOutJobsRanExactlyTheirLimit)
{
    for (const auto &r : sharedTrace().dataset.records()) {
        if (r.terminal == TerminalState::TimedOut) {
            EXPECT_NEAR(r.runTime(), r.walltime_limit, 1e-6);
        }
    }
}

TEST(EndToEnd, GpuExclusivityNeverViolated)
{
    // With exclusive GPUs, total concurrent GPU demand can never
    // exceed the cluster's GPU count at any instant. Sweep the busiest
    // windows via event sorting.
    const auto &result = sharedTrace();
    struct Edge
    {
        Seconds t;
        int delta;
    };
    std::vector<Edge> edges;
    for (const auto &r : result.dataset.records()) {
        if (!r.isGpuJob())
            continue;
        edges.push_back({r.start_time, r.gpus});
        edges.push_back({r.end_time, -r.gpus});
    }
    std::sort(edges.begin(), edges.end(), [](const Edge &a, const Edge &b) {
        if (a.t != b.t)
            return a.t < b.t;
        return a.delta < b.delta;  // releases before claims at ties
    });
    const int capacity = result.cluster_nodes * 2;
    int in_use = 0;
    for (const auto &e : edges) {
        in_use += e.delta;
        EXPECT_LE(in_use, capacity);
        EXPECT_GE(in_use, 0);
    }
}

TEST(EndToEnd, ReportWriterHandlesSynthesizedTrace)
{
    std::ostringstream os;
    const core::ReportWriter writer(os);
    writer.printFullStudy(sharedTrace().dataset);
    EXPECT_GT(os.str().size(), 2000u);
}

TEST(EndToEnd, MonitoringAccountingScalesWithRuntime)
{
    const auto &result = sharedTrace();
    // Central store must hold roughly gpu-rows + cpu-rows of data;
    // just sanity-check the order of magnitude: more than 1 MiB for
    // thousands of jobs, less than 1 TiB.
    EXPECT_GT(result.central_store_bytes, 1024u * 1024u);
    EXPECT_LT(result.central_store_bytes, 1ull << 40);
}

} // namespace
} // namespace aiwc
