/**
 * @file
 * Cross-analyzer invariants that must hold for ANY dataset, checked on
 * a synthesized trace: probability mixes sum to one, tail fractions
 * are monotone in their threshold, box statistics are ordered, and
 * report CDFs are internally consistent. These are the properties a
 * downstream consumer of the reports is entitled to assume.
 */

#include <gtest/gtest.h>

#include "aiwc/core/bottleneck_analyzer.hh"
#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/multi_gpu_analyzer.hh"
#include "aiwc/core/power_analyzer.hh"
#include "aiwc/core/service_time_analyzer.hh"
#include "aiwc/core/timeline_analyzer.hh"
#include "aiwc/core/user_behavior_analyzer.hh"
#include "aiwc/core/utilization_analyzer.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc
{
namespace
{

const core::Dataset &
dataset()
{
    static const core::Dataset ds = [] {
        workload::SynthesisOptions options;
        options.scale = 0.04;
        options.seed = 31337;
        const auto profile = workload::CalibrationProfile::supercloud();
        return workload::TraceSynthesizer(profile, options).run()
            .dataset;
    }();
    return ds;
}

TEST(AnalyzerInvariants, LifecycleMixesSumToOne)
{
    const auto report = core::LifecycleAnalyzer().analyze(dataset());
    double jobs = 0.0, hours = 0.0;
    for (int c = 0; c < num_lifecycles; ++c) {
        jobs += report.job_mix[static_cast<std::size_t>(c)];
        hours += report.hour_mix[static_cast<std::size_t>(c)];
    }
    EXPECT_NEAR(jobs, 1.0, 1e-9);
    EXPECT_NEAR(hours, 1.0, 1e-9);
    // Per-user shares are distributions too.
    for (const auto &u : report.users) {
        double js = 0.0;
        for (double s : u.job_share)
            js += s;
        EXPECT_NEAR(js, 1.0, 1e-9);
    }
}

TEST(AnalyzerInvariants, SizeBucketFractionsSumToOne)
{
    const auto report = core::MultiGpuAnalyzer().analyze(dataset());
    double jobs = 0.0, hours = 0.0;
    for (int b = 0; b < core::num_size_buckets; ++b) {
        jobs += report.job_fraction[static_cast<std::size_t>(b)];
        hours += report.hour_fraction[static_cast<std::size_t>(b)];
    }
    EXPECT_NEAR(jobs, 1.0, 1e-9);
    EXPECT_NEAR(hours, 1.0, 1e-9);
    // User reach is nested: multi >= 3-plus >= 9-plus.
    EXPECT_GE(report.users_multi, report.users_3plus);
    EXPECT_GE(report.users_3plus, report.users_9plus);
}

TEST(AnalyzerInvariants, TailFractionsMonotoneInThreshold)
{
    const auto report = core::UtilizationAnalyzer().analyze(dataset());
    for (Resource r : {Resource::Sm, Resource::MemoryBw,
                       Resource::MemorySize}) {
        double prev = 1.1;
        for (double pct : {0.0, 10.0, 25.0, 50.0, 75.0, 99.0}) {
            const double frac = report.fractionAbove(r, pct);
            EXPECT_LE(frac, prev) << toString(r) << " @ " << pct;
            EXPECT_GE(frac, 0.0);
            prev = frac;
        }
    }
}

TEST(AnalyzerInvariants, CdfQuantilesMonotone)
{
    const auto report = core::ServiceTimeAnalyzer().analyze(dataset());
    for (const auto *cdf : {&report.gpu_runtime_min, &report.gpu_wait_s,
                            &report.cpu_wait_s, &report.gpu_wait_pct}) {
        double prev = -1e300;
        for (double q = 0.0; q <= 1.0; q += 0.05) {
            const double v = cdf->quantile(q);
            EXPECT_GE(v, prev);
            prev = v;
        }
    }
}

TEST(AnalyzerInvariants, BoxStatsOrdered)
{
    const auto report = core::LifecycleAnalyzer().analyze(dataset());
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto &b = report.sm_pct[static_cast<std::size_t>(c)];
        if (b.n == 0)
            continue;
        EXPECT_LE(b.min, b.q1);
        EXPECT_LE(b.q1, b.median);
        EXPECT_LE(b.median, b.q3);
        EXPECT_LE(b.q3, b.max);
        EXPECT_LE(b.whisker_lo, b.q1);
        EXPECT_GE(b.whisker_hi, b.q3);
    }
}

TEST(AnalyzerInvariants, PowerCapClassesPartition)
{
    const auto report = core::PowerAnalyzer().analyze(dataset());
    for (const auto &cap : report.caps) {
        EXPECT_NEAR(cap.unimpacted + cap.impacted_by_max, 1.0, 1e-9);
        EXPECT_LE(cap.impacted_by_avg, cap.impacted_by_max + 1e-9);
    }
}

TEST(AnalyzerInvariants, BottleneckPairsBoundedBySingles)
{
    const auto report = core::BottleneckAnalyzer().analyze(dataset());
    for (std::size_t i = 0; i < core::bottleneck_resources.size(); ++i) {
        for (std::size_t j = i + 1;
             j < core::bottleneck_resources.size(); ++j) {
            const double pair =
                report.pairs[core::BottleneckReport::pairIndex(i, j)];
            EXPECT_LE(pair, report.single[i] + 1e-9);
            EXPECT_LE(pair, report.single[j] + 1e-9);
        }
    }
}

TEST(AnalyzerInvariants, UserSummariesCoverEveryGpuUser)
{
    const auto summaries =
        core::UserBehaviorAnalyzer().summarize(dataset());
    std::size_t total_jobs = 0;
    for (const auto &u : summaries) {
        EXPECT_GT(u.jobs, 0u);
        EXPECT_GE(u.gpu_hours, 0.0);
        total_jobs += u.jobs;
    }
    EXPECT_EQ(total_jobs, dataset().gpuJobs().size());
}

TEST(AnalyzerInvariants, TimelineBusyBoundedByFleet)
{
    const auto report = core::TimelineAnalyzer().analyze(dataset());
    // The trace was built on a scaled cluster; mean busy GPUs per bin
    // can never exceed the whole fleet.
    for (const auto &bin : report.bins)
        EXPECT_LE(bin.mean_gpus_busy, 448.0);
    EXPECT_GE(report.submission_peak_to_mean, 1.0);
}

} // namespace
} // namespace aiwc
