/**
 * @file
 * Whole-trace CSV round trip: a synthesized study exported with
 * Dataset::writeCsv and re-imported with loadDatasetCsv must yield the
 * same fleet-level analysis results — the guarantee that lets a real
 * production export drive the analyzers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "aiwc/core/csv_loader.hh"
#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/multi_gpu_analyzer.hh"
#include "aiwc/core/power_analyzer.hh"
#include "aiwc/core/service_time_analyzer.hh"
#include "aiwc/core/utilization_analyzer.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc
{
namespace
{

struct Pair
{
    core::Dataset original;
    core::Dataset loaded;
};

const Pair &
datasets()
{
    static const Pair pair = [] {
        workload::SynthesisOptions options;
        options.scale = 0.03;
        options.seed = 77;
        const auto profile = workload::CalibrationProfile::supercloud();
        auto result = workload::TraceSynthesizer(profile, options).run();
        std::stringstream csv;
        result.dataset.writeCsv(csv);
        return Pair{std::move(result.dataset),
                    core::loadDatasetCsv(csv)};
    }();
    return pair;
}

TEST(CsvRoundTrip, SizesMatch)
{
    const auto &[original, loaded] = datasets();
    EXPECT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.gpuJobs().size(), original.gpuJobs().size());
    EXPECT_EQ(loaded.cpuJobs().size(), original.cpuJobs().size());
    EXPECT_EQ(loaded.uniqueUsers(), original.uniqueUsers());
}

TEST(CsvRoundTrip, ServiceTimesIdentical)
{
    const auto &[original, loaded] = datasets();
    const auto a = core::ServiceTimeAnalyzer().analyze(original);
    const auto b = core::ServiceTimeAnalyzer().analyze(loaded);
    for (double q : {0.25, 0.5, 0.75, 0.9}) {
        EXPECT_NEAR(b.gpu_runtime_min.quantile(q),
                    a.gpu_runtime_min.quantile(q),
                    0.01 * std::max(1.0, a.gpu_runtime_min.quantile(q)));
        EXPECT_NEAR(b.gpu_wait_s.quantile(q), a.gpu_wait_s.quantile(q),
                    0.2);
    }
}

TEST(CsvRoundTrip, UtilizationMediansAgree)
{
    const auto &[original, loaded] = datasets();
    const auto a = core::UtilizationAnalyzer().analyze(original);
    const auto b = core::UtilizationAnalyzer().analyze(loaded);
    EXPECT_NEAR(b.sm_pct.quantile(0.5), a.sm_pct.quantile(0.5), 0.1);
    EXPECT_NEAR(b.membw_pct.quantile(0.5), a.membw_pct.quantile(0.5),
                0.1);
    EXPECT_NEAR(b.memsize_pct.quantile(0.5),
                a.memsize_pct.quantile(0.5), 0.1);
    EXPECT_NEAR(b.fractionAbove(Resource::Sm, 50.0),
                a.fractionAbove(Resource::Sm, 50.0), 0.005);
}

TEST(CsvRoundTrip, LifecycleMixIdentical)
{
    const auto &[original, loaded] = datasets();
    const auto a = core::LifecycleAnalyzer().analyze(original);
    const auto b = core::LifecycleAnalyzer().analyze(loaded);
    for (int c = 0; c < num_lifecycles; ++c) {
        EXPECT_NEAR(b.job_mix[static_cast<std::size_t>(c)],
                    a.job_mix[static_cast<std::size_t>(c)], 1e-9);
        EXPECT_NEAR(b.hour_mix[static_cast<std::size_t>(c)],
                    a.hour_mix[static_cast<std::size_t>(c)], 1e-4);
    }
}

TEST(CsvRoundTrip, PowerCapImpactAgrees)
{
    const auto &[original, loaded] = datasets();
    const auto a = core::PowerAnalyzer().analyze(original);
    const auto b = core::PowerAnalyzer().analyze(loaded);
    ASSERT_EQ(a.caps.size(), b.caps.size());
    for (std::size_t i = 0; i < a.caps.size(); ++i) {
        // CSV rounds power to 0.1 W; jobs sitting exactly on a cap
        // boundary may flip, so allow a sliver of reclassification.
        EXPECT_NEAR(b.caps[i].unimpacted, a.caps[i].unimpacted, 0.01);
        EXPECT_NEAR(b.caps[i].impacted_by_avg,
                    a.caps[i].impacted_by_avg, 0.01);
    }
}

TEST(CsvRoundTrip, MultiGpuSharesAgree)
{
    const auto &[original, loaded] = datasets();
    const auto a = core::MultiGpuAnalyzer().analyze(original);
    const auto b = core::MultiGpuAnalyzer().analyze(loaded);
    for (int s = 0; s < core::num_size_buckets; ++s) {
        EXPECT_NEAR(b.job_fraction[static_cast<std::size_t>(s)],
                    a.job_fraction[static_cast<std::size_t>(s)], 1e-9);
        EXPECT_NEAR(b.hour_fraction[static_cast<std::size_t>(s)],
                    a.hour_fraction[static_cast<std::size_t>(s)], 2e-3);
    }
    // Documented loss: per-GPU detail collapses to the average, so
    // only jobs whose *average* is idle (all GPUs quiet) remain
    // detectable — the half-idle pathology of Fig. 14 is invisible.
    EXPECT_LT(b.idle_gpu_job_fraction, a.idle_gpu_job_fraction);
}

} // namespace
} // namespace aiwc
