/**
 * @file
 * Determinism self-check: the entire pipeline — users, arrivals,
 * scheduler replay, telemetry — must be a pure function of (profile,
 * seed). Two runs with the same seed must produce byte-identical
 * completion records; a different seed must not (guards against the
 * digest accidentally ignoring the data).
 *
 * Any hidden nondeterminism (iteration over an unordered_map feeding
 * the event order, uninitialised reads, time-of-day seeding) breaks
 * every figure's reproducibility long before it breaks a unit test;
 * this harness catches it wholesale.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/trace.hh"
#include "aiwc/core/bottleneck_analyzer.hh"
#include "aiwc/core/csv_loader.hh"
#include "aiwc/fmt/trace.hh"
#include "aiwc/core/correlation_analyzer.hh"
#include "aiwc/core/lifecycle_analyzer.hh"
#include "aiwc/core/power_analyzer.hh"
#include "aiwc/core/service_time_analyzer.hh"
#include "aiwc/scenario/runner.hh"
#include "aiwc/core/user_behavior_analyzer.hh"
#include "aiwc/core/utilization_analyzer.hh"
#include "aiwc/stream/pipeline.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc
{
namespace
{

/** FNV-1a 64-bit over a string — stable across platforms and runs. */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const unsigned char c : bytes) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

/**
 * Digest of every completion record. Hexfloat formatting keeps the
 * serialization byte-exact: any ULP of drift between runs changes the
 * digest.
 */
std::uint64_t
completionDigest(const core::Dataset &dataset)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto &r : dataset.records()) {
        os << r.id << '|' << r.user << '|'
           << static_cast<int>(r.interface) << '|'
           << static_cast<int>(r.terminal) << '|'
           << static_cast<int>(r.true_class) << '|' << r.submit_time
           << '|' << r.start_time << '|' << r.end_time << '|'
           << r.walltime_limit << '|' << r.gpus << '|' << r.cpu_slots
           << '|' << r.ram_gb;
        for (const auto &gpu : r.per_gpu) {
            os << '|' << gpu.sm.mean() << ':' << gpu.sm.min() << ':'
               << gpu.sm.max() << ':' << gpu.power_watts.mean();
        }
        os << '\n';
    }
    return fnv1a(os.str());
}

workload::SynthesisResult
synthesize(std::uint64_t seed)
{
    workload::SynthesisOptions options;
    options.seed = seed;
    options.scale = 0.04;
    const auto profile = workload::CalibrationProfile::supercloud();
    return workload::TraceSynthesizer(profile, options).run();
}

TEST(Determinism, SameSeedSameCompletionDigest)
{
    const auto first = synthesize(1234);
    const auto second = synthesize(1234);
    ASSERT_GT(first.dataset.size(), 0u);
    ASSERT_EQ(first.dataset.size(), second.dataset.size());
    EXPECT_EQ(completionDigest(first.dataset),
              completionDigest(second.dataset));
    // Scheduler-side aggregates must agree too, not just the records.
    EXPECT_EQ(first.scheduler_stats.started,
              second.scheduler_stats.started);
    EXPECT_EQ(first.scheduler_stats.backfilled,
              second.scheduler_stats.backfilled);
    EXPECT_DOUBLE_EQ(first.scheduler_stats.gpu_hours,
                     second.scheduler_stats.gpu_hours);
}

TEST(Determinism, DifferentSeedDifferentDigest)
{
    const auto a = synthesize(1234);
    const auto b = synthesize(4321);
    EXPECT_NE(completionDigest(a.dataset), completionDigest(b.dataset));
}

TEST(Determinism, DigestIsOrderAndValueSensitive)
{
    // Unit-check the digest itself: permuted and perturbed inputs must
    // hash differently, or the self-check above proves nothing.
    EXPECT_NE(fnv1a("a|b"), fnv1a("b|a"));
    EXPECT_NE(fnv1a("1.0"), fnv1a("1.1"));
    EXPECT_EQ(fnv1a("stable"), fnv1a("stable"));
}

/**
 * Digest of a full analysis pass: every analyzer that fans work across
 * the pool contributes its report, serialized as hexfloat so a single
 * ULP of thread-count-dependent drift flips the hash.
 */
std::uint64_t
analysisDigest(const core::Dataset &dataset)
{
    std::ostringstream os;
    os << std::hexfloat;

    const auto util = core::UtilizationAnalyzer().analyze(dataset);
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        os << util.sm_pct.quantile(q) << '|'
           << util.membw_pct.quantile(q) << '|'
           << util.memsize_pct.quantile(q) << '|';
    }

    const auto service = core::ServiceTimeAnalyzer().analyze(dataset);
    for (double q : {0.25, 0.5, 0.75, 0.95}) {
        os << service.gpu_runtime_min.quantile(q) << '|'
           << service.gpu_wait_s.quantile(q) << '|'
           << service.cpu_runtime_min.quantile(q) << '|';
    }

    const auto life = core::LifecycleAnalyzer().analyze(dataset);
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto i = static_cast<std::size_t>(c);
        os << life.job_mix[i] << '|' << life.hour_mix[i] << '|'
           << life.median_runtime_min[i] << '|';
    }
    for (const auto &u : life.users)
        os << u.user << ':' << u.jobs << ':' << u.gpu_hours << '|';

    const auto bottleneck = core::BottleneckAnalyzer().analyze(dataset);
    for (double s : bottleneck.single)
        os << s << '|';
    for (double p : bottleneck.pairs)
        os << p << '|';

    const auto power = core::PowerAnalyzer().analyze(dataset);
    for (double q : {0.5, 0.9, 0.99})
        os << power.avg_watts.quantile(q) << '|'
           << power.max_watts.quantile(q) << '|';

    const auto users = core::UserBehaviorAnalyzer().analyze(dataset);
    for (const auto &u : users.users) {
        os << u.user << ':' << u.jobs << ':' << u.gpu_hours << ':'
           << u.avg_sm_pct << ':' << u.runtime_cov_pct << '|';
    }

    const auto corr = core::CorrelationAnalyzer().analyze(users.users);
    for (const auto &f : corr.by_jobs.features)
        os << f.coefficient << '|';
    for (const auto &f : corr.by_gpu_hours.features)
        os << f.coefficient << '|';

    return fnv1a(os.str());
}

TEST(Determinism, AnalysisDigestIsThreadCountInvariant)
{
    // The tentpole guarantee: parallelReduce merges per-shard
    // accumulators in shard-index order, so 1 thread and 8 threads
    // must produce bit-identical analysis output. This covers every
    // parallelized analyzer end to end.
    const auto trace = synthesize(1234);
    const int before = globalThreadCount();

    setGlobalThreadCount(1);
    const auto serial = analysisDigest(trace.dataset);
    setGlobalThreadCount(8);
    const auto threaded = analysisDigest(trace.dataset);
    setGlobalThreadCount(before);

    EXPECT_EQ(serial, threaded);
}

TEST(Determinism, InstrumentationIsBehaviorNeutral)
{
    // The observability layer's core promise: enabling span collection
    // must not change a single output bit — metrics and traces observe
    // the pipeline, they never feed back into it. Synthesize and
    // analyze with tracing off, then with tracing on; both digests
    // must match exactly.
    obs::setTraceEnabled(false);
    const auto baseline = synthesize(1234);
    const auto baseline_analysis = analysisDigest(baseline.dataset);

    obs::setTraceEnabled(true);
    const auto traced = synthesize(1234);
    const auto traced_analysis = analysisDigest(traced.dataset);
    const std::size_t recorded = obs::traceEventCount();
    obs::setTraceEnabled(false);
    obs::clearTraceEvents();

    EXPECT_GT(recorded, 0u);  // tracing actually ran
    EXPECT_EQ(completionDigest(baseline.dataset),
              completionDigest(traced.dataset));
    EXPECT_EQ(baseline_analysis, traced_analysis);
}

/**
 * Digest of a streaming snapshot: every rendered CDF sample, cap
 * impact, and per-user aggregate, hexfloat-serialized so any
 * thread-count-dependent ULP in the sketch state flips the hash.
 */
std::uint64_t
snapshotDigest(const stream::SnapshotReport &snap)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << snap.rows << '|' << snap.gpu_jobs << '|' << snap.cpu_jobs
       << '|' << snap.users << '|' << snap.epsilon << '|';
    const auto cdf = [&](const stats::EmpiricalCdf &c) {
        for (double v : c.sorted())
            os << v << ':';
        os << '|';
    };
    cdf(snap.gpu_runtime_min);
    cdf(snap.cpu_runtime_min);
    cdf(snap.gpu_wait_s);
    cdf(snap.sm_pct);
    cdf(snap.membw_pct);
    cdf(snap.memsize_pct);
    cdf(snap.avg_watts);
    cdf(snap.max_watts);
    cdf(snap.user_avg_runtime_min);
    cdf(snap.user_avg_sm_pct);
    for (const auto &c : snap.caps) {
        os << c.cap_watts << ':' << c.unimpacted << ':'
           << c.impacted_by_max << ':' << c.impacted_by_avg << '|';
    }
    os << snap.top5_job_share << '|' << snap.top20_job_share << '|'
       << snap.median_jobs_per_user << '|';
    for (const auto &e : snap.top_users_by_gpu_hours)
        os << e.key << ':' << e.count << ':' << e.error << '|';
    return fnv1a(os.str());
}

TEST(Determinism, StreamSnapshotIsThreadCountInvariant)
{
    // The streaming pipeline rides the same parallelReduce contract as
    // the batch analyzers: per-shard pipelines merged in shard-index
    // order, so a snapshot of a parallel ingest must be byte-identical
    // at any thread count.
    const auto trace = synthesize(1234);
    ASSERT_GT(trace.dataset.size(), 0u);
    const int before = globalThreadCount();

    setGlobalThreadCount(1);
    const auto serial =
        stream::ingestParallel(trace.dataset.records()).snapshot();
    setGlobalThreadCount(8);
    const auto threaded =
        stream::ingestParallel(trace.dataset.records()).snapshot();
    setGlobalThreadCount(before);

    EXPECT_EQ(serial.rows, trace.dataset.size());
    EXPECT_EQ(snapshotDigest(serial), snapshotDigest(threaded));
}

TEST(Determinism, BinaryTraceMatchesCsvAcrossThreadCounts)
{
    // The trace-format guarantee: a Dataset loaded from the binary
    // trace must drive every analyzer to byte-identical output vs the
    // CSV-parsed dataset it encodes, at any thread count. Raw
    // accumulator serialization (not derived moments) is what makes
    // this exact rather than epsilon-close.
    const auto trace = synthesize(1234);
    std::stringstream csv;
    trace.dataset.writeCsv(csv);
    const core::Dataset from_csv = core::loadDatasetCsv(csv);
    ASSERT_GT(from_csv.size(), 0u);

    const auto encoded = fmt::encodeTrace(from_csv);
    auto loaded = fmt::decodeTrace(encoded);
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    ASSERT_EQ(loaded.dataset.size(), from_csv.size());
    EXPECT_EQ(fmt::contentDigest(from_csv),
              fmt::contentDigest(loaded.dataset));
    EXPECT_EQ(completionDigest(from_csv),
              completionDigest(loaded.dataset));

    const int before = globalThreadCount();
    setGlobalThreadCount(1);
    const auto csv_serial = analysisDigest(from_csv);
    const auto bin_serial = analysisDigest(loaded.dataset);
    setGlobalThreadCount(8);
    const auto csv_threaded = analysisDigest(from_csv);
    const auto bin_threaded = analysisDigest(loaded.dataset);
    setGlobalThreadCount(before);

    EXPECT_EQ(csv_serial, bin_serial);
    EXPECT_EQ(csv_threaded, bin_threaded);
    EXPECT_EQ(csv_serial, csv_threaded);
}

/** A small sweep over the default mixes with every built-in policy. */
std::string
sweepJson(const core::Dataset &dataset)
{
    scenario::ScenarioSpec spec;
    scenario::MachineClassSpec cls;
    cls.name = "det-node";
    cls.count = 4;
    cls.cores = 96;
    cls.memory_gb = 384.0;
    cls.gpus = 2;
    spec.machines = {cls};
    scenario::SweepOptions options;
    options.seed = 2022;
    const scenario::ScenarioRunner runner(spec, options);
    const scenario::GreedyPackPolicy greedy;
    const scenario::LoadBalancePolicy balance;
    const scenario::EnergyFirstPolicy energy;
    const std::vector<const scenario::SchedulingPolicy *> policies{
        &greedy, &balance, &energy};
    return runner.sweep(dataset, scenario::defaultTaskMixes(), policies)
        .toJson();
}

TEST(Determinism, ScenarioSweepIsThreadCountInvariant)
{
    // The scenario sweep rides parallelFor with disjoint per-cell
    // writes: the frontier report must be byte-identical at any thread
    // count, and identical whether the dataset arrived via CSV or the
    // binary trace — task typing is keyed on record content, never on
    // load order or source format.
    const auto trace = synthesize(1234);
    std::stringstream csv;
    trace.dataset.writeCsv(csv);
    const core::Dataset from_csv = core::loadDatasetCsv(csv);
    ASSERT_GT(from_csv.size(), 0u);
    auto from_binary = fmt::decodeTrace(fmt::encodeTrace(from_csv));
    ASSERT_TRUE(from_binary.ok()) << from_binary.error;

    const int before = globalThreadCount();
    setGlobalThreadCount(1);
    const std::string csv_serial = sweepJson(from_csv);
    setGlobalThreadCount(8);
    const std::string csv_threaded = sweepJson(from_csv);
    const std::string bin_threaded = sweepJson(from_binary.dataset);
    setGlobalThreadCount(before);

    EXPECT_EQ(csv_serial, csv_threaded);
    EXPECT_EQ(csv_threaded, bin_threaded);
}

TEST(Determinism, SynthesisIsThreadCountInvariant)
{
    // Replicate fan-out must not perturb the traces themselves.
    const int before = globalThreadCount();
    const auto profile = workload::CalibrationProfile::supercloud();
    workload::SynthesisOptions options;
    options.scale = 0.02;
    const workload::TraceSynthesizer synthesizer(profile, options);

    setGlobalThreadCount(1);
    const auto serial = synthesizer.runReplicates(2);
    setGlobalThreadCount(8);
    const auto threaded = synthesizer.runReplicates(2);
    setGlobalThreadCount(before);

    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
        EXPECT_EQ(completionDigest(serial[r].dataset),
                  completionDigest(threaded[r].dataset));
    }
}

} // namespace
} // namespace aiwc
