/**
 * @file
 * Determinism self-check: the entire pipeline — users, arrivals,
 * scheduler replay, telemetry — must be a pure function of (profile,
 * seed). Two runs with the same seed must produce byte-identical
 * completion records; a different seed must not (guards against the
 * digest accidentally ignoring the data).
 *
 * Any hidden nondeterminism (iteration over an unordered_map feeding
 * the event order, uninitialised reads, time-of-day seeding) breaks
 * every figure's reproducibility long before it breaks a unit test;
 * this harness catches it wholesale.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc
{
namespace
{

/** FNV-1a 64-bit over a string — stable across platforms and runs. */
std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const unsigned char c : bytes) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

/**
 * Digest of every completion record. Hexfloat formatting keeps the
 * serialization byte-exact: any ULP of drift between runs changes the
 * digest.
 */
std::uint64_t
completionDigest(const core::Dataset &dataset)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto &r : dataset.records()) {
        os << r.id << '|' << r.user << '|'
           << static_cast<int>(r.interface) << '|'
           << static_cast<int>(r.terminal) << '|'
           << static_cast<int>(r.true_class) << '|' << r.submit_time
           << '|' << r.start_time << '|' << r.end_time << '|'
           << r.walltime_limit << '|' << r.gpus << '|' << r.cpu_slots
           << '|' << r.ram_gb;
        for (const auto &gpu : r.per_gpu) {
            os << '|' << gpu.sm.mean() << ':' << gpu.sm.min() << ':'
               << gpu.sm.max() << ':' << gpu.power_watts.mean();
        }
        os << '\n';
    }
    return fnv1a(os.str());
}

workload::SynthesisResult
synthesize(std::uint64_t seed)
{
    workload::SynthesisOptions options;
    options.seed = seed;
    options.scale = 0.04;
    const auto profile = workload::CalibrationProfile::supercloud();
    return workload::TraceSynthesizer(profile, options).run();
}

TEST(Determinism, SameSeedSameCompletionDigest)
{
    const auto first = synthesize(1234);
    const auto second = synthesize(1234);
    ASSERT_GT(first.dataset.size(), 0u);
    ASSERT_EQ(first.dataset.size(), second.dataset.size());
    EXPECT_EQ(completionDigest(first.dataset),
              completionDigest(second.dataset));
    // Scheduler-side aggregates must agree too, not just the records.
    EXPECT_EQ(first.scheduler_stats.started,
              second.scheduler_stats.started);
    EXPECT_EQ(first.scheduler_stats.backfilled,
              second.scheduler_stats.backfilled);
    EXPECT_DOUBLE_EQ(first.scheduler_stats.gpu_hours,
                     second.scheduler_stats.gpu_hours);
}

TEST(Determinism, DifferentSeedDifferentDigest)
{
    const auto a = synthesize(1234);
    const auto b = synthesize(4321);
    EXPECT_NE(completionDigest(a.dataset), completionDigest(b.dataset));
}

TEST(Determinism, DigestIsOrderAndValueSensitive)
{
    // Unit-check the digest itself: permuted and perturbed inputs must
    // hash differently, or the self-check above proves nothing.
    EXPECT_NE(fnv1a("a|b"), fnv1a("b|a"));
    EXPECT_NE(fnv1a("1.0"), fnv1a("1.1"));
    EXPECT_EQ(fnv1a("stable"), fnv1a("stable"));
}

} // namespace
} // namespace aiwc
