#include <gtest/gtest.h>

#include "aiwc/base/logging.hh"

namespace aiwc
{
namespace
{

TEST(Logging, LevelsGateOutput)
{
    const LogLevel original = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    inform("this should not print");
    warn("nor this");
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
    setLogLevel(original);
}

TEST(Logging, ConcatFoldsMixedTypes)
{
    EXPECT_EQ(detail::concat("x=", 42, " y=", 1.5), "x=42 y=1.5");
    EXPECT_EQ(detail::concat(), "");
}

using LoggingDeath = ::testing::Test;

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad config ", 7), ::testing::ExitedWithCode(1),
                "bad config 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant broken"), "invariant broken");
}

TEST(LoggingDeath, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(AIWC_ASSERT(1 == 2, "math failed"),
                 "assertion failed");
}

TEST(LoggingDeath, AssertMacroPassesOnTrue)
{
    AIWC_ASSERT(2 + 2 == 4, "never fires");
    SUCCEED();
}

} // namespace
} // namespace aiwc
