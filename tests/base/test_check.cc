#include <gtest/gtest.h>

#include <string>

#include "aiwc/base/check.hh"

namespace aiwc
{
namespace
{

TEST(Check, PassingChecksAreSilent)
{
    ScopedCheckFailHandler guard;  // would throw if anything fired
    AIWC_CHECK(2 + 2 == 4, "never fires");
    AIWC_CHECK_EQ(1, 1);
    AIWC_CHECK_NE(1, 2);
    AIWC_CHECK_LT(1, 2);
    AIWC_CHECK_LE(2, 2);
    AIWC_CHECK_GT(3, 2);
    AIWC_CHECK_GE(3, 3);
    SUCCEED();
}

TEST(Check, FailingCheckThrowsViaScopedHandler)
{
    ScopedCheckFailHandler guard;
    EXPECT_THROW(AIWC_CHECK(false, "broken"), ContractViolation);
}

TEST(Check, MessageCarriesExpressionAndOperands)
{
    ScopedCheckFailHandler guard;
    try {
        const int free_slots = 3;
        const int capacity = 2;
        AIWC_CHECK_LE(free_slots, capacity, "leak on node ", 7);
        FAIL() << "check did not fire";
    } catch (const ContractViolation &violation) {
        const std::string what = violation.what();
        EXPECT_NE(what.find("free_slots <= capacity"), std::string::npos)
            << what;
        EXPECT_NE(what.find("(3 vs 2)"), std::string::npos) << what;
        EXPECT_NE(what.find("leak on node 7"), std::string::npos) << what;
        EXPECT_NE(what.find("test_check.cc"), std::string::npos) << what;
    }
}

TEST(Check, EveryComparisonMacroFires)
{
    ScopedCheckFailHandler guard;
    EXPECT_THROW(AIWC_CHECK_EQ(1, 2), ContractViolation);
    EXPECT_THROW(AIWC_CHECK_NE(5, 5), ContractViolation);
    EXPECT_THROW(AIWC_CHECK_LT(2, 2), ContractViolation);
    EXPECT_THROW(AIWC_CHECK_LE(3, 2), ContractViolation);
    EXPECT_THROW(AIWC_CHECK_GT(2, 2), ContractViolation);
    EXPECT_THROW(AIWC_CHECK_GE(1, 2), ContractViolation);
}

TEST(Check, OperandsEvaluateExactlyOnce)
{
    ScopedCheckFailHandler guard;
    int evaluations = 0;
    const auto once = [&evaluations] { return ++evaluations; };
    AIWC_CHECK_GE(once(), 1);
    EXPECT_EQ(evaluations, 1);
}

TEST(Check, CustomHandlerReceivesContext)
{
    CheckContext seen;
    bool fired = false;
    {
        ScopedCheckFailHandler guard(
            [&](const CheckContext &context) -> void {
                seen = context;
                fired = true;
                throw ContractViolation(context);
            });
        EXPECT_THROW(AIWC_CHECK(1 == 0, "ctx test"), ContractViolation);
    }
    ASSERT_TRUE(fired);
    EXPECT_STREQ(seen.expression, "1 == 0");
    EXPECT_EQ(seen.message, "ctx test");
    EXPECT_GT(seen.line, 0);
}

TEST(Check, ScopedHandlerRestoresPrevious)
{
    bool outer_fired = false;
    ScopedCheckFailHandler outer(
        [&](const CheckContext &context) -> void {
            outer_fired = true;
            throw ContractViolation(context);
        });
    {
        ScopedCheckFailHandler inner;  // throwing handler
        EXPECT_THROW(AIWC_CHECK(false), ContractViolation);
        EXPECT_FALSE(outer_fired);
    }
    EXPECT_THROW(AIWC_CHECK(false), ContractViolation);
    EXPECT_TRUE(outer_fired);
}

TEST(Check, SetHandlerReturnsPrevious)
{
    auto previous = setCheckFailHandler(nullptr);
    // The slot held no handler outside test scopes.
    EXPECT_FALSE(previous);
    auto installed = setCheckFailHandler(std::move(previous));
    EXPECT_FALSE(installed);
}

TEST(Check, DcheckMatchesBuildMode)
{
    ScopedCheckFailHandler guard;
#ifdef NDEBUG
    // Compiled out: must not evaluate, must not fire.
    int touched = 0;
    AIWC_DCHECK(++touched != 0 && false, "compiled out");
    AIWC_DCHECK_EQ(++touched, 99);
    EXPECT_EQ(touched, 0);
#else
    EXPECT_THROW(AIWC_DCHECK(false, "debug fires"), ContractViolation);
    EXPECT_THROW(AIWC_DCHECK_EQ(1, 2), ContractViolation);
    EXPECT_THROW(AIWC_DCHECK_GE(1, 2), ContractViolation);
#endif
}

TEST(Check, ContextDescribeFormat)
{
    CheckContext context;
    context.file = "x.cc";
    context.line = 12;
    context.expression = "a == b";
    context.message = "hint";
    EXPECT_EQ(context.describe(), "x.cc:12: CHECK failed: a == b (hint)");
    context.message.clear();
    EXPECT_EQ(context.describe(), "x.cc:12: CHECK failed: a == b");
}

using CheckDeath = ::testing::Test;

TEST(CheckDeath, DefaultHandlerAborts)
{
    EXPECT_DEATH(AIWC_CHECK(false, "production contract"),
                 "CHECK failed");
}

} // namespace
} // namespace aiwc
