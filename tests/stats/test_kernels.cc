/**
 * @file
 * Columnar kernel tests: gathers must equal the serial loop
 * bit-for-bit at every thread count (slot-addressed writes make this
 * structural, but the contract deserves a direct check), and
 * partitionByKey must be a stable bucket sort.
 */

#include <gtest/gtest.h>

#include <vector>

#include "aiwc/common/parallel.hh"
#include "aiwc/stats/kernels.hh"

namespace aiwc::stats
{
namespace
{

std::vector<double>
column(std::size_t n)
{
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i)
        col[i] = 0.37 * static_cast<double>(i) + 0.001;
    return col;
}

std::vector<std::uint32_t>
everyOther(std::size_t n)
{
    std::vector<std::uint32_t> idx;
    for (std::size_t i = 0; i < n; i += 2)
        idx.push_back(static_cast<std::uint32_t>(i));
    return idx;
}

TEST(Kernels, GatherMatchesSerialLoopAtAnyThreadCount)
{
    const auto col = column(1000);
    const auto idx = everyOther(1000);
    std::vector<double> expect_plain(idx.size());
    std::vector<double> expect_scaled(idx.size());
    std::vector<double> expect_divided(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
        expect_plain[i] = col[idx[i]];
        expect_scaled[i] = 100.0 * col[idx[i]];
        expect_divided[i] = col[idx[i]] / 60.0;
    }

    const int before = globalThreadCount();
    for (const int threads : {1, 3, 8}) {
        setGlobalThreadCount(threads);
        EXPECT_EQ(gather(col, idx), expect_plain);
        EXPECT_EQ(gatherScaled(col, idx, 100.0), expect_scaled);
        EXPECT_EQ(gatherDivided(col, idx, 60.0), expect_divided);
    }
    setGlobalThreadCount(before);
}

TEST(Kernels, ScaleAndDivideAreDistinctRoundings)
{
    // 100.0 * x and x / 0.01 are different operations with different
    // roundings; the kernels exist separately for exactly this reason.
    const std::vector<double> col = {0.07};
    const std::vector<std::uint32_t> idx = {0};
    EXPECT_EQ(gatherScaled(col, idx, 100.0)[0], 100.0 * 0.07);
    EXPECT_EQ(gatherDivided(col, idx, 60.0)[0], 0.07 / 60.0);
}

TEST(Kernels, GatherEmptyIndex)
{
    const auto col = column(10);
    EXPECT_TRUE(gather(col, {}).empty());
    EXPECT_TRUE(gatherScaled(col, {}, 2.0).empty());
}

TEST(Kernels, PartitionByKeyIsAStableBucketSort)
{
    // Rows 0..7, keys cycling 2,0,1: each bucket must list its rows in
    // idx order.
    const std::vector<std::uint32_t> idx = {0, 1, 2, 3, 4, 5, 6, 7};
    const std::vector<std::uint32_t> key = {2, 0, 1, 2, 0, 1, 2, 0};
    const BucketPartition part = partitionByKey(idx, key, 3);

    ASSERT_EQ(part.offsets.size(), 4u);
    EXPECT_EQ(part.offsets[0], 0u);
    ASSERT_EQ(part.rows.size(), idx.size());

    const std::vector<std::uint32_t> bucket0 = {1, 4, 7};
    const std::vector<std::uint32_t> bucket1 = {2, 5};
    const std::vector<std::uint32_t> bucket2 = {0, 3, 6};
    auto bucket = [&](std::size_t k) {
        return std::vector<std::uint32_t>(
            part.rows.begin() + part.offsets[k],
            part.rows.begin() + part.offsets[k + 1]);
    };
    EXPECT_EQ(bucket(0), bucket0);
    EXPECT_EQ(bucket(1), bucket1);
    EXPECT_EQ(bucket(2), bucket2);
}

TEST(Kernels, PartitionByKeyHandlesFilteredIndices)
{
    // idx need not be contiguous — it is typically the filtered GPU
    // row set; key is indexed by row value, not by idx position.
    const std::vector<std::uint32_t> idx = {5, 1, 3};
    const std::vector<std::uint32_t> key = {9, 0, 9, 1, 9, 0};
    const BucketPartition part = partitionByKey(idx, key, 2);
    const std::vector<std::uint32_t> bucket0 = {5, 1};
    const std::vector<std::uint32_t> bucket1 = {3};
    EXPECT_EQ(std::vector<std::uint32_t>(
                  part.rows.begin() + part.offsets[0],
                  part.rows.begin() + part.offsets[1]),
              bucket0);
    EXPECT_EQ(std::vector<std::uint32_t>(
                  part.rows.begin() + part.offsets[1],
                  part.rows.begin() + part.offsets[2]),
              bucket1);
}

TEST(Kernels, PartitionByKeyEmpty)
{
    const BucketPartition part = partitionByKey({}, {}, 4);
    EXPECT_TRUE(part.rows.empty());
    ASSERT_EQ(part.offsets.size(), 5u);
    for (const std::uint32_t off : part.offsets)
        EXPECT_EQ(off, 0u);
}

} // namespace
} // namespace aiwc::stats
