#include <gtest/gtest.h>

#include "aiwc/base/check.hh"
#include "aiwc/stats/histogram.hh"

namespace aiwc::stats
{
namespace
{

TEST(Histogram, BinBoundaries)
{
    Histogram h(4, 0.0, 8.0);
    EXPECT_EQ(h.bins(), 4u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLow(3), 6.0);
    EXPECT_DOUBLE_EQ(h.binHigh(3), 8.0);
}

TEST(Histogram, CountsLandInRightBins)
{
    Histogram h(4, 0.0, 8.0);
    h.add(1.0);
    h.add(3.0);
    h.add(3.5);
    h.add(7.9);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(1), 2.0);
    EXPECT_DOUBLE_EQ(h.count(2), 0.0);
    EXPECT_DOUBLE_EQ(h.count(3), 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdges)
{
    Histogram h(2, 0.0, 10.0);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(1), 1.0);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h(2, 0.0, 2.0);
    h.add(0.5, 3.0);
    h.add(1.5, 1.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, FractionOfEmptyIsZero)
{
    Histogram h(3, 0.0, 3.0);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, ModeBin)
{
    Histogram h(3, 0.0, 3.0);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    EXPECT_EQ(h.modeBin(), 1u);
}

TEST(Histogram, MergeAddsCountsAndTotals)
{
    Histogram a(4, 0.0, 8.0);
    a.add(1.0);
    a.add(3.0, 2.0);
    Histogram b(4, 0.0, 8.0);
    b.add(3.5);
    b.add(7.0, 4.0);

    a.merge(b);
    EXPECT_DOUBLE_EQ(a.count(0), 1.0);
    EXPECT_DOUBLE_EQ(a.count(1), 3.0);
    EXPECT_DOUBLE_EQ(a.count(3), 4.0);
    EXPECT_DOUBLE_EQ(a.total(), 8.0);
}

TEST(Histogram, MergeMatchesSequentialAdds)
{
    // merge() must be indistinguishable from having added the samples
    // to one histogram — the property parallelReduce relies on.
    Histogram whole(5, 0.0, 10.0);
    Histogram left(5, 0.0, 10.0), right(5, 0.0, 10.0);
    const double samples[] = {0.5, 2.2, 4.4, 6.6, 8.8, 9.9};
    for (std::size_t i = 0; i < 6; ++i) {
        whole.add(samples[i], static_cast<double>(i + 1));
        (i < 3 ? left : right).add(samples[i],
                                   static_cast<double>(i + 1));
    }
    left.merge(right);
    for (std::size_t i = 0; i < whole.bins(); ++i)
        EXPECT_DOUBLE_EQ(left.count(i), whole.count(i));
    EXPECT_DOUBLE_EQ(left.total(), whole.total());
}

TEST(Histogram, MergeRejectsMismatchedGeometry)
{
    ScopedCheckFailHandler guard;
    Histogram a(4, 0.0, 8.0);
    Histogram bins(5, 0.0, 8.0);
    Histogram range(4, 0.0, 9.0);
    EXPECT_THROW(a.merge(bins), ContractViolation);
    EXPECT_THROW(a.merge(range), ContractViolation);
}

} // namespace
} // namespace aiwc::stats
