#include <gtest/gtest.h>

#include "aiwc/stats/histogram.hh"

namespace aiwc::stats
{
namespace
{

TEST(Histogram, BinBoundaries)
{
    Histogram h(4, 0.0, 8.0);
    EXPECT_EQ(h.bins(), 4u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLow(3), 6.0);
    EXPECT_DOUBLE_EQ(h.binHigh(3), 8.0);
}

TEST(Histogram, CountsLandInRightBins)
{
    Histogram h(4, 0.0, 8.0);
    h.add(1.0);
    h.add(3.0);
    h.add(3.5);
    h.add(7.9);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(1), 2.0);
    EXPECT_DOUBLE_EQ(h.count(2), 0.0);
    EXPECT_DOUBLE_EQ(h.count(3), 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, OutOfRangeClampsToEdges)
{
    Histogram h(2, 0.0, 10.0);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(1), 1.0);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h(2, 0.0, 2.0);
    h.add(0.5, 3.0);
    h.add(1.5, 1.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, FractionOfEmptyIsZero)
{
    Histogram h(3, 0.0, 3.0);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, ModeBin)
{
    Histogram h(3, 0.0, 3.0);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    EXPECT_EQ(h.modeBin(), 1u);
}

} // namespace
} // namespace aiwc::stats
