#include <gtest/gtest.h>

#include <vector>

#include "aiwc/stats/share_curve.hh"

namespace aiwc::stats
{
namespace
{

TEST(TopShare, EqualContributionsAreProportional)
{
    const std::vector<double> xs(100, 1.0);
    EXPECT_NEAR(topShare(xs, 0.20), 0.20, 1e-12);
    EXPECT_NEAR(topShare(xs, 0.05), 0.05, 1e-12);
}

TEST(TopShare, SingleDominatorTakesAll)
{
    std::vector<double> xs(99, 0.0);
    xs.push_back(100.0);
    EXPECT_DOUBLE_EQ(topShare(xs, 0.01), 1.0);
}

TEST(TopShare, RoundsContributorCountUp)
{
    // top 30% of 4 contributors = ceil(1.2) = 2 contributors.
    const std::vector<double> xs = {4.0, 3.0, 2.0, 1.0};
    EXPECT_DOUBLE_EQ(topShare(xs, 0.30), 0.7);
}

TEST(TopShare, EmptyAndZeroTotals)
{
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(topShare(empty, 0.5), 0.0);
    const std::vector<double> zeros(5, 0.0);
    EXPECT_DOUBLE_EQ(topShare(zeros, 0.5), 0.0);
}

TEST(ShareCurve, MonotoneToOne)
{
    const std::vector<double> xs = {5.0, 1.0, 3.0};
    const auto curve = shareCurve(xs);
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_NEAR(curve[0], 5.0 / 9.0, 1e-12);
    EXPECT_NEAR(curve[1], 8.0 / 9.0, 1e-12);
    EXPECT_NEAR(curve[2], 1.0, 1e-12);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i], curve[i - 1]);
}

TEST(Gini, EqualDistributionIsZero)
{
    const std::vector<double> xs(50, 2.0);
    EXPECT_NEAR(gini(xs), 0.0, 1e-12);
}

TEST(Gini, TotalConcentrationApproachesOne)
{
    std::vector<double> xs(100, 0.0);
    xs[0] = 1.0;
    EXPECT_GT(gini(xs), 0.95);
}

TEST(Gini, ScaleInvariant)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 10.0};
    std::vector<double> scaled;
    for (double x : xs)
        scaled.push_back(x * 1000.0);
    EXPECT_NEAR(gini(xs), gini(scaled), 1e-12);
}

TEST(Gini, DegenerateInputs)
{
    const std::vector<double> empty;
    const std::vector<double> one = {5.0};
    EXPECT_DOUBLE_EQ(gini(empty), 0.0);
    EXPECT_DOUBLE_EQ(gini(one), 0.0);
}

} // namespace
} // namespace aiwc::stats
