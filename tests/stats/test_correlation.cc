#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aiwc/common/rng.hh"
#include "aiwc/stats/correlation.hh"

namespace aiwc::stats
{
namespace
{

TEST(Ranks, SimpleOrdering)
{
    const std::vector<double> xs = {30.0, 10.0, 20.0};
    const auto r = averageRanks(xs);
    EXPECT_DOUBLE_EQ(r[0], 3.0);
    EXPECT_DOUBLE_EQ(r[1], 1.0);
    EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Ranks, TiesGetAverageRank)
{
    const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
    const auto r = averageRanks(xs);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Pearson, PerfectLinearCorrelation)
{
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {2, 4, 6, 8, 10};
    const auto c = pearson(x, y);
    EXPECT_NEAR(c.coefficient, 1.0, 1e-12);
    EXPECT_LT(c.p_value, 1e-6);
    EXPECT_TRUE(c.significant());
}

TEST(Pearson, PerfectAntiCorrelation)
{
    const std::vector<double> x = {1, 2, 3, 4, 5};
    const std::vector<double> y = {5, 4, 3, 2, 1};
    EXPECT_NEAR(pearson(x, y).coefficient, -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero)
{
    const std::vector<double> x = {1, 2, 3, 4};
    const std::vector<double> y = {7, 7, 7, 7};
    const auto c = pearson(x, y);
    EXPECT_DOUBLE_EQ(c.coefficient, 0.0);
}

TEST(Pearson, TooFewSamples)
{
    const std::vector<double> x = {1, 2};
    const std::vector<double> y = {2, 1};
    const auto c = pearson(x, y);
    EXPECT_DOUBLE_EQ(c.coefficient, 0.0);
    EXPECT_DOUBLE_EQ(c.p_value, 1.0);
}

TEST(Spearman, MonotoneNonlinearIsPerfect)
{
    // Spearman sees through monotone transforms; Pearson does not.
    std::vector<double> x, y;
    for (int i = 1; i <= 20; ++i) {
        x.push_back(i);
        y.push_back(std::exp(0.5 * i));
    }
    EXPECT_NEAR(spearman(x, y).coefficient, 1.0, 1e-12);
    EXPECT_LT(pearson(x, y).coefficient, 0.99);
}

TEST(Spearman, IndependentSeriesNearZero)
{
    Rng rng(77);
    std::vector<double> x, y;
    for (int i = 0; i < 3000; ++i) {
        x.push_back(rng.uniform());
        y.push_back(rng.uniform());
    }
    const auto c = spearman(x, y);
    EXPECT_NEAR(c.coefficient, 0.0, 0.05);
    EXPECT_FALSE(c.significant(0.001));
}

TEST(Spearman, NoisyMonotoneIsStronglyPositive)
{
    Rng rng(78);
    std::vector<double> x, y;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform();
        x.push_back(v);
        y.push_back(v + 0.3 * rng.gaussian());
    }
    const auto c = spearman(x, y);
    EXPECT_GT(c.coefficient, 0.6);
    EXPECT_TRUE(c.significant());
}

TEST(TTest, PValueSymmetricAndMonotone)
{
    const double p1 = tTestPValue(1.0, 30.0);
    const double p2 = tTestPValue(2.0, 30.0);
    const double p1n = tTestPValue(-1.0, 30.0);
    EXPECT_DOUBLE_EQ(p1, p1n);
    EXPECT_GT(p1, p2);
    EXPECT_GT(p1, 0.0);
    EXPECT_LT(p1, 1.0);
}

TEST(TTest, KnownCriticalValue)
{
    // t = 2.042 at df = 30 is the classic 5% two-sided critical value.
    EXPECT_NEAR(tTestPValue(2.042, 30.0), 0.05, 0.002);
}

TEST(TTest, ZeroStatisticGivesPOne)
{
    EXPECT_NEAR(tTestPValue(0.0, 10.0), 1.0, 1e-9);
}

// Property sweep: spearman(x, f(x)) == 1 for strictly increasing f.
class SpearmanMonotone
    : public ::testing::TestWithParam<double (*)(double)>
{
};

TEST_P(SpearmanMonotone, InvariantUnderMonotoneTransforms)
{
    Rng rng(80);
    std::vector<double> x, y;
    for (int i = 0; i < 200; ++i) {
        const double v = rng.uniform(0.1, 10.0);
        x.push_back(v);
        y.push_back(GetParam()(v));
    }
    EXPECT_NEAR(spearman(x, y).coefficient, 1.0, 1e-12);
}

double fLog(double v) { return std::log(v); }
double fSqrt(double v) { return std::sqrt(v); }
double fCube(double v) { return v * v * v; }

INSTANTIATE_TEST_SUITE_P(Transforms, SpearmanMonotone,
                         ::testing::Values(&fLog, &fSqrt, &fCube));

} // namespace
} // namespace aiwc::stats
