#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aiwc/stats/descriptive.hh"

namespace aiwc::stats
{
namespace
{

TEST(Descriptive, MeanOfEmptyIsZero)
{
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(mean(empty), 0.0);
}

TEST(Descriptive, MeanBasic)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Descriptive, StddevOfConstantIsZero)
{
    const std::vector<double> xs = {5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Descriptive, StddevKnownValue)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                    9.0};
    EXPECT_NEAR(stddev(xs), 2.0, 1e-12);  // classic example
}

TEST(Descriptive, CovPercentDefinition)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                    9.0};
    EXPECT_NEAR(covPercent(xs), 100.0 * 2.0 / 5.0, 1e-9);
}

TEST(Descriptive, CovPercentZeroMeanIsNan)
{
    // A zero-mean series has no meaningful relative variability; the
    // convention is NaN (not 0, which would claim a perfectly steady
    // series) and CDF builders filter non-finite values.
    const std::vector<double> xs = {-1.0, 1.0};
    EXPECT_TRUE(std::isnan(covPercent(xs)));
}

TEST(Descriptive, CovPercentEmptyIsNan)
{
    const std::vector<double> empty;
    EXPECT_TRUE(std::isnan(covPercent(empty)));
}

TEST(Descriptive, CovPercentAllZerosIsNan)
{
    const std::vector<double> xs = {0.0, 0.0, 0.0};
    EXPECT_TRUE(std::isnan(covPercent(xs)));
}

TEST(Descriptive, CovPercentNegativeMeanUsesMagnitude)
{
    const std::vector<double> xs = {-2.0, -4.0, -4.0, -4.0, -5.0, -5.0,
                                    -7.0, -9.0};
    EXPECT_NEAR(covPercent(xs), 100.0 * 2.0 / 5.0, 1e-9);
}

TEST(Descriptive, PercentileInterpolates)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 1.75);
}

TEST(Descriptive, PercentileSingleElement)
{
    EXPECT_DOUBLE_EQ(percentile({42.0}, 0.9), 42.0);
}

TEST(Descriptive, PercentileUnsortedInput)
{
    EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(Descriptive, SumBasic)
{
    const std::vector<double> xs = {1.5, 2.5, -1.0};
    EXPECT_DOUBLE_EQ(sum(xs), 3.0);
}

TEST(BoxStats, QuartilesOfUniformRange)
{
    std::vector<double> xs;
    for (int i = 1; i <= 101; ++i)
        xs.push_back(static_cast<double>(i));
    const BoxStats b = BoxStats::from(xs);
    EXPECT_DOUBLE_EQ(b.median, 51.0);
    EXPECT_DOUBLE_EQ(b.q1, 26.0);
    EXPECT_DOUBLE_EQ(b.q3, 76.0);
    EXPECT_DOUBLE_EQ(b.min, 1.0);
    EXPECT_DOUBLE_EQ(b.max, 101.0);
    EXPECT_EQ(b.n, 101u);
}

TEST(BoxStats, WhiskersClampToFences)
{
    // One extreme outlier: whisker_hi should stay inside 1.5 IQR.
    std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 1000};
    const BoxStats b = BoxStats::from(xs);
    EXPECT_LT(b.whisker_hi, 1000.0);
    EXPECT_DOUBLE_EQ(b.max, 1000.0);
}

TEST(BoxStats, EmptyInputIsAllZero)
{
    const BoxStats b = BoxStats::from({});
    EXPECT_EQ(b.n, 0u);
    EXPECT_DOUBLE_EQ(b.median, 0.0);
}

TEST(RunningSummary, TracksMinMeanMax)
{
    RunningSummary s;
    s.add(3.0);
    s.add(1.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(RunningSummary, EmptyIsZero)
{
    RunningSummary s;
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningSummary, StddevMatchesBatch)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                    9.0};
    RunningSummary s;
    for (double x : xs)
        s.add(x);
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-9);
    EXPECT_NEAR(s.covPercent(), covPercent(xs), 1e-9);
}

TEST(RunningSummary, MergeEqualsCombinedStream)
{
    RunningSummary a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.1 * i;
        if (i % 2) {
            a.add(x);
        } else {
            b.add(x);
        }
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningSummary, ZeroMeanCovIsNan)
{
    RunningSummary s;
    s.add(-1.0);
    s.add(1.0);
    EXPECT_TRUE(std::isnan(s.covPercent()));
    RunningSummary empty;
    EXPECT_TRUE(std::isnan(empty.covPercent()));
}

TEST(RunningSummary, MergeWithEmptyIsNoop)
{
    RunningSummary a, empty;
    a.add(1.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 1.0);
}

// Property sweep: CoV of a two-point distribution {0, x} is always
// 100% regardless of x (the Fig. 14 idle-GPU signature).
class CovTwoPoint : public ::testing::TestWithParam<double>
{
};

TEST_P(CovTwoPoint, IdlePairHasHundredPercentCov)
{
    const std::vector<double> xs = {0.0, GetParam()};
    EXPECT_NEAR(covPercent(xs), 100.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Values, CovTwoPoint,
                         ::testing::Values(0.1, 0.5, 1.0, 10.0, 1e6));

} // namespace
} // namespace aiwc::stats
