#include <gtest/gtest.h>

#include <cmath>

#include "aiwc/base/check.hh"
#include "aiwc/common/rng.hh"
#include "aiwc/stats/ecdf.hh"

namespace aiwc::stats
{
namespace
{

TEST(Ecdf, EmptyBehaviour)
{
    EmpiricalCdf cdf;
    EXPECT_TRUE(cdf.empty());
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
    // An empty CDF has no quantiles: NaN, not a fabricated 0.
    EXPECT_TRUE(std::isnan(cdf.quantile(0.5)));
}

TEST(Ecdf, QuantileRejectsLevelsOutsideUnitInterval)
{
    ScopedCheckFailHandler guard;
    const EmpiricalCdf cdf({1.0, 2.0, 3.0});
    EXPECT_THROW(cdf.quantile(-0.01), ContractViolation);
    EXPECT_THROW(cdf.quantile(1.01), ContractViolation);
    EXPECT_THROW(cdf.quantile(42.0), ContractViolation);
}

TEST(Ecdf, CurveOfEmptyCdfIsAContractViolation)
{
    ScopedCheckFailHandler guard;
    const EmpiricalCdf cdf;
    EXPECT_THROW(cdf.curve(11), ContractViolation);
}

TEST(Ecdf, StepFunctionValues)
{
    const EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Ecdf, TailComplementsAt)
{
    const EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.tail(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(2.5) + cdf.tail(2.5), 1.0);
}

TEST(Ecdf, QuantileMatchesPercentile)
{
    const EmpiricalCdf cdf({4.0, 1.0, 3.0, 2.0});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.5);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(Ecdf, CurveIsMonotone)
{
    Rng rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(rng.gaussian());
    const EmpiricalCdf cdf(std::move(xs));
    const auto curve = cdf.curve(51);
    ASSERT_EQ(curve.size(), 51u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].first, curve[i - 1].first);
        EXPECT_GE(curve[i].second, curve[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, KsDistanceOfIdenticalSamplesIsZero)
{
    const EmpiricalCdf a({1.0, 2.0, 3.0});
    const EmpiricalCdf b({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(a.ksDistance(b), 0.0);
}

TEST(Ecdf, KsDistanceOfDisjointSamplesIsOne)
{
    const EmpiricalCdf a({1.0, 2.0});
    const EmpiricalCdf b({10.0, 20.0});
    EXPECT_DOUBLE_EQ(a.ksDistance(b), 1.0);
}

TEST(Ecdf, KsDistanceDetectsShift)
{
    Rng rng(9);
    std::vector<double> xs, ys;
    for (int i = 0; i < 4000; ++i) {
        xs.push_back(rng.gaussian());
        ys.push_back(rng.gaussian() + 0.5);
    }
    const EmpiricalCdf a(std::move(xs)), b(std::move(ys));
    const double d = a.ksDistance(b);
    // Theoretical KS for a 0.5-sigma shift is ~0.197.
    EXPECT_NEAR(d, 0.197, 0.04);
}

TEST(Ecdf, AtIsRightContinuousCountingTies)
{
    const EmpiricalCdf cdf({2.0, 2.0, 2.0, 5.0});
    EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
    EXPECT_DOUBLE_EQ(cdf.at(1.9999), 0.0);
}

TEST(Ecdf, AtLeftIsTheLeftLimit)
{
    const EmpiricalCdf cdf({2.0, 2.0, 2.0, 5.0});
    EXPECT_DOUBLE_EQ(cdf.atLeft(2.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.atLeft(5.0), 0.75);
    EXPECT_DOUBLE_EQ(cdf.atLeft(6.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.atLeft(1.0), 0.0);
}

TEST(Ecdf, KsDistanceComparesLeftLimitsOnIdenticalSupport)
{
    // Both samples step only at {1, 2}, with opposite weights. The
    // right-continuous values agree at x=2 onward and the largest
    // right-side gap is |0.75 - 0.25| = 0.5 at x=1; the left limits
    // at x=2 expose the same 0.5 gap. A ksDistance that looked only
    // at right-side values at the merged points would still be exact
    // here, but must never report *more* than the true supremum.
    const EmpiricalCdf a({1.0, 1.0, 1.0, 2.0});
    const EmpiricalCdf b({1.0, 2.0, 2.0, 2.0});
    EXPECT_DOUBLE_EQ(a.ksDistance(b), 0.5);
    EXPECT_DOUBLE_EQ(b.ksDistance(a), 0.5);
}

TEST(Ecdf, KsDistanceOnSharedSupportCountsTieWeights)
{
    // Identical support {1, 2, 3}; only the tie multiplicities differ.
    // True KS = max over jump points of both value and left-limit
    // gaps: F_a = {.2, .6, 1}, F_b = {.6, .8, 1} -> sup gap 0.4.
    const EmpiricalCdf a({1.0, 2.0, 2.0, 3.0, 3.0});
    const EmpiricalCdf b({1.0, 1.0, 1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(a.ksDistance(b), 0.4);
}

TEST(Ecdf, FromQuantileFunctionRoundTripsAnExactCdf)
{
    // Re-rendering a CDF through its own quantile function must give
    // back (a dense sampling of) the same curve: the KS distance is
    // bounded by the sampling granularity alone.
    const EmpiricalCdf exact({1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 13.0});
    const auto rendered = EmpiricalCdf::fromQuantileFunction(
        [&](double q) { return exact.quantile(q); }, 201);
    EXPECT_EQ(rendered.size(), 201u);
    EXPECT_DOUBLE_EQ(rendered.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(rendered.quantile(1.0), 13.0);
    EXPECT_LE(rendered.ksDistance(exact),
              1.0 / 200.0 + 1.0 / exact.size());
    // curve() on the rendered CDF is usable like any other.
    const auto curve = rendered.curve(11);
    EXPECT_EQ(curve.size(), 11u);
}

TEST(Ecdf, FromQuantileFunctionMonotonizesWobble)
{
    // An approximate quantile function (a sketch) may wobble within
    // its rank-error band; the bridge clamps it non-decreasing so the
    // result is still a valid CDF.
    const auto cdf = EmpiricalCdf::fromQuantileFunction(
        [](double q) {
            const int step = static_cast<int>(q * 100.0);
            return 10.0 * q + (step % 2 ? -0.3 : 0.3);
        },
        101);
    const auto sorted = cdf.sorted();
    for (std::size_t i = 1; i < sorted.size(); ++i)
        EXPECT_LE(sorted[i - 1], sorted[i]);
}

TEST(Ecdf, FromQuantileFunctionEmptySignal)
{
    // NaN at level 0 is the "empty distribution" signal.
    const auto cdf = EmpiricalCdf::fromQuantileFunction(
        [](double) { return std::nan(""); }, 11);
    EXPECT_TRUE(cdf.empty());
}

TEST(Ecdf, FromQuantileFunctionContracts)
{
    ScopedCheckFailHandler guard;
    const auto identity = [](double q) { return q; };
    EXPECT_THROW(EmpiricalCdf::fromQuantileFunction(identity, 1),
                 ContractViolation);
    // NaN appearing after real values is a broken quantile function,
    // not an empty stream.
    EXPECT_THROW(EmpiricalCdf::fromQuantileFunction(
                     [](double q) {
                         return q > 0.5 ? std::nan("") : q;
                     },
                     11),
                 ContractViolation);
}

// Property: for samples from U(0,1), quantile(q) ~ q.
class EcdfUniformProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(EcdfUniformProperty, QuantileTracksLevel)
{
    Rng rng(31);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.uniform());
    const EmpiricalCdf cdf(std::move(xs));
    const double q = GetParam();
    EXPECT_NEAR(cdf.quantile(q), q, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Levels, EcdfUniformProperty,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95));

} // namespace
} // namespace aiwc::stats
