// Rule-engine fixtures: one violating ("positive") and one clean
// ("negative") snippet per rule, plus the suppression grammar and the
// seeded-violation case the CI `lint-aiwc` job relies on — if a
// violation stops producing a finding, the gate is decorative and this
// suite is what catches it.

#include "rules.hh"

#include <algorithm>
#include <gtest/gtest.h>

namespace aiwc::lint
{
namespace
{

int
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(fs.begin(), fs.end(),
                      [&](const Finding &f) { return f.rule == rule; }));
}

// --- det-random ------------------------------------------------------------

TEST(LintRules, DetRandomFlagsEntropyAndWallClock)
{
    const auto fs = lintSource("src/core/x.cc",
                               "#include <random>\n"
                               "int f() {\n"
                               "  std::random_device rd;\n"
                               "  srand(42);\n"
                               "  long t = time(nullptr);\n"
                               "  auto n = std::chrono::system_clock::now();\n"
                               "  return rand();\n"
                               "}\n");
    EXPECT_EQ(countRule(fs, "det-random"), 5);
}

TEST(LintRules, DetRandomCleanAndAllowlisted)
{
    // steady_clock and the project Rng are fine anywhere.
    const auto clean = lintSource(
        "src/core/x.cc",
        "auto t = std::chrono::steady_clock::now();\n"
        "double v = rng.uniform();\n");
    EXPECT_EQ(countRule(clean, "det-random"), 0);

    // obs/ and bench/ may read the wall clock.
    const auto obs = lintSource(
        "src/obs/trace.cc",
        "auto w = std::chrono::system_clock::now();\n");
    EXPECT_EQ(countRule(obs, "det-random"), 0);
    const auto bench = lintSource(
        "bench/bench_x.cpp", "long t = time(nullptr);\n");
    EXPECT_EQ(countRule(bench, "det-random"), 0);
}

TEST(LintRules, DetRandomIgnoresStringsAndComments)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "// calls srand() on legacy systems\n"
        "const char *doc = \"never rand() here\";\n"
        "/* time(nullptr) would be wrong */\n");
    EXPECT_EQ(countRule(fs, "det-random"), 0);
}

// --- det-unordered-iter ----------------------------------------------------

TEST(LintRules, UnorderedIterFlagsRangeForOverMember)
{
    const auto fs = lintSource(
        "src/sched/x.cc",
        "#include <unordered_map>\n"
        "std::unordered_map<int, double> usage_;\n"
        "void dump() {\n"
        "  for (const auto &kv : usage_) { emit(kv); }\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "det-unordered-iter"), 1);
    for (const auto &f : fs)
        if (f.rule == "det-unordered-iter")
            EXPECT_EQ(f.line, 4);
}

TEST(LintRules, UnorderedIterFlagsAliasAndIteratorLoop)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "using Index = std::unordered_set<long>;\n"
        "Index index_;\n"
        "void walk() {\n"
        "  for (auto it = index_.begin(); it != index_.end(); ++it) {}\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "det-unordered-iter"), 1);
}

TEST(LintRules, UnorderedIterUsesCompanionHeaderDeclarations)
{
    const std::string header =
        "#pragma once\n"
        "#include <unordered_map>\n"
        "class Collector {\n"
        "  std::unordered_map<int, int> streams_;\n"
        "};\n";
    const std::string source =
        "void Collector::report() {\n"
        "  for (auto &s : streams_) { write(s); }\n"
        "}\n";
    const auto fs = lintSource("src/telemetry/x.cc", source, &header);
    EXPECT_EQ(countRule(fs, "det-unordered-iter"), 1);

    // Without the header the member's type is unknown: no finding.
    const auto alone = lintSource("src/telemetry/x.cc", source);
    EXPECT_EQ(countRule(alone, "det-unordered-iter"), 0);
}

TEST(LintRules, UnorderedIterAllowsOrderedMapsAndLookups)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "std::map<int, double> ordered_;\n"
        "std::unordered_map<int, double> cache_;\n"
        "void ok() {\n"
        "  for (const auto &kv : ordered_) { emit(kv); }\n"
        "  auto it = cache_.find(3);\n"
        "  cache_.erase(it);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "det-unordered-iter"), 0);
}

// --- contract-assert / contract-abort --------------------------------------

TEST(LintRules, ContractAssertFlagsBareAssert)
{
    const auto fs = lintSource("src/sim/x.cc",
                               "void f(int n) { assert(n > 0); }\n");
    EXPECT_EQ(countRule(fs, "contract-assert"), 1);
}

TEST(LintRules, ContractAssertAllowsProjectMacrosAndStaticAssert)
{
    const auto fs = lintSource(
        "src/sim/x.cc",
        "void f(int n) {\n"
        "  AIWC_CHECK(n > 0, \"n\");\n"
        "  AIWC_DCHECK(n < 10);\n"
        "  static_assert(sizeof(int) == 4);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "contract-assert"), 0);
}

TEST(LintRules, ContractAbortFlagsTerminators)
{
    const auto fs = lintSource("src/core/x.cc",
                               "void f() { std::abort(); }\n"
                               "void g() { exit(2); }\n");
    EXPECT_EQ(countRule(fs, "contract-abort"), 2);
}

TEST(LintRules, ContractAbortAllowsCheckImplAndDeclarations)
{
    // check.cc owns process termination.
    const auto impl = lintSource("src/base/check.cc",
                                 "void die() { std::abort(); }\n");
    EXPECT_EQ(countRule(impl, "contract-abort"), 0);

    // `LogNormal abort(...)` is a declaration, not a call.
    const auto decl = lintSource(
        "src/workload/x.cc",
        "const dist::LogNormal abort(median, sigma);\n");
    EXPECT_EQ(countRule(decl, "contract-abort"), 0);

    // Tests may terminate (death tests); the rule is src/-scoped.
    const auto test = lintSource("tests/common/x.cc",
                                 "void boom() { std::abort(); }\n");
    EXPECT_EQ(countRule(test, "contract-abort"), 0);
}

// --- thread-raw ------------------------------------------------------------

TEST(LintRules, ThreadRawFlagsStdThreadAsyncDetach)
{
    const auto fs = lintSource(
        "src/workload/x.cc",
        "void f() {\n"
        "  std::thread t([] {});\n"
        "  auto fut = std::async(g);\n"
        "  t.detach();\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "thread-raw"), 3);
}

TEST(LintRules, ThreadRawAllowsParallelModuleAndThisThread)
{
    const auto pool = lintSource("src/common/parallel.cc",
                                 "std::thread worker([] {});\n");
    EXPECT_EQ(countRule(pool, "thread-raw"), 0);

    const auto ids = lintSource(
        "src/obs/trace.cc",
        "auto id = std::this_thread::get_id();\n"
        "thread_local int depth = 0;\n");
    EXPECT_EQ(countRule(ids, "thread-raw"), 0);
}

// --- metric-name -----------------------------------------------------------

TEST(LintRules, MetricNameRequiresAiwcPrefixAndTwoSegments)
{
    const auto fs = lintSource(
        "src/sched/x.cc",
        "r.counter(\"sched.passes\");\n"          // missing aiwc. prefix
        "r.gauge(\"aiwc.threads\");\n"            // only one segment
        "r.histogram(\"aiwc.Sched.pass_ns\");\n"  // uppercase segment
        );
    EXPECT_EQ(countRule(fs, "metric-name"), 3);
}

TEST(LintRules, MetricNameAcceptsCompliantAndConcatenatedNames)
{
    const auto fs = lintSource(
        "src/sched/x.cc",
        "r.counter(\"aiwc.sched.backfill_hits\");\n"
        "r.histogram(\"aiwc.analyzer.\" + name + \".wall_ns\");\n");
    EXPECT_EQ(countRule(fs, "metric-name"), 0);
}

TEST(LintRules, MetricNameFlagsBadConcatenatedPrefix)
{
    const auto fs = lintSource(
        "src/obs/x.cc",
        "r.counter(\"analyzer.\" + name + \".runs\");\n");
    EXPECT_EQ(countRule(fs, "metric-name"), 1);
}

TEST(LintRules, MetricNameCoversStreamingDirectories)
{
    // The aiwc::sketch / aiwc::stream subsystems register their own
    // metrics; the rule must hold there like everywhere under src/.
    const auto good = lintSource(
        "src/sketch/kll.cc",
        "r.counter(\"aiwc.sketch.compactions\");\n"
        "r.gauge(\"aiwc.sketch.bytes\");\n");
    EXPECT_EQ(countRule(good, "metric-name"), 0);

    const auto bad = lintSource(
        "src/stream/pipeline.cc",
        "r.counter(\"stream.rows_ingested\");\n");  // missing aiwc.
    EXPECT_EQ(countRule(bad, "metric-name"), 1);
}

TEST(LintRules, MetricNameCoversTraceFormatDirectory)
{
    // aiwc::fmt registers the trace encode/decode/reject counters; the
    // naming law applies in src/fmt like everywhere else under src/.
    const auto good = lintSource(
        "src/fmt/trace.cc",
        "r.counter(\"aiwc.fmt.traces_encoded\");\n"
        "r.counter(\"aiwc.fmt.traces_decoded\");\n"
        "r.counter(\"aiwc.fmt.decode_rejects\");\n");
    EXPECT_EQ(countRule(good, "metric-name"), 0);

    const auto bad = lintSource(
        "src/fmt/trace.cc",
        "r.counter(\"fmt.decode_rejects\");\n");  // missing aiwc.
    EXPECT_EQ(countRule(bad, "metric-name"), 1);
}

TEST(LintRules, MetricNameScopedToSrc)
{
    // Registry mechanics tests use arbitrary names on purpose.
    const auto fs = lintSource("tests/obs/test_metrics.cc",
                               "registry.counter(\"zebra\");\n");
    EXPECT_EQ(countRule(fs, "metric-name"), 0);
}

// --- header-pragma-once ----------------------------------------------------

TEST(LintRules, PragmaOnceRequiredInPublicHeaders)
{
    const auto fs = lintSource(
        "src/include/aiwc/core/x.hh",
        "#ifndef AIWC_CORE_X_HH\n#define AIWC_CORE_X_HH\n"
        "int f();\n#endif\n");
    EXPECT_EQ(countRule(fs, "header-pragma-once"), 1);
}

TEST(LintRules, PragmaOnceAfterDocCommentIsFine)
{
    const auto fs = lintSource(
        "src/include/aiwc/core/x.hh",
        "/**\n * @file\n * Doc.\n */\n\n#pragma once\n\nint f();\n");
    EXPECT_EQ(countRule(fs, "header-pragma-once"), 0);

    // Sources and private headers are out of scope.
    const auto cc = lintSource("src/core/x.cc", "int f() { return 0; }\n");
    EXPECT_EQ(countRule(cc, "header-pragma-once"), 0);
}

// --- header-using-ns -------------------------------------------------------

TEST(LintRules, UsingNamespaceAtNamespaceScopeInHeaderFlagged)
{
    const auto fs = lintSource(
        "src/include/aiwc/core/x.hh",
        "#pragma once\n"
        "using namespace std;\n"
        "namespace aiwc {\n"
        "using namespace std::chrono;\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "header-using-ns"), 2);
}

TEST(LintRules, UsingNamespaceInsideFunctionOrAliasIsFine)
{
    const auto fs = lintSource(
        "src/include/aiwc/core/x.hh",
        "#pragma once\n"
        "namespace aiwc {\n"
        "inline int f() {\n"
        "  using namespace std::chrono;\n"
        "  return 1;\n"
        "}\n"
        "namespace fs = std::filesystem;\n"
        "using std::string;\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "header-using-ns"), 0);
}

// --- suppressions ----------------------------------------------------------

TEST(LintRules, SuppressionOnSameLineAndLineAbove)
{
    const auto same = lintSource(
        "src/core/x.cc",
        "void f() { assert(1); }  "
        "// aiwc-lint: allow(contract-assert) -- fixture\n");
    EXPECT_EQ(countRule(same, "contract-assert"), 0);

    const auto above = lintSource(
        "src/core/x.cc",
        "// aiwc-lint: allow(contract-assert) -- fixture\n"
        "void f() { assert(1); }\n");
    EXPECT_EQ(countRule(above, "contract-assert"), 0);
}

TEST(LintRules, SuppressionIsRuleSpecific)
{
    // An allow() for a different rule must not mask the finding.
    const auto fs = lintSource(
        "src/core/x.cc",
        "// aiwc-lint: allow(det-random) -- wrong rule\n"
        "void f() { assert(1); }\n");
    EXPECT_EQ(countRule(fs, "contract-assert"), 1);
}

TEST(LintRules, SuppressionWithoutReasonIsAFinding)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "// aiwc-lint: allow(contract-assert)\n"
        "void f() { assert(1); }\n");
    EXPECT_EQ(countRule(fs, "bad-suppression"), 1);
    // And the unjustified suppression does not take effect.
    EXPECT_EQ(countRule(fs, "contract-assert"), 1);
}

TEST(LintRules, SuppressionUnknownRuleIsAFinding)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "// aiwc-lint: allow(no-such-rule) -- reason\n"
        "int x;\n");
    EXPECT_EQ(countRule(fs, "bad-suppression"), 1);
}

TEST(LintRules, MultiRuleSuppression)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "// aiwc-lint: allow(contract-assert, det-random) -- fixture\n"
        "void f() { assert(rand()); }\n");
    EXPECT_EQ(countRule(fs, "contract-assert"), 0);
    EXPECT_EQ(countRule(fs, "det-random"), 0);
}

TEST(LintRules, SuppressionGrammarInProseIsNotASuppression)
{
    // Documentation that *mentions* the marker mid-comment must neither
    // fire bad-suppression nor suppress anything.
    const auto fs = lintSource(
        "src/core/x.cc",
        "// the grammar is aiwc-lint: allow(<rule>[, ...]) -- <reason>\n"
        "void f() { assert(1); }\n");
    EXPECT_EQ(countRule(fs, "bad-suppression"), 0);
    EXPECT_EQ(countRule(fs, "contract-assert"), 1);
}

TEST(LintRules, SplicedSuppressionCoversThePhysicalNextLine)
{
    // A backslash continuation folds the next physical line into the
    // comment token; the suppression span must still be computed from
    // physical lines (token end_line), so the decl two physical lines
    // below the comment's start is covered.
    const auto fs = lintSource(
        "src/core/x.cc",
        "// aiwc-lint: allow(mutable-global) -- fixture \\\n"
        "   continuation of the reason\n"
        "int counter = 0;\n");
    EXPECT_EQ(countRule(fs, "mutable-global"), 0);
}

TEST(LintRules, ThreadRawAnchorsAtTheTriggeringToken)
{
    // `std::` and `thread` on different physical lines: the finding
    // must cite the line of the banned name, not of the qualifier.
    const auto fs = lintSource("src/workload/x.cc",
                               "void f() {\n"
                               "  std::\n"
                               "      thread t([] {});\n"
                               "}\n");
    ASSERT_EQ(countRule(fs, "thread-raw"), 1);
    EXPECT_EQ(fs[0].line, 3);
}

// --- mutable-global --------------------------------------------------------

TEST(LintRules, MutableGlobalFlagsNamespaceScopeState)
{
    const auto fs = lintSource("src/core/x.cc",
                               "namespace aiwc {\n"
                               "int call_count = 0;\n"
                               "thread_local int depth = 0;\n"
                               "}\n");
    EXPECT_EQ(countRule(fs, "mutable-global"), 2);
}

TEST(LintRules, MutableGlobalAllowsConstantsExternsAndLocals)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "const int kLimit = 8;\n"
        "constexpr double kScale = 1.5;\n"
        "extern int configured_elsewhere;\n"
        "int accessor() { static int slot = 0; return slot; }\n"
        "struct S { int member; };\n");
    EXPECT_EQ(countRule(fs, "mutable-global"), 0);

    // The rule is src/-scoped: test fixtures keep their globals.
    const auto test = lintSource("tests/core/x.cc", "int fixture = 1;\n");
    EXPECT_EQ(countRule(test, "mutable-global"), 0);
}

// --- lock-discipline -------------------------------------------------------

TEST(LintRules, LockDisciplineFlagsManualLockCalls)
{
    const auto fs = lintSource("src/obs/x.cc",
                               "void f() {\n"
                               "  mutex_.lock();\n"
                               "  ptr->unlock();\n"
                               "  if (m_.try_lock()) { m_.unlock(); }\n"
                               "}\n");
    EXPECT_EQ(countRule(fs, "lock-discipline"), 4);
}

TEST(LintRules, LockDisciplineAllowsRaiiGuards)
{
    const auto fs = lintSource(
        "src/obs/x.cc",
        "void f() {\n"
        "  std::lock_guard<std::mutex> guard(mutex_);\n"
        "  std::unique_lock<std::mutex> lock(mutex_);\n"
        "  std::scoped_lock lock2(a_, b_);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "lock-discipline"), 0);
}

// --- float-reduce-order ----------------------------------------------------

TEST(LintRules, FloatReduceOrderFlagsReduceAndFloatAccumulate)
{
    const auto fs = lintSource(
        "src/stats/x.cc",
        "double f(const std::vector<double> &v) {\n"
        "  double a = std::reduce(v.begin(), v.end());\n"
        "  double b = std::accumulate(v.begin(), v.end(), 0.0);\n"
        "  return a + b;\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "float-reduce-order"), 2);
}

TEST(LintRules, FloatReduceOrderAllowsIntegersAndExemptModules)
{
    // Integer accumulation is associative: no ordering hazard.
    const auto ints = lintSource(
        "src/stats/x.cc",
        "long f(const std::vector<long> &v) {\n"
        "  return std::accumulate(v.begin(), v.end(), 0L);\n"
        "}\n");
    EXPECT_EQ(countRule(ints, "float-reduce-order"), 0);

    // The deterministic merges live in common/parallel.* and sketch/.
    const auto pool = lintSource(
        "src/common/parallel.cc",
        "double m(const std::vector<double> &v) {\n"
        "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
        "}\n");
    EXPECT_EQ(countRule(pool, "float-reduce-order"), 0);

    const auto sketch = lintSource(
        "src/sketch/kll.cc",
        "double m(const std::vector<double> &v) {\n"
        "  return std::reduce(v.begin(), v.end());\n"
        "}\n");
    EXPECT_EQ(countRule(sketch, "float-reduce-order"), 0);
}

// --- rendering & the CI gate -----------------------------------------------

TEST(LintRules, SeededViolationProducesFailingReport)
{
    // The exact shape the CI lint-aiwc job depends on: a violation in a
    // src/ file yields findings (CLI exit 1) and a JSON report that
    // names the file, rule, and line.
    const auto fs = lintSource("src/core/seeded.cc",
                               "void f() { std::abort(); }\n");
    ASSERT_FALSE(fs.empty());

    const std::string json = renderJson(fs);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"contract-abort\""), std::string::npos);
    EXPECT_NE(json.find("\"file\": \"src/core/seeded.cc\""),
              std::string::npos);

    const std::string human = renderHuman(fs);
    EXPECT_NE(human.find("src/core/seeded.cc:1: contract-abort:"),
              std::string::npos);
}

TEST(LintRules, CleanFileRendersEmptyReport)
{
    const auto fs =
        lintSource("src/core/clean.cc", "int f() { return 3; }\n");
    EXPECT_TRUE(fs.empty());
    EXPECT_NE(renderJson(fs).find("\"count\": 0"), std::string::npos);
    EXPECT_TRUE(renderHuman(fs).empty());
}

TEST(LintRules, FindingsAreSortedAndJsonEscaped)
{
    auto fs = lintSource("src/core/x.cc",
                         "void g() { exit(1); }\n"
                         "void f() { assert(1); }\n");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_LE(fs[0].line, fs[1].line);

    Finding f{"src/a \"b\".cc", 1, "det-random", "msg with \\ and \""};
    const std::string json = renderJson({f});
    EXPECT_NE(json.find("src/a \\\"b\\\".cc"), std::string::npos);
    EXPECT_NE(json.find("msg with \\\\ and \\\""), std::string::npos);
}

} // namespace
} // namespace aiwc::lint
