// Include-graph machinery: directive extraction, build-mirroring
// resolution, the layers.txt spec grammar, and the two graph rules on
// canonical shapes — a diamond (clean), a cycle, and a cross-layer
// include.

#include "graph.hh"

#include <gtest/gtest.h>

#include "lexer.hh"
#include "rules.hh"

namespace aiwc::lint
{
namespace
{

std::vector<IncludeEdge>
includesOf(const std::string &src)
{
    return extractIncludes(lex(src));
}

int
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    int n = 0;
    for (const Finding &f : fs)
        if (f.rule == rule)
            ++n;
    return n;
}

TEST(LintGraph, ExtractsQuotedAndAngledIncludes)
{
    const auto edges = includesOf("#include \"aiwc/core/model.hh\"\n"
                                  "#include <vector>\n"
                                  "// #include \"not/real.hh\"\n"
                                  "int x;\n");
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0].spelled, "aiwc/core/model.hh");
    EXPECT_FALSE(edges[0].angled);
    EXPECT_EQ(edges[0].line, 1);
    EXPECT_EQ(edges[1].spelled, "vector");
    EXPECT_TRUE(edges[1].angled);
}

TEST(LintGraph, ResolutionMirrorsTheBuild)
{
    const std::set<std::string> tree = {
        "src/include/aiwc/core/model.hh",
        "src/core/helper.hh",
        "tools/aiwc-lint/lexer.hh",
    };
    auto edges = includesOf("#include \"aiwc/core/model.hh\"\n"
                            "#include \"helper.hh\"\n"
                            "#include \"lexer.hh\"\n"
                            "#include <vector>\n");
    resolveIncludes("src/core/engine.cc", edges, tree);
    EXPECT_EQ(edges[0].resolved, "src/include/aiwc/core/model.hh");
    EXPECT_EQ(edges[1].resolved, "src/core/helper.hh");  // sibling
    EXPECT_EQ(edges[2].resolved, "");  // lexer.hh is not a sibling here

    auto tool_edges = includesOf("#include \"tools/aiwc-lint/lexer.hh\"\n");
    resolveIncludes("tests/lint/test_lexer.cc", tool_edges, tree);
    EXPECT_EQ(tool_edges[0].resolved, "tools/aiwc-lint/lexer.hh");
}

TEST(LintGraph, DiamondIsClean)
{
    IncludeGraph g;
    g["a.hh"] = {{"b.hh", "b.hh", 1, false}, {"c.hh", "c.hh", 2, false}};
    g["b.hh"] = {{"d.hh", "d.hh", 1, false}};
    g["c.hh"] = {{"d.hh", "d.hh", 1, false}};
    g["d.hh"] = {};
    std::vector<Finding> out;
    checkCycles(g, out);
    EXPECT_TRUE(out.empty());
}

TEST(LintGraph, CycleIsReportedOnceWithFullPath)
{
    IncludeGraph g;
    g["a.hh"] = {{"b.hh", "b.hh", 3, false}};
    g["b.hh"] = {{"c.hh", "c.hh", 5, false}};
    g["c.hh"] = {{"a.hh", "a.hh", 7, false}};
    std::vector<Finding> out;
    checkCycles(g, out);
    ASSERT_EQ(countRule(out, "include-cycle"), 1);
    EXPECT_EQ(out[0].file, "c.hh");  // the back edge's source
    EXPECT_EQ(out[0].line, 7);
    EXPECT_NE(out[0].message.find("a.hh -> b.hh -> c.hh -> a.hh"),
              std::string::npos)
        << out[0].message;
}

TEST(LintGraph, SelfIncludeIsACycle)
{
    IncludeGraph g;
    g["x.hh"] = {{"x.hh", "x.hh", 2, false}};
    std::vector<Finding> out;
    checkCycles(g, out);
    EXPECT_EQ(countRule(out, "include-cycle"), 1);
}

// --- layers.txt ------------------------------------------------------------

const char kSpec[] = "# comment\n"
                     "module base src/include/aiwc/base src/base\n"
                     "allow base\n"
                     "module core src/include/aiwc/core src/core\n"
                     "allow core base\n"
                     "module tests tests\n"
                     "allow tests *\n";

TEST(LintGraph, LayerSpecParsesAndMapsLongestPrefix)
{
    LayerSpec spec;
    std::string err;
    ASSERT_TRUE(LayerSpec::parse(kSpec, spec, err)) << err;
    EXPECT_EQ(spec.moduleOf("src/base/check.cc"), "base");
    EXPECT_EQ(spec.moduleOf("src/include/aiwc/core/model.hh"), "core");
    EXPECT_EQ(spec.moduleOf("tests/core/test_model.cc"), "tests");
    EXPECT_EQ(spec.moduleOf("bench/bench_x.cpp"), "");
    EXPECT_EQ(spec.unconstrained.count("tests"), 1u);
}

TEST(LintGraph, LayerSpecMapsTraceFormatDirectories)
{
    // The fmt module splits across src/include/aiwc/fmt and src/fmt
    // like every library module, while the aiwc-trace CLI lives under
    // tools/ — both shapes must resolve by longest prefix.
    const char spec_text[] =
        "module base src/include/aiwc/base src/base\n"
        "allow base\n"
        "module fmt src/include/aiwc/fmt src/fmt\n"
        "allow fmt base\n"
        "module trace tools/aiwc-trace\n"
        "allow trace base fmt\n";
    LayerSpec spec;
    std::string err;
    ASSERT_TRUE(LayerSpec::parse(spec_text, spec, err)) << err;
    EXPECT_EQ(spec.moduleOf("src/fmt/trace.cc"), "fmt");
    EXPECT_EQ(spec.moduleOf("src/include/aiwc/fmt/mmap_file.hh"), "fmt");
    EXPECT_EQ(spec.moduleOf("tools/aiwc-trace/main.cc"), "trace");
}

TEST(LintGraph, LayerSpecRejectsMalformedSpecs)
{
    LayerSpec spec;
    std::string err;
    EXPECT_FALSE(LayerSpec::parse("frobnicate base src\n", spec, err));
    EXPECT_NE(err.find("unknown keyword"), std::string::npos);

    EXPECT_FALSE(LayerSpec::parse("module a src/a\nmodule b src/a\n"
                                  "allow a\nallow b\n",
                                  spec, err));
    EXPECT_NE(err.find("already mapped"), std::string::npos);

    EXPECT_FALSE(LayerSpec::parse("module a src/a\n", spec, err));
    EXPECT_NE(err.find("no allow line"), std::string::npos);

    EXPECT_FALSE(
        LayerSpec::parse("module a src/a\nallow a ghost\n", spec, err));
    EXPECT_NE(err.find("unknown module"), std::string::npos);

    EXPECT_FALSE(
        LayerSpec::parse("module a src/a\nallow a * a\n", spec, err));
    EXPECT_NE(err.find("'*'"), std::string::npos);

    EXPECT_FALSE(LayerSpec::parse("module a src/a\nallow a\nallow a\n",
                                  spec, err));
    EXPECT_NE(err.find("duplicate allow"), std::string::npos);
}

TEST(LintGraph, CrossLayerIncludeIsFlagged)
{
    LayerSpec spec;
    std::string err;
    ASSERT_TRUE(LayerSpec::parse(kSpec, spec, err)) << err;

    IncludeGraph g;
    // base -> core is NOT allowed; core -> base is; tests -> anything.
    g["src/base/check.cc"] = {{"aiwc/core/model.hh",
                               "src/include/aiwc/core/model.hh", 4, false}};
    g["src/core/model.cc"] = {{"aiwc/base/check.hh",
                               "src/include/aiwc/base/check.hh", 3, false}};
    g["tests/core/test_model.cc"] = {
        {"aiwc/core/model.hh", "src/include/aiwc/core/model.hh", 2,
         false}};

    std::vector<Finding> out;
    checkLayering(g, spec, out);
    ASSERT_EQ(countRule(out, "layer-violation"), 1);
    EXPECT_EQ(out[0].file, "src/base/check.cc");
    EXPECT_EQ(out[0].line, 4);
    EXPECT_NE(out[0].message.find("'base' must not depend on 'core'"),
              std::string::npos)
        << out[0].message;
}

TEST(LintGraph, UnresolvedAndSameModuleIncludesAreIgnored)
{
    LayerSpec spec;
    std::string err;
    ASSERT_TRUE(LayerSpec::parse(kSpec, spec, err)) << err;

    IncludeGraph g;
    g["src/core/model.cc"] = {
        {"vector", "", 1, true},  // external
        {"aiwc/core/graph.hh", "src/include/aiwc/core/graph.hh", 2,
         false},  // same module
    };
    std::vector<Finding> out;
    checkLayering(g, spec, out);
    EXPECT_TRUE(out.empty());
}

TEST(LintGraph, ReverseClosureFollowsIncludersTransitively)
{
    IncludeGraph g;
    g["base.hh"] = {};
    g["mid.hh"] = {{"base.hh", "base.hh", 1, false}};
    g["top.cc"] = {{"mid.hh", "mid.hh", 1, false}};
    g["other.cc"] = {};

    const auto closure = reverseClosure(g, {"base.hh"});
    EXPECT_EQ(closure.size(), 3u);
    EXPECT_EQ(closure.count("base.hh"), 1u);
    EXPECT_EQ(closure.count("mid.hh"), 1u);
    EXPECT_EQ(closure.count("top.cc"), 1u);
    EXPECT_EQ(closure.count("other.cc"), 0u);

    // A leaf's closure is just itself.
    const auto leaf = reverseClosure(g, {"top.cc"});
    EXPECT_EQ(leaf.size(), 1u);
}

} // namespace
} // namespace aiwc::lint
