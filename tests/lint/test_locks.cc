// Lock-model fixtures for the v3 concurrency rules: the lock-set
// analysis behind lock-discipline's guard tracking (defer/adopt/early
// unlock), guarded-field, requires-lock, the per-file lock-order edge
// contribution, the locks.txt spec parser, and the whole-program
// cycle check with its witness path. If an injected out-of-order
// acquisition stops producing a lock-order-cycle, the CI gate is
// decorative — this suite is what catches it.

#include "locks.hh"

#include <algorithm>
#include <gtest/gtest.h>

#include "analysis.hh"
#include "rules.hh"

namespace aiwc::lint
{
namespace
{

int
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(fs.begin(), fs.end(),
                      [&](const Finding &f) { return f.rule == rule; }));
}

const Finding *
findRule(const std::vector<Finding> &fs, const std::string &rule)
{
    for (const Finding &f : fs)
        if (f.rule == rule)
            return &f;
    return nullptr;
}

// --- guarded-field ---------------------------------------------------------

TEST(LintLocks, GuardedFieldFlagsUnlockedAccessOnly)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "class Table {\n"
        " public:\n"
        "  int size() const { return n_; }\n"
        "  void bump() {\n"
        "    std::lock_guard<std::mutex> lock(mutex_);\n"
        "    ++n_;\n"
        "  }\n"
        " private:\n"
        "  mutable std::mutex mutex_;\n"
        "  int n_ AIWC_GUARDED_BY(mutex_);\n"
        "};\n");
    EXPECT_EQ(countRule(fs, "guarded-field"), 1);
    const Finding *f = findRule(fs, "guarded-field");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->line, 3);
    EXPECT_NE(f->message.find("'n_'"), std::string::npos);
    EXPECT_NE(f->message.find("'mutex_'"), std::string::npos);
}

TEST(LintLocks, GuardedFieldExemptsConstructorsAndDestructors)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "class Table {\n"
        " public:\n"
        "  Table() { n_ = 1; }\n"
        "  ~Table() { n_ = 0; }\n"
        " private:\n"
        "  std::mutex mutex_;\n"
        "  int n_ AIWC_GUARDED_BY(mutex_);\n"
        "};\n");
    EXPECT_EQ(countRule(fs, "guarded-field"), 0);
}

TEST(LintLocks, GuardedFieldHonorsSuppressions)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "class Table {\n"
        " public:\n"
        "  // aiwc-lint: allow(guarded-field) -- single-threaded "
        "harness accessor\n"
        "  int size() const { return n_; }\n"
        " private:\n"
        "  std::mutex mutex_;\n"
        "  int n_ AIWC_GUARDED_BY(mutex_);\n"
        "};\n");
    EXPECT_EQ(countRule(fs, "guarded-field"), 0);
}

TEST(LintLocks, GuardedFieldSeesEarlyUnlock)
{
    // g.unlock() drops the lock-set mid-scope: the second access is
    // unprotected even though the guard object is still alive.
    const auto fs = lintSource(
        "src/core/x.cc",
        "class Table {\n"
        "  void f() {\n"
        "    std::unique_lock<std::mutex> g(mutex_);\n"
        "    ++n_;\n"
        "    g.unlock();\n"
        "    ++n_;\n"
        "  }\n"
        "  std::mutex mutex_;\n"
        "  int n_ AIWC_GUARDED_BY(mutex_);\n"
        "};\n");
    EXPECT_EQ(countRule(fs, "guarded-field"), 1);
    const Finding *f = findRule(fs, "guarded-field");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->line, 6);
}

// --- requires-lock ---------------------------------------------------------

TEST(LintLocks, RequiresLockFlagsUnheldCallee)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "class T {\n"
        "  void flushLocked() AIWC_REQUIRES(mutex_);\n"
        "  void bad() { flushLocked(); }\n"
        "  void good() {\n"
        "    std::lock_guard<std::mutex> l(mutex_);\n"
        "    flushLocked();\n"
        "  }\n"
        "  std::mutex mutex_;\n"
        "};\n");
    EXPECT_EQ(countRule(fs, "requires-lock"), 1);
    const Finding *f = findRule(fs, "requires-lock");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->line, 3);
    EXPECT_NE(f->message.find("AIWC_REQUIRES"), std::string::npos);
}

TEST(LintLocks, ExcludesFlagsHeldCallee)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "class T {\n"
        "  void reenter() AIWC_EXCLUDES(mutex_);\n"
        "  void bad() {\n"
        "    std::lock_guard<std::mutex> l(mutex_);\n"
        "    reenter();\n"
        "  }\n"
        "  void good() { reenter(); }\n"
        "  std::mutex mutex_;\n"
        "};\n");
    EXPECT_EQ(countRule(fs, "requires-lock"), 1);
    const Finding *f = findRule(fs, "requires-lock");
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->message.find("self-deadlock"), std::string::npos);
}

TEST(LintLocks, RequiresLockResolvesThroughCompanionHeader)
{
    // The annotation lives on the declaration in the module header;
    // the out-of-line definitions must still see it.
    const std::string companion =
        "class T {\n"
        "  void flushLocked() AIWC_REQUIRES(mutex_);\n"
        "  void tick();\n"
        "  std::mutex mutex_;\n"
        "  int n_ AIWC_GUARDED_BY(mutex_);\n"
        "};\n";
    const auto fs = lintSource("src/core/x.cc",
                               "void T::flushLocked() { ++n_; }\n"
                               "void T::tick() { flushLocked(); }\n",
                               &companion);
    // flushLocked()'s own body is clean: REQUIRES seeds its lock-set.
    EXPECT_EQ(countRule(fs, "guarded-field"), 0);
    // tick() calls it without the lock.
    EXPECT_EQ(countRule(fs, "requires-lock"), 1);
    const Finding *f = findRule(fs, "requires-lock");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->line, 2);
}

// --- lock-discipline: guard-state tracking ---------------------------------

TEST(LintLocks, DeferredGuardNeverLockedIsFlagged)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "void f() {\n"
        "  std::unique_lock<std::mutex> g(m_, std::defer_lock);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "lock-discipline"), 1);
    const Finding *f = findRule(fs, "lock-discipline");
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->message.find("defer_lock"), std::string::npos);
}

TEST(LintLocks, DeferredGuardLockedLaterIsClean)
{
    const auto fs = lintSource(
        "src/core/x.cc",
        "void f() {\n"
        "  std::unique_lock<std::mutex> g(m_, std::defer_lock);\n"
        "  g.lock();\n"
        "  g.unlock();\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "lock-discipline"), 0);
}

TEST(LintLocks, DoubleLockOnGuardIsFlagged)
{
    const auto fs = lintSource("src/core/x.cc",
                               "void f() {\n"
                               "  std::unique_lock<std::mutex> g(m_);\n"
                               "  g.lock();\n"
                               "}\n");
    EXPECT_EQ(countRule(fs, "lock-discipline"), 1);
    const Finding *f = findRule(fs, "lock-discipline");
    ASSERT_NE(f, nullptr);
    EXPECT_NE(f->message.find("double lock"), std::string::npos);
}

TEST(LintLocks, UnlockOnReleasedGuardIsFlagged)
{
    const auto fs = lintSource("src/core/x.cc",
                               "void f() {\n"
                               "  std::unique_lock<std::mutex> g(m_);\n"
                               "  g.unlock();\n"
                               "  g.unlock();\n"
                               "}\n");
    EXPECT_EQ(countRule(fs, "lock-discipline"), 1);
    const Finding *f = findRule(fs, "lock-discipline");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->line, 4);
}

TEST(LintLocks, AdoptLockAfterStdLockIsClean)
{
    // The std::lock + adopt_lock idiom: std::lock is a free function
    // (not a manual member call), and adopting guards neither
    // re-acquire nor contribute nesting edges.
    const auto fs = lintSource(
        "src/core/x.cc",
        "void f() {\n"
        "  std::lock(a_, b_);\n"
        "  std::lock_guard<std::mutex> ga(a_, std::adopt_lock);\n"
        "  std::lock_guard<std::mutex> gb(b_, std::adopt_lock);\n"
        "}\n");
    EXPECT_EQ(countRule(fs, "lock-discipline"), 0);
}

TEST(LintLocks, ManualMutexCallsStayFlagged)
{
    // The v2 contract: manual calls on non-guard receivers are still
    // lock-discipline findings in src/.
    const auto fs = lintSource("src/core/x.cc",
                               "void f() {\n"
                               "  mutex_.lock();\n"
                               "  mutex_.unlock();\n"
                               "}\n");
    EXPECT_EQ(countRule(fs, "lock-discipline"), 2);
}

// --- lock-order edges ------------------------------------------------------

FileAnalysis
analyze(const std::string &path, const std::string &content)
{
    return analyzeSource(path, content);
}

TEST(LintLocks, NestedGuardsEmitAnObservedEdge)
{
    const auto fa = analyze("src/core/x.cc",
                            "class Pair {\n"
                            "  void both() {\n"
                            "    std::lock_guard<std::mutex> l1(ma_);\n"
                            "    std::lock_guard<std::mutex> l2(mb_);\n"
                            "  }\n"
                            "  std::mutex ma_;\n"
                            "  std::mutex mb_;\n"
                            "};\n");
    ASSERT_EQ(fa.lock_edges.size(), 1u);
    EXPECT_EQ(fa.lock_edges[0].from, "Pair::ma_");
    EXPECT_EQ(fa.lock_edges[0].to, "Pair::mb_");
    EXPECT_EQ(fa.lock_edges[0].line, 4);
    EXPECT_FALSE(fa.lock_edges[0].declared);
}

TEST(LintLocks, AcquiredBeforeEmitsADeclaredEdge)
{
    const auto fa = analyze(
        "src/core/x.cc",
        "class Pair {\n"
        "  std::mutex ma_ AIWC_ACQUIRED_BEFORE(mb_);\n"
        "  std::mutex mb_;\n"
        "};\n");
    ASSERT_EQ(fa.lock_edges.size(), 1u);
    EXPECT_EQ(fa.lock_edges[0].from, "Pair::ma_");
    EXPECT_EQ(fa.lock_edges[0].to, "Pair::mb_");
    EXPECT_TRUE(fa.lock_edges[0].declared);
}

TEST(LintLocks, RequiresSeedsAcquisitionEdges)
{
    // Holding ma_ by contract, acquiring mb_ inside is an observed
    // ma_ -> mb_ nesting even with no guard for ma_ in this body.
    const auto fa = analyze("src/core/x.cc",
                            "class Pair {\n"
                            "  void inner() AIWC_REQUIRES(ma_) {\n"
                            "    std::lock_guard<std::mutex> l(mb_);\n"
                            "  }\n"
                            "  std::mutex ma_;\n"
                            "  std::mutex mb_;\n"
                            "};\n");
    ASSERT_EQ(fa.lock_edges.size(), 1u);
    EXPECT_EQ(fa.lock_edges[0].from, "Pair::ma_");
    EXPECT_EQ(fa.lock_edges[0].to, "Pair::mb_");
}

TEST(LintLocks, MutexLock2SameClassPairEmitsNoEdge)
{
    // Two-instance operations (merge, operator=) acquire both locks
    // atomically; a same-node self-edge would be a false cycle.
    const auto fa = analyze("src/core/x.cc",
                            "class P {\n"
                            "  void m(P &o) {\n"
                            "    MutexLock2 l(mu_, o.mu_);\n"
                            "  }\n"
                            "  aiwc::Mutex mu_;\n"
                            "};\n");
    EXPECT_TRUE(fa.lock_edges.empty());
}

TEST(LintLocks, UnresolvableLocksEmitNothing)
{
    // A lock that matches no known mutex field is skipped, not guessed.
    const auto fa = analyze("src/core/x.cc",
                            "void f() {\n"
                            "  std::lock_guard<std::mutex> a(global_mu);\n"
                            "  std::lock_guard<std::mutex> b(other_mu);\n"
                            "}\n");
    EXPECT_TRUE(fa.lock_edges.empty());
}

// --- locks.txt spec --------------------------------------------------------

TEST(LintLocks, LockSpecParsesAliasesAndOrders)
{
    LockSpec spec;
    std::string error;
    ASSERT_TRUE(LockSpec::parse("# comment\n"
                                "lock a Pair::ma_\n"
                                "lock b Pair::mb_\n"
                                "\n"
                                "order a b\n",
                                spec, error))
        << error;
    EXPECT_EQ(spec.locks.size(), 2u);
    EXPECT_EQ(spec.locks.at("a"), "Pair::ma_");
    ASSERT_EQ(spec.orders.size(), 1u);
    EXPECT_EQ(spec.orders[0].from, "Pair::ma_");
    EXPECT_EQ(spec.orders[0].to, "Pair::mb_");
    EXPECT_EQ(spec.orders[0].line, 5);
}

TEST(LintLocks, LockSpecRejectsMalformedSpecs)
{
    LockSpec spec;
    std::string error;
    // order with an undeclared alias
    EXPECT_FALSE(LockSpec::parse("lock a X::m\norder a b\n", spec, error));
    EXPECT_NE(error.find("locks.txt:2"), std::string::npos);
    // node without Class:: qualification
    EXPECT_FALSE(LockSpec::parse("lock a just_a_name\n", spec, error));
    // duplicate alias
    EXPECT_FALSE(
        LockSpec::parse("lock a X::m\nlock a Y::m\n", spec, error));
    // self-loop
    EXPECT_FALSE(
        LockSpec::parse("lock a X::m\norder a a\n", spec, error));
    // unknown directive
    EXPECT_FALSE(LockSpec::parse("mutex a X::m\n", spec, error));
}

// --- whole-program cycle check ---------------------------------------------

TEST(LintLocks, ObservedCycleIsReportedWithWitnessPath)
{
    const auto a = analyze("src/core/a.cc",
                           "class Pair {\n"
                           "  void fwd() {\n"
                           "    std::lock_guard<std::mutex> l1(ma_);\n"
                           "    std::lock_guard<std::mutex> l2(mb_);\n"
                           "  }\n"
                           "  std::mutex ma_;\n"
                           "  std::mutex mb_;\n"
                           "};\n");
    const auto b = analyze("src/core/b.cc",
                           "class Pair {\n"
                           "  void rev() {\n"
                           "    std::lock_guard<std::mutex> l1(mb_);\n"
                           "    std::lock_guard<std::mutex> l2(ma_);\n"
                           "  }\n"
                           "  std::mutex ma_;\n"
                           "  std::mutex mb_;\n"
                           "};\n");
    std::vector<const FileAnalysis *> records{&a, &b};
    std::vector<Finding> out;
    checkLockOrder(records, nullptr, "tools/aiwc-lint/locks.txt", out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "lock-order-cycle");
    // The witness names both hops with their provenance and anchors at
    // an observed acquisition site.
    EXPECT_NE(out[0].message.find("Pair::ma_ -> Pair::mb_"),
              std::string::npos);
    EXPECT_NE(out[0].message.find("Pair::mb_ -> Pair::ma_"),
              std::string::npos);
    EXPECT_NE(out[0].message.find("observed src/core/a.cc:4"),
              std::string::npos);
    EXPECT_NE(out[0].message.find("observed src/core/b.cc:4"),
              std::string::npos);
    EXPECT_TRUE(out[0].file == "src/core/a.cc" ||
                out[0].file == "src/core/b.cc");
}

TEST(LintLocks, ObservedEdgeAgainstDeclaredOrderClosesACycle)
{
    const auto a = analyze("src/core/a.cc",
                           "class Pair {\n"
                           "  void fwd() {\n"
                           "    std::lock_guard<std::mutex> l1(ma_);\n"
                           "    std::lock_guard<std::mutex> l2(mb_);\n"
                           "  }\n"
                           "  std::mutex ma_;\n"
                           "  std::mutex mb_;\n"
                           "};\n");
    LockSpec spec;
    std::string error;
    ASSERT_TRUE(LockSpec::parse("lock a Pair::ma_\n"
                                "lock b Pair::mb_\n"
                                "order b a\n",
                                spec, error))
        << error;
    std::vector<const FileAnalysis *> records{&a};
    std::vector<Finding> out;
    checkLockOrder(records, &spec, "tools/aiwc-lint/locks.txt", out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].rule, "lock-order-cycle");
    // Anchored at the observed half, citing the declared half.
    EXPECT_EQ(out[0].file, "src/core/a.cc");
    EXPECT_EQ(out[0].line, 4);
    EXPECT_NE(out[0].message.find("declared tools/aiwc-lint/locks.txt:3"),
              std::string::npos);
}

TEST(LintLocks, ConsistentOrderIsClean)
{
    const auto a = analyze("src/core/a.cc",
                           "class Pair {\n"
                           "  void fwd() {\n"
                           "    std::lock_guard<std::mutex> l1(ma_);\n"
                           "    std::lock_guard<std::mutex> l2(mb_);\n"
                           "  }\n"
                           "  std::mutex ma_;\n"
                           "  std::mutex mb_;\n"
                           "};\n");
    LockSpec spec;
    std::string error;
    ASSERT_TRUE(LockSpec::parse("lock a Pair::ma_\n"
                                "lock b Pair::mb_\n"
                                "order a b\n",
                                spec, error))
        << error;
    std::vector<const FileAnalysis *> records{&a};
    std::vector<Finding> out;
    checkLockOrder(records, &spec, "tools/aiwc-lint/locks.txt", out);
    EXPECT_TRUE(out.empty());
}

// --- the full pipeline -----------------------------------------------------

TEST(LintLocks, ProjectPipelineReportsInjectedInversion)
{
    // End-to-end acceptance: an out-of-order acquisition injected into
    // a tree linted with a spec comes back as a lock-order-cycle.
    std::vector<SourceFile> files;
    SourceFile sf;
    sf.path = "src/core/inverted.cc";
    sf.content = "class Pair {\n"
                 "  void rev() {\n"
                 "    std::lock_guard<std::mutex> l1(mb_);\n"
                 "    std::lock_guard<std::mutex> l2(ma_);\n"
                 "  }\n"
                 "  std::mutex ma_;\n"
                 "  std::mutex mb_;\n"
                 "};\n";
    files.push_back(sf);
    ProjectOptions options;
    options.locks_text = "lock a Pair::ma_\n"
                         "lock b Pair::mb_\n"
                         "order a b\n";
    const auto res = analyzeProject(files, options, nullptr);
    ASSERT_TRUE(res.error.empty()) << res.error;
    EXPECT_EQ(countRule(res.findings, "lock-order-cycle"), 1);
    const Finding *f = findRule(res.findings, "lock-order-cycle");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->file, "src/core/inverted.cc");
}

TEST(LintLocks, ProjectPipelineRejectsBadSpec)
{
    std::vector<SourceFile> files;
    SourceFile sf;
    sf.path = "src/core/x.cc";
    sf.content = "int x = 0;\n";
    files.push_back(sf);
    ProjectOptions options;
    options.locks_text = "order a b\n";
    const auto res = analyzeProject(files, options, nullptr);
    EXPECT_FALSE(res.error.empty());
}

TEST(LintLocks, CacheRoundTripsLockEdges)
{
    AnalysisCache cache;
    FileAnalysis fa = analyze("src/core/x.cc",
                              "class Pair {\n"
                              "  void both() {\n"
                              "    std::lock_guard<std::mutex> l1(ma_);\n"
                              "    std::lock_guard<std::mutex> l2(mb_);\n"
                              "  }\n"
                              "  std::mutex ma_;\n"
                              "  std::mutex mb_;\n"
                              "};\n");
    ASSERT_EQ(fa.lock_edges.size(), 1u);
    const std::uint64_t hash = fa.hash;
    cache.store(std::move(fa));

    AnalysisCache reloaded;
    ASSERT_TRUE(reloaded.load(cache.serialize()));
    const FileAnalysis *hit = reloaded.lookup("src/core/x.cc", hash);
    ASSERT_NE(hit, nullptr);
    ASSERT_EQ(hit->lock_edges.size(), 1u);
    EXPECT_EQ(hit->lock_edges[0].from, "Pair::ma_");
    EXPECT_EQ(hit->lock_edges[0].to, "Pair::mb_");
    EXPECT_EQ(hit->lock_edges[0].line, 4);
    EXPECT_FALSE(hit->lock_edges[0].declared);
}

TEST(LintLocks, OldCacheVersionIsRejected)
{
    // The v2 header must discard the whole cache: v2 records carry no
    // lock edges, and serving them would silently drop order checking.
    AnalysisCache cache;
    EXPECT_FALSE(cache.load("aiwc-lint-cache 2\n"));
    EXPECT_EQ(cache.size(), 0u);
}

} // namespace
} // namespace aiwc::lint
