// Whole-program driver: unused-include with its exemptions, the
// incremental cache's round-trip and invalidation, changed-set report
// scoping, and the SARIF 2.1.0 shape GitHub code scanning ingests.

#include "analysis.hh"

#include <gtest/gtest.h>

namespace aiwc::lint
{
namespace
{

int
countRule(const std::vector<Finding> &fs, const std::string &rule)
{
    int n = 0;
    for (const Finding &f : fs)
        if (f.rule == rule)
            ++n;
    return n;
}

SourceFile
file(const std::string &path, const std::string &content)
{
    SourceFile f;
    f.path = path;
    f.content = content;
    return f;
}

const char kStatsHeader[] = "#pragma once\n"
                            "namespace aiwc { double quantile(double); }\n";

// --- unused-include --------------------------------------------------------

TEST(LintAnalysis, UnusedIncludeFiresAndUseSilences)
{
    const auto header =
        file("src/include/aiwc/stats/quantile.hh", kStatsHeader);

    const auto unused = analyzeProject(
        {header, file("src/core/x.cc",
                      "#include \"aiwc/stats/quantile.hh\"\n"
                      "int f() { return 1; }\n")},
        {}, nullptr);
    EXPECT_EQ(countRule(unused.findings, "unused-include"), 1);
    EXPECT_EQ(unused.findings[0].file, "src/core/x.cc");
    EXPECT_EQ(unused.findings[0].line, 1);

    const auto used = analyzeProject(
        {header, file("src/core/x.cc",
                      "#include \"aiwc/stats/quantile.hh\"\n"
                      "double f() { return aiwc::quantile(0.5); }\n")},
        {}, nullptr);
    EXPECT_EQ(countRule(used.findings, "unused-include"), 0);
}

TEST(LintAnalysis, CompanionHeaderIsExemptAndOperatorsAreAdl)
{
    // A .cc including its own module header is never "unused" — the
    // include is the declaration/definition consistency check.
    const auto companion = analyzeProject(
        {file("src/include/aiwc/stats/quantile.hh", kStatsHeader),
         file("src/stats/quantile.cc",
              "#include \"aiwc/stats/quantile.hh\"\n"
              "int unrelated() { return 0; }\n")},
        {}, nullptr);
    EXPECT_EQ(countRule(companion.findings, "unused-include"), 0);

    // Operator-declaring headers are found via ADL without their names
    // ever appearing in the includer.
    const auto ops = analyzeProject(
        {file("src/include/aiwc/stats/ops.hh",
              "#pragma once\n"
              "namespace aiwc { struct Vec {};\n"
              "Vec operator+(const Vec &, const Vec &); }\n"),
         file("src/core/x.cc", "#include \"aiwc/stats/ops.hh\"\n"
                               "int f() { return 2; }\n")},
        {}, nullptr);
    EXPECT_EQ(countRule(ops.findings, "unused-include"), 0);
}

TEST(LintAnalysis, UmbrellaReexportsCountAsSupplying)
{
    const auto result = analyzeProject(
        {file("src/include/aiwc/stats/quantile.hh", kStatsHeader),
         file("src/include/aiwc/stats/all.hh",
              "#pragma once\n"
              "#include \"aiwc/stats/quantile.hh\"\n"),
         file("src/core/x.cc",
              "#include \"aiwc/stats/all.hh\"\n"
              "double f() { return aiwc::quantile(0.9); }\n")},
        {}, nullptr);
    EXPECT_EQ(countRule(result.findings, "unused-include"), 0);
}

TEST(LintAnalysis, LineAboveSuppressionCoversAnInclude)
{
    const auto result = analyzeProject(
        {file("src/include/aiwc/stats/quantile.hh", kStatsHeader),
         file("src/core/x.cc",
              "// aiwc-lint: allow(unused-include) -- kept for the "
              "template instantiation below\n"
              "#include \"aiwc/stats/quantile.hh\"\n"
              "int f() { return 3; }\n")},
        {}, nullptr);
    EXPECT_EQ(countRule(result.findings, "unused-include"), 0);
}

// --- layering through the driver -------------------------------------------

TEST(LintAnalysis, LayeringRunsWhenASpecIsGiven)
{
    ProjectOptions options;
    options.layers_text = "module base src/include/aiwc/base src/base\n"
                          "allow base\n"
                          "module core src/include/aiwc/core src/core\n"
                          "allow core base\n";
    const auto result = analyzeProject(
        {file("src/include/aiwc/core/model.hh",
              "#pragma once\nnamespace aiwc { int model(); }\n"),
         file("src/base/bad.cc", "#include \"aiwc/core/model.hh\"\n"
                                 "int g() { return aiwc::model(); }\n")},
        options, nullptr);
    EXPECT_EQ(countRule(result.findings, "layer-violation"), 1);

    ProjectOptions broken;
    broken.layers_text = "gibberish\n";
    const auto err = analyzeProject({}, broken, nullptr);
    EXPECT_FALSE(err.error.empty());
}

// --- incremental cache -----------------------------------------------------

TEST(LintAnalysis, CacheRoundTripsAndServesWarmRuns)
{
    const std::vector<SourceFile> files = {
        file("src/include/aiwc/stats/quantile.hh", kStatsHeader),
        file("src/core/x.cc", "#include \"aiwc/stats/quantile.hh\"\n"
                              "int f() { return time(nullptr); }\n")};

    AnalysisCache cache;
    const auto cold = analyzeProject(files, {}, &cache);
    EXPECT_EQ(cold.fresh, 2u);
    EXPECT_EQ(cold.cached, 0u);

    // Serialize, reload, re-run: everything served from the cache and
    // the findings byte-identical (unused-include recomputed from the
    // cached records, det-random straight from them).
    AnalysisCache reloaded;
    ASSERT_TRUE(reloaded.load(cache.serialize()));
    const auto warm = analyzeProject(files, {}, &reloaded);
    EXPECT_EQ(warm.fresh, 0u);
    EXPECT_EQ(warm.cached, 2u);
    EXPECT_EQ(warm.findings, cold.findings);
    EXPECT_GT(countRule(warm.findings, "det-random"), 0);
    EXPECT_GT(countRule(warm.findings, "unused-include"), 0);
}

TEST(LintAnalysis, CacheInvalidatesOnContentAndVersion)
{
    const auto hh =
        file("src/include/aiwc/stats/quantile.hh", kStatsHeader);
    AnalysisCache cache;
    analyzeProject({hh}, {}, &cache);

    auto edited = hh;
    edited.content += "namespace aiwc { double median(double); }\n";
    const auto rerun = analyzeProject({edited}, {}, &cache);
    EXPECT_EQ(rerun.fresh, 1u);  // stale hash -> re-analyzed

    AnalysisCache bad;
    EXPECT_FALSE(bad.load("aiwc-lint-cache 9999\n"));
    EXPECT_FALSE(bad.load("not a cache at all"));
    EXPECT_EQ(bad.size(), 0u);
}

TEST(LintAnalysis, CompanionContentIsPartOfTheCacheKey)
{
    auto cc = file("src/core/x.cc", "int f() { return 4; }\n");
    cc.companion = "#pragma once\n";
    cc.has_companion = true;

    AnalysisCache cache;
    analyzeProject({cc}, {}, &cache);
    cc.companion += "namespace aiwc { struct T {}; }\n";
    const auto rerun = analyzeProject({cc}, {}, &cache);
    EXPECT_EQ(rerun.fresh, 1u);
}

// --- changed-set scoping ---------------------------------------------------

TEST(LintAnalysis, ChangedSetRestrictsReportingToTheClosure)
{
    const std::vector<SourceFile> files = {
        file("src/include/aiwc/stats/quantile.hh", kStatsHeader),
        file("src/core/uses.cc",
             "#include \"aiwc/stats/quantile.hh\"\n"
             "int f() { return 5; }\n"),  // unused-include here
        file("src/core/other.cc",
             "long t = time(nullptr);\n")};  // det-random + mutable-global

    ProjectOptions all;
    const auto full = analyzeProject(files, all, nullptr);
    EXPECT_GT(countRule(full.findings, "det-random"), 0);

    // Changing the header re-reports its includer, not other.cc.
    ProjectOptions scoped;
    scoped.changed = {"src/include/aiwc/stats/quantile.hh"};
    const auto result = analyzeProject(files, scoped, nullptr);
    EXPECT_EQ(result.reported_files, 2u);
    EXPECT_EQ(countRule(result.findings, "unused-include"), 1);
    EXPECT_EQ(countRule(result.findings, "det-random"), 0);
}

// --- SARIF -----------------------------------------------------------------

TEST(LintAnalysis, SarifHasTheCodeScanningShape)
{
    const std::vector<Finding> findings = {
        {"src/core/x.cc", 7, "det-random",
         "time(nullptr) reads the wall clock"}};
    const std::string sarif = renderSarif(findings);

    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"aiwc-lint\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"det-random\""), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
    EXPECT_NE(sarif.find("\"uri\": \"src/core/x.cc\""), std::string::npos);
    // Every known rule ships its metadata, findings or not.
    for (const std::string &rule : knownRules())
        EXPECT_NE(sarif.find("\"id\": \"" + rule + "\""),
                  std::string::npos)
            << rule;

    const std::string empty = renderSarif({});
    EXPECT_NE(empty.find("\"results\": []"), std::string::npos);
}

} // namespace
} // namespace aiwc::lint
