// Outline-parser edge cases: the mutable-global rule and the
// unused-include symbol index are only as good as the declaration
// shapes the parser recovers — nested namespaces, templates,
// out-of-line members, and the qualifier flags that separate constants
// from state.

#include "outline.hh"

#include <gtest/gtest.h>

namespace aiwc::lint
{
namespace
{

Outline
parse(const std::string &src)
{
    return parseOutline(lex(src));
}

const Decl *
find(const Outline &o, const std::string &name)
{
    for (const Decl &d : o.decls)
        if (d.name == name)
            return &d;
    return nullptr;
}

TEST(LintOutline, NestedNamespacesQualifyNames)
{
    const auto o = parse("namespace a { namespace b { int x = 1; } }\n"
                         "namespace c::d { int y = 2; }\n");
    const Decl *x = find(o, "x");
    ASSERT_NE(x, nullptr);
    EXPECT_EQ(x->kind, DeclKind::Variable);
    EXPECT_EQ(x->qualified, "a::b::x");

    const Decl *y = find(o, "y");
    ASSERT_NE(y, nullptr);
    EXPECT_EQ(y->qualified, "c::d::y");
}

TEST(LintOutline, AnonymousNamespaceIsMarked)
{
    const auto o = parse("namespace { int hidden = 0; }\n");
    const Decl *d = find(o, "hidden");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->qualified, "(anonymous)::hidden");
}

TEST(LintOutline, TemplatedClassAndOutOfLineMember)
{
    const auto o = parse(
        "template <typename T, int N>\n"
        "class Ring {\n"
        "  T slots_[N];\n"
        "};\n"
        "int Counter::bump(int by) { return value_ += by; }\n");
    const Decl *ring = find(o, "Ring");
    ASSERT_NE(ring, nullptr);
    EXPECT_EQ(ring->kind, DeclKind::Type);
    // The member variable surfaces as a Field owned by the class, not
    // as a namespace-scope variable (declaredNames skips members).
    const Decl *slots = find(o, "slots_");
    ASSERT_NE(slots, nullptr);
    EXPECT_EQ(slots->kind, DeclKind::Field);
    EXPECT_EQ(slots->owner, "Ring");

    const Decl *bump = find(o, "bump");
    ASSERT_NE(bump, nullptr);
    EXPECT_EQ(bump->kind, DeclKind::Function);
    EXPECT_EQ(bump->line, 5);
}

TEST(LintOutline, QualifierFlagsAreRecorded)
{
    const auto o = parse("const int a = 1;\n"
                         "constexpr double b = 2.0;\n"
                         "extern int c;\n"
                         "thread_local int d = 4;\n"
                         "static int e;\n"
                         "int f = 6;\n");
    EXPECT_TRUE(find(o, "a")->is_const);
    EXPECT_TRUE(find(o, "b")->is_constexpr);
    EXPECT_TRUE(find(o, "c")->is_extern);
    EXPECT_TRUE(find(o, "d")->is_thread_local);
    EXPECT_TRUE(find(o, "e")->is_static);
    const Decl *f = find(o, "f");
    EXPECT_FALSE(f->is_const);
    EXPECT_TRUE(f->has_initializer);
    EXPECT_FALSE(find(o, "e")->has_initializer);
}

TEST(LintOutline, FunctionBodiesAreOpaque)
{
    const auto o = parse("void run() {\n"
                         "  static int calls = 0;\n"
                         "  int local = ++calls;\n"
                         "  (void)local;\n"
                         "}\n");
    ASSERT_NE(find(o, "run"), nullptr);
    EXPECT_EQ(find(o, "run")->kind, DeclKind::Function);
    EXPECT_EQ(find(o, "calls"), nullptr);
    EXPECT_EQ(find(o, "local"), nullptr);
}

TEST(LintOutline, EnumsAndEnumerators)
{
    const auto o = parse("enum Color { Red, Green = 2, Blue };\n"
                         "enum class Mode { Fast, Safe };\n");
    EXPECT_EQ(find(o, "Color")->kind, DeclKind::Type);
    EXPECT_EQ(find(o, "Red")->kind, DeclKind::Enumerator);
    EXPECT_NE(find(o, "Blue"), nullptr);
    // Scoped enumerators are not injected into the namespace.
    EXPECT_EQ(find(o, "Mode")->kind, DeclKind::Type);
    EXPECT_EQ(find(o, "Fast"), nullptr);
}

TEST(LintOutline, AliasesTypedefsAndMacros)
{
    const auto o = parse("#define AIWC_WIDGET(x) (x)\n"
                         "using Vec = std::vector<int>;\n"
                         "typedef unsigned long ulong_t;\n");
    EXPECT_EQ(find(o, "AIWC_WIDGET")->kind, DeclKind::Macro);
    EXPECT_EQ(find(o, "Vec")->kind, DeclKind::Alias);
    EXPECT_EQ(find(o, "ulong_t")->kind, DeclKind::Alias);
}

TEST(LintOutline, FunctionPointerDeclarator)
{
    const auto o = parse("void (*handler)(int) = nullptr;\n");
    const Decl *d = find(o, "handler");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->kind, DeclKind::Variable);
    EXPECT_TRUE(d->has_initializer);
}

TEST(LintOutline, StructWithTrailingInstance)
{
    const auto o = parse("struct Config { int level; } config;\n");
    EXPECT_EQ(find(o, "Config")->kind, DeclKind::Type);
    const Decl *inst = find(o, "config");
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(inst->kind, DeclKind::Variable);
    const Decl *level = find(o, "level");
    ASSERT_NE(level, nullptr);
    EXPECT_EQ(level->kind, DeclKind::Field);
    EXPECT_EQ(level->owner, "Config");
}

TEST(LintOutline, ThreadAnnotationsAreCaptured)
{
    const auto o = parse(
        "class Registry {\n"
        "  void flushLocked() AIWC_REQUIRES(mutex_);\n"
        "  void render() const AIWC_EXCLUDES(mutex_);\n"
        "  std::mutex mutex_ AIWC_ACQUIRED_BEFORE(inner_.mutex_);\n"
        "  std::mutex other_;\n"
        "  int count_ AIWC_GUARDED_BY(mutex_) = 0;\n"
        "};\n");
    const Decl *flush = find(o, "flushLocked");
    ASSERT_NE(flush, nullptr);
    EXPECT_EQ(flush->kind, DeclKind::Function);
    EXPECT_EQ(flush->owner, "Registry");
    ASSERT_EQ(flush->requires_locks.size(), 1u);
    EXPECT_EQ(flush->requires_locks[0], "mutex_");

    const Decl *render = find(o, "render");
    ASSERT_NE(render, nullptr);
    ASSERT_EQ(render->excludes_locks.size(), 1u);
    EXPECT_EQ(render->excludes_locks[0], "mutex_");

    const Decl *mutex = find(o, "mutex_");
    ASSERT_NE(mutex, nullptr);
    EXPECT_EQ(mutex->kind, DeclKind::Field);
    EXPECT_EQ(mutex->type_name, "mutex");
    ASSERT_EQ(mutex->acquired_before.size(), 1u);
    EXPECT_EQ(mutex->acquired_before[0], "inner_.mutex_");

    const Decl *count = find(o, "count_");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->guarded_by, "mutex_");
    EXPECT_TRUE(count->has_initializer);

    EXPECT_TRUE(find(o, "other_")->guarded_by.empty());
}

TEST(LintOutline, MemberFunctionBodiesAreIndexed)
{
    const auto o = parse("class C {\n"
                         "  int get() const { return v_; }\n"
                         "  int v_ = 0;\n"
                         "};\n");
    const Decl *get = find(o, "get");
    ASSERT_NE(get, nullptr);
    EXPECT_EQ(get->owner, "C");
    EXPECT_GE(get->body_begin, 0);
    EXPECT_GT(get->body_end, get->body_begin);
}

TEST(LintOutline, DeclaredNamesDedupeAndSkipNamespaces)
{
    const auto o = parse("namespace aiwc {\n"
                         "int foo();\n"
                         "int foo(int);\n"
                         "struct Bar {};\n"
                         "}\n");
    const auto names = declaredNames(o);
    ASSERT_EQ(names.size(), 2u);  // foo once, Bar; no "aiwc"
    EXPECT_EQ(names[0], "Bar");
    EXPECT_EQ(names[1], "foo");
}

TEST(LintOutline, GarbageResynchronizes)
{
    // Unparsable input must not wedge the parser or invent decls before
    // the next clean declaration.
    const auto o = parse("??? ->-> ]] (( ;\n"
                         "int after = 1;\n");
    EXPECT_NE(find(o, "after"), nullptr);
}

} // namespace
} // namespace aiwc::lint
