// Lexer edge cases: the rules only stay trustworthy if banned names
// inside strings, comments, and raw strings never surface as
// identifier tokens, and if line numbers survive continuations and
// multi-line comments.

#include "lexer.hh"

#include <gtest/gtest.h>

namespace aiwc::lint
{
namespace
{

std::vector<Token>
identifiers(const std::string &src)
{
    std::vector<Token> out;
    for (const Token &t : lex(src))
        if (t.kind == TokenKind::Identifier)
            out.push_back(t);
    return out;
}

TEST(LintLexer, StringContentsAreNotIdentifiers)
{
    const auto ids = identifiers("auto s = \"std::thread rand()\";");
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0].text, "auto");
    EXPECT_EQ(ids[1].text, "s");
}

TEST(LintLexer, EscapedQuotesStayInsideTheLiteral)
{
    // The \" must not close the string early and leak rand() as code.
    const auto ids = identifiers(R"(auto s = "a\"rand()\"b"; int x;)");
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids[2].text, "int");
    EXPECT_EQ(ids[3].text, "x");
}

TEST(LintLexer, RawStringsSwallowQuotesAndParens)
{
    const std::string src =
        "auto s = R\"(quote \" backslash \\ rand())\"; int after;";
    const auto ids = identifiers(src);
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids[3].text, "after");

    const auto tokens = lex(src);
    bool found = false;
    for (const Token &t : tokens)
        if (t.kind == TokenKind::String)
            found = t.text.find("rand()") != std::string::npos;
    EXPECT_TRUE(found) << "raw string body should be one String token";
}

TEST(LintLexer, RawStringWithCustomDelimiter)
{
    // The )" inside must NOT terminate: only )xy" does.
    const auto ids = identifiers("auto s = R\"xy(inner )\" rand)xy\"; int z;");
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids[3].text, "z");
}

TEST(LintLexer, BlockCommentSpanningLinesKeepsLineNumbers)
{
    const std::string src = "int a;\n/* rand()\n   srand()\n*/\nint b;\n";
    const auto tokens = lex(src);
    // No identifier named rand/srand appears.
    for (const Token &t : tokens)
        if (t.kind == TokenKind::Identifier) {
            EXPECT_TRUE(t.text == "int" || t.text == "a" || t.text == "b");
        }
    // And `b` is attributed to line 5, after the comment.
    for (const Token &t : tokens)
        if (t.kind == TokenKind::Identifier && t.text == "b") {
            EXPECT_EQ(t.line, 5);
        }
}

TEST(LintLexer, LineContinuationSplicesButKeepsLineCount)
{
    const std::string src = "int a\\\n b;\nint c;\n";
    const auto ids = identifiers(src);
    ASSERT_EQ(ids.size(), 5u);
    EXPECT_EQ(ids[1].text, "a");
    EXPECT_EQ(ids[2].text, "b");
    EXPECT_EQ(ids[2].line, 2);  // b lives on physical line 2
    EXPECT_EQ(ids[4].text, "c");
    EXPECT_EQ(ids[4].line, 3);
}

TEST(LintLexer, ContinuedPreprocessorLineIsOneDirective)
{
    const std::string src = "#define FOO(a, b) \\\n    ((a) + (b))\nint x;\n";
    const auto tokens = lex(src);
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens[0].kind, TokenKind::PpDirective);
    EXPECT_NE(tokens[0].text.find("((a) + (b))"), std::string::npos);
    // The macro body never shows up as code tokens.
    const auto ids = identifiers(src);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0].text, "int");
}

TEST(LintLexer, LineCommentsAreTokensWithTheirLine)
{
    const auto tokens = lex("int a;  // trailing note\nint b;\n");
    bool saw = false;
    for (const Token &t : tokens)
        if (t.kind == TokenKind::Comment) {
            saw = true;
            EXPECT_EQ(t.line, 1);
            EXPECT_NE(t.text.find("trailing note"), std::string::npos);
        }
    EXPECT_TRUE(saw);
}

TEST(LintLexer, ScopeResolutionIsOneToken)
{
    const auto tokens = lex("std::thread t;");
    ASSERT_GE(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].text, "std");
    EXPECT_EQ(tokens[1].kind, TokenKind::Punct);
    EXPECT_EQ(tokens[1].text, "::");
    EXPECT_EQ(tokens[2].text, "thread");
}

TEST(LintLexer, CharLiteralsDoNotOpenStrings)
{
    // The '"' char literal must not start a string that eats the rest.
    const auto ids = identifiers("char q = '\"'; int rand_free;");
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids[3].text, "rand_free");
}

TEST(LintLexer, UnterminatedBlockCommentDoesNotCrash)
{
    const auto tokens = lex("int a; /* never closed\nint b;");
    for (const Token &t : tokens)
        if (t.kind == TokenKind::Identifier) {
            EXPECT_NE(t.text, "b");
        }
}

TEST(LintLexer, EndLineTracksPhysicalLinesThroughSplices)
{
    // A line comment extended by a backslash continuation loses its
    // newlines to splicing; end_line must still report the physical
    // line where the comment really ends — the suppression-span fix.
    const auto tokens = lex("// spliced comment \\\n"
                            "   still the comment\n"
                            "int after;\n");
    ASSERT_GE(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Comment);
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[0].end_line, 2);
    EXPECT_EQ(tokens[1].text, "int");
    EXPECT_EQ(tokens[1].line, 3);
}

TEST(LintLexer, EndLineSpansMultiLineBlockComments)
{
    const auto tokens = lex("/* one\n   two\n   three */ int x;\n");
    ASSERT_GE(tokens.size(), 2u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Comment);
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[0].end_line, 3);
    EXPECT_EQ(tokens[1].line, 3);
}

TEST(LintLexer, EndLineEqualsLineForSingleLineTokens)
{
    for (const Token &t : lex("int a = 1; // note\nchar *p = \"s\";\n")) {
        EXPECT_EQ(t.end_line, t.line) << t.text;
        EXPECT_GE(t.end_line, 1) << t.text;
    }
}

TEST(LintLexer, SplicedIdentifierKeepsItsStartLine)
{
    // An identifier split by a continuation starts on line 1; its last
    // character lands on line 2.
    const auto tokens = lex("cou\\\nnter = 0;\n");
    ASSERT_GE(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].text, "counter");
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[0].end_line, 2);
}

TEST(LintLexer, EncodingPrefixedStringsAreStrings)
{
    const auto tokens = lex("auto a = u8\"rand()\"; auto b = L\"x\";");
    int strings = 0;
    for (const Token &t : tokens)
        if (t.kind == TokenKind::String)
            ++strings;
    EXPECT_EQ(strings, 2);
    for (const Token &t : tokens)
        if (t.kind == TokenKind::Identifier) {
            EXPECT_NE(t.text, "rand");
        }
}

} // namespace
} // namespace aiwc::lint
