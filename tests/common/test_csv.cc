#include <gtest/gtest.h>

#include <sstream>

#include "aiwc/common/csv.hh"

namespace aiwc
{
namespace
{

TEST(Csv, WritesHeaderAndRows)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    csv.writeRow({"1", "2"});
    csv.writeRow({"3", "4"});
    EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(Csv, EscapesCommas)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapesQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, PlainCellsPassThrough)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape(""), "");
}

} // namespace
} // namespace aiwc
