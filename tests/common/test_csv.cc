#include <gtest/gtest.h>

#include <sstream>

#include "aiwc/common/csv.hh"

namespace aiwc
{
namespace
{

TEST(Csv, WritesHeaderAndRows)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    csv.writeRow({"1", "2"});
    csv.writeRow({"3", "4"});
    EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(Csv, EscapesCommas)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapesQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, PlainCellsPassThrough)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, ParseStripsOneTrailingCarriageReturn)
{
    // getline() on a CRLF file leaves the '\r' on the line; it is a
    // terminator, not part of the last cell.
    const auto cells = parseCsvLine("a,b,c\r");
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[2], "c");
}

TEST(Csv, ParseKeepsCarriageReturnsInsideQuotedCells)
{
    // Interior CRs are data and must round-trip, including a literal
    // "\r\n" inside a quoted cell.
    const auto cells = parseCsvLine("\"a\rb\",c\r");
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0], "a\rb");
    EXPECT_EQ(cells[1], "c");
}

TEST(Csv, ParseCrOnlyLineIsOneEmptyCell)
{
    const auto cells = parseCsvLine("\r");
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0], "");
}

TEST(Csv, QuotedCellsRoundTripThroughWriterAndParser)
{
    std::ostringstream os;
    CsvWriter csv(os, {"name", "note"});
    csv.writeRow({"with,comma", "say \"hi\"\r"});
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line);  // header
    std::getline(is, line);
    const auto cells = parseCsvLine(line);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0], "with,comma");
    EXPECT_EQ(cells[1], "say \"hi\"\r");
}

} // namespace
} // namespace aiwc
