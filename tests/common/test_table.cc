#include <gtest/gtest.h>

#include <sstream>

#include "aiwc/common/table.hh"

namespace aiwc
{
namespace
{

TEST(TextTable, PrintsHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsAreAligned)
{
    TextTable t({"a", "b"});
    t.addRow({"x", "yy"});
    t.addRow({"longer", "z"});
    std::ostringstream os;
    t.print(os);
    // Both data lines must place column b at the same offset.
    std::istringstream is(os.str());
    std::string header, rule, row1, row2;
    std::getline(is, header);
    std::getline(is, rule);
    std::getline(is, row1);
    std::getline(is, row2);
    EXPECT_EQ(row1.find("yy"), row2.find("z"));
}

TEST(FormatNumber, TrimsTrailingZeros)
{
    EXPECT_EQ(formatNumber(1.500, 3), "1.5");
    EXPECT_EQ(formatNumber(2.000, 3), "2");
    EXPECT_EQ(formatNumber(0.125, 3), "0.125");
}

TEST(FormatNumber, RespectsPrecision)
{
    EXPECT_EQ(formatNumber(3.14159, 2), "3.14");
    EXPECT_EQ(formatNumber(3.14159, 0), "3");
}

TEST(FormatPercent, RendersFractionAsPercent)
{
    EXPECT_EQ(formatPercent(0.5), "50.0%");
    EXPECT_EQ(formatPercent(0.123, 1), "12.3%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(FormatDuration, PicksHumanUnits)
{
    EXPECT_EQ(formatDuration(30.0), "30.0s");
    EXPECT_EQ(formatDuration(120.0), "2.0min");
    EXPECT_EQ(formatDuration(7200.0), "2.0h");
    EXPECT_EQ(formatDuration(172800.0), "2.0d");
}

} // namespace
} // namespace aiwc
