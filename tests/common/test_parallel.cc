/** Tests for the thread pool and deterministic parallel helpers. */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "aiwc/base/check.hh"
#include "aiwc/common/parallel.hh"

namespace
{

using namespace aiwc;

TEST(ShardRanges, PartitionsTheIndexSpace)
{
    for (std::size_t n : {0u, 1u, 2u, 63u, 64u, 65u, 1000u, 47293u}) {
        const auto shards = detail::shardRanges(n);
        if (n == 0) {
            EXPECT_TRUE(shards.empty());
            continue;
        }
        EXPECT_LE(shards.size(), detail::default_shards);
        std::size_t next = 0;
        for (std::size_t i = 0; i < shards.size(); ++i) {
            EXPECT_EQ(shards[i].index, i);
            EXPECT_EQ(shards[i].begin, next);
            EXPECT_LT(shards[i].begin, shards[i].end);
            next = shards[i].end;
        }
        EXPECT_EQ(next, n);
    }
}

TEST(ShardRanges, GeometryIsBalanced)
{
    const auto shards = detail::shardRanges(130);
    ASSERT_EQ(shards.size(), detail::default_shards);
    std::size_t lo = 130, hi = 0;
    for (const auto &s : shards) {
        lo = std::min(lo, s.end - s.begin);
        hi = std::max(hi, s.end - s.begin);
    }
    EXPECT_EQ(lo, 2u);
    EXPECT_EQ(hi, 3u);
}

TEST(ThreadPool, RejectsNonPositiveSize)
{
    ScopedCheckFailHandler guard;
    EXPECT_THROW(ThreadPool(0), ContractViolation);
    EXPECT_THROW(ThreadPool(-4), ContractViolation);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    detail::TaskGroup group(100);
    for (int i = 0; i < 100; ++i) {
        pool.submit([&] {
            ++ran;
            group.done();
        });
    }
    group.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { ++ran; });
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ParallelFor, VisitsEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(10000, 0);
    parallelFor(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        ASSERT_EQ(h, 1);
}

TEST(ParallelFor, EmptyRangeIsANoOp)
{
    ThreadPool pool(2);
    bool called = false;
    parallelFor(pool, 0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelReduce, SumsExactly)
{
    ThreadPool pool(4);
    const std::size_t n = 12345;
    const auto sum = parallelReduce(
        pool, n, std::uint64_t{0},
        [](std::uint64_t &acc, std::size_t i) { acc += i; },
        [](std::uint64_t &into, std::uint64_t &&from) { into += from; });
    EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduce, FloatResultIsThreadCountInvariant)
{
    // Irrational-ish values make float addition order observable; the
    // shard+merge structure must hide the thread count entirely.
    std::vector<double> values(10007);
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = std::sqrt(static_cast<double>(i) + 0.1);

    const auto run = [&](int threads) {
        ThreadPool pool(threads);
        return parallelReduce(
            pool, values.size(), 0.0,
            [&](double &acc, std::size_t i) { acc += values[i]; },
            [](double &into, double &&from) { into += from; });
    };
    const double serial = run(1);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(4));
    EXPECT_EQ(serial, run(8));
}

TEST(ParallelReduce, MergesInShardIndexOrder)
{
    ThreadPool pool(4);
    const std::size_t n = 1000;
    const auto order = parallelReduce(
        pool, n, std::vector<std::size_t>{},
        [](std::vector<std::size_t> &acc, std::size_t i) {
            acc.push_back(i);
        },
        [](std::vector<std::size_t> &into,
           std::vector<std::size_t> &&from) {
            into.insert(into.end(), from.begin(), from.end());
        });
    ASSERT_EQ(order.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(order[i], i);
}

TEST(ParallelFor, PropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 1000,
                             [&](std::size_t i) {
                                 if (i == 617)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

TEST(ParallelFor, PropagatesContractViolations)
{
    // AIWC_CHECK failures inside pool tasks must reach the caller, not
    // vanish inside a worker thread.
    ScopedCheckFailHandler guard;
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 1000,
                             [&](std::size_t i) {
                                 AIWC_CHECK(i != 617,
                                            "index 617 is forbidden");
                             }),
                 ContractViolation);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> inner_total{0};
    parallelFor(pool, 8, [&](std::size_t) {
        // With 2 workers and 8 outer tasks, nested submission would
        // starve the pool; the inline fallback must kick in.
        parallelFor(pool, 100,
                    [&](std::size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 800);
}

TEST(GlobalPool, ThreadCountKnobRebuildsThePool)
{
    const int before = globalThreadCount();
    setGlobalThreadCount(3);
    EXPECT_EQ(globalThreadCount(), 3);
    EXPECT_EQ(globalPool().threads(), 3);
    setGlobalThreadCount(before);
    EXPECT_EQ(globalThreadCount(), before);
}

TEST(GlobalPool, RejectsNonPositiveThreadCount)
{
    ScopedCheckFailHandler guard;
    EXPECT_THROW(setGlobalThreadCount(0), ContractViolation);
}

TEST(GlobalPool, DefaultThreadCountIsPositive)
{
    EXPECT_GE(defaultThreadCount(), 1);
}

} // namespace
