#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aiwc/common/rng.hh"

namespace aiwc
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double acc = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(10);
    std::vector<int> seen(5, 0);
    for (int i = 0; i < 5000; ++i)
        ++seen[rng.below(5)];
    for (int count : seen)
        EXPECT_GT(count, 800);  // ~1000 each
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceFrequencyTracksProbability)
{
    Rng rng(17);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GaussianMomentsMatchStandardNormal)
{
    Rng rng(21);
    constexpr int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianWithParams)
{
    Rng rng(23);
    constexpr int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate)
{
    Rng rng(29);
    constexpr int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(4.0);
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(42);
    Rng child = parent.split();
    // The child must not replay the parent's upcoming sequence.
    Rng parent_copy(42);
    Rng child_copy = parent_copy.split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        const auto p = parent();
        const auto c = child();
        EXPECT_EQ(c, child_copy());  // deterministic
        if (p == c)
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == ~0ull);
    Rng rng(1);
    [[maybe_unused]] Rng::result_type v = rng();
}

} // namespace
} // namespace aiwc
