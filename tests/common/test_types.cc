#include <gtest/gtest.h>

#include "aiwc/common/types.hh"

namespace aiwc
{
namespace
{

TEST(Types, InterfaceNamesAreDistinct)
{
    EXPECT_STREQ(toString(Interface::MapReduce), "map-reduce");
    EXPECT_STREQ(toString(Interface::Batch), "batch");
    EXPECT_STREQ(toString(Interface::Interactive), "interactive");
    EXPECT_STREQ(toString(Interface::Other), "other");
}

TEST(Types, LifecycleNamesAreDistinct)
{
    EXPECT_STREQ(toString(Lifecycle::Mature), "mature");
    EXPECT_STREQ(toString(Lifecycle::Exploratory), "exploratory");
    EXPECT_STREQ(toString(Lifecycle::Development), "development");
    EXPECT_STREQ(toString(Lifecycle::Ide), "IDE");
}

TEST(Types, TerminalStateNames)
{
    EXPECT_STREQ(toString(TerminalState::Completed), "completed");
    EXPECT_STREQ(toString(TerminalState::Cancelled), "cancelled");
    EXPECT_STREQ(toString(TerminalState::Failed), "failed");
    EXPECT_STREQ(toString(TerminalState::TimedOut), "timed-out");
    EXPECT_STREQ(toString(TerminalState::NodeFailure), "node-failure");
}

TEST(Types, ResourceNames)
{
    EXPECT_STREQ(toString(Resource::Sm), "SM");
    EXPECT_STREQ(toString(Resource::MemoryBw), "memory-bw");
    EXPECT_STREQ(toString(Resource::MemorySize), "memory-size");
    EXPECT_STREQ(toString(Resource::PcieTx), "PCIe-Tx");
    EXPECT_STREQ(toString(Resource::PcieRx), "PCIe-Rx");
    EXPECT_STREQ(toString(Resource::Power), "power");
}

TEST(Types, DurationConstants)
{
    EXPECT_DOUBLE_EQ(one_minute, 60.0);
    EXPECT_DOUBLE_EQ(one_hour, 3600.0);
    EXPECT_DOUBLE_EQ(one_day, 86400.0);
}

TEST(Types, EnumCountsMatchEnumerators)
{
    EXPECT_EQ(num_interfaces, 4);
    EXPECT_EQ(num_lifecycles, 4);
    EXPECT_EQ(num_resources, 6);
}

} // namespace
} // namespace aiwc
