/**
 * @file
 * Binary trace format tests: lossless round trips, and — the part
 * that earns the mmap — totality over hostile bytes. The decoder sits
 * at a trust boundary, so every truncation, bit flip, and schema
 * violation must degrade into a TraceStatus verdict, never an abort.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <sstream>
#include <vector>

#include "aiwc/common/binary.hh"
#include "aiwc/core/csv_loader.hh"
#include "aiwc/fmt/mmap_file.hh"
#include "aiwc/fmt/trace.hh"
#include "aiwc/workload/trace_synthesizer.hh"

#include "../core/record_builder.hh"

namespace aiwc::fmt
{
namespace
{

using core::testing::cpuRecord;
using core::testing::gpuRecord;

core::Dataset
sampleDataset()
{
    std::vector<core::JobRecord> records;
    records.push_back(gpuRecord(1, 500, 3600.0, 2, 0.3, 0.8));
    records.push_back(cpuRecord(2, 400, 120.0));
    auto ts = gpuRecord(3, 500, 900.0, 1, 0.6, 0.9,
                        TerminalState::Cancelled);
    ts.has_timeseries = true;
    ts.phases.active_fraction = 0.75;
    ts.phases.active_intervals = {10.0, 20.5};
    ts.phases.idle_intervals = {5.0};
    ts.phases.active_sm_cov = 12.5;
    records.push_back(std::move(ts));
    records.push_back(gpuRecord(4, 600, 60.0, 4, 0.1, 0.2,
                                TerminalState::Failed));
    return core::Dataset(std::move(records));
}

/** Rewrite @p count bytes of section @p id and re-CRC the file. */
void
patchSection(std::vector<std::uint8_t> &bytes, std::uint32_t id,
             std::size_t offset_in_section,
             std::span<const std::uint8_t> patch)
{
    auto read_u32 = [&](std::size_t at) {
        return static_cast<std::uint32_t>(bytes[at]) |
               (static_cast<std::uint32_t>(bytes[at + 1]) << 8) |
               (static_cast<std::uint32_t>(bytes[at + 2]) << 16) |
               (static_cast<std::uint32_t>(bytes[at + 3]) << 24);
    };
    auto read_u64 = [&](std::size_t at) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(bytes[at + i]) << (8 * i);
        return v;
    };
    auto write_u32 = [&](std::size_t at, std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            bytes[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
    };

    const std::uint32_t n_sections = read_u32(16);
    for (std::uint32_t e = 0; e < n_sections; ++e) {
        const std::size_t entry = 24 + 24 * e;
        if (read_u32(entry) != id)
            continue;
        const auto offset =
            static_cast<std::size_t>(read_u64(entry + 8));
        const auto length =
            static_cast<std::size_t>(read_u64(entry + 16));
        ASSERT_LE(offset_in_section + patch.size(), length);
        std::copy(patch.begin(), patch.end(),
                  bytes.begin() + offset + offset_in_section);
        write_u32(entry + 4,
                  crc32({bytes.data() + offset, length}));
        write_u32(20, crc32({bytes.data() + 24, 24u * n_sections}));
        return;
    }
    FAIL() << "section " << id << " not found";
}

std::vector<std::uint8_t>
u32Bytes(std::uint32_t v)
{
    std::vector<std::uint8_t> out;
    ByteWriter(out).u32(v);
    return out;
}

std::vector<std::uint8_t>
u64Bytes(std::uint64_t v)
{
    std::vector<std::uint8_t> out;
    ByteWriter(out).u64(v);
    return out;
}

std::vector<std::uint8_t>
f64Bytes(double v)
{
    std::vector<std::uint8_t> out;
    ByteWriter(out).f64(v);
    return out;
}

TEST(TraceFormat, RoundTripPreservesEveryField)
{
    const core::Dataset original = sampleDataset();
    const auto bytes = encodeTrace(original);
    const TraceLoadResult loaded = decodeTrace(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    ASSERT_EQ(loaded.dataset.size(), original.size());

    for (std::size_t i = 0; i < original.size(); ++i) {
        const core::JobRecord &a = original.records()[i];
        const core::JobRecord &b = loaded.dataset.records()[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.user, b.user);
        EXPECT_EQ(a.interface, b.interface);
        EXPECT_EQ(a.terminal, b.terminal);
        EXPECT_EQ(a.true_class, b.true_class);
        EXPECT_EQ(a.submit_time, b.submit_time);
        EXPECT_EQ(a.start_time, b.start_time);
        EXPECT_EQ(a.end_time, b.end_time);
        EXPECT_EQ(a.walltime_limit, b.walltime_limit);
        EXPECT_EQ(a.gpus, b.gpus);
        EXPECT_EQ(a.cpu_slots, b.cpu_slots);
        EXPECT_EQ(a.ram_gb, b.ram_gb);
        EXPECT_EQ(a.has_timeseries, b.has_timeseries);
        ASSERT_EQ(a.per_gpu.size(), b.per_gpu.size());
        for (std::size_t g = 0; g < a.per_gpu.size(); ++g) {
            for (int res = 0; res < num_resources; ++res) {
                const auto resource = static_cast<Resource>(res);
                const auto &sa = a.per_gpu[g].byResource(resource);
                const auto &sb = b.per_gpu[g].byResource(resource);
                EXPECT_EQ(sa.count(), sb.count());
                EXPECT_EQ(sa.mean(), sb.mean());
                EXPECT_EQ(sa.min(), sb.min());
                EXPECT_EQ(sa.max(), sb.max());
                EXPECT_EQ(sa.stddev(), sb.stddev());
            }
        }
        EXPECT_EQ(a.phases.active_fraction, b.phases.active_fraction);
        EXPECT_EQ(a.phases.active_intervals, b.phases.active_intervals);
        EXPECT_EQ(a.phases.idle_intervals, b.phases.idle_intervals);
        EXPECT_EQ(a.phases.active_sm_cov, b.phases.active_sm_cov);
    }
    EXPECT_EQ(contentDigest(original), contentDigest(loaded.dataset));
}

TEST(TraceFormat, EmptyDatasetRoundTrips)
{
    const core::Dataset empty;
    const auto bytes = encodeTrace(empty);
    const TraceLoadResult loaded = decodeTrace(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    EXPECT_TRUE(loaded.dataset.empty());
}

TEST(TraceFormat, CsvParsedDatasetRoundTripsBitExactly)
{
    // The CI round-trip gate in miniature: CSV -> Dataset -> binary ->
    // Dataset must preserve the content digest exactly, including the
    // fromMoments-reconstructed summaries the CSV loader produces.
    std::stringstream csv;
    sampleDataset().writeCsv(csv);
    const core::Dataset from_csv = core::loadDatasetCsv(csv);
    const TraceLoadResult loaded = decodeTrace(encodeTrace(from_csv));
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    EXPECT_EQ(contentDigest(from_csv), contentDigest(loaded.dataset));
}

TEST(TraceFormat, EveryTruncationRejectsCleanly)
{
    const auto bytes = encodeTrace(sampleDataset());
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const TraceLoadResult r =
            decodeTrace(std::span(bytes).first(len));
        EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix";
        EXPECT_TRUE(r.dataset.empty());
    }
}

TEST(TraceFormat, BadMagicRejected)
{
    auto bytes = encodeTrace(sampleDataset());
    bytes[0] ^= 0xff;
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::BadMagic);
}

TEST(TraceFormat, VersionSkewRejected)
{
    auto bytes = encodeTrace(sampleDataset());
    bytes[4] = 0x7f;  // version low byte
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::VersionSkew);
}

TEST(TraceFormat, CorruptedSectionFailsItsCrc)
{
    auto bytes = encodeTrace(sampleDataset());
    // Flip one byte in the last section's payload (without re-CRCing).
    bytes[bytes.size() - 1] ^= 0x01;
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::BadCrc);
}

TEST(TraceFormat, CorruptedDirectoryRejected)
{
    auto bytes = encodeTrace(sampleDataset());
    bytes[24] ^= 0x01;  // first directory entry's id field
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::BadDirectory);
}

TEST(TraceFormat, OverlongRowCountRejected)
{
    // Claiming one extra row makes every column length wrong; the
    // decoder must notice before allocating anything row-sized.
    auto bytes = encodeTrace(sampleDataset());
    bytes[8] += 1;  // rows low byte
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::Malformed);
}

TEST(TraceFormat, EnumOutOfRangeRejected)
{
    auto bytes = encodeTrace(sampleDataset());
    const std::vector<std::uint8_t> bad = {250};
    patchSection(bytes, 4 /* interface */, 0, bad);
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::Malformed);
}

TEST(TraceFormat, NonFiniteTimeRejected)
{
    auto bytes = encodeTrace(sampleDataset());
    patchSection(bytes, 8 /* submit */, 0,
                 f64Bytes(std::numeric_limits<double>::quiet_NaN()));
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::Malformed);
}

TEST(TraceFormat, BogusGpuOffsetsRejected)
{
    auto bytes = encodeTrace(sampleDataset());
    patchSection(bytes, 15 /* gpu_offsets */, 0, u64Bytes(1));
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::Malformed);
}

TEST(TraceFormat, UserIndexOutOfTableRangeRejected)
{
    auto bytes = encodeTrace(sampleDataset());
    patchSection(bytes, 3 /* user_index */, 0, u32Bytes(0xffffu));
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::Malformed);
}

TEST(TraceFormat, NonCanonicalUserTableRejected)
{
    // Duplicate the first user-table entry: CRCs check out, but
    // re-interning the rows can no longer reproduce the on-disk table.
    // (A pure permutation would not do — with the index column
    // unchanged it is just a consistent relabeling, which re-interns
    // canonically; a duplicate can never be an interning result.)
    auto bytes = encodeTrace(sampleDataset());
    std::vector<std::uint8_t> dup;
    {
        ByteWriter w(dup);
        w.u32(500);
        w.u32(500);
    }
    patchSection(bytes, 2 /* user_table */, 0, dup);
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::Malformed);
}

TEST(TraceFormat, CorruptGpuSummaryStateRejected)
{
    // A count==0 raw state with nonzero accumulators must not reach
    // RunningSummary::fromRawState (which would AIWC_CHECK-abort).
    auto bytes = encodeTrace(sampleDataset());
    std::vector<std::uint8_t> bad;
    {
        ByteWriter w(bad);
        w.u64(0);       // count
        w.f64(1.0);     // min, inconsistent with count == 0
    }
    patchSection(bytes, 16 /* gpu_stats */, 0, bad);
    EXPECT_EQ(decodeTrace(bytes).status, TraceStatus::Malformed);
}

TEST(TraceFormat, FuzzedBitFlipsNeverAbort)
{
    // Deterministic single-byte corruption sweep: every mutation must
    // produce a verdict (mostly rejects; a flip in alignment padding
    // legitimately decodes, in which case the content must be intact).
    const auto pristine = encodeTrace(sampleDataset());
    const std::uint64_t original_digest =
        contentDigest(decodeTrace(pristine).dataset);
    std::uint64_t rng = 0x5eed;
    for (int iter = 0; iter < 400; ++iter) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        auto bytes = pristine;
        const std::size_t pos = (rng >> 16) % bytes.size();
        bytes[pos] ^= static_cast<std::uint8_t>((rng >> 8) | 1);
        const TraceLoadResult r = decodeTrace(bytes);
        if (r.ok()) {
            EXPECT_EQ(contentDigest(r.dataset), original_digest)
                << "flip at " << pos << " silently changed content";
        }
    }
}

TEST(TraceFormat, FuzzedRandomPrefixesNeverAbort)
{
    // Arbitrary garbage (not derived from a valid trace) must reject.
    std::uint64_t rng = 0xbadc0de;
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<std::uint8_t> garbage(iter * 7 % 512);
        for (auto &b : garbage) {
            rng = rng * 6364136223846793005ull + 1442695040888963407ull;
            b = static_cast<std::uint8_t>(rng >> 32);
        }
        const TraceLoadResult r = decodeTrace(garbage);
        EXPECT_FALSE(r.ok());
    }
}

TEST(TraceFormat, FileRoundTripThroughMmap)
{
    const std::string path =
        ::testing::TempDir() + "aiwc_trace_test.aiwt";
    const core::Dataset original = sampleDataset();
    std::string error;
    ASSERT_TRUE(writeTraceFile(path, original, &error)) << error;

    const MmapFile file = MmapFile::open(path);
    ASSERT_TRUE(file.valid()) << file.error();
    EXPECT_EQ(file.bytes().size(), encodeTrace(original).size());

    const TraceLoadResult loaded = loadTraceFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    EXPECT_EQ(contentDigest(loaded.dataset), contentDigest(original));
    std::remove(path.c_str());
}

TEST(TraceFormat, MissingFileIsIoError)
{
    const TraceLoadResult r =
        loadTraceFile("/nonexistent/dir/missing.aiwt");
    EXPECT_EQ(r.status, TraceStatus::IoError);
    EXPECT_FALSE(r.error.empty());
}

TEST(TraceFormat, SynthesizedStudyRoundTripsAtScale)
{
    workload::SynthesisOptions options;
    options.scale = 0.02;
    options.seed = 7;
    const auto profile = workload::CalibrationProfile::supercloud();
    const auto result =
        workload::TraceSynthesizer(profile, options).run();
    ASSERT_GT(result.dataset.size(), 100u);

    const TraceLoadResult loaded =
        decodeTrace(encodeTrace(result.dataset));
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    EXPECT_EQ(contentDigest(loaded.dataset),
              contentDigest(result.dataset));
    EXPECT_EQ(loaded.dataset.uniqueUsers(),
              result.dataset.uniqueUsers());
    EXPECT_EQ(loaded.dataset.totalGpuHours(),
              result.dataset.totalGpuHours());
}

} // namespace
} // namespace aiwc::fmt
