/**
 * @file
 * The streaming-vs-batch equivalence harness: on the same synthesized
 * trace, the single-pass sketch pipeline must land within its
 * advertised rank-error bound of the exact batch analyzers for every
 * figure it reproduces (Figs. 3a, 4a, 9a/9b, 10), and the streaming
 * replay must feed it the exact records the batch path materializes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aiwc/core/power_analyzer.hh"
#include "aiwc/core/service_time_analyzer.hh"
#include "aiwc/core/user_behavior_analyzer.hh"
#include "aiwc/core/utilization_analyzer.hh"
#include "aiwc/stream/pipeline.hh"
#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc::stream
{
namespace
{

workload::SynthesisResult
synthesize()
{
    workload::SynthesisOptions options;
    options.seed = 1234;
    options.scale = 0.04;
    const auto profile = workload::CalibrationProfile::supercloud();
    return workload::TraceSynthesizer(profile, options).run();
}

const workload::SynthesisResult &
trace()
{
    static const workload::SynthesisResult result = synthesize();
    return result;
}

StreamPipeline
streamOver(const core::Dataset &ds)
{
    StreamPipeline p;
    for (const auto &r : ds.records())
        p.ingest(r);
    return p;
}

/**
 * Rank-error check: at the batch CDF's own q-quantiles, the sketch's
 * CDF estimate must sit within epsilon (plus the batch CDF's own
 * 1/n step granularity) of the batch value.
 */
void
expectWithinRankError(const sketch::KllSketch &sk,
                      const stats::EmpiricalCdf &exact,
                      const char *what)
{
    ASSERT_FALSE(exact.empty()) << what;
    ASSERT_EQ(sk.count(), exact.size()) << what;
    const double slack =
        sk.epsilonBound() + 1.0 / static_cast<double>(exact.size());
    for (double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
        const double v = exact.quantile(q);
        EXPECT_NEAR(sk.cdf(v), exact.at(v), slack)
            << what << " at q = " << q;
    }
}

TEST(StreamEquivalence, ServiceTimeMatchesBatchWithinEpsilon)
{
    const auto &ds = trace().dataset;
    const auto batch = core::ServiceTimeAnalyzer().analyze(ds);
    const auto p = streamOver(ds);
    expectWithinRankError(p.serviceTime().gpuRuntimeMin(),
                          batch.gpu_runtime_min, "gpu runtime");
    expectWithinRankError(p.serviceTime().cpuRuntimeMin(),
                          batch.cpu_runtime_min, "cpu runtime");
    expectWithinRankError(p.serviceTime().gpuWaitS(),
                          batch.gpu_wait_s, "gpu wait");
    expectWithinRankError(p.serviceTime().gpuWaitPct(),
                          batch.gpu_wait_pct, "gpu wait pct");
}

TEST(StreamEquivalence, UtilizationMatchesBatchWithinEpsilon)
{
    const auto &ds = trace().dataset;
    const auto batch = core::UtilizationAnalyzer().analyze(ds);
    const auto p = streamOver(ds);
    expectWithinRankError(p.utilization().byResource(Resource::Sm),
                          batch.sm_pct, "sm");
    expectWithinRankError(
        p.utilization().byResource(Resource::MemoryBw),
        batch.membw_pct, "membw");
    expectWithinRankError(
        p.utilization().byResource(Resource::MemorySize),
        batch.memsize_pct, "memsize");
}

TEST(StreamEquivalence, PowerAndCapImpactsMatchBatchWithinEpsilon)
{
    const auto &ds = trace().dataset;
    const auto batch = core::PowerAnalyzer().analyze(ds);
    const auto p = streamOver(ds);
    expectWithinRankError(p.power().avgWatts(), batch.avg_watts,
                          "avg watts");
    expectWithinRankError(p.power().maxWatts(), batch.max_watts,
                          "max watts");

    const auto stream_caps = p.power().capImpacts();
    ASSERT_EQ(stream_caps.size(), batch.caps.size());
    const double slack = p.power().maxWatts().epsilonBound() +
                         1.0 / static_cast<double>(
                                   batch.max_watts.size());
    for (std::size_t i = 0; i < stream_caps.size(); ++i) {
        EXPECT_DOUBLE_EQ(stream_caps[i].cap_watts,
                         batch.caps[i].cap_watts);
        EXPECT_NEAR(stream_caps[i].unimpacted,
                    batch.caps[i].unimpacted, slack);
        EXPECT_NEAR(stream_caps[i].impacted_by_max,
                    batch.caps[i].impacted_by_max, slack);
        EXPECT_NEAR(stream_caps[i].impacted_by_avg,
                    batch.caps[i].impacted_by_avg, slack);
    }
}

TEST(StreamEquivalence, UserSummariesMatchBatch)
{
    // Per-user aggregates are moment-exact, not sketched: same users,
    // same counts, means and CoVs equal up to Welford-vs-two-pass
    // floating-point noise, concentration shares exactly equal.
    const auto &ds = trace().dataset;
    const auto batch = core::UserBehaviorAnalyzer().analyze(ds);
    const auto p = streamOver(ds);
    const auto stream_users = p.userBehavior().summaries();

    ASSERT_EQ(stream_users.size(), batch.users.size());
    auto close = [](double a, double b) {
        if (std::isnan(a) || std::isnan(b))
            return std::isnan(a) && std::isnan(b);
        return std::abs(a - b) <=
               1e-9 * (1.0 + std::abs(a) + std::abs(b));
    };
    for (std::size_t i = 0; i < stream_users.size(); ++i) {
        const auto &s = stream_users[i];
        const auto &b = batch.users[i];
        EXPECT_EQ(s.user, b.user);
        EXPECT_EQ(s.jobs, b.jobs);
        EXPECT_TRUE(close(s.gpu_hours, b.gpu_hours)) << s.user;
        EXPECT_TRUE(close(s.avg_runtime_min, b.avg_runtime_min))
            << s.user;
        EXPECT_TRUE(close(s.avg_sm_pct, b.avg_sm_pct)) << s.user;
        EXPECT_TRUE(close(s.avg_membw_pct, b.avg_membw_pct)) << s.user;
        EXPECT_TRUE(close(s.avg_memsize_pct, b.avg_memsize_pct))
            << s.user;
        EXPECT_TRUE(close(s.runtime_cov_pct, b.runtime_cov_pct))
            << s.user;
        EXPECT_TRUE(close(s.sm_cov_pct, b.sm_cov_pct)) << s.user;
    }
    EXPECT_DOUBLE_EQ(p.userBehavior().topJobShare(0.05),
                     batch.top5_job_share);
    EXPECT_DOUBLE_EQ(p.userBehavior().topJobShare(0.20),
                     batch.top20_job_share);
    EXPECT_DOUBLE_EQ(p.userBehavior().medianJobsPerUser(),
                     batch.median_jobs_per_user);
}

TEST(StreamEquivalence, HeavyHittersFindTheTopUserExactlyEnough)
{
    const auto &ds = trace().dataset;
    const auto p = streamOver(ds);
    const auto batch =
        core::UserBehaviorAnalyzer().summarize(ds);
    ASSERT_FALSE(batch.empty());
    // True top user by GPU-hours from the exact per-user table.
    const core::UserSummary *top = &batch.front();
    for (const auto &u : batch)
        if (u.gpu_hours > top->gpu_hours)
            top = &u;
    const auto hitters = p.userBehavior().topUsersByGpuHours(5);
    ASSERT_FALSE(hitters.empty());
    bool found = false;
    for (const auto &h : hitters)
        found = found || h.key == top->user;
    EXPECT_TRUE(found) << "true top user " << top->user
                       << " missing from heavy hitters";
}

TEST(StreamEquivalence, SnapshotCdfWithinKsBoundOfExactCurve)
{
    // Satellite regression for EmpiricalCdf::fromQuantileFunction: the
    // snapshot's rendered CDF must stay within the sketch rank error
    // plus the quantile-sampling granularity of the exact batch curve,
    // measured with the ksDistance the figure tests already use.
    const auto &ds = trace().dataset;
    const auto batch = core::ServiceTimeAnalyzer().analyze(ds);
    const auto p = streamOver(ds);
    const auto snap = p.snapshot();

    ASSERT_FALSE(snap.gpu_runtime_min.empty());
    const double bound =
        snap.epsilon +
        1.0 / (p.options().snapshot_points - 1.0) +
        1.0 / static_cast<double>(batch.gpu_runtime_min.size()) + 0.01;
    EXPECT_LE(snap.gpu_runtime_min.ksDistance(batch.gpu_runtime_min),
              bound);
    // And the rendered curve() is directly comparable to the exact
    // one: same quantile levels, values within the same bound scaled
    // by the local density (checked at the quartiles).
    const auto curve = snap.gpu_runtime_min.curve(5);
    ASSERT_EQ(curve.size(), 5u);
    EXPECT_LE(curve.front().second,
              curve.back().second);  // monotone by construction
}

TEST(StreamEquivalence, StreamingReplayFeedsTheIdenticalRecords)
{
    // runStreaming must emit exactly the records run() materializes,
    // in the same order — so a pipeline fed by the replay is
    // indistinguishable from one fed from the Dataset.
    const auto &batch = trace();
    workload::SynthesisOptions options;
    options.seed = 1234;
    options.scale = 0.04;
    const auto profile = workload::CalibrationProfile::supercloud();
    const workload::TraceSynthesizer synth(profile, options);

    StreamPipeline streamed;
    const auto replay = synth.runStreaming(
        [&](core::JobRecord &&rec) { streamed.ingest(std::move(rec)); });

    EXPECT_EQ(replay.records, batch.dataset.size());
    EXPECT_EQ(replay.num_users, batch.num_users);
    EXPECT_EQ(replay.cluster_nodes, batch.cluster_nodes);
    EXPECT_EQ(replay.central_store_bytes, batch.central_store_bytes);
    EXPECT_EQ(replay.scheduler_stats.started,
              batch.scheduler_stats.started);

    const auto direct = streamOver(batch.dataset);
    EXPECT_EQ(streamed.rows(), direct.rows());
    for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
        EXPECT_DOUBLE_EQ(
            streamed.serviceTime().gpuRuntimeMin().quantile(q),
            direct.serviceTime().gpuRuntimeMin().quantile(q));
        EXPECT_DOUBLE_EQ(streamed.power().avgWatts().quantile(q),
                         direct.power().avgWatts().quantile(q));
    }
    EXPECT_EQ(
        streamed.serviceTime().gpuRuntimeMin().compactions(),
        direct.serviceTime().gpuRuntimeMin().compactions());
}

} // namespace
} // namespace aiwc::stream
