#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

#include "aiwc/common/parallel.hh"

#include "../core/record_builder.hh"

#include "aiwc/base/check.hh"
#include "aiwc/stream/pipeline.hh"

namespace aiwc::stream
{
namespace
{

using core::testing::cpuRecord;
using core::testing::gpuRecord;

TEST(StreamPipeline, CountsPopulationsThroughTheFilter)
{
    StreamPipeline p;
    p.ingest(gpuRecord(1, 0, 600.0));
    p.ingest(gpuRecord(2, 0, 10.0));   // under the 30 s debris cut
    p.ingest(cpuRecord(3, 1, 480.0));
    EXPECT_EQ(p.rows(), 3u);
    const auto snap = p.snapshot();
    EXPECT_EQ(snap.rows, 3u);
    EXPECT_EQ(snap.gpu_jobs, 1u);
    EXPECT_EQ(snap.cpu_jobs, 1u);
    EXPECT_EQ(snap.users, 1u);  // only the filtered GPU job's user
}

TEST(StreamPipeline, SnapshotRendersEveryFigure)
{
    StreamPipeline p;
    for (int i = 0; i < 50; ++i)
        p.ingest(gpuRecord(static_cast<JobId>(i),
                           static_cast<UserId>(i % 5),
                           600.0 + 60.0 * i));
    for (int i = 50; i < 60; ++i)
        p.ingest(cpuRecord(static_cast<JobId>(i), 9, 120.0));

    const auto snap = p.snapshot();
    EXPECT_FALSE(snap.gpu_runtime_min.empty());     // Fig. 3a
    EXPECT_FALSE(snap.cpu_runtime_min.empty());
    EXPECT_FALSE(snap.gpu_wait_s.empty());
    EXPECT_FALSE(snap.sm_pct.empty());              // Fig. 4a
    EXPECT_FALSE(snap.membw_pct.empty());
    EXPECT_FALSE(snap.memsize_pct.empty());
    EXPECT_FALSE(snap.avg_watts.empty());           // Fig. 9a
    EXPECT_FALSE(snap.max_watts.empty());
    EXPECT_EQ(snap.caps.size(), p.options().power_caps.size());
    EXPECT_EQ(snap.users, 5u);                      // Fig. 10
    EXPECT_FALSE(snap.user_avg_runtime_min.empty());
    EXPECT_FALSE(snap.top_users_by_gpu_hours.empty());
    EXPECT_GT(snap.median_jobs_per_user, 0.0);
    // 60 records never trip a k=256 compactor, so the sketches are
    // exact and the advertised rank-error bound must be exactly zero
    // (the KllSketch::epsilonBound degenerate-sketch contract).
    EXPECT_DOUBLE_EQ(snap.epsilon, 0.0);
    EXPECT_GT(snap.sketch_bytes, 0u);

    // All 50 GPU jobs fit below the compactor threshold, so the
    // rendered median is the exact sample median.
    EXPECT_NEAR(snap.gpu_runtime_min.quantile(0.5),
                (600.0 + 60.0 * 24.5) / 60.0, 0.51);
}

TEST(StreamPipeline, SnapshotOfEmptyPipelinePrints)
{
    const StreamPipeline p;
    const auto snap = p.snapshot();
    EXPECT_EQ(snap.rows, 0u);
    EXPECT_TRUE(snap.gpu_runtime_min.empty());
    EXPECT_TRUE(snap.caps.empty());   // no power data, no what-if
    EXPECT_EQ(snap.users, 0u);
    std::ostringstream os;
    snap.print(os);
    EXPECT_NE(os.str().find("stream snapshot"), std::string::npos);
}

TEST(StreamPipeline, SnapshotIsConstAndRepeatable)
{
    StreamPipeline p;
    for (int i = 0; i < 40; ++i)
        p.ingest(gpuRecord(static_cast<JobId>(i), 0,
                           300.0 + 10.0 * i));
    const auto first = p.snapshot();
    const auto second = p.snapshot();  // must not perturb the state
    ASSERT_EQ(first.gpu_runtime_min.size(),
              second.gpu_runtime_min.size());
    for (double q : {0.1, 0.5, 0.9})
        EXPECT_DOUBLE_EQ(first.gpu_runtime_min.quantile(q),
                         second.gpu_runtime_min.quantile(q));
}

TEST(StreamPipeline, MergeRequiresIdenticalOptions)
{
    ScopedCheckFailHandler guard;
    StreamOptions narrow;
    narrow.kll_k = 64;
    StreamPipeline a{narrow}, b;  // b uses the defaults
    EXPECT_THROW(a.merge(b), ContractViolation);
}

TEST(StreamPipeline, SnapshotPointsContract)
{
    ScopedCheckFailHandler guard;
    StreamOptions opts;
    opts.snapshot_points = 1;
    EXPECT_THROW(StreamPipeline{opts}, ContractViolation);
}

TEST(StreamPipeline, MemoryStaysBoundedAsTheStreamGrows)
{
    // The tentpole claim: sketch bytes depend on the geometry (and the
    // active-user count), not on how many records flowed through.
    StreamOptions opts;
    opts.kll_k = 64;
    StreamPipeline p{opts};
    auto feed = [&](int from, int to) {
        for (int i = from; i < to; ++i)
            p.ingest(gpuRecord(static_cast<JobId>(i),
                               static_cast<UserId>(i % 8),
                               60.0 + i % 977));
    };
    feed(0, 500);
    const std::size_t at_500 = p.sketchBytes();
    feed(500, 50000);
    EXPECT_EQ(p.rows(), 50000u);
    // 100x the records, bounded growth (a few extra KLL levels).
    EXPECT_LE(p.sketchBytes(), at_500 * 3);
}

TEST(StreamPipeline, SnapshotWhileIngestingIsRaceFreeAndConsistent)
{
    // Regression for the snapshot()-during-ingest() data race: the
    // two now serialize on the pipeline's internal mutex, so this
    // test is clean under the debug-tsan preset (test_stream carries
    // the tsan CTest label) and every mid-stream snapshot observes a
    // record-boundary state. A torn state would show up as internally
    // inconsistent population counts.
    constexpr int records = 4000;
    StreamPipeline p;
    std::atomic<bool> done{false};
    ThreadPool writer(1);
    writer.submit([&] {
        for (int i = 0; i < records; ++i)
            p.ingest(gpuRecord(static_cast<JobId>(i),
                               static_cast<UserId>(i % 16),
                               60.0 + i % 977));
        done.store(true, std::memory_order_release);
    });
    std::uint64_t snapshots = 0;
    while (!done.load(std::memory_order_acquire)) {
        const auto snap = p.snapshot();
        ++snapshots;
        EXPECT_LE(snap.rows, static_cast<std::uint64_t>(records));
        // Every ingested record was a GPU job over the debris cut, so
        // a consistent snapshot counts each row in exactly one bucket.
        EXPECT_EQ(snap.gpu_jobs + snap.cpu_jobs, snap.rows);
        EXPECT_LE(snap.users, 16u);
    }
    const auto final_snap = p.snapshot();
    EXPECT_EQ(final_snap.rows, static_cast<std::uint64_t>(records));
    EXPECT_EQ(final_snap.gpu_jobs, static_cast<std::uint64_t>(records));
    EXPECT_GE(snapshots, 1u);
}

TEST(StreamPipeline, ParallelIngestMatchesSerialBelowCompaction)
{
    // With every sketch below its compaction threshold the shard merge
    // is lossless, so parallel and serial state agree exactly.
    std::vector<core::JobRecord> records;
    for (int i = 0; i < 120; ++i) {
        if (i % 4 == 3)
            records.push_back(
                cpuRecord(static_cast<JobId>(i), 7, 200.0));
        else
            records.push_back(
                gpuRecord(static_cast<JobId>(i),
                          static_cast<UserId>(i % 6), 90.0 + i));
    }

    StreamPipeline serial;
    for (const auto &r : records)
        serial.ingest(r);
    const StreamPipeline parallel = ingestParallel(records);

    EXPECT_EQ(parallel.rows(), serial.rows());
    const auto ps = parallel.snapshot(), ss = serial.snapshot();
    EXPECT_EQ(ps.gpu_jobs, ss.gpu_jobs);
    EXPECT_EQ(ps.cpu_jobs, ss.cpu_jobs);
    for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        EXPECT_DOUBLE_EQ(ps.gpu_runtime_min.quantile(q),
                         ss.gpu_runtime_min.quantile(q));
        EXPECT_DOUBLE_EQ(ps.sm_pct.quantile(q),
                         ss.sm_pct.quantile(q));
        EXPECT_DOUBLE_EQ(ps.avg_watts.quantile(q),
                         ss.avg_watts.quantile(q));
    }
    EXPECT_EQ(ps.users, ss.users);
    EXPECT_DOUBLE_EQ(ps.top5_job_share, ss.top5_job_share);
    // The reservoir is fully order-independent: exact match always.
    EXPECT_EQ(parallel.exemplars().items().size(),
              serial.exemplars().items().size());
    const auto pi = parallel.exemplars().items();
    const auto si = serial.exemplars().items();
    for (std::size_t i = 0; i < pi.size(); ++i) {
        EXPECT_EQ(pi[i].key, si[i].key);
        EXPECT_DOUBLE_EQ(pi[i].value, si[i].value);
    }
}

} // namespace
} // namespace aiwc::stream
