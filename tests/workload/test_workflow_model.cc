#include <gtest/gtest.h>

#include "aiwc/workload/workflow_model.hh"

namespace aiwc::workload
{
namespace
{

TEST(WorkflowModel, DefaultMatrixIsRowStochastic)
{
    const WorkflowModel model;
    for (const auto &row : model.matrix()) {
        double total = 0.0;
        for (double p : row)
            total += p;
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(WorkflowModel, StationaryMatchesFig15aMix)
{
    const WorkflowModel model;
    const auto pi = model.stationary();
    EXPECT_NEAR(pi[static_cast<int>(Lifecycle::Mature)], 0.595, 0.03);
    EXPECT_NEAR(pi[static_cast<int>(Lifecycle::Exploratory)], 0.18,
                0.03);
    EXPECT_NEAR(pi[static_cast<int>(Lifecycle::Development)], 0.19,
                0.03);
    EXPECT_NEAR(pi[static_cast<int>(Lifecycle::Ide)], 0.035, 0.01);
}

TEST(WorkflowModel, EmpiricalWalkConvergesToStationary)
{
    const WorkflowModel model;
    Rng rng(5);
    const auto walk = model.session(200000, rng);
    std::array<double, num_lifecycles> freq{};
    for (Lifecycle c : walk)
        freq[static_cast<std::size_t>(c)] += 1.0;
    for (auto &f : freq)
        f /= static_cast<double>(walk.size());
    const auto pi = model.stationary();
    for (int c = 0; c < num_lifecycles; ++c)
        EXPECT_NEAR(freq[static_cast<std::size_t>(c)],
                    pi[static_cast<std::size_t>(c)], 0.01);
}

TEST(WorkflowModel, SessionsStartAtDesign)
{
    const WorkflowModel model;
    Rng rng(1);
    const auto session = model.session(10, rng);
    ASSERT_EQ(session.size(), 10u);
    EXPECT_EQ(session.front(), Lifecycle::Ide);
}

TEST(WorkflowModel, DevelopmentPrecedesFirstMatureRun)
{
    // Fig. 2's arc: by the time a session reaches its first mature
    // job, it must have passed through development at least once —
    // the default chain has no IDE -> mature shortcut to speak of.
    // (IDE sessions never jump straight to mature in the default
    // matrix, but design -> exploratory -> mature is possible, so we
    // assert a strong majority rather than totality.)
    const WorkflowModel model;
    Rng rng(9);
    int sessions_checked = 0, via_development = 0;
    for (int rep = 0; rep < 400; ++rep) {
        const auto session = model.session(50, rng);
        bool seen_dev = false;
        for (Lifecycle c : session) {
            if (c == Lifecycle::Development)
                seen_dev = true;
            if (c == Lifecycle::Mature) {
                ++sessions_checked;
                if (seen_dev)
                    ++via_development;
                break;
            }
        }
    }
    EXPECT_GT(sessions_checked, 300);
    EXPECT_GT(static_cast<double>(via_development) / sessions_checked,
              0.8);
}

TEST(WorkflowModel, CustomMatrixValidated)
{
    WorkflowMatrix absorbing{};
    for (auto &row : absorbing)
        row[static_cast<int>(Lifecycle::Mature)] = 1.0;
    const WorkflowModel model(absorbing);
    const auto pi = model.stationary();
    EXPECT_NEAR(pi[static_cast<int>(Lifecycle::Mature)], 1.0, 1e-9);
}

TEST(WorkflowModel, NextIsDeterministicPerSeed)
{
    const WorkflowModel model;
    Rng a(3), b(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(model.next(Lifecycle::Development, a),
                  model.next(Lifecycle::Development, b));
}

} // namespace
} // namespace aiwc::workload
