#include <gtest/gtest.h>

#include <numeric>

#include "aiwc/workload/calibration.hh"

namespace aiwc::workload
{
namespace
{

TEST(Calibration, ClassFractionsSumToOne)
{
    const auto p = CalibrationProfile::supercloud();
    double total = 0.0;
    for (const auto &c : p.classes)
        total += c.job_fraction;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Calibration, ClassFractionsMatchFig15a)
{
    const auto p = CalibrationProfile::supercloud();
    EXPECT_NEAR(p.forClass(Lifecycle::Mature).job_fraction, 0.595, 1e-9);
    EXPECT_NEAR(p.forClass(Lifecycle::Exploratory).job_fraction, 0.18,
                1e-9);
    EXPECT_NEAR(p.forClass(Lifecycle::Development).job_fraction, 0.19,
                1e-9);
    EXPECT_NEAR(p.forClass(Lifecycle::Ide).job_fraction, 0.035, 1e-9);
}

TEST(Calibration, RuntimeMediansMatchSec6)
{
    const auto p = CalibrationProfile::supercloud();
    EXPECT_DOUBLE_EQ(
        p.forClass(Lifecycle::Mature).runtime.median_minutes, 36.0);
    EXPECT_DOUBLE_EQ(
        p.forClass(Lifecycle::Exploratory).runtime.median_minutes, 62.0);
}

TEST(Calibration, InterfaceMarginalsMatchFig5)
{
    // Mixing per-class interface weights by class fraction must give
    // the published population: ~1% map-reduce, ~30% batch,
    // ~4% interactive, ~65% other.
    const auto p = CalibrationProfile::supercloud();
    std::array<double, num_interfaces> marginal{};
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto lc = static_cast<Lifecycle>(c);
        const auto &weights = p.interfacesFor(lc);
        const double total =
            std::accumulate(weights.begin(), weights.end(), 0.0);
        for (int i = 0; i < num_interfaces; ++i) {
            marginal[static_cast<std::size_t>(i)] +=
                p.forClass(lc).job_fraction *
                weights[static_cast<std::size_t>(i)] / total;
        }
    }
    EXPECT_NEAR(marginal[0], 0.01, 0.005);   // map-reduce
    EXPECT_NEAR(marginal[1], 0.30, 0.03);    // batch
    EXPECT_NEAR(marginal[2], 0.04, 0.015);   // interactive
    EXPECT_NEAR(marginal[3], 0.65, 0.04);    // other
}

TEST(Calibration, SaturationMarginalsMatchFig7b)
{
    const auto &sat = CalibrationProfile::supercloud().saturation;
    const double sm_total = sat.rx * sat.sm_given_rx +
                            (1.0 - sat.rx) * sat.sm_given_no_rx;
    EXPECT_NEAR(sm_total, 0.22, 0.01);                  // Fig. 7b SM
    EXPECT_NEAR(sat.rx * sat.sm_given_rx, 0.09, 0.01);  // Fig. 8b Rx&SM
    EXPECT_LT(sat.membw, 0.01);                         // ~0%
}

TEST(Calibration, UserTierQuotasMatchSec5)
{
    const auto &u = CalibrationProfile::supercloud().users;
    EXPECT_NEAR(u.large_tier_users, 0.052, 1e-9);
    EXPECT_NEAR(u.medium_tier_users, 0.078, 1e-9);
    EXPECT_LT(u.single_gpu_only_users + u.medium_tier_users +
                  u.large_tier_users,
              1.0);
}

TEST(Calibration, CohortMixesBlendToGlobal)
{
    // heavy_class_mix was solved so that 83% heavy + 17% light job
    // volume reproduces the global mix; verify the algebra.
    const auto &u = CalibrationProfile::supercloud().users;
    const auto p = CalibrationProfile::supercloud();
    for (int c = 0; c < num_lifecycles; ++c) {
        const auto i = static_cast<std::size_t>(c);
        const double blended =
            0.83 * u.heavy_class_mix[i] + 0.17 * u.light_class_mix[i];
        EXPECT_NEAR(blended, p.classes[i].job_fraction, 0.02)
            << toString(static_cast<Lifecycle>(c));
    }
}

TEST(Calibration, IdeTimeoutsAreTwelveOrTwentyFourHours)
{
    const auto p = CalibrationProfile::supercloud();
    EXPECT_DOUBLE_EQ(p.ide_short_timeout_hours, 12.0);
    EXPECT_DOUBLE_EQ(p.ide_long_timeout_hours, 24.0);
    EXPECT_GT(p.ide_long_timeout_prob, 0.0);
    EXPECT_LT(p.ide_long_timeout_prob, 1.0);
}

TEST(Calibration, MonitoringMatchesSec2)
{
    const auto p = CalibrationProfile::supercloud();
    EXPECT_DOUBLE_EQ(p.monitoring.gpu_interval, 0.1);   // 100 ms
    EXPECT_DOUBLE_EQ(p.monitoring.cpu_interval, 10.0);  // 10 s
    EXPECT_EQ(p.monitoring.timeseries_jobs, 2149);
}

TEST(Calibration, DatasetScaleMatchesSec2)
{
    const auto p = CalibrationProfile::supercloud();
    EXPECT_EQ(p.arrivals.total_jobs, 74820);
    EXPECT_DOUBLE_EQ(p.arrivals.study_days, 125.0);
    EXPECT_EQ(p.users.num_users, 191);
}

} // namespace
} // namespace aiwc::workload
