#include <gtest/gtest.h>

#include <cmath>

#include "aiwc/stats/correlation.hh"
#include "aiwc/workload/user_population.hh"

namespace aiwc::workload
{
namespace
{

UserPopulation
makePopulation(int users = 191, std::uint64_t seed = 1)
{
    static const auto profile = CalibrationProfile::supercloud();
    Rng rng(seed);
    return UserPopulation(profile, rng, users);
}

TEST(UserPopulation, RespectsRequestedSize)
{
    const auto pop = makePopulation(50);
    EXPECT_EQ(pop.size(), 50u);
}

TEST(UserPopulation, ClassMixesAreNormalized)
{
    const auto pop = makePopulation();
    for (const auto &u : pop.users()) {
        double total = 0.0;
        for (double m : u.class_mix) {
            EXPECT_GE(m, 0.0);
            total += m;
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(UserPopulation, TierQuotasApproximatelyHold)
{
    // Average over several populations to beat sampling noise.
    double single = 0.0, medium = 0.0, large = 0.0;
    constexpr int reps = 20;
    for (int r = 0; r < reps; ++r) {
        const auto pop = makePopulation(191, 100 + r);
        for (const auto &u : pop.users()) {
            if (u.tier == GpuTier::SingleOnly)
                single += 1.0;
            else if (u.tier == GpuTier::Medium)
                medium += 1.0;
            else if (u.tier == GpuTier::Large)
                large += 1.0;
        }
    }
    const double n = 191.0 * reps;
    // Cohort-aware quota: light 0.34, heavy 0.34 x 0.3.
    EXPECT_NEAR(single / n, 0.8 * 0.34 + 0.2 * 0.34 * 0.3, 0.04);
    EXPECT_NEAR(medium / n, 0.078, 0.02);
    EXPECT_NEAR(large / n, 0.052, 0.02);
}

TEST(UserPopulation, SingleOnlyUsersHaveZeroMultiProb)
{
    const auto pop = makePopulation();
    for (const auto &u : pop.users()) {
        if (u.tier == GpuTier::SingleOnly) {
            EXPECT_DOUBLE_EQ(u.multi_gpu_prob, 0.0);
            EXPECT_EQ(u.maxBucket(), 0);
        } else {
            EXPECT_GT(u.multi_gpu_prob, 0.0);
            EXPECT_GE(u.maxBucket(), 1);
        }
    }
}

TEST(UserPopulation, MaxBucketMatchesTier)
{
    UserProfile u;
    u.tier = GpuTier::TwoGpu;
    EXPECT_EQ(u.maxBucket(), 1);
    u.tier = GpuTier::Medium;
    EXPECT_EQ(u.maxBucket(), 3);
    u.tier = GpuTier::Large;
    EXPECT_EQ(u.maxBucket(), 5);
}

TEST(UserPopulation, ActivityWeightedSamplingFavorsHeavyUsers)
{
    auto pop = makePopulation(40, 7);
    Rng rng(9);
    std::vector<double> draws(40, 0.0);
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i)
        draws[pop.sampleByActivity(rng).id] += 1.0;
    // Draw frequency must correlate almost perfectly with weight.
    std::vector<double> weights;
    for (const auto &u : pop.users())
        weights.push_back(u.activity_weight);
    const auto c = stats::spearman(draws, weights);
    EXPECT_GT(c.coefficient, 0.95);
}

TEST(UserPopulation, SkillCorrelatesWithActivity)
{
    // The Fig. 12 mechanism at the population level.
    const auto pop = makePopulation(191, 13);
    std::vector<double> log_activity, skill;
    for (const auto &u : pop.users()) {
        log_activity.push_back(std::log(u.activity_weight));
        skill.push_back(u.util_scale);
    }
    EXPECT_GT(stats::spearman(log_activity, skill).coefficient, 0.4);
}

TEST(UserPopulation, RuntimeScaleAntiCorrelatesWithActivity)
{
    const auto pop = makePopulation(191, 17);
    std::vector<double> log_activity, scale;
    for (const auto &u : pop.users()) {
        log_activity.push_back(std::log(u.activity_weight));
        scale.push_back(u.runtime_scale);
    }
    EXPECT_LT(stats::spearman(log_activity, scale).coefficient, -0.1);
}

TEST(UserPopulation, MultiGpuCapableFractionNearTarget)
{
    double acc = 0.0;
    constexpr int reps = 20;
    for (int r = 0; r < reps; ++r)
        acc += makePopulation(191, 300 + r).multiGpuCapableFraction();
    EXPECT_NEAR(acc / reps, 0.68, 0.05);
}

TEST(UserPopulation, DeterministicGivenSeed)
{
    const auto a = makePopulation(30, 42);
    const auto b = makePopulation(30, 42);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.users()[i].activity_weight,
                         b.users()[i].activity_weight);
        EXPECT_DOUBLE_EQ(a.users()[i].util_scale,
                         b.users()[i].util_scale);
    }
}

} // namespace
} // namespace aiwc::workload
