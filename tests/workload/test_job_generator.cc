#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aiwc/stats/descriptive.hh"
#include "aiwc/workload/job_generator.hh"

namespace aiwc::workload
{
namespace
{

struct Fixture
{
    CalibrationProfile profile = CalibrationProfile::supercloud();
    JobGenerator generator{profile};
    Rng rng{11};

    UserProfile
    neutralUser(GpuTier tier = GpuTier::TwoGpu)
    {
        UserProfile u;
        u.id = 0;
        u.class_mix = {0.595, 0.18, 0.19, 0.035};
        u.util_scale = 1.0;
        u.runtime_scale = 1.0;
        u.tier = tier;
        u.multi_gpu_prob = tier == GpuTier::SingleOnly ? 0.0 : 0.24;
        return u;
    }
};

TEST(JobGenerator, RequestFieldsArePopulated)
{
    Fixture f;
    const auto job = f.generator.gpuJob(f.neutralUser(), 100.0, 7, f.rng);
    const auto &req = job.request;
    EXPECT_EQ(req.id, 7u);
    EXPECT_EQ(req.user, 0u);
    EXPECT_DOUBLE_EQ(req.submit_time, 100.0);
    EXPECT_GE(req.gpus, 1);
    EXPECT_GT(req.cpu_slots, 0);
    EXPECT_GT(req.ram_gb, 0.0);
    EXPECT_GT(req.duration, 0.0);
    EXPECT_GT(req.walltime_limit, 0.0);
}

TEST(JobGenerator, ForcedClassIsRespected)
{
    Fixture f;
    for (int i = 0; i < 50; ++i) {
        const auto job = f.generator.gpuJob(
            f.neutralUser(), 0.0, static_cast<JobId>(i), f.rng,
            Lifecycle::Exploratory);
        EXPECT_EQ(job.request.lifecycle, Lifecycle::Exploratory);
    }
}

TEST(JobGenerator, TerminalStateMatchesClass)
{
    Fixture f;
    int failures = 0;
    for (int i = 0; i < 400; ++i) {
        const auto mature = f.generator.gpuJob(
            f.neutralUser(), 0.0, static_cast<JobId>(i), f.rng,
            Lifecycle::Mature);
        if (mature.request.natural_end == TerminalState::NodeFailure) {
            ++failures;  // rare hardware losses are allowed
            continue;
        }
        EXPECT_EQ(mature.request.natural_end, TerminalState::Completed);
    }
    // Hardware failures stay rare (<0.5% per Sec. II; allow slack).
    EXPECT_LT(failures, 10);
}

TEST(JobGenerator, ExploratoryJobsAreCancelled)
{
    Fixture f;
    const auto job = f.generator.gpuJob(f.neutralUser(), 0.0, 1, f.rng,
                                        Lifecycle::Exploratory);
    if (job.request.natural_end != TerminalState::NodeFailure) {
        EXPECT_EQ(job.request.natural_end, TerminalState::Cancelled);
    }
}

TEST(JobGenerator, IdeJobsTimeOutAtTwelveOrTwentyFourHours)
{
    Fixture f;
    for (int i = 0; i < 100; ++i) {
        const auto job = f.generator.gpuJob(
            f.neutralUser(), 0.0, static_cast<JobId>(i), f.rng,
            Lifecycle::Ide);
        const double limit_h = job.request.walltime_limit / one_hour;
        EXPECT_TRUE(limit_h == 12.0 || limit_h == 24.0) << limit_h;
        EXPECT_GT(job.request.duration, job.request.walltime_limit);
        EXPECT_EQ(job.request.observedEnd(), TerminalState::TimedOut);
        EXPECT_DOUBLE_EQ(job.request.observedDuration(),
                         job.request.walltime_limit);
    }
}

TEST(JobGenerator, NonIdeJobsNeverTimeOut)
{
    Fixture f;
    for (int i = 0; i < 500; ++i) {
        const auto job = f.generator.gpuJob(
            f.neutralUser(), 0.0, static_cast<JobId>(i), f.rng,
            Lifecycle::Mature);
        EXPECT_LT(job.request.duration, job.request.walltime_limit);
    }
}

TEST(JobGenerator, RuntimeMedianTracksClassCalibration)
{
    Fixture f;
    std::vector<double> durations;
    for (int i = 0; i < 6000; ++i) {
        const auto job = f.generator.gpuJob(
            f.neutralUser(GpuTier::SingleOnly), 0.0,
            static_cast<JobId>(i), f.rng, Lifecycle::Mature);
        if (job.request.duration >= 30.0)  // skip the abort spike
            durations.push_back(job.request.duration / 60.0);
    }
    // Median of the filtered body should sit near 36 min.
    EXPECT_NEAR(stats::percentile(durations, 0.5), 36.0, 8.0);
}

TEST(JobGenerator, SingleOnlyUsersNeverGetMultiGpu)
{
    Fixture f;
    for (int i = 0; i < 300; ++i) {
        const auto job = f.generator.gpuJob(
            f.neutralUser(GpuTier::SingleOnly), 0.0,
            static_cast<JobId>(i), f.rng);
        EXPECT_EQ(job.request.gpus, 1);
    }
}

TEST(JobGenerator, TwoGpuTierCapsAtTwo)
{
    Fixture f;
    auto user = f.neutralUser(GpuTier::TwoGpu);
    user.multi_gpu_prob = 1.0;  // force multi on every roll
    for (int i = 0; i < 200; ++i) {
        const auto job = f.generator.gpuJob(
            user, 0.0, static_cast<JobId>(i), f.rng, Lifecycle::Mature);
        EXPECT_LE(job.request.gpus, 2);
    }
}

TEST(JobGenerator, LargeTierReachesNinePlus)
{
    Fixture f;
    auto user = f.neutralUser(GpuTier::Large);
    user.multi_gpu_prob = 1.0;
    int big = 0;
    for (int i = 0; i < 500; ++i) {
        const auto job = f.generator.gpuJob(
            user, 0.0, static_cast<JobId>(i), f.rng, Lifecycle::Mature);
        if (job.request.gpus >= 9)
            ++big;
        EXPECT_LE(job.request.gpus, 32);
    }
    EXPECT_GT(big, 10);
}

TEST(JobGenerator, ProfileGpuCountsMatchRequest)
{
    Fixture f;
    auto user = f.neutralUser(GpuTier::Medium);
    user.multi_gpu_prob = 1.0;
    for (int i = 0; i < 100; ++i) {
        const auto job = f.generator.gpuJob(
            user, 0.0, static_cast<JobId>(i), f.rng);
        EXPECT_EQ(job.profile.num_gpus, job.request.gpus);
        EXPECT_LT(job.profile.idle_gpus, job.profile.num_gpus);
        EXPECT_GE(job.profile.idle_gpus, 0);
    }
}

TEST(JobGenerator, IdleGpuInjectionLeavesHalfOrMoreIdle)
{
    Fixture f;
    auto user = f.neutralUser(GpuTier::Large);
    user.multi_gpu_prob = 1.0;
    int with_idle = 0, multi = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto job = f.generator.gpuJob(
            user, 0.0, static_cast<JobId>(i), f.rng, Lifecycle::Mature);
        if (job.request.gpus < 2)
            continue;
        ++multi;
        if (job.profile.idle_gpus > 0) {
            ++with_idle;
            EXPECT_GE(2 * job.profile.idle_gpus, job.request.gpus);
        }
    }
    // idle_gpu_prob for mature jobs is 0.45.
    EXPECT_NEAR(static_cast<double>(with_idle) / multi, 0.45, 0.06);
}

TEST(JobGenerator, UtilizationMeansAreSane)
{
    Fixture f;
    for (int i = 0; i < 1000; ++i) {
        const auto job = f.generator.gpuJob(
            f.neutralUser(), 0.0, static_cast<JobId>(i), f.rng);
        EXPECT_GE(job.profile.sm_mean, 0.0);
        EXPECT_LE(job.profile.sm_mean, 1.0);
        EXPECT_GE(job.profile.membw_mean, 0.0);
        EXPECT_LE(job.profile.membw_mean, 1.0);
        EXPECT_GT(job.profile.memsize_mean, 0.0);
        EXPECT_GE(job.profile.active_fraction, 0.0);
        EXPECT_LE(job.profile.active_fraction, 1.0);
    }
}

TEST(JobGenerator, DevelopmentJobsSkewIdle)
{
    Fixture f;
    double dev_sm = 0.0, mature_sm = 0.0;
    constexpr int n = 2000;
    for (int i = 0; i < n; ++i) {
        dev_sm += f.generator
                      .gpuJob(f.neutralUser(), 0.0,
                              static_cast<JobId>(i), f.rng,
                              Lifecycle::Development)
                      .profile.sm_mean;
        mature_sm += f.generator
                         .gpuJob(f.neutralUser(), 0.0,
                                 static_cast<JobId>(n + i), f.rng,
                                 Lifecycle::Mature)
                         .profile.sm_mean;
    }
    EXPECT_LT(dev_sm / n, 0.4 * mature_sm / n);
}

TEST(JobGenerator, SurvivalProbabilityOrdering)
{
    Fixture f;
    const double dev =
        f.generator.survivalProbability(Lifecycle::Development, f.rng);
    const double mature =
        f.generator.survivalProbability(Lifecycle::Mature, f.rng);
    const double ide =
        f.generator.survivalProbability(Lifecycle::Ide, f.rng);
    EXPECT_LT(dev, mature);  // crash-prone debug runs die young
    EXPECT_DOUBLE_EQ(ide, 1.0);
    EXPECT_GT(mature, 0.85);
}

TEST(JobGenerator, CpuJobsRequestWholeNodes)
{
    Fixture f;
    for (int i = 0; i < 300; ++i) {
        const auto req = f.generator.cpuJob(f.neutralUser(), 0.0,
                                            static_cast<JobId>(i), f.rng);
        EXPECT_EQ(req.gpus, 0);
        EXPECT_EQ(req.cpu_slots % 80, 0);
        EXPECT_GE(req.cpu_slots, 80);
        EXPECT_GT(req.ram_gb, 200.0);
    }
}

TEST(JobGenerator, SaturationFlagFrequencies)
{
    Fixture f;
    int sm = 0, rx = 0, rx_and_sm = 0, membw = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto job = f.generator.gpuJob(
            f.neutralUser(), 0.0, static_cast<JobId>(i), f.rng);
        sm += job.profile.sat_sm;
        rx += job.profile.sat_rx;
        rx_and_sm += job.profile.sat_sm && job.profile.sat_rx;
        membw += job.profile.sat_membw;
    }
    EXPECT_NEAR(static_cast<double>(sm) / n, 0.22, 0.02);
    EXPECT_NEAR(static_cast<double>(rx) / n, 0.18, 0.02);
    EXPECT_NEAR(static_cast<double>(rx_and_sm) / n, 0.09, 0.015);
    EXPECT_LT(static_cast<double>(membw) / n, 0.02);
}

} // namespace
} // namespace aiwc::workload
