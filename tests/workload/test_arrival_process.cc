#include <gtest/gtest.h>

#include <algorithm>

#include "aiwc/workload/arrival_process.hh"

namespace aiwc::workload
{
namespace
{

ArrivalParams
shortStudy(int jobs = 5000, double days = 14.0)
{
    ArrivalParams params;
    params.study_days = days;
    params.total_jobs = jobs;
    return params;
}

TEST(ArrivalProcess, GeneratesApproximatelyTargetCount)
{
    const ArrivalProcess proc(shortStudy(20000, 30.0));
    Rng rng(1);
    const auto arrivals = proc.generate(rng);
    EXPECT_NEAR(static_cast<double>(arrivals.size()), 20000.0, 800.0);
}

TEST(ArrivalProcess, ArrivalsAreSortedWithinHorizon)
{
    const ArrivalProcess proc(shortStudy());
    Rng rng(2);
    const auto arrivals = proc.generate(rng);
    ASSERT_FALSE(arrivals.empty());
    EXPECT_GE(arrivals.front(), 0.0);
    EXPECT_LT(arrivals.back(), proc.studySeconds());
    EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
}

TEST(ArrivalProcess, OverrideCountWins)
{
    ArrivalParams params = shortStudy(99999);
    const ArrivalProcess proc(params, 3000);
    Rng rng(3);
    EXPECT_NEAR(static_cast<double>(proc.generate(rng).size()), 3000.0,
                300.0);
}

TEST(ArrivalProcess, DiurnalCycleModulatesRate)
{
    const ArrivalProcess proc(shortStudy());
    // Peak afternoon vs. trough: ratio ~ (1+A)/(1-A) with A=0.55.
    double peak = 0.0, trough = 1e30;
    for (double h = 0.0; h < 24.0; h += 0.5) {
        const double m = proc.modulationAt(h * 3600.0);
        peak = std::max(peak, m);
        trough = std::min(trough, m);
    }
    EXPECT_NEAR(peak / trough, 1.55 / 0.45, 0.3);
}

TEST(ArrivalProcess, WeekendDipApplies)
{
    const ArrivalProcess proc(shortStudy(5000, 14.0));
    // Same time-of-day on weekday 2 vs weekend day 5.
    const double weekday = proc.modulationAt(2.4 * one_day);
    const double weekend = proc.modulationAt(5.4 * one_day);
    EXPECT_NEAR(weekend / weekday, 0.60, 0.05);
}

TEST(ArrivalProcess, DeadlineRampBoostsLoad)
{
    ArrivalParams params = shortStudy(50000, 125.0);
    const ArrivalProcess proc(params);
    // Day 40 is the first deadline; compare to a quiet matched-phase
    // day (same weekday and hour) far from any deadline.
    const double at_deadline = proc.modulationAt(39.6 * one_day);
    const double quiet = proc.modulationAt(18.6 * one_day);
    EXPECT_GT(at_deadline / quiet, 1.5);
}

TEST(ArrivalProcess, PostDeadlineLull)
{
    const ArrivalProcess proc(shortStudy(50000, 125.0));
    const double after = proc.modulationAt(41.6 * one_day);
    const double quiet = proc.modulationAt(20.6 * one_day);
    EXPECT_LT(after, quiet);
}

TEST(ArrivalProcess, RateNeverNonPositive)
{
    const ArrivalProcess proc(shortStudy());
    for (double t = 0.0; t < proc.studySeconds(); t += 3600.0)
        EXPECT_GT(proc.rateAt(t), 0.0);
}

TEST(ArrivalProcess, MaxRateBoundsObservedRate)
{
    const ArrivalProcess proc(shortStudy());
    for (double t = 0.0; t < proc.studySeconds(); t += 600.0)
        EXPECT_LE(proc.rateAt(t), proc.maxRate() * 1.0001);
}

} // namespace
} // namespace aiwc::workload
