#include <gtest/gtest.h>

#include "aiwc/workload/trace_synthesizer.hh"

namespace aiwc::workload
{
namespace
{

SynthesisResult
smallTrace(std::uint64_t seed = 42, bool through_scheduler = true)
{
    static const auto profile = CalibrationProfile::supercloud();
    SynthesisOptions options;
    options.scale = 0.02;
    options.seed = seed;
    options.through_scheduler = through_scheduler;
    const TraceSynthesizer synthesizer(profile, options);
    return synthesizer.run();
}

TEST(TraceSynthesizer, ProducesJobsAtRoughlyScaledVolume)
{
    const auto result = smallTrace();
    // 2% of 74,820 ~ 1,500 jobs; array realizations add noise.
    EXPECT_GT(result.dataset.size(), 700u);
    EXPECT_LT(result.dataset.size(), 3200u);
}

TEST(TraceSynthesizer, DeterministicForSeed)
{
    const auto a = smallTrace(7);
    const auto b = smallTrace(7);
    ASSERT_EQ(a.dataset.size(), b.dataset.size());
    for (std::size_t i = 0; i < a.dataset.size(); ++i) {
        const auto &ra = a.dataset.records()[i];
        const auto &rb = b.dataset.records()[i];
        EXPECT_EQ(ra.id, rb.id);
        EXPECT_DOUBLE_EQ(ra.submit_time, rb.submit_time);
        EXPECT_DOUBLE_EQ(ra.end_time, rb.end_time);
        EXPECT_DOUBLE_EQ(ra.meanUtilization(Resource::Sm),
                         rb.meanUtilization(Resource::Sm));
    }
}

TEST(TraceSynthesizer, DifferentSeedsDiffer)
{
    const auto a = smallTrace(1);
    const auto b = smallTrace(2);
    EXPECT_NE(a.dataset.size(), b.dataset.size());
}

TEST(TraceSynthesizer, TimesAreConsistent)
{
    const auto result = smallTrace();
    for (const auto &r : result.dataset.records()) {
        EXPECT_GE(r.start_time, r.submit_time);
        EXPECT_GE(r.end_time, r.start_time);
        EXPECT_GE(r.submit_time, 0.0);
    }
}

TEST(TraceSynthesizer, GpuJobsCarryTelemetry)
{
    const auto result = smallTrace();
    for (const auto &r : result.dataset.records()) {
        if (r.isGpuJob() && r.runTime() > 0.0) {
            ASSERT_EQ(static_cast<int>(r.per_gpu.size()), r.gpus);
            EXPECT_GT(r.per_gpu[0].power_watts.count(), 0u);
        } else if (!r.isGpuJob()) {
            EXPECT_TRUE(r.per_gpu.empty());
        }
    }
}

TEST(TraceSynthesizer, BothJobPopulationsPresent)
{
    const auto result = smallTrace();
    EXPECT_FALSE(result.dataset.gpuJobs().empty());
    EXPECT_FALSE(result.dataset.cpuJobs().empty());
    // CPU jobs arrive mostly as whole arrays, so at a 2% scale
    // (~50 CPU arrivals) the realized fraction is high-variance; the
    // calibration-fidelity suite checks the tight band at scale 0.12.
    const double cpu_frac =
        static_cast<double>(result.dataset.cpuJobs().size()) /
        static_cast<double>(result.dataset.size());
    EXPECT_NEAR(cpu_frac, 0.305, 0.17);
}

TEST(TraceSynthesizer, ProfilesIndexedByJobId)
{
    const auto result = smallTrace();
    EXPECT_EQ(result.profiles.size(), result.dataset.size());
    for (const auto &r : result.dataset.records()) {
        if (r.isGpuJob()) {
            EXPECT_EQ(result.profiles[r.id].num_gpus, r.gpus);
        }
    }
}

TEST(TraceSynthesizer, DirectModeSkipsQueueing)
{
    const auto result = smallTrace(42, /*through_scheduler=*/false);
    for (const auto &r : result.dataset.records())
        EXPECT_DOUBLE_EQ(r.waitTime(), 0.0);
    EXPECT_EQ(result.scheduler_stats.finished, 0u);
}

TEST(TraceSynthesizer, SchedulerModeProducesWaits)
{
    const auto result = smallTrace();
    double max_wait = 0.0;
    for (const auto &r : result.dataset.records())
        max_wait = std::max(max_wait, r.waitTime());
    EXPECT_GT(max_wait, 0.0);
    EXPECT_GT(result.scheduler_stats.finished, 0u);
}

TEST(TraceSynthesizer, CollectorAccountingNonTrivial)
{
    const auto result = smallTrace();
    EXPECT_GT(result.central_store_bytes, 0u);
    EXPECT_GT(result.peak_spool_bytes, 0u);
    EXPECT_LT(result.peak_spool_bytes, result.central_store_bytes);
}

TEST(TraceSynthesizer, SizesClampedToScaledCluster)
{
    const auto result = smallTrace();
    const int max_gpus = result.cluster_nodes * 2;
    for (const auto &r : result.dataset.records())
        EXPECT_LE(r.gpus, max_gpus / 2);
}

TEST(TraceSynthesizer, TimeseriesSubsetExists)
{
    const auto result = smallTrace();
    std::size_t detailed = 0;
    for (const auto &r : result.dataset.records())
        if (r.has_timeseries)
            ++detailed;
    EXPECT_GT(detailed, 10u);
    EXPECT_LT(detailed, result.dataset.gpuJobs(0.0).size());
}

TEST(TraceSynthesizer, UserIdsWithinPopulation)
{
    const auto result = smallTrace();
    for (const auto &r : result.dataset.records())
        EXPECT_LT(r.user, static_cast<UserId>(result.num_users));
}

TEST(TraceSynthesizer, ReplicateSeedsAreStableAndDistinct)
{
    EXPECT_EQ(TraceSynthesizer::replicateSeed(42, 0), 42u);
    const auto s1 = TraceSynthesizer::replicateSeed(42, 1);
    const auto s2 = TraceSynthesizer::replicateSeed(42, 2);
    EXPECT_NE(s1, 42u);
    EXPECT_NE(s1, s2);
    // Pure function: same inputs, same seed, every time.
    EXPECT_EQ(s1, TraceSynthesizer::replicateSeed(42, 1));
}

TEST(TraceSynthesizer, RunReplicatesMatchesPerSeedRuns)
{
    static const auto profile = CalibrationProfile::supercloud();
    SynthesisOptions options;
    options.scale = 0.02;
    options.seed = 42;
    const TraceSynthesizer synthesizer(profile, options);

    const auto replicates = synthesizer.runReplicates(3);
    ASSERT_EQ(replicates.size(), 3u);
    // Replicate 0 is the base seed; every replicate must be what a
    // standalone run() with replicateSeed(seed, r) produces.
    for (int r = 0; r < 3; ++r) {
        SynthesisOptions per = options;
        per.seed = TraceSynthesizer::replicateSeed(options.seed, r);
        const auto expected = TraceSynthesizer(profile, per).run();
        const auto &got = replicates[static_cast<std::size_t>(r)];
        ASSERT_EQ(got.dataset.size(), expected.dataset.size());
        for (std::size_t i = 0; i < got.dataset.size(); ++i) {
            const auto &ga = got.dataset.records()[i];
            const auto &ea = expected.dataset.records()[i];
            ASSERT_EQ(ga.id, ea.id);
            ASSERT_DOUBLE_EQ(ga.submit_time, ea.submit_time);
            ASSERT_DOUBLE_EQ(ga.end_time, ea.end_time);
        }
    }
    // Distinct seeds gave distinct traces.
    EXPECT_NE(replicates[0].dataset.size(), replicates[1].dataset.size());
}

} // namespace
} // namespace aiwc::workload
