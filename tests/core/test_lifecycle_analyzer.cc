#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/lifecycle_analyzer.hh"

namespace aiwc::core
{
namespace
{

using testing::gpuRecord;

Dataset
lifecycleDataset()
{
    Dataset ds;
    JobId id = 0;
    // User 0: six mature one-hour jobs at decent utilization.
    for (int i = 0; i < 6; ++i)
        ds.add(gpuRecord(id++, 0, 3600.0, 1, 0.25, 0.5,
                         TerminalState::Completed));
    // User 1: two cancelled (exploratory) two-hour jobs.
    for (int i = 0; i < 2; ++i)
        ds.add(gpuRecord(id++, 1, 7200.0, 1, 0.15, 0.4,
                         TerminalState::Cancelled));
    // User 2: one failed debug run and one 12 h IDE timeout at ~0%.
    ds.add(gpuRecord(id++, 2, 300.0, 1, 0.0, 0.01,
                     TerminalState::Failed));
    ds.add(gpuRecord(id++, 2, 12.0 * 3600.0, 1, 0.0, 0.01,
                     TerminalState::TimedOut));
    return ds;
}

TEST(LifecycleAnalyzer, JobMix)
{
    const auto report = LifecycleAnalyzer().analyze(lifecycleDataset());
    EXPECT_NEAR(report.job_mix[static_cast<int>(Lifecycle::Mature)],
                0.6, 1e-12);
    EXPECT_NEAR(
        report.job_mix[static_cast<int>(Lifecycle::Exploratory)], 0.2,
        1e-12);
    EXPECT_NEAR(
        report.job_mix[static_cast<int>(Lifecycle::Development)], 0.1,
        1e-12);
    EXPECT_NEAR(report.job_mix[static_cast<int>(Lifecycle::Ide)], 0.1,
                1e-12);
}

TEST(LifecycleAnalyzer, HourMixWeightsLongJobs)
{
    const auto report = LifecycleAnalyzer().analyze(lifecycleDataset());
    // Hours: mature 6, exploratory 4, development ~0.083, IDE 12.
    const double total = 6.0 + 4.0 + 300.0 / 3600.0 + 12.0;
    EXPECT_NEAR(report.hour_mix[static_cast<int>(Lifecycle::Ide)],
                12.0 / total, 1e-9);
    EXPECT_NEAR(report.hour_mix[static_cast<int>(Lifecycle::Mature)],
                6.0 / total, 1e-9);
}

TEST(LifecycleAnalyzer, MedianRuntimesPerClass)
{
    const auto report = LifecycleAnalyzer().analyze(lifecycleDataset());
    EXPECT_NEAR(
        report.median_runtime_min[static_cast<int>(Lifecycle::Mature)],
        60.0, 1e-9);
    EXPECT_NEAR(report.median_runtime_min[static_cast<int>(
                    Lifecycle::Exploratory)],
                120.0, 1e-9);
    EXPECT_NEAR(report.median_runtime_min[static_cast<int>(
                    Lifecycle::Ide)],
                720.0, 1e-9);
}

TEST(LifecycleAnalyzer, UtilizationBoxesPerClass)
{
    const auto report = LifecycleAnalyzer().analyze(lifecycleDataset());
    EXPECT_NEAR(report.sm_pct[static_cast<int>(Lifecycle::Mature)].median,
                25.0, 1e-9);
    EXPECT_NEAR(report.sm_pct[static_cast<int>(Lifecycle::Ide)].median,
                0.0, 0.5);
}

TEST(LifecycleAnalyzer, PerUserShares)
{
    const auto report = LifecycleAnalyzer().analyze(lifecycleDataset());
    ASSERT_EQ(report.users.size(), 3u);
    // User 0 is all-mature.
    const auto &u0 = report.users[0];
    EXPECT_NEAR(u0.job_share[static_cast<int>(Lifecycle::Mature)], 1.0,
                1e-12);
    // User 2 splits development/IDE, hours dominated by IDE.
    const auto &u2 = report.users[2];
    EXPECT_NEAR(u2.job_share[static_cast<int>(Lifecycle::Ide)], 0.5,
                1e-12);
    EXPECT_GT(u2.hour_share[static_cast<int>(Lifecycle::Ide)], 0.95);
}

TEST(LifecycleAnalyzer, UserShareQueries)
{
    const auto report = LifecycleAnalyzer().analyze(lifecycleDataset());
    // Users 1 and 2 have zero mature jobs -> 2/3 below 40%.
    EXPECT_NEAR(report.usersWithMatureJobShareBelow(0.40), 2.0 / 3.0,
                1e-12);
    EXPECT_NEAR(report.usersWithMatureHourShareBelow(0.20), 2.0 / 3.0,
                1e-12);
    EXPECT_NEAR(report.usersWithNonMatureHoursAbove(0.60), 2.0 / 3.0,
                1e-12);
}

TEST(LifecycleAnalyzer, EmptyDataset)
{
    const auto report = LifecycleAnalyzer().analyze(Dataset{});
    EXPECT_TRUE(report.users.empty());
    EXPECT_DOUBLE_EQ(report.usersWithMatureJobShareBelow(0.4), 0.0);
}

} // namespace
} // namespace aiwc::core
