/**
 * @file
 * Shared builders for hand-crafted JobRecords used across the core
 * analyzer tests: fully controlled inputs, no generator involved.
 */

#ifndef AIWC_TESTS_CORE_RECORD_BUILDER_HH
#define AIWC_TESTS_CORE_RECORD_BUILDER_HH

#include "aiwc/core/dataset.hh"

namespace aiwc::core::testing
{

/** A GPU summary with the given per-metric (mean, max) pairs. */
inline GpuUsageSummary
summaryWith(double sm_mean, double sm_max, double membw_mean = 0.02,
            double memsize_mean = 0.1, double power_mean = 45.0,
            double power_max = 90.0)
{
    GpuUsageSummary s;
    // Three samples produce the desired mean and max exactly:
    // {max, mean - (max - mean), mean} has mean `mean` and max `max`.
    auto fill = [](stats::RunningSummary &r, double mean, double max) {
        const double lo = mean - (max - mean);
        r.add(max);
        r.add(lo);
        r.add(mean);
    };
    fill(s.sm, sm_mean, sm_max);
    fill(s.membw, membw_mean, membw_mean * 1.5);
    fill(s.memsize, memsize_mean, memsize_mean * 1.2);
    fill(s.pcie_tx, 0.2, 0.4);
    fill(s.pcie_rx, 0.2, 0.4);
    fill(s.power_watts, power_mean, power_max);
    return s;
}

/** An idle-GPU summary (all zeros). */
inline GpuUsageSummary
idleSummary()
{
    GpuUsageSummary s;
    s.sm.add(0.0);
    s.membw.add(0.0);
    s.memsize.add(0.0);
    s.pcie_tx.add(0.0);
    s.pcie_rx.add(0.0);
    s.power_watts.add(25.0);
    return s;
}

/** A basic finished GPU job record. */
inline JobRecord
gpuRecord(JobId id, UserId user, double runtime_s, int gpus = 1,
          double sm_mean = 0.2, double sm_max = 0.5,
          TerminalState terminal = TerminalState::Completed)
{
    JobRecord r;
    r.id = id;
    r.user = user;
    r.gpus = gpus;
    r.cpu_slots = 4 * gpus;
    r.ram_gb = 16.0 * gpus;
    r.submit_time = 0.0;
    r.start_time = 10.0;
    r.end_time = 10.0 + runtime_s;
    r.walltime_limit = runtime_s * 4.0;
    r.terminal = terminal;
    for (int g = 0; g < gpus; ++g)
        r.per_gpu.push_back(summaryWith(sm_mean, sm_max));
    return r;
}

/** A CPU-only record. */
inline JobRecord
cpuRecord(JobId id, UserId user, double runtime_s, double wait_s = 120.0)
{
    JobRecord r;
    r.id = id;
    r.user = user;
    r.gpus = 0;
    r.cpu_slots = 80;
    r.ram_gb = 350.0;
    r.submit_time = 0.0;
    r.start_time = wait_s;
    r.end_time = wait_s + runtime_s;
    r.walltime_limit = runtime_s * 4.0;
    return r;
}

} // namespace aiwc::core::testing

#endif // AIWC_TESTS_CORE_RECORD_BUILDER_HH
