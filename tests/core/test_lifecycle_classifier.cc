#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/lifecycle_classifier.hh"

namespace aiwc::core
{
namespace
{

using testing::gpuRecord;

TEST(LifecycleClassifier, MapsTerminalStates)
{
    const LifecycleClassifier clf;
    EXPECT_EQ(clf.classify(gpuRecord(1, 0, 60.0, 1, 0.2, 0.5,
                                     TerminalState::Completed)),
              Lifecycle::Mature);
    EXPECT_EQ(clf.classify(gpuRecord(2, 0, 60.0, 1, 0.2, 0.5,
                                     TerminalState::Cancelled)),
              Lifecycle::Exploratory);
    EXPECT_EQ(clf.classify(gpuRecord(3, 0, 60.0, 1, 0.2, 0.5,
                                     TerminalState::Failed)),
              Lifecycle::Development);
    EXPECT_EQ(clf.classify(gpuRecord(4, 0, 60.0, 1, 0.2, 0.5,
                                     TerminalState::TimedOut)),
              Lifecycle::Ide);
    EXPECT_EQ(clf.classify(gpuRecord(5, 0, 60.0, 1, 0.2, 0.5,
                                     TerminalState::NodeFailure)),
              Lifecycle::Development);
}

TEST(LifecycleClassifier, JobMixCountsFractions)
{
    Dataset ds;
    for (int i = 0; i < 6; ++i)
        ds.add(gpuRecord(static_cast<JobId>(i), 0, 60.0, 1, 0.2, 0.5,
                         TerminalState::Completed));
    for (int i = 6; i < 8; ++i)
        ds.add(gpuRecord(static_cast<JobId>(i), 0, 60.0, 1, 0.2, 0.5,
                         TerminalState::Cancelled));
    for (int i = 8; i < 10; ++i)
        ds.add(gpuRecord(static_cast<JobId>(i), 0, 60.0, 1, 0.2, 0.5,
                         TerminalState::TimedOut));
    const LifecycleClassifier clf;
    const auto mix = clf.jobMix(ds);
    EXPECT_NEAR(mix[static_cast<int>(Lifecycle::Mature)], 0.6, 1e-12);
    EXPECT_NEAR(mix[static_cast<int>(Lifecycle::Exploratory)], 0.2,
                1e-12);
    EXPECT_NEAR(mix[static_cast<int>(Lifecycle::Ide)], 0.2, 1e-12);
    EXPECT_NEAR(mix[static_cast<int>(Lifecycle::Development)], 0.0,
                1e-12);
}

TEST(LifecycleClassifier, GpuHourMixWeightsBySize)
{
    Dataset ds;
    // 1 GPU-hour mature vs 4 GPU-hours IDE.
    ds.add(gpuRecord(1, 0, 3600.0, 1, 0.2, 0.5,
                     TerminalState::Completed));
    ds.add(gpuRecord(2, 0, 3600.0, 4, 0.2, 0.5,
                     TerminalState::TimedOut));
    const LifecycleClassifier clf;
    const auto mix = clf.gpuHourMix(ds);
    EXPECT_NEAR(mix[static_cast<int>(Lifecycle::Mature)], 0.2, 1e-12);
    EXPECT_NEAR(mix[static_cast<int>(Lifecycle::Ide)], 0.8, 1e-12);
}

TEST(LifecycleClassifier, AccuracyAgainstTruth)
{
    Dataset ds;
    JobRecord good = gpuRecord(1, 0, 60.0, 1, 0.2, 0.5,
                               TerminalState::Completed);
    good.true_class = Lifecycle::Mature;
    JobRecord bad = gpuRecord(2, 0, 60.0, 1, 0.2, 0.5,
                              TerminalState::Completed);
    bad.true_class = Lifecycle::Ide;  // mislabeled on purpose
    ds.add(good);
    ds.add(bad);
    const LifecycleClassifier clf;
    EXPECT_NEAR(clf.accuracyAgainstTruth(ds), 0.5, 1e-12);
}

TEST(LifecycleClassifier, EmptyDatasetEdgeCases)
{
    const Dataset ds;
    const LifecycleClassifier clf;
    const auto mix = clf.jobMix(ds);
    for (double m : mix)
        EXPECT_DOUBLE_EQ(m, 0.0);
    EXPECT_DOUBLE_EQ(clf.accuracyAgainstTruth(ds), 1.0);
}

} // namespace
} // namespace aiwc::core
