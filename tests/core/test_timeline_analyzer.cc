#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/timeline_analyzer.hh"

namespace aiwc::core
{
namespace
{

using testing::cpuRecord;
using testing::gpuRecord;

JobRecord
at(JobRecord r, double submit, double start, double end)
{
    r.submit_time = submit;
    r.start_time = start;
    r.end_time = end;
    return r;
}

TEST(TimelineAnalyzer, SubmissionsCountedPerBin)
{
    Dataset ds;
    ds.add(at(gpuRecord(1, 0, 60.0), 0.0, 10.0, 70.0));
    ds.add(at(gpuRecord(2, 0, 60.0), 100.0, 110.0, 170.0));
    ds.add(at(gpuRecord(3, 0, 60.0), 100.0, 120.0, 180.0));
    const TimelineAnalyzer analyzer(/*bin_width=*/100.0);
    const auto report = analyzer.analyze(ds);
    ASSERT_GE(report.bins.size(), 2u);
    EXPECT_EQ(report.bins[0].submissions, 1u);
    EXPECT_EQ(report.bins[1].submissions, 2u);
}

TEST(TimelineAnalyzer, GpuBusyTimeSpreadsAcrossBins)
{
    Dataset ds;
    // 2 GPUs busy from t=50 to t=150 over 100 s bins: half of bin 0,
    // half of bin 1.
    ds.add(at(gpuRecord(1, 0, 100.0, 2), 50.0, 50.0, 150.0));
    const TimelineAnalyzer analyzer(100.0);
    const auto report = analyzer.analyze(ds);
    EXPECT_NEAR(report.bins[0].mean_gpus_busy, 1.0, 1e-9);
    EXPECT_NEAR(report.bins[1].mean_gpus_busy, 1.0, 1e-9);
    EXPECT_NEAR(report.peak_gpus_busy, 1.0, 1e-9);
}

TEST(TimelineAnalyzer, CpuNodesTrackedSeparately)
{
    Dataset ds;
    JobRecord cpu = cpuRecord(1, 0, 100.0, 0.0);
    cpu.cpu_slots = 160;  // two whole nodes
    cpu.start_time = 0.0;
    cpu.end_time = 100.0;
    ds.add(cpu);
    const TimelineAnalyzer analyzer(100.0);
    const auto report = analyzer.analyze(ds);
    EXPECT_NEAR(report.bins[0].mean_cpu_nodes_busy, 2.0, 1e-9);
    EXPECT_NEAR(report.bins[0].mean_gpus_busy, 0.0, 1e-9);
}

TEST(TimelineAnalyzer, PeakToMeanDetectsBurst)
{
    Dataset ds;
    JobId id = 0;
    for (int i = 0; i < 10; ++i)
        ds.add(at(gpuRecord(id++, 0, 50.0), 500.0, 510.0, 560.0));
    ds.add(at(gpuRecord(id++, 0, 50.0), 100.0, 110.0, 160.0));
    const TimelineAnalyzer analyzer(100.0);
    const auto report = analyzer.analyze(ds);
    EXPECT_GT(report.submission_peak_to_mean, 3.0);
}

TEST(TimelineAnalyzer, DeadlineSurgeFactor)
{
    Dataset ds;
    JobId id = 0;
    // Baseline: 2 submissions per day for days 0..19.
    for (int day = 0; day < 20; ++day) {
        for (int k = 0; k < 2; ++k) {
            const double t = day * one_day + k * 1000.0;
            ds.add(at(gpuRecord(id++, 0, 100.0), t, t + 5.0,
                      t + 105.0));
        }
    }
    // Surge: 10 submissions on day 15 (a "deadline" at day 16).
    for (int k = 0; k < 8; ++k) {
        const double t = 15 * one_day + k * 500.0;
        ds.add(at(gpuRecord(id++, 0, 100.0), t, t + 5.0, t + 105.0));
    }
    const TimelineAnalyzer analyzer(one_day);
    const auto report = analyzer.analyze(ds);
    const double surge = report.deadlineSurge({16.0}, 3.0);
    EXPECT_NEAR(surge, 10.0 / 2.0, 0.5);
}

TEST(TimelineAnalyzer, EmptyDataset)
{
    const auto report = TimelineAnalyzer().analyze(Dataset{});
    EXPECT_TRUE(report.bins.empty());
    EXPECT_DOUBLE_EQ(report.deadlineSurge({40.0}), 0.0);
}

} // namespace
} // namespace aiwc::core
