#include <gtest/gtest.h>

#include <sstream>

#include "record_builder.hh"

#include "aiwc/core/report_writer.hh"

namespace aiwc::core
{
namespace
{

using testing::cpuRecord;
using testing::gpuRecord;

Dataset
smallDataset()
{
    Dataset ds;
    JobId id = 0;
    for (int i = 0; i < 10; ++i) {
        JobRecord r = gpuRecord(id++, static_cast<UserId>(i % 3),
                                600.0 + 100.0 * i, 1 + (i % 2),
                                0.1 + 0.05 * i, 0.6);
        r.has_timeseries = (i % 4 == 0);
        if (r.has_timeseries) {
            r.phases.active_fraction = 0.8;
            r.phases.active_intervals = {10, 20, 30, 40};
            r.phases.idle_intervals = {5, 6, 7};
            r.phases.active_sm_cov = 14.0;
        }
        ds.add(r);
    }
    ds.add(cpuRecord(id++, 0, 480.0));
    return ds;
}

TEST(ReportWriter, FullStudyMentionsEveryFigure)
{
    std::ostringstream os;
    const ReportWriter writer(os);
    writer.printFullStudy(smallDataset());
    const std::string out = os.str();
    for (const char *needle :
         {"Fig. 3a", "Fig. 3b", "Fig. 4", "Fig. 5", "Figs. 6-7a",
          "Figs. 7b/8a", "Fig. 8b", "Fig. 9a", "Fig. 9b", "Fig. 10",
          "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14", "Fig. 15",
          "Fig. 16", "Fig. 17"}) {
        EXPECT_NE(out.find(needle), std::string::npos) << needle;
    }
}

TEST(ReportWriter, ServiceTimePrinterShowsThresholdLines)
{
    std::ostringstream os;
    const ReportWriter writer(os);
    writer.print(ServiceTimeAnalyzer().analyze(smallDataset()));
    EXPECT_NE(os.str().find("GPU jobs waiting < 1 min"),
              std::string::npos);
}

TEST(ReportWriter, LifecyclePrinterShowsClassNames)
{
    std::ostringstream os;
    const ReportWriter writer(os);
    writer.print(LifecycleAnalyzer().analyze(smallDataset()));
    const std::string out = os.str();
    EXPECT_NE(out.find("mature"), std::string::npos);
    EXPECT_NE(out.find("exploratory"), std::string::npos);
    EXPECT_NE(out.find("IDE"), std::string::npos);
}

TEST(ReportWriter, EmptyDatasetDoesNotCrash)
{
    std::ostringstream os;
    const ReportWriter writer(os);
    writer.printFullStudy(Dataset{});
    EXPECT_FALSE(os.str().empty());
}

} // namespace
} // namespace aiwc::core
