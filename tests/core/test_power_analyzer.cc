#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/power_analyzer.hh"

namespace aiwc::core
{
namespace
{

JobRecord
powerRecord(JobId id, double avg_w, double max_w)
{
    JobRecord r = testing::gpuRecord(id, 0, 600.0);
    r.per_gpu[0] = testing::summaryWith(0.2, 0.5, 0.02, 0.1, avg_w,
                                        max_w);
    return r;
}

TEST(PowerAnalyzer, CdfsCapturePerJobDraw)
{
    Dataset ds;
    ds.add(powerRecord(1, 45.0, 87.0));
    ds.add(powerRecord(2, 100.0, 200.0));
    const auto report = PowerAnalyzer().analyze(ds);
    EXPECT_EQ(report.avg_watts.size(), 2u);
    EXPECT_NEAR(report.avg_watts.quantile(0.0), 45.0, 1e-9);
    EXPECT_NEAR(report.max_watts.quantile(1.0), 200.0, 1e-9);
}

TEST(PowerAnalyzer, CapImpactClassification)
{
    Dataset ds;
    ds.add(powerRecord(1, 40.0, 100.0));   // unimpacted at 150
    ds.add(powerRecord(2, 60.0, 180.0));   // impacted by max only
    ds.add(powerRecord(3, 170.0, 280.0));  // impacted by avg
    ds.add(powerRecord(4, 30.0, 80.0));    // unimpacted
    const PowerAnalyzer analyzer({150.0});
    const auto report = analyzer.analyze(ds);
    ASSERT_EQ(report.caps.size(), 1u);
    const auto &cap = report.caps[0];
    EXPECT_DOUBLE_EQ(cap.cap_watts, 150.0);
    EXPECT_NEAR(cap.unimpacted, 0.5, 1e-12);
    EXPECT_NEAR(cap.impacted_by_max, 0.5, 1e-12);
    EXPECT_NEAR(cap.impacted_by_avg, 0.25, 1e-12);
}

TEST(PowerAnalyzer, DefaultCapsAreThePaperLevels)
{
    Dataset ds;
    ds.add(powerRecord(1, 45.0, 87.0));
    const auto report = PowerAnalyzer().analyze(ds);
    ASSERT_EQ(report.caps.size(), 3u);
    EXPECT_DOUBLE_EQ(report.caps[0].cap_watts, 150.0);
    EXPECT_DOUBLE_EQ(report.caps[1].cap_watts, 200.0);
    EXPECT_DOUBLE_EQ(report.caps[2].cap_watts, 250.0);
}

TEST(PowerAnalyzer, UnimpactedMonotoneInCap)
{
    Dataset ds;
    for (int i = 0; i < 20; ++i)
        ds.add(powerRecord(static_cast<JobId>(i), 20.0 + 10.0 * i,
                           40.0 + 12.0 * i));
    const auto report = PowerAnalyzer({100.0, 150.0, 200.0}).analyze(ds);
    EXPECT_LE(report.caps[0].unimpacted, report.caps[1].unimpacted);
    EXPECT_LE(report.caps[1].unimpacted, report.caps[2].unimpacted);
}

} // namespace
} // namespace aiwc::core
