#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/utilization_analyzer.hh"

namespace aiwc::core
{
namespace
{

using testing::gpuRecord;

TEST(UtilizationAnalyzer, CdfsArePercentages)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 600.0, 1, 0.16, 0.5));
    ds.add(gpuRecord(2, 0, 600.0, 1, 0.50, 0.9));
    const auto report = UtilizationAnalyzer().analyze(ds);
    EXPECT_EQ(report.sm_pct.size(), 2u);
    EXPECT_NEAR(report.sm_pct.quantile(0.0), 16.0, 1e-9);
    EXPECT_NEAR(report.sm_pct.quantile(1.0), 50.0, 1e-9);
}

TEST(UtilizationAnalyzer, FractionAboveThreshold)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 600.0, 1, 0.60, 0.9));
    ds.add(gpuRecord(2, 0, 600.0, 1, 0.10, 0.3));
    ds.add(gpuRecord(3, 0, 600.0, 1, 0.20, 0.4));
    ds.add(gpuRecord(4, 0, 600.0, 1, 0.70, 0.9));
    const auto report = UtilizationAnalyzer().analyze(ds);
    EXPECT_NEAR(report.fractionAbove(Resource::Sm, 50.0), 0.5, 1e-12);
    EXPECT_NEAR(report.fractionAbove(Resource::Sm, 5.0), 1.0, 1e-12);
}

TEST(UtilizationAnalyzer, MultiGpuJobsUseAcrossGpuAverage)
{
    Dataset ds;
    JobRecord r = gpuRecord(1, 0, 600.0, 1, 0.8, 0.9);
    r.per_gpu.push_back(testing::idleSummary());
    r.gpus = 2;
    ds.add(r);
    const auto report = UtilizationAnalyzer().analyze(ds);
    EXPECT_NEAR(report.sm_pct.quantile(0.5), 40.0, 1e-9);
}

TEST(UtilizationAnalyzer, ByInterfaceGroupsCorrectly)
{
    Dataset ds;
    JobRecord batch = gpuRecord(1, 0, 600.0, 1, 0.3, 0.6);
    batch.interface = Interface::Batch;
    JobRecord inter = gpuRecord(2, 0, 600.0, 1, 0.02, 0.05);
    inter.interface = Interface::Interactive;
    ds.add(batch);
    ds.add(inter);
    const auto report = UtilizationAnalyzer().analyzeByInterface(ds);
    const auto bi = static_cast<std::size_t>(Interface::Batch);
    const auto ii = static_cast<std::size_t>(Interface::Interactive);
    EXPECT_NEAR(report.sm[bi].median, 30.0, 1e-9);
    EXPECT_NEAR(report.sm[ii].median, 2.0, 1e-9);
    EXPECT_NEAR(report.job_fraction[bi], 0.5, 1e-12);
    EXPECT_NEAR(report.job_fraction[ii], 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(
        report.job_fraction[static_cast<std::size_t>(
            Interface::MapReduce)],
        0.0);
}

TEST(UtilizationAnalyzer, PcieCdfsPresent)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 600.0));
    const auto report = UtilizationAnalyzer().analyze(ds);
    EXPECT_EQ(report.pcie_tx_pct.size(), 1u);
    EXPECT_NEAR(report.pcie_tx_pct.quantile(0.5), 20.0, 1e-9);
}

} // namespace
} // namespace aiwc::core
