#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/multi_gpu_analyzer.hh"

namespace aiwc::core
{
namespace
{

using testing::gpuRecord;
using testing::idleSummary;
using testing::summaryWith;

TEST(SizeBuckets, MappingMatchesFig13)
{
    EXPECT_EQ(sizeBucketOf(1), 0);
    EXPECT_EQ(sizeBucketOf(2), 1);
    EXPECT_EQ(sizeBucketOf(3), 2);
    EXPECT_EQ(sizeBucketOf(8), 2);
    EXPECT_EQ(sizeBucketOf(9), 3);
    EXPECT_EQ(sizeBucketOf(32), 3);
}

TEST(MultiGpuAnalyzer, JobAndHourFractions)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 3600.0, 1));  // 1 GPU-hour
    ds.add(gpuRecord(2, 1, 3600.0, 1));
    ds.add(gpuRecord(3, 2, 3600.0, 2));  // 2 GPU-hours
    const auto report = MultiGpuAnalyzer().analyze(ds);
    EXPECT_NEAR(report.job_fraction[0], 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(report.job_fraction[1], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(report.hour_fraction[0], 0.5, 1e-12);
    EXPECT_NEAR(report.hour_fraction[1], 0.5, 1e-12);
}

TEST(MultiGpuAnalyzer, UserReachFractions)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 600.0, 1));
    ds.add(gpuRecord(2, 1, 600.0, 2));
    ds.add(gpuRecord(3, 2, 600.0, 4));
    ds.add(gpuRecord(4, 3, 600.0, 16));
    const auto report = MultiGpuAnalyzer().analyze(ds);
    EXPECT_NEAR(report.users_multi, 0.75, 1e-12);
    EXPECT_NEAR(report.users_3plus, 0.5, 1e-12);
    EXPECT_NEAR(report.users_9plus, 0.25, 1e-12);
}

TEST(MultiGpuAnalyzer, IdleGpuDetectionAndBimodalCov)
{
    Dataset ds;
    // Balanced 2-GPU job: both GPUs equal -> tiny CoV.
    ds.add(gpuRecord(1, 0, 600.0, 2, 0.4, 0.6));
    // Pathological 2-GPU job: one idle GPU -> 100% CoV across all,
    // zero CoV across active only.
    JobRecord bad = gpuRecord(2, 0, 600.0, 1, 0.4, 0.6);
    bad.per_gpu.push_back(idleSummary());
    bad.gpus = 2;
    ds.add(bad);
    const auto report = MultiGpuAnalyzer().analyze(ds);
    EXPECT_NEAR(report.idle_gpu_job_fraction, 0.5, 1e-12);
    EXPECT_NEAR(report.sm_cov_all_pct.quantile(1.0), 100.0, 1e-6);
    EXPECT_NEAR(report.sm_cov_all_pct.quantile(0.0), 0.0, 1e-6);
    // Active-only CoV collapses for the pathological job (single
    // active GPU -> CoV 0 by convention).
    EXPECT_NEAR(report.sm_cov_active_pct.quantile(1.0), 0.0, 1e-6);
}

TEST(MultiGpuAnalyzer, MedianWaitPerBucket)
{
    Dataset ds;
    JobRecord fast = gpuRecord(1, 0, 600.0, 1);
    fast.start_time = 3.0;
    fast.end_time = 603.0;
    JobRecord slow = gpuRecord(2, 0, 600.0, 2);
    slow.start_time = 100.0;
    slow.end_time = 700.0;
    ds.add(fast);
    ds.add(slow);
    const auto report = MultiGpuAnalyzer().analyze(ds);
    EXPECT_NEAR(report.median_wait_s[0], 3.0, 1e-12);
    EXPECT_NEAR(report.median_wait_s[1], 100.0, 1e-12);
}

TEST(MultiGpuAnalyzer, SingleGpuJobsExcludedFromCovCdfs)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 600.0, 1));
    const auto report = MultiGpuAnalyzer().analyze(ds);
    EXPECT_TRUE(report.sm_cov_all_pct.empty());
}

TEST(MultiGpuAnalyzer, BucketNames)
{
    EXPECT_STREQ(sizeBucketName(0), "1 GPU");
    EXPECT_STREQ(sizeBucketName(3), ">=9 GPUs");
}

} // namespace
} // namespace aiwc::core
