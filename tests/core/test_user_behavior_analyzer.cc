#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/user_behavior_analyzer.hh"

namespace aiwc::core
{
namespace
{

using testing::gpuRecord;

TEST(UserBehaviorAnalyzer, PerUserAverages)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 600.0, 1, 0.2, 0.5));   // 10 min
    ds.add(gpuRecord(2, 0, 1800.0, 1, 0.4, 0.7));  // 30 min
    ds.add(gpuRecord(3, 1, 3600.0, 1, 0.1, 0.2));
    const auto report = UserBehaviorAnalyzer().analyze(ds);
    ASSERT_EQ(report.users.size(), 2u);
    const auto &u0 = report.users[0];
    EXPECT_EQ(u0.jobs, 2u);
    EXPECT_NEAR(u0.avg_runtime_min, 20.0, 1e-9);
    EXPECT_NEAR(u0.avg_sm_pct, 30.0, 1e-9);
}

TEST(UserBehaviorAnalyzer, CovRequiresMinimumJobs)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 600.0));
    const auto report = UserBehaviorAnalyzer().analyze(ds);
    // Single-job user: no CoV entry.
    EXPECT_TRUE(report.runtime_cov_pct.empty());
    EXPECT_EQ(report.avg_runtime_min.size(), 1u);
}

TEST(UserBehaviorAnalyzer, CovIsZeroForIdenticalJobs)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 600.0, 1, 0.3, 0.5));
    ds.add(gpuRecord(2, 0, 600.0, 1, 0.3, 0.5));
    const auto report = UserBehaviorAnalyzer().analyze(ds);
    EXPECT_NEAR(report.runtime_cov_pct.quantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(report.sm_cov_pct.quantile(0.5), 0.0, 1e-9);
}

TEST(UserBehaviorAnalyzer, CovCapturesWithinUserVariance)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 60.0));
    ds.add(gpuRecord(2, 0, 6000.0));
    const auto report = UserBehaviorAnalyzer().analyze(ds);
    EXPECT_GT(report.runtime_cov_pct.quantile(0.5), 90.0);
}

TEST(UserBehaviorAnalyzer, ConcentrationStats)
{
    Dataset ds;
    JobId id = 0;
    // User 0 submits 16 jobs, users 1..4 submit 1 each.
    for (int i = 0; i < 16; ++i)
        ds.add(gpuRecord(id++, 0, 600.0));
    for (UserId u = 1; u <= 4; ++u)
        ds.add(gpuRecord(id++, u, 600.0));
    const auto report = UserBehaviorAnalyzer().analyze(ds);
    // Top 20% of 5 users = 1 user = 16/20 of jobs.
    EXPECT_NEAR(report.top20_job_share, 0.8, 1e-12);
    EXPECT_NEAR(report.median_jobs_per_user, 1.0, 1e-12);
}

TEST(UserBehaviorAnalyzer, GpuHoursAccumulate)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 3600.0, 2));
    ds.add(gpuRecord(2, 0, 1800.0, 1));
    const auto report = UserBehaviorAnalyzer().summarize(ds);
    ASSERT_EQ(report.size(), 1u);
    EXPECT_NEAR(report[0].gpu_hours, 2.5, 1e-9);
}

} // namespace
} // namespace aiwc::core
