#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/bottleneck_analyzer.hh"

namespace aiwc::core
{
namespace
{

using testing::gpuRecord;

JobRecord
saturatedRecord(JobId id, std::vector<Resource> saturated)
{
    JobRecord r = gpuRecord(id, 0, 600.0, 1, 0.2, 0.5);
    for (Resource res : saturated)
        r.per_gpu[0].byResource(res).add(1.0);
    return r;
}

TEST(BottleneckAnalyzer, SingleResourceFractions)
{
    Dataset ds;
    ds.add(saturatedRecord(1, {Resource::Sm}));
    ds.add(saturatedRecord(2, {Resource::Sm}));
    ds.add(saturatedRecord(3, {}));
    ds.add(saturatedRecord(4, {}));
    const auto report = BottleneckAnalyzer().analyze(ds);
    EXPECT_NEAR(report.single_of(Resource::Sm), 0.5, 1e-12);
    EXPECT_NEAR(report.single_of(Resource::MemoryBw), 0.0, 1e-12);
    EXPECT_EQ(report.jobs, 4u);
}

TEST(BottleneckAnalyzer, PairFractions)
{
    Dataset ds;
    ds.add(saturatedRecord(1, {Resource::Sm, Resource::PcieRx}));
    ds.add(saturatedRecord(2, {Resource::Sm}));
    ds.add(saturatedRecord(3, {}));
    ds.add(saturatedRecord(4, {}));
    const auto report = BottleneckAnalyzer().analyze(ds);
    EXPECT_NEAR(report.pair_of(Resource::Sm, Resource::PcieRx), 0.25,
                1e-12);
    // Argument order must not matter.
    EXPECT_NEAR(report.pair_of(Resource::PcieRx, Resource::Sm), 0.25,
                1e-12);
    EXPECT_NEAR(report.pair_of(Resource::Sm, Resource::MemoryBw), 0.0,
                1e-12);
}

TEST(BottleneckAnalyzer, PairIndexIsBijective)
{
    // All 10 upper-triangle indices of the 5x5 matrix, each exactly
    // once.
    std::array<bool, 10> seen{};
    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = i + 1; j < 5; ++j) {
            const std::size_t idx = BottleneckReport::pairIndex(i, j);
            ASSERT_LT(idx, 10u);
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(BottleneckAnalyzer, ThresholdConfigurable)
{
    Dataset ds;
    JobRecord r = gpuRecord(1, 0, 600.0, 1, 0.2, 0.9);
    ds.add(r);
    EXPECT_NEAR(BottleneckAnalyzer(0.995).analyze(ds).single_of(
                    Resource::Sm),
                0.0, 1e-12);
    EXPECT_NEAR(BottleneckAnalyzer(0.85).analyze(ds).single_of(
                    Resource::Sm),
                1.0, 1e-12);
}

TEST(BottleneckAnalyzer, MultiGpuSaturationOnAnyGpuCounts)
{
    Dataset ds;
    JobRecord r = gpuRecord(1, 0, 600.0, 2, 0.2, 0.5);
    r.per_gpu[1].sm.add(1.0);  // second GPU saturates
    ds.add(r);
    const auto report = BottleneckAnalyzer().analyze(ds);
    EXPECT_NEAR(report.single_of(Resource::Sm), 1.0, 1e-12);
}

TEST(BottleneckAnalyzer, EmptyDataset)
{
    const auto report = BottleneckAnalyzer().analyze(Dataset{});
    EXPECT_EQ(report.jobs, 0u);
    for (double s : report.single)
        EXPECT_DOUBLE_EQ(s, 0.0);
}

} // namespace
} // namespace aiwc::core
