#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/correlation_analyzer.hh"

namespace aiwc::core
{
namespace
{

TEST(CorrelationAnalyzer, DetectsEngineeredCorrelation)
{
    // Users with more jobs get strictly higher SM utilization; the
    // Spearman rho against avg SM must be ~1.
    std::vector<UserSummary> users;
    for (int u = 0; u < 30; ++u) {
        UserSummary s;
        s.user = static_cast<UserId>(u);
        s.jobs = static_cast<std::size_t>(5 + u * 3);
        s.gpu_hours = 10.0 + u;
        s.avg_sm_pct = 5.0 + u * 1.5;
        s.avg_membw_pct = 1.0;
        s.avg_runtime_min = 100.0;
        s.runtime_cov_pct = 50.0;
        s.sm_cov_pct = 40.0;
        s.membw_cov_pct = 30.0;
        users.push_back(s);
    }
    const auto report = CorrelationAnalyzer().analyze(users);
    EXPECT_EQ(report.users, 30u);
    const auto sm_idx = static_cast<std::size_t>(UserFeature::AvgSm);
    EXPECT_NEAR(report.by_jobs.features[sm_idx].coefficient, 1.0, 1e-9);
    EXPECT_TRUE(report.by_jobs.features[sm_idx].significant());
    // Constant features have zero correlation.
    const auto cov_idx = static_cast<std::size_t>(UserFeature::CovSm);
    EXPECT_NEAR(report.by_jobs.features[cov_idx].coefficient, 0.0,
                1e-9);
}

TEST(CorrelationAnalyzer, MinJobsFilterApplies)
{
    std::vector<UserSummary> users;
    for (int u = 0; u < 10; ++u) {
        UserSummary s;
        s.user = static_cast<UserId>(u);
        s.jobs = static_cast<std::size_t>(u < 5 ? 1 : 10);
        s.gpu_hours = 1.0 + u;
        users.push_back(s);
    }
    const CorrelationAnalyzer analyzer(/*min_jobs=*/3);
    const auto report = analyzer.analyze(users);
    EXPECT_EQ(report.users, 5u);
}

TEST(CorrelationAnalyzer, WorksFromDataset)
{
    Dataset ds;
    JobId id = 0;
    for (UserId u = 0; u < 8; ++u) {
        for (int j = 0; j < 4 + static_cast<int>(u); ++j) {
            ds.add(testing::gpuRecord(id++, u, 600.0 + 60.0 * j, 1,
                                      0.05 + 0.05 * u, 0.5));
        }
    }
    const auto report = CorrelationAnalyzer().analyze(ds);
    EXPECT_EQ(report.users, 8u);
    const auto sm_idx = static_cast<std::size_t>(UserFeature::AvgSm);
    EXPECT_GT(report.by_jobs.features[sm_idx].coefficient, 0.9);
}

TEST(CorrelationAnalyzer, FeatureNames)
{
    EXPECT_STREQ(toString(UserFeature::AvgRuntime), "avg runtime");
    EXPECT_STREQ(toString(UserFeature::CovSm), "CoV SM util");
}

} // namespace
} // namespace aiwc::core
