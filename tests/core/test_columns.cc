/**
 * @file
 * ColumnTable unit tests: the struct-of-arrays mirror must stay in
 * lockstep with the record vector, and every derived column must be
 * bit-identical to the JobRecord method it mirrors — the property the
 * columnar analyzer kernels rely on for byte-exact output.
 */

#include <gtest/gtest.h>

#include "aiwc/core/dataset.hh"

#include "record_builder.hh"

namespace aiwc::core
{
namespace
{

using testing::cpuRecord;
using testing::gpuRecord;

Dataset
smallDataset()
{
    std::vector<JobRecord> records;
    records.push_back(gpuRecord(1, 500, 3600.0, 2, 0.3, 0.8));
    records.push_back(cpuRecord(2, 400, 120.0));
    records.push_back(gpuRecord(3, 500, 7.5));  // under the 30 s filter
    records.push_back(gpuRecord(4, 400, 900.0, 1, 0.6, 0.9,
                                TerminalState::Cancelled));
    records.push_back(gpuRecord(5, 600, 60.0, 4, 0.1, 0.2,
                                TerminalState::Failed));
    return Dataset(std::move(records));
}

TEST(ColumnTable, StaysInLockstepWithRecords)
{
    Dataset ds = smallDataset();
    const ColumnTable &cols = ds.columns();
    ASSERT_EQ(cols.rows(), ds.size());

    ds.add(gpuRecord(6, 700, 42.0));
    ASSERT_EQ(ds.columns().rows(), ds.size());
    EXPECT_EQ(ds.columns().jobIds().back(), 6u);
}

TEST(ColumnTable, ScalarColumnsMatchRecordFields)
{
    const Dataset ds = smallDataset();
    const ColumnTable &cols = ds.columns();
    const auto &records = ds.records();
    for (std::size_t i = 0; i < records.size(); ++i) {
        const JobRecord &r = records[i];
        EXPECT_EQ(cols.jobIds()[i], r.id);
        EXPECT_EQ(cols.interfaces()[i],
                  static_cast<std::uint8_t>(r.interface));
        EXPECT_EQ(cols.terminals()[i],
                  static_cast<std::uint8_t>(r.terminal));
        EXPECT_EQ(cols.submitTime()[i], r.submit_time);
        EXPECT_EQ(cols.startTime()[i], r.start_time);
        EXPECT_EQ(cols.endTime()[i], r.end_time);
        EXPECT_EQ(cols.gpus()[i], r.gpus);
        EXPECT_EQ(cols.cpuSlots()[i], r.cpu_slots);
        EXPECT_EQ(cols.ramGb()[i], r.ram_gb);
    }
}

TEST(ColumnTable, DerivedColumnsAreBitIdenticalToRecordMethods)
{
    const Dataset ds = smallDataset();
    const ColumnTable &cols = ds.columns();
    const auto &records = ds.records();
    for (std::size_t i = 0; i < records.size(); ++i) {
        const JobRecord &r = records[i];
        // EXPECT_EQ, not NEAR: the columnar kernels promise the exact
        // double the row walk produced, down to the last ULP.
        EXPECT_EQ(cols.runtimeS()[i], r.runTime());
        EXPECT_EQ(cols.waitS()[i], r.waitTime());
        EXPECT_EQ(cols.gpuHours()[i], r.gpuHours());
        for (int res = 0; res < num_resources; ++res) {
            const auto resource = static_cast<Resource>(res);
            EXPECT_EQ(cols.meanUtil(resource)[i],
                      r.meanUtilization(resource));
            EXPECT_EQ(cols.maxUtil(resource)[i],
                      r.maxUtilization(resource));
        }
    }
}

TEST(ColumnTable, UserTableInternsInFirstAppearanceOrder)
{
    const Dataset ds = smallDataset();
    const ColumnTable &cols = ds.columns();
    ASSERT_EQ(cols.users().size(), 3u);
    EXPECT_EQ(cols.users().rawOf(0), 500u);
    EXPECT_EQ(cols.users().rawOf(1), 400u);
    EXPECT_EQ(cols.users().rawOf(2), 600u);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        EXPECT_EQ(cols.users().rawOf(cols.userIndex()[i]),
                  ds.records()[i].user);
    }
    EXPECT_EQ(ds.uniqueUsers(), 3u);
}

TEST(ColumnTable, JobTypeIndexRoundTripsThroughPacking)
{
    const Dataset ds = smallDataset();
    const ColumnTable &cols = ds.columns();
    for (std::size_t i = 0; i < ds.size(); ++i) {
        const JobRecord &r = ds.records()[i];
        const std::uint32_t packed =
            cols.jobTypes().rawOf(cols.typeIndex()[i]);
        EXPECT_EQ(packed, packJobType(r.interface, r.terminal));
    }
}

TEST(Dataset, GpuJobIndicesMatchGpuJobsRowForRow)
{
    const Dataset ds = smallDataset();
    const auto idx = ds.gpuJobIndices();
    const auto jobs = ds.gpuJobs();
    ASSERT_EQ(idx.size(), jobs.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        EXPECT_EQ(&ds.records()[idx[i]], jobs[i]);
    // Row 2 is a GPU job under the 30 s filter; row 1 is CPU-only.
    for (const std::uint32_t r : idx) {
        EXPECT_NE(r, 1u);
        EXPECT_NE(r, 2u);
    }
}

TEST(Dataset, CpuJobIndicesMatchCpuJobs)
{
    const Dataset ds = smallDataset();
    const auto idx = ds.cpuJobIndices();
    const auto jobs = ds.cpuJobs();
    ASSERT_EQ(idx.size(), jobs.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        EXPECT_EQ(&ds.records()[idx[i]], jobs[i]);
    ASSERT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx[0], 1u);
}

TEST(ColumnTable, EmptyDataset)
{
    const Dataset ds;
    EXPECT_TRUE(ds.columns().empty());
    EXPECT_EQ(ds.columns().rows(), 0u);
    EXPECT_TRUE(ds.gpuJobIndices().empty());
    EXPECT_TRUE(ds.cpuJobIndices().empty());
    EXPECT_EQ(ds.uniqueUsers(), 0u);
}

} // namespace
} // namespace aiwc::core
