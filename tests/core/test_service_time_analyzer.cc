#include <gtest/gtest.h>

#include "record_builder.hh"

#include "aiwc/core/service_time_analyzer.hh"

namespace aiwc::core
{
namespace
{

using testing::cpuRecord;
using testing::gpuRecord;

TEST(ServiceTimeAnalyzer, SeparatesGpuAndCpuPopulations)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 1800.0));  // 30 min
    ds.add(gpuRecord(2, 0, 3600.0));  // 60 min
    ds.add(cpuRecord(3, 1, 480.0));   // 8 min
    const auto report = ServiceTimeAnalyzer().analyze(ds);
    EXPECT_EQ(report.gpu_runtime_min.size(), 2u);
    EXPECT_EQ(report.cpu_runtime_min.size(), 1u);
    EXPECT_DOUBLE_EQ(report.gpu_runtime_min.quantile(0.5), 45.0);
    EXPECT_DOUBLE_EQ(report.cpu_runtime_min.quantile(0.5), 8.0);
}

TEST(ServiceTimeAnalyzer, WaitPercentagesOfServiceTime)
{
    Dataset ds;
    JobRecord r = gpuRecord(1, 0, 90.0);
    r.submit_time = 0.0;
    r.start_time = 10.0;   // wait 10, run 90 -> service 100
    r.end_time = 100.0;
    ds.add(r);
    const auto report = ServiceTimeAnalyzer().analyze(ds);
    EXPECT_DOUBLE_EQ(report.gpu_wait_pct.quantile(0.5), 10.0);
}

TEST(ServiceTimeAnalyzer, WaitThresholdHelpers)
{
    Dataset ds;
    for (int i = 0; i < 7; ++i) {
        JobRecord r = gpuRecord(static_cast<JobId>(i), 0, 600.0);
        r.start_time = 5.0;  // under a minute
        r.end_time = 605.0;
        ds.add(r);
    }
    for (int i = 7; i < 10; ++i) {
        JobRecord r = gpuRecord(static_cast<JobId>(i), 0, 600.0);
        r.start_time = 300.0;  // five minutes
        r.end_time = 900.0;
        ds.add(r);
    }
    ds.add(cpuRecord(20, 1, 600.0, /*wait=*/200.0));
    ds.add(cpuRecord(21, 1, 600.0, /*wait=*/30.0));

    const auto report = ServiceTimeAnalyzer().analyze(ds);
    EXPECT_NEAR(report.gpuWaitUnder(60.0), 0.7, 1e-12);
    EXPECT_NEAR(report.cpuWaitOver(60.0), 0.5, 1e-12);
}

TEST(ServiceTimeAnalyzer, FilterExcludesShortGpuJobs)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 10.0));  // filtered
    ds.add(gpuRecord(2, 0, 60.0));
    const auto report = ServiceTimeAnalyzer().analyze(ds);
    EXPECT_EQ(report.gpu_runtime_min.size(), 1u);
}

TEST(ServiceTimeAnalyzer, EmptyDataset)
{
    const auto report = ServiceTimeAnalyzer().analyze(Dataset{});
    EXPECT_TRUE(report.gpu_runtime_min.empty());
    EXPECT_TRUE(report.cpu_wait_s.empty());
}

} // namespace
} // namespace aiwc::core
