#include <gtest/gtest.h>

#include <cmath>

#include "record_builder.hh"

#include "aiwc/core/phase_analyzer.hh"

namespace aiwc::core
{
namespace
{

using testing::gpuRecord;

JobRecord
detailedRecord(JobId id, double active_fraction,
               std::vector<double> active, std::vector<double> idle)
{
    JobRecord r = gpuRecord(id, 0, 600.0);
    r.has_timeseries = true;
    r.phases.active_fraction = active_fraction;
    r.phases.active_intervals = std::move(active);
    r.phases.idle_intervals = std::move(idle);
    r.phases.active_sm_cov = 14.0;
    r.phases.active_membw_cov = 15.0;
    r.phases.active_memsize_cov = 8.0;
    return r;
}

TEST(PhaseAnalyzer, OnlyDetailedJobsContribute)
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 600.0));  // no time series
    ds.add(detailedRecord(2, 0.8, {10, 20, 30}, {5, 5, 5}));
    const auto report = PhaseAnalyzer().analyze(ds);
    EXPECT_EQ(report.jobs, 1u);
    EXPECT_EQ(report.active_fraction_pct.size(), 1u);
}

TEST(PhaseAnalyzer, ActiveFractionAsPercent)
{
    Dataset ds;
    ds.add(detailedRecord(1, 0.84, {10, 20, 30}, {5, 5, 5}));
    const auto report = PhaseAnalyzer().analyze(ds);
    EXPECT_NEAR(report.active_fraction_pct.quantile(0.5), 84.0, 1e-9);
}

TEST(PhaseAnalyzer, IntervalCovComputedFromLengths)
{
    Dataset ds;
    // Active intervals {10, 20, 30}: mean 20, stddev sqrt(200/3).
    ds.add(detailedRecord(1, 0.5, {10, 20, 30}, {5, 5, 5}));
    const auto report = PhaseAnalyzer().analyze(ds);
    const double expected_cov =
        100.0 * std::sqrt(200.0 / 3.0) / 20.0;
    EXPECT_NEAR(report.active_interval_cov_pct.quantile(0.5),
                expected_cov, 1e-9);
    // Constant idle intervals -> zero CoV.
    EXPECT_NEAR(report.idle_interval_cov_pct.quantile(0.5), 0.0, 1e-9);
}

TEST(PhaseAnalyzer, MinIntervalThresholdSkipsSparseJobs)
{
    Dataset ds;
    ds.add(detailedRecord(1, 0.5, {10.0, 20.0}, {5.0}));  // too few
    const PhaseAnalyzer analyzer(/*min_intervals=*/3);
    const auto report = analyzer.analyze(ds);
    EXPECT_EQ(report.jobs, 1u);  // still counts for active fraction
    EXPECT_TRUE(report.active_interval_cov_pct.empty());
    EXPECT_TRUE(report.idle_interval_cov_pct.empty());
}

TEST(PhaseAnalyzer, UtilizationCovsPassThrough)
{
    Dataset ds;
    ds.add(detailedRecord(1, 0.5, {10, 20, 30}, {5, 6, 7}));
    const auto report = PhaseAnalyzer().analyze(ds);
    EXPECT_NEAR(report.active_sm_cov_pct.quantile(0.5), 14.0, 1e-9);
    EXPECT_NEAR(report.active_membw_cov_pct.quantile(0.5), 15.0, 1e-9);
    EXPECT_NEAR(report.active_memsize_cov_pct.quantile(0.5), 8.0, 1e-9);
}

TEST(PhaseAnalyzer, EmptyDataset)
{
    const auto report = PhaseAnalyzer().analyze(Dataset{});
    EXPECT_EQ(report.jobs, 0u);
    EXPECT_TRUE(report.active_fraction_pct.empty());
}

} // namespace
} // namespace aiwc::core
