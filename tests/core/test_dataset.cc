#include <gtest/gtest.h>

#include <sstream>

#include "record_builder.hh"

namespace aiwc::core
{
namespace
{

using testing::cpuRecord;
using testing::gpuRecord;

Dataset
mixedDataset()
{
    Dataset ds;
    ds.add(gpuRecord(1, 0, 3600.0));
    ds.add(gpuRecord(2, 0, 10.0));   // below the 30 s filter
    ds.add(gpuRecord(3, 1, 600.0, 2));
    ds.add(cpuRecord(4, 1, 480.0));
    ds.add(cpuRecord(5, 2, 5.0));
    return ds;
}

TEST(Dataset, ThirtySecondFilterApplies)
{
    const Dataset ds = mixedDataset();
    EXPECT_EQ(ds.size(), 5u);
    EXPECT_EQ(ds.gpuJobs().size(), 2u);       // job 2 filtered
    EXPECT_EQ(ds.gpuJobs(0.0).size(), 3u);    // no filter
    EXPECT_EQ(ds.cpuJobs().size(), 2u);       // CPU jobs unfiltered
}

TEST(Dataset, PredicateFilter)
{
    const Dataset ds = mixedDataset();
    const auto multi = ds.gpuJobsWhere(
        [](const JobRecord &r) { return r.gpus >= 2; });
    ASSERT_EQ(multi.size(), 1u);
    EXPECT_EQ(multi[0]->id, 3u);
}

TEST(Dataset, GroupByUser)
{
    const Dataset ds = mixedDataset();
    const auto by_user = ds.gpuJobsByUser();
    ASSERT_EQ(by_user.size(), 2u);
    EXPECT_EQ(by_user.at(0).size(), 1u);
    EXPECT_EQ(by_user.at(1).size(), 1u);
}

TEST(Dataset, UniqueUsersCountsAllRecords)
{
    EXPECT_EQ(mixedDataset().uniqueUsers(), 3u);
}

TEST(Dataset, TotalGpuHours)
{
    const Dataset ds = mixedDataset();
    // job 1: 1 GPU x 1 h; job 3: 2 GPUs x (600/3600) h.
    EXPECT_NEAR(ds.totalGpuHours(), 1.0 + 2.0 * 600.0 / 3600.0, 1e-9);
}

TEST(Dataset, CsvExportContainsEveryRecord)
{
    const Dataset ds = mixedDataset();
    std::ostringstream os;
    ds.writeCsv(os);
    const std::string out = os.str();
    // Header + 5 rows.
    std::size_t lines = 0;
    for (char ch : out)
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, 6u);
    EXPECT_NE(out.find("job_id,user"), std::string::npos);
}

TEST(Dataset, ConstructFromVector)
{
    std::vector<JobRecord> records;
    records.push_back(gpuRecord(1, 0, 100.0));
    const Dataset ds(std::move(records));
    EXPECT_EQ(ds.size(), 1u);
    EXPECT_FALSE(ds.empty());
}

TEST(Dataset, ShardsPartitionTheRecordsInOrder)
{
    const Dataset ds = mixedDataset();
    const auto shards = ds.shards();
    ASSERT_FALSE(shards.empty());
    std::size_t i = 0;
    for (const auto &shard : shards) {
        for (const JobRecord &r : shard) {
            ASSERT_LT(i, ds.size());
            EXPECT_EQ(&r, &ds.records()[i]);
            ++i;
        }
    }
    EXPECT_EQ(i, ds.size());
}

TEST(Dataset, EmptyDatasetHasNoShards)
{
    const Dataset ds;
    EXPECT_TRUE(ds.shards().empty());
}

} // namespace
} // namespace aiwc::core
