/**
 * @file
 * IdTable unit tests: first-appearance interning, round trips through
 * the on-disk representation, and dense-id stability under shard
 * merges — the property the columnar Dataset and the trace format
 * both lean on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "aiwc/common/types.hh"
#include "aiwc/core/id_table.hh"

namespace aiwc::core
{
namespace
{

TEST(IdTable, InternAssignsDenseIdsInFirstAppearanceOrder)
{
    IdTable table;
    EXPECT_TRUE(table.empty());
    EXPECT_EQ(table.intern(900), 0u);
    EXPECT_EQ(table.intern(7), 1u);
    EXPECT_EQ(table.intern(12345), 2u);
    EXPECT_EQ(table.size(), 3u);
    EXPECT_EQ(table.rawOf(0), 900u);
    EXPECT_EQ(table.rawOf(1), 7u);
    EXPECT_EQ(table.rawOf(2), 12345u);
}

TEST(IdTable, DuplicateInterningIsIdempotent)
{
    IdTable table;
    const std::uint32_t first = table.intern(42);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(table.intern(42), first);
    EXPECT_EQ(table.size(), 1u);
}

TEST(IdTable, DenseOfUnknownIsInvalid)
{
    IdTable table;
    table.intern(1);
    EXPECT_EQ(table.denseOf(1), 0u);
    EXPECT_EQ(table.denseOf(2), invalid_id);
    EXPECT_EQ(IdTable().denseOf(0), invalid_id);
}

TEST(IdTable, RawIdsRoundTripThroughFromRawIds)
{
    IdTable table;
    table.intern(5);
    table.intern(3);
    table.intern(99);
    const IdTable rebuilt = IdTable::fromRawIds(table.rawIds());
    ASSERT_EQ(rebuilt.size(), table.size());
    for (std::uint32_t d = 0; d < rebuilt.size(); ++d)
        EXPECT_EQ(rebuilt.rawOf(d), table.rawOf(d));
    EXPECT_EQ(rebuilt.denseOf(3), 1u);
}

TEST(IdTable, MergePreservesExistingDenseIds)
{
    // The stability contract: ids already assigned in the receiving
    // table never move, no matter what the donor contains.
    IdTable a;
    a.intern(10);
    a.intern(20);

    IdTable b;
    b.intern(20);  // overlaps a
    b.intern(30);  // new
    b.intern(10);  // overlaps a

    const std::vector<std::uint32_t> remap = a.mergeFrom(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.rawOf(0), 10u);  // unchanged
    EXPECT_EQ(a.rawOf(1), 20u);  // unchanged
    EXPECT_EQ(a.rawOf(2), 30u);  // appended in donor order

    // remap maps donor dense ids into the merged table.
    ASSERT_EQ(remap.size(), 3u);
    EXPECT_EQ(remap[0], 1u);  // b's 20 -> a's 1
    EXPECT_EQ(remap[1], 2u);  // b's 30 -> appended slot
    EXPECT_EQ(remap[2], 0u);  // b's 10 -> a's 0
}

TEST(IdTable, MergeFromEmptyAndIntoEmpty)
{
    IdTable a;
    a.intern(1);
    const IdTable empty;
    EXPECT_TRUE(a.mergeFrom(empty).empty());
    EXPECT_EQ(a.size(), 1u);

    IdTable c;
    const auto remap = c.mergeFrom(a);
    ASSERT_EQ(remap.size(), 1u);
    EXPECT_EQ(remap[0], 0u);
    EXPECT_EQ(c.rawOf(0), 1u);
}

TEST(IdTable, MergeIsStableAcrossShardOrder)
{
    // Interning shard tables in shard-index order must reproduce the
    // table a serial pass over the concatenated rows would build.
    const std::vector<std::uint32_t> rows = {8, 3, 8, 5, 3, 9, 1};
    IdTable serial;
    for (const std::uint32_t r : rows)
        serial.intern(r);

    IdTable shard_a, shard_b;
    for (std::size_t i = 0; i < 4; ++i)
        shard_a.intern(rows[i]);
    for (std::size_t i = 4; i < rows.size(); ++i)
        shard_b.intern(rows[i]);

    IdTable merged;
    merged.mergeFrom(shard_a);
    merged.mergeFrom(shard_b);
    ASSERT_EQ(merged.size(), serial.size());
    for (std::uint32_t d = 0; d < merged.size(); ++d)
        EXPECT_EQ(merged.rawOf(d), serial.rawOf(d));
}

} // namespace
} // namespace aiwc::core
