#include <gtest/gtest.h>

#include "record_builder.hh"

namespace aiwc::core
{
namespace
{

using testing::gpuRecord;
using testing::idleSummary;
using testing::summaryWith;

TEST(JobRecord, TimingDerivations)
{
    const JobRecord r = gpuRecord(1, 0, 3600.0, 2);
    EXPECT_DOUBLE_EQ(r.runTime(), 3600.0);
    EXPECT_DOUBLE_EQ(r.waitTime(), 10.0);
    EXPECT_DOUBLE_EQ(r.serviceTime(), 3610.0);
    EXPECT_DOUBLE_EQ(r.gpuHours(), 2.0);
    EXPECT_TRUE(r.isGpuJob());
}

TEST(JobRecord, MeanUtilizationAveragesAcrossGpus)
{
    JobRecord r = gpuRecord(1, 0, 60.0, 1, 0.4, 0.6);
    r.per_gpu.push_back(summaryWith(0.2, 0.3));
    r.gpus = 2;
    EXPECT_NEAR(r.meanUtilization(Resource::Sm), 0.3, 1e-12);
}

TEST(JobRecord, MaxUtilizationTakesMaxAcrossGpus)
{
    JobRecord r = gpuRecord(1, 0, 60.0, 1, 0.4, 0.6);
    r.per_gpu.push_back(summaryWith(0.2, 0.9));
    r.gpus = 2;
    EXPECT_NEAR(r.maxUtilization(Resource::Sm), 0.9, 1e-12);
}

TEST(JobRecord, CpuJobHasZeroUtilization)
{
    const JobRecord r = testing::cpuRecord(1, 0, 60.0);
    EXPECT_DOUBLE_EQ(r.meanUtilization(Resource::Sm), 0.0);
    EXPECT_DOUBLE_EQ(r.maxUtilization(Resource::Sm), 0.0);
    EXPECT_FALSE(r.isGpuJob());
}

TEST(JobRecord, IdleGpuCount)
{
    JobRecord r = gpuRecord(1, 0, 60.0, 1, 0.4, 0.6);
    r.per_gpu.push_back(idleSummary());
    r.per_gpu.push_back(idleSummary());
    r.gpus = 3;
    EXPECT_EQ(r.idleGpuCount(), 2);
}

TEST(GpuUsageSummary, ByResourceRoundTrips)
{
    GpuUsageSummary s = summaryWith(0.5, 0.8);
    EXPECT_DOUBLE_EQ(s.byResource(Resource::Sm).mean(), s.sm.mean());
    EXPECT_DOUBLE_EQ(s.byResource(Resource::Power).max(),
                     s.power_watts.max());
    // Mutable access hits the same member.
    s.byResource(Resource::MemoryBw).add(1.0);
    EXPECT_DOUBLE_EQ(s.membw.max(), 1.0);
}

TEST(GpuUsageSummary, IdleDetectionThreshold)
{
    EXPECT_TRUE(idleSummary().idle());
    EXPECT_FALSE(summaryWith(0.3, 0.5).idle());
}

TEST(JobRecord, PowerAccessors)
{
    const JobRecord r = gpuRecord(1, 0, 60.0);
    EXPECT_NEAR(r.meanPowerWatts(), 45.0, 1e-9);
    EXPECT_NEAR(r.maxPowerWatts(), 90.0, 1e-9);
}

} // namespace
} // namespace aiwc::core
