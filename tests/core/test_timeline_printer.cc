#include <gtest/gtest.h>

#include <sstream>

#include "record_builder.hh"

#include "aiwc/core/report_writer.hh"

namespace aiwc::core
{
namespace
{

TEST(TimelinePrinter, RendersSparklineAndHeadline)
{
    Dataset ds;
    JobId id = 0;
    for (int day = 0; day < 5; ++day) {
        for (int k = 0; k <= day; ++k) {  // rising daily load
            JobRecord r = testing::gpuRecord(id++, 0, 3600.0);
            r.submit_time = day * one_day + k * 600.0;
            r.start_time = r.submit_time + 5.0;
            r.end_time = r.start_time + 3600.0;
            ds.add(r);
        }
    }
    const auto report = TimelineAnalyzer().analyze(ds);
    std::ostringstream os;
    ReportWriter(os).print(report);
    const std::string out = os.str();
    EXPECT_NE(out.find("fleet load timeline"), std::string::npos);
    EXPECT_NE(out.find("submissions/bin"), std::string::npos);
    EXPECT_NE(out.find("peak-to-mean"), std::string::npos);
    // The sparkline must end on the densest shade (day 5 is peak).
    const auto lb = out.find('[');
    const auto rb = out.find(']');
    ASSERT_NE(lb, std::string::npos);
    ASSERT_NE(rb, std::string::npos);
    EXPECT_EQ(out[rb - 1], '@');
}

TEST(TimelinePrinter, EmptyTimelineDoesNotCrash)
{
    std::ostringstream os;
    ReportWriter(os).print(TimelineAnalyzer().analyze(Dataset{}));
    EXPECT_FALSE(os.str().empty());
}

} // namespace
} // namespace aiwc::core
