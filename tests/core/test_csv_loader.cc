#include <gtest/gtest.h>

#include <sstream>

#include "record_builder.hh"

#include "aiwc/common/csv.hh"
#include "aiwc/core/csv_loader.hh"

namespace aiwc::core
{
namespace
{

using testing::cpuRecord;
using testing::gpuRecord;

Dataset
originalDataset()
{
    Dataset ds;
    JobRecord a = gpuRecord(1, 0, 3600.0, 2, 0.4, 0.8,
                            TerminalState::Cancelled);
    a.interface = Interface::Batch;
    ds.add(a);
    ds.add(gpuRecord(2, 1, 600.0, 1, 0.1, 0.2));
    ds.add(cpuRecord(3, 2, 480.0));
    return ds;
}

Dataset
roundTrip(const Dataset &ds)
{
    std::stringstream buffer;
    ds.writeCsv(buffer);
    return loadDatasetCsv(buffer);
}

TEST(CsvLoader, RoundTripPreservesSchedulerFields)
{
    const Dataset original = originalDataset();
    const Dataset loaded = roundTrip(original);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        const auto &o = original.records()[i];
        const auto &l = loaded.records()[i];
        EXPECT_EQ(l.id, o.id);
        EXPECT_EQ(l.user, o.user);
        EXPECT_EQ(l.interface, o.interface);
        EXPECT_EQ(l.terminal, o.terminal);
        EXPECT_NEAR(l.submit_time, o.submit_time, 0.1);
        EXPECT_NEAR(l.end_time, o.end_time, 0.1);
        EXPECT_EQ(l.gpus, o.gpus);
        EXPECT_EQ(l.cpu_slots, o.cpu_slots);
    }
}

TEST(CsvLoader, RoundTripPreservesUtilizationStatistics)
{
    const Dataset original = originalDataset();
    const Dataset loaded = roundTrip(original);
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        const auto &o = original.records()[i];
        const auto &l = loaded.records()[i];
        for (Resource r : {Resource::Sm, Resource::MemoryBw,
                           Resource::MemorySize}) {
            EXPECT_NEAR(l.meanUtilization(r), o.meanUtilization(r),
                        1e-3);
            EXPECT_NEAR(l.maxUtilization(r), o.maxUtilization(r), 1e-3);
        }
        EXPECT_NEAR(l.meanPowerWatts(), o.meanPowerWatts(), 0.1);
        EXPECT_NEAR(l.maxPowerWatts(), o.maxPowerWatts(), 0.1);
    }
}

TEST(CsvLoader, CpuJobsLoadWithoutGpuSummaries)
{
    const Dataset loaded = roundTrip(originalDataset());
    const auto cpu = loaded.cpuJobs();
    ASSERT_EQ(cpu.size(), 1u);
    EXPECT_TRUE(cpu[0]->per_gpu.empty());
}

TEST(CsvLoader, SkipsMalformedRows)
{
    Dataset ds = originalDataset();
    std::stringstream buffer;
    ds.writeCsv(buffer);
    buffer.clear();
    buffer.seekp(0, std::ios::end);
    buffer << "not,a,valid,row\n";
    const Dataset loaded = loadDatasetCsv(buffer);
    EXPECT_EQ(loaded.size(), ds.size());  // the junk row is dropped
}

TEST(CsvLoader, SkipsRowsWithUnterminatedQuote)
{
    Dataset ds = originalDataset();
    std::stringstream buffer;
    ds.writeCsv(buffer);
    buffer.clear();
    buffer.seekp(0, std::ios::end);
    // The unterminated quote swallows every later comma, so the row
    // parses to the wrong cell count and must be dropped, not crash.
    buffer << "9,9,\"jupyter,finished,0,0,60,1,2,4,"
              "0,0,0,0,0,0,0,0,0,0\n";
    const Dataset loaded = loadDatasetCsv(buffer);
    EXPECT_EQ(loaded.size(), ds.size());
}

/** Serialize, then rewrite every line ending as CRLF. */
std::string
toCrlf(const Dataset &ds)
{
    std::stringstream buffer;
    ds.writeCsv(buffer);
    std::string crlf;
    for (char ch : buffer.str()) {
        if (ch == '\n')
            crlf += '\r';
        crlf += ch;
    }
    return crlf;
}

TEST(CsvLoader, CrlfLineEndingsRoundTrip)
{
    const Dataset original = originalDataset();
    std::istringstream is(toCrlf(original));
    const Dataset loaded = loadDatasetCsv(is);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        const auto &o = original.records()[i];
        const auto &l = loaded.records()[i];
        EXPECT_EQ(l.id, o.id);
        EXPECT_EQ(l.terminal, o.terminal);
        EXPECT_EQ(l.gpus, o.gpus);
        EXPECT_NEAR(l.meanPowerWatts(), o.meanPowerWatts(), 0.1);
    }
}

TEST(CsvLoader, BlankCrlfLinesAreSkipped)
{
    const Dataset original = originalDataset();
    std::string text = toCrlf(original);
    text += "\r\n\r\n";  // trailing blank CRLF lines
    std::istringstream is(text);
    const Dataset loaded = loadDatasetCsv(is);
    EXPECT_EQ(loaded.size(), original.size());
}

TEST(CsvLoader, Utf8BomBeforeHeaderIsTolerated)
{
    const Dataset original = originalDataset();
    std::stringstream buffer;
    original.writeCsv(buffer);
    std::istringstream is("\xef\xbb\xbf" + buffer.str());
    const Dataset loaded = loadDatasetCsv(is);
    EXPECT_EQ(loaded.size(), original.size());
}

TEST(CsvLoader, EnumParsersRoundTrip)
{
    for (int i = 0; i < num_interfaces; ++i) {
        const auto iface = static_cast<Interface>(i);
        EXPECT_EQ(interfaceFromString(toString(iface)), iface);
    }
    for (int i = 0; i <= static_cast<int>(TerminalState::NodeFailure);
         ++i) {
        const auto state = static_cast<TerminalState>(i);
        EXPECT_EQ(terminalFromString(toString(state)), state);
    }
}

TEST(CsvLoader, ParseCsvLineHandlesQuoting)
{
    const auto cells = parseCsvLine("a,\"b,c\",\"say \"\"hi\"\"\",d");
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0], "a");
    EXPECT_EQ(cells[1], "b,c");
    EXPECT_EQ(cells[2], "say \"hi\"");
    EXPECT_EQ(cells[3], "d");
}

TEST(CsvLoader, ParseCsvLineEmptyCells)
{
    const auto cells = parseCsvLine(",,x,");
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0], "");
    EXPECT_EQ(cells[2], "x");
    EXPECT_EQ(cells[3], "");
}

TEST(CsvLoader, AnalyzersAgreeAfterRoundTrip)
{
    // The headline guarantee: fleet-level analyses are identical on
    // the loaded dataset.
    const Dataset original = originalDataset();
    const Dataset loaded = roundTrip(original);
    EXPECT_NEAR(loaded.totalGpuHours(), original.totalGpuHours(), 1e-3);
    EXPECT_EQ(loaded.gpuJobs().size(), original.gpuJobs().size());
    EXPECT_EQ(loaded.uniqueUsers(), original.uniqueUsers());
}

} // namespace
} // namespace aiwc::core
