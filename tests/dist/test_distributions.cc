#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "aiwc/common/rng.hh"
#include "aiwc/dist/distributions.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::dist
{
namespace
{

std::vector<double>
sampleMany(const Distribution &d, int n, std::uint64_t seed = 1)
{
    Rng rng(seed);
    std::vector<double> xs;
    xs.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        xs.push_back(d.sample(rng));
    return xs;
}

TEST(NormalQuantile, KnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-4);
    EXPECT_NEAR(normalQuantile(0.025), -1.959964, 1e-4);
    EXPECT_NEAR(normalQuantile(0.75), 0.674490, 1e-4);
    EXPECT_NEAR(normalQuantile(0.0001), -3.719016, 1e-3);
}

TEST(NormalQuantile, IsOddAroundHalf)
{
    for (double q : {0.6, 0.7, 0.9, 0.99})
        EXPECT_NEAR(normalQuantile(q), -normalQuantile(1.0 - q), 1e-8);
}

TEST(PointMass, AlwaysSame)
{
    const PointMass d(3.5);
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(d.sample(rng), 3.5);
    EXPECT_DOUBLE_EQ(d.mean(), 3.5);
}

TEST(UniformDist, BoundsAndMean)
{
    const Uniform d(2.0, 6.0);
    const auto xs = sampleMany(d, 50000);
    for (double x : xs) {
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 6.0);
    }
    EXPECT_NEAR(stats::mean(xs), 4.0, 0.05);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
}

TEST(ExponentialDist, MeanMatches)
{
    const Exponential d(0.5);
    const auto xs = sampleMany(d, 100000);
    EXPECT_NEAR(stats::mean(xs), 2.0, 0.05);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(LogNormalDist, MedianAndSigma)
{
    const LogNormal d(10.0, 0.5);
    auto xs = sampleMany(d, 100000);
    EXPECT_NEAR(stats::percentile(xs, 0.5), 10.0, 0.3);
    EXPECT_NEAR(d.median(), 10.0, 1e-12);
    EXPECT_NEAR(d.mean(), 10.0 * std::exp(0.125), 1e-9);
}

TEST(LogNormalDist, QuantileFunctionExact)
{
    const LogNormal d(30.0, 2.0);
    EXPECT_NEAR(d.quantile(0.5), 30.0, 1e-9);
    EXPECT_NEAR(d.quantile(0.75), 30.0 * std::exp(2.0 * 0.674490), 0.1);
}

TEST(LogNormalDist, FromQuantilesRoundTrips)
{
    // The paper's GPU runtimes: p50 = 30 min, p75 = 300 min.
    const LogNormal d = LogNormal::fromQuantiles(0.5, 30.0, 0.75, 300.0);
    EXPECT_NEAR(d.quantile(0.5), 30.0, 1e-6);
    EXPECT_NEAR(d.quantile(0.75), 300.0, 1e-6);
    // sigma = ln(10)/z(0.75)
    EXPECT_NEAR(d.sigma(), std::log(10.0) / 0.6744898, 1e-4);
}

TEST(ParetoDist, TailAndMean)
{
    const Pareto d(1.0, 3.0);
    const auto xs = sampleMany(d, 100000);
    for (double x : xs)
        EXPECT_GE(x, 1.0);
    EXPECT_NEAR(stats::mean(xs), 1.5, 0.05);
    EXPECT_DOUBLE_EQ(d.mean(), 1.5);
}

TEST(ParetoDist, InfiniteMeanForSmallAlpha)
{
    const Pareto d(1.0, 0.9);
    EXPECT_TRUE(std::isinf(d.mean()));
}

TEST(WeibullDist, ShapeOneIsExponential)
{
    const Weibull d(1.0, 2.0);
    const auto xs = sampleMany(d, 100000);
    EXPECT_NEAR(stats::mean(xs), 2.0, 0.05);
    EXPECT_NEAR(d.mean(), 2.0, 1e-9);
}

TEST(BetaDist, MeanAndSupport)
{
    const Beta d(2.0, 5.0);
    const auto xs = sampleMany(d, 50000);
    for (double x : xs) {
        EXPECT_GE(x, 0.0);
        EXPECT_LE(x, 1.0);
    }
    EXPECT_NEAR(stats::mean(xs), 2.0 / 7.0, 0.01);
}

TEST(BetaDist, FromMeanSolvesParameters)
{
    const Beta d = Beta::fromMean(0.3, 10.0);
    EXPECT_NEAR(d.mean(), 0.3, 1e-12);
    const auto xs = sampleMany(d, 50000);
    EXPECT_NEAR(stats::mean(xs), 0.3, 0.01);
}

TEST(GammaSampler, MeanEqualsShape)
{
    Rng rng(3);
    for (double shape : {0.3, 1.0, 2.5, 9.0}) {
        double acc = 0.0;
        constexpr int n = 50000;
        for (int i = 0; i < n; ++i) {
            const double g = sampleGamma(rng, shape);
            ASSERT_GT(g, 0.0);
            acc += g;
        }
        EXPECT_NEAR(acc / n, shape, 0.05 * std::max(shape, 1.0));
    }
}

TEST(MixtureDist, WeightsControlComponentFrequency)
{
    const Mixture d({{0.75, make<PointMass>(0.0)},
                     {0.25, make<PointMass>(1.0)}});
    const auto xs = sampleMany(d, 100000);
    EXPECT_NEAR(stats::mean(xs), 0.25, 0.01);
    EXPECT_NEAR(d.mean(), 0.25, 1e-12);
}

TEST(MixtureDist, ZeroWeightComponentNeverDrawn)
{
    const Mixture d({{1.0, make<PointMass>(5.0)},
                     {0.0, make<PointMass>(99.0)}});
    const auto xs = sampleMany(d, 1000);
    for (double x : xs)
        EXPECT_DOUBLE_EQ(x, 5.0);
}

TEST(TruncatedDist, SamplesStayInRange)
{
    const Truncated d(make<LogNormal>(10.0, 2.0), 1.0, 100.0);
    const auto xs = sampleMany(d, 20000);
    for (double x : xs) {
        EXPECT_GE(x, 1.0);
        EXPECT_LE(x, 100.0);
    }
}

TEST(TruncatedDist, DegenerateRangeClampsEventually)
{
    // Inner distribution essentially never lands in [1e9, 2e9]; the
    // fallback clamp must still terminate and respect the bounds.
    const Truncated d(make<PointMass>(5.0), 1e9, 2e9);
    Rng rng(1);
    const double x = d.sample(rng);
    EXPECT_GE(x, 1e9);
    EXPECT_LE(x, 2e9);
}

// Property sweep over log-normal sigmas: the sample CoV should track
// sqrt(exp(sigma^2) - 1) — the basis of the Fig. 6b calibration.
class LogNormalCov : public ::testing::TestWithParam<double>
{
};

TEST_P(LogNormalCov, CovMatchesClosedForm)
{
    const double sigma = GetParam();
    const LogNormal d(5.0, sigma);
    const auto xs = sampleMany(d, 400000, 99);
    const double expected = std::sqrt(std::exp(sigma * sigma) - 1.0);
    EXPECT_NEAR(stats::covPercent(xs) / 100.0, expected,
                0.12 * expected);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, LogNormalCov,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

// Property sweep: LogNormal::fromQuantiles reproduces both anchors for
// a grid of quantile pairs.
struct QuantilePair
{
    double q1, v1, q2, v2;
};

class FromQuantiles : public ::testing::TestWithParam<QuantilePair>
{
};

TEST_P(FromQuantiles, AnchorsRoundTrip)
{
    const auto p = GetParam();
    const LogNormal d = LogNormal::fromQuantiles(p.q1, p.v1, p.q2, p.v2);
    EXPECT_NEAR(d.quantile(p.q1), p.v1, 1e-6 * p.v1);
    EXPECT_NEAR(d.quantile(p.q2), p.v2, 1e-6 * p.v2);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, FromQuantiles,
    ::testing::Values(QuantilePair{0.25, 4.0, 0.5, 30.0},
                      QuantilePair{0.5, 30.0, 0.75, 300.0},
                      QuantilePair{0.1, 1.0, 0.9, 1000.0},
                      QuantilePair{0.5, 8.0, 0.9, 100.0}));

} // namespace
} // namespace aiwc::dist
