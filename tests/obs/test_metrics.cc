/**
 * @file
 * MetricsRegistry unit tests: counter/gauge/histogram semantics, the
 * get-or-create registry contract, and the deterministic-snapshot
 * guarantee (same values -> byte-identical JSON, regardless of how
 * many pool threads did the recording).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "aiwc/base/check.hh"
#include "aiwc/common/parallel.hh"
#include "aiwc/obs/metrics.hh"

namespace aiwc::obs
{
namespace
{

TEST(Counter, StartsAtZeroAddsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddAndReset)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0);
    g.set(7);
    EXPECT_EQ(g.value(), 7);
    g.add(-10);
    EXPECT_EQ(g.value(), -3);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, CountsSumsAndTracksExtrema)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);

    for (std::uint64_t v : {5ull, 100ull, 3ull, 1000ull})
        h.observe(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1108u);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 277.0);
}

TEST(Histogram, QuantileReturnsBucketUpperBound)
{
    Histogram h;
    // 100 samples of 100 ns: every sample lands in the bit-width-7
    // bucket [64, 128), whose reported upper bound is 127.
    for (int i = 0; i < 100; ++i)
        h.observe(100);
    EXPECT_EQ(h.quantile(0.5), 127u);
    EXPECT_EQ(h.quantile(0.99), 127u);

    // Add 900 samples of ~1 us; the median moves to their bucket.
    for (int i = 0; i < 900; ++i)
        h.observe(1000);
    EXPECT_EQ(h.quantile(0.5), 1023u);
    // ...but the 1st percentile stays with the small samples.
    EXPECT_EQ(h.quantile(0.01), 127u);
}

TEST(Histogram, ObserveZeroIsRepresentable)
{
    Histogram h;
    h.observe(0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h;
    h.observe(123);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.quantile(0.9), 0u);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstance)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("test.counter");
    Counter &b = registry.counter("test.counter");
    EXPECT_EQ(&a, &b);
    Gauge &g1 = registry.gauge("test.gauge");
    Gauge &g2 = registry.gauge("test.gauge");
    EXPECT_EQ(&g1, &g2);
    Histogram &h1 = registry.histogram("test.hist");
    Histogram &h2 = registry.histogram("test.hist");
    EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, KindMismatchFailsTheContract)
{
    MetricsRegistry registry;
    registry.counter("test.metric");
    ScopedCheckFailHandler guard;
    EXPECT_THROW(registry.gauge("test.metric"), ContractViolation);
    EXPECT_THROW(registry.histogram("test.metric"), ContractViolation);
}

TEST(MetricsRegistry, SnapshotIsSortedByName)
{
    MetricsRegistry registry;
    registry.counter("zebra");
    registry.gauge("alpha");
    registry.histogram("middle");
    const auto samples = registry.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "alpha");
    EXPECT_EQ(samples[1].name, "middle");
    EXPECT_EQ(samples[2].name, "zebra");
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations)
{
    MetricsRegistry registry;
    registry.counter("c").add(5);
    registry.gauge("g").set(-2);
    registry.histogram("h").observe(9);
    registry.resetValues();
    const auto samples = registry.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(registry.counter("c").value(), 0u);
    EXPECT_EQ(registry.gauge("g").value(), 0);
    EXPECT_EQ(registry.histogram("h").count(), 0u);
}

/** writeJson for a registry populated with `threads` pool threads. */
std::string
jsonAfterParallelRecording(int threads)
{
    MetricsRegistry registry;
    Counter &items = registry.counter("recorded.items");
    Histogram &values = registry.histogram("recorded.values");
    registry.gauge("recorded.threads").set(4);  // fixed, not `threads`

    const int before = globalThreadCount();
    setGlobalThreadCount(threads);
    parallelFor(globalPool(), 10000, [&](std::size_t i) {
        items.add(1);
        values.observe(static_cast<std::uint64_t>(i % 97));
    });
    setGlobalThreadCount(before);

    std::ostringstream os;
    registry.writeJson(os);
    return os.str();
}

TEST(MetricsRegistry, JsonSnapshotIsThreadCountInvariant)
{
    // The export promise bench_compare.py relies on: identical recorded
    // values produce byte-identical JSON, whether one thread or eight
    // did the recording.
    const std::string serial = jsonAfterParallelRecording(1);
    const std::string threaded = jsonAfterParallelRecording(8);
    EXPECT_EQ(serial, threaded);
    // Spot-check content, not just equality.
    EXPECT_NE(serial.find("\"recorded.items\":10000"), std::string::npos)
        << serial;
    EXPECT_NE(serial.find("\"counters\""), std::string::npos);
    EXPECT_NE(serial.find("\"gauges\""), std::string::npos);
    EXPECT_NE(serial.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, GlobalIsASingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

} // namespace
} // namespace aiwc::obs
