/**
 * @file
 * Chrome-trace span tests: disabled tracing records nothing (and reads
 * no clock), spans nest correctly, worker threads land on their own
 * tracks, and writeTrace() emits well-formed Chrome trace_event JSON —
 * checked with a small recursive-descent JSON parser so a stray comma
 * or unescaped quote fails here, not in Perfetto.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "aiwc/common/parallel.hh"
#include "aiwc/obs/metrics.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::obs
{
namespace
{

// -------------------------------------------------------------------
// Minimal JSON well-formedness parser (validation only, no DOM).
// -------------------------------------------------------------------

class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool
    string()
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_;  // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    members(char open, char close, bool with_keys)
    {
        if (text_[pos_] != open)
            return false;
        ++pos_;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == close) {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (with_keys) {
                if (!string())
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return false;
                ++pos_;
            }
            if (!value())
                return false;
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == close) {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{':
            return members('{', '}', true);
        case '[':
            return members('[', ']', false);
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

TEST(JsonValidatorSelfTest, AcceptsAndRejects)
{
    const auto ok = [](const std::string &s) {
        return JsonValidator(s).valid();
    };
    EXPECT_TRUE(ok("{}"));
    EXPECT_TRUE(ok(R"({"a":[1,2.5,-3e4],"b":"x\"y","c":null})"));
    EXPECT_FALSE(ok("{"));
    EXPECT_FALSE(ok(R"({"a":1,})"));
    EXPECT_FALSE(ok(R"({"a" 1})"));
    EXPECT_FALSE(ok(R"(["unterminated)"));
    EXPECT_FALSE(ok("{} trailing"));
}

// -------------------------------------------------------------------
// Trace machinery. Tests share process-global state, so every test
// runs through this fixture, which restores "tracing off, buffer
// empty" on both sides.
// -------------------------------------------------------------------

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setTraceEnabled(false);
        clearTraceEvents();
    }

    void
    TearDown() override
    {
        setTraceEnabled(false);
        clearTraceEvents();
    }
};

TEST_F(TraceTest, DisabledTracingRecordsNothing)
{
    {
        TraceSpan span("never.recorded");
    }
    EXPECT_EQ(traceEventCount(), 0u);
}

TEST_F(TraceTest, SpansRecordWhenEnabled)
{
    setTraceEnabled(true);
    {
        TraceSpan span("outer");
        TraceSpan inner("inner");
    }
    EXPECT_EQ(traceEventCount(), 2u);
}

TEST_F(TraceTest, EndIsIdempotent)
{
    setTraceEnabled(true);
    TraceSpan span("once");
    span.end();
    span.end();  // no-op; destructor must not record a second event
    EXPECT_EQ(traceEventCount(), 1u);
}

TEST_F(TraceTest, NestedSpansAreOrderedParentFirst)
{
    setTraceEnabled(true);
    {
        TraceSpan outer("outer");
        TraceSpan inner("inner");
    }
    std::ostringstream os;
    writeTrace(os);
    const std::string json = os.str();
    // Sorted by start time: the enclosing span starts first, so it
    // must serialize before the nested one (Perfetto then renders the
    // parent/child stacking correctly).
    const auto outer_at = json.find("\"outer\"");
    const auto inner_at = json.find("\"inner\"");
    ASSERT_NE(outer_at, std::string::npos);
    ASSERT_NE(inner_at, std::string::npos);
    EXPECT_LT(outer_at, inner_at);
}

TEST_F(TraceTest, ScopedTimerFeedsHistogramAlwaysSpanOnlyWhenTracing)
{
    Histogram hist;
    {
        ScopedTimer timer(hist, "timer.span");
    }
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_EQ(traceEventCount(), 0u);  // tracing off: no span

    setTraceEnabled(true);
    {
        ScopedTimer timer(hist, "timer.span");
    }
    EXPECT_EQ(hist.count(), 2u);
    EXPECT_EQ(traceEventCount(), 1u);

    // No span name: histogram only, even with tracing on.
    {
        ScopedTimer timer(hist);
    }
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_EQ(traceEventCount(), 1u);
}

TEST_F(TraceTest, WriteTraceEmitsWellFormedChromeJson)
{
    setTraceEnabled(true);
    {
        TraceSpan a("span \"quoted\" name");  // exercises escaping
        TraceSpan b("span.plain");
    }
    std::ostringstream os;
    writeTrace(os);
    const std::string json = os.str();

    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson)
{
    std::ostringstream os;
    writeTrace(os);
    EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
}

std::set<std::string>
tidsIn(const std::string &json)
{
    std::set<std::string> tids;
    for (std::size_t at = json.find("\"tid\":"); at != std::string::npos;
         at = json.find("\"tid\":", at + 1)) {
        std::size_t end = at + 6;
        while (end < json.size() &&
               std::isdigit(static_cast<unsigned char>(json[end])))
            ++end;
        tids.insert(json.substr(at + 6, end - (at + 6)));
    }
    return tids;
}

TEST_F(TraceTest, ThreadsRecordOnDistinctTracks)
{
    setTraceEnabled(true);
    {
        TraceSpan main_span("on.main");
        // This test validates per-thread trace tracks, which needs a real
        // second thread that is not one of the pool's workers.
        // aiwc-lint: allow(thread-raw) -- exercises per-thread track capture
        std::thread other([] { TraceSpan span("on.other"); });
        other.join();
    }
    EXPECT_EQ(traceEventCount(), 2u);
    std::ostringstream os;
    writeTrace(os);
    const std::string json = os.str();
    ASSERT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_EQ(tidsIn(json).size(), 2u) << json;
}

TEST_F(TraceTest, PoolShardsRecordSpans)
{
    setTraceEnabled(true);
    const int before = globalThreadCount();
    setGlobalThreadCount(4);
    parallelFor(globalPool(), 10000, [](std::size_t i) {
        volatile std::uint64_t sink = i;
        (void)sink;
    });
    setGlobalThreadCount(before);

    // One parallel.shard span per shard, all on worker tracks.
    EXPECT_GT(traceEventCount(), 0u);
    std::ostringstream os;
    writeTrace(os);
    const std::string json = os.str();
    ASSERT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"parallel.shard\""), std::string::npos);
}

TEST_F(TraceTest, ClearDropsBufferedEvents)
{
    setTraceEnabled(true);
    {
        TraceSpan span("to.be.dropped");
    }
    ASSERT_GT(traceEventCount(), 0u);
    clearTraceEvents();
    EXPECT_EQ(traceEventCount(), 0u);
}

TEST_F(TraceTest, AnalyzerScopeRegistersTheStandardBundle)
{
    {
        AnalyzerScope scope("trace_test", 123);
    }
    auto &registry = MetricsRegistry::global();
    EXPECT_GE(registry.counter("aiwc.analyzer.trace_test.runs").value(), 1u);
    EXPECT_GE(registry.counter("aiwc.analyzer.trace_test.rows").value(),
              123u);
    EXPECT_GE(registry.histogram("aiwc.analyzer.trace_test.wall_ns").count(),
              1u);
    EXPECT_GE(registry.histogram("aiwc.analyzer.trace_test.cpu_ns").count(),
              1u);
}

} // namespace
} // namespace aiwc::obs
