#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "../core/record_builder.hh"

#include "aiwc/svc/frame.hh"

namespace aiwc::svc
{
namespace
{

using core::testing::cpuRecord;
using core::testing::gpuRecord;

/** Overwrite a little-endian u16 at @p offset (header fields). */
void
patchU16(std::vector<std::uint8_t> &frame, std::size_t offset,
         std::uint16_t value)
{
    frame[offset] = static_cast<std::uint8_t>(value);
    frame[offset + 1] = static_cast<std::uint8_t>(value >> 8);
}

void
patchU32(std::vector<std::uint8_t> &frame, std::size_t offset,
         std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        frame[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

/**
 * Overwrite a payload double (offset relative to the payload start)
 * and re-seal the CRC so the corruption reaches the structural
 * validator instead of being caught by the checksum.
 */
void
patchPayloadF64(std::vector<std::uint8_t> &frame,
                std::size_t payload_offset, double value)
{
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i)
        frame[frame_header_bytes + payload_offset + i] =
            static_cast<std::uint8_t>(bits >> (8 * i));
    const auto payload =
        std::span<const std::uint8_t>(frame).subspan(frame_header_bytes);
    patchU32(frame, 20, crc32(payload));
}

std::vector<core::JobRecord>
sampleBatch()
{
    std::vector<core::JobRecord> records;
    records.push_back(gpuRecord(1, 10, 600.0, 2));
    records.push_back(cpuRecord(2, 11, 480.0));
    core::JobRecord ts = gpuRecord(3, 12, 1200.0);
    ts.interface = Interface::Interactive;
    ts.terminal = TerminalState::Cancelled;
    ts.true_class = Lifecycle::Exploratory;
    ts.has_timeseries = true;
    ts.phases.active_fraction = 0.75;
    ts.phases.active_intervals = {30.0, 45.0, 12.5};
    ts.phases.idle_intervals = {5.0, 2.5};
    ts.phases.active_sm_cov = 42.0;
    ts.phases.active_membw_cov =
        std::numeric_limits<double>::quiet_NaN();  // zero-mean CoV
    ts.phases.active_memsize_cov = 17.0;
    records.push_back(ts);
    return records;
}

void
expectSummaryEq(const stats::RunningSummary &a,
                const stats::RunningSummary &b)
{
    EXPECT_EQ(a.count(), b.count());
    EXPECT_DOUBLE_EQ(a.min(), b.min());
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
    EXPECT_DOUBLE_EQ(a.max(), b.max());
    EXPECT_NEAR(a.stddev(), b.stddev(), 1e-9);
}

TEST(Frame, RoundTripPreservesEveryField)
{
    const auto records = sampleBatch();
    const auto frame = encodeJobBatch(77, records);
    const auto decoded = decodeFrame(frame);
    ASSERT_TRUE(decoded.ok()) << toString(decoded.status);
    EXPECT_EQ(decoded.tenant, 77u);
    EXPECT_EQ(decoded.consumed, frame.size());
    ASSERT_EQ(decoded.records.size(), records.size());

    for (std::size_t i = 0; i < records.size(); ++i) {
        const core::JobRecord &in = records[i];
        const core::JobRecord &out = decoded.records[i];
        EXPECT_EQ(out.id, in.id);
        EXPECT_EQ(out.user, in.user);
        EXPECT_EQ(out.interface, in.interface);
        EXPECT_EQ(out.terminal, in.terminal);
        EXPECT_EQ(out.true_class, in.true_class);
        EXPECT_DOUBLE_EQ(out.submit_time, in.submit_time);
        EXPECT_DOUBLE_EQ(out.start_time, in.start_time);
        EXPECT_DOUBLE_EQ(out.end_time, in.end_time);
        EXPECT_DOUBLE_EQ(out.walltime_limit, in.walltime_limit);
        EXPECT_EQ(out.gpus, in.gpus);
        EXPECT_EQ(out.cpu_slots, in.cpu_slots);
        EXPECT_DOUBLE_EQ(out.ram_gb, in.ram_gb);
        ASSERT_EQ(out.per_gpu.size(), in.per_gpu.size());
        for (std::size_t g = 0; g < in.per_gpu.size(); ++g) {
            expectSummaryEq(out.per_gpu[g].sm, in.per_gpu[g].sm);
            expectSummaryEq(out.per_gpu[g].membw, in.per_gpu[g].membw);
            expectSummaryEq(out.per_gpu[g].power_watts,
                            in.per_gpu[g].power_watts);
        }
        ASSERT_EQ(out.has_timeseries, in.has_timeseries);
        if (in.has_timeseries) {
            EXPECT_DOUBLE_EQ(out.phases.active_fraction,
                             in.phases.active_fraction);
            EXPECT_EQ(out.phases.active_intervals,
                      in.phases.active_intervals);
            EXPECT_EQ(out.phases.idle_intervals,
                      in.phases.idle_intervals);
            EXPECT_DOUBLE_EQ(out.phases.active_sm_cov,
                             in.phases.active_sm_cov);
            // NaN CoV (the zero-mean convention) must survive the trip.
            EXPECT_TRUE(std::isnan(out.phases.active_membw_cov));
        }
    }
}

TEST(Frame, RoundTripEmptyBatch)
{
    const auto frame = encodeJobBatch(5, {});
    const auto decoded = decodeFrame(frame);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.tenant, 5u);
    EXPECT_TRUE(decoded.records.empty());
}

TEST(Frame, BackToBackFramesDecodeSequentially)
{
    auto buffer = encodeJobBatch(1, sampleBatch());
    const auto second = encodeJobBatch(2, {});
    buffer.insert(buffer.end(), second.begin(), second.end());

    const auto first = decodeFrame(buffer);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.tenant, 1u);
    const auto rest = decodeFrame(
        std::span<const std::uint8_t>(buffer).subspan(first.consumed));
    ASSERT_TRUE(rest.ok());
    EXPECT_EQ(rest.tenant, 2u);
    EXPECT_EQ(first.consumed + rest.consumed, buffer.size());
}

TEST(Frame, TruncatedLengthPrefixNeedsMoreData)
{
    const auto frame = encodeJobBatch(9, sampleBatch());
    // Every prefix shorter than the full header — including a cut
    // through the length field itself — asks for more bytes and
    // consumes nothing.
    for (std::size_t len = 0; len < frame_header_bytes; ++len) {
        const auto r = decodeFrame(
            std::span<const std::uint8_t>(frame).first(len));
        EXPECT_EQ(r.status, DecodeStatus::NeedMoreData) << len;
        EXPECT_EQ(r.consumed, 0u);
    }
    // Full header but short payload: same verdict.
    const auto r = decodeFrame(
        std::span<const std::uint8_t>(frame).first(frame.size() - 1));
    EXPECT_EQ(r.status, DecodeStatus::NeedMoreData);
    EXPECT_EQ(r.consumed, 0u);
}

TEST(Frame, BadMagicConsumesNothing)
{
    auto frame = encodeJobBatch(9, {});
    frame[0] ^= 0xff;
    const auto r = decodeFrame(frame);
    EXPECT_EQ(r.status, DecodeStatus::BadMagic);
    // Consumed 0: the caller must resynchronize, not skip a frame.
    EXPECT_EQ(r.consumed, 0u);
}

TEST(Frame, VersionSkewRejectsTheWholeFrame)
{
    auto frame = encodeJobBatch(9, sampleBatch());
    patchU16(frame, 4, frame_version + 1);
    const auto r = decodeFrame(frame);
    EXPECT_EQ(r.status, DecodeStatus::VersionSkew);
    // A well-formed frame from another version can be skipped whole.
    EXPECT_EQ(r.consumed, frame.size());
}

TEST(Frame, UnknownFrameTypeRejects)
{
    auto frame = encodeJobBatch(9, {});
    patchU16(frame, 6, 0x7777);
    const auto r = decodeFrame(frame);
    EXPECT_EQ(r.status, DecodeStatus::BadType);
    EXPECT_EQ(r.consumed, frame.size());
}

TEST(Frame, OversizedLengthRejectsBeforeAllocation)
{
    auto frame = encodeJobBatch(9, {});
    patchU32(frame, 16,
             static_cast<std::uint32_t>(max_frame_payload + 1));
    const auto r = decodeFrame(frame);
    EXPECT_EQ(r.status, DecodeStatus::Oversized);
    // The length itself is untrusted; consumed 0 forces a resync.
    EXPECT_EQ(r.consumed, 0u);
}

TEST(Frame, BadCrcRejects)
{
    auto frame = encodeJobBatch(9, sampleBatch());
    frame[frame_header_bytes + 5] ^= 0x01;
    const auto r = decodeFrame(frame);
    EXPECT_EQ(r.status, DecodeStatus::BadCrc);
    EXPECT_EQ(r.consumed, frame.size());
}

TEST(Frame, LyingRecordCountIsMalformed)
{
    const std::vector<core::JobRecord> one = {gpuRecord(1, 0, 600.0)};
    auto frame = encodeJobBatch(9, one);
    // Claim two records where one was written, CRC re-sealed so the
    // structural validator (not the checksum) must catch it.
    patchU32(frame, frame_header_bytes, 2);
    const auto payload =
        std::span<const std::uint8_t>(frame).subspan(frame_header_bytes);
    patchU32(frame, 20, crc32(payload));
    const auto r = decodeFrame(frame);
    EXPECT_EQ(r.status, DecodeStatus::Malformed);
    EXPECT_EQ(r.consumed, frame.size());
}

TEST(Frame, NonFiniteTimeIsMalformedNotAnAbort)
{
    const std::vector<core::JobRecord> one = {gpuRecord(1, 0, 600.0)};
    auto frame = encodeJobBatch(9, one);
    // submit_time sits right after the u32 record count and the
    // id/user/enum block (4 + 4 + 4 + 4 bytes) — see the layout doc.
    patchPayloadF64(frame, 16,
                    std::numeric_limits<double>::quiet_NaN());
    const auto r = decodeFrame(frame);
    EXPECT_EQ(r.status, DecodeStatus::Malformed);
}

TEST(Frame, InconsistentMomentsAreMalformedNotAnAbort)
{
    const std::vector<core::JobRecord> one = {gpuRecord(1, 0, 600.0)};
    auto frame = encodeJobBatch(9, one);
    // First per-GPU summary starts after count (4) + the record's
    // fixed 62-byte prefix; its mean is the second double after the
    // u64 sample count. mean > max must be rejected *before* it can
    // reach RunningSummary::fromMoments, whose contract check would
    // abort the daemon.
    const std::size_t sm_mean_offset = 4 + 62 + 8 + 8;
    patchPayloadF64(frame, sm_mean_offset, 1.0e12);
    const auto r = decodeFrame(frame);
    EXPECT_EQ(r.status, DecodeStatus::Malformed);
}

TEST(Frame, RandomGarbageNeverParsesAndNeverCrashes)
{
    std::mt19937 rng(0xA1FCu);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<std::size_t> size(0, 512);
    for (int trial = 0; trial < 2000; ++trial) {
        std::vector<std::uint8_t> junk(size(rng));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(byte(rng));
        const auto r = decodeFrame(junk);
        // Random bytes essentially never produce a valid magic+CRC;
        // any verdict is acceptable except a successful parse.
        EXPECT_FALSE(r.ok());
        EXPECT_LE(r.consumed, junk.size());
    }
}

TEST(Frame, TruncatedOrBitFlippedEncodingsNeverCrash)
{
    const auto frame = encodeJobBatch(3, sampleBatch());
    std::mt19937 rng(0xBEEF);
    std::uniform_int_distribution<std::size_t> pos(0, frame.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    for (int trial = 0; trial < 500; ++trial) {
        auto mutant = frame;
        mutant[pos(rng)] ^=
            static_cast<std::uint8_t>(1u << bit(rng));
        const auto r = decodeFrame(mutant);
        EXPECT_LE(r.consumed, mutant.size());
        if (r.ok()) {
            // A flip the CRC cannot see lives in the header; the only
            // header bits that may flip and still parse are none —
            // magic/version/type/length/crc are all load-bearing. The
            // tenant id, however, is not covered by the payload CRC.
            EXPECT_EQ(r.records.size(), sampleBatch().size());
        }
    }
}

TEST(Frame, Crc32MatchesTheIeeeReferenceVector)
{
    const std::uint8_t check[] = {'1', '2', '3', '4', '5',
                                  '6', '7', '8', '9'};
    EXPECT_EQ(crc32(check), 0xCBF43926u);
    EXPECT_EQ(crc32({}), 0u);
}

TEST(Frame, StatusNamesAreStable)
{
    EXPECT_STREQ(toString(DecodeStatus::Ok), "ok");
    EXPECT_STREQ(toString(DecodeStatus::BadCrc), "bad-crc");
    EXPECT_STREQ(toString(DecodeStatus::Malformed), "malformed");
}

} // namespace
} // namespace aiwc::svc
