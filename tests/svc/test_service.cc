#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "../core/record_builder.hh"

#include "aiwc/base/check.hh"
#include "aiwc/common/parallel.hh"
#include "aiwc/svc/service.hh"

namespace aiwc::svc
{
namespace
{

using core::testing::cpuRecord;
using core::testing::gpuRecord;

/** A deterministic per-tenant batch: all GPU jobs over the debris cut. */
std::vector<core::JobRecord>
tenantBatch(std::uint64_t tenant, int count, int first_id = 0)
{
    std::vector<core::JobRecord> records;
    records.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int id = first_id + i;
        records.push_back(gpuRecord(
            static_cast<JobId>(tenant * 100000 + id),
            static_cast<UserId>(tenant * 1000 + id % 7),
            120.0 + 13.0 * (id % 97)));
    }
    return records;
}

TEST(Service, TenantsAreCreatedOnFirstContact)
{
    Service svc;
    EXPECT_FALSE(svc.hasTenant(3));
    EXPECT_EQ(svc.enqueueBatch(3, tenantBatch(3, 10)),
              Admission::Accepted);
    EXPECT_EQ(svc.enqueueBatch(1, tenantBatch(1, 5)),
              Admission::Accepted);
    EXPECT_EQ(svc.enqueueBatch(2, tenantBatch(2, 7)),
              Admission::Accepted);
    EXPECT_TRUE(svc.hasTenant(3));
    EXPECT_EQ(svc.tenantIds(),
              (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(svc.queuedRecords(3), 10u);
    EXPECT_EQ(svc.ingestedRecords(3), 0u);

    EXPECT_EQ(svc.drain(), 22u);
    EXPECT_EQ(svc.queuedRecords(3), 0u);
    EXPECT_EQ(svc.ingestedRecords(3), 10u);
    EXPECT_EQ(svc.snapshot(3).rows, 10u);
    EXPECT_EQ(svc.snapshot(1).rows, 5u);
    EXPECT_EQ(svc.snapshot(2).rows, 7u);
    EXPECT_GT(svc.sketchBytes(), 0u);
}

TEST(Service, OfferFrameFeedsTheTenantEndToEnd)
{
    Service svc;
    const auto batch = tenantBatch(42, 16);
    const auto frame = encodeJobBatch(42, batch);
    const auto result = svc.offerFrame(frame);
    EXPECT_TRUE(result.accepted());
    EXPECT_EQ(result.decode, DecodeStatus::Ok);
    EXPECT_EQ(result.consumed, frame.size());
    EXPECT_EQ(result.tenant, 42u);
    EXPECT_EQ(result.records, 16u);

    EXPECT_EQ(svc.drain(), 16u);
    const auto snap = svc.snapshot(42);
    EXPECT_EQ(snap.rows, 16u);
    EXPECT_EQ(snap.gpu_jobs, 16u);
}

TEST(Service, OfferFrameRejectsGarbageWithoutCreatingTenants)
{
    Service svc;
    std::vector<std::uint8_t> junk(64, 0x5a);
    const auto result = svc.offerFrame(junk);
    EXPECT_FALSE(result.accepted());
    EXPECT_EQ(result.decode, DecodeStatus::BadMagic);
    EXPECT_TRUE(svc.tenantIds().empty());

    auto frame = encodeJobBatch(7, tenantBatch(7, 3));
    frame[frame_header_bytes] ^= 0xff;  // corrupt the payload
    const auto bad = svc.offerFrame(frame);
    EXPECT_EQ(bad.decode, DecodeStatus::BadCrc);
    EXPECT_TRUE(svc.tenantIds().empty());
}

TEST(Service, BackpressureKicksInOverBudgetAndClearsAfterDrain)
{
    ServiceOptions opts;
    opts.queue_budget_records = 10;
    Service svc(opts);

    EXPECT_EQ(svc.enqueueBatch(1, tenantBatch(1, 8)),
              Admission::Accepted);
    // 8 queued + 5 incoming > 10: refused, queue state untouched.
    EXPECT_EQ(svc.enqueueBatch(1, tenantBatch(1, 5, 100)),
              Admission::Backpressure);
    EXPECT_EQ(svc.queuedRecords(1), 8u);
    // Another tenant's queue is independent.
    EXPECT_EQ(svc.enqueueBatch(2, tenantBatch(2, 5)),
              Admission::Accepted);

    EXPECT_EQ(svc.drain(), 13u);
    EXPECT_EQ(svc.enqueueBatch(1, tenantBatch(1, 5, 100)),
              Admission::Accepted);

    // Progress guarantee: an empty queue admits even a batch larger
    // than the whole budget, so one big sender cannot deadlock.
    EXPECT_EQ(svc.enqueueBatch(3, tenantBatch(3, 50)),
              Admission::Accepted);
    EXPECT_EQ(svc.enqueueBatch(3, tenantBatch(3, 1, 200)),
              Admission::Backpressure);
}

TEST(Service, SnapshotOfUnknownTenantTripsTheContract)
{
    ScopedCheckFailHandler guard;
    const Service svc;
    EXPECT_THROW(svc.snapshot(99), ContractViolation);
}

TEST(Service, ShardCountIsConfigurableAndCheckpointed)
{
    ScopedCheckFailHandler guard;
    ServiceOptions zero_shards;
    zero_shards.shards_per_tenant = 0;
    EXPECT_THROW(Service{zero_shards}, ContractViolation);
    ServiceOptions zero_budget;
    zero_budget.queue_budget_records = 0;
    EXPECT_THROW(Service{zero_budget}, ContractViolation);
}

TEST(Service, SnapshotsAreByteIdenticalAcrossDrainThreadCounts)
{
    const int saved_threads = globalThreadCount();
    constexpr std::uint64_t tenants = 6;

    // Two ingest rounds with a mid-stream snapshot between them, to
    // pin the determinism claim mid-flight and not just at the end.
    const auto run = [&](int threads) {
        setGlobalThreadCount(threads);
        Service svc;
        std::vector<stream::SnapshotReport> mid, fin;
        for (std::uint64_t t = 0; t < tenants; ++t)
            svc.enqueueBatch(t, tenantBatch(t, 120));
        svc.drain();
        for (std::uint64_t t = 0; t < tenants; ++t)
            mid.push_back(svc.snapshot(t));
        for (std::uint64_t t = 0; t < tenants; ++t) {
            svc.enqueueBatch(t, tenantBatch(t, 80, 500));
            svc.enqueueBatch(t, tenantBatch(t, 40, 900));
        }
        svc.drain();
        for (std::uint64_t t = 0; t < tenants; ++t)
            fin.push_back(svc.snapshot(t));
        return std::pair{std::move(mid), std::move(fin)};
    };

    const auto serial = run(1);
    const auto parallel = run(8);
    setGlobalThreadCount(saved_threads);

    const auto expect_identical = [](const stream::SnapshotReport &a,
                                     const stream::SnapshotReport &b) {
        EXPECT_EQ(a.rows, b.rows);
        EXPECT_EQ(a.gpu_jobs, b.gpu_jobs);
        EXPECT_EQ(a.users, b.users);
        EXPECT_DOUBLE_EQ(a.top5_job_share, b.top5_job_share);
        EXPECT_DOUBLE_EQ(a.median_jobs_per_user,
                         b.median_jobs_per_user);
        for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
            EXPECT_DOUBLE_EQ(a.gpu_runtime_min.quantile(q),
                             b.gpu_runtime_min.quantile(q));
            EXPECT_DOUBLE_EQ(a.sm_pct.quantile(q),
                             b.sm_pct.quantile(q));
            EXPECT_DOUBLE_EQ(a.avg_watts.quantile(q),
                             b.avg_watts.quantile(q));
        }
    };
    ASSERT_EQ(serial.first.size(), parallel.first.size());
    for (std::size_t i = 0; i < serial.first.size(); ++i) {
        expect_identical(serial.first[i], parallel.first[i]);
        expect_identical(serial.second[i], parallel.second[i]);
    }
    // The two rounds really did advance the stream.
    EXPECT_EQ(serial.first[0].rows, 120u);
    EXPECT_EQ(serial.second[0].rows, 240u);
}

TEST(Service, SnapshotWhileDrainingObservesBatchBoundaries)
{
    // tsan companion to the pipeline-level ingest-while-snapshot test:
    // here the writer is the service drain itself. Every mid-drain
    // snapshot must sit on a batch boundary — all-GPU input means a
    // consistent report satisfies gpu_jobs + cpu_jobs == rows.
    constexpr int batches = 40;
    constexpr int per_batch = 50;
    Service svc;
    std::atomic<bool> done{false};
    ThreadPool feeder(1);
    feeder.submit([&] {
        for (int b = 0; b < batches; ++b) {
            while (svc.enqueueBatch(
                       9, tenantBatch(9, per_batch, b * per_batch)) !=
                   Admission::Accepted)
                svc.drain();
            svc.drain();
        }
        done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) {
        if (!svc.hasTenant(9))
            continue;
        const auto snap = svc.snapshot(9);
        EXPECT_EQ(snap.rows % per_batch, 0u) << "torn batch";
        EXPECT_EQ(snap.gpu_jobs + snap.cpu_jobs, snap.rows);
    }
    svc.drain();
    EXPECT_EQ(svc.snapshot(9).rows,
              static_cast<std::uint64_t>(batches * per_batch));
    EXPECT_EQ(svc.ingestedRecords(9),
              static_cast<std::uint64_t>(batches * per_batch));
}

TEST(Service, ConcurrentDrainsConserveEveryRecord)
{
    // Regression for the drain() shard-count read that sat outside the
    // tenant mutex (caught by the AIWC_GUARDED_BY annotations): two
    // drains racing a feeder must route every record exactly once,
    // with all tenant state — queue, counters, shard geometry — only
    // touched under the tenant lock. tsan is the oracle.
    constexpr int batches = 30;
    constexpr int per_batch = 40;
    Service svc;
    std::atomic<bool> done{false};
    {
        ThreadPool feeder(1);
        ThreadPool drainer(1);
        drainer.submit([&] {
            while (!done.load(std::memory_order_acquire))
                svc.drain();
        });
        feeder.submit([&] {
            for (int b = 0; b < batches; ++b) {
                while (svc.enqueueBatch(
                           3,
                           tenantBatch(3, per_batch, b * per_batch)) !=
                       Admission::Accepted) {
                }
            }
            done.store(true, std::memory_order_release);
        });
        while (!done.load(std::memory_order_acquire))
            svc.drain();  // three-way race: feeder, drainer, and here
    }  // both pools drain and join
    svc.drain();
    EXPECT_EQ(svc.queuedRecords(3), 0u);
    EXPECT_EQ(svc.ingestedRecords(3),
              static_cast<std::uint64_t>(batches * per_batch));
    EXPECT_EQ(svc.snapshot(3).rows,
              static_cast<std::uint64_t>(batches * per_batch));
}

} // namespace
} // namespace aiwc::svc
