#include <gtest/gtest.h>

#include "aiwc/sched/job.hh"

namespace aiwc::sched
{
namespace
{

TEST(JobRequest, ObservedDurationClampsToWalltime)
{
    JobRequest req;
    req.duration = 100.0;
    req.walltime_limit = 50.0;
    req.natural_end = TerminalState::Completed;
    EXPECT_DOUBLE_EQ(req.observedDuration(), 50.0);
    EXPECT_EQ(req.observedEnd(), TerminalState::TimedOut);
}

TEST(JobRequest, ObservedDurationWithinWalltime)
{
    JobRequest req;
    req.duration = 30.0;
    req.walltime_limit = 50.0;
    req.natural_end = TerminalState::Cancelled;
    EXPECT_DOUBLE_EQ(req.observedDuration(), 30.0);
    EXPECT_EQ(req.observedEnd(), TerminalState::Cancelled);
}

TEST(JobRequest, GpuJobDetection)
{
    JobRequest req;
    req.gpus = 0;
    EXPECT_FALSE(req.isGpuJob());
    req.gpus = 2;
    EXPECT_TRUE(req.isGpuJob());
}

TEST(Allocation, TotalsAcrossShares)
{
    Allocation alloc;
    NodeShare a;
    a.node = 0;
    a.cpu_slots = 8;
    a.gpus = {0, 1};
    NodeShare b;
    b.node = 1;
    b.cpu_slots = 4;
    b.gpus = {2};
    alloc.shares = {a, b};
    EXPECT_EQ(alloc.totalGpus(), 3);
    EXPECT_EQ(alloc.totalCpuSlots(), 12);
    EXPECT_EQ(alloc.allGpus(), (std::vector<GpuId>{0, 1, 2}));
    EXPECT_FALSE(alloc.empty());
}

TEST(Job, TimingDerivations)
{
    Job job;
    job.request.submit_time = 100.0;
    job.request.gpus = 2;
    job.state = JobState::Finished;
    job.start_time = 160.0;
    job.end_time = 3760.0;
    EXPECT_DOUBLE_EQ(job.waitTime(), 60.0);
    EXPECT_DOUBLE_EQ(job.runTime(), 3600.0);
    EXPECT_DOUBLE_EQ(job.serviceTime(), 3660.0);
    EXPECT_DOUBLE_EQ(job.gpuHours(), 2.0);
}

TEST(Job, GpuHoursZeroUntilFinished)
{
    Job job;
    job.request.gpus = 4;
    job.state = JobState::Running;
    job.start_time = 0.0;
    job.end_time = 3600.0;
    EXPECT_DOUBLE_EQ(job.gpuHours(), 0.0);
}

} // namespace
} // namespace aiwc::sched
