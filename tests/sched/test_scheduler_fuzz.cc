/**
 * @file
 * Failure-injection and fuzz coverage for the scheduler: random job
 * streams with adversarial shapes (instant jobs, capacity-exact
 * requests, RAM-heavy requests, simultaneous bursts) must preserve
 * the core invariants — conservation, monotone times, resource
 * exclusivity, and full drain.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "aiwc/common/rng.hh"
#include "aiwc/sched/slurm_scheduler.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::sched
{
namespace
{

struct Fuzzer
{
    sim::Cluster cluster;
    sim::Simulation sim;
    SlurmScheduler scheduler;
    Rng rng;

    Fuzzer(int nodes, std::uint64_t seed)
        : cluster(sim::miniSupercloudSpec(nodes)),
          scheduler(sim, cluster), rng(seed)
    {
    }

    JobRequest
    randomJob(JobId id)
    {
        JobRequest req;
        req.id = id;
        req.user = static_cast<UserId>(rng.below(8));
        req.submit_time = rng.uniform(0.0, 40000.0);
        // Adversarial duration mix: instants, exact walltime hits,
        // and long runs.
        switch (rng.below(4)) {
          case 0: req.duration = 1.0; break;
          case 1: req.duration = rng.uniform(1.0, 120.0); break;
          case 2: req.duration = rng.uniform(120.0, 20000.0); break;
          default: req.duration = 40000.0; break;
        }
        req.walltime_limit = rng.chance(0.2)
                                 ? req.duration  // exact timeout hit
                                 : req.duration * rng.uniform(1.0, 4.0);
        if (rng.chance(0.6)) {
            req.gpus = 1 + static_cast<int>(rng.below(4));
            req.cpu_slots = req.gpus * (1 + static_cast<int>(
                                                rng.below(16)));
            req.ram_gb = rng.uniform(1.0, 192.0);
        } else {
            req.gpus = 0;
            // Whole nodes, sometimes the entire cluster's worth.
            const auto nodes = static_cast<int>(cluster.numNodes());
            const int want = 1 + static_cast<int>(rng.below(
                                     static_cast<std::uint64_t>(nodes)));
            req.cpu_slots = want * 80;
            req.ram_gb = want * rng.uniform(100.0, 384.0);
        }
        return req;
    }
};

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SchedulerFuzz, InvariantsHoldUnderRandomLoad)
{
    Fuzzer f(3, GetParam());
    constexpr int jobs = 400;
    for (JobId id = 0; id < jobs; ++id)
        f.scheduler.submit(f.randomJob(id));
    f.sim.run();

    const auto &stats = f.scheduler.stats();
    // Conservation: everything accepted eventually finished.
    EXPECT_EQ(stats.started, stats.finished);
    EXPECT_EQ(stats.submitted, stats.finished);
    EXPECT_EQ(f.scheduler.queueDepth(), 0u);
    EXPECT_EQ(f.scheduler.runningJobs(), 0u);

    // All resources returned.
    EXPECT_EQ(f.cluster.freeGpus(), 6);
    EXPECT_EQ(f.cluster.freeCpuSlots(), 240);
    for (const auto &node : f.cluster.nodes()) {
        EXPECT_EQ(node.residentJobs(), 0);
        EXPECT_DOUBLE_EQ(node.freeRamGb(), 384.0);
    }

    // Per-job invariants.
    struct Edge
    {
        Seconds t;
        int delta;
    };
    std::vector<Edge> edges;
    for (const Job &job : f.scheduler.jobs()) {
        EXPECT_EQ(job.state, JobState::Finished);
        EXPECT_GE(job.waitTime(), 0.0);
        EXPECT_GT(job.runTime(), 0.0);
        EXPECT_LE(job.runTime(), job.request.walltime_limit + 1e-9);
        if (job.request.duration >= job.request.walltime_limit) {
            EXPECT_EQ(job.terminal, TerminalState::TimedOut);
        }
        if (job.request.isGpuJob()) {
            EXPECT_EQ(job.allocation.totalGpus(), job.request.gpus);
            edges.push_back({job.start_time, job.request.gpus});
            edges.push_back({job.end_time, -job.request.gpus});
        }
    }

    // GPU exclusivity over time.
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  if (a.t != b.t)
                      return a.t < b.t;
                  return a.delta < b.delta;
              });
    int in_use = 0;
    for (const auto &e : edges) {
        in_use += e.delta;
        EXPECT_LE(in_use, 6);
        EXPECT_GE(in_use, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1u, 7u, 23u, 99u, 1234u));

TEST(SchedulerFuzz, SimultaneousBurstDrains)
{
    // A 200-job array landing at one instant on a tiny cluster.
    Fuzzer f(1, 5);
    for (JobId id = 0; id < 200; ++id) {
        JobRequest req;
        req.id = id;
        req.user = 0;
        req.submit_time = 100.0;
        req.duration = 50.0;
        req.walltime_limit = 200.0;
        req.gpus = 1;
        req.cpu_slots = 4;
        req.ram_gb = 8.0;
        f.scheduler.submit(req);
    }
    f.sim.run();
    EXPECT_EQ(f.scheduler.stats().finished, 200u);
    // Two GPUs, 50 s jobs: the burst takes ~100 serial rounds.
    double last_end = 0.0;
    for (const Job &job : f.scheduler.jobs())
        last_end = std::max(last_end, job.end_time);
    EXPECT_GT(last_end, 100.0 + 99 * 50.0);
}

TEST(SchedulerFuzz, ZeroLengthQueuePhaseAfterwardsReusable)
{
    // The scheduler must accept new submissions after going idle.
    Fuzzer f(1, 11);
    JobRequest first;
    first.id = 0;
    first.user = 0;
    first.submit_time = 0.0;
    first.duration = 10.0;
    first.walltime_limit = 100.0;
    first.gpus = 1;
    first.cpu_slots = 2;
    first.ram_gb = 4.0;
    f.scheduler.submit(first);
    f.sim.run();
    EXPECT_EQ(f.scheduler.stats().finished, 1u);

    JobRequest second = first;
    second.id = 1;
    second.submit_time = f.sim.now() + 5.0;
    f.scheduler.submit(second);
    f.sim.run();
    EXPECT_EQ(f.scheduler.stats().finished, 2u);
}

} // namespace
} // namespace aiwc::sched
