/**
 * @file
 * Fair-share priority: a user who just burned GPU-hours yields queue
 * position to an idle user, and the advantage decays over time.
 */

#include <gtest/gtest.h>

#include "aiwc/sched/slurm_scheduler.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::sched
{
namespace
{

JobRequest
job(JobId id, UserId user, Seconds submit, Seconds duration, int gpus)
{
    JobRequest req;
    req.id = id;
    req.user = user;
    req.submit_time = submit;
    req.duration = duration;
    req.walltime_limit = duration * 4.0;
    req.gpus = gpus;
    req.cpu_slots = 4;
    req.ram_gb = 8.0;
    return req;
}

struct Fixture
{
    sim::Cluster cluster;
    sim::Simulation sim;
    SlurmScheduler scheduler;

    explicit Fixture(SchedulerOptions options)
        : cluster(sim::miniSupercloudSpec(1)),
          scheduler(sim, cluster, options)
    {
    }
};

SchedulerOptions
fairshareOptions()
{
    SchedulerOptions options;
    options.fairshare = true;
    options.fairshare_weight = 3600.0;  // strong, for a crisp test
    options.gpu_priority_boost = 0.0;
    return options;
}

TEST(Fairshare, HeavyUserYieldsToLightUser)
{
    Fixture f(fairshareOptions());
    // User 0 burns both GPUs for ~6 GPU-hours first.
    f.scheduler.submit(job(1, 0, 0.0, 3.0 * 3600.0, 2));
    // Both users queue one job while the machine is busy; user 0
    // submitted EARLIER but carries fresh usage.
    f.scheduler.submit(job(2, 0, 100.0, 600.0, 2));
    f.scheduler.submit(job(3, 1, 200.0, 600.0, 2));
    f.sim.run();
    EXPECT_LT(f.scheduler.job(3).start_time,
              f.scheduler.job(2).start_time);
}

TEST(Fairshare, DisabledKeepsFcfsOrder)
{
    SchedulerOptions options;
    options.gpu_priority_boost = 0.0;
    Fixture f(options);
    f.scheduler.submit(job(1, 0, 0.0, 3.0 * 3600.0, 2));
    f.scheduler.submit(job(2, 0, 100.0, 600.0, 2));
    f.scheduler.submit(job(3, 1, 200.0, 600.0, 2));
    f.sim.run();
    EXPECT_LT(f.scheduler.job(2).start_time,
              f.scheduler.job(3).start_time);
}

TEST(Fairshare, UsageDecaysOverTime)
{
    // After many half-lives, the heavy user's debt is gone and FCFS
    // order returns.
    SchedulerOptions options = fairshareOptions();
    options.fairshare_half_life = 600.0;
    Fixture f(options);
    f.scheduler.submit(job(1, 0, 0.0, 3600.0, 2));
    // A long quiet gap (20 half-lives), then contention again.
    f.scheduler.submit(job(4, 2, 16000.0, 3600.0, 2));  // occupies GPUs
    f.scheduler.submit(job(2, 0, 16100.0, 600.0, 2));
    f.scheduler.submit(job(3, 1, 16200.0, 600.0, 2));
    f.sim.run();
    EXPECT_LT(f.scheduler.job(2).start_time,
              f.scheduler.job(3).start_time);
}

TEST(Fairshare, StatsUnaffectedByPolicy)
{
    Fixture f(fairshareOptions());
    for (JobId id = 0; id < 20; ++id)
        f.scheduler.submit(job(id, id % 3, id * 50.0, 300.0, 1));
    f.sim.run();
    EXPECT_EQ(f.scheduler.stats().finished, 20u);
    EXPECT_EQ(f.cluster.freeGpus(), 2);
}

} // namespace
} // namespace aiwc::sched
