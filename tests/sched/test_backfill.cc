#include <gtest/gtest.h>

#include "aiwc/sched/backfill.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::sched
{
namespace
{

JobRequest
gpuRequest(int gpus, Seconds walltime = 3600.0)
{
    JobRequest req;
    req.gpus = gpus;
    req.cpu_slots = 4;
    req.walltime_limit = walltime;
    return req;
}

TEST(Backfill, HeadFitsNowGivesImmediateShadow)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(2));  // 4 GPUs free
    const BackfillWindow w =
        computeWindow(cluster, {}, gpuRequest(2), 100.0);
    EXPECT_DOUBLE_EQ(w.shadow_time, 100.0);
    EXPECT_EQ(w.spare_gpus, 2);
}

TEST(Backfill, ShadowWaitsForEarliestSufficientCompletion)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(1));  // 2 GPUs
    // Occupy both GPUs.
    auto &node = cluster.node(0);
    node.allocateGpus(1, 2);
    node.allocateCpu(8, 32.0);
    std::vector<RunningFootprint> running = {
        {/*expected_end=*/500.0, /*gpus=*/1, /*whole_nodes=*/0},
        {/*expected_end=*/900.0, /*gpus=*/1, /*whole_nodes=*/0},
    };
    // Head wants both GPUs: shadow is the later completion.
    const BackfillWindow w =
        computeWindow(cluster, running, gpuRequest(2), 100.0);
    EXPECT_DOUBLE_EQ(w.shadow_time, 900.0);
    EXPECT_EQ(w.spare_gpus, 0);

    // Head wants one GPU: shadow is the earlier completion.
    const BackfillWindow w1 =
        computeWindow(cluster, running, gpuRequest(1), 100.0);
    EXPECT_DOUBLE_EQ(w1.shadow_time, 500.0);
}

TEST(Backfill, ShortJobMayJumpAhead)
{
    BackfillWindow w;
    w.shadow_time = 1000.0;
    w.spare_gpus = 0;
    w.spare_nodes = 0;
    const auto spec = sim::miniSupercloudSpec(2);
    EXPECT_TRUE(mayBackfill(w, gpuRequest(1, 800.0), spec, 100.0));
    EXPECT_FALSE(mayBackfill(w, gpuRequest(1, 1200.0), spec, 100.0));
}

TEST(Backfill, LongJobMayUseSpareCapacity)
{
    BackfillWindow w;
    w.shadow_time = 1000.0;
    w.spare_gpus = 2;
    const auto spec = sim::miniSupercloudSpec(2);
    // Too long to finish before the shadow, but fits in spare GPUs.
    EXPECT_TRUE(mayBackfill(w, gpuRequest(2, 99999.0), spec, 100.0));
    EXPECT_FALSE(mayBackfill(w, gpuRequest(3, 99999.0), spec, 100.0));
}

TEST(Backfill, CpuCandidateUsesWholeNodeAccounting)
{
    BackfillWindow w;
    w.shadow_time = 1000.0;
    w.spare_nodes = 1;
    const auto spec = sim::miniSupercloudSpec(4);
    JobRequest cpu;
    cpu.gpus = 0;
    cpu.cpu_slots = 80;  // one whole node
    cpu.walltime_limit = 99999.0;
    EXPECT_TRUE(mayBackfill(w, cpu, spec, 100.0));
    cpu.cpu_slots = 160;  // two nodes > spare
    EXPECT_FALSE(mayBackfill(w, cpu, spec, 100.0));
}

} // namespace
} // namespace aiwc::sched
