/**
 * @file
 * SLA-class priority-boost tests: a positive boost buys virtual queue
 * age, a negative one gives it back, and the all-zero default leaves
 * scheduling byte-identical to a plain single queue — the property the
 * studied system's reproduction rests on.
 */

#include <gtest/gtest.h>

#include "aiwc/sched/slurm_scheduler.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::sched
{
namespace
{

JobRequest
slaJob(JobId id, Seconds submit, SlaClass sla, int gpus = 2,
       Seconds duration = 100.0)
{
    JobRequest req;
    req.id = id;
    req.user = 0;
    req.submit_time = submit;
    req.duration = duration;
    req.walltime_limit = duration * 4.0;
    req.gpus = gpus;
    req.cpu_slots = 4;
    req.ram_gb = 16.0;
    req.sla = sla;
    return req;
}

struct Fixture
{
    sim::Cluster cluster;
    sim::Simulation sim;
    SlurmScheduler scheduler;

    explicit Fixture(SchedulerOptions options = {})
        : cluster(sim::miniSupercloudSpec(1)),  // 2 GPUs total
          scheduler(sim, cluster, options)
    {
    }
};

TEST(SlaPriority, PositiveBoostJumpsTheQueue)
{
    SchedulerOptions opts;
    // 300 s of virtual seniority outweighs the 10 s submit gap.
    opts.sla_boost[static_cast<std::size_t>(SlaClass::LatencySensitive)] =
        300.0;
    Fixture f(opts);
    // Job 1 pins both GPUs, so jobs 2 and 3 (each whole-cluster) queue
    // and run one at a time: start order is queue order.
    f.scheduler.submit(slaJob(1, 0.0, SlaClass::Batch, 2, 1000.0));
    f.scheduler.submit(slaJob(2, 10.0, SlaClass::Batch));
    f.scheduler.submit(slaJob(3, 20.0, SlaClass::LatencySensitive));
    f.sim.run();
    EXPECT_LT(f.scheduler.job(3).start_time,
              f.scheduler.job(2).start_time);
}

TEST(SlaPriority, NegativeBoostYieldsToLaterWork)
{
    SchedulerOptions opts;
    opts.sla_boost[static_cast<std::size_t>(SlaClass::Scavenger)] = -300.0;
    Fixture f(opts);
    f.scheduler.submit(slaJob(1, 0.0, SlaClass::Batch, 2, 1000.0));
    // The scavenger job arrives first but gives back 300 s of age, so
    // the later batch job runs ahead of it.
    f.scheduler.submit(slaJob(2, 10.0, SlaClass::Scavenger));
    f.scheduler.submit(slaJob(3, 20.0, SlaClass::Batch));
    f.sim.run();
    EXPECT_LT(f.scheduler.job(3).start_time,
              f.scheduler.job(2).start_time);
}

TEST(SlaPriority, ZeroBoostIgnoresTheSlaClass)
{
    // With the default all-zero boost the SLA field must be inert:
    // re-labeling every job must not move a single start time.
    const auto run = [](SlaClass second, SlaClass third) {
        Fixture f;
        f.scheduler.submit(slaJob(1, 0.0, SlaClass::Batch, 2, 1000.0));
        f.scheduler.submit(slaJob(2, 10.0, second));
        f.scheduler.submit(slaJob(3, 20.0, third));
        f.sim.run();
        return std::pair<Seconds, Seconds>{f.scheduler.job(2).start_time,
                                           f.scheduler.job(3).start_time};
    };
    const auto plain = run(SlaClass::Batch, SlaClass::Batch);
    const auto labeled =
        run(SlaClass::Scavenger, SlaClass::LatencySensitive);
    EXPECT_DOUBLE_EQ(plain.first, labeled.first);
    EXPECT_DOUBLE_EQ(plain.second, labeled.second);
    // And FCFS holds: job 2 (earlier submit) runs first.
    EXPECT_LT(plain.first, plain.second);
}

} // namespace
} // namespace aiwc::sched
