/**
 * @file
 * Scheduler <-> cluster conservation audits: auditInvariants() must
 * pass at every quiescent point of a healthy run, and must detect
 * injected corruption of the kind a refactor bug would introduce
 * (a GPU flipped busy behind the scheduler's back, a leaked slot).
 */

#include <gtest/gtest.h>

#include "aiwc/base/check.hh"
#include "aiwc/sched/slurm_scheduler.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::sched
{
namespace
{

JobRequest
makeJob(JobId id, Seconds submit, Seconds duration, int gpus,
        int cpu_slots = 4, double ram = 16.0)
{
    JobRequest req;
    req.id = id;
    req.user = id % 3;
    req.submit_time = submit;
    req.duration = duration;
    req.walltime_limit = duration * 4.0;
    req.gpus = gpus;
    req.cpu_slots = cpu_slots;
    req.ram_gb = ram;
    return req;
}

struct Fixture
{
    sim::Cluster cluster;
    sim::Simulation sim;
    SlurmScheduler scheduler;

    explicit Fixture(int nodes = 4, SchedulerOptions options = {})
        : cluster(sim::miniSupercloudSpec(nodes)),
          scheduler(sim, cluster, options)
    {
    }
};

TEST(SchedulerAudit, EmptySchedulerPassesAudit)
{
    Fixture f;
    f.scheduler.auditInvariants();
    SUCCEED();
}

TEST(SchedulerAudit, AuditHoldsAtEveryJobBoundary)
{
    Fixture f;
    // The prolog/epilog hooks fire at every start/finish — the moments
    // an accounting bug would first become visible.
    f.scheduler.setProlog(
        [&f](const Job &) { f.scheduler.auditInvariants(); });
    f.scheduler.setEpilog(
        [&f](const Job &) { f.scheduler.auditInvariants(); });
    for (JobId id = 1; id <= 24; ++id) {
        const int gpus = static_cast<int>(id % 4);  // mix CPU/GPU jobs
        const int slots = gpus == 0 ? 160 : 4;      // CPU jobs: 2 nodes
        const double ram = gpus == 0 ? 768.0 : 16.0;
        f.scheduler.submit(makeJob(id, static_cast<double>(id) * 30.0,
                                   900.0 + static_cast<double>(id) * 10.0,
                                   gpus, slots, ram));
    }
    f.sim.run();
    f.scheduler.auditInvariants();
    EXPECT_EQ(f.scheduler.stats().finished, 24u);
    EXPECT_EQ(f.cluster.freeGpus(), f.cluster.spec().totalGpus());
}

TEST(SchedulerAudit, AuditSurvivesMidRunInspection)
{
    Fixture f;
    for (JobId id = 1; id <= 12; ++id)
        f.scheduler.submit(
            makeJob(id, static_cast<double>(id), 3600.0, 1 + id % 2));
    // Step the clock in slices and audit between event batches.
    for (int step = 1; step <= 10; ++step) {
        f.sim.runUntil(static_cast<double>(step) * 900.0);
        f.scheduler.auditInvariants();
    }
    f.sim.run();
    f.scheduler.auditInvariants();
}

TEST(SchedulerAudit, DetectsGpuFlippedBehindSchedulersBack)
{
    ScopedCheckFailHandler guard;
    Fixture f;
    f.scheduler.submit(makeJob(1, 0.0, 10000.0, 1));
    f.sim.runUntil(100.0);
    ASSERT_EQ(f.scheduler.runningJobs(), 1u);
    // Corruption: a free GPU goes busy without any job owning it.
    const auto corrupt_one_gpu = [&f] {
        for (auto &node : f.cluster.nodes())
            for (auto &gpu : node.gpus())
                if (!gpu.busy()) {
                    gpu.assign(777);
                    return true;
                }
        return false;
    };
    ASSERT_TRUE(corrupt_one_gpu());
    EXPECT_THROW(f.scheduler.auditInvariants(), ContractViolation);
}

TEST(SchedulerAudit, DetectsStolenAllocation)
{
    ScopedCheckFailHandler guard;
    Fixture f;
    f.scheduler.submit(makeJob(1, 0.0, 10000.0, 2));
    f.sim.runUntil(100.0);
    ASSERT_EQ(f.scheduler.runningJobs(), 1u);
    // Corruption: the running job's GPU is released underneath it.
    const Job &running = f.scheduler.job(1);
    ASSERT_FALSE(running.allocation.empty());
    const auto &share = running.allocation.shares.front();
    ASSERT_FALSE(share.gpus.empty());
    f.cluster.node(share.node).releaseGpu(share.gpus.front());
    EXPECT_THROW(f.scheduler.auditInvariants(), ContractViolation);
}

} // namespace
} // namespace aiwc::sched
