#include <gtest/gtest.h>

#include <vector>

#include "aiwc/sched/slurm_scheduler.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::sched
{
namespace
{

JobRequest
makeJob(JobId id, Seconds submit, Seconds duration, int gpus,
        int cpu_slots = 4, double ram = 16.0)
{
    JobRequest req;
    req.id = id;
    req.user = 0;
    req.submit_time = submit;
    req.duration = duration;
    req.walltime_limit = duration * 4.0;
    req.gpus = gpus;
    req.cpu_slots = cpu_slots;
    req.ram_gb = ram;
    return req;
}

struct Fixture
{
    sim::Cluster cluster;
    sim::Simulation sim;
    SlurmScheduler scheduler;

    explicit Fixture(int nodes = 2, SchedulerOptions options = {})
        : cluster(sim::miniSupercloudSpec(nodes)),
          scheduler(sim, cluster, options)
    {
    }
};

TEST(SlurmScheduler, SingleJobRunsToCompletion)
{
    Fixture f;
    f.scheduler.submit(makeJob(1, 0.0, 600.0, 1));
    f.sim.run();
    const Job &job = f.scheduler.job(1);
    EXPECT_EQ(job.state, JobState::Finished);
    EXPECT_DOUBLE_EQ(job.runTime(), 600.0);
    EXPECT_GE(job.start_time, 0.0);
    EXPECT_EQ(job.terminal, TerminalState::Completed);
    EXPECT_EQ(f.scheduler.stats().finished, 1u);
}

TEST(SlurmScheduler, WaitIsAtLeastDispatchLatency)
{
    SchedulerOptions opts;
    opts.dispatch_latency = 2.5;
    Fixture f(2, opts);
    f.scheduler.submit(makeJob(1, 100.0, 60.0, 1));
    f.sim.run();
    EXPECT_DOUBLE_EQ(f.scheduler.job(1).waitTime(), 2.5);
}

TEST(SlurmScheduler, ResourcesReleasedAfterCompletion)
{
    Fixture f(1);
    f.scheduler.submit(makeJob(1, 0.0, 100.0, 2));
    f.sim.run();
    EXPECT_EQ(f.cluster.freeGpus(), 2);
    EXPECT_EQ(f.cluster.freeCpuSlots(), 80);
}

TEST(SlurmScheduler, QueuesWhenGpusBusy)
{
    Fixture f(1);  // 2 GPUs total
    f.scheduler.submit(makeJob(1, 0.0, 1000.0, 2));
    f.scheduler.submit(makeJob(2, 10.0, 100.0, 1));
    f.sim.run();
    const Job &second = f.scheduler.job(2);
    // Must wait for job 1 to finish (~1001.5).
    EXPECT_GT(second.start_time, 1000.0);
    EXPECT_EQ(second.state, JobState::Finished);
}

TEST(SlurmScheduler, TimeoutEnforcedAtWalltime)
{
    Fixture f;
    JobRequest req = makeJob(1, 0.0, 1000.0, 1);
    req.walltime_limit = 400.0;
    f.scheduler.submit(req);
    f.sim.run();
    const Job &job = f.scheduler.job(1);
    EXPECT_DOUBLE_EQ(job.runTime(), 400.0);
    EXPECT_EQ(job.terminal, TerminalState::TimedOut);
}

TEST(SlurmScheduler, PrologAndEpilogFire)
{
    Fixture f;
    std::vector<JobId> prologs, epilogs;
    f.scheduler.setProlog(
        [&](const Job &j) { prologs.push_back(j.request.id); });
    f.scheduler.setEpilog(
        [&](const Job &j) { epilogs.push_back(j.request.id); });
    f.scheduler.submit(makeJob(1, 0.0, 60.0, 1));
    f.scheduler.submit(makeJob(2, 5.0, 60.0, 1));
    f.sim.run();
    EXPECT_EQ(prologs.size(), 2u);
    EXPECT_EQ(epilogs.size(), 2u);
}

TEST(SlurmScheduler, PrologSeesAllocation)
{
    Fixture f;
    int allocated_gpus = 0;
    f.scheduler.setProlog([&](const Job &j) {
        allocated_gpus = j.allocation.totalGpus();
    });
    f.scheduler.submit(makeJob(1, 0.0, 60.0, 2));
    f.sim.run();
    EXPECT_EQ(allocated_gpus, 2);
}

TEST(SlurmScheduler, RejectsInfeasibleRequests)
{
    Fixture f(1);
    // 4 GPUs can never exist on a 1-node (2-GPU) cluster.
    f.scheduler.submit(makeJob(1, 0.0, 60.0, 4));
    f.sim.run();
    EXPECT_EQ(f.scheduler.stats().submitted, 0u);
    EXPECT_EQ(f.scheduler.jobs().size(), 0u);
}

TEST(SlurmScheduler, GpuJobsOvertakeBlockedCpuHead)
{
    // A whole-node CPU job blocks the head while a GPU job slips
    // through the fast path thanks to its priority boost — the Fig. 3b
    // mechanism.
    SchedulerOptions opts;
    opts.backfill_interval = 60.0;
    Fixture f(1, opts);
    // Occupy most CPU slots so the whole-node job cannot start.
    f.scheduler.submit(makeJob(1, 0.0, 5000.0, 1, 40));
    // Whole-node CPU job: blocked until job 1 ends.
    JobRequest cpu = makeJob(2, 10.0, 100.0, 0, 80, 350.0);
    f.scheduler.submit(cpu);
    // GPU job arrives later but must not wait 5000 s.
    f.scheduler.submit(makeJob(3, 20.0, 100.0, 1, 4));
    f.sim.run();
    EXPECT_LT(f.scheduler.job(3).waitTime(), 60.0);
    EXPECT_GT(f.scheduler.job(2).waitTime(), 4000.0);
}

TEST(SlurmScheduler, BackfillLetsShortJobJumpLongQueue)
{
    SchedulerOptions opts;
    opts.backfill = true;
    opts.backfill_interval = 30.0;
    opts.gpu_priority_boost = 0.0;  // pure FCFS ordering
    Fixture f(1, opts);
    // Fill both GPUs with STAGGERED completions: job 1 frees its GPU
    // at ~10000 s, job 2 holds the other until ~20000 s.
    f.scheduler.submit(makeJob(1, 0.0, 10000.0, 1));
    f.scheduler.submit(makeJob(2, 0.0, 20000.0, 1));
    // Head of queue: wants 2 GPUs -> shadow time is job 2's end.
    f.scheduler.submit(makeJob(3, 10.0, 100.0, 2));
    // Short single-GPU job behind it: once job 1's GPU frees, it fits
    // now and (walltime 100 s) ends long before the shadow -> EASY
    // backfill lets it jump the blocked 2-GPU head.
    JobRequest short_job = makeJob(4, 20.0, 50.0, 1);
    short_job.walltime_limit = 100.0;
    f.scheduler.submit(short_job);
    f.sim.run();
    EXPECT_LT(f.scheduler.job(4).start_time,
              f.scheduler.job(3).start_time);
    EXPECT_TRUE(f.scheduler.job(4).backfilled);
}

TEST(SlurmScheduler, MultiGpuPriorityBoostOrdersQueue)
{
    SchedulerOptions opts;
    opts.gpu_priority_boost = 120.0;
    Fixture f(2, opts);
    // Saturate all four GPUs.
    f.scheduler.submit(makeJob(1, 0.0, 1000.0, 2));
    f.scheduler.submit(makeJob(2, 0.0, 1000.0, 2));
    // Single-GPU job queued first, 4-GPU job shortly after: the boost
    // (4 x 120 s vs 1 x 120 s seniority) puts the big job first once
    // resources free.
    f.scheduler.submit(makeJob(3, 10.0, 100.0, 1));
    f.scheduler.submit(makeJob(4, 20.0, 100.0, 4));
    f.sim.run();
    EXPECT_LT(f.scheduler.job(4).start_time,
              f.scheduler.job(3).start_time);
}

TEST(SlurmScheduler, StatsCountGpuHours)
{
    Fixture f;
    f.scheduler.submit(makeJob(1, 0.0, 3600.0, 2));
    f.sim.run();
    EXPECT_NEAR(f.scheduler.stats().gpu_hours, 2.0, 1e-9);
}

TEST(SlurmScheduler, ManyJobsAllComplete)
{
    Fixture f(4);
    constexpr int n = 200;
    for (int i = 0; i < n; ++i) {
        f.scheduler.submit(makeJob(static_cast<JobId>(i),
                                   static_cast<double>(i * 7), 300.0,
                                   1 + (i % 2)));
    }
    f.sim.run();
    EXPECT_EQ(f.scheduler.stats().finished, static_cast<std::size_t>(n));
    EXPECT_EQ(f.cluster.freeGpus(), 8);
    EXPECT_EQ(f.scheduler.queueDepth(), 0u);
    EXPECT_EQ(f.scheduler.runningJobs(), 0u);
    // Waits are non-negative and starts respect submits.
    for (const Job &job : f.scheduler.jobs()) {
        EXPECT_GE(job.waitTime(), 0.0);
        EXPECT_GE(job.runTime(), 0.0);
    }
}

} // namespace
} // namespace aiwc::sched
