#include <gtest/gtest.h>

#include "aiwc/sched/placement.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::sched
{
namespace
{

JobRequest
gpuRequest(int gpus, int slots = 4, double ram = 16.0)
{
    JobRequest req;
    req.id = 1;
    req.gpus = gpus;
    req.cpu_slots = slots;
    req.ram_gb = ram;
    return req;
}

JobRequest
cpuRequest(int slots, double ram = 350.0)
{
    JobRequest req;
    req.id = 2;
    req.gpus = 0;
    req.cpu_slots = slots;
    req.ram_gb = ram;
    return req;
}

TEST(Placement, SingleGpuJobFitsOneNode)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(4));
    DensePlacement placement;
    const auto plan = placement.place(cluster, gpuRequest(1));
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->shares.size(), 1u);
    EXPECT_EQ(plan->totalGpus(), 1);
}

TEST(Placement, TwoGpuJobStaysOnOneNode)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(4));
    DensePlacement placement;
    const auto plan = placement.place(cluster, gpuRequest(2));
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->shares.size(), 1u);
}

TEST(Placement, FourGpuJobSpansNeighbours)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(4));
    DensePlacement placement;
    auto plan = placement.place(cluster, gpuRequest(4, 8, 32.0));
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->shares.size(), 2u);
    // Neighbouring node ids.
    EXPECT_EQ(plan->shares[1].node, plan->shares[0].node + 1);
    placement.commit(cluster, 1, *plan);
    EXPECT_EQ(plan->totalGpus(), 4);
    EXPECT_EQ(cluster.freeGpus(), 4);
}

TEST(Placement, CommitThenReleaseRestoresState)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(2));
    DensePlacement placement;
    auto plan = placement.place(cluster, gpuRequest(2, 10, 64.0));
    ASSERT_TRUE(plan.has_value());
    placement.commit(cluster, 7, *plan);
    EXPECT_EQ(cluster.freeGpus(), 2);
    placement.release(cluster, *plan);
    EXPECT_EQ(cluster.freeGpus(), 4);
    EXPECT_EQ(cluster.freeCpuSlots(), 160);
}

TEST(Placement, GpuJobsPackOntoBusiestNode)
{
    // Two sequential single-GPU jobs should land on the same node,
    // keeping the other node whole for CPU jobs (Sec. III strategy).
    sim::Cluster cluster(sim::miniSupercloudSpec(2));
    DensePlacement placement;
    auto first = placement.place(cluster, gpuRequest(1));
    ASSERT_TRUE(first.has_value());
    placement.commit(cluster, 1, *first);
    auto second = placement.place(cluster, gpuRequest(1));
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->shares[0].node, first->shares[0].node);
}

TEST(Placement, RejectsWhenNoGpusFree)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(1));
    DensePlacement placement;
    auto plan = placement.place(cluster, gpuRequest(2));
    ASSERT_TRUE(plan.has_value());
    placement.commit(cluster, 1, *plan);
    EXPECT_FALSE(placement.place(cluster, gpuRequest(1)).has_value());
}

TEST(Placement, CpuJobTakesWholeNode)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(2));
    DensePlacement placement;
    auto plan = placement.place(cluster, cpuRequest(80));
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->shares.size(), 1u);
    EXPECT_EQ(plan->shares[0].cpu_slots, 80);
    placement.commit(cluster, 3, *plan);
    EXPECT_EQ(cluster.node(plan->shares[0].node).freeCpuSlots(), 0);
}

TEST(Placement, MultiNodeCpuJob)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(4));
    DensePlacement placement;
    const auto plan = placement.place(cluster, cpuRequest(240, 900.0));
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->shares.size(), 3u);
}

TEST(Placement, CpuJobRefusesPartiallyBusyNodes)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(1));
    DensePlacement placement;
    // A GPU job occupies a few slots; the whole-node CPU job must not
    // fit anymore.
    auto gpu_plan = placement.place(cluster, gpuRequest(1));
    ASSERT_TRUE(gpu_plan.has_value());
    placement.commit(cluster, 1, *gpu_plan);
    EXPECT_FALSE(placement.place(cluster, cpuRequest(80)).has_value());
}

TEST(Placement, CpuSlotsSplitProportionallyAcrossShares)
{
    sim::Cluster cluster(sim::miniSupercloudSpec(4));
    DensePlacement placement;
    const auto plan = placement.place(cluster, gpuRequest(4, 16, 64.0));
    ASSERT_TRUE(plan.has_value());
    int total_slots = 0;
    for (const auto &share : plan->shares)
        total_slots += share.cpu_slots;
    EXPECT_GE(total_slots, 16);  // ceil split may round up
    EXPECT_LE(total_slots, 18);
}


TEST(Placement, MultiNodeGpuJobNeedsCpuRoomOnEveryNode)
{
    // A 4-GPU job must spread over two nodes; if one of them cannot
    // host its CPU share, the plan falls through to a later window or
    // fails cleanly.
    sim::Cluster cluster(sim::miniSupercloudSpec(3));
    DensePlacement placement;
    // Fill node 1's CPU slots almost completely (no GPU claimed).
    cluster.node(1).allocateCpu(79, 10.0);
    // Request 4 GPUs (two nodes at 2 GPUs each) with a per-node CPU
    // share of 8 slots. Every contiguous two-node window contains
    // node 1, whose single free slot cannot host the share, so the
    // placement must fail cleanly rather than oversubscribe.
    const auto plan = placement.place(
        cluster, [] {
            JobRequest req;
            req.id = 1;
            req.gpus = 4;
            req.cpu_slots = 16;
            req.ram_gb = 32.0;
            return req;
        }());
    ASSERT_FALSE(plan.has_value());
    // Free the slots: now the window places.
    cluster.node(1).releaseCpu(79, 10.0);
    EXPECT_TRUE(placement
                    .place(cluster,
                           [] {
                               JobRequest req;
                               req.id = 2;
                               req.gpus = 4;
                               req.cpu_slots = 16;
                               req.ram_gb = 32.0;
                               return req;
                           }())
                    .has_value());
}

} // namespace
} // namespace aiwc::sched
