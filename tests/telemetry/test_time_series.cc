#include <gtest/gtest.h>

#include <sstream>

#include "aiwc/telemetry/time_series.hh"

namespace aiwc::telemetry
{
namespace
{

TEST(TimeSeries, StrideAndTimes)
{
    TimeSeries ts(0.1);
    ts.append({});
    ts.append({});
    ts.append({});
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.timeOf(0), 0.0);
    EXPECT_NEAR(ts.timeOf(2), 0.2, 1e-12);
}

TEST(TimeSeries, StoresChannelValues)
{
    TimeSeries ts(1.0);
    Sample s;
    s.sm = 0.5f;
    s.power_watts = 120.0f;
    ts.append(s);
    EXPECT_FLOAT_EQ(ts.at(0).sm, 0.5f);
    EXPECT_FLOAT_EQ(ts.at(0).power_watts, 120.0f);
}

TEST(TimeSeries, ByteSizeTracksSamples)
{
    TimeSeries ts(0.1);
    EXPECT_EQ(ts.byteSize(), 0u);
    ts.append({});
    EXPECT_EQ(ts.byteSize(), sizeof(Sample));
}

TEST(TimeSeries, CsvExportHasHeaderAndRows)
{
    TimeSeries ts(0.5);
    Sample s;
    s.sm = 0.25f;
    ts.append(s);
    ts.append(s);
    std::ostringstream os;
    ts.writeCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("time_s,sm,"), std::string::npos);
    EXPECT_NE(out.find("0.5"), std::string::npos);
    EXPECT_NE(out.find("0.25"), std::string::npos);
}

} // namespace
} // namespace aiwc::telemetry
