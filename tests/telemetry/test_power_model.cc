#include <gtest/gtest.h>

#include "aiwc/telemetry/power_model.hh"

namespace aiwc::telemetry
{
namespace
{

TEST(PowerModel, IdleDrawAtZeroLoad)
{
    const PowerModel model;
    EXPECT_DOUBLE_EQ(model.expectedWatts(0.0, 0.0),
                     model.params().idle_watts);
}

TEST(PowerModel, MonotoneInLoad)
{
    const PowerModel model;
    double prev = 0.0;
    for (double sm = 0.0; sm <= 1.0; sm += 0.1) {
        const double w = model.expectedWatts(sm, 0.0);
        EXPECT_GE(w, prev);
        prev = w;
    }
}

TEST(PowerModel, NeverExceedsTdp)
{
    const PowerModel model;
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double w = model.sampleWatts(1.0, 1.0, 1.4, rng);
        EXPECT_LE(w, model.params().tdp_watts);
        EXPECT_GE(w, 0.8 * model.params().idle_watts);
    }
}

TEST(PowerModel, EfficiencyScalesLoadTerm)
{
    const PowerModel model;
    const double idle = model.params().idle_watts;
    const double at_one = model.expectedWatts(0.5, 0.1, 1.0) - idle;
    const double at_half = model.expectedWatts(0.5, 0.1, 0.5) - idle;
    EXPECT_NEAR(at_half, 0.5 * at_one, 1e-9);
}

TEST(PowerModel, SampleNoiseAveragesOut)
{
    const PowerModel model;
    Rng rng(2);
    double acc = 0.0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        acc += model.sampleWatts(0.3, 0.05, 1.0, rng);
    EXPECT_NEAR(acc / n, model.expectedWatts(0.3, 0.05), 0.3);
}

TEST(PowerModel, UtilizationClampedToUnitRange)
{
    const PowerModel model;
    EXPECT_DOUBLE_EQ(model.expectedWatts(2.0, 0.0),
                     model.expectedWatts(1.0, 0.0));
    EXPECT_DOUBLE_EQ(model.expectedWatts(-1.0, 0.0),
                     model.expectedWatts(0.0, 0.0));
}

TEST(PowerModel, CustomParamsRespected)
{
    PowerParams params;
    params.idle_watts = 10.0;
    params.tdp_watts = 100.0;
    params.sm_weight = 1.0;
    params.membw_weight = 0.0;
    const PowerModel model(params);
    EXPECT_DOUBLE_EQ(model.expectedWatts(1.0, 0.0), 100.0);
    EXPECT_DOUBLE_EQ(model.expectedWatts(0.5, 0.0), 55.0);
}

} // namespace
} // namespace aiwc::telemetry
