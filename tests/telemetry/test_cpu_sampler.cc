#include <gtest/gtest.h>

#include "aiwc/telemetry/cpu_sampler.hh"

namespace aiwc::telemetry
{
namespace
{

HostProfile
gpuHost()
{
    HostProfile h;
    h.cpu_slots = 8;
    h.busy_slots_mean = 4.0;
    h.idle_busy_slots_mean = 0.5;
    h.rss_fraction = 0.5;
    h.seed = 11;
    return h;
}

TEST(CpuSampler, CpuJobIsContinuouslyBusy)
{
    HostProfile h;
    h.cpu_slots = 80;
    h.busy_slots_mean = 72.0;
    h.seed = 3;
    const CpuSampler sampler;
    const auto t = sampler.sampleJob(h, nullptr, 3600.0);
    EXPECT_NEAR(t.cpu_util.mean(), 0.9, 0.03);
    EXPECT_EQ(t.samples, 360u);
}

TEST(CpuSampler, GpuJobHostFollowsPhases)
{
    JobProfile gpu;
    gpu.active_fraction = 0.5;
    gpu.active_len_median_s = 200.0;
    const CpuSampler sampler;
    const auto t = sampler.sampleJob(gpuHost(), &gpu, 40000.0);
    // Mean busy slots ~ 0.5*4 + 0.5*0.5 = 2.25 of 8 slots.
    EXPECT_NEAR(t.cpu_util.mean(), 2.25 / 8.0, 0.07);
    // The host clearly alternates: min well below max.
    EXPECT_LT(t.cpu_util.min(), 0.15);
    EXPECT_GT(t.cpu_util.max(), 0.4);
}

TEST(CpuSampler, UtilizationBounded)
{
    HostProfile h = gpuHost();
    h.busy_slots_mean = 100.0;  // wants more than its allocation
    const CpuSampler sampler;
    const auto t = sampler.sampleJob(h, nullptr, 600.0);
    EXPECT_LE(t.cpu_util.max(), 1.0);
    EXPECT_NEAR(t.cpu_util.mean(), 1.0, 0.01);  // pinned at the cap
}

TEST(CpuSampler, RssTracksFraction)
{
    const CpuSampler sampler;
    const auto t = sampler.sampleJob(gpuHost(), nullptr, 3600.0);
    EXPECT_NEAR(t.rss_util.mean(), 0.5, 0.02);
    EXPECT_LE(t.rss_util.max(), 1.0);
}

TEST(CpuSampler, SampleCountTracksInterval)
{
    const CpuSampler fast(1.0);
    const CpuSampler slow(60.0);
    const auto a = fast.sampleJob(gpuHost(), nullptr, 600.0);
    const auto b = slow.sampleJob(gpuHost(), nullptr, 600.0);
    EXPECT_EQ(a.samples, 600u);
    EXPECT_EQ(b.samples, 10u);
}

TEST(CpuSampler, DeterministicPerSeed)
{
    const CpuSampler sampler;
    const auto a = sampler.sampleJob(gpuHost(), nullptr, 600.0);
    const auto b = sampler.sampleJob(gpuHost(), nullptr, 600.0);
    EXPECT_DOUBLE_EQ(a.cpu_util.mean(), b.cpu_util.mean());
}

} // namespace
} // namespace aiwc::telemetry
