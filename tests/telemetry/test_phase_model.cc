#include <gtest/gtest.h>

#include <cmath>

#include "aiwc/telemetry/phase_model.hh"

namespace aiwc::telemetry
{
namespace
{

JobProfile
profileWith(double af, double active_median = 60.0)
{
    JobProfile p;
    p.active_fraction = af;
    p.active_len_median_s = active_median;
    p.active_len_sigma = 1.0;
    p.idle_len_sigma = 0.8;
    return p;
}

TEST(PhaseModel, CoversExactDuration)
{
    const JobProfile p = profileWith(0.7);
    const PhaseModel model(p);
    Rng rng(1);
    const auto phases = model.generate(3600.0, rng);
    double total = 0.0;
    for (const auto &ph : phases)
        total += ph.length;
    EXPECT_NEAR(total, 3600.0, 1e-9);
}

TEST(PhaseModel, PhasesAlternate)
{
    const JobProfile p = profileWith(0.5);
    const PhaseModel model(p);
    Rng rng(2);
    const auto phases = model.generate(7200.0, rng);
    for (std::size_t i = 1; i < phases.size(); ++i)
        EXPECT_NE(phases[i].active, phases[i - 1].active);
}

TEST(PhaseModel, AllLengthsPositive)
{
    const JobProfile p = profileWith(0.8);
    const PhaseModel model(p);
    Rng rng(3);
    for (int rep = 0; rep < 20; ++rep) {
        const auto phases = model.generate(600.0, rng);
        ASSERT_FALSE(phases.empty());
        for (const auto &ph : phases)
            EXPECT_GT(ph.length, 0.0);
    }
}

TEST(PhaseModel, RealizedActiveFractionTracksTarget)
{
    // Over many long jobs, the realized active fraction must average
    // near the target (the idle-median correction at work).
    for (double af : {0.2, 0.5, 0.84}) {
        const JobProfile p = profileWith(af);
        const PhaseModel model(p);
        Rng rng(4);
        double acc = 0.0;
        constexpr int reps = 300;
        for (int i = 0; i < reps; ++i) {
            const auto phases = model.generate(40000.0, rng);
            acc += PhaseModel::activeFraction(phases);
        }
        EXPECT_NEAR(acc / reps, af, 0.07) << "af=" << af;
    }
}

TEST(PhaseModel, ExtremeFractionsAreClamped)
{
    const JobProfile hi = profileWith(1.5);
    Rng rng(5);
    const auto phases = PhaseModel(hi).generate(1000.0, rng);
    // Mostly active, no crash.
    EXPECT_GT(PhaseModel::activeFraction(phases), 0.5);

    const JobProfile lo = profileWith(-0.2);
    Rng rng2(6);
    const auto idle = PhaseModel(lo).generate(1000.0, rng2);
    EXPECT_LT(PhaseModel::activeFraction(idle), 0.5);
}

TEST(PhaseModel, ImpliedIdleMedianScalesWithFraction)
{
    const PhaseModel hi(profileWith(0.9));
    const PhaseModel lo(profileWith(0.1));
    EXPECT_LT(hi.impliedIdleMedian(), lo.impliedIdleMedian());
}

TEST(PhaseModel, IntervalCovGrowsWithSigma)
{
    // The Fig. 6b mechanism: heavier-tailed interval lengths yield a
    // larger within-job interval CoV.
    auto cov_for = [](double sigma) {
        JobProfile p;
        p.active_fraction = 0.5;
        p.active_len_median_s = 30.0;
        p.active_len_sigma = sigma;
        p.idle_len_sigma = sigma;
        const PhaseModel model(p);
        Rng rng(7);
        double acc = 0.0;
        int n = 0;
        for (int i = 0; i < 50; ++i) {
            const auto phases = model.generate(30000.0, rng);
            std::vector<double> lens;
            for (const auto &ph : phases)
                if (ph.active)
                    lens.push_back(ph.length);
            if (lens.size() < 3)
                continue;
            double mean = 0.0;
            for (double l : lens)
                mean += l;
            mean /= lens.size();
            double var = 0.0;
            for (double l : lens)
                var += (l - mean) * (l - mean);
            acc += std::sqrt(var / lens.size()) / mean;
            ++n;
        }
        return acc / n;
    };
    EXPECT_LT(cov_for(0.3), cov_for(1.5));
}

TEST(PhaseModel, ActiveFractionOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(PhaseModel::activeFraction({}), 0.0);
}

} // namespace
} // namespace aiwc::telemetry
