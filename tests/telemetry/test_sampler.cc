#include <gtest/gtest.h>

#include "aiwc/telemetry/sampler.hh"

namespace aiwc::telemetry
{
namespace
{

JobProfile
busyProfile(int gpus = 1, int idle = 0)
{
    JobProfile p;
    p.num_gpus = gpus;
    p.idle_gpus = idle;
    p.active_fraction = 0.8;
    p.active_len_median_s = 30.0;
    p.sm_mean = 0.4;
    p.membw_mean = 0.08;
    p.memsize_mean = 0.2;
    p.pcie_tx_mean = 0.3;
    p.pcie_rx_mean = 0.3;
    p.telemetry_seed = 1234;
    return p;
}

const PowerModel power_model;
const MonitoringParams monitoring;

TEST(Sampler, ProducesOneSummaryPerGpu)
{
    const GpuSampler sampler(power_model, monitoring);
    const auto t = sampler.sampleJob(busyProfile(3, 1), 600.0, false);
    EXPECT_EQ(t.per_gpu.size(), 3u);
    EXPECT_GT(t.samples_generated, 0u);
    EXPECT_FALSE(t.detailed);
}

TEST(Sampler, MeanSmNearActiveFractionTimesLevel)
{
    const GpuSampler sampler(power_model, monitoring);
    // Average over several jobs to tame per-job realization noise.
    double acc = 0.0;
    constexpr int reps = 30;
    for (int i = 0; i < reps; ++i) {
        JobProfile p = busyProfile();
        p.telemetry_seed = 1000 + static_cast<std::uint64_t>(i);
        const auto t = sampler.sampleJob(p, 20000.0, false);
        acc += t.per_gpu[0].sm.mean();
    }
    EXPECT_NEAR(acc / reps, 0.8 * 0.4, 0.05);
}

TEST(Sampler, IdleGpusStayQuiet)
{
    const GpuSampler sampler(power_model, monitoring);
    const auto t = sampler.sampleJob(busyProfile(2, 1), 3000.0, false);
    const auto &active = t.per_gpu[0];
    const auto &idle = t.per_gpu[1];
    EXPECT_GT(active.sm.mean(), 0.1);
    EXPECT_LT(idle.sm.mean(), 0.01);
    EXPECT_TRUE(idle.idle());
    EXPECT_FALSE(active.idle());
}

TEST(Sampler, DeterministicForSameSeed)
{
    const GpuSampler sampler(power_model, monitoring);
    const auto a = sampler.sampleJob(busyProfile(), 500.0, false);
    const auto b = sampler.sampleJob(busyProfile(), 500.0, false);
    EXPECT_DOUBLE_EQ(a.per_gpu[0].sm.mean(), b.per_gpu[0].sm.mean());
    EXPECT_DOUBLE_EQ(a.per_gpu[0].power_watts.max(),
                     b.per_gpu[0].power_watts.max());
    EXPECT_EQ(a.samples_generated, b.samples_generated);
}

TEST(Sampler, SaturationFlagsPinTheMax)
{
    JobProfile p = busyProfile();
    p.sat_sm = true;
    p.sat_rx = true;
    const GpuSampler sampler(power_model, monitoring);
    const auto t = sampler.sampleJob(p, 600.0, false);
    EXPECT_DOUBLE_EQ(t.per_gpu[0].sm.max(), 1.0);
    EXPECT_DOUBLE_EQ(t.per_gpu[0].pcie_rx.max(), 1.0);
    // Unflagged resources stay below the bottleneck threshold.
    EXPECT_LT(t.per_gpu[0].membw.max(), 0.995);
    EXPECT_LT(t.per_gpu[0].pcie_tx.max(), 0.995);
}

TEST(Sampler, WithoutFlagsNoResourceSaturates)
{
    const GpuSampler sampler(power_model, monitoring);
    const auto t = sampler.sampleJob(busyProfile(), 2000.0, false);
    EXPECT_LT(t.per_gpu[0].sm.max(), 0.995);
    EXPECT_LT(t.per_gpu[0].memsize.max(), 0.995);
}

TEST(Sampler, DetailedModeFillsPhaseStats)
{
    const GpuSampler sampler(power_model, monitoring);
    const auto t = sampler.sampleJob(busyProfile(), 2000.0, true);
    EXPECT_TRUE(t.detailed);
    EXPECT_GT(t.phases.active_fraction, 0.3);
    EXPECT_GT(t.phases.active_intervals.size(), 3u);
    EXPECT_GT(t.phases.idle_intervals.size(), 1u);
    EXPECT_GT(t.phases.active_sm_cov, 0.0);
}

TEST(Sampler, SummarySampleVolumeIsBounded)
{
    const GpuSampler sampler(power_model, monitoring);
    // A very long job must not blow past the per-GPU budget by much
    // (stochastic rounding + one sample per detailed phase only).
    const auto t =
        sampler.sampleJob(busyProfile(), 90.0 * 3600.0, false);
    EXPECT_LT(t.samples_generated,
              static_cast<std::uint64_t>(
                  monitoring.max_summary_samples * 3));
}

TEST(Sampler, TimeSeriesSinkReceivesSamples)
{
    const GpuSampler sampler(power_model, monitoring);
    TimeSeries series(monitoring.gpu_interval);
    const auto t = sampler.sampleJob(busyProfile(), 60.0, true, &series);
    EXPECT_GT(series.size(), 100u);  // 60 s at ~10 Hz
    EXPECT_EQ(series.size(), t.samples_generated);
    // Power channel present and plausible.
    EXPECT_GT(series.at(0).power_watts, 0.0f);
}

TEST(Sampler, PowerTracksActivity)
{
    JobProfile hot = busyProfile();
    hot.sm_mean = 0.9;
    hot.active_fraction = 0.95;
    JobProfile cold = busyProfile();
    cold.sm_mean = 0.01;
    cold.active_fraction = 0.1;
    cold.telemetry_seed = 77;
    const GpuSampler sampler(power_model, monitoring);
    const auto h = sampler.sampleJob(hot, 2000.0, false);
    const auto c = sampler.sampleJob(cold, 2000.0, false);
    EXPECT_GT(h.per_gpu[0].power_watts.mean(),
              c.per_gpu[0].power_watts.mean() + 30.0);
}

TEST(Sampler, SpoolBytesAccounting)
{
    const GpuSampler sampler(power_model, monitoring);
    const auto t = sampler.sampleJob(busyProfile(), 100.0, false);
    EXPECT_EQ(t.spoolBytes(), t.samples_generated * sizeof(Sample));
}

} // namespace
} // namespace aiwc::telemetry
