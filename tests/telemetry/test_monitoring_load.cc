#include <gtest/gtest.h>

#include "../core/record_builder.hh"

#include "aiwc/telemetry/monitoring_load.hh"

namespace aiwc::telemetry
{
namespace
{

using core::testing::cpuRecord;
using core::testing::gpuRecord;

TEST(MonitoringLoad, RowRateScalesWithGpusAndNodes)
{
    const MonitoringLoadModel model;
    // 1 GPU at 10 Hz + 1 node at 0.1 Hz.
    const auto one = gpuRecord(1, 0, 600.0, 1);
    EXPECT_NEAR(model.rowsPerSecond(one), 10.1, 1e-9);
    // 4 GPUs -> 40 Hz; 16 slots still one node.
    const auto four = gpuRecord(2, 0, 600.0, 4);
    EXPECT_NEAR(model.rowsPerSecond(four), 40.1, 1e-9);
    // CPU job on one whole node: only the 10 s series.
    const auto cpu = cpuRecord(3, 0, 600.0);
    EXPECT_NEAR(model.rowsPerSecond(cpu), 0.1, 1e-9);
}

TEST(MonitoringLoad, DirectPeaksTrackConcurrency)
{
    core::Dataset ds;
    // Two overlapping single-GPU jobs, one disjoint.
    auto a = gpuRecord(1, 0, 1000.0, 1);
    auto b = gpuRecord(2, 0, 1000.0, 1);
    b.start_time = 500.0;
    b.end_time = 1500.0;
    auto c = gpuRecord(3, 0, 100.0, 1);
    c.start_time = 5000.0;
    c.end_time = 5100.0;
    ds.add(a);
    ds.add(b);
    ds.add(c);
    const auto cmp = MonitoringLoadModel().analyze(ds);
    EXPECT_EQ(cmp.direct.peak_streams, 2);
    EXPECT_NEAR(cmp.direct.peak_rows_per_second, 20.2, 1e-9);
}

TEST(MonitoringLoad, SpooledMovesSameBytesInBursts)
{
    core::Dataset ds;
    ds.add(gpuRecord(1, 0, 1000.0, 2));
    const auto cmp = MonitoringLoadModel().analyze(ds);
    EXPECT_NEAR(cmp.direct.total_bytes, cmp.spooled.total_bytes, 1e-6);
    EXPECT_GT(cmp.spooled.largest_burst_bytes, 0.0);
    EXPECT_DOUBLE_EQ(cmp.direct.largest_burst_bytes, 0.0);
}

TEST(MonitoringLoad, ReliefFactorGrowsWithConcurrency)
{
    // Many long concurrent jobs: direct keeps hundreds of streams
    // open; spooling sees only staggered epilog copies.
    core::Dataset ds;
    for (int i = 0; i < 200; ++i) {
        auto r = gpuRecord(static_cast<JobId>(i), 0, 50000.0, 1);
        r.start_time = 10.0 * i;
        r.end_time = 50000.0 + 17.0 * i;  // staggered ends
        ds.add(r);
    }
    const auto cmp = MonitoringLoadModel().analyze(ds);
    EXPECT_EQ(cmp.direct.peak_streams, 200);
    EXPECT_LE(cmp.spooled.peak_streams, 2);
    EXPECT_GT(cmp.metadata_relief_factor, 50.0);
}

TEST(MonitoringLoad, EmptyDataset)
{
    const auto cmp = MonitoringLoadModel().analyze(core::Dataset{});
    EXPECT_EQ(cmp.direct.peak_streams, 0);
    EXPECT_DOUBLE_EQ(cmp.direct.total_bytes, 0.0);
    EXPECT_DOUBLE_EQ(cmp.metadata_relief_factor, 0.0);
}

} // namespace
} // namespace aiwc::telemetry
