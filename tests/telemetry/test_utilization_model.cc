#include <gtest/gtest.h>

#include "aiwc/telemetry/utilization_model.hh"

namespace aiwc::telemetry
{
namespace
{

JobProfile
baseProfile()
{
    JobProfile p;
    p.sm_mean = 0.4;
    p.membw_mean = 0.08;
    p.memsize_mean = 0.2;
    p.pcie_tx_mean = 0.3;
    p.pcie_rx_mean = 0.25;
    p.phase_jitter_sigma = 0.15;
    return p;
}

TEST(UtilizationModel, ActiveLevelsAreBounded)
{
    const JobProfile p = baseProfile();
    const UtilizationModel model(p);
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        const PhaseLevels lv = model.activeLevels(1.0, rng);
        EXPECT_GE(lv.sm, 0.0);
        EXPECT_LE(lv.sm, natural_ceiling);
        EXPECT_LE(lv.membw, natural_ceiling);
        EXPECT_LE(lv.memsize, natural_ceiling);
        EXPECT_LE(lv.tx, natural_ceiling);
        EXPECT_LE(lv.rx, natural_ceiling);
    }
}

TEST(UtilizationModel, PhaseMeansAreUnbiased)
{
    const JobProfile p = baseProfile();
    const UtilizationModel model(p);
    Rng rng(2);
    double sm = 0.0, membw = 0.0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i) {
        const PhaseLevels lv = model.activeLevels(1.0, rng);
        sm += lv.sm;
        membw += lv.membw;
    }
    EXPECT_NEAR(sm / n, p.sm_mean, 0.01);
    EXPECT_NEAR(membw / n, p.membw_mean, 0.005);
}

TEST(UtilizationModel, GpuScaleShiftsLevels)
{
    const JobProfile p = baseProfile();
    const UtilizationModel model(p);
    Rng rng(3);
    double lo = 0.0, hi = 0.0;
    for (int i = 0; i < 20000; ++i) {
        lo += model.activeLevels(0.5, rng).sm;
        hi += model.activeLevels(1.5, rng).sm;
    }
    EXPECT_NEAR(hi / lo, 3.0, 0.15);
}

TEST(UtilizationModel, IdleLevelsQuiesceGpu)
{
    const JobProfile p = baseProfile();
    const UtilizationModel model(p);
    const PhaseLevels lv = model.idleLevels();
    EXPECT_DOUBLE_EQ(lv.sm, 0.0);
    EXPECT_DOUBLE_EQ(lv.membw, 0.0);
    // Allocations persist across idle phases.
    EXPECT_NEAR(lv.memsize, 0.85 * p.memsize_mean, 1e-12);
    EXPECT_LT(lv.tx, 0.01);
}

TEST(UtilizationModel, NoisySampleHandlesEdges)
{
    Rng rng(4);
    EXPECT_DOUBLE_EQ(UtilizationModel::noisySample(0.0, 0.1, rng), 0.0);
    EXPECT_DOUBLE_EQ(UtilizationModel::noisySample(-1.0, 0.1, rng), 0.0);
    for (int i = 0; i < 1000; ++i) {
        const double s = UtilizationModel::noisySample(0.95, 0.3, rng);
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, natural_ceiling);
    }
}

TEST(UtilizationModel, NaturalCeilingBelowSaturationThreshold)
{
    // The bottleneck analyzer uses 0.995: ordinary samples must stay
    // strictly below it so only injected saturation counts.
    EXPECT_LT(natural_ceiling, 0.995);
}

} // namespace
} // namespace aiwc::telemetry
