/**
 * @file
 * Property sweeps over the telemetry sampler: across the whole
 * (active fraction x utilization level) grid the generated summaries
 * must track the analytic expectations the calibration relies on.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "aiwc/telemetry/sampler.hh"

namespace aiwc::telemetry
{
namespace
{

const PowerModel power_model;
const MonitoringParams monitoring;

using GridPoint = std::tuple<double, double>;  // (af, sm_mean)

class SamplerGrid : public ::testing::TestWithParam<GridPoint>
{
};

TEST_P(SamplerGrid, JobMeanTracksActiveFractionTimesLevel)
{
    const auto [af, sm] = GetParam();
    const GpuSampler sampler(power_model, monitoring);
    double acc_sm = 0.0, acc_af = 0.0;
    constexpr int reps = 24;
    for (int i = 0; i < reps; ++i) {
        JobProfile p;
        p.active_fraction = af;
        p.active_len_median_s = 40.0;
        p.sm_mean = sm;
        p.membw_mean = 0.3 * sm;
        p.memsize_mean = 0.15;
        p.telemetry_seed = 5000 + static_cast<std::uint64_t>(i);
        const auto t = sampler.sampleJob(p, 30000.0, true);
        acc_sm += t.per_gpu[0].sm.mean();
        acc_af += t.phases.active_fraction;
    }
    EXPECT_NEAR(acc_af / reps, af, 0.08) << "af=" << af;
    EXPECT_NEAR(acc_sm / reps, af * sm, 0.05 + 0.1 * af * sm)
        << "af=" << af << " sm=" << sm;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SamplerGrid,
    ::testing::Combine(::testing::Values(0.1, 0.5, 0.84, 0.95),
                       ::testing::Values(0.05, 0.2, 0.5, 0.8)));

class SamplerGpuCount : public ::testing::TestWithParam<int>
{
};

TEST_P(SamplerGpuCount, ActiveGpusBalancedIdleGpusSilent)
{
    const int gpus = GetParam();
    JobProfile p;
    p.num_gpus = gpus;
    p.idle_gpus = gpus / 2;
    p.active_fraction = 0.8;
    p.active_len_median_s = 40.0;
    p.sm_mean = 0.4;
    p.membw_mean = 0.1;
    p.memsize_mean = 0.2;
    p.telemetry_seed = 42;
    const GpuSampler sampler(power_model, monitoring);
    const auto t = sampler.sampleJob(p, 20000.0, false);
    ASSERT_EQ(t.per_gpu.size(), static_cast<std::size_t>(gpus));

    // Active GPUs come first, cluster near one another (Fig. 14b).
    const double ref = t.per_gpu[0].sm.mean();
    for (int g = 0; g < p.activeGpus(); ++g) {
        EXPECT_NEAR(t.per_gpu[static_cast<std::size_t>(g)].sm.mean(),
                    ref, 0.30 * ref)
            << "gpu " << g;
    }
    // Idle GPUs are silent (Fig. 14a's pathology).
    for (int g = p.activeGpus(); g < gpus; ++g)
        EXPECT_TRUE(t.per_gpu[static_cast<std::size_t>(g)].idle());
}

INSTANTIATE_TEST_SUITE_P(Counts, SamplerGpuCount,
                         ::testing::Values(2, 4, 8, 16));

class SamplerDuration : public ::testing::TestWithParam<double>
{
};

TEST_P(SamplerDuration, VolumeBoundedAcrossDurations)
{
    JobProfile p;
    p.active_fraction = 0.8;
    p.active_len_median_s = 50.0;
    p.sm_mean = 0.3;
    p.telemetry_seed = 7;
    const GpuSampler sampler(power_model, monitoring);
    const auto t = sampler.sampleJob(p, GetParam(), false);
    EXPECT_GT(t.samples_generated, 0u);
    EXPECT_LT(t.samples_generated,
              static_cast<std::uint64_t>(
                  monitoring.max_summary_samples * 3));
}

INSTANTIATE_TEST_SUITE_P(Durations, SamplerDuration,
                         ::testing::Values(35.0, 600.0, 86400.0,
                                           345600.0));

} // namespace
} // namespace aiwc::telemetry
