#include <gtest/gtest.h>

#include "aiwc/telemetry/collector.hh"

namespace aiwc::telemetry
{
namespace
{

TEST(NodeSpool, OpenAppendDrainCycle)
{
    NodeSpool spool;
    spool.open(1, 0);
    spool.append(1, 0, 1000);
    spool.append(1, 0, 500);
    EXPECT_EQ(spool.nodeOccupancy(0), 1500u);
    EXPECT_EQ(spool.drain(1, 0), 1500u);
    EXPECT_EQ(spool.nodeOccupancy(0), 0u);
    EXPECT_EQ(spool.openStreams(), 0u);
}

TEST(NodeSpool, TracksPeakOccupancy)
{
    NodeSpool spool;
    spool.open(1, 0);
    spool.open(2, 0);
    spool.append(1, 0, 1000);
    spool.append(2, 0, 2000);
    spool.drain(1, 0);
    EXPECT_EQ(spool.peakNodeOccupancy(), 3000u);
    EXPECT_EQ(spool.nodeOccupancy(0), 2000u);
    spool.drain(2, 0);
}

TEST(NodeSpool, NodesAreIndependent)
{
    NodeSpool spool;
    spool.open(1, 0);
    spool.open(1, 1);
    spool.append(1, 0, 100);
    spool.append(1, 1, 200);
    EXPECT_EQ(spool.nodeOccupancy(0), 100u);
    EXPECT_EQ(spool.nodeOccupancy(1), 200u);
}

TEST(EpilogCollector, FullJobLifecycle)
{
    NodeSpool spool;
    EpilogCollector collector(spool);
    collector.onProlog(5, {0, 1});
    collector.recordSamples(5, 1001);  // splits 500/501
    collector.onEpilog(5);
    EXPECT_EQ(collector.centralStoreBytes(), 1001u);
    EXPECT_EQ(collector.jobsCollected(), 1u);
    EXPECT_EQ(spool.openStreams(), 0u);
}

TEST(EpilogCollector, SplitsBytesAcrossNodes)
{
    NodeSpool spool;
    EpilogCollector collector(spool);
    collector.onProlog(9, {0, 1, 2});
    collector.recordSamples(9, 300);
    EXPECT_EQ(spool.nodeOccupancy(0), 100u);
    EXPECT_EQ(spool.nodeOccupancy(1), 100u);
    EXPECT_EQ(spool.nodeOccupancy(2), 100u);
    collector.onEpilog(9);
}

TEST(EpilogCollector, ManyConcurrentJobs)
{
    NodeSpool spool;
    EpilogCollector collector(spool);
    for (JobId j = 0; j < 50; ++j)
        collector.onProlog(j, {static_cast<NodeId>(j % 4)});
    for (JobId j = 0; j < 50; ++j)
        collector.recordSamples(j, 10);
    for (JobId j = 0; j < 50; ++j)
        collector.onEpilog(j);
    EXPECT_EQ(collector.centralStoreBytes(), 500u);
    EXPECT_EQ(collector.jobsCollected(), 50u);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(spool.nodeOccupancy(n), 0u);
}


using CollectorDeath = ::testing::Test;

TEST(CollectorDeath, DoubleOpenPanics)
{
    NodeSpool spool;
    spool.open(1, 0);
    EXPECT_DEATH(spool.open(1, 0), "already open");
}

TEST(CollectorDeath, AppendWithoutOpenPanics)
{
    NodeSpool spool;
    EXPECT_DEATH(spool.append(9, 0, 10), "unopened");
}

TEST(CollectorDeath, EpilogWithoutPrologPanics)
{
    NodeSpool spool;
    EpilogCollector collector(spool);
    EXPECT_DEATH(collector.onEpilog(3), "unmonitored");
}

} // namespace
} // namespace aiwc::telemetry
