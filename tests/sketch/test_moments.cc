#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aiwc/sketch/moments.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::sketch
{
namespace
{

TEST(Moments, MatchesBatchDescriptive)
{
    const std::vector<double> xs = {3.0, 1.5, 4.25, 1.0, 5.5, 9.0, 2.5};
    StreamingMoments m;
    for (double x : xs)
        m.add(x);
    EXPECT_EQ(m.count(), xs.size());
    EXPECT_NEAR(m.mean(), stats::mean(xs), 1e-12);
    EXPECT_NEAR(m.stddev(), stats::stddev(xs), 1e-12);
    EXPECT_NEAR(m.covPercent(), stats::covPercent(xs), 1e-9);
    EXPECT_DOUBLE_EQ(m.min(), 1.0);
    EXPECT_DOUBLE_EQ(m.max(), 9.0);
    EXPECT_NEAR(m.sum(), stats::sum(xs), 1e-12);
}

TEST(Moments, EmptyBehaviour)
{
    const StreamingMoments m;
    EXPECT_EQ(m.count(), 0u);
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    EXPECT_DOUBLE_EQ(m.variance(), 0.0);
    EXPECT_DOUBLE_EQ(m.min(), 0.0);
    EXPECT_DOUBLE_EQ(m.max(), 0.0);
    EXPECT_TRUE(std::isnan(m.covPercent()));
}

TEST(Moments, ZeroMeanCovIsNan)
{
    StreamingMoments m;
    m.add(-2.0);
    m.add(2.0);
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    EXPECT_TRUE(std::isnan(m.covPercent()));
}

TEST(Moments, ChanMergeEqualsSingleStream)
{
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(std::sin(i * 0.37) * 40.0 + 100.0);

    StreamingMoments whole;
    for (double x : xs)
        whole.add(x);

    StreamingMoments a, b, c;
    for (int i = 0; i < 300; ++i)
        a.add(xs[i]);
    for (int i = 300; i < 750; ++i)
        b.add(xs[i]);
    for (int i = 750; i < 1000; ++i)
        c.add(xs[i]);
    a.merge(b);
    a.merge(c);

    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Moments, MergeWithEmptySides)
{
    StreamingMoments full;
    full.add(1.0);
    full.add(3.0);

    StreamingMoments lhs;             // empty += full
    lhs.merge(full);
    EXPECT_EQ(lhs.count(), 2u);
    EXPECT_DOUBLE_EQ(lhs.mean(), 2.0);

    StreamingMoments rhs = full;      // full += empty
    rhs.merge(StreamingMoments{});
    EXPECT_EQ(rhs.count(), 2u);
    EXPECT_DOUBLE_EQ(rhs.mean(), 2.0);
    EXPECT_DOUBLE_EQ(rhs.variance(), full.variance());
}

TEST(Moments, StableAtHighMeanLowVariance)
{
    // The case sum-of-squares accumulators lose: mean^2 ~ 1e18 with
    // variance ~ 1; Welford's centered update keeps full precision.
    StreamingMoments m;
    for (int i = 0; i < 1000; ++i)
        m.add(1.0e9 + (i % 3 - 1));  // values 1e9 - 1, 1e9, 1e9 + 1
    // 334 each of -1/0/+1 around the mean except rounding: exact
    // population variance of the offsets is 667/1000 minus mean^2.
    EXPECT_NEAR(m.variance(), 0.667 - 1e-6, 1e-3);
    EXPECT_GT(m.covPercent(), 0.0);
    EXPECT_LT(m.covPercent(), 1e-4);
}

} // namespace
} // namespace aiwc::sketch
