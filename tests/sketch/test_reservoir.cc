#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "aiwc/base/check.hh"
#include "aiwc/sketch/reservoir.hh"

namespace aiwc::sketch
{
namespace
{

bool
sameItems(const ReservoirSample &a, const ReservoirSample &b)
{
    const auto ia = a.items(), ib = b.items();
    if (ia.size() != ib.size())
        return false;
    for (std::size_t i = 0; i < ia.size(); ++i)
        if (ia[i].key != ib[i].key || ia[i].value != ib[i].value)
            return false;
    return true;
}

TEST(Reservoir, KeepsEverythingUnderCapacity)
{
    ReservoirSample r(8, 42);
    r.add(3, 30.0);
    r.add(1, 10.0);
    r.add(2, 20.0);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.offered(), 3u);
    const auto items = r.items();         // sorted by key
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].key, 1u);
    EXPECT_DOUBLE_EQ(items[0].value, 10.0);
    EXPECT_EQ(items[2].key, 3u);
    EXPECT_EQ(r.values(), (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(Reservoir, SampleIsArrivalOrderIndependent)
{
    ReservoirSample fwd(16, 7), rev(16, 7);
    for (std::uint64_t k = 0; k < 500; ++k)
        fwd.add(k, static_cast<double>(k));
    for (std::uint64_t k = 500; k-- > 0;)
        rev.add(k, static_cast<double>(k));
    EXPECT_EQ(fwd.size(), 16u);
    EXPECT_EQ(fwd.offered(), 500u);
    EXPECT_TRUE(sameItems(fwd, rev));
}

TEST(Reservoir, AnyMergeTreeYieldsTheIdenticalSample)
{
    // Priorities are a pure function of (seed, key), so unlike the KLL
    // sketch the reservoir promises EXACT equality for every sharding,
    // merge order, and merge tree — not merely within-epsilon.
    ReservoirSample whole(8, 3);
    for (std::uint64_t k = 0; k < 300; ++k)
        whole.add(k, static_cast<double>(k) * 0.5);

    auto part = [](std::uint64_t lo, std::uint64_t hi) {
        ReservoirSample s(8, 3);
        for (std::uint64_t k = lo; k < hi; ++k)
            s.add(k, static_cast<double>(k) * 0.5);
        return s;
    };

    ReservoirSample left = part(0, 100);     // (a + b) + c
    left.merge(part(100, 200));
    left.merge(part(200, 300));

    ReservoirSample bc = part(100, 200);     // a + (b + c)
    bc.merge(part(200, 300));
    ReservoirSample right = part(0, 100);
    right.merge(bc);

    ReservoirSample swapped = part(200, 300);  // commuted
    swapped.merge(part(0, 100));
    swapped.merge(part(100, 200));

    EXPECT_TRUE(sameItems(whole, left));
    EXPECT_TRUE(sameItems(whole, right));
    EXPECT_TRUE(sameItems(whole, swapped));
    EXPECT_EQ(left.offered(), 300u);
}

TEST(Reservoir, DifferentSeedsPickDifferentSamples)
{
    ReservoirSample a(8, 1), b(8, 2);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        a.add(k, 0.0);
        b.add(k, 0.0);
    }
    std::vector<std::uint64_t> ka, kb;
    for (const auto &it : a.items())
        ka.push_back(it.key);
    for (const auto &it : b.items())
        kb.push_back(it.key);
    EXPECT_NE(ka, kb);
}

TEST(Reservoir, ContractsOnGeometryAndSeed)
{
    ScopedCheckFailHandler guard;
    EXPECT_THROW(ReservoirSample(0, 1), ContractViolation);
    ReservoirSample a(8, 1), cap(4, 1), seed(8, 2);
    EXPECT_THROW(a.merge(cap), ContractViolation);
    EXPECT_THROW(a.merge(seed), ContractViolation);
}

} // namespace
} // namespace aiwc::sketch
