#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "aiwc/base/check.hh"
#include "aiwc/common/rng.hh"
#include "aiwc/sketch/kll.hh"
#include "aiwc/stats/descriptive.hh"

namespace aiwc::sketch
{
namespace
{

/** 0..n-1 in a seed-determined order (exercises compaction paths). */
std::vector<double>
shuffledRange(int n, std::uint64_t seed)
{
    std::vector<double> xs(n);
    for (int i = 0; i < n; ++i)
        xs[i] = static_cast<double>(i);
    Rng rng(seed);
    for (int i = n - 1; i > 0; --i)
        std::swap(xs[i], xs[rng.below(static_cast<std::uint64_t>(i) + 1)]);
    return xs;
}

TEST(Kll, ExactBelowCompactionThreshold)
{
    KllSketch s(256, 1);
    for (int i = 0; i < 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_EQ(s.count(), 100u);
    EXPECT_EQ(s.retained(), 100u);
    EXPECT_EQ(s.compactions(), 0u);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 99.0);
    EXPECT_NEAR(s.quantile(0.5), 49.0, 1.0);
    EXPECT_DOUBLE_EQ(s.cdf(49.0), 0.5);
}

TEST(Kll, EmptySketchHasNoQuantiles)
{
    const KllSketch s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_TRUE(std::isnan(s.quantile(0.5)));
    EXPECT_TRUE(std::isnan(s.cdf(1.0)));
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
}

TEST(Kll, EmptyAndSingleItemContractIsPinnedDown)
{
    // Regression: epsilonBound()/quantile() used to be undefined on
    // degenerate sketches. Contract now: an uncompacted sketch is
    // exact (bound 0), the empty sketch answers NaN like
    // EmpiricalCdf::quantile, and a single-item sketch returns its
    // item at every level.
    const KllSketch empty;
    EXPECT_DOUBLE_EQ(empty.epsilonBound(), 0.0);
    EXPECT_TRUE(std::isnan(empty.quantile(0.0)));
    EXPECT_TRUE(std::isnan(empty.quantile(0.5)));
    EXPECT_TRUE(std::isnan(empty.quantile(1.0)));

    KllSketch one;
    one.add(42.0);
    EXPECT_DOUBLE_EQ(one.epsilonBound(), 0.0);
    for (double q : {0.0, 0.25, 0.5, 0.75, 1.0})
        EXPECT_DOUBLE_EQ(one.quantile(q), 42.0) << "q = " << q;
    EXPECT_DOUBLE_EQ(one.cdf(41.0), 0.0);
    EXPECT_DOUBLE_EQ(one.cdf(42.0), 1.0);
}

TEST(Kll, EpsilonBoundTurnsOnWithTheFirstCompaction)
{
    KllSketch s(8, 3);
    for (int i = 0; i < 7; ++i)
        s.add(static_cast<double>(i));
    EXPECT_EQ(s.compactions(), 0u);
    EXPECT_DOUBLE_EQ(s.epsilonBound(), 0.0);  // still exact
    s.add(7.0);                               // triggers a compaction
    EXPECT_GT(s.compactions(), 0u);
    EXPECT_GT(s.epsilonBound(), 0.0);
}

TEST(Kll, QuantileLevelContract)
{
    ScopedCheckFailHandler guard;
    KllSketch s;
    s.add(1.0);
    EXPECT_THROW(s.quantile(-0.01), ContractViolation);
    EXPECT_THROW(s.quantile(1.01), ContractViolation);
}

TEST(Kll, GeometryContractOnConstruction)
{
    ScopedCheckFailHandler guard;
    EXPECT_THROW(KllSketch(7, 0), ContractViolation);   // odd
    EXPECT_THROW(KllSketch(4, 0), ContractViolation);   // too small
    EXPECT_NO_THROW(KllSketch(8, 0));
}

TEST(Kll, RankErrorWithinBoundOnLongStream)
{
    const int n = 20000;
    KllSketch s(64, 7);
    for (double x : shuffledRange(n, 11))
        s.add(x);
    EXPECT_EQ(s.count(), static_cast<std::uint64_t>(n));
    EXPECT_LT(s.retained(), 2000u);  // genuinely sublinear
    const double eps = s.epsilonBound();
    EXPECT_GT(eps, 0.0);
    EXPECT_LT(eps, 0.25);
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        // Exact q-quantile of 0..n-1 is q * (n - 1); the sketch's CDF
        // at that value must land within the advertised rank error.
        const double exact = q * (n - 1);
        EXPECT_NEAR(s.cdf(exact), q, eps + 1e-3)
            << "q = " << q;
    }
    EXPECT_DOUBLE_EQ(s.min(), 0.0);           // extremes stay exact
    EXPECT_DOUBLE_EQ(s.max(), n - 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), n - 1.0);
}

TEST(Kll, DeterministicForSameSeedAndOrder)
{
    KllSketch a(32, 5), b(32, 5);
    const auto xs = shuffledRange(5000, 3);
    for (double x : xs) {
        a.add(x);
        b.add(x);
    }
    EXPECT_EQ(a.compactions(), b.compactions());
    EXPECT_EQ(a.retained(), b.retained());
    for (int i = 0; i <= 20; ++i) {
        const double q = i / 20.0;
        EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << "q = " << q;
    }
}

TEST(Kll, MergeRequiresMatchingGeometry)
{
    ScopedCheckFailHandler guard;
    KllSketch a(32, 0), b(64, 0);
    EXPECT_THROW(a.merge(b), ContractViolation);
}

TEST(Kll, MergeCoversUnionOfStreams)
{
    const int n = 8000;
    KllSketch a(64, 9), b(64, 9);
    for (int i = 0; i < n / 2; ++i)
        a.add(static_cast<double>(i));
    for (int i = n / 2; i < n; ++i)
        b.add(static_cast<double>(i));
    a.merge(b);
    EXPECT_EQ(a.count(), static_cast<std::uint64_t>(n));
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), n - 1.0);
    const double eps = a.epsilonBound();
    for (double q : {0.1, 0.5, 0.9})
        EXPECT_NEAR(a.cdf(q * (n - 1)), q, eps + 1e-3);
}

TEST(Kll, MergeAssociativeAndCommutativeWithinEpsilon)
{
    // KLL merge is not bitwise order-independent (compaction coins
    // depend on merge order); the contract is that EVERY merge tree
    // stays within the epsilon rank-error bound of the exact union.
    const int n = 3000;
    auto part = [&](int lo, int hi) {
        KllSketch s(32, 13);
        for (double x : shuffledRange(n, 17))
            if (x >= lo && x < hi)
                s.add(x);
        return s;
    };
    const auto check = [&](const KllSketch &s) {
        EXPECT_EQ(s.count(), static_cast<std::uint64_t>(n));
        const double eps = s.epsilonBound();
        for (double q : {0.05, 0.25, 0.5, 0.75, 0.95})
            EXPECT_NEAR(s.cdf(q * (n - 1)), q, eps + 1e-3);
    };

    KllSketch left = part(0, 1000);            // (a + b) + c
    left.merge(part(1000, 2000));
    left.merge(part(2000, n));
    check(left);

    KllSketch bc = part(1000, 2000);           // a + (b + c)
    bc.merge(part(2000, n));
    KllSketch right = part(0, 1000);
    right.merge(bc);
    check(right);

    KllSketch swapped = part(2000, n);         // reversed order
    swapped.merge(part(1000, 2000));
    swapped.merge(part(0, 1000));
    check(swapped);
}

TEST(Kll, BytesBoundedWhileStreamGrows)
{
    KllSketch s(64, 1);
    for (int i = 0; i < 1000; ++i)
        s.add(static_cast<double>(i % 97));
    const std::size_t at_1k = s.bytes();
    for (int i = 0; i < 99000; ++i)
        s.add(static_cast<double>(i % 89));
    // 100x the stream, only O(log) extra levels' worth of memory.
    EXPECT_LE(s.bytes(), at_1k * 3);
}

} // namespace
} // namespace aiwc::sketch
