#include <gtest/gtest.h>

#include <vector>

#include "aiwc/base/check.hh"
#include "aiwc/sketch/heavy_hitters.hh"

namespace aiwc::sketch
{
namespace
{

TEST(HeavyHitters, ExactUnderCapacity)
{
    HeavyHitters hh(8);
    hh.add(10, 5.0);
    hh.add(20, 1.0);
    hh.add(10, 2.5);
    EXPECT_EQ(hh.size(), 2u);
    EXPECT_DOUBLE_EQ(hh.totalWeight(), 8.5);
    const auto top = hh.topK(8);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].key, 10u);
    EXPECT_DOUBLE_EQ(top[0].count, 7.5);
    EXPECT_DOUBLE_EQ(top[0].error, 0.0);  // no eviction, exact counts
    EXPECT_EQ(top[1].key, 20u);
}

TEST(HeavyHitters, TopKOrderingBreaksTiesOnKey)
{
    HeavyHitters hh(8);
    hh.add(7, 3.0);
    hh.add(3, 3.0);
    hh.add(5, 9.0);
    const auto top = hh.topK(3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].key, 5u);             // heaviest first
    EXPECT_EQ(top[1].key, 3u);             // tie -> smaller key first
    EXPECT_EQ(top[2].key, 7u);
}

TEST(HeavyHitters, EvictionIsDeterministicAndBounded)
{
    HeavyHitters hh(2);
    hh.add(5, 1.0);
    hh.add(9, 1.0);
    hh.add(3, 1.0);  // evicts the min-count entry with smallest key: 5
    const auto top = hh.topK(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].key, 3u);             // inherits the floor
    EXPECT_DOUBLE_EQ(top[0].count, 2.0);   // floor 1 + weight 1
    EXPECT_DOUBLE_EQ(top[0].error, 1.0);   // overestimate bound
    EXPECT_EQ(top[1].key, 9u);
    EXPECT_DOUBLE_EQ(hh.totalWeight(), 3.0);  // total unaffected
}

TEST(HeavyHitters, TrueHeavyKeySurvivesChurn)
{
    // Key 1 carries half the stream weight; 100 light keys churn the
    // other slots. Space-saving guarantees any key above total/capacity
    // is retained with error at most total/capacity.
    HeavyHitters hh(8);
    for (int round = 0; round < 50; ++round) {
        hh.add(1, 2.0);
        hh.add(static_cast<std::uint64_t>(100 + round), 1.0);
        hh.add(static_cast<std::uint64_t>(200 + round), 1.0);
    }
    const double total = hh.totalWeight();
    EXPECT_DOUBLE_EQ(total, 200.0);
    const auto top = hh.topK(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].key, 1u);
    EXPECT_GE(top[0].count, 100.0);                    // never undercounts
    EXPECT_LE(top[0].count, 100.0 + total / 8.0);      // bounded over
    EXPECT_LE(top[0].error, total / 8.0);
}

TEST(HeavyHitters, MergeSumsExactlyUnderCapacity)
{
    HeavyHitters a(8), b(8);
    a.add(1, 4.0);
    a.add(2, 1.0);
    b.add(1, 6.0);
    b.add(3, 2.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.totalWeight(), 13.0);
    const auto top = a.topK(8);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].key, 1u);
    EXPECT_DOUBLE_EQ(top[0].count, 10.0);
    EXPECT_DOUBLE_EQ(top[0].error, 0.0);
}

TEST(HeavyHitters, MergeShrinksBackToCapacity)
{
    HeavyHitters a(4), b(4);
    for (std::uint64_t k = 0; k < 4; ++k)
        a.add(k, static_cast<double>(10 * (k + 1)));
    for (std::uint64_t k = 100; k < 104; ++k)
        b.add(k, 5.0);
    a.merge(b);
    EXPECT_LE(a.size(), 4u);
    EXPECT_DOUBLE_EQ(a.totalWeight(), 120.0);  // exact through shrink
    // The heaviest pre-merge key must survive the Misra-Gries shrink
    // with its true weight inside [count, count + error].
    const auto top = a.topK(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].key, 3u);
    EXPECT_LE(top[0].count, 40.0 + 1e-12);
    EXPECT_GE(top[0].count + top[0].error, 40.0 - 1e-12);
}

TEST(HeavyHitters, ErrorNeverExceedsCountAfterDeepMergeTrees)
{
    // Regression: merge used to sum the per-shard error allowances
    // without bound, so after a deep merge tree (every level forcing a
    // Misra-Gries shrink) `count - error` could go negative — a
    // vacuous lower bound that consumers subtracting it would render
    // as negative weight. Build a 16-leaf binary merge tree over
    // overflowing sketches and assert the invariant at every level.
    constexpr std::size_t capacity = 4;
    auto leaf = [&](std::uint64_t base) {
        HeavyHitters s(capacity);
        // 3 * capacity distinct keys: every leaf already churns.
        for (std::uint64_t k = 0; k < 3 * capacity; ++k)
            s.add(base + k, 1.0 + static_cast<double>(k % 5));
        return s;
    };
    std::vector<HeavyHitters> level;
    for (std::uint64_t i = 0; i < 16; ++i)
        level.push_back(leaf(i * 100));
    while (level.size() > 1) {
        std::vector<HeavyHitters> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            level[i].merge(level[i + 1]);
            for (const auto &e : level[i].topK(capacity)) {
                EXPECT_LE(e.error, e.count)
                    << "key " << e.key << " at width " << level.size();
                EXPECT_GE(e.count - e.error, 0.0);
            }
            next.push_back(std::move(level[i]));
        }
        level = std::move(next);
    }
    // The surviving root still accounts for the full stream weight.
    EXPECT_DOUBLE_EQ(level.front().totalWeight(),
                     16.0 * (1.0 + 2.0 + 3.0 + 4.0 + 5.0 + 1.0 +
                             2.0 + 3.0 + 4.0 + 5.0 + 1.0 + 2.0));
}

TEST(HeavyHitters, ContractsOnCapacityAndMergeGeometry)
{
    ScopedCheckFailHandler guard;
    EXPECT_THROW(HeavyHitters(0), ContractViolation);
    HeavyHitters a(4), b(8);
    EXPECT_THROW(a.merge(b), ContractViolation);
}

} // namespace
} // namespace aiwc::sketch
