/**
 * @file
 * Sweep runner and frontier report tests: cell layout, Pareto
 * dominance, thread-count byte-identity, and a golden frontier fixture
 * that pins the aiwc-scenario-frontier-v1 bytes — any accidental
 * change to the engine, the typing draw, or the JSON writer shows up
 * as a golden diff here before it shows up as a broken CI digest.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "aiwc/common/parallel.hh"
#include "aiwc/scenario/runner.hh"

#include "../core/record_builder.hh"

namespace aiwc::scenario
{
namespace
{

using core::testing::cpuRecord;
using core::testing::gpuRecord;

CellResult
cellAt(double joules, double violation_rate)
{
    CellResult cell;
    cell.stats.joules = joules;
    cell.stats.violation_rate = violation_rate;
    return cell;
}

TEST(ParetoFrontier, KeepsOnlyUndominatedCells)
{
    // (10, 0.5) and (20, 0.1) trade off; (30, 0.6) is dominated by both.
    const std::vector<CellResult> cells = {
        cellAt(20.0, 0.1), cellAt(30.0, 0.6), cellAt(10.0, 0.5)};
    const std::vector<std::size_t> frontier = paretoFrontier(cells);
    ASSERT_EQ(frontier.size(), 2u);
    // Sorted by joules: cell 2 (10 J) before cell 0 (20 J).
    EXPECT_EQ(frontier[0], 2u);
    EXPECT_EQ(frontier[1], 0u);
}

TEST(ParetoFrontier, ExactTiesKeepTheEarliestCell)
{
    const std::vector<CellResult> cells = {
        cellAt(10.0, 0.5), cellAt(10.0, 0.5), cellAt(10.0, 0.5)};
    const std::vector<std::size_t> frontier = paretoFrontier(cells);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0], 0u);
}

TEST(ParetoFrontier, SingleCellIsAlwaysOnTheFrontier)
{
    EXPECT_EQ(paretoFrontier({cellAt(5.0, 1.0)}).size(), 1u);
    EXPECT_TRUE(paretoFrontier({}).empty());
}

/** A small deterministic dataset: ids fixed, shapes varied. */
core::Dataset
sweepDataset()
{
    std::vector<core::JobRecord> records;
    for (std::uint32_t i = 1; i <= 30; ++i) {
        if (i % 3 == 0)
            records.push_back(
                gpuRecord(i, 500 + i, 300.0 + 20.0 * i, 1 + i % 2));
        else
            records.push_back(cpuRecord(i, 400 + i, 60.0 + 10.0 * i));
    }
    return core::Dataset(std::move(records));
}

ScenarioSpec
sweepSpec()
{
    ScenarioSpec spec;
    spec.name = "runner-test";
    MachineClassSpec big;
    big.name = "big";
    big.count = 16;
    big.cores = 96;
    big.memory_gb = 384.0;
    big.gpus = 2;
    big.gpu_tdp_watts = 300.0;
    MachineClassSpec small;
    small.name = "small";
    small.count = 4;
    small.cores = 32;
    small.memory_gb = 128.0;
    small.cpu = CpuIsa::Arm;
    spec.machines = {big, small};
    return spec;
}

TEST(Runner, CellLayoutIsClassMajorThenMixThenPolicy)
{
    const ScenarioRunner runner(sweepSpec(), {});
    const GreedyPackPolicy greedy;
    const LoadBalancePolicy balance;
    const std::vector<const SchedulingPolicy *> policies{&greedy, &balance};
    const std::vector<TaskMix> mixes = {defaultTaskMixes()[0],
                                        defaultTaskMixes()[1]};
    const FrontierReport report =
        runner.sweep(sweepDataset(), mixes, policies);
    ASSERT_EQ(report.cells.size(), 8u);  // 2 classes x 2 mixes x 2 policies
    EXPECT_EQ(report.scenario, "runner-test");
    // i = (cls * n_mix + mix) * n_pol + pol.
    EXPECT_EQ(report.cells[0].machine_class, "big");
    EXPECT_EQ(report.cells[0].task_mix, "balanced");
    EXPECT_EQ(report.cells[0].policy, "greedy-pack");
    EXPECT_EQ(report.cells[1].policy, "load-balance");
    EXPECT_EQ(report.cells[2].task_mix, "web_heavy");
    EXPECT_EQ(report.cells[4].machine_class, "small");
    for (const CellResult &cell : report.cells)
        EXPECT_EQ(cell.stats.tasks, 30u);
    // Frontier indices are valid and sorted by joules.
    ASSERT_FALSE(report.frontier.empty());
    for (std::size_t i = 1; i < report.frontier.size(); ++i) {
        EXPECT_LT(report.frontier[i], report.cells.size());
        EXPECT_LE(report.cells[report.frontier[i - 1]].stats.joules,
                  report.cells[report.frontier[i]].stats.joules);
    }
}

TEST(Runner, OverlayIsSharedAcrossPolicySiblings)
{
    SweepOptions options;
    options.min_overlay_gpu_jobs = 1;
    const ScenarioRunner runner(sweepSpec(), options);
    const GreedyPackPolicy greedy;
    const LoadBalancePolicy balance;
    const std::vector<const SchedulingPolicy *> policies{&greedy, &balance};
    const std::vector<TaskMix> mixes = {defaultTaskMixes()[2]};  // ai_heavy
    const FrontierReport report =
        runner.sweep(sweepDataset(), mixes, policies);
    ASSERT_EQ(report.cells.size(), 4u);
    // "big" has GPUs: its overlay computes and both policies carry it.
    EXPECT_TRUE(report.cells[0].overlay.computed);
    EXPECT_EQ(report.cells[0].overlay.computed,
              report.cells[1].overlay.computed);
    EXPECT_DOUBLE_EQ(report.cells[0].overlay.multi_tier_cost_saving,
                     report.cells[1].overlay.multi_tier_cost_saving);
    // "small" has no GPUs: overlay stays un-computed.
    EXPECT_FALSE(report.cells[2].overlay.computed);
}

TEST(Runner, ReportIsByteIdenticalAcrossThreadCounts)
{
    const ScenarioRunner runner(sweepSpec(), {});
    const GreedyPackPolicy greedy;
    const LoadBalancePolicy balance;
    const EnergyFirstPolicy energy;
    const std::vector<const SchedulingPolicy *> policies{&greedy, &balance,
                                                         &energy};
    const std::vector<TaskMix> mixes = defaultTaskMixes();

    setGlobalThreadCount(1);
    const std::string serial =
        runner.sweep(sweepDataset(), mixes, policies).toJson();
    setGlobalThreadCount(8);
    const std::string parallel =
        runner.sweep(sweepDataset(), mixes, policies).toJson();
    EXPECT_EQ(serial, parallel);
}

TEST(Runner, SyntheticSweepCollapsesTheMixAxis)
{
    ScenarioSpec spec = sweepSpec();
    TaskClassSpec cls;
    cls.name = "t";
    cls.start_time = 0.0;
    cls.end_time = 300.0;
    cls.inter_arrival = 10.0;
    cls.expected_runtime = 30.0;
    cls.cores = 2;
    cls.memory_gb = 2.0;
    spec.tasks.push_back(cls);
    const ScenarioRunner runner(spec, {});
    const GreedyPackPolicy greedy;
    const std::vector<const SchedulingPolicy *> policies{&greedy};
    const FrontierReport report = runner.sweepSynthetic(policies);
    ASSERT_EQ(report.cells.size(), 2u);  // 2 classes x 1 policy
    EXPECT_EQ(report.cells[0].task_mix, "spec");
    EXPECT_GT(report.cells[0].stats.finished, 0u);
}

TEST(Runner, JsonCarriesTheSchemaAndWaitBlocks)
{
    const ScenarioRunner runner(sweepSpec(), {});
    const GreedyPackPolicy greedy;
    const std::vector<const SchedulingPolicy *> policies{&greedy};
    const std::vector<TaskMix> mixes = {defaultTaskMixes()[0]};
    const FrontierReport report =
        runner.sweep(sweepDataset(), mixes, policies);
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\":\"aiwc-scenario-frontier-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"latency_sensitive\""), std::string::npos);
    EXPECT_NE(json.find("\"batch\""), std::string::npos);
    EXPECT_NE(json.find("\"scavenger\""), std::string::npos);
    EXPECT_NE(json.find("\"frontier\":["), std::string::npos);
    EXPECT_NE(json.find("\"overlay\""), std::string::npos);

    std::ostringstream table;
    report.printTable(table);
    EXPECT_NE(table.str().find("Frontier"), std::string::npos);
    EXPECT_NE(table.str().find("greedy-pack"), std::string::npos);
}

// The golden fixture: one tiny cell, bytes pinned. After an
// *intentional* model change, copy the actual JSON from the EXPECT_EQ
// failure diff into the golden string below.
TEST(Runner, GoldenFrontierBytes)
{
    ScenarioSpec spec;
    spec.name = "golden";
    MachineClassSpec cls;
    cls.name = "node";
    cls.count = 2;
    cls.cores = 8;
    cls.memory_gb = 64.0;
    spec.machines = {cls};
    SweepOptions options;
    options.seed = 7;
    options.machines_per_cell = 2;
    options.planner_overlays = false;
    const ScenarioRunner runner(spec, options);

    std::vector<core::JobRecord> records;
    records.push_back(cpuRecord(1, 401, 120.0));
    records.push_back(cpuRecord(2, 402, 240.0));
    records.push_back(cpuRecord(3, 403, 360.0));
    // Shrink the shapes so they fit the 8-core golden node.
    for (core::JobRecord &r : records) {
        r.cpu_slots = 4;
        r.ram_gb = 16.0;
    }
    const core::Dataset ds(std::move(records));

    const GreedyPackPolicy greedy;
    const std::vector<const SchedulingPolicy *> policies{&greedy};
    const std::vector<TaskMix> mixes = {defaultTaskMixes()[0]};
    setGlobalThreadCount(1);
    const std::string json = runner.sweep(ds, mixes, policies).toJson();

    const std::string golden =
        R"({"schema":"aiwc-scenario-frontier-v1","scenario":"golden",)"
        R"("seed":7,"cells":[{"machine_class":"node","task_mix":"balanced",)"
        R"("policy":"greedy-pack","tasks":3,"finished":3,"dropped":0,)"
        R"("migrations":0,"wakes":2,"sla_violations":0,"violation_rate":0,)"
        R"("joules":1.356e+05,"kwh":0.03766666666666667,)"
        R"("makespan_s":4.6e+02,"mean_utilization":0.4891304347826087,)"
        R"("waits":{"latency_sensitive":{"tasks":1,"p50":1e+01,"p95":1e+01,)"
        R"("p99":1e+01},"batch":{"tasks":0,"p50":0,"p95":0,"p99":0},)"
        R"("scavenger":{"tasks":2,"p50":1e+01,"p95":1e+01,"p99":1e+01}},)"
        R"("overlay":{"computed":false,"power_cap_throughput_gain":0,)"
        R"("colocation_gpu_hours_saved":0,"multi_tier_cost_saving":0}}],)"
        R"("frontier":[0]})";
    EXPECT_EQ(json, golden);
}

} // namespace
} // namespace aiwc::scenario
