/**
 * @file
 * Cell-engine tests: completion accounting, SLA-violation semantics
 * (including the dropped-task rule), wake/migration counting, wait
 * quantiles, and run-to-run determinism. The engine is the serial
 * deterministic core the whole sweep's byte-identity rests on.
 */

#include <gtest/gtest.h>

#include "aiwc/scenario/engine.hh"

namespace aiwc::scenario
{
namespace
{

MachineClassSpec
engineClass()
{
    MachineClassSpec cls;
    cls.name = "cell";
    cls.cores = 8;
    cls.memory_gb = 64.0;
    cls.s_state_watts = {100.0, 5.0, 0.0};
    cls.s_wake_seconds = {0.0, 2.0, 10.0};
    cls.p_state_watts = {10.0, 6.0};
    cls.c_state_watts = {1.0, 0.0};
    cls.mips = {1000.0, 500.0};
    normalize(cls);
    return cls;
}

std::vector<Task>
steadyTasks(int n, Seconds gap = 10.0, Seconds runtime = 30.0)
{
    std::vector<Task> tasks(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Task &t = tasks[static_cast<std::size_t>(i)];
        t.id = static_cast<std::uint32_t>(i);
        t.arrival = gap * i;
        t.expected_runtime = runtime;
        t.cores = 2;
        t.memory_gb = 4.0;
        t.sla = SlaClass::Batch;
    }
    return tasks;
}

TEST(Engine, EveryTaskFinishesOnAnAmpleFleet)
{
    const MachineClassSpec cls = engineClass();
    const LoadBalancePolicy policy;
    const CellStats stats = simulateCell(cls, 4, steadyTasks(20), policy);
    EXPECT_EQ(stats.tasks, 20u);
    EXPECT_EQ(stats.finished, 20u);
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.sla_violations, 0u);
    EXPECT_DOUBLE_EQ(stats.violation_rate, 0.0);
    EXPECT_GT(stats.makespan, 0.0);
    EXPECT_GT(stats.joules, 0.0);
    EXPECT_GT(stats.mean_utilization, 0.0);
    EXPECT_LE(stats.mean_utilization, 1.0);
    // Load-balance keeps machines awake: wait should be near zero.
    EXPECT_EQ(stats.waits[static_cast<std::size_t>(SlaClass::Batch)].tasks,
              20u);
}

TEST(Engine, RunTimeFollowsTheSpeedModel)
{
    const MachineClassSpec cls = engineClass();
    const LoadBalancePolicy policy;
    std::vector<Task> one = steadyTasks(1);
    one[0].expected_runtime = 100.0;
    const CellStats stats = simulateCell(cls, 1, one, policy);
    // One task at P0 (1000 MIPS = reference): makespan == runtime.
    EXPECT_NEAR(stats.makespan, 100.0, 1e-9);
}

TEST(Engine, IsaMismatchSlowsCpuTasks)
{
    MachineClassSpec cls = engineClass();
    cls.cpu = CpuIsa::Arm;
    const LoadBalancePolicy policy;
    std::vector<Task> one = steadyTasks(1);
    one[0].expected_runtime = 100.0;
    one[0].preferred_isa = CpuIsa::X86;
    const CellStats stats = simulateCell(cls, 1, one, policy);
    EXPECT_NEAR(stats.makespan, 125.0, 1e-9);  // 1.25x penalty
}

TEST(Engine, GpuTasksScaleByRelativeSpeed)
{
    MachineClassSpec cls = engineClass();
    cls.gpus = 2;
    cls.gpu_relative_speed = 0.5;
    const LoadBalancePolicy policy;
    std::vector<Task> one = steadyTasks(1);
    one[0].expected_runtime = 100.0;
    one[0].gpus = 1;
    const CellStats stats = simulateCell(cls, 1, one, policy);
    EXPECT_NEAR(stats.makespan, 200.0, 1e-9);  // half-speed GPU
}

TEST(Engine, DroppedNonScavengerTasksCountAsViolations)
{
    const MachineClassSpec cls = engineClass();  // 8 cores
    const LoadBalancePolicy policy;
    std::vector<Task> tasks = steadyTasks(4);
    tasks[1].cores = 4096;  // can never fit: dropped, batch SLA
    tasks[2].cores = 4096;  // dropped, scavenger: no violation
    tasks[2].sla = SlaClass::Scavenger;
    const CellStats stats = simulateCell(cls, 2, tasks, policy);
    EXPECT_EQ(stats.finished, 2u);
    EXPECT_EQ(stats.dropped, 2u);
    EXPECT_EQ(stats.sla_violations, 1u);
    // Rate is over settled (finished + dropped) tasks, not finished.
    EXPECT_DOUBLE_EQ(stats.violation_rate, 0.25);
}

TEST(Engine, AllDroppedCellIsNotSlaPerfect)
{
    MachineClassSpec cls = engineClass();
    cls.cores = 1;
    cls.memory_gb = 0.25;
    const GreedyPackPolicy policy;
    const CellStats stats = simulateCell(cls, 2, steadyTasks(10), policy);
    EXPECT_EQ(stats.finished, 0u);
    EXPECT_EQ(stats.dropped, 10u);
    // A cell that refuses its whole workload must not look perfect on
    // the frontier: every non-scavenger drop violates.
    EXPECT_DOUBLE_EQ(stats.violation_rate, 1.0);
}

TEST(Engine, SleepingPolicyPaysWakesButStillFinishes)
{
    const MachineClassSpec cls = engineClass();
    const GreedyPackPolicy policy;
    const CellStats stats = simulateCell(cls, 2, steadyTasks(10), policy);
    EXPECT_EQ(stats.finished, 10u);
    EXPECT_GE(stats.wakes, 1u);  // fleet starts asleep under greedy
}

TEST(Engine, GreedyUsesLessEnergyThanLoadBalanceOnSparseLoad)
{
    const MachineClassSpec cls = engineClass();
    const std::vector<Task> tasks = steadyTasks(6, 120.0, 20.0);
    const CellStats greedy =
        simulateCell(cls, 8, tasks, GreedyPackPolicy());
    const CellStats balance =
        simulateCell(cls, 8, tasks, LoadBalancePolicy());
    EXPECT_EQ(greedy.finished, 6u);
    EXPECT_EQ(balance.finished, 6u);
    // Eight mostly-idle awake machines must burn more than a fleet
    // that sleeps everything it is not using.
    EXPECT_LT(greedy.joules, balance.joules);
}

TEST(Engine, ConsolidationPolicyMigrates)
{
    const MachineClassSpec cls = engineClass();
    // Construct a drainable layout: three short tasks and one long one
    // pack machine 0; a wide long task lands on machine 1. Once the
    // short work finishes, machine 0 runs one task at 25% utilization
    // and the consolidation pass moves it onto the busier machine 1.
    const EnergyFirstPolicy policy(200.0, 0.9);
    std::vector<Task> tasks = steadyTasks(5, 0.0, 100.0);
    tasks[1].cores = 4;
    tasks[1].expected_runtime = 1000.0;
    tasks[4].expected_runtime = 1000.0;
    const CellStats stats = simulateCell(cls, 2, tasks, policy);
    EXPECT_EQ(stats.finished, 5u);
    EXPECT_GE(stats.migrations, 1u);
}

TEST(Engine, DeterministicAcrossRuns)
{
    const MachineClassSpec cls = engineClass();
    const EnergyFirstPolicy policy;
    const std::vector<Task> tasks = steadyTasks(50, 3.0, 45.0);
    const CellStats a = simulateCell(cls, 3, tasks, policy);
    const CellStats b = simulateCell(cls, 3, tasks, policy);
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.wakes, b.wakes);
    EXPECT_EQ(a.sla_violations, b.sla_violations);
    EXPECT_EQ(a.joules, b.joules);  // bit-exact, not just close
    EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Engine, MachinelessScenarioIsTotal)
{
    ScenarioSpec spec;  // no machine classes at all
    const LoadBalancePolicy policy;
    std::vector<Task> tasks = steadyTasks(4);
    tasks[3].sla = SlaClass::Scavenger;
    const CellStats stats = simulateFleet(spec, tasks, policy);
    EXPECT_EQ(stats.tasks, 4u);
    EXPECT_EQ(stats.dropped, 4u);
    EXPECT_EQ(stats.sla_violations, 3u);
    EXPECT_DOUBLE_EQ(stats.violation_rate, 0.75);
}

TEST(Engine, HeterogeneousFleetUsesEveryClass)
{
    ScenarioSpec spec;
    MachineClassSpec big = engineClass();
    big.name = "big";
    big.count = 1;
    MachineClassSpec small = engineClass();
    small.name = "small";
    small.count = 1;
    small.cores = 2;
    spec.machines = {big, small};
    const LoadBalancePolicy policy;
    const CellStats stats = simulateFleet(spec, steadyTasks(16), policy);
    EXPECT_EQ(stats.finished, 16u);
}

} // namespace
} // namespace aiwc::scenario
