/**
 * @file
 * Task-stream derivation tests: the typing draw must be a pure
 * function of (record content, mix, seed) — independent of record
 * order — and the synthetic expansion must be deterministic and
 * bounded. This is the property the CSV-vs-binary report identity
 * rests on.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "aiwc/scenario/workload.hh"

#include "../core/record_builder.hh"

namespace aiwc::scenario
{
namespace
{

using core::testing::cpuRecord;
using core::testing::gpuRecord;

core::Dataset
sampleDataset()
{
    std::vector<core::JobRecord> records;
    for (std::uint32_t i = 1; i <= 40; ++i) {
        if (i % 3 == 0)
            records.push_back(gpuRecord(i, 500 + i, 600.0 + i, 1 + i % 2));
        else
            records.push_back(cpuRecord(i, 400 + i, 120.0 + i));
    }
    return core::Dataset(std::move(records));
}

TEST(Workload, DefaultMixesAreTheFiveCanonicalOnes)
{
    const std::vector<TaskMix> mixes = defaultTaskMixes();
    ASSERT_EQ(mixes.size(), 5u);
    EXPECT_EQ(mixes[0].name, "balanced");
    EXPECT_EQ(mixes[1].name, "web_heavy");
    EXPECT_EQ(mixes[2].name, "ai_heavy");
    EXPECT_EQ(mixes[3].name, "stream_rt");
    EXPECT_EQ(mixes[4].name, "hpc_batch");
    for (const TaskMix &mix : mixes) {
        double total = 0.0;
        for (double w : mix.weights)
            total += w;
        EXPECT_NEAR(total, 1.0, 1e-9) << mix.name;
    }
}

TEST(Workload, DefaultSlaAndIsaMapping)
{
    EXPECT_EQ(defaultSlaFor(TaskType::Web), SlaClass::LatencySensitive);
    EXPECT_EQ(defaultSlaFor(TaskType::Stream), SlaClass::LatencySensitive);
    EXPECT_EQ(defaultSlaFor(TaskType::Ai), SlaClass::Batch);
    EXPECT_EQ(defaultSlaFor(TaskType::Hpc), SlaClass::Batch);
    EXPECT_EQ(defaultSlaFor(TaskType::Crypto), SlaClass::Scavenger);
    EXPECT_EQ(defaultIsaFor(TaskType::Hpc), CpuIsa::Power);
    EXPECT_EQ(defaultIsaFor(TaskType::Crypto), CpuIsa::Arm);
}

TEST(Workload, TasksFromDatasetIsDeterministic)
{
    const core::Dataset ds = sampleDataset();
    const TaskMix mix = defaultTaskMixes()[0];
    const std::vector<Task> a = tasksFromDataset(ds, mix, 2022);
    const std::vector<Task> b = tasksFromDataset(ds, mix, 2022);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].type, b[i].type);
        EXPECT_EQ(a[i].sla, b[i].sla);
        EXPECT_DOUBLE_EQ(a[i].expected_runtime, b[i].expected_runtime);
    }
}

TEST(Workload, TypingIsIndependentOfRecordOrder)
{
    const TaskMix mix = defaultTaskMixes()[0];
    const std::vector<Task> forward =
        tasksFromDataset(sampleDataset(), mix, 2022);

    core::Dataset ds = sampleDataset();
    std::vector<core::JobRecord> reversed(ds.records().begin(),
                                          ds.records().end());
    std::reverse(reversed.begin(), reversed.end());
    const std::vector<Task> backward =
        tasksFromDataset(core::Dataset(std::move(reversed)), mix, 2022);

    // Same records, any order: identical sorted task streams.
    ASSERT_EQ(forward.size(), backward.size());
    for (std::size_t i = 0; i < forward.size(); ++i) {
        EXPECT_EQ(forward[i].id, backward[i].id);
        EXPECT_EQ(forward[i].type, backward[i].type);
    }
}

TEST(Workload, SeedChangesTheDraw)
{
    const core::Dataset ds = sampleDataset();
    const TaskMix mix = defaultTaskMixes()[0];
    const std::vector<Task> a = tasksFromDataset(ds, mix, 1);
    const std::vector<Task> b = tasksFromDataset(ds, mix, 2);
    ASSERT_EQ(a.size(), b.size());
    bool any_different = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_different = any_different || a[i].type != b[i].type;
    EXPECT_TRUE(any_different);
}

TEST(Workload, DegenerateMixDrawsOnlyThatType)
{
    const core::Dataset ds = sampleDataset();
    TaskMix mix;
    mix.name = "all-crypto";
    mix.weights = {0.0, 0.0, 1.0, 0.0, 0.0};
    for (const Task &t : tasksFromDataset(ds, mix, 7)) {
        EXPECT_EQ(t.type, TaskType::Crypto);
        EXPECT_EQ(t.sla, SlaClass::Scavenger);
    }
}

TEST(Workload, NegativeWeightsAreIgnored)
{
    const core::Dataset ds = sampleDataset();
    TaskMix mix;
    mix.name = "hostile";
    mix.weights = {-5.0, 1.0, -3.0, 0.0, 0.0};
    for (const Task &t : tasksFromDataset(ds, mix, 7))
        EXPECT_EQ(t.type, TaskType::Ai);
}

TEST(Workload, TasksCarryTheRecordShape)
{
    std::vector<core::JobRecord> records;
    records.push_back(gpuRecord(9, 500, 3600.0, 2));
    const std::vector<Task> tasks = tasksFromDataset(
        core::Dataset(std::move(records)), defaultTaskMixes()[0], 2022);
    ASSERT_EQ(tasks.size(), 1u);
    EXPECT_EQ(tasks[0].id, 9u);
    EXPECT_EQ(tasks[0].gpus, 2);
    EXPECT_EQ(tasks[0].cores, 8);
    EXPECT_DOUBLE_EQ(tasks[0].memory_gb, 32.0);
    EXPECT_DOUBLE_EQ(tasks[0].expected_runtime, 3600.0);
}

TEST(Workload, TasksFromSpecIsDeterministicAndSorted)
{
    ScenarioSpec spec;
    TaskClassSpec cls;
    cls.name = "t";
    cls.start_time = 0.0;
    cls.end_time = 1000.0;
    cls.inter_arrival = 10.0;
    cls.expected_runtime = 60.0;
    cls.seed = 42;
    spec.tasks.push_back(cls);
    cls.name = "u";
    cls.seed = 43;
    cls.sla = SlaClass::Scavenger;
    spec.tasks.push_back(cls);

    const std::vector<Task> a = tasksFromSpec(spec, 2022);
    const std::vector<Task> b = tasksFromSpec(spec, 2022);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    }
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_LE(a[i - 1].arrival, a[i].arrival);
    // Jittered runtimes stay within the documented +-15% band.
    for (const Task &t : a) {
        EXPECT_GE(t.expected_runtime, 60.0 * 0.85 - 1e-9);
        EXPECT_LE(t.expected_runtime, 60.0 * 1.15 + 1e-9);
    }
}

TEST(Workload, TasksFromSpecIsBounded)
{
    ScenarioSpec spec;
    TaskClassSpec cls;
    cls.start_time = 0.0;
    cls.end_time = 1.0e12;
    cls.inter_arrival = 0.001;
    spec.tasks.push_back(cls);
    const std::vector<Task> tasks = tasksFromSpec(spec, 1);
    EXPECT_LE(tasks.size(), 200000u);
}

} // namespace
} // namespace aiwc::scenario
