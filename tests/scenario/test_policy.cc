/**
 * @file
 * Scheduling-policy tests: each built-in policy's placement rule on a
 * hand-built fleet, the SLA-to-P-state throttling of energy-first, and
 * its consolidation planner's headroom accounting.
 */

#include <gtest/gtest.h>

#include "aiwc/scenario/policy.hh"

namespace aiwc::scenario
{
namespace
{

MachineClassSpec
smallClass(const char *name, CpuIsa isa = CpuIsa::X86)
{
    MachineClassSpec cls;
    cls.name = name;
    cls.cpu = isa;
    cls.cores = 4;
    cls.memory_gb = 16.0;
    cls.p_state_watts = {10.0, 6.0, 3.0};
    cls.mips = {1000.0, 700.0, 400.0};
    normalize(cls);
    return cls;
}

Task
smallTask(SlaClass sla = SlaClass::Batch, CpuIsa isa = CpuIsa::X86)
{
    Task t;
    t.sla = sla;
    t.preferred_isa = isa;
    t.cores = 1;
    t.memory_gb = 1.0;
    return t;
}

TEST(PolicyDemand, CarriesTaskShapeAndPState)
{
    Task t = smallTask();
    t.cores = 3;
    t.memory_gb = 7.0;
    t.gpus = 2;
    const Demand d = demandFor(t, 1);
    EXPECT_EQ(d.cores, 3);
    EXPECT_DOUBLE_EQ(d.memory_gb, 7.0);
    EXPECT_EQ(d.gpus, 2);
    EXPECT_EQ(d.p_state, 1);
}

TEST(GreedyPack, FirstFitInIdOrder)
{
    const MachineClassSpec cls = smallClass("a");
    Fleet fleet = Fleet::homogeneous(cls, 3);
    const GreedyPackPolicy policy;
    const Placement p = policy.place(fleet, smallTask());
    EXPECT_EQ(p.machine, 0);
    EXPECT_EQ(p.p_state, 0);

    // Fill machine 0; the next placement moves to machine 1.
    fleet.machines[0].place(Demand{4, 0.0, 0, 0}, 0.0);
    EXPECT_EQ(policy.place(fleet, smallTask()).machine, 1);
}

TEST(GreedyPack, WakesFirstFittingSleeperWhenNothingAwakeFits)
{
    const MachineClassSpec cls = smallClass("a");
    Fleet fleet = Fleet::homogeneous(cls, 2);
    fleet.machines[0].place(Demand{4, 0.0, 0, 0}, 0.0);  // full
    fleet.machines[1].sleep(cls.deepestSleep(), 0.0);
    const GreedyPackPolicy policy;
    EXPECT_EQ(policy.place(fleet, smallTask()).machine, 1);
    EXPECT_EQ(policy.idleSleepState(fleet.machines[1]),
              cls.deepestSleep());
}

TEST(GreedyPack, QueuesWhenNothingCanEverFit)
{
    const MachineClassSpec cls = smallClass("a");
    Fleet fleet = Fleet::homogeneous(cls, 2);
    Task huge = smallTask();
    huge.cores = 64;
    EXPECT_EQ(GreedyPackPolicy().place(fleet, huge).machine, -1);
}

TEST(LoadBalance, PicksLeastUtilizedAwakeMachine)
{
    const MachineClassSpec cls = smallClass("a");
    Fleet fleet = Fleet::homogeneous(cls, 3);
    fleet.machines[0].place(Demand{3, 0.0, 0, 0}, 0.0);
    fleet.machines[1].place(Demand{1, 0.0, 0, 0}, 0.0);
    const LoadBalancePolicy policy;
    EXPECT_EQ(policy.place(fleet, smallTask()).machine, 2);
    // Never sleeps idle machines.
    EXPECT_EQ(policy.idleSleepState(fleet.machines[2]), 0);
}

TEST(LoadBalance, WakesASleeperRatherThanWedging)
{
    const MachineClassSpec cls = smallClass("a");
    Fleet fleet = Fleet::homogeneous(cls, 2);
    fleet.machines[0].place(Demand{4, 0.0, 0, 0}, 0.0);
    fleet.machines[1].sleep(cls.deepestSleep(), 0.0);
    EXPECT_EQ(LoadBalancePolicy().place(fleet, smallTask()).machine, 1);
}

TEST(EnergyFirst, ThrottlesBySlaClass)
{
    const MachineClassSpec cls = smallClass("a");
    const Fleet fleet = Fleet::homogeneous(cls, 1);
    const EnergyFirstPolicy policy;
    EXPECT_EQ(policy.place(fleet, smallTask(SlaClass::LatencySensitive))
                  .p_state,
              0);
    EXPECT_EQ(policy.place(fleet, smallTask(SlaClass::Batch)).p_state, 1);
    // Scavenger runs at the deepest P-state (index 2 here).
    EXPECT_EQ(policy.place(fleet, smallTask(SlaClass::Scavenger)).p_state,
              2);
}

TEST(EnergyFirst, PrefersIsaMatchedMachines)
{
    ScenarioSpec spec;
    MachineClassSpec x86 = smallClass("x86", CpuIsa::X86);
    x86.count = 1;
    MachineClassSpec arm = smallClass("arm", CpuIsa::Arm);
    arm.count = 1;
    spec.machines = {x86, arm};
    const Fleet fleet = Fleet::fromSpec(spec);
    const EnergyFirstPolicy policy;
    // Machine 0 is x86, machine 1 is ARM: an ARM-preferring task skips
    // the first-fit x86 machine.
    EXPECT_EQ(policy.place(fleet, smallTask(SlaClass::Batch, CpuIsa::Arm))
                  .machine,
              1);
    EXPECT_EQ(policy.place(fleet, smallTask(SlaClass::Batch, CpuIsa::X86))
                  .machine,
              0);
}

TEST(EnergyFirst, ConsolidationDrainsUnderUtilizedMachines)
{
    const MachineClassSpec cls = smallClass("a");
    Fleet fleet = Fleet::homogeneous(cls, 2);
    // Machine 0: one core busy (25% util, below the 0.25 threshold is
    // strict, so use a 0.5 threshold policy). Machine 1: 3 cores busy.
    fleet.machines[0].place(Demand{1, 1.0, 0, 0}, 0.0);
    fleet.machines[1].place(Demand{3, 3.0, 0, 0}, 0.0);
    const EnergyFirstPolicy policy(300.0, 0.5);
    EXPECT_DOUBLE_EQ(policy.consolidationInterval(), 300.0);

    std::vector<RunningView> running;
    RunningView rv;
    rv.task_id = 7;
    rv.machine = 0;
    rv.demand = Demand{1, 1.0, 0, 0};
    rv.sla = SlaClass::Batch;
    rv.remaining_fraction = 0.9;
    running.push_back(rv);

    const std::vector<Migration> plan = policy.consolidate(fleet, running);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].task_id, 7u);
    EXPECT_EQ(plan[0].to_machine, 1);
}

TEST(EnergyFirst, ConsolidationSkipsNearlyDoneTasks)
{
    const MachineClassSpec cls = smallClass("a");
    Fleet fleet = Fleet::homogeneous(cls, 2);
    fleet.machines[0].place(Demand{1, 1.0, 0, 0}, 0.0);
    fleet.machines[1].place(Demand{3, 3.0, 0, 0}, 0.0);
    std::vector<RunningView> running(1);
    running[0].task_id = 7;
    running[0].machine = 0;
    running[0].demand = Demand{1, 1.0, 0, 0};
    running[0].remaining_fraction = 0.1;  // not worth the pause
    EXPECT_TRUE(
        EnergyFirstPolicy(300.0, 0.5).consolidate(fleet, running).empty());
}

TEST(EnergyFirst, ConsolidationRespectsDestinationHeadroom)
{
    const MachineClassSpec cls = smallClass("a");
    Fleet fleet = Fleet::homogeneous(cls, 2);
    // Machine 1 has only one free core but two drain candidates; the
    // plan must move at most one of them.
    fleet.machines[0].place(Demand{1, 1.0, 0, 0}, 0.0);
    fleet.machines[1].place(Demand{3, 3.0, 0, 0}, 0.0);
    std::vector<RunningView> running(2);
    for (std::uint32_t i = 0; i < 2; ++i) {
        running[i].task_id = i;
        running[i].machine = 0;
        running[i].demand = Demand{1, 1.0, 0, 0};
        running[i].remaining_fraction = 1.0;
    }
    const std::vector<Migration> plan =
        EnergyFirstPolicy(300.0, 0.9).consolidate(fleet, running);
    EXPECT_LE(plan.size(), 1u);
}

} // namespace
} // namespace aiwc::scenario
