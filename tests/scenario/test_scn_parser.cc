/**
 * @file
 * `.scn` parser tests: the grammar round trip, and — the part the
 * acceptance criterion names — totality over hostile text. The parser
 * sits at a trust boundary like the binary trace decoder, so every
 * truncation, garbage byte, and malformed value must degrade into
 * diagnostics plus a normalized (possibly empty) spec, never an abort.
 */

#include <gtest/gtest.h>

#include <string>

#include "aiwc/common/rng.hh"
#include "aiwc/scenario/scn_parser.hh"

namespace aiwc::scenario
{
namespace
{

const char *const kGoodScn = R"(# demo scenario
machine class:
{
    Name: premium-x86
    Number of machines: 16
    CPU type: X86
    Number of cores: 32
    Memory: 262144
    S-States: [120, 100, 80, 10, 0]
    S-State latencies: [0, 1000, 2000, 4000, 16000]
    P-States: [12, 8, 6, 4]
    C-States: [12, 3, 1, 0]
    MIPS: [1000, 800, 600, 400]
    GPUs: yes
    Number of GPUs: 2
    GPU speed: 0.5
    GPU TDP: 250
    GPU idle watts: 20
}
task class:
{
    Name: web-front
    Start time: 60000
    End time: 600000
    Inter arrival: 8000
    Expected runtime: 120000
    Memory: 8192
    Number of cores: 2
    VM type: LINUX
    GPU enabled: no
    SLA type: SLA0
    CPU type: ARM
    Task type: WEB
    Seed: 726775
}
)";

TEST(ScnParser, ParsesTheDocumentedGrammar)
{
    const ScnParseResult r = parseScn(kGoodScn, "demo");
    for (const ScnDiagnostic &d : r.diagnostics)
        ADD_FAILURE() << "line " << d.line << ": " << d.message;
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.spec.name, "demo");
    ASSERT_EQ(r.spec.machines.size(), 1u);
    ASSERT_EQ(r.spec.tasks.size(), 1u);

    const MachineClassSpec &m = r.spec.machines[0];
    EXPECT_EQ(m.name, "premium-x86");
    EXPECT_EQ(m.count, 16);
    EXPECT_EQ(m.cpu, CpuIsa::X86);
    EXPECT_EQ(m.cores, 32);
    EXPECT_DOUBLE_EQ(m.memory_gb, 256.0);  // 262144 MB
    ASSERT_EQ(m.s_state_watts.size(), 5u);
    EXPECT_DOUBLE_EQ(m.s_state_watts[0], 120.0);
    ASSERT_EQ(m.s_wake_seconds.size(), 5u);
    EXPECT_DOUBLE_EQ(m.s_wake_seconds[1], 1.0);  // 1000 ms
    EXPECT_EQ(m.gpus, 2);
    EXPECT_DOUBLE_EQ(m.gpu_relative_speed, 0.5);
    EXPECT_DOUBLE_EQ(m.gpu_tdp_watts, 250.0);

    const TaskClassSpec &t = r.spec.tasks[0];
    EXPECT_EQ(t.name, "web-front");
    EXPECT_DOUBLE_EQ(t.start_time, 60.0);
    EXPECT_DOUBLE_EQ(t.end_time, 600.0);
    EXPECT_DOUBLE_EQ(t.inter_arrival, 8.0);
    EXPECT_DOUBLE_EQ(t.expected_runtime, 120.0);
    EXPECT_DOUBLE_EQ(t.memory_gb, 8.0);
    EXPECT_EQ(t.cores, 2);
    EXPECT_FALSE(t.gpu);
    EXPECT_EQ(t.sla, SlaClass::LatencySensitive);  // SLA0
    EXPECT_EQ(t.cpu, CpuIsa::Arm);
    EXPECT_EQ(t.type, TaskType::Web);
    EXPECT_EQ(t.seed, 726775u);
}

TEST(ScnParser, SlaNumberMapping)
{
    const char *const text =
        "task class:\n{\nSLA type: SLA1\n}\n"
        "task class:\n{\nSLA type: SLA2\n}\n"
        "task class:\n{\nSLA type: SLA3\n}\n"
        "task class:\n{\nSLA type: scavenger\n}\n";
    const ScnParseResult r = parseScn(text);
    ASSERT_EQ(r.spec.tasks.size(), 4u);
    EXPECT_EQ(r.spec.tasks[0].sla, SlaClass::Batch);
    EXPECT_EQ(r.spec.tasks[1].sla, SlaClass::Batch);
    EXPECT_EQ(r.spec.tasks[2].sla, SlaClass::Scavenger);
    EXPECT_EQ(r.spec.tasks[3].sla, SlaClass::Scavenger);
}

TEST(ScnParser, MalformedValuesFallBackWithDiagnostics)
{
    const char *const text =
        "machine class:\n"
        "{\n"
        "Number of machines: banana\n"
        "Number of cores: -12\n"
        "Memory: nan\n"
        "CPU type: Z80\n"
        "Mystery key: 7\n"
        "}\n";
    const ScnParseResult r = parseScn(text);
    ASSERT_EQ(r.spec.machines.size(), 1u);
    EXPECT_FALSE(r.clean());
    EXPECT_GE(r.diagnostics.size(), 4u);
    // Whatever the input did, the class is simulatable.
    const MachineClassSpec &m = r.spec.machines[0];
    EXPECT_GE(m.cores, 1);
    EXPECT_GE(m.memory_gb, 0.25);
    EXPECT_GT(m.mipsAt(0), 0.0);
}

TEST(ScnParser, UnterminatedBlockIsClosedWithDiagnostic)
{
    const ScnParseResult r =
        parseScn("machine class:\n{\nName: lonely\nNumber of cores: 8\n");
    ASSERT_EQ(r.spec.machines.size(), 1u);
    EXPECT_EQ(r.spec.machines[0].name, "lonely");
    EXPECT_EQ(r.spec.machines[0].cores, 8);
    EXPECT_FALSE(r.clean());
}

TEST(ScnParser, EmptyAndWhitespaceInputsAreCleanAndEmpty)
{
    EXPECT_TRUE(parseScn("").clean());
    EXPECT_TRUE(parseScn("\n\n  \t\n# only a comment\n").clean());
    EXPECT_TRUE(parseScn("").spec.machines.empty());
}

TEST(ScnParser, UnreadableFileYieldsDiagnosticNotAbort)
{
    const ScnParseResult r =
        parseScnFile("/nonexistent/definitely/missing.scn");
    EXPECT_TRUE(r.spec.machines.empty());
    ASSERT_FALSE(r.diagnostics.empty());
    EXPECT_EQ(r.diagnostics[0].line, 0);
}

// Totality sweep 1: every prefix of a valid document must parse
// without aborting — this is the truncation half of the hostile-input
// acceptance criterion.
TEST(ScnParserHostile, EveryTruncationParses)
{
    const std::string good(kGoodScn);
    for (std::size_t cut = 0; cut <= good.size(); ++cut) {
        const ScnParseResult r = parseScn(good.substr(0, cut));
        // Any machines that did survive truncation are simulatable.
        for (const MachineClassSpec &m : r.spec.machines) {
            EXPECT_GE(m.cores, 1);
            EXPECT_GT(m.mipsAt(0), 0.0);
        }
    }
}

// Totality sweep 2: deterministic garbage bytes. Bias toward the
// grammar's alphabet so blocks actually open and keys actually match
// half the time — pure noise would never reach the value parsers.
TEST(ScnParserHostile, RandomGarbageNeverAborts)
{
    const char alphabet[] =
        "machine clstk:{}[]\n\r\t #/,.:+-eE0123456789xyzNaninf";
    Rng rng(0xdecafbadULL);
    for (int doc = 0; doc < 200; ++doc) {
        std::string text;
        const std::size_t len = 1 + rng.below(600);
        for (std::size_t i = 0; i < len; ++i) {
            if (rng.chance(0.08)) {
                // Raw binary bytes, including NUL.
                text.push_back(static_cast<char>(rng.below(256)));
            } else {
                text.push_back(
                    alphabet[rng.below(sizeof(alphabet) - 1)]);
            }
        }
        const ScnParseResult r = parseScn(text);
        EXPECT_LE(r.spec.machines.size(), 64u);
        EXPECT_LE(r.spec.tasks.size(), 256u);
    }
}

// Totality sweep 3: mutate the valid document in place — bit flips in
// a structurally correct file hit deeper parser states than noise.
TEST(ScnParserHostile, MutatedValidDocumentNeverAborts)
{
    const std::string good(kGoodScn);
    Rng rng(0x5ca1ab1eULL);
    for (int doc = 0; doc < 200; ++doc) {
        std::string text = good;
        const int mutations = 1 + static_cast<int>(rng.below(8));
        for (int i = 0; i < mutations; ++i) {
            const std::size_t at = rng.below(text.size());
            text[at] = static_cast<char>(rng.below(256));
        }
        (void)parseScn(text);
    }
}

TEST(ScnParserHostile, DiagnosticFloodIsCapped)
{
    std::string text;
    for (int i = 0; i < 2000; ++i)
        text += "garbage line without a block\n";
    const ScnParseResult r = parseScn(text);
    EXPECT_LE(r.diagnostics.size(), 257u);  // cap + suppression marker
}

TEST(ScnParserHostile, ClassFloodIsCapped)
{
    std::string text;
    for (int i = 0; i < 500; ++i)
        text += "machine class:\n{\nName: m\n}\n";
    for (int i = 0; i < 500; ++i)
        text += "task class:\n{\nName: t\n}\n";
    const ScnParseResult r = parseScn(text);
    EXPECT_LE(r.spec.machines.size(), 64u);
    EXPECT_LE(r.spec.tasks.size(), 256u);
}

} // namespace
} // namespace aiwc::scenario
