/**
 * @file
 * Machine/task class spec tests: normalize() must turn any hostile
 * class into a simulatable one (the parser's totality leans on it),
 * the clamped accessors must never index out of their tables, and the
 * sim bridge must reproduce the checked-in Supercloud constants —
 * the MachineSpec table is now the single source of the Table-I
 * numbers, so this pins them.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "aiwc/scenario/spec.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::scenario
{
namespace
{

TEST(SpecNormalize, HostileMachineClassBecomesSimulatable)
{
    MachineClassSpec m;
    m.count = -5;
    m.cores = 0;
    m.memory_gb = -1.0;
    m.gpus = -3;
    m.gpu_relative_speed = 0.0;
    m.s_state_watts.clear();
    m.s_wake_seconds.clear();
    m.p_state_watts.clear();
    m.c_state_watts.clear();
    m.mips = {0.0, -50.0};
    normalize(m);

    EXPECT_GE(m.count, 0);
    EXPECT_GE(m.cores, 1);
    EXPECT_GE(m.memory_gb, 0.0);
    EXPECT_GE(m.gpus, 0);
    EXPECT_GT(m.gpu_relative_speed, 0.0);
    ASSERT_FALSE(m.s_state_watts.empty());
    ASSERT_EQ(m.s_wake_seconds.size(), m.s_state_watts.size());
    EXPECT_EQ(m.s_wake_seconds[0], 0.0);
    ASSERT_FALSE(m.p_state_watts.empty());
    ASSERT_FALSE(m.c_state_watts.empty());
    ASSERT_FALSE(m.mips.empty());
    EXPECT_GT(m.mipsAt(0), 0.0);
    // The normalized class must actually run: every accessor total.
    EXPECT_GE(m.deepestSleep(), 0);
    EXPECT_GE(m.wakeSeconds(99), 0.0);
}

TEST(SpecNormalize, NonFiniteValuesAreClamped)
{
    MachineClassSpec m;
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    m.memory_gb = nan;
    m.gpu_tdp_watts = inf;
    m.gpu_relative_speed = nan;
    m.mips = {nan, inf, -inf};
    normalize(m);
    EXPECT_TRUE(std::isfinite(m.memory_gb));
    EXPECT_TRUE(std::isfinite(m.gpu_tdp_watts));
    EXPECT_TRUE(std::isfinite(m.gpu_relative_speed));
    EXPECT_GT(m.gpu_relative_speed, 0.0);
    for (int p = 0; p < 8; ++p) {
        EXPECT_TRUE(std::isfinite(m.mipsAt(p)));
        EXPECT_GT(m.mipsAt(p), 0.0);
    }
}

TEST(SpecNormalize, OversizedTablesAreTruncated)
{
    MachineClassSpec m;
    m.s_state_watts.assign(1000, 1.0);
    m.p_state_watts.assign(1000, 1.0);
    normalize(m);
    EXPECT_LE(m.s_state_watts.size(), 16u);
    EXPECT_LE(m.p_state_watts.size(), 16u);
    EXPECT_EQ(m.s_wake_seconds.size(), m.s_state_watts.size());
}

TEST(SpecNormalize, IdempotentOnDefaults)
{
    MachineClassSpec a;
    MachineClassSpec b;
    normalize(b);
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.s_state_watts, b.s_state_watts);
    EXPECT_EQ(a.p_state_watts, b.p_state_watts);
    EXPECT_EQ(a.mips, b.mips);
}

TEST(SpecNormalize, HostileTaskClassBecomesSimulatable)
{
    TaskClassSpec t;
    t.start_time = -100.0;
    t.end_time = -200.0;
    t.inter_arrival = 0.0;
    t.expected_runtime = -5.0;
    t.cores = 0;
    t.memory_gb = std::numeric_limits<double>::quiet_NaN();
    normalize(t);
    EXPECT_GE(t.start_time, 0.0);
    EXPECT_GE(t.end_time, t.start_time);
    EXPECT_GT(t.inter_arrival, 0.0);
    EXPECT_GT(t.expected_runtime, 0.0);
    EXPECT_GE(t.cores, 1);
    EXPECT_TRUE(std::isfinite(t.memory_gb));
}

TEST(SpecAccessors, ClampedIndexing)
{
    MachineClassSpec m;  // defaults: 3 S-states, 4 P-states
    EXPECT_EQ(m.deepestSleep(), 2);
    EXPECT_EQ(m.busyCoreWatts(-1), m.p_state_watts.front());
    EXPECT_EQ(m.busyCoreWatts(99), m.p_state_watts.back());
    EXPECT_EQ(m.mipsAt(99), m.mips.back());
    EXPECT_EQ(m.wakeSeconds(-1), 0.0);
    EXPECT_EQ(m.wakeSeconds(99), m.s_wake_seconds.back());
}

TEST(SpecEnums, ToStringCoversEveryValue)
{
    EXPECT_STREQ(toString(CpuIsa::X86), "X86");
    EXPECT_STREQ(toString(CpuIsa::Arm), "ARM");
    EXPECT_STREQ(toString(CpuIsa::Power), "POWER");
    EXPECT_STREQ(toString(CpuIsa::Riscv), "RISCV");
    EXPECT_STREQ(toString(SlaClass::LatencySensitive), "latency-sensitive");
    EXPECT_STREQ(toString(SlaClass::Batch), "batch");
    EXPECT_STREQ(toString(SlaClass::Scavenger), "scavenger");
    EXPECT_STREQ(toString(TaskType::Web), "WEB");
    EXPECT_STREQ(toString(TaskType::Ai), "AI");
    EXPECT_STREQ(toString(TaskType::Crypto), "CRYPTO");
    EXPECT_STREQ(toString(TaskType::Stream), "STREAM");
    EXPECT_STREQ(toString(TaskType::Hpc), "HPC");
}

// The hoisted Table-I constants: machineSpecTable()[0] is the paper's
// Supercloud node and supercloudSpec() must be derived from it.
TEST(MachineSpecTable, SupercloudRowMatchesTableOne)
{
    ASSERT_GE(sim::machineSpecCount(), 1u);
    const sim::MachineSpec &row = sim::machineSpecTable()[0];
    EXPECT_STREQ(row.name, "Supercloud");
    EXPECT_EQ(row.nodes, 224);
    EXPECT_EQ(row.sockets, 2);
    EXPECT_EQ(row.cores_per_socket, 20);
    EXPECT_EQ(row.hyperthreads_per_core, 2);
    EXPECT_DOUBLE_EQ(row.ram_gb, 384.0);
    EXPECT_EQ(row.gpus, 2);
    EXPECT_STREQ(row.gpu_model, "Nvidia Volta V100");
    EXPECT_DOUBLE_EQ(row.gpu_memory_gb, 32.0);
    EXPECT_DOUBLE_EQ(row.gpu_tdp_watts, 300.0);

    const sim::ClusterSpec from_table = sim::clusterSpecFrom(row);
    const sim::ClusterSpec direct = sim::supercloudSpec();
    EXPECT_EQ(from_table.nodes, direct.nodes);
    EXPECT_EQ(from_table.node.sockets, direct.node.sockets);
    EXPECT_EQ(from_table.node.cores_per_socket,
              direct.node.cores_per_socket);
    EXPECT_EQ(from_table.node.gpus, direct.node.gpus);
    EXPECT_DOUBLE_EQ(from_table.node.ram_gb, direct.node.ram_gb);
    EXPECT_DOUBLE_EQ(from_table.node.gpu.tdp_watts,
                     direct.node.gpu.tdp_watts);
    EXPECT_EQ(from_table.node.gpu.model, direct.node.gpu.model);
}

TEST(MachineSpecTable, BridgesIntoScenarioClasses)
{
    const sim::MachineSpec &row = sim::machineSpecTable()[0];
    const MachineClassSpec cls = fromMachineSpec(row);
    EXPECT_EQ(cls.name, "Supercloud");
    EXPECT_EQ(cls.count, 224);
    EXPECT_EQ(cls.cores, 2 * 20 * 2);
    EXPECT_DOUBLE_EQ(cls.memory_gb, 384.0);
    EXPECT_EQ(cls.gpus, 2);
    EXPECT_DOUBLE_EQ(cls.gpu_tdp_watts, 300.0);

    const sim::ClusterSpec lowered = toClusterSpec(cls);
    EXPECT_EQ(lowered.node.gpus, 2);
    EXPECT_DOUBLE_EQ(lowered.node.gpu.tdp_watts, 300.0);
    EXPECT_EQ(lowered.node.sockets * lowered.node.cores_per_socket *
                  lowered.node.hyperthreads_per_core,
              cls.cores);
}

} // namespace
} // namespace aiwc::scenario
