/**
 * @file
 * Machine model tests: the power-state energy integrator must be an
 * exact piecewise-constant integral (hand-computable joule totals),
 * wake transitions must cost their latency while drawing the awake
 * base, and capacity accounting must conserve resources.
 */

#include <gtest/gtest.h>

#include "aiwc/scenario/machine.hh"

namespace aiwc::scenario
{
namespace
{

/** A class with round numbers so expected joules are exact. */
MachineClassSpec
testClass()
{
    MachineClassSpec cls;
    cls.name = "test";
    cls.cores = 4;
    cls.memory_gb = 32.0;
    cls.gpus = 2;
    cls.gpu_tdp_watts = 100.0;
    cls.gpu_idle_watts = 10.0;
    cls.s_state_watts = {50.0, 5.0, 0.0};
    cls.s_wake_seconds = {0.0, 2.0, 8.0};
    cls.p_state_watts = {10.0, 6.0};
    cls.c_state_watts = {2.0, 1.0};
    cls.mips = {1000.0, 500.0};
    normalize(cls);
    return cls;
}

TEST(Machine, AwakeIdleDraw)
{
    const MachineClassSpec cls = testClass();
    Machine m(&cls, 0);
    // base 50 + 4 idle cores * 1 (deepest C-state) + 2 idle GPUs * 10.
    EXPECT_DOUBLE_EQ(m.watts(), 50.0 + 4.0 * 1.0 + 2.0 * 10.0);
    m.advanceTo(10.0);
    EXPECT_DOUBLE_EQ(m.joules(), 740.0);
}

TEST(Machine, BusyDrawTracksPlacedTasks)
{
    const MachineClassSpec cls = testClass();
    Machine m(&cls, 0);
    const Demand d{2, 8.0, 1, 0};  // 2 cores at P0, one GPU
    ASSERT_TRUE(m.canFit(d));
    m.place(d, 0.0);
    // base 50 + 2 busy * 10 (P0) + 2 idle * 1 + 1 busy GPU * 100
    // + 1 idle GPU * 10.
    EXPECT_DOUBLE_EQ(m.watts(), 50.0 + 20.0 + 2.0 + 100.0 + 10.0);
    EXPECT_EQ(m.busyCores(), 2);
    EXPECT_EQ(m.idleCores(), 2);
    EXPECT_EQ(m.busyGpus(), 1);
    EXPECT_DOUBLE_EQ(m.usedMemoryGb(), 8.0);
    EXPECT_DOUBLE_EQ(m.utilization(), 0.5);

    m.advanceTo(5.0);
    EXPECT_DOUBLE_EQ(m.joules(), 5.0 * 182.0);

    m.remove(d, 10.0);
    EXPECT_DOUBLE_EQ(m.joules(), 10.0 * 182.0);
    EXPECT_EQ(m.busyCores(), 0);
    EXPECT_DOUBLE_EQ(m.usedMemoryGb(), 0.0);
    // Back to the idle draw after release.
    EXPECT_DOUBLE_EQ(m.watts(), 74.0);
}

TEST(Machine, PStateChangesPerCoreDraw)
{
    const MachineClassSpec cls = testClass();
    Machine m(&cls, 0);
    m.place(Demand{4, 0.0, 0, 1}, 0.0);  // all cores at P1 (6 W)
    EXPECT_DOUBLE_EQ(m.watts(), 50.0 + 4.0 * 6.0 + 2.0 * 10.0);
}

TEST(Machine, SleepDrawAndWakeLatency)
{
    const MachineClassSpec cls = testClass();
    Machine m(&cls, 0);
    m.advanceTo(10.0);  // 10 s awake idle = 740 J
    m.sleep(2, 10.0);
    EXPECT_EQ(m.sleepState(), 2);
    EXPECT_FALSE(m.awake());
    EXPECT_DOUBLE_EQ(m.watts(), 0.0);  // deepest S-state draws nothing
    m.advanceTo(100.0);
    EXPECT_DOUBLE_EQ(m.joules(), 740.0);  // sleeping for free

    // Waking from S2 takes 8 s at the awake base draw.
    const Seconds ready = m.wake(100.0);
    EXPECT_DOUBLE_EQ(ready, 108.0);
    EXPECT_TRUE(m.waking());
    EXPECT_FALSE(m.awake());
    m.completeWake(ready);
    EXPECT_TRUE(m.awake());
    // 8 s of wake transition at the awake idle draw (74 W).
    EXPECT_DOUBLE_EQ(m.joules(), 740.0 + 8.0 * 74.0);
}

TEST(Machine, WakeOfAwakeMachineIsFree)
{
    const MachineClassSpec cls = testClass();
    Machine m(&cls, 0);
    EXPECT_DOUBLE_EQ(m.wake(42.0), 42.0);
    EXPECT_TRUE(m.awake());
}

TEST(Machine, SleepRefusedWhileBusy)
{
    const MachineClassSpec cls = testClass();
    Machine m(&cls, 0);
    m.place(Demand{1, 0.0, 0, 0}, 0.0);
    m.sleep(2, 1.0);
    EXPECT_TRUE(m.awake());  // no-op: machine was busy
    m.remove(Demand{1, 0.0, 0, 0}, 2.0);
    m.sleep(2, 2.0);
    EXPECT_FALSE(m.awake());
}

TEST(Machine, CanFitRejectsEachAxis)
{
    const MachineClassSpec cls = testClass();
    Machine m(&cls, 0);
    EXPECT_FALSE(m.canFit(Demand{5, 0.0, 0, 0}));    // cores
    EXPECT_FALSE(m.canFit(Demand{1, 33.0, 0, 0}));   // memory
    EXPECT_FALSE(m.canFit(Demand{1, 0.0, 3, 0}));    // gpus
    EXPECT_TRUE(m.canFit(Demand{4, 32.0, 2, 0}));    // exactly full
}

TEST(Machine, AdvanceToIsMonotonic)
{
    const MachineClassSpec cls = testClass();
    Machine m(&cls, 0);
    m.advanceTo(10.0);
    const double j = m.joules();
    m.advanceTo(5.0);  // earlier time: ignored
    EXPECT_DOUBLE_EQ(m.joules(), j);
}

TEST(Fleet, FromSpecLaysOutClassMajor)
{
    ScenarioSpec spec;
    MachineClassSpec a = testClass();
    a.name = "a";
    a.count = 2;
    MachineClassSpec b = testClass();
    b.name = "b";
    b.count = 3;
    spec.machines = {a, b};
    const Fleet fleet = Fleet::fromSpec(spec);
    ASSERT_EQ(fleet.machines.size(), 5u);
    EXPECT_EQ(fleet.machines[0].cls().name, "a");
    EXPECT_EQ(fleet.machines[1].cls().name, "a");
    EXPECT_EQ(fleet.machines[2].cls().name, "b");
    EXPECT_EQ(fleet.machines[4].cls().name, "b");
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(fleet.machines[i].id(), i);
}

TEST(Fleet, TotalJoulesSumsMachines)
{
    const MachineClassSpec cls = testClass();
    Fleet fleet = Fleet::homogeneous(cls, 3);
    fleet.advanceAll(10.0);
    EXPECT_DOUBLE_EQ(fleet.totalJoules(), 3.0 * 740.0);
}

} // namespace
} // namespace aiwc::scenario
