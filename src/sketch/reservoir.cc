#include "aiwc/sketch/reservoir.hh"

#include <algorithm>

#include "aiwc/base/check.hh"

namespace aiwc::sketch
{

namespace
{

/**
 * splitmix64 finalizer over (seed, key): a high-quality 64-bit mix
 * whose output is the key's sampling priority. Pure function — the
 * same (seed, key) always lands on the same priority, which is what
 * makes the bottom-k sample order- and merge-tree-independent.
 */
std::uint64_t
priorityOf(std::uint64_t seed, std::uint64_t key)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (key + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), seed_(seed)
{
    AIWC_CHECK(capacity_ > 0, "reservoir capacity must be positive");
}

void
ReservoirSample::add(std::uint64_t key, double value)
{
    ++offered_;
    const std::uint64_t prio = priorityOf(seed_, key);
    if (sample_.size() >= capacity_) {
        // Reject without inserting when the priority cannot make the
        // bottom-k; keeps the map churn-free on the hot path.
        const auto &worst = *sample_.rbegin();
        if (std::make_pair(prio, key) >= worst.first)
            return;
    }
    auto [it, inserted] = sample_.emplace(std::make_pair(prio, key), value);
    AIWC_DCHECK(inserted || it->second == value,
                "reservoir key re-added with a different value");
    if (sample_.size() > capacity_)
        sample_.erase(std::prev(sample_.end()));
}

void
ReservoirSample::merge(const ReservoirSample &other)
{
    AIWC_CHECK_EQ(capacity_, other.capacity_,
                  "reservoir merge requires identical capacity");
    AIWC_CHECK_EQ(seed_, other.seed_,
                  "reservoir merge requires identical seed");
    offered_ += other.offered_;
    for (const auto &[prio_key, value] : other.sample_) {
        auto [it, inserted] = sample_.emplace(prio_key, value);
        AIWC_DCHECK(inserted || it->second == value,
                    "reservoir key re-added with a different value");
    }
    while (sample_.size() > capacity_)
        sample_.erase(std::prev(sample_.end()));
}

std::vector<ReservoirSample::Item>
ReservoirSample::items() const
{
    std::vector<Item> out;
    out.reserve(sample_.size());
    for (const auto &[prio_key, value] : sample_)
        out.push_back(Item{prio_key.second, value});
    std::sort(out.begin(), out.end(),
              [](const Item &a, const Item &b) { return a.key < b.key; });
    return out;
}

std::vector<double>
ReservoirSample::values() const
{
    std::vector<double> out;
    const auto sorted = items();
    out.reserve(sorted.size());
    for (const auto &item : sorted)
        out.push_back(item.value);
    return out;
}

std::size_t
ReservoirSample::bytes() const
{
    const std::size_t node =
        sizeof(std::pair<const std::pair<std::uint64_t, std::uint64_t>,
                         double>) +
        4 * sizeof(void *);
    return sizeof(*this) + sample_.size() * node;
}

} // namespace aiwc::sketch
