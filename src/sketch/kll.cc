#include "aiwc/sketch/kll.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "aiwc/base/check.hh"
#include "aiwc/common/rng.hh"
#include "aiwc/obs/metrics.hh"

namespace aiwc::sketch
{

namespace
{

/** Process-wide compaction counter (aiwc.sketch.compactions). */
obs::Counter &
compactionCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.sketch.compactions");
    return c;
}

} // namespace

KllSketch::KllSketch(std::uint32_t k, std::uint64_t seed)
    : k_(k), seed_(seed)
{
    AIWC_CHECK(k_ >= 8, "KLL capacity k must be >= 8, got ", k_);
    AIWC_CHECK(k_ % 2 == 0, "KLL capacity k must be even, got ", k_);
    levels_.emplace_back();
    levels_.front().reserve(k_);
}

void
KllSketch::add(double x)
{
    AIWC_DCHECK(!std::isnan(x), "KLL sketch rejects NaN samples");
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    levels_.front().push_back(x);
    if (levels_.front().size() >= k_)
        compact(0);
}

void
KllSketch::merge(const KllSketch &other)
{
    AIWC_CHECK_EQ(k_, other.k_,
                  "KLL merge requires identical compactor capacity");
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    compactions_ += other.compactions_;
    if (other.levels_.size() > levels_.size())
        levels_.resize(other.levels_.size());
    for (std::size_t l = 0; l < other.levels_.size(); ++l) {
        levels_[l].insert(levels_[l].end(), other.levels_[l].begin(),
                          other.levels_[l].end());
    }
    // Restore the capacity invariant bottom-up; a promotion can push
    // the next level past k_, which the cascade inside compact()
    // handles, so one upward sweep suffices.
    for (std::size_t l = 0; l < levels_.size(); ++l) {
        if (levels_[l].size() >= k_)
            compact(l);
    }
}

void
KllSketch::compact(std::size_t level)
{
    AIWC_DCHECK(level < levels_.size(), "compact on missing level");
    if (level + 1 >= levels_.size())
        levels_.emplace_back();
    auto &buf = levels_[level];
    std::sort(buf.begin(), buf.end());
    // Deterministic coin: an Rng seeded from (sketch seed, compaction
    // ordinal) picks whether even- or odd-indexed items survive. The
    // golden-ratio stride decorrelates adjacent ordinals.
    Rng coin(seed_ + 0x9e3779b97f4a7c15ull * (compactions_ + 1));
    std::size_t offset = static_cast<std::size_t>(coin() & 1);
    auto &up = levels_[level + 1];
    for (std::size_t i = offset; i < buf.size(); i += 2)
        up.push_back(buf[i]);
    buf.clear();
    ++compactions_;
    compactionCounter().add(1);
    if (up.size() >= k_)
        compact(level + 1);
}

std::vector<std::pair<double, std::uint64_t>>
KllSketch::sortedItems() const
{
    std::vector<std::pair<double, std::uint64_t>> items;
    items.reserve(retained());
    std::uint64_t weight = 1;
    for (const auto &level : levels_) {
        for (double v : level)
            items.emplace_back(v, weight);
        weight <<= 1;
    }
    std::sort(items.begin(), items.end());
    return items;
}

double
KllSketch::quantile(double q) const
{
    AIWC_CHECK(q >= 0.0 && q <= 1.0, "quantile level must be in [0, 1], got ",
               q);
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    if (q == 0.0)
        return min_;
    if (q == 1.0)
        return max_;
    const auto items = sortedItems();
    const double target = q * static_cast<double>(count_);
    double cum = 0.0;
    for (const auto &[value, weight] : items) {
        cum += static_cast<double>(weight);
        if (cum >= target)
            return std::clamp(value, min_, max_);
    }
    return max_;
}

double
KllSketch::cdf(double x) const
{
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    std::uint64_t below = 0;
    std::uint64_t weight = 1;
    for (const auto &level : levels_) {
        for (double v : level) {
            if (v <= x)
                below += weight;
        }
        weight <<= 1;
    }
    return static_cast<double>(below) / static_cast<double>(count_);
}

double
KllSketch::min() const
{
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double
KllSketch::max() const
{
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double
KllSketch::epsilonBound() const
{
    // No compaction yet: every sample is retained at weight 1, so
    // rank queries are exact. This covers the empty and single-item
    // sketches, whose error would otherwise be reported as 1/k.
    if (compactions_ == 0)
        return 0.0;
    const double levels = static_cast<double>(std::max<std::size_t>(
        levels_.size(), 1));
    return levels / static_cast<double>(k_);
}

std::size_t
KllSketch::retained() const
{
    std::size_t n = 0;
    for (const auto &level : levels_)
        n += level.size();
    return n;
}

std::size_t
KllSketch::bytes() const
{
    std::size_t heap = 0;
    for (const auto &level : levels_)
        heap += level.capacity() * sizeof(double) + sizeof(level);
    return sizeof(*this) + heap;
}

} // namespace aiwc::sketch
