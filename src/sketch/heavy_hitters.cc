#include "aiwc/sketch/heavy_hitters.hh"

#include <algorithm>

#include "aiwc/base/check.hh"

namespace aiwc::sketch
{

HeavyHitters::HeavyHitters(std::size_t capacity)
    : capacity_(capacity)
{
    AIWC_CHECK(capacity_ > 0, "heavy-hitters capacity must be positive");
}

void
HeavyHitters::add(std::uint64_t key, double weight)
{
    AIWC_DCHECK(weight >= 0.0, "heavy-hitters weight must be non-negative");
    total_ += weight;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second.count += weight;
        return;
    }
    if (entries_.size() < capacity_) {
        entries_.emplace(key, Cell{weight, 0.0});
        return;
    }
    // Space-saving eviction: replace the minimum-count entry, charging
    // its count as the newcomer's error allowance. Iterating the
    // ordered map and requiring a strict improvement makes the victim
    // the smallest key among the minima — deterministic by value.
    auto victim = entries_.begin();
    for (auto jt = std::next(entries_.begin()); jt != entries_.end(); ++jt) {
        if (jt->second.count < victim->second.count)
            victim = jt;
    }
    const double floor = victim->second.count;
    entries_.erase(victim);
    entries_.emplace(key, Cell{floor + weight, floor});
}

void
HeavyHitters::merge(const HeavyHitters &other)
{
    AIWC_CHECK_EQ(capacity_, other.capacity_,
                  "heavy-hitters merge requires identical capacity");
    total_ += other.total_;
    for (const auto &[key, cell] : other.entries_) {
        auto [it, inserted] = entries_.emplace(key, cell);
        if (!inserted) {
            it->second.count += cell.count;
            it->second.error += cell.error;
        }
    }
    if (entries_.size() <= capacity_) {
        clampErrors();
        return;
    }
    // Misra-Gries shrink: subtract the (capacity+1)-th largest count
    // from every entry and drop those that hit zero or below; the
    // subtracted mass moves into the survivors' error bounds.
    std::vector<double> counts;
    counts.reserve(entries_.size());
    for (const auto &[key, cell] : entries_)
        counts.push_back(cell.count);
    std::nth_element(counts.begin(), counts.begin() + capacity_,
                     counts.end(), std::greater<>());
    const double threshold = counts[capacity_];
    for (auto it = entries_.begin(); it != entries_.end();) {
        it->second.count -= threshold;
        if (it->second.count <= 0.0) {
            it = entries_.erase(it);
        } else {
            it->second.error += threshold;
            ++it;
        }
    }
    clampErrors();
}

void
HeavyHitters::clampErrors()
{
    // Repeated merges sum the per-shard error allowances, so after a
    // deep merge tree `error` can exceed `count` — which would make
    // the count - error lower bound negative, a vacuous (and, for
    // consumers that subtract it, actively wrong) guarantee. A true
    // weight is never negative, so error > count carries no extra
    // information: clamp it and keep the bound meaningful.
    for (auto &[key, cell] : entries_) {
        if (cell.error > cell.count)
            cell.error = cell.count;
    }
}

std::vector<HeavyHitters::Entry>
HeavyHitters::topK(std::size_t k) const
{
    std::vector<Entry> out;
    out.reserve(entries_.size());
    for (const auto &[key, cell] : entries_)
        out.push_back(Entry{key, cell.count, cell.error});
    std::sort(out.begin(), out.end(), [](const Entry &a, const Entry &b) {
        if (a.count != b.count)
            return a.count > b.count;
        return a.key < b.key;
    });
    if (out.size() > k)
        out.resize(k);
    return out;
}

std::size_t
HeavyHitters::bytes() const
{
    // Rough node-based estimate: each map node carries the key/value
    // pair plus three pointers and a color bit rounded to a pointer.
    const std::size_t node =
        sizeof(std::pair<const std::uint64_t, Cell>) + 4 * sizeof(void *);
    return sizeof(*this) + entries_.size() * node;
}

} // namespace aiwc::sketch
