#include "aiwc/sketch/moments.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "aiwc/base/check.hh"

namespace aiwc::sketch
{

void
StreamingMoments::add(double x)
{
    AIWC_DCHECK(!std::isnan(x), "moments accumulator rejects NaN samples");
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
StreamingMoments::merge(const StreamingMoments &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double n = na + nb;
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
StreamingMoments::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
StreamingMoments::stddev() const
{
    return std::sqrt(variance());
}

double
StreamingMoments::covPercent() const
{
    if (n_ == 0 || mean_ == 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return stddev() / std::abs(mean_) * 100.0;
}

} // namespace aiwc::sketch
