#include "aiwc/stream/pipeline.hh"

#include <algorithm>

#include "aiwc/base/check.hh"
#include "aiwc/common/parallel.hh"
#include "aiwc/obs/metrics.hh"
#include "aiwc/obs/trace.hh"

namespace aiwc::stream
{

namespace
{

obs::Counter &
rowsCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.stream.rows_ingested");
    return c;
}

obs::Counter &
mergesCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.stream.merges");
    return c;
}

obs::Counter &
snapshotsCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::global().counter("aiwc.stream.snapshots");
    return c;
}

obs::Histogram &
snapshotNsHistogram()
{
    static obs::Histogram &h =
        obs::MetricsRegistry::global().histogram("aiwc.stream.snapshot_ns");
    return h;
}

obs::Gauge &
sketchBytesGauge()
{
    static obs::Gauge &g =
        obs::MetricsRegistry::global().gauge("aiwc.sketch.bytes");
    return g;
}

/** Render one KLL sketch through the ECDF plotting bridge. */
stats::EmpiricalCdf
renderCdf(const sketch::KllSketch &s, int points)
{
    return stats::EmpiricalCdf::fromQuantileFunction(
        [&s](double q) { return s.quantile(q); }, points);
}

} // namespace

StreamPipeline::StreamPipeline(StreamOptions options)
    : options_(std::move(options)),
      service_time_(options_.kll_k, options_.sketch_seed,
                    options_.min_gpu_runtime),
      utilization_(options_.kll_k, options_.sketch_seed,
                   options_.min_gpu_runtime),
      power_(options_.kll_k, options_.sketch_seed,
             options_.min_gpu_runtime, options_.power_caps),
      user_behavior_(options_.heavy_hitter_capacity,
                     options_.min_gpu_runtime),
      exemplars_(options_.reservoir_capacity, options_.sketch_seed)
{
    AIWC_CHECK(options_.snapshot_points >= 2,
               "snapshot needs at least two quantile levels");
}

// The delegating copy constructor pins @p other with a temporary
// MutexLock that lives until the target constructor returns; the
// analysis cannot track a scoped capability held by a temporary, so
// the handoff is exempted and the REQUIRES contract sits on the
// lock-token constructor instead.
StreamPipeline::StreamPipeline(const StreamPipeline &other)
    AIWC_NO_THREAD_SAFETY_ANALYSIS
    : StreamPipeline(other, MutexLock(other.mutex_))
{
}

StreamPipeline::StreamPipeline(const StreamPipeline &other,
                               const MutexLock &)
    : options_(other.options_), rows_(other.rows_),
      gpu_jobs_(other.gpu_jobs_), cpu_jobs_(other.cpu_jobs_),
      service_time_(other.service_time_),
      utilization_(other.utilization_), power_(other.power_),
      user_behavior_(other.user_behavior_), exemplars_(other.exemplars_)
{
}

StreamPipeline &
StreamPipeline::operator=(const StreamPipeline &other)
{
    if (this == &other)
        return *this;
    MutexLock2 lock(mutex_, other.mutex_);
    options_ = other.options_;
    rows_ = other.rows_;
    gpu_jobs_ = other.gpu_jobs_;
    cpu_jobs_ = other.cpu_jobs_;
    service_time_ = other.service_time_;
    utilization_ = other.utilization_;
    power_ = other.power_;
    user_behavior_ = other.user_behavior_;
    exemplars_ = other.exemplars_;
    return *this;
}

void
StreamPipeline::ingest(const core::JobRecord &rec)
{
    MutexLock lock(mutex_);
    ++rows_;
    rowsCounter().add(1);
    if (rec.isGpuJob()) {
        if (rec.runTime() >= options_.min_gpu_runtime) {
            ++gpu_jobs_;
            exemplars_.add(rec.id, rec.runTime() / 60.0);
        }
    } else {
        ++cpu_jobs_;
    }
    service_time_.observe(rec);
    utilization_.observe(rec);
    power_.observe(rec);
    user_behavior_.observe(rec);
}

void
StreamPipeline::merge(const StreamPipeline &other)
{
    AIWC_CHECK(this != &other, "pipeline cannot merge with itself");
    MutexLock2 lock(mutex_, other.mutex_);
    AIWC_CHECK(options_ == other.options_,
               "pipeline merge requires identical stream options");
    mergesCounter().add(1);
    rows_ += other.rows_;
    gpu_jobs_ += other.gpu_jobs_;
    cpu_jobs_ += other.cpu_jobs_;
    service_time_.merge(other.service_time_);
    utilization_.merge(other.utilization_);
    power_.merge(other.power_);
    user_behavior_.merge(other.user_behavior_);
    exemplars_.merge(other.exemplars_);
}

SnapshotReport
StreamPipeline::snapshot() const
{
    obs::ScopedTimer timer(snapshotNsHistogram(), "stream.snapshot");
    MutexLock lock(mutex_);
    snapshotsCounter().add(1);
    sketchBytesGauge().set(
        static_cast<std::int64_t>(sketchBytesLocked()));

    SnapshotReport report;
    report.rows = rows_;
    report.gpu_jobs = gpu_jobs_;
    report.cpu_jobs = cpu_jobs_;
    report.sketch_bytes = sketchBytesLocked();

    const int points = options_.snapshot_points;
    report.gpu_runtime_min =
        renderCdf(service_time_.gpuRuntimeMin(), points);
    report.cpu_runtime_min =
        renderCdf(service_time_.cpuRuntimeMin(), points);
    report.gpu_wait_s = renderCdf(service_time_.gpuWaitS(), points);
    report.sm_pct =
        renderCdf(utilization_.byResource(Resource::Sm), points);
    report.membw_pct =
        renderCdf(utilization_.byResource(Resource::MemoryBw), points);
    report.memsize_pct =
        renderCdf(utilization_.byResource(Resource::MemorySize), points);
    report.avg_watts = renderCdf(power_.avgWatts(), points);
    report.max_watts = renderCdf(power_.maxWatts(), points);
    report.caps = power_.capImpacts();

    report.epsilon = std::max(
        {service_time_.gpuRuntimeMin().epsilonBound(),
         service_time_.cpuRuntimeMin().epsilonBound(),
         service_time_.gpuWaitS().epsilonBound(),
         utilization_.byResource(Resource::Sm).epsilonBound(),
         power_.avgWatts().epsilonBound(),
         power_.maxWatts().epsilonBound()});

    report.users = user_behavior_.userCount();
    std::vector<double> user_rt, user_sm;
    const auto summaries = user_behavior_.summaries();
    user_rt.reserve(summaries.size());
    user_sm.reserve(summaries.size());
    for (const auto &s : summaries) {
        user_rt.push_back(s.avg_runtime_min);
        user_sm.push_back(s.avg_sm_pct);
    }
    report.user_avg_runtime_min =
        stats::EmpiricalCdf(std::move(user_rt));
    report.user_avg_sm_pct = stats::EmpiricalCdf(std::move(user_sm));
    if (report.users > 0) {
        report.top5_job_share = user_behavior_.topJobShare(0.05);
        report.top20_job_share = user_behavior_.topJobShare(0.20);
        report.median_jobs_per_user =
            user_behavior_.medianJobsPerUser();
    }
    report.top_users_by_gpu_hours = user_behavior_.topUsersByGpuHours(
        std::min<std::size_t>(5, options_.heavy_hitter_capacity));
    return report;
}

std::uint64_t
StreamPipeline::rows() const
{
    MutexLock lock(mutex_);
    return rows_;
}

std::size_t
StreamPipeline::sketchBytes() const
{
    MutexLock lock(mutex_);
    return sketchBytesLocked();
}

std::size_t
StreamPipeline::sketchBytesLocked() const
{
    return service_time_.bytes() + utilization_.bytes() +
           power_.bytes() + user_behavior_.bytes() + exemplars_.bytes();
}

StreamPipeline
ingestParallel(std::span<const core::JobRecord> records,
               const StreamOptions &options)
{
    obs::TraceSpan span("stream.ingest_parallel");
    return parallelReduce(
        globalPool(), records.size(), StreamPipeline(options),
        [&](StreamPipeline &acc, std::size_t i) {
            acc.ingest(records[i]);
        },
        [](StreamPipeline &into, StreamPipeline &&from) {
            into.merge(from);
        });
}

SnapshotReport
snapshotShards(std::span<const StreamPipeline> shards)
{
    AIWC_CHECK(!shards.empty(),
               "shard-merge snapshot needs at least one shard");
    obs::TraceSpan span("stream.snapshot_shards");
    // Fold in shard-index order: the same merge order parallelReduce
    // uses, so the combined state — and every rendered figure — is a
    // pure function of the per-shard states.
    StreamPipeline combined(shards.front().options());
    for (const StreamPipeline &shard : shards)
        combined.merge(shard);
    return combined.snapshot();
}

} // namespace aiwc::stream
