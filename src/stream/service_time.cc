#include "aiwc/stream/service_time.hh"

namespace aiwc::stream
{

StreamingServiceTime::StreamingServiceTime(std::uint32_t kll_k,
                                           std::uint64_t seed,
                                           Seconds min_gpu_runtime)
    : min_gpu_runtime_(min_gpu_runtime),
      gpu_runtime_min_(kll_k, seed),
      cpu_runtime_min_(kll_k, seed),
      gpu_wait_s_(kll_k, seed),
      cpu_wait_s_(kll_k, seed),
      gpu_wait_pct_(kll_k, seed),
      cpu_wait_pct_(kll_k, seed)
{
}

void
StreamingServiceTime::observe(const core::JobRecord &rec)
{
    // Same transforms as core::ServiceTimeAnalyzer's foldJob.
    const double runtime_min = rec.runTime() / 60.0;
    const double wait_s = rec.waitTime();
    const double service = rec.serviceTime();
    const double wait_pct =
        service > 0.0 ? 100.0 * wait_s / service : 0.0;
    if (rec.isGpuJob()) {
        if (rec.runTime() < min_gpu_runtime_)
            return;
        gpu_runtime_min_.add(runtime_min);
        gpu_wait_s_.add(wait_s);
        gpu_wait_pct_.add(wait_pct);
    } else {
        cpu_runtime_min_.add(runtime_min);
        cpu_wait_s_.add(wait_s);
        cpu_wait_pct_.add(wait_pct);
    }
}

void
StreamingServiceTime::merge(const StreamingServiceTime &other)
{
    gpu_runtime_min_.merge(other.gpu_runtime_min_);
    cpu_runtime_min_.merge(other.cpu_runtime_min_);
    gpu_wait_s_.merge(other.gpu_wait_s_);
    cpu_wait_s_.merge(other.cpu_wait_s_);
    gpu_wait_pct_.merge(other.gpu_wait_pct_);
    cpu_wait_pct_.merge(other.cpu_wait_pct_);
}

std::size_t
StreamingServiceTime::bytes() const
{
    return gpu_runtime_min_.bytes() + cpu_runtime_min_.bytes() +
           gpu_wait_s_.bytes() + cpu_wait_s_.bytes() +
           gpu_wait_pct_.bytes() + cpu_wait_pct_.bytes();
}

} // namespace aiwc::stream
