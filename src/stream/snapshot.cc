#include "aiwc/stream/snapshot.hh"

#include "aiwc/common/table.hh"

namespace aiwc::stream
{

namespace
{

/** One "p25 / p50 / p75" row of a quantile table. */
std::vector<std::string>
quantileRow(const std::string &label, const stats::EmpiricalCdf &cdf)
{
    if (cdf.empty())
        return {label, "-", "-", "-"};
    return {label, formatNumber(cdf.quantile(0.25)),
            formatNumber(cdf.quantile(0.50)),
            formatNumber(cdf.quantile(0.75))};
}

} // namespace

void
SnapshotReport::print(std::ostream &os) const
{
    os << "stream snapshot: " << rows << " rows (" << gpu_jobs
       << " GPU jobs, " << cpu_jobs << " CPU jobs), " << users
       << " users, sketch footprint " << sketch_bytes
       << " B, rank error bound " << formatPercent(epsilon) << "\n\n";

    TextTable dist({"distribution", "p25", "p50", "p75"});
    dist.addRow(quantileRow("GPU runtime (min)", gpu_runtime_min));
    dist.addRow(quantileRow("CPU runtime (min)", cpu_runtime_min));
    dist.addRow(quantileRow("GPU wait (s)", gpu_wait_s));
    dist.addRow(quantileRow("SM util (%)", sm_pct));
    dist.addRow(quantileRow("memBW util (%)", membw_pct));
    dist.addRow(quantileRow("memsize util (%)", memsize_pct));
    dist.addRow(quantileRow("avg power (W)", avg_watts));
    dist.addRow(quantileRow("max power (W)", max_watts));
    dist.addRow(quantileRow("user avg runtime (min)",
                            user_avg_runtime_min));
    dist.addRow(quantileRow("user avg SM (%)", user_avg_sm_pct));
    dist.print(os);

    if (!caps.empty()) {
        os << "\n";
        TextTable cap_table({"cap (W)", "unimpacted", "by max draw",
                             "by avg draw"});
        for (const auto &c : caps) {
            cap_table.addRow({formatNumber(c.cap_watts),
                              formatPercent(c.unimpacted),
                              formatPercent(c.impacted_by_max),
                              formatPercent(c.impacted_by_avg)});
        }
        cap_table.print(os);
    }

    if (!top_users_by_gpu_hours.empty()) {
        os << "\n";
        TextTable top({"user", "GPU-hours (est)", "+/- err"});
        for (const auto &entry : top_users_by_gpu_hours) {
            top.addRow({std::to_string(entry.key),
                        formatNumber(entry.count),
                        formatNumber(entry.error)});
        }
        top.print(os);
    }

    os << "\njob concentration: top 5% of users submit "
       << formatPercent(top5_job_share) << " of jobs, top 20% submit "
       << formatPercent(top20_job_share) << "; median "
       << formatNumber(median_jobs_per_user) << " jobs/user\n";
}

} // namespace aiwc::stream
