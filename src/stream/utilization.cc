#include "aiwc/stream/utilization.hh"

#include "aiwc/base/logging.hh"

namespace aiwc::stream
{

namespace
{

/** Axis slot of a utilization resource; Power has no utilization. */
std::size_t
axisOf(Resource r)
{
    switch (r) {
      case Resource::Sm: return 0;
      case Resource::MemoryBw: return 1;
      case Resource::MemorySize: return 2;
      case Resource::PcieTx: return 3;
      case Resource::PcieRx: return 4;
      case Resource::Power: break;
    }
    panic("power has no utilization sketch; use StreamingPower");
}

constexpr std::array<Resource, 5> axes = {
    Resource::Sm, Resource::MemoryBw, Resource::MemorySize,
    Resource::PcieTx, Resource::PcieRx};

} // namespace

StreamingUtilization::StreamingUtilization(std::uint32_t kll_k,
                                           std::uint64_t seed,
                                           Seconds min_gpu_runtime)
    : min_gpu_runtime_(min_gpu_runtime),
      pct_{sketch::KllSketch(kll_k, seed), sketch::KllSketch(kll_k, seed),
           sketch::KllSketch(kll_k, seed), sketch::KllSketch(kll_k, seed),
           sketch::KllSketch(kll_k, seed)}
{
}

void
StreamingUtilization::observe(const core::JobRecord &rec)
{
    if (!rec.isGpuJob() || rec.runTime() < min_gpu_runtime_)
        return;
    for (Resource r : axes)
        pct_[axisOf(r)].add(100.0 * rec.meanUtilization(r));
}

void
StreamingUtilization::merge(const StreamingUtilization &other)
{
    for (std::size_t i = 0; i < num_axes; ++i)
        pct_[i].merge(other.pct_[i]);
}

const sketch::KllSketch &
StreamingUtilization::byResource(Resource r) const
{
    return pct_[axisOf(r)];
}

std::size_t
StreamingUtilization::bytes() const
{
    std::size_t total = 0;
    for (const auto &s : pct_)
        total += s.bytes();
    return total;
}

} // namespace aiwc::stream
