#include "aiwc/stream/user_behavior.hh"

#include "aiwc/base/check.hh"
#include "aiwc/stats/descriptive.hh"
#include "aiwc/stats/share_curve.hh"

namespace aiwc::stream
{

void
StreamingUserBehavior::UserAccum::merge(const UserAccum &other)
{
    runtime_min.merge(other.runtime_min);
    sm_pct.merge(other.sm_pct);
    membw_pct.merge(other.membw_pct);
    memsize_pct.merge(other.memsize_pct);
    gpu_hours += other.gpu_hours;
}

StreamingUserBehavior::StreamingUserBehavior(
    std::size_t heavy_hitter_capacity, Seconds min_gpu_runtime,
    std::size_t min_jobs_for_cov)
    : min_gpu_runtime_(min_gpu_runtime),
      min_jobs_for_cov_(min_jobs_for_cov),
      hours_topk_(heavy_hitter_capacity)
{
}

void
StreamingUserBehavior::observe(const core::JobRecord &rec)
{
    if (!rec.isGpuJob() || rec.runTime() < min_gpu_runtime_)
        return;
    UserAccum &acc = users_[rec.user];
    acc.runtime_min.add(rec.runTime() / 60.0);
    acc.sm_pct.add(100.0 * rec.meanUtilization(Resource::Sm));
    acc.membw_pct.add(100.0 * rec.meanUtilization(Resource::MemoryBw));
    acc.memsize_pct.add(
        100.0 * rec.meanUtilization(Resource::MemorySize));
    acc.gpu_hours += rec.gpuHours();
    hours_topk_.add(rec.user, rec.gpuHours());
}

void
StreamingUserBehavior::merge(const StreamingUserBehavior &other)
{
    AIWC_CHECK_EQ(min_jobs_for_cov_, other.min_jobs_for_cov_,
                  "user-behavior merge requires identical CoV cutoff");
    for (const auto &[user, acc] : other.users_) {
        auto [it, inserted] = users_.emplace(user, acc);
        if (!inserted)
            it->second.merge(acc);
    }
    hours_topk_.merge(other.hours_topk_);
}

std::vector<core::UserSummary>
StreamingUserBehavior::summaries() const
{
    std::vector<core::UserSummary> out;
    out.reserve(users_.size());
    for (const auto &[user, acc] : users_) {
        core::UserSummary s;
        s.user = user;
        s.jobs = acc.runtime_min.count();
        s.gpu_hours = acc.gpu_hours;
        s.avg_runtime_min = acc.runtime_min.mean();
        s.avg_sm_pct = acc.sm_pct.mean();
        s.avg_membw_pct = acc.membw_pct.mean();
        s.avg_memsize_pct = acc.memsize_pct.mean();
        if (s.jobs >= min_jobs_for_cov_) {
            s.runtime_cov_pct = acc.runtime_min.covPercent();
            s.sm_cov_pct = acc.sm_pct.covPercent();
            s.membw_cov_pct = acc.membw_pct.covPercent();
            s.memsize_cov_pct = acc.memsize_pct.covPercent();
        }
        out.push_back(s);
    }
    return out;
}

double
StreamingUserBehavior::topJobShare(double fraction) const
{
    std::vector<double> jobs_per_user;
    jobs_per_user.reserve(users_.size());
    for (const auto &[user, acc] : users_) {
        jobs_per_user.push_back(
            static_cast<double>(acc.runtime_min.count()));
    }
    return stats::topShare(jobs_per_user, fraction);
}

double
StreamingUserBehavior::medianJobsPerUser() const
{
    std::vector<double> jobs_per_user;
    jobs_per_user.reserve(users_.size());
    for (const auto &[user, acc] : users_) {
        jobs_per_user.push_back(
            static_cast<double>(acc.runtime_min.count()));
    }
    return stats::percentile(std::move(jobs_per_user), 0.5);
}

std::vector<sketch::HeavyHitters::Entry>
StreamingUserBehavior::topUsersByGpuHours(std::size_t k) const
{
    return hours_topk_.topK(k);
}

std::size_t
StreamingUserBehavior::bytes() const
{
    const std::size_t node =
        sizeof(std::pair<const UserId, UserAccum>) + 4 * sizeof(void *);
    return sizeof(*this) + users_.size() * node + hours_topk_.bytes();
}

} // namespace aiwc::stream
