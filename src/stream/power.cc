#include "aiwc/stream/power.hh"

#include "aiwc/base/check.hh"

namespace aiwc::stream
{

StreamingPower::StreamingPower(std::uint32_t kll_k, std::uint64_t seed,
                               Seconds min_gpu_runtime,
                               std::vector<double> caps)
    : min_gpu_runtime_(min_gpu_runtime),
      caps_(std::move(caps)),
      avg_watts_(kll_k, seed),
      max_watts_(kll_k, seed)
{
}

void
StreamingPower::observe(const core::JobRecord &rec)
{
    if (!rec.isGpuJob() || rec.runTime() < min_gpu_runtime_)
        return;
    avg_watts_.add(rec.meanPowerWatts());
    max_watts_.add(rec.maxPowerWatts());
}

void
StreamingPower::merge(const StreamingPower &other)
{
    AIWC_CHECK(caps_ == other.caps_,
               "power merge requires identical cap lists");
    avg_watts_.merge(other.avg_watts_);
    max_watts_.merge(other.max_watts_);
}

std::vector<core::PowerCapImpact>
StreamingPower::capImpacts() const
{
    std::vector<core::PowerCapImpact> out;
    if (avg_watts_.count() == 0)
        return out;
    out.reserve(caps_.size());
    for (double cap : caps_) {
        core::PowerCapImpact impact;
        impact.cap_watts = cap;
        impact.unimpacted = max_watts_.cdf(cap);
        impact.impacted_by_max = 1.0 - max_watts_.cdf(cap);
        impact.impacted_by_avg = 1.0 - avg_watts_.cdf(cap);
        out.push_back(impact);
    }
    return out;
}

std::size_t
StreamingPower::bytes() const
{
    return avg_watts_.bytes() + max_watts_.bytes();
}

} // namespace aiwc::stream
