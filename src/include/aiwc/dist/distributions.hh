/**
 * @file
 * Parametric sampling distributions for workload synthesis.
 *
 * The calibration profile (workload/calibration.hh) expresses every
 * paper-published marginal as one of these distributions; generators
 * sample them through the common Distribution interface so calibration
 * choices stay data, not code.
 */

#pragma once

#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "aiwc/common/rng.hh"

namespace aiwc::dist
{

/** A real-valued sampling distribution. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample. */
    virtual double sample(Rng &rng) const = 0;

    /** Theoretical mean (approximate for composed distributions). */
    virtual double mean() const = 0;
};

/** Shared handle used by composition (Mixture/Truncated). */
using DistPtr = std::shared_ptr<const Distribution>;

/** Degenerate distribution: always returns the same value. */
class PointMass : public Distribution
{
  public:
    explicit PointMass(double value) : value_(value) {}
    double sample(Rng &) const override { return value_; }
    double mean() const override { return value_; }

  private:
    double value_;
};

/** Uniform over [lo, hi). */
class Uniform : public Distribution
{
  public:
    Uniform(double lo, double hi);
    double sample(Rng &rng) const override;
    double mean() const override { return 0.5 * (lo_ + hi_); }

  private:
    double lo_, hi_;
};

/** Exponential with the given rate. */
class Exponential : public Distribution
{
  public:
    explicit Exponential(double rate);
    double sample(Rng &rng) const override;
    double mean() const override { return 1.0 / rate_; }

  private:
    double rate_;
};

/**
 * Log-normal, parameterized by the *median* and the log-space sigma —
 * the natural parameterization for matching the paper's quantiles,
 * since quantile ratios pin sigma directly:
 * sigma = ln(p75/p50) / z(0.75).
 */
class LogNormal : public Distribution
{
  public:
    LogNormal(double median, double sigma);

    /**
     * Solve a LogNormal from two quantiles, e.g.
     * fromQuantiles(0.5, 30min, 0.75, 300min) for the paper's GPU-job
     * runtimes. Quantile levels must differ.
     */
    static LogNormal fromQuantiles(double q1, double v1,
                                   double q2, double v2);

    double sample(Rng &rng) const override;
    double mean() const override;

    double median() const { return std::exp(mu_); }
    double sigma() const { return sigma_; }

    /** Quantile function (exact). */
    double quantile(double q) const;

  private:
    double mu_, sigma_;
};

/** Pareto (Lomax-free form): x_m * U^(-1/alpha), heavy-tailed. */
class Pareto : public Distribution
{
  public:
    Pareto(double x_min, double alpha);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double x_min_, alpha_;
};

/** Weibull with shape k and scale lambda. */
class Weibull : public Distribution
{
  public:
    Weibull(double shape, double scale);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    double shape_, scale_;
};

/**
 * Beta(a, b), sampled via two Marsaglia-Tsang gamma draws. Used for
 * utilization fractions in [0, 1].
 */
class Beta : public Distribution
{
  public:
    Beta(double a, double b);

    /**
     * Solve (a, b) from a target mean and "concentration" kappa = a+b;
     * larger kappa means tighter around the mean.
     */
    static Beta fromMean(double mean, double kappa);

    double sample(Rng &rng) const override;
    double mean() const override { return a_ / (a_ + b_); }

  private:
    double a_, b_;
};

/** Categorical mixture of component distributions. */
class Mixture : public Distribution
{
  public:
    /** Component weights need not be normalized; all must be >= 0. */
    Mixture(std::vector<std::pair<double, DistPtr>> components);

    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    std::vector<double> cumulative_;
    std::vector<DistPtr> components_;
    double total_weight_;
};

/**
 * Rejection-truncates an inner distribution into [lo, hi]; falls back
 * to clamping after a bounded number of rejections so sampling always
 * terminates.
 */
class Truncated : public Distribution
{
  public:
    Truncated(DistPtr inner, double lo, double hi);
    double sample(Rng &rng) const override;
    double mean() const override;

  private:
    DistPtr inner_;
    double lo_, hi_;
};

/** Convenience: wrap any concrete distribution into a DistPtr. */
template <typename D, typename... Args>
DistPtr
make(Args &&...args)
{
    return std::make_shared<const D>(std::forward<Args>(args)...);
}

/** Standard normal quantile (Acklam's rational approximation). */
double normalQuantile(double q);

/** Gamma(shape, 1) sample via Marsaglia-Tsang; shape > 0. */
double sampleGamma(Rng &rng, double shape);

} // namespace aiwc::dist

