/**
 * @file
 * ScenarioRunner: the {machine class x task mix x policy} sweep.
 *
 * Cells are laid out machine-class-major (then task mix, then policy)
 * and simulated via parallelFor with each cell writing only its own
 * result slot, so the merged report is byte-identical at any thread
 * count. Task streams are derived once per mix (serially, up front)
 * and shared read-only across cells; policies are stateless and shared
 * the same way.
 *
 * Each cell also gets a planner overlay: the existing power-cap /
 * co-location / multi-tier planners run over the cell's
 * GPU-accelerated record slice (the records the mix tagged WEB/... are
 * filtered down to AI / STREAM / HPC types), with cap levels scaled to
 * the machine class's GPU TDP — the paper's fixed what-ifs evaluated
 * per scenario cell.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "aiwc/core/dataset.hh"
#include "aiwc/scenario/report.hh"
#include "aiwc/scenario/workload.hh"

namespace aiwc::scenario
{

/** Sweep tunables. */
struct SweepOptions
{
    std::uint64_t seed = 2022;          //!< task-typing seed
    EngineOptions engine;
    /**
     * Machines simulated per cell: each machine class is evaluated as
     * a homogeneous fleet of min(class count, machines_per_cell)
     * machines so one oversized class cannot dwarf the sweep.
     */
    int machines_per_cell = 8;
    /** Compute planner overlays (needs >= min_overlay_gpu_jobs). */
    bool planner_overlays = true;
    std::size_t min_overlay_gpu_jobs = 10;
};

class ScenarioRunner
{
  public:
    explicit ScenarioRunner(const ScenarioSpec &spec,
                            SweepOptions options = {});

    /**
     * Sweep every (machine class, task mix, policy) cell over tasks
     * derived from `dataset`. Policies must outlive the call; the
     * pointer list is shared across worker threads.
     */
    FrontierReport
    sweep(const core::Dataset &dataset, const std::vector<TaskMix> &mixes,
          const std::vector<const SchedulingPolicy *> &policies) const;

    /**
     * Sweep using the spec's own synthetic task classes instead of a
     * dataset: one shared task stream, no planner overlays, same cell
     * layout with the mix axis collapsed to "spec".
     */
    FrontierReport
    sweepSynthetic(const std::vector<const SchedulingPolicy *> &policies)
        const;

  private:
    ScenarioSpec spec_;
    SweepOptions options_;
};

} // namespace aiwc::scenario
