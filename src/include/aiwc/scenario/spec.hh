/**
 * @file
 * Declarative machine classes and task classes for heterogeneous,
 * energy-aware cluster scenarios.
 *
 * A scenario generalizes the single homogeneous Supercloud topology of
 * `aiwc::sim` into a catalog of *machine classes* — core count, memory,
 * CPU ISA tag, GPU presence, and per-component P/S/C power states with
 * state-transition latencies and per-state wattage — plus *task
 * classes* describing synthetic arrival streams. Specs are loaded from
 * checked-in `.scn` text files under `scenarios/` (see scn_parser.hh
 * for the grammar) or built programmatically; `normalize()` makes any spec safe
 * to simulate, which is what lets the parser be total.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aiwc/common/types.hh"
#include "aiwc/sim/cluster_factory.hh"

namespace aiwc::scenario
{

/** CPU instruction-set tag of a machine class or task preference. */
enum class CpuIsa : std::uint8_t
{
    X86,
    Arm,
    Power,
    Riscv,
};

/** Number of CpuIsa values, for array-of-enum indexing. */
inline constexpr int num_cpu_isas = 4;

const char *toString(CpuIsa isa);

/**
 * One machine class: N identical machines with a power-state model.
 *
 * Power model (all wattages are per machine unless noted):
 *  - s_state_watts[0] is the awake chassis base draw; deeper S-states
 *    (s_state_watts[1..]) are sleep states drawing progressively less.
 *  - Waking from S-state s costs s_wake_seconds[s] of latency during
 *    which the machine draws the awake base but runs nothing.
 *  - An awake machine adds p_state_watts[p] per *busy core* running at
 *    performance state p, and c_state_watts.back() per idle core
 *    (idle cores drop to the deepest C-state between tasks).
 *  - mips[p] is the per-core throughput at P-state p, on the shared
 *    absolute scale where 1000 MIPS is the reference core (a task's
 *    expected runtime is defined at the reference speed).
 *  - Machines with GPUs add gpu_tdp_watts per busy GPU and
 *    gpu_idle_watts per idle GPU while awake; GPU tasks run at
 *    gpu_relative_speed (1.0 = the V100 reference).
 */
struct MachineClassSpec
{
    std::string name;
    int count = 1;                //!< machines of this class
    CpuIsa cpu = CpuIsa::X86;
    int cores = 16;               //!< schedulable cores per machine
    double memory_gb = 64.0;      //!< host RAM per machine
    int gpus = 0;                 //!< GPUs per machine (0 = none)
    double gpu_memory_gb = 16.0;
    double gpu_tdp_watts = 250.0;
    double gpu_idle_watts = 25.0;
    double gpu_relative_speed = 1.0;

    std::vector<double> s_state_watts{120.0, 10.0, 0.0};
    std::vector<double> s_wake_seconds{0.0, 1.0, 10.0};
    std::vector<double> p_state_watts{12.0, 8.0, 6.0, 4.0};
    std::vector<double> c_state_watts{2.0, 1.0, 0.0};
    std::vector<double> mips{1000.0, 800.0, 600.0, 400.0};

    /** Deepest sleep state index (s_state_watts.size() - 1). */
    int deepestSleep() const;

    /** Deepest idle-core C-state wattage (0 if none modeled). */
    double idleCoreWatts() const;

    /** Per-core busy wattage at P-state p (clamped to the table). */
    double busyCoreWatts(int p) const;

    /** Per-core throughput at P-state p (clamped, always > 0). */
    double mipsAt(int p) const;

    /** Wake latency out of S-state s (clamped, >= 0). */
    double wakeSeconds(int s) const;
};

/**
 * Clamp a machine class into simulatable shape: non-empty power-state
 * tables, positive core/count/mips values, latency table sized to the
 * S-state table. Idempotent; the parser applies it to every class, so
 * no `.scn` input can produce a class the engine cannot run.
 */
void normalize(MachineClassSpec &m);

/**
 * One synthetic task class: a deterministic arrival stream of tasks of
 * one type/SLA, in the cloudsim-eec style. Times are seconds.
 */
struct TaskClassSpec
{
    std::string name;
    TaskType type = TaskType::Ai;
    SlaClass sla = SlaClass::Batch;
    CpuIsa cpu = CpuIsa::X86;       //!< preferred ISA
    Seconds start_time = 0.0;
    Seconds end_time = 3600.0;
    Seconds inter_arrival = 60.0;   //!< mean gap between arrivals
    Seconds expected_runtime = 600.0;
    double memory_gb = 4.0;
    int cores = 1;
    bool gpu = false;
    std::uint64_t seed = 0;         //!< jitter stream for this class
};

/** Clamp a task class into simulatable shape (see normalize above). */
void normalize(TaskClassSpec &t);

/** A full scenario: machine classes plus task classes. */
struct ScenarioSpec
{
    std::string name = "scenario";
    std::vector<MachineClassSpec> machines;
    std::vector<TaskClassSpec> tasks;

    int totalMachines() const;
};

/**
 * Lower one machine class onto the homogeneous `aiwc::sim` vocabulary,
 * so scenario classes can drive the existing cluster simulator: cores
 * map to a single-socket no-HT node and the class's GPU block maps to
 * the node's GpuSpec.
 */
sim::ClusterSpec toClusterSpec(const MachineClassSpec &m);

/** Map the built-in sim catalog row back into a machine class. */
MachineClassSpec fromMachineSpec(const sim::MachineSpec &m);

} // namespace aiwc::scenario
