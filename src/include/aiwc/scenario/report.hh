/**
 * @file
 * The energy-vs-SLA frontier report: every sweep cell's outcome plus
 * the Pareto frontier over (joules, SLA-violation rate), rendered as
 * deterministic JSON (`aiwc-scenario-frontier-v1`) and as a TextTable.
 *
 * Byte determinism is part of the contract: numbers are emitted in
 * shortest-round-trip form, cells in sweep order, and nothing
 * order-dependent (maps, timestamps, pointers) reaches the output —
 * the determinism harness diffs these bytes across thread counts and
 * input formats.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "aiwc/scenario/engine.hh"

namespace aiwc::scenario
{

/**
 * Planner overlay: what the existing aiwc::opportunity planners say
 * about this cell's GPU-accelerated slice (power capping headroom,
 * co-location savings, multi-tier cost relief). computed is false when
 * the cell had too few GPU records to analyze.
 */
struct PlannerOverlay
{
    bool computed = false;
    double power_cap_throughput_gain = 0.0;
    double colocation_gpu_hours_saved = 0.0;
    double multi_tier_cost_saving = 0.0;
};

/** One sweep cell: a (machine class, task mix, policy) combination. */
struct CellResult
{
    std::string machine_class;
    std::string task_mix;
    std::string policy;
    CellStats stats;
    PlannerOverlay overlay;
};

struct FrontierReport
{
    std::string scenario;
    std::uint64_t seed = 0;
    std::vector<CellResult> cells;      //!< sweep order
    std::vector<std::size_t> frontier;  //!< Pareto-minimal cell indices

    /** Render the aiwc-scenario-frontier-v1 JSON document. */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;

    /** Render the human-readable frontier table. */
    void printTable(std::ostream &os) const;
};

/**
 * Compute the Pareto frontier over (joules, violation_rate), both
 * minimized: a cell survives when no other cell is at least as good on
 * both axes and strictly better on one. Ties keep the earliest cell.
 * Indices come back sorted by joules, then by cell index.
 */
std::vector<std::size_t> paretoFrontier(const std::vector<CellResult> &cells);

} // namespace aiwc::scenario
