/**
 * @file
 * Total, never-aborting parser for the `.scn` scenario files.
 *
 * Grammar (cloudsim-eec-flavored; `#` and `//` start comments, keys are
 * case-insensitive, unknown keys are diagnosed and skipped):
 *
 *     machine class:
 *     {
 *         Name: premium-x86
 *         Number of machines: 16
 *         CPU type: X86                 # X86 | ARM | POWER | RISCV
 *         Number of cores: 32
 *         Memory: 262144                # MB
 *         S-States: [120, 100, 80, 10, 0]     # W per machine, S0 first
 *         S-State latencies: [0, 1000, 4000]  # ms to wake from S-state i
 *         P-States: [12, 8, 6, 4]             # W per busy core, P0 first
 *         C-States: [12, 3, 1, 0]             # W per idle core
 *         MIPS: [1000, 800, 600, 400]         # per-core speed at P-state i
 *         GPUs: yes
 *         Number of GPUs: 2
 *         GPU speed: 1.0                # relative to the V100 reference
 *         GPU TDP: 300                  # W per busy GPU
 *         GPU idle watts: 25
 *     }
 *     task class:
 *     {
 *         Name: web-front
 *         Start time: 60000             # ms
 *         End time: 600000              # ms
 *         Inter arrival: 8000           # ms, mean gap
 *         Expected runtime: 1200000     # ms at the reference core
 *         Memory: 8192                  # MB
 *         Number of cores: 1
 *         VM type: LINUX                # accepted and ignored
 *         GPU enabled: no
 *         SLA type: SLA0                # SLA0 | SLA1 | SLA2 | SLA3
 *         CPU type: X86                 # preferred ISA
 *         Task type: WEB                # WEB | AI | CRYPTO | STREAM | HPC
 *         Seed: 726775
 *     }
 *
 * Totality contract (the `fmt`/`svc` hostile-decoder convention): any
 * byte sequence — truncated, reordered, binary garbage — produces a
 * ScnParseResult, never an AIWC_CHECK abort. Malformed values fall back
 * to defaults with a line-numbered diagnostic, every parsed class is
 * normalize()d, and the worst possible outcome is an empty spec plus
 * diagnostics. SLA0 maps to latency-sensitive, SLA1/SLA2 to batch,
 * SLA3 to scavenger (class names are also accepted directly).
 */

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "aiwc/scenario/spec.hh"

namespace aiwc::scenario
{

/** One recoverable problem found while parsing (1-based line). */
struct ScnDiagnostic
{
    int line = 0;
    std::string message;
};

/** Parse outcome: a usable (possibly empty) spec plus diagnostics. */
struct ScnParseResult
{
    ScenarioSpec spec;
    std::vector<ScnDiagnostic> diagnostics;

    /** True when the input parsed without a single diagnostic. */
    bool clean() const { return diagnostics.empty(); }
};

/** Parse `.scn` text. Total: never aborts, whatever the bytes. */
ScnParseResult parseScn(std::string_view text,
                        std::string scenario_name = "scenario");

/**
 * Read and parse a `.scn` file. An unreadable path yields an empty
 * spec with a line-0 diagnostic (still total).
 */
ScnParseResult parseScnFile(const std::string &path);

} // namespace aiwc::scenario
