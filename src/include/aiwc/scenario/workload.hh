/**
 * @file
 * Scenario task streams: deterministic derivation of typed, SLA-tagged
 * tasks from either a characterized Dataset (the workload generator's
 * output round-tripped through CSV or the binary trace format) or a
 * scenario's synthetic task classes.
 *
 * Determinism contract: task attributes are a pure function of (record
 * content, mix, seed) — each record draws from its own splitmix-keyed
 * Rng stream — so two Datasets with identical records yield identical
 * tasks regardless of how the bytes arrived (CSV vs .aiwt) and of any
 * thread count upstream.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "aiwc/core/dataset.hh"
#include "aiwc/scenario/spec.hh"

namespace aiwc::scenario
{

/** One schedulable unit of work in a scenario cell. */
struct Task
{
    std::uint32_t id = 0;
    TaskType type = TaskType::Ai;
    SlaClass sla = SlaClass::Batch;
    CpuIsa preferred_isa = CpuIsa::X86;
    Seconds arrival = 0.0;
    Seconds expected_runtime = 1.0;  //!< at the 1000-MIPS reference core
    int cores = 1;
    double memory_gb = 0.0;
    int gpus = 0;
};

/** A named distribution over the five task types (weights >= 0). */
struct TaskMix
{
    std::string name;
    std::array<double, num_task_types> weights{};
};

/**
 * The five canonical mixes the scenario sweep evaluates: balanced,
 * web-heavy, AI-heavy, stream-realtime, and HPC-batch.
 */
std::vector<TaskMix> defaultTaskMixes();

/** Default SLA class per task type (WEB/STREAM latency-sensitive, AI/HPC batch, CRYPTO scavenger). */
SlaClass defaultSlaFor(TaskType type);

/** Default preferred ISA per task type. */
CpuIsa defaultIsaFor(TaskType type);

/**
 * Tag every dataset record with a task type drawn from `mix` (keyed by
 * (seed, record id), so the draw is independent of record order), give
 * it the type's default SLA/ISA, and carry the record's observed
 * resource shape. Result is sorted by (arrival, id).
 */
std::vector<Task> tasksFromDataset(const core::Dataset &dataset,
                                   const TaskMix &mix, std::uint64_t seed);

/**
 * Expand a scenario's task classes into a concrete arrival stream:
 * arrivals pace at the class's inter-arrival gap with deterministic
 * jitter from the class seed (xor `seed`), runtimes jitter +-15%.
 * Bounded to 200k tasks total; sorted by (arrival, id).
 */
std::vector<Task> tasksFromSpec(const ScenarioSpec &spec,
                                std::uint64_t seed);

} // namespace aiwc::scenario
