/**
 * @file
 * Runtime machine model: capacity accounting plus an exact power-state
 * energy integrator.
 *
 * A Machine is one instance of a MachineClassSpec. It tracks busy
 * cores / memory / GPUs, its current S-state (0 = awake, deeper =
 * asleep), and integrates energy in joules between state changes:
 * every mutation first advances the integrator to the event time, so
 * total energy is an exact piecewise-constant integral regardless of
 * event order granularity. All methods are total — indices are clamped
 * and capacity violations are rejected by canFit(), never aborted on.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "aiwc/scenario/spec.hh"

namespace aiwc::scenario
{

/** Resource demand of one placed task, as the machine sees it. */
struct Demand
{
    int cores = 1;
    double memory_gb = 0.0;
    int gpus = 0;
    int p_state = 0;  //!< P-state the task's cores run at
};

class Machine
{
  public:
    Machine(const MachineClassSpec *cls, std::uint32_t id)
        : cls_(cls), id_(id)
    {
    }

    const MachineClassSpec &cls() const { return *cls_; }
    std::uint32_t id() const { return id_; }

    /** Current S-state (0 = awake; includes the waking transition). */
    int sleepState() const { return s_state_; }
    bool awake() const { return s_state_ == 0 && !waking_; }
    bool waking() const { return waking_; }

    /** When a pending wake transition completes (valid if waking()). */
    Seconds wakeReadyAt() const { return wake_ready_at_; }

    int busyCores() const { return busy_cores_; }
    int idleCores() const { return cls_->cores - busy_cores_; }
    double usedMemoryGb() const { return used_memory_gb_; }
    int busyGpus() const { return busy_gpus_; }

    /** Fraction of cores busy (0 when asleep). */
    double utilization() const;

    /** Would this demand fit right now (ignoring sleep state)? */
    bool canFit(const Demand &d) const;

    /** Instantaneous power draw in watts at the current state. */
    double watts() const;

    /** Integrate energy up to `t` (monotonic; earlier times ignored). */
    void advanceTo(Seconds t);

    /** Joules accumulated so far (through the last advanceTo). */
    double joules() const { return joules_; }

    /**
     * Begin waking from the current S-state at time `t`; returns the
     * time the machine is usable (t + wake latency; t if already
     * awake). During the transition the machine draws the awake base.
     */
    Seconds wake(Seconds t);

    /** Finish a pending wake transition (t >= wakeReadyAt()). */
    void completeWake(Seconds t);

    /**
     * Enter sleep state `s` (clamped to the class table) at time `t`.
     * Only an idle, awake machine can sleep; otherwise a no-op.
     */
    void sleep(int s, Seconds t);

    /** Charge a placed task's resources at time `t`. canFit() first. */
    void place(const Demand &d, Seconds t);

    /** Release a completed/migrated task's resources at time `t`. */
    void remove(const Demand &d, Seconds t);

  private:
    const MachineClassSpec *cls_;
    std::uint32_t id_;

    int s_state_ = 0;
    bool waking_ = false;
    Seconds wake_ready_at_ = 0.0;

    int busy_cores_ = 0;
    double used_memory_gb_ = 0.0;
    int busy_gpus_ = 0;
    /** Busy-core wattage, summed over placed tasks (their P-states). */
    double busy_core_watts_ = 0.0;

    Seconds last_advance_ = 0.0;
    double joules_ = 0.0;
};

/** The whole fleet: machines laid out class-major in spec order. */
struct Fleet
{
    std::vector<Machine> machines;

    /** Build one Machine per spec count entry, ids 0..n-1 in order. */
    static Fleet fromSpec(const ScenarioSpec &spec);

    /** Build a homogeneous fleet of `count` machines of one class. */
    static Fleet homogeneous(const MachineClassSpec &cls, int count);

    /** Sum of joules across machines (call advanceAll first). */
    double totalJoules() const;

    /** Advance every machine's energy integrator to `t`. */
    void advanceAll(Seconds t);
};

} // namespace aiwc::scenario
