/**
 * @file
 * Pluggable placement / migration / consolidation policies.
 *
 * A SchedulingPolicy is a pure decision function over fleet state: the
 * engine owns all mutation (wakes, sleeps, migrations, energy), the
 * policy only picks. Policies must be stateless and deterministic —
 * the ScenarioRunner shares one instance across concurrently simulated
 * cells, which is also why every method is const.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "aiwc/scenario/machine.hh"
#include "aiwc/scenario/workload.hh"

namespace aiwc::scenario
{

/** Where to run a task, and how fast. machine = -1 means "queue it". */
struct Placement
{
    int machine = -1;
    int p_state = 0;
};

/** A running task as policies see it during consolidation. */
struct RunningView
{
    std::uint32_t task_id = 0;
    int machine = -1;
    Demand demand;
    SlaClass sla = SlaClass::Batch;
    double remaining_fraction = 0.0;  //!< work left, in [0, 1]
};

/** One consolidation decision: move task_id onto to_machine. */
struct Migration
{
    std::uint32_t task_id = 0;
    int to_machine = -1;
};

class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Choose a machine for `task` (the engine builds the Demand the
     * same way for every policy). The chosen machine may be asleep —
     * the engine pays its wake latency. Return machine = -1 to leave
     * the task queued until capacity frees up.
     */
    virtual Placement place(const Fleet &fleet, const Task &task) const = 0;

    /**
     * Sleep state for a machine that just went fully idle
     * (0 = stay awake).
     */
    virtual int idleSleepState(const Machine &machine) const
    {
        (void)machine;
        return 0;
    }

    /** Seconds between consolidation passes; 0 disables them. */
    virtual Seconds consolidationInterval() const { return 0.0; }

    /**
     * Propose migrations given a snapshot of running tasks (sorted by
     * task id). The engine applies each plan only if the target still
     * fits, charging the migration cost to the moved task.
     */
    virtual std::vector<Migration>
    consolidate(const Fleet &fleet, const std::vector<RunningView> &running)
        const
    {
        (void)fleet;
        (void)running;
        return {};
    }
};

/**
 * First-fit packing in machine-id order: densest feet-first layout,
 * sleeping whatever goes idle. The baseline energy saver.
 */
class GreedyPackPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "greedy-pack"; }
    Placement place(const Fleet &fleet, const Task &task) const override;
    int idleSleepState(const Machine &machine) const override;
};

/**
 * Keep every machine awake and spread load onto the least-utilized
 * fitting machine (ties by id). The latency-first extreme: no wake
 * delays, no migration churn, maximum idle burn.
 */
class LoadBalancePolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "load-balance"; }
    Placement place(const Fleet &fleet, const Task &task) const override;
};

/**
 * Energy-first: ISA-aware first-fit packing, per-SLA P-state throttling
 * (batch runs one state down, scavenger at the deepest), periodic
 * consolidation that drains under-utilized machines onto busier ones,
 * and deepest-sleep for anything idle.
 */
class EnergyFirstPolicy : public SchedulingPolicy
{
  public:
    /**
     * @param consolidation_interval seconds between passes
     * @param drain_below drain machines under this utilization
     */
    explicit EnergyFirstPolicy(Seconds consolidation_interval = 300.0,
                               double drain_below = 0.25)
        : interval_(consolidation_interval), drain_below_(drain_below)
    {
    }

    const char *name() const override { return "energy-first"; }
    Placement place(const Fleet &fleet, const Task &task) const override;
    int idleSleepState(const Machine &machine) const override;
    Seconds consolidationInterval() const override { return interval_; }
    std::vector<Migration>
    consolidate(const Fleet &fleet,
                const std::vector<RunningView> &running) const override;

  private:
    Seconds interval_;
    double drain_below_;
};

/** Capacity demand of a task on a machine of the given class. */
Demand demandFor(const Task &task, int p_state);

} // namespace aiwc::scenario
