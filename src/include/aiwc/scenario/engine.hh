/**
 * @file
 * The per-cell scenario engine: an event-driven simulation of one
 * fleet running one task stream under one policy, producing energy and
 * SLA outcomes.
 *
 * The engine is strictly serial and deterministic — the ScenarioRunner
 * gets its parallelism by simulating independent cells concurrently,
 * so a cell's result is a pure function of (spec, tasks, policy,
 * options) and byte-identical at any thread count.
 *
 * Speed model: a task's expected_runtime is defined at the 1000-MIPS
 * reference core; running at P-state p on a class with mips[p] = M
 * scales it by 1000/M, an ISA mismatch by isa_mismatch_penalty, and a
 * GPU task by 1/gpu_relative_speed instead. SLA accounting: a task
 * violates when service time (arrival to completion, including queue
 * wait, wake latency, and migrations) exceeds its class factor times
 * its expected runtime plus a flat grace; scavenger work never
 * violates. A dropped task (one no machine in the cell could ever
 * host) counts as a violation unless it is scavenger-class — a cell
 * that refuses the workload must not look SLA-perfect.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "aiwc/scenario/policy.hh"

namespace aiwc::scenario
{

/** Engine tunables (defaults are the documented reference model). */
struct EngineOptions
{
    Seconds migration_cost = 30.0;     //!< pause per migration
    Seconds sla_grace = 5.0;           //!< flat allowance per task
    double latency_sla_factor = 1.5;   //!< service / expected bound
    double batch_sla_factor = 3.0;
    double reference_mips = 1000.0;
    double isa_mismatch_penalty = 1.25;
};

/** Queue-wait quantiles for one SLA class (KLL-sketched). */
struct WaitQuantiles
{
    std::uint64_t tasks = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Everything one simulated cell reports. */
struct CellStats
{
    std::uint64_t tasks = 0;       //!< offered
    std::uint64_t finished = 0;
    std::uint64_t dropped = 0;     //!< could never fit any machine
    std::uint64_t migrations = 0;
    std::uint64_t wakes = 0;
    std::uint64_t sla_violations = 0;
    double violation_rate = 0.0;   //!< violations / (finished + dropped)
    double joules = 0.0;           //!< fleet energy over the makespan
    Seconds makespan = 0.0;
    double mean_utilization = 0.0; //!< busy core-s / (fleet core-s)
    std::array<WaitQuantiles, num_sla_classes> waits{};
};

/** Simulate a homogeneous cell: `count` machines of one class. */
CellStats simulateCell(const MachineClassSpec &cls, int count,
                       const std::vector<Task> &tasks,
                       const SchedulingPolicy &policy,
                       const EngineOptions &options = {});

/** Simulate a whole heterogeneous fleet (all classes in the spec). */
CellStats simulateFleet(const ScenarioSpec &spec,
                        const std::vector<Task> &tasks,
                        const SchedulingPolicy &policy,
                        const EngineOptions &options = {});

} // namespace aiwc::scenario
