/**
 * @file
 * Status and error reporting in the gem5 tradition: inform() for normal
 * progress, warn() for suspicious-but-survivable conditions, fatal() for
 * user errors that end the run, and panic() for internal invariant
 * violations (aborts).
 */

#pragma once

#include <sstream>
#include <string>

namespace aiwc
{

/** Verbosity levels for the global logger. */
enum class LogLevel
{
    Silent,  //!< nothing, not even warnings
    Warn,    //!< warnings only
    Info,    //!< warnings and informational messages
};

/** Set the global log level (default: Info). */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

namespace detail
{
void emit(const char *tag, const std::string &msg);
[[noreturn]] void die(const char *tag, const std::string &msg, bool abrt);

/** Fold a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    if constexpr (sizeof...(Args) > 0)
        (os << ... << std::forward<Args>(args));
    return os.str();
}
} // namespace detail

/** Normal operating message; printed at LogLevel::Info. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Something might be wrong but the run can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Unrecoverable user/configuration error; exits with status 1. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::die("fatal", detail::concat(std::forward<Args>(args)...), false);
}

/** Internal invariant violation; aborts (core dump / debugger). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::die("panic", detail::concat(std::forward<Args>(args)...), true);
}

/** panic() unless the condition holds. */
#define AIWC_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond))                                                         \
            ::aiwc::panic("assertion failed: " #cond " ", ##__VA_ARGS__);    \
    } while (0)

} // namespace aiwc

