// Annotated mutex, RAII lock, and condition variable.
//
// Thin wrappers over the std primitives that carry the capability
// annotations from thread_annotations.hh, so clang's -Wthread-safety
// can reason about lock scopes (libstdc++'s std::mutex and
// std::lock_guard are unannotated and invisible to it). aiwc-lint's
// lock-set pass recognizes MutexLock/MutexLock2 alongside the std
// guards, so both checkers see the same scopes.
//
// The project-law lock-discipline rule bans manual .lock()/.unlock()
// calls in src/; the implementations here are the one sanctioned
// boundary where the RAII types meet the raw primitive.
#pragma once

#include <condition_variable>
#include <mutex>

#include "aiwc/base/thread_annotations.hh"

namespace aiwc {

class CondVar;

// A standard-layout exclusive mutex carrying the "mutex" capability.
class AIWC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() AIWC_ACQUIRE() {
    mu_.lock();  // aiwc-lint: allow(lock-discipline) -- RAII/raw boundary: Mutex forwards to the std primitive.
  }
  void unlock() AIWC_RELEASE() {
    mu_.unlock();  // aiwc-lint: allow(lock-discipline) -- RAII/raw boundary: Mutex forwards to the std primitive.
  }
  bool try_lock() AIWC_TRY_ACQUIRE(true) {
    return mu_.try_lock();  // aiwc-lint: allow(lock-discipline) -- RAII/raw boundary: Mutex forwards to the std primitive.
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII scope holding one Mutex for its lifetime (std::lock_guard
// shape, visible to both static checkers).
class AIWC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex &m) AIWC_ACQUIRE(m) : mu_(m) {
    mu_.lock();  // aiwc-lint: allow(lock-discipline) -- RAII/raw boundary: the guard itself drives the mutex.
  }
  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;
  ~MutexLock() AIWC_RELEASE() {
    mu_.unlock();  // aiwc-lint: allow(lock-discipline) -- RAII/raw boundary: the guard itself drives the mutex.
  }

 private:
  Mutex &mu_;
};

// RAII scope holding two Mutexes, acquired deadlock-free via
// std::lock (std::scoped_lock shape). Used by the symmetric two-object
// operations (StreamPipeline::merge and assignment); note the
// deadlock-avoidance is dynamic, so same-class self-edges are exempt
// from the static lock-order graph (see tools/aiwc-lint/locks.txt).
class AIWC_SCOPED_CAPABILITY MutexLock2 {
 public:
  MutexLock2(Mutex &a, Mutex &b) AIWC_ACQUIRE(a, b) : a_(a), b_(b) {
    std::lock(a_, b_);
  }
  MutexLock2(const MutexLock2 &) = delete;
  MutexLock2 &operator=(const MutexLock2 &) = delete;
  ~MutexLock2() AIWC_RELEASE() {
    a_.unlock();  // aiwc-lint: allow(lock-discipline) -- RAII/raw boundary: the guard itself drives the mutex.
    b_.unlock();  // aiwc-lint: allow(lock-discipline) -- RAII/raw boundary: the guard itself drives the mutex.
  }

 private:
  Mutex &a_;
  Mutex &b_;
};

// Condition variable bound to Mutex. wait() REQUIRES the mutex, so
// clang keeps the caller's lock-set coherent across the wait; the
// predicate re-check must be an explicit while loop at the call site
// (a predicate lambda would be analyzed as an unannotated function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  void wait(Mutex &m) AIWC_REQUIRES(m) { cv_.wait(m.mu_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace aiwc
