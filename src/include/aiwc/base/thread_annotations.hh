// Capability annotation macros for static thread-safety analysis.
//
// Under clang these expand to the thread-safety attributes that power
// -Wthread-safety, making the clang CI leg a second, independent
// concurrency checker; under every other compiler they expand to
// nothing. aiwc-lint's own lock-set pass (guarded-field,
// requires-lock, lock-order-cycle) parses the macro names directly
// from source, so the two checkers share one annotation vocabulary.
//
// Style guide (see CONTRIBUTING.md "Concurrency annotations"):
//   - Every mutex-protected member is AIWC_GUARDED_BY(its mutex).
//   - Private helpers called only under a lock are AIWC_REQUIRES(it).
//   - Cross-mutex acquisition order is declared with
//     AIWC_ACQUIRED_BEFORE on the outer mutex and mirrored in
//     tools/aiwc-lint/locks.txt, the machine-checked source of truth.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AIWC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef AIWC_THREAD_ANNOTATION
#define AIWC_THREAD_ANNOTATION(x)
#endif

// Type annotations: a capability (mutex-like) type and an RAII scope
// that acquires one.
#define AIWC_CAPABILITY(name) AIWC_THREAD_ANNOTATION(capability(name))
#define AIWC_SCOPED_CAPABILITY AIWC_THREAD_ANNOTATION(scoped_lockable)

// Member annotations.
#define AIWC_GUARDED_BY(m) AIWC_THREAD_ANNOTATION(guarded_by(m))
#define AIWC_PT_GUARDED_BY(m) AIWC_THREAD_ANNOTATION(pt_guarded_by(m))
#define AIWC_ACQUIRED_BEFORE(...) \
  AIWC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define AIWC_ACQUIRED_AFTER(...) \
  AIWC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function annotations.
#define AIWC_REQUIRES(...) \
  AIWC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define AIWC_EXCLUDES(...) AIWC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define AIWC_ACQUIRE(...) \
  AIWC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define AIWC_RELEASE(...) \
  AIWC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define AIWC_TRY_ACQUIRE(...) \
  AIWC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define AIWC_RETURN_CAPABILITY(m) AIWC_THREAD_ANNOTATION(lock_returned(m))

// Escape hatch: disables the clang analysis for one function. Pair it
// with an aiwc-lint suppression and a written invariant — both
// checkers should be silenced deliberately or not at all.
#define AIWC_NO_THREAD_SAFETY_ANALYSIS \
  AIWC_THREAD_ANNOTATION(no_thread_safety_analysis)
