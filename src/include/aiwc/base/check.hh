/**
 * @file
 * Contract checking for the simulator's resource-conservation core.
 *
 * The paper's headline results (queue waits, lifecycle mixes, power
 * what-ifs) are *emergent* from the simulator's accounting mechanics; a
 * leaked CPU slot or a double-released GPU silently corrupts every
 * downstream figure without failing a test. AIWC_CHECK makes those
 * invariants loud:
 *
 *  - AIWC_CHECK(cond, ...)       always-on contract; fails the run.
 *  - AIWC_CHECK_EQ/NE/LT/LE/GT/GE(a, b, ...)  comparisons that print
 *    both operands on failure.
 *  - AIWC_DCHECK / AIWC_DCHECK_* same, but compiled out under NDEBUG
 *    (Release / RelWithDebInfo) so hot paths pay nothing.
 *
 * Unlike AIWC_ASSERT (logging.hh), a failed AIWC_CHECK routes through a
 * process-wide *fail handler* that tests can override to throw instead
 * of aborting — misuse paths become testable without death tests, and
 * they stay testable under sanitizers. The default handler aborts, as a
 * contract violation in production must.
 */

#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "aiwc/base/logging.hh"

namespace aiwc
{

/** Everything known about one failed contract check. */
struct CheckContext
{
    const char *file = "";
    int line = 0;
    const char *expression = "";  //!< stringified condition
    std::string message;          //!< formatted operands + user message

    /** "file:line: CHECK failed: expr (message)". */
    std::string describe() const;
};

/**
 * Handler invoked when a check fails. It must not return normally:
 * either throw (tests) or terminate the process (production). If a
 * handler does return, the runtime aborts anyway.
 */
using CheckFailHandler = std::function<void(const CheckContext &)>;

/**
 * Install a process-wide fail handler; pass nullptr to restore the
 * default (print + abort). @return the previously installed handler.
 */
CheckFailHandler setCheckFailHandler(CheckFailHandler handler);

/**
 * Exception thrown by the scoped test handler below; tests assert on
 * misuse paths with EXPECT_THROW(..., ContractViolation).
 */
class ContractViolation : public std::logic_error
{
  public:
    explicit ContractViolation(const CheckContext &context)
        : std::logic_error(context.describe()) {}
};

/**
 * RAII override of the fail handler, for tests. With no argument the
 * handler throws ContractViolation; the previous handler is restored on
 * scope exit.
 */
class ScopedCheckFailHandler
{
  public:
    ScopedCheckFailHandler();
    explicit ScopedCheckFailHandler(CheckFailHandler handler);
    ~ScopedCheckFailHandler();

    ScopedCheckFailHandler(const ScopedCheckFailHandler &) = delete;
    ScopedCheckFailHandler &
    operator=(const ScopedCheckFailHandler &) = delete;

  private:
    CheckFailHandler previous_;
};

namespace detail
{

/**
 * Dispatch a failed check to the installed handler; aborts if the
 * handler is absent or returns. May exit by exception (test handlers),
 * never by returning.
 */
[[noreturn]] void checkFailed(const char *file, int line, const char *expr,
                              std::string message);

} // namespace detail

/** Always-on contract check with a formatted message. */
#define AIWC_CHECK(cond, ...)                                                \
    do {                                                                     \
        if (!(cond))                                                         \
            ::aiwc::detail::checkFailed(                                     \
                __FILE__, __LINE__, #cond,                                   \
                ::aiwc::detail::concat(__VA_ARGS__));                        \
    } while (0)

/** Shared body of the binary-comparison checks; prints both sides. */
#define AIWC_CHECK_OP_(a, op, b, ...)                                        \
    do {                                                                     \
        const auto &aiwc_lhs_ = (a);                                         \
        const auto &aiwc_rhs_ = (b);                                         \
        if (!(aiwc_lhs_ op aiwc_rhs_))                                       \
            ::aiwc::detail::checkFailed(                                     \
                __FILE__, __LINE__, #a " " #op " " #b,                       \
                ::aiwc::detail::concat("(", aiwc_lhs_, " vs ", aiwc_rhs_,    \
                                       ") ", ##__VA_ARGS__));                \
    } while (0)

#define AIWC_CHECK_EQ(a, b, ...) AIWC_CHECK_OP_(a, ==, b, ##__VA_ARGS__)
#define AIWC_CHECK_NE(a, b, ...) AIWC_CHECK_OP_(a, !=, b, ##__VA_ARGS__)
#define AIWC_CHECK_LT(a, b, ...) AIWC_CHECK_OP_(a, <, b, ##__VA_ARGS__)
#define AIWC_CHECK_LE(a, b, ...) AIWC_CHECK_OP_(a, <=, b, ##__VA_ARGS__)
#define AIWC_CHECK_GT(a, b, ...) AIWC_CHECK_OP_(a, >, b, ##__VA_ARGS__)
#define AIWC_CHECK_GE(a, b, ...) AIWC_CHECK_OP_(a, >=, b, ##__VA_ARGS__)

/**
 * Debug-only checks: full AIWC_CHECK semantics in Debug builds,
 * compiled to nothing under NDEBUG. The `if (false)` keeps the
 * condition type-checked and its operands odr-used (no unused-variable
 * warnings) while the optimizer removes the dead branch entirely.
 */
#ifdef NDEBUG
#define AIWC_DCHECK_BODY_(stmt)                                              \
    do {                                                                     \
        if (false) {                                                         \
            stmt;                                                            \
        }                                                                    \
    } while (0)
#define AIWC_DCHECK(cond, ...)                                               \
    AIWC_DCHECK_BODY_(AIWC_CHECK(cond, ##__VA_ARGS__))
#define AIWC_DCHECK_EQ(a, b, ...)                                            \
    AIWC_DCHECK_BODY_(AIWC_CHECK_EQ(a, b, ##__VA_ARGS__))
#define AIWC_DCHECK_NE(a, b, ...)                                            \
    AIWC_DCHECK_BODY_(AIWC_CHECK_NE(a, b, ##__VA_ARGS__))
#define AIWC_DCHECK_LT(a, b, ...)                                            \
    AIWC_DCHECK_BODY_(AIWC_CHECK_LT(a, b, ##__VA_ARGS__))
#define AIWC_DCHECK_LE(a, b, ...)                                            \
    AIWC_DCHECK_BODY_(AIWC_CHECK_LE(a, b, ##__VA_ARGS__))
#define AIWC_DCHECK_GT(a, b, ...)                                            \
    AIWC_DCHECK_BODY_(AIWC_CHECK_GT(a, b, ##__VA_ARGS__))
#define AIWC_DCHECK_GE(a, b, ...)                                            \
    AIWC_DCHECK_BODY_(AIWC_CHECK_GE(a, b, ##__VA_ARGS__))
#else
#define AIWC_DCHECK(cond, ...) AIWC_CHECK(cond, ##__VA_ARGS__)
#define AIWC_DCHECK_EQ(a, b, ...) AIWC_CHECK_EQ(a, b, ##__VA_ARGS__)
#define AIWC_DCHECK_NE(a, b, ...) AIWC_CHECK_NE(a, b, ##__VA_ARGS__)
#define AIWC_DCHECK_LT(a, b, ...) AIWC_CHECK_LT(a, b, ##__VA_ARGS__)
#define AIWC_DCHECK_LE(a, b, ...) AIWC_CHECK_LE(a, b, ##__VA_ARGS__)
#define AIWC_DCHECK_GT(a, b, ...) AIWC_CHECK_GT(a, b, ##__VA_ARGS__)
#define AIWC_DCHECK_GE(a, b, ...) AIWC_CHECK_GE(a, b, ##__VA_ARGS__)
#endif

} // namespace aiwc

