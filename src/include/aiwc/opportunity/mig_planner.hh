/**
 * @file
 * Multi-Instance-GPU what-if (Sec. VIII): the paper points to MIG as
 * the hardware answer to chronic under-utilization, and calls out its
 * cost — repartitioning needs an idle GPU and takes seconds of manual
 * intervention.
 *
 * This planner sizes each single-GPU job to a slice count (an
 * A100-style 7-slice GPU), replays the trace packing slices onto
 * GPUs, and reports the concurrent-GPU demand reduction against the
 * exclusive-GPU baseline along with the repartitioning churn the
 * schedule would incur.
 */

#pragma once

#include "aiwc/core/dataset.hh"

namespace aiwc::opportunity
{

/** Outcome of a MIG packing replay. */
struct MigPlan
{
    /** Slices per GPU in the modeled partitioning scheme. */
    int slices_per_gpu = 7;
    /** Jobs that took part (single-GPU jobs only). */
    std::size_t jobs = 0;
    /** Mean slices a job needed. */
    double mean_slices = 0.0;
    /** Fraction of jobs needing the whole GPU (saturators). */
    double full_gpu_jobs = 0.0;
    /** Peak concurrent GPUs: exclusive baseline vs. MIG packing. */
    int peak_gpus_exclusive = 0;
    int peak_gpus_mig = 0;
    /** 1 - mig/exclusive: the capacity reclaimed by slicing. */
    double gpu_demand_reduction = 0.0;
    /** Allocations landing on an already-occupied GPU: each one is a
     *  repartition the paper says needs hardware support. */
    std::size_t repartition_events = 0;
    /** GPU-seconds lost to reconfiguration at `reconfig_seconds`. */
    double reconfig_overhead_hours = 0.0;
};

/** Sizes jobs to slices and replays the packing. */
class MigPlanner
{
  public:
    /**
     * @param slices_per_gpu slice granularity (A100: 7).
     * @param headroom demand multiplier when sizing a slice, so a job
     *        keeps burst room above its mean utilization.
     * @param reconfig_seconds cost of one repartitioning event.
     */
    MigPlanner(int slices_per_gpu = 7, double headroom = 1.5,
               double reconfig_seconds = 5.0)
        : slices_per_gpu_(slices_per_gpu), headroom_(headroom),
          reconfig_seconds_(reconfig_seconds) {}

    /**
     * Slices one job needs: driven by the larger of its compute and
     * memory footprints (with headroom); saturating jobs get the
     * whole GPU.
     */
    int slicesFor(const core::JobRecord &job) const;

    MigPlan plan(const core::Dataset &dataset) const;

  private:
    int slices_per_gpu_;
    double headroom_;
    double reconfig_seconds_;
};

} // namespace aiwc::opportunity

