/**
 * @file
 * Checkpoint/restart what-if (Sec. VI takeaway): development and IDE
 * jobs "run until they encounter a failure or timeout", and the paper
 * calls for "architectural and system support for low-overhead
 * checkpoint/restart mechanisms" so they do not lose their state.
 *
 * This planner quantifies that trade on a dataset: GPU-hours currently
 * lost to state-destroying endings (crashes, timeouts, node failures),
 * versus what periodic checkpointing would recover, net of its write
 * overhead on every job.
 */

#pragma once

#include <vector>

#include "aiwc/core/dataset.hh"

namespace aiwc::opportunity
{

/** Outcome of one checkpoint policy. */
struct CheckpointPlan
{
    /** Checkpoint every this many seconds. */
    double interval_s = 1800.0;
    /** Checkpoint write cost, seconds of GPU time per checkpoint. */
    double write_cost_s = 20.0;

    /** GPU-hours that end in state-destroying terminations today. */
    double lost_hours_baseline = 0.0;
    /** GPU-hours still lost with checkpointing (work since the last
     *  checkpoint, expectation interval/2 per ending). */
    double lost_hours_with_ckpt = 0.0;
    /** GPU-hours spent writing checkpoints across ALL jobs. */
    double overhead_hours = 0.0;
    /** (recovered - overhead) / total fleet GPU-hours. */
    double net_saving_fraction = 0.0;
};

/** Evaluates checkpoint policies over a dataset. */
class CheckpointPlanner
{
  public:
    /** True when a job's ending destroys unpersisted state. */
    static bool losesState(const core::JobRecord &job);

    /** Evaluate one (interval, write cost) policy. */
    CheckpointPlan evaluate(const core::Dataset &dataset,
                            double interval_s,
                            double write_cost_s) const;

    /** Sweep a set of intervals at one write cost. */
    std::vector<CheckpointPlan>
    sweep(const core::Dataset &dataset,
          const std::vector<double> &intervals_s = {600.0, 1800.0,
                                                    3600.0, 7200.0},
          double write_cost_s = 20.0) const;
};

} // namespace aiwc::opportunity

