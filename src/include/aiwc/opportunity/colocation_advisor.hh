/**
 * @file
 * The GPU space-sharing opportunity of Secs. III and VIII: most jobs
 * leave most of the GPU idle, so non-contending jobs could share one
 * GPU. The advisor pairs temporally-overlapping jobs whose combined
 * demand fits, using an interference model to bound the mutual
 * slowdown, and reports how many GPU-hours sharing would reclaim.
 */

#pragma once

#include <vector>

#include "aiwc/core/dataset.hh"
#include "aiwc/stats/ecdf.hh"

namespace aiwc::opportunity
{

/** Interference prediction for two jobs sharing one GPU. */
class InterferenceModel
{
  public:
    /**
     * @param sm_alpha slowdown per unit of SM over-subscription.
     * @param membw_alpha slowdown per unit of memory-BW contention.
     * @param memsize_limit combined memory-size fraction that must fit.
     */
    InterferenceModel(double sm_alpha = 2.0, double membw_alpha = 1.5,
                      double memsize_limit = 0.95)
        : sm_alpha_(sm_alpha), membw_alpha_(membw_alpha),
          memsize_limit_(memsize_limit) {}

    /** Hard feasibility: both working sets must fit in GPU memory. */
    bool fits(const core::JobRecord &a, const core::JobRecord &b) const;

    /**
     * Predicted mutual slowdown factor (>= 1) when a and b share a
     * GPU: contention appears only where combined demand exceeds
     * capacity, so complementary (compute + memory) pairs co-run
     * nearly free — the non-contending sharing the paper calls for.
     */
    double pairSlowdown(const core::JobRecord &a,
                        const core::JobRecord &b) const;

  private:
    double sm_alpha_;
    double membw_alpha_;
    double memsize_limit_;
};

/** Fleet-level outcome of greedy co-location. */
struct ColocationReport
{
    std::size_t gpu_jobs = 0;
    /** Share of single-GPU jobs that found a partner. */
    double paired_job_fraction = 0.0;
    /** GPU-hours reclaimed (overlap time of paired jobs) / total. */
    double gpu_hours_saved_fraction = 0.0;
    /** Mean predicted slowdown across paired jobs. */
    double mean_pair_slowdown = 1.0;
    /** Distribution of predicted pair slowdowns. */
    stats::EmpiricalCdf pair_slowdown;
};

/**
 * Greedy online matcher: replays jobs in start order and pairs each
 * arriving single-GPU job with a compatible already-running one
 * (feasible, predicted slowdown under the threshold).
 */
class ColocationAdvisor
{
  public:
    ColocationAdvisor(InterferenceModel model = {},
                      double max_slowdown = 1.10)
        : model_(model), max_slowdown_(max_slowdown) {}

    ColocationReport analyze(const core::Dataset &dataset) const;

    const InterferenceModel &model() const { return model_; }

  private:
    InterferenceModel model_;
    double max_slowdown_;
};

} // namespace aiwc::opportunity

