/**
 * @file
 * The multi-tier fleet recommendation of Sec. VIII: instead of buying
 * only the fastest GPUs, mix in cheaper/slower ones and steer
 * exploratory, development, and IDE jobs to them. This planner
 * quantifies the trade: GPU-hours shifted, slowdown of shifted jobs
 * (small — they barely use the GPU), and fleet cost saving at equal
 * delivered capacity.
 */

#pragma once

#include <array>

#include "aiwc/core/lifecycle_classifier.hh"

namespace aiwc::opportunity
{

/** Outcome of a two-tier fleet plan. */
struct MultiTierPlan
{
    /** Relative speed and cost of the economy tier vs. the premium. */
    double economy_speed = 0.5;
    double economy_cost = 0.35;

    /** Fraction of GPU-hours steered to the economy tier. */
    double shifted_hour_fraction = 0.0;
    /** Mean slowdown of shifted jobs (Amdahl over their GPU-bound
     *  share; near 1 for idle-heavy development/IDE jobs). */
    double mean_shifted_slowdown = 1.0;
    /** Fleet cost saving at equal delivered capacity (fraction). */
    double cost_saving_fraction = 0.0;
    /** Jobs shifted per class (diagnostics). */
    std::array<double, num_lifecycles> shifted_jobs{};
};

/** Plans the two-tier split using the lifecycle classifier. */
class MultiTierPlanner
{
  public:
    /**
     * @param economy_speed throughput of the cheap tier vs. premium.
     * @param economy_cost cost of the cheap tier vs. premium.
     */
    MultiTierPlanner(double economy_speed = 0.5,
                     double economy_cost = 0.35)
        : economy_speed_(economy_speed), economy_cost_(economy_cost) {}

    /** Slowdown a job would see on the economy tier. */
    double jobSlowdown(const core::JobRecord &job) const;

    /** True when the job should move to the economy tier. */
    bool shouldShift(const core::JobRecord &job) const;

    MultiTierPlan plan(const core::Dataset &dataset) const;

  private:
    double economy_speed_;
    double economy_cost_;
    core::LifecycleClassifier classifier_;
};

} // namespace aiwc::opportunity

