/**
 * @file
 * The power-capping / over-provisioning what-if of Sec. III: the fleet
 * rarely draws its provisioned power, so capping GPUs frees budget to
 * install more of them. This planner quantifies, per cap level, how
 * many extra GPUs the same budget supports and what slowdown the
 * capped jobs would see.
 */

#pragma once

#include <vector>

#include "aiwc/core/dataset.hh"

namespace aiwc::opportunity
{

/** Outcome of one cap level. */
struct PowerCapPlan
{
    double cap_watts = 0.0;
    /** GPUs supportable per original GPU of power budget (TDP/cap). */
    double gpu_multiplier = 0.0;
    /** Fraction of jobs never reaching the cap (unimpacted). */
    double unimpacted = 0.0;
    /** Fraction throttled persistently (average draw above cap). */
    double impacted_by_avg = 0.0;
    /** Mean slowdown across jobs under this cap (>= 1). */
    double mean_slowdown = 1.0;
    /** GPU-hour-weighted mean slowdown. */
    double weighted_slowdown = 1.0;
    /** Net fleet throughput gain: more GPUs vs. slower jobs. */
    double throughput_gain = 0.0;
};

/**
 * Evaluates cap levels against the measured power distribution.
 *
 * Slowdown model: a job whose *average* draw exceeds the cap is
 * compute-bound against the cap and slows by avg/cap; a job whose
 * max exceeds the cap but average does not is throttled only during
 * bursts, modelled as a mild penalty proportional to how far the
 * bursts overshoot.
 */
class PowerCapPlanner
{
  public:
    explicit PowerCapPlanner(double tdp_watts = 300.0,
                             double burst_penalty = 0.15)
        : tdp_watts_(tdp_watts), burst_penalty_(burst_penalty) {}

    /** Slowdown of one job under a cap. */
    double jobSlowdown(const core::JobRecord &job, double cap_watts) const;

    /** Evaluate a list of cap levels over the dataset. */
    std::vector<PowerCapPlan>
    plan(const core::Dataset &dataset,
         const std::vector<double> &caps = {150.0, 200.0, 250.0}) const;

  private:
    double tdp_watts_;
    double burst_penalty_;
};

} // namespace aiwc::opportunity

