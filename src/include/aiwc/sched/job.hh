/**
 * @file
 * Job request and runtime record types shared by the workload
 * generator, the scheduler, and the telemetry collector.
 */

#pragma once

#include <vector>

#include "aiwc/common/types.hh"

namespace aiwc::sched
{

/**
 * What a user submits. The `duration` / `natural_end` pair is the
 * generator's ground truth for how the job *would* end if it never hit
 * its wall-time limit; the scheduler enforces the limit and derives the
 * observed terminal state — exactly the information asymmetry a real
 * scheduler faces.
 */
struct JobRequest
{
    JobId id = invalid_id;
    UserId user = invalid_id;
    Interface interface = Interface::Other;
    Lifecycle lifecycle = Lifecycle::Mature;  //!< ground-truth label

    Seconds submit_time = 0.0;
    Seconds walltime_limit = 24 * one_hour;  //!< requested limit
    Seconds duration = 0.0;                  //!< true run length
    TerminalState natural_end = TerminalState::Completed;

    int gpus = 0;          //!< 0 for CPU-only jobs
    int cpu_slots = 1;     //!< hyperthread slots requested
    double ram_gb = 4.0;   //!< host RAM requested

    /**
     * Service class and coarse task taxonomy, used by the heterogeneous
     * scenario layer. The defaults reproduce the studied system (one
     * plain batch queue), so callers that never set them observe
     * byte-identical scheduling.
     */
    SlaClass sla = SlaClass::Batch;
    TaskType task_type = TaskType::Ai;

    bool isGpuJob() const { return gpus > 0; }

    /** Runtime the scheduler will observe (limit-clamped). */
    Seconds
    observedDuration() const
    {
        return duration < walltime_limit ? duration : walltime_limit;
    }

    /** Terminal state the scheduler will observe. */
    TerminalState
    observedEnd() const
    {
        return duration < walltime_limit ? natural_end
                                         : TerminalState::TimedOut;
    }
};

/** Per-node share of a job's allocation. */
struct NodeShare
{
    NodeId node = invalid_id;
    int cpu_slots = 0;
    double ram_gb = 0.0;
    std::vector<GpuId> gpus;
};

/** A concrete placement across one or more nodes. */
struct Allocation
{
    std::vector<NodeShare> shares;

    int totalGpus() const;
    int totalCpuSlots() const;
    bool empty() const { return shares.empty(); }

    /** Flattened list of all GPU ids across shares. */
    std::vector<GpuId> allGpus() const;
};

/** Scheduler-side lifetime states. */
enum class JobState : std::uint8_t
{
    Queued,
    Running,
    Finished,
};

/**
 * The scheduler's record of one job: the request plus everything the
 * Slurm log of the paper's dataset would contain about scheduling.
 */
struct Job
{
    JobRequest request;
    JobState state = JobState::Queued;

    Seconds start_time = -1.0;
    Seconds end_time = -1.0;
    TerminalState terminal = TerminalState::Completed;
    Allocation allocation;
    bool backfilled = false;  //!< started via backfill, not FCFS order

    /** Queue wait; only valid once started. */
    Seconds waitTime() const { return start_time - request.submit_time; }

    /** Observed runtime; only valid once finished. */
    Seconds runTime() const { return end_time - start_time; }

    /** Wait + run, the paper's "service time" (Fig. 3b). */
    Seconds serviceTime() const { return end_time - request.submit_time; }

    /** GPU-hours consumed (gpus x runtime). */
    double gpuHours() const;
};

} // namespace aiwc::sched

