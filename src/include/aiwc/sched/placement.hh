/**
 * @file
 * Placement policy: where a job's GPUs, CPU slots, and RAM land.
 *
 * Mirrors the Supercloud behaviour described in Secs. III and V:
 * GPU jobs request few CPU slots and are co-located with other jobs on
 * the same node (GPUs themselves are exclusive); multi-GPU jobs are
 * placed as densely as possible, on one node or neighbouring nodes;
 * CPU-only jobs claim whole nodes because CPUs are their only compute.
 */

#pragma once

#include <optional>

#include "aiwc/sched/job.hh"
#include "aiwc/sim/resources.hh"

namespace aiwc::sched
{

/**
 * Dense first-fit placement. place() only searches; the scheduler
 * commits a returned plan with commit() so search stays side-effect
 * free (and usable by the backfill what-if pass).
 */
class DensePlacement
{
  public:
    /**
     * Find a placement for the request on the current cluster state.
     * @return nullopt when the job cannot start right now.
     */
    std::optional<Allocation> place(const sim::Cluster &cluster,
                                    const JobRequest &request) const;

    /** Apply a plan: claim CPU slots, RAM, and GPUs. */
    void commit(sim::Cluster &cluster, JobId job, Allocation &plan) const;

    /** Undo a committed plan at job end. */
    void release(sim::Cluster &cluster, const Allocation &plan) const;

  private:
    std::optional<Allocation> placeGpuJob(const sim::Cluster &cluster,
                                          const JobRequest &request) const;
    std::optional<Allocation> placeCpuJob(const sim::Cluster &cluster,
                                          const JobRequest &request) const;
};

} // namespace aiwc::sched

