/**
 * @file
 * EASY backfill support: when the queue head cannot start, later jobs
 * may jump ahead as long as they do not delay the head's reservation.
 *
 * The window computation works on aggregate GPU and whole-node counts
 * (the two contended resource classes on Supercloud); the scheduler
 * still validates an actual placement before starting a backfilled job.
 */

#pragma once

#include <span>

#include "aiwc/sched/job.hh"
#include "aiwc/sim/resources.hh"

namespace aiwc::sched
{

/** Resource footprint and expected completion of a running job. */
struct RunningFootprint
{
    Seconds expected_end = 0.0;  //!< start + requested walltime
    int gpus = 0;
    int whole_nodes = 0;  //!< nodes fully claimed (CPU jobs)
};

/** The head job's reservation, as seen by would-be backfillers. */
struct BackfillWindow
{
    /** Earliest time the head job is expected to be able to start. */
    Seconds shadow_time = 0.0;
    /** GPUs free even after the head's reservation at shadow time. */
    int spare_gpus = 0;
    /** Whole nodes free even after the head's reservation. */
    int spare_nodes = 0;
};

/**
 * Compute the EASY reservation window for the queue head.
 *
 * Walks running jobs in expected-completion order, accumulating freed
 * resources until the head job fits; the time that happens is the
 * shadow time, and the surplus beyond the head's demand is the spare
 * capacity backfillers may use without delaying it.
 */
BackfillWindow computeWindow(const sim::Cluster &cluster,
                             std::span<const RunningFootprint> running,
                             const JobRequest &head, Seconds now);

/**
 * True when a candidate may backfill: it either finishes before the
 * shadow time or fits entirely inside the spare capacity.
 */
bool mayBackfill(const BackfillWindow &window, const JobRequest &candidate,
                 const sim::ClusterSpec &spec, Seconds now);

} // namespace aiwc::sched

