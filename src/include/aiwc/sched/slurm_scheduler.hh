/**
 * @file
 * The Slurm-like workload manager of the reproduction.
 *
 * Models the Supercloud configuration described in Sec. II: a single
 * job queue regardless of function/size, CPU-resource co-location of
 * GPU jobs on shared nodes, exclusive GPUs, dense placement, high
 * effective priority for multi-GPU jobs, EASY backfill, wall-time
 * enforcement, and prolog/epilog hooks that the telemetry substrate
 * attaches to (monitoring starts at prolog, data is collected at
 * epilog — exactly the paper's instrumentation design).
 */

#pragma once

#include <array>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "aiwc/sched/backfill.hh"
#include "aiwc/sched/job.hh"
#include "aiwc/sched/placement.hh"
#include "aiwc/sim/resources.hh"
#include "aiwc/sim/simulation.hh"

namespace aiwc::sched
{

/** Tunables of the scheduler. */
struct SchedulerOptions
{
    /**
     * Effective-priority boost per requested GPU, in seconds of queue
     * age. Multi-GPU jobs are "scheduled quickly with a high priority"
     * (Sec. V); each GPU buys this much virtual seniority. GPU jobs in
     * general sort ahead of whole-node CPU requests, which is what
     * keeps 70% of GPU jobs under a minute of wait (Fig. 3b).
     */
    Seconds gpu_priority_boost = 120.0;

    /**
     * Latency of the event-driven fast scheduling path (Slurm runs a
     * quick pass on submit/completion); the minimum wait any job sees.
     */
    Seconds dispatch_latency = 1.5;

    /** Enable the periodic EASY backfill pass. */
    bool backfill = true;

    /**
     * Period of the backfill pass. The fast path stops at the first
     * blocked job, so anything stuck behind a blocked whole-node
     * request waits at least this long — the source of the multi-
     * minute CPU-job waits of Fig. 3b.
     */
    Seconds backfill_interval = 60.0;

    /** Maximum queue positions a backfill pass may scan. */
    int backfill_depth = 256;

    /**
     * Fair-share priority: when enabled, a user's recent GPU-seconds
     * (exponentially decayed with `fairshare_half_life`) age their
     * queued jobs backwards by `fairshare_weight` seconds per decayed
     * GPU-hour — heavy consumers yield to light ones, as Slurm's
     * multifactor plugin does. Off by default (the studied system ran
     * a single plain queue).
     */
    bool fairshare = false;
    Seconds fairshare_half_life = 24.0 * 3600.0;
    Seconds fairshare_weight = 60.0;

    /**
     * SLA-class priority boost, in seconds of virtual queue age per
     * class (indexed by SlaClass). All zeros by default — the studied
     * system ran a single plain queue — so scheduling is byte-identical
     * unless a heterogeneous scenario opts in: latency-sensitive work
     * buys seniority with a positive boost, scavenger work yields with
     * a negative one.
     */
    std::array<Seconds, num_sla_classes> sla_boost{};

    /**
     * Watchdog horizon: if jobs are still queued this long after
     * simulation start, something can never be placed and the event
     * loop would spin forever — panic with diagnostics instead.
     */
    double wedge_watchdog_days = 500.0;
};

/** Aggregate counters the operator dashboards would show. */
struct SchedulerStats
{
    std::size_t submitted = 0;
    std::size_t started = 0;
    std::size_t finished = 0;
    std::size_t backfilled = 0;
    double gpu_hours = 0.0;
};

/**
 * The scheduler. Owns every Job record from submission to completion
 * and exposes them for analysis after the simulation drains.
 */
class SlurmScheduler
{
  public:
    using JobHook = std::function<void(const Job &)>;

    SlurmScheduler(sim::Simulation &sim, sim::Cluster &cluster,
                   SchedulerOptions options = {});

    /**
     * Submit a job. May be called before its submit_time with an
     * arrival event scheduled automatically, or at exactly now().
     */
    void submit(const JobRequest &request);

    /** Called at job start, before resources are charged a tick. */
    void setProlog(JobHook hook) { prolog_ = std::move(hook); }

    /** Called at job end, after resources are released. */
    void setEpilog(JobHook hook) { epilog_ = std::move(hook); }

    /** All job records, including still-queued and running ones. */
    const std::vector<Job> &jobs() const { return jobs_; }

    /** Lookup by job id. */
    const Job &job(JobId id) const;

    /** Jobs currently waiting. */
    std::size_t queueDepth() const { return queue_.size(); }

    /** Jobs currently running. */
    std::size_t runningJobs() const { return running_.size(); }

    const SchedulerStats &stats() const { return stats_; }

    /**
     * Deep audit of scheduler <-> cluster agreement: every running
     * job's allocation is exactly backed by cluster state (each
     * allocated GPU is busy with precisely that job, no busy GPU is
     * unaccounted for), queued jobs are still Queued, the bookkeeping
     * counters balance (submitted = queued + running + finished), and
     * the cluster's own conservation invariants hold. Any violation
     * fails an AIWC_CHECK. O(jobs + gpus); intended for tests and the
     * Debug-build end-of-run self-check.
     */
    void auditInvariants() const;

  private:
    /** Arrival: enqueue and try to schedule. */
    void arrive(JobId id);

    /**
     * One scheduling pass over the priority-ordered queue.
     * @param with_backfill also run the EASY backfill scan.
     */
    void schedulePass(bool with_backfill);

    /** Arm the fast-path pass if not already pending. */
    void armFastPass();

    /** Arm the periodic backfill pass if not already pending. */
    void armBackfillPass();

    /** Start a job with the given placement plan. */
    void start(JobId id, Allocation plan, bool via_backfill);

    /** Completion event: release resources, record the record. */
    void finish(JobId id);

    /** Priority key: smaller runs earlier. */
    Seconds priorityKey(const Job &job) const;

    /** Decayed GPU-seconds a user has consumed (fair-share input). */
    double decayedUsage(UserId user) const;

    /** Charge finished work to the user's fair-share account. */
    void chargeUsage(UserId user, double gpu_seconds);

    Job &mutableJob(JobId id);

    sim::Simulation &sim_;
    sim::Cluster &cluster_;
    SchedulerOptions options_;
    DensePlacement placement_;

    std::vector<Job> jobs_;
    std::unordered_map<JobId, std::size_t> index_;
    std::deque<JobId> queue_;
    std::vector<JobId> running_;

    JobHook prolog_;
    JobHook epilog_;
    SchedulerStats stats_;
    bool fast_pass_pending_ = false;
    bool backfill_pass_pending_ = false;

    /** Fair-share ledger: decayed usage + last decay timestamp. */
    struct UsageAccount
    {
        double decayed_gpu_seconds = 0.0;
        Seconds as_of = 0.0;
    };
    mutable std::unordered_map<UserId, UsageAccount> usage_;
};

} // namespace aiwc::sched

