/**
 * @file
 * KLL-style quantile sketch: a stack of fixed-capacity compactors that
 * summarizes an arbitrarily long stream of doubles in bounded memory
 * while answering rank/quantile queries with a bounded additive rank
 * error. This is the workhorse behind the streaming reproductions of
 * the paper's CDF figures (Figs. 3a, 4a, 9a): the batch analyzers sort
 * every sample; the streaming pipeline keeps only O(k log(n/k)) of
 * them and still lands within epsilonBound() of the exact curve.
 *
 * Determinism: the compaction coin (keep even- or odd-indexed
 * survivors) is drawn from an aiwc::Rng seeded from (sketch seed,
 * compaction ordinal), so the sketch state is a pure function of the
 * construction parameters and the ingestion/merge order — no global
 * RNG, no wall clock. Two sketches fed the same stream in the same
 * order are byte-identical.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aiwc::sketch
{

/**
 * Mergeable streaming quantile sketch with fixed-capacity compactors.
 *
 * Level l holds items of weight 2^l; when a level reaches capacity k
 * it is sorted and every other item (even- or odd-indexed, chosen by a
 * deterministic seeded coin) survives into level l+1 at double weight.
 * Worst-case additive rank error after any interleaving of add() and
 * merge() is epsilonBound() * count(): each compaction at level l
 * perturbs any rank by at most 2^l, and at most n / (k * 2^l)
 * compactions happen per level, giving H/k relative error over H
 * levels.
 *
 * Satisfies the CONTRIBUTING mergeable-accumulator rule: merge() is
 * the shard-combine step for parallelReduce, and merging in
 * shard-index order yields byte-identical state at every thread count.
 */
class KllSketch
{
  public:
    /**
     * @param k compactor capacity; higher k = lower error, more
     *     memory. Must be >= 8 and even so a compaction always halves.
     * @param seed seeds the compaction coin stream; two sketches that
     *     must merge byte-deterministically should share a seed.
     */
    explicit KllSketch(std::uint32_t k = 256, std::uint64_t seed = 0);

    /** Fold one sample into the sketch. Rejects NaN via AIWC_DCHECK. */
    void add(double x);

    /**
     * Fold another sketch into this one. Both sketches must have been
     * constructed with the same k (AIWC_CHECK); the seed of *this
     * drives all subsequent compaction coins.
     */
    void merge(const KllSketch &other);

    /**
     * Estimated quantile: the smallest retained value whose cumulative
     * weight reaches q * count(). AIWC_CHECKs q in [0, 1]; NaN on an
     * empty sketch (the stats::EmpiricalCdf::quantile convention, so
     * degenerate sketches render the same way batch CDFs do). q = 0 /
     * q = 1 return the exact tracked min / max; on a single-item
     * sketch every level returns that item exactly.
     */
    double quantile(double q) const;

    /**
     * Estimated CDF at x: fraction of the stream weight <= x.
     * Returns NaN on an empty sketch.
     */
    double cdf(double x) const;

    /** Total stream weight folded in (adds plus merged adds). */
    std::uint64_t count() const { return count_; }

    /** Exact minimum of the stream; NaN when empty. */
    double min() const;

    /** Exact maximum of the stream; NaN when empty. */
    double max() const;

    /**
     * Conservative worst-case additive rank error as a fraction of
     * count(): H / k over the current H levels, and exactly 0.0 while
     * no compaction has happened — an uncompacted sketch (including
     * the empty and single-item cases) retains every sample, so rank
     * queries are exact and the bound must not pretend otherwise. The
     * streaming-vs-batch equivalence tests assert against this bound.
     */
    double epsilonBound() const;

    /** Compactor capacity this sketch was built with. */
    std::uint32_t k() const { return k_; }

    /** Number of compactions performed so far (drives the coin). */
    std::uint64_t compactions() const { return compactions_; }

    /** Number of retained items across all levels. */
    std::size_t retained() const;

    /** Heap + object footprint in bytes (capacity-based). */
    std::size_t bytes() const;

  private:
    /** Sort level l, promote survivors, cascade if l+1 overflows. */
    void compact(std::size_t level);

    /** Flatten to (value, weight) pairs sorted by value. */
    std::vector<std::pair<double, std::uint64_t>> sortedItems() const;

    std::uint32_t k_;
    std::uint64_t seed_;
    std::uint64_t count_ = 0;
    std::uint64_t compactions_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<std::vector<double>> levels_;
};

} // namespace aiwc::sketch
