/**
 * @file
 * Deterministic reservoir sample via bottom-k hash priorities: a
 * uniform fixed-size sample of a keyed stream whose contents depend
 * only on (seed, key set) — not on arrival order, shard assignment, or
 * merge order. The streaming pipeline uses it to keep exemplar jobs
 * (e.g. for spot-check drill-down in a snapshot) without a Dataset.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace aiwc::sketch
{

/**
 * Bottom-k sample over (key, value) pairs.
 *
 * Each key is assigned a priority by a seeded splitmix64-style mix;
 * the sample is the k keys with the smallest priorities. Because the
 * priority is a pure function of (seed, key), merge() is fully
 * associative AND commutative — any merge tree over any sharding of
 * the stream yields the identical sample, which is what lets it ride
 * parallelReduce without an ordering contract.
 *
 * Keys must be unique within the stream (job ids are); re-adding a
 * key keeps the first value (AIWC_DCHECKed to be consistent).
 */
class ReservoirSample
{
  public:
    /**
     * @param capacity sample size k; must be > 0.
     * @param seed priority hash seed; merging sketches requires equal
     *     seeds (AIWC_CHECK) so priorities agree.
     */
    explicit ReservoirSample(std::size_t capacity = 64,
                             std::uint64_t seed = 0);

    /** Offer one keyed value to the sample. */
    void add(std::uint64_t key, double value);

    /** Fold another sample in. Capacity and seed must match. */
    void merge(const ReservoirSample &other);

    /** One sampled element. */
    struct Item
    {
        std::uint64_t key = 0;
        double value = 0.0;
    };

    /** The current sample, sorted by ascending key. */
    std::vector<Item> items() const;

    /** Values only, sorted by ascending key (plot-friendly). */
    std::vector<double> values() const;

    /** Total elements offered (exact, independent of capacity). */
    std::uint64_t offered() const { return offered_; }

    std::size_t size() const { return sample_.size(); }

    std::size_t capacity() const { return capacity_; }

    /** Heap + object footprint in bytes (node-based estimate). */
    std::size_t bytes() const;

  private:
    std::size_t capacity_;
    std::uint64_t seed_;
    std::uint64_t offered_ = 0;
    // Keyed by (priority, key): begin()..end() is the bottom-k set,
    // and the last node is the eviction candidate. Ordered map keeps
    // iteration deterministic (det-unordered-iter rule).
    std::map<std::pair<std::uint64_t, std::uint64_t>, double> sample_;
};

} // namespace aiwc::sketch
