/**
 * @file
 * Streaming first and second moments via Welford's online update and
 * Chan's pairwise combination: exact mean/variance/CoV of a stream of
 * doubles in O(1) memory, with a merge() that is numerically stable
 * under the shard-index-order reduction the thread pool performs. This
 * is the per-user / per-metric accumulator behind the streaming Fig 10
 * reproduction, replacing materialized sample vectors.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace aiwc::sketch
{

/**
 * Mergeable Welford/Chan accumulator for count, mean, population
 * variance, min, and max.
 *
 * Unlike stats::RunningSummary (which keeps sum and sum-of-squares and
 * loses precision once mean^2 dominates the variance), this tracks the
 * centered second moment M2 directly, so CoV of a low-variability
 * high-mean stream (e.g. power draw near TDP) stays accurate.
 *
 * covPercent() follows the stats::descriptive convention: NaN when the
 * mean is zero — a zero-mean series has no meaningful relative
 * variability, and callers filter non-finite CoVs before plotting.
 */
class StreamingMoments
{
  public:
    /** Fold one sample in (Welford update). */
    void add(double x);

    /** Fold another accumulator in (Chan's pairwise combination). */
    void merge(const StreamingMoments &other);

    std::size_t count() const { return n_; }

    /** Mean of the folded samples; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (M2 / n); 0 for fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /**
     * Coefficient of variation in percent; NaN when the mean is zero
     * or the accumulator is empty (matches stats::covPercent).
     */
    double covPercent() const;

    /** Minimum folded sample; 0 when empty. */
    double min() const { return n_ ? min_ : 0.0; }

    /** Maximum folded sample; 0 when empty. */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of the folded samples (mean * count). */
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace aiwc::sketch
