/**
 * @file
 * Space-saving heavy-hitters sketch: top-k keys of a weighted stream
 * (users by GPU-hours, jobs by energy) in O(k) memory. Backs the
 * streaming Fig 10 reproduction, where the paper's "top 5 / top 20
 * users" shares must be answerable without a per-user table covering
 * the full population.
 *
 * Determinism: eviction picks the minimum-count entry, breaking ties
 * on the smallest key; the merge subtracts a value-defined threshold.
 * No randomness anywhere, so sketch state is a pure function of the
 * ingestion/merge order.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace aiwc::sketch
{

/**
 * Mergeable space-saving sketch over (key, weight) pairs.
 *
 * Guarantees: a key's estimated count is never below its true weight
 * minus error() and never above true weight plus error(); any key with
 * true weight above totalWeight() / capacity is retained. The merge is
 * Misra-Gries style — sum per-key counters, then shrink back to
 * capacity by subtracting the (capacity+1)-th largest count — which
 * preserves both bounds with the errors summed. Summed errors are
 * clamped to the entry's count after every merge, so the
 * `count - error` lower bound is always >= 0 even after arbitrarily
 * deep merge trees (error <= count is a class invariant).
 */
class HeavyHitters
{
  public:
    /** One tracked key with its count estimate and error allowance. */
    struct Entry
    {
        std::uint64_t key = 0;
        double count = 0.0;
        /**
         * Upper bound on overestimation of `count`; always <= count,
         * so `count - error` is a usable non-negative lower bound on
         * the key's true weight.
         */
        double error = 0.0;
    };

    /** @param capacity number of keys tracked; must be > 0. */
    explicit HeavyHitters(std::size_t capacity = 32);

    /** Fold weight for one key in. Weight must be >= 0 (DCHECK). */
    void add(std::uint64_t key, double weight = 1.0);

    /** Fold another sketch in. Capacities must match (AIWC_CHECK). */
    void merge(const HeavyHitters &other);

    /**
     * The k heaviest tracked keys, sorted by count descending with
     * ties broken on ascending key; at most min(k, capacity) entries.
     */
    std::vector<Entry> topK(std::size_t k) const;

    /** Total stream weight folded in (exact, unaffected by eviction). */
    double totalWeight() const { return total_; }

    /** Number of keys currently tracked. */
    std::size_t size() const { return entries_.size(); }

    std::size_t capacity() const { return capacity_; }

    /** Heap + object footprint in bytes (node-based estimate). */
    std::size_t bytes() const;

  private:
    struct Cell
    {
        double count = 0.0;
        double error = 0.0;
    };

    /** Restore the error <= count invariant after a merge. */
    void clampErrors();

    std::size_t capacity_;
    double total_ = 0.0;
    // Ordered map: deterministic iteration for eviction tie-breaks and
    // snapshot serialization (det-unordered-iter rule).
    std::map<std::uint64_t, Cell> entries_;
};

} // namespace aiwc::sketch
