/**
 * @file
 * Rank and linear correlation. Fig. 12 of the paper correlates per-user
 * activity (#jobs, GPU-hours) with behaviour features using Spearman's
 * rho and reports statistical significance (p < 0.05); both are
 * implemented here, with ties handled by average ranks.
 */

#pragma once

#include <span>
#include <vector>

namespace aiwc::stats
{

/** Result of a correlation test. */
struct Correlation
{
    double coefficient = 0.0;  //!< rho (Spearman) or r (Pearson)
    double p_value = 1.0;      //!< two-sided, via t approximation
    std::size_t n = 0;         //!< sample size

    /** True when the correlation is significant at the given alpha. */
    bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

/** Pearson linear correlation with a two-sided t-test p-value. */
Correlation pearson(std::span<const double> x, std::span<const double> y);

/**
 * Spearman rank correlation: Pearson over average ranks, robust to
 * monotone transformations — matching scipy.stats.spearmanr.
 */
Correlation spearman(std::span<const double> x, std::span<const double> y);

/**
 * Average ranks of a sample (1-based, ties get the mean of the ranks
 * they span), exposed for testing and reuse.
 */
std::vector<double> averageRanks(std::span<const double> xs);

/**
 * Two-sided p-value of a t statistic with df degrees of freedom,
 * computed via the regularized incomplete beta function (continued
 * fraction expansion, as in Numerical Recipes).
 */
double tTestPValue(double t, double df);

} // namespace aiwc::stats

