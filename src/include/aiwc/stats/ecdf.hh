/**
 * @file
 * Empirical cumulative distribution functions — the paper's primary
 * presentation device (Figs. 3, 4, 6, 7, 9, 10, 11, 14 are all CDFs).
 */

#pragma once

#include <functional>
#include <span>
#include <vector>

namespace aiwc::stats
{

/**
 * An empirical CDF over a fixed sample. Construction sorts once; all
 * queries are O(log n).
 */
class EmpiricalCdf
{
  public:
    EmpiricalCdf() = default;

    /** Build from an unsorted sample. */
    explicit EmpiricalCdf(std::vector<double> sample);

    /**
     * Build a CDF by sampling a quantile function at `points` evenly
     * spaced levels in [0, 1] — the bridge that renders a streaming
     * sketch (sketch::KllSketch::quantile) through the existing
     * curve()/ksDistance plotting path. The evaluations are
     * monotonized (clamped non-decreasing) so an approximate quantile
     * function with small rank-error wobble still yields a valid CDF.
     * @param fn quantile function over [0, 1]; returning NaN at level
     *     0 signals an empty distribution and yields an empty CDF.
     * @param points number of levels >= 2 (AIWC_CHECK).
     */
    static EmpiricalCdf
    fromQuantileFunction(const std::function<double(double)> &fn,
                         int points = 201);

    /** True when no samples were provided. */
    bool empty() const { return sorted_.empty(); }

    /** Number of samples. */
    std::size_t size() const { return sorted_.size(); }

    /** F(x): fraction of samples <= x. */
    double at(double x) const;

    /** F(x-): left limit of the CDF — fraction strictly below x. */
    double atLeft(double x) const;

    /**
     * Inverse CDF: the q-quantile with linear interpolation.
     * @param q must lie in [0, 1] (AIWC_CHECK). Returns NaN when the
     * sample is empty — an empty CDF has no quantiles.
     */
    double quantile(double q) const;

    /** Fraction of samples strictly greater than x (the tail). */
    double tail(double x) const { return 1.0 - at(x); }

    /** The sorted sample, for plotting/export. */
    std::span<const double> sorted() const { return sorted_; }

    /**
     * Evaluate the CDF at evenly spaced quantile levels — the series a
     * plotted CDF line would carry. @param points number of levels >= 2.
     * The CDF must be non-empty (AIWC_CHECK) — there is no curve to
     * sample otherwise.
     */
    std::vector<std::pair<double, double>> curve(int points = 101) const;

    /**
     * Two-sample Kolmogorov-Smirnov statistic against another CDF: the
     * supremum vertical gap between the two step functions. Both the
     * right-continuous value and the left limit are compared at every
     * jump point of either sample, so gaps opening at shared jump
     * locations are never missed. Used by the test suite to check the
     * generator reproduces paper distributions.
     */
    double ksDistance(const EmpiricalCdf &other) const;

  private:
    std::vector<double> sorted_;
};

} // namespace aiwc::stats

