/**
 * @file
 * Descriptive statistics used throughout the characterization: means,
 * percentiles, coefficients of variation (the paper's workhorse metric),
 * box-plot statistics (Fig. 16), and a streaming min/mean/max summary
 * matching what the Supercloud monitoring records per job.
 */

#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace aiwc::stats
{

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(std::span<const double> xs);

/**
 * Coefficient of variation as a percentage of the mean, the paper's
 * variability metric (Figs. 6b, 7a, 11, 14). Returns NaN when the mean
 * is zero (an all-idle series has no meaningful relative variability)
 * or the span is empty; callers building CDFs filter non-finite values
 * with std::isfinite. Inputs must be finite (AIWC_DCHECK), so a NaN
 * result unambiguously signals the zero-mean case.
 */
double covPercent(std::span<const double> xs);

/**
 * Quantile with linear interpolation between closest ranks (the
 * NumPy default), so percentile(xs, 0.5) is the conventional median.
 * @param q quantile in [0, 1].
 */
double percentile(std::vector<double> xs, double q);

/**
 * Quantile of data that is already sorted ascending; does not copy.
 * Useful when many quantiles are needed from the same sample.
 */
double percentileSorted(std::span<const double> sorted, double q);

/** Sum of all samples. */
double sum(std::span<const double> xs);

/**
 * Box-plot statistics as drawn in Fig. 16: median, quartiles, and
 * 1.5-IQR whiskers clamped to the data range.
 */
struct BoxStats
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double whisker_lo = 0.0;
    double whisker_hi = 0.0;
    std::size_t n = 0;

    /** Compute from an unsorted sample. */
    static BoxStats from(std::vector<double> xs);
};

/**
 * Streaming summary of a metric over a job's run: the monitoring system
 * reports only min/mean/max per metric per job to keep production
 * overhead low (paper Sec. III), and this is exactly that record.
 */
class RunningSummary
{
  public:
    /**
     * The raw accumulator state, exposed for bit-exact
     * (de)serialization: the binary trace format (aiwc/fmt) stores
     * these five values verbatim so a summary loaded from disk is
     * indistinguishable — to the last ULP of mean() and stddev() —
     * from the one that was written, whatever its provenance
     * (sample-accumulated or moment-reconstructed).
     */
    struct RawState
    {
        std::size_t count = 0;
        double min = 0.0;
        double max = 0.0;
        double sum = 0.0;
        double sum_sq = 0.0;
    };

    /** Snapshot the internal accumulators. */
    RawState rawState() const;

    /**
     * Rebuild a summary from a rawState() snapshot. The state must be
     * internally consistent (AIWC_CHECK: finite fields, min <= max
     * when count > 0); untrusted bytes must be validated by the
     * caller before reaching this — see fmt's reader.
     */
    static RunningSummary fromRawState(const RawState &state);

    /**
     * Reconstruct a summary from already-computed moments — used when
     * loading a dataset from CSV, where only the per-job statistics
     * (not the samples) survive.
     */
    static RunningSummary fromMoments(std::size_t count, double min,
                                      double mean, double max,
                                      double stddev = 0.0);

    /** Fold one sample into the summary. */
    void add(double x);

    /** Fold another summary into this one (for multi-GPU averaging). */
    void merge(const RunningSummary &other);

    std::size_t count() const { return n_; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

    /** Population standard deviation of the folded samples. */
    double stddev() const;

    /** Coefficient of variation in percent; NaN if the mean is 0. */
    double covPercent() const;

  private:
    std::size_t n_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
};

} // namespace aiwc::stats

