/**
 * @file
 * Branch-light columnar kernels: gathers from a column through a row
 * index vector, fanned across the thread pool with slot-addressed
 * writes.
 *
 * These are the building blocks of the analyzers' hot paths. Each
 * kernel writes output slot i from input slot idx[i] — no shared
 * accumulator, no merge step — so the result is bit-identical at any
 * thread count by construction, and the inner loop is a contiguous
 * read/scale/store the compiler can vectorize. The scale/divide
 * variants apply exactly the arithmetic the row-oriented analyzers
 * used (`x * s` vs `x / d` round differently, so both exist).
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace aiwc::stats
{

/** out[i] = col[idx[i]]. */
std::vector<double> gather(std::span<const double> col,
                           std::span<const std::uint32_t> idx);

/** out[i] = scale * col[idx[i]]. */
std::vector<double> gatherScaled(std::span<const double> col,
                                 std::span<const std::uint32_t> idx,
                                 double scale);

/** out[i] = col[idx[i]] / divisor. */
std::vector<double> gatherDivided(std::span<const double> col,
                                  std::span<const std::uint32_t> idx,
                                  double divisor);

/**
 * Stable bucket partition of @p idx by a small dense key: bucket k
 * receives, in idx order, every row r of idx with key[r] == k.
 * @param key per-row dense keys (key[r] < buckets, AIWC_CHECK);
 *     indexed by the *values* in idx, like the gather kernels.
 * @param buckets number of distinct keys.
 * @return {bucket_rows, offsets}: bucket k spans
 *     bucket_rows[offsets[k] .. offsets[k + 1]].
 *
 * This is the columnar replacement for a per-user map: one counting
 * pass, one prefix sum, one scatter — O(rows + buckets), no
 * comparisons, deterministic in idx order.
 */
struct BucketPartition
{
    std::vector<std::uint32_t> rows;     //!< idx reordered by bucket
    std::vector<std::uint32_t> offsets;  //!< buckets + 1 fence posts
};

BucketPartition partitionByKey(std::span<const std::uint32_t> idx,
                               std::span<const std::uint32_t> key,
                               std::size_t buckets);

} // namespace aiwc::stats
