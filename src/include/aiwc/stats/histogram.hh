/**
 * @file
 * Fixed-bin histograms, used for the pie/bar breakdowns (Figs. 5, 8,
 * 13, 15) and for trace export.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace aiwc::stats
{

/**
 * A histogram over [lo, hi) with equal-width bins; samples outside the
 * range are clamped into the first/last bin so nothing is lost.
 */
class Histogram
{
  public:
    /** @param bins number of bins (>= 1); @param lo/hi data range. */
    Histogram(std::size_t bins, double lo, double hi);

    /** Record one sample. */
    void add(double x);

    /** Record a sample with a weight (e.g. GPU-hours). */
    void add(double x, double weight);

    /**
     * Fold another histogram's weight into this one. Both histograms
     * must share the exact bin geometry (count, lo, hi — AIWC_CHECK).
     * merge() is associative, which is what lets per-shard histograms
     * built by parallelReduce() combine deterministically.
     */
    void merge(const Histogram &other);

    std::size_t bins() const { return counts_.size(); }
    double binLow(std::size_t i) const;
    double binHigh(std::size_t i) const;

    /** Total weight in bin i. */
    double count(std::size_t i) const { return counts_[i]; }

    /** Total weight across all bins. */
    double total() const { return total_; }

    /** Fraction of total weight in bin i (0 when empty). */
    double fraction(std::size_t i) const;

    /** Index of the bin holding the most weight. */
    std::size_t modeBin() const;

  private:
    double lo_, hi_, width_;
    std::vector<double> counts_;
    double total_ = 0.0;
};

} // namespace aiwc::stats

