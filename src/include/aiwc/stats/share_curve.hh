/**
 * @file
 * Concentration ("Pareto principle") measures. Sec. IV reports that the
 * top 5% of users submit 44% of jobs and the top 20% submit 83.2% — a
 * Lorenz-style share curve over per-user activity.
 */

#pragma once

#include <span>
#include <vector>

namespace aiwc::stats
{

/**
 * Share of total mass contributed by the top `top_fraction` of
 * contributors (e.g. topShare(jobs_per_user, 0.05) == 0.44 reproduces
 * the paper's "top 5% of users submit 44% of jobs").
 */
double topShare(std::span<const double> contributions, double top_fraction);

/**
 * The full descending-sorted cumulative share curve, sampled at each
 * contributor: entry i is the fraction of total mass held by the top
 * i+1 contributors.
 */
std::vector<double> shareCurve(std::span<const double> contributions);

/** Gini coefficient of the contributions (0 = equal, ->1 = concentrated). */
double gini(std::span<const double> contributions);

} // namespace aiwc::stats

